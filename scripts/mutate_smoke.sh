#!/usr/bin/env bash
# Loopback smoke test for the live-mutation subsystem: starts ligra-serve
# on localhost TCP and drives one JSONL session through the full epoch
# lifecycle, asserting the acceptance-critical responses:
#
#   * `mutate` publishes a new epoch whose BFS answer differs correctly
#     (grown vertices become reachable, deleted edges disconnect),
#   * a query submitted before the mutation completes pinned to its
#     submit-time epoch (its span names the old epoch),
#   * `compact` flattens the overlay into a clean CSR with identical
#     query results, visible through `graph-stats`,
#   * `stats` and the Prometheus endpoint carry the ligra_mutation_*
#     counters that tell the same story (scrapes land in
#     $LIGRA_SMOKE_ARTIFACTS for upload).
#
# Usage: scripts/mutate_smoke.sh [path-to-ligra-serve]
set -euo pipefail

BIN="${1:-./target/release/ligra-serve}"
ADDR="${LIGRA_SMOKE_ADDR:-127.0.0.1:17431}"
MADDR="${LIGRA_SMOKE_METRICS_ADDR:-127.0.0.1:17432}"
ART="${LIGRA_SMOKE_ARTIFACTS:-target/smoke-artifacts}"
mkdir -p "$ART"

if [[ ! -x "$BIN" ]]; then
    echo "mutate_smoke: $BIN not found (build with: cargo build --release -p ligra-engine)" >&2
    exit 1
fi

"$BIN" --listen "$ADDR" --workers 2 --metrics-addr "$MADDR" &
SERVER_PID=$!
cleanup() { kill "$SERVER_PID" 2>/dev/null || true; }
trap cleanup EXIT

up=0
for _ in $(seq 1 100); do
    if printf '{"op":"ping"}\n' | "$BIN" --client "$ADDR" 2>/dev/null | grep -q '"pong"'; then
        up=1
        break
    fi
    sleep 0.1
done
[[ "$up" == 1 ]] || { echo "mutate_smoke: server never came up on $ADDR" >&2; exit 1; }

# 4x4x4 grid: 64 vertices, all reachable from 0. The session grows it by
# two vertices, re-verifies BFS on the new epoch, compacts, re-verifies
# on the clean CSR, then deletes the bridge edge and verifies again.
OUT=$("$BIN" --client "$ADDR" <<'EOF'
{"op":"gen","family":"grid3d","side":4}
{"op":"submit","query":"bfs","source":0}
{"op":"wait","id":1}
{"op":"submit","query":"pagerank","max_iters":400}
{"op":"mutate","add_vertices":2,"add":"0-64,64-65"}
{"op":"submit","query":"bfs","source":0}
{"op":"wait","id":3}
{"op":"wait","id":2}
{"op":"span","id":2}
{"op":"graph-stats"}
{"op":"compact"}
{"op":"graph-stats"}
{"op":"submit","query":"bfs","source":0}
{"op":"wait","id":4}
{"op":"mutate","del":"0-64"}
{"op":"submit","query":"bfs","source":0}
{"op":"wait","id":5}
{"op":"stats"}
EOF
)
echo "$OUT"

line() { echo "$OUT" | sed -n "${1}p"; }
expect() { # expect <line-no> <grep-pattern> <label>
    if ! line "$1" | grep -q "$2"; then
        echo "mutate_smoke: FAIL [$3] — response line $1 did not match '$2':" >&2
        line "$1" >&2
        exit 1
    fi
}

expect 1  '"vertices":64'            "gen size"
expect 3  '"reached":64'             "baseline BFS covers the grid"
expect 5  '"ok":true'                "mutate accepted"
expect 5  '"epoch":2'                "mutate publishes a new epoch"
expect 5  '"vertices_added":2'       "mutate grew the id space"
expect 5  '"arcs_added":4'           "symmetric insert adds both arcs"
expect 7  '"reached":66'             "post-mutation BFS reaches the grown vertices"
expect 8  '"status":"done"'          "pre-mutation query still completes"
expect 9  '"epoch":1'                "pre-mutation query stayed pinned to its epoch"
expect 10 '"has_overlay":true'       "graph-stats shows the overlay"
expect 10 '"pending_batches":1'      "graph-stats counts the pending batch"
expect 11 '"ok":true'                "compact accepted"
expect 11 '"reapplied_batches":0'    "nothing landed mid-compaction"
expect 12 '"has_overlay":false'      "compaction flattened the overlay"
expect 12 '"compactions":1'          "graph-stats counts the compaction"
expect 14 '"reached":66'             "compacted CSR answers identically"
expect 15 '"arcs_deleted":2'         "delete tombstones both arcs"
expect 17 '"reached":64'             "deleted bridge disconnects the grown vertices"
expect 18 '"mutation_batches":2'     "stats count the applied batches"
expect 18 '"compactions":1'          "stats count the compaction"

# The scrape tells the same story in the pinned family vocabulary.
scrape() {
    exec 3<>"/dev/tcp/${MADDR%:*}/${MADDR#*:}" \
        || { echo "mutate_smoke: FAIL — metrics endpoint $MADDR unreachable" >&2; exit 1; }
    printf 'GET /metrics HTTP/1.0\r\n\r\n' >&3
    tr -d '\r' <&3 | sed '1,/^$/d' > "$1"
    exec 3<&- 3>&-
}
metric() { awk -v p="$2" 'index($0, p) == 1 { print $NF }' "$1"; }
scrape "$ART/metrics-mutate.txt"
for fam in ligra_mutation_overlay_edges ligra_mutation_overlay_vertices \
    ligra_mutation_batches_applied_total ligra_mutation_edges_added_total \
    ligra_mutation_edges_deleted_total ligra_mutation_compactions_total \
    ligra_mutation_compaction_failures_total ligra_mutation_compaction_ns; do
    if ! grep -q "^# TYPE $fam " "$ART/metrics-mutate.txt"; then
        echo "mutate_smoke: FAIL — family $fam missing from scrape" >&2
        exit 1
    fi
done
mexpect() { # mexpect <exposition-line-prefix> <value> <label>
    got=$(metric "$ART/metrics-mutate.txt" "$1")
    if [[ "$got" != "$2" ]]; then
        echo "mutate_smoke: FAIL [$3] — scrape has '$1' = '$got', want $2" >&2
        exit 1
    fi
}
mexpect 'ligra_mutation_batches_applied_total ' 2    "scrape counts the batches"
mexpect 'ligra_mutation_edges_added_total ' 4        "scrape counts the inserted arcs"
mexpect 'ligra_mutation_edges_deleted_total ' 2      "scrape counts the tombstoned arcs"
mexpect 'ligra_mutation_compactions_total ' 1        "scrape counts the compaction"
mexpect 'ligra_mutation_compaction_failures_total ' 0 "no compaction failed"
mexpect 'ligra_mutation_compaction_ns_count ' 1      "compaction duration was observed"

printf '{"op":"shutdown"}\n' | "$BIN" --client "$ADDR" | grep -q '"shutting-down"'
for _ in $(seq 1 50); do
    kill -0 "$SERVER_PID" 2>/dev/null || break
    sleep 0.1
done
if kill -0 "$SERVER_PID" 2>/dev/null; then
    echo "mutate_smoke: FAIL — server still alive after shutdown op" >&2
    exit 1
fi
trap - EXIT

echo "mutate_smoke: OK"
