#!/usr/bin/env bash
# Dynamic-analysis sweep: the lockdep certification suite under
# `--features lock-check`, then the edgeMap race-oracle certification
# suite under ThreadSanitizer.
#
# The race oracle (DESIGN.md §10) checks the *win-contract* half of the
# concurrency story; TSan checks the *memory-model* half (that every
# concurrent access the traversals make is properly synchronized); the
# lock oracle (DESIGN.md §15) checks the *ordering* half — that no
# interleaving of the engine tier's lock acquisitions can deadlock. The
# lockdep sweep needs only the stable toolchain and runs everywhere; TSan
# needs a nightly toolchain with rust-src (std must be rebuilt with the
# sanitizer via -Zbuild-std). Offline sandboxes have neither nightly nor
# registry access, and the vendored rayon stub is sequential anyway — in
# any of those situations the TSan half reports why and exits 0 so the
# script can sit in CI/dev loops without special-casing.
#
# Usage: scripts/sanitize.sh
set -uo pipefail

skip() {
    echo "sanitize: SKIP — $1" >&2
    exit 0
}

# ---- lockdep: engine tier under the runtime lock-order oracle ----------
echo "sanitize: running lockdep certification (engine + mutation + chaos) under --features lock-check"
( set -x
  cargo test -q -p ligra-engine --features lock-check &&
  cargo test -q -p ligra-integration-tests --features lock-check \
      --test lockdep --test mutation &&
  cargo test -q -p ligra-integration-tests --features lock-check,fault-inject \
      --test chaos
) || { echo "sanitize: FAIL — lockdep certification" >&2; exit 1; }

# ---- TSan: race-oracle suite under -Z sanitizer=thread -----------------

command -v rustup >/dev/null 2>&1 || skip "rustup not installed"

if ! rustup toolchain list 2>/dev/null | grep -q '^nightly'; then
    skip "no nightly toolchain (install with: rustup toolchain install nightly --component rust-src)"
fi

if ! rustup component list --toolchain nightly 2>/dev/null | grep -q 'rust-src (installed)'; then
    skip "nightly lacks rust-src (add with: rustup component add rust-src --toolchain nightly)"
fi

if [[ -f .cargo/config.toml ]] && grep -q 'patch.crates-io' .cargo/config.toml; then
    skip "offline vendored-stub configuration is active (sequential rayon: nothing for TSan to see); remove .cargo/config.toml and Cargo.lock first"
fi

HOST_TARGET="$(rustc -vV | sed -n 's/^host: //p')"
case "$HOST_TARGET" in
    x86_64-*-linux-gnu | aarch64-*-linux-gnu | *-apple-darwin) ;;
    *) skip "ThreadSanitizer unsupported on host target $HOST_TARGET" ;;
esac

echo "sanitize: running race-oracle certification suite under TSan ($HOST_TARGET)"
set -x
RUSTFLAGS="-Z sanitizer=thread" \
    cargo +nightly test -Z build-std --target "$HOST_TARGET" \
    -p ligra-integration-tests --features race-check --test race_oracle "$@"
