#!/usr/bin/env bash
# Loopback smoke test for ligra-route: three ligra-serve replicas behind
# one router, a mixed read/write workload driven through the router, and
# a SIGKILL of one replica mid-session. Asserts the acceptance-critical
# behavior of the scale-out tier (DESIGN.md §16):
#
#   * reads and replicated writes succeed through the router while all
#     replicas are healthy (writes report replicas_ok=3, fleet in sync),
#   * after one replica is SIGKILLed mid-session, every client response
#     is still ok or typed transient — no hard errors, no hangs — and
#     the router records at least one read failover,
#   * writes during the outage report exactly one missed replica and
#     keep the journal growing,
#   * when the replica restarts empty, the router detects the epoch
#     regression, replays the journal, and the fleet converges back to
#     epoch parity (route-stats uniform, graph-stats in_sync),
#   * the --metrics-addr endpoint serves the router family vocabulary
#     with counters agreeing with the session (scrapes land in
#     $LIGRA_SMOKE_ARTIFACTS for upload),
#   * the shutdown op drains the router, which exits 0; the replicas
#     drain on SIGTERM and exit 0 too.
#
# Usage: scripts/route_smoke.sh [path-to-ligra-serve] [path-to-ligra-route]
set -euo pipefail

SERVE="${1:-./target/release/ligra-serve}"
ROUTE="${2:-./target/release/ligra-route}"
B0="${LIGRA_SMOKE_B0:-127.0.0.1:17431}"
B1="${LIGRA_SMOKE_B1:-127.0.0.1:17432}"
B2="${LIGRA_SMOKE_B2:-127.0.0.1:17433}"
RADDR="${LIGRA_SMOKE_ROUTER:-127.0.0.1:17434}"
MADDR="${LIGRA_SMOKE_METRICS_ADDR:-127.0.0.1:17435}"
ART="${LIGRA_SMOKE_ARTIFACTS:-target/route-artifacts}"
mkdir -p "$ART"

for bin in "$SERVE" "$ROUTE"; do
    if [[ ! -x "$bin" ]]; then
        echo "route_smoke: $bin not found (build with: cargo build --release -p ligra-engine)" >&2
        exit 1
    fi
done

fail() { echo "route_smoke: FAIL — $*" >&2; exit 1; }

# Replicas disable auto-compaction: epoch parity across the fleet is the
# convergence criterion, and a replica compacting on its own clock would
# fork it outside the router's write stream.
# Backends must stay direct children of this shell (`wait` reaps their
# exit codes later), so no command-substitution wrappers here; logs go
# to files so backgrounded children never share our stdout.
start_backend() { # start_backend <addr> <log-name>; pid in BACKEND_PID
    "$SERVE" --listen "$1" --workers 2 --compact-threshold 0 \
        > "$ART/$2.log" 2>&1 &
    BACKEND_PID=$!
}
start_backend "$B0" backend0; PID0=$BACKEND_PID
start_backend "$B1" backend1; PID1=$BACKEND_PID
start_backend "$B2" backend2; PID2=$BACKEND_PID
# A probe interval much longer than client latency keeps the first
# post-kill read racing the prober deterministically: the client, not
# the probe, must be the one that discovers the death (a read failover).
"$ROUTE" --listen "$RADDR" --backend "$B0" --backend "$B1" --backend "$B2" \
    --metrics-addr "$MADDR" --probe-interval-ms 1000 &
ROUTER_PID=$!
PIDS=("$PID0" "$PID1" "$PID2" "$ROUTER_PID")
cleanup() { for p in "${PIDS[@]}"; do kill -9 "$p" 2>/dev/null || true; done; }
trap cleanup EXIT

up=0
for _ in $(seq 1 100); do
    if printf '{"op":"ping"}\n' | "$SERVE" --client "$RADDR" 2>/dev/null | grep -q '"pong"'; then
        up=1
        break
    fi
    sleep 0.1
done
[[ "$up" == 1 ]] || fail "router never came up on $RADDR"

# The router's first probe round can race the replicas' own startup and
# leave an early "degraded" mark; wait for the prober to see the whole
# fleet healthy before asserting on a clean baseline.
healthy=0
for _ in $(seq 1 100); do
    if printf '{"op":"route-stats"}\n' | "$SERVE" --client "$RADDR" 2>/dev/null \
        | grep -q '"states":"healthy,healthy,healthy"'; then
        healthy=1
        break
    fi
    sleep 0.1
done
[[ "$healthy" == 1 ]] || fail "fleet never reached all-healthy at startup"

# ---- phase 1: healthy fleet ------------------------------------------
OUT1=$("$SERVE" --client "$RADDR" <<'EOF' | tee "$ART/phase1.jsonl"
{"op":"gen","family":"rmat","log_n":10}
{"op":"submit","query":"bfs","source":0}
{"op":"wait","id":1}
{"op":"mutate","add":"0-1,1-2"}
{"op":"submit","query":"bfs","source":0}
{"op":"wait","id":2}
{"op":"graph-stats"}
{"op":"route-stats"}
EOF
)
expect1() { # expect1 <line-no> <grep-pattern> <label>
    echo "$OUT1" | sed -n "${1}p" | grep -q "$2" \
        || fail "phase1 [$3]: line $1 did not match '$2': $(echo "$OUT1" | sed -n "${1}p")"
}
expect1 1 '"replicas_ok":3'        "gen replicated to all three"
expect1 3 '"status":"done"'        "bfs completes through the router"
expect1 4 '"replicas_ok":3'        "mutate replicated to all three"
expect1 6 '"status":"done"'        "post-mutate bfs completes"
expect1 7 '"in_sync":true'         "fleet epochs agree"
expect1 8 '"states":"healthy,healthy,healthy"' "all replicas healthy"

# ---- phase 2: SIGKILL one replica mid-session ------------------------
# One long-lived client session straddles the kill: the fifo lets us
# SIGKILL the replica while the session is idle and then fire the next
# reads within microseconds, before the (slow, 1s) prober can notice —
# so discovering the death is the client's read failover, not a probe.
FIFO="$ART/client.fifo"
rm -f "$FIFO"; mkfifo "$FIFO"
"$SERVE" --client "$RADDR" < "$FIFO" > "$ART/phase2.jsonl" &
CLIENT_PID=$!
exec 9> "$FIFO"

printf '{"op":"submit","query":"bfs","source":0}\n{"op":"wait","id":3}\n' >&9
sleep 0.5   # let the pre-kill ops finish; the prober sees a healthy fleet
{ kill -9 "$PID2" && wait "$PID2"; } 2>/dev/null || true
for _ in $(seq 1 8); do
    printf '{"op":"submit","query":"bfs","source":0}\n' >&9
done
printf '{"op":"mutate","add":"2-3"}\n{"op":"mutate","add":"3-4"}\n{"op":"route-stats"}\n' >&9
exec 9>&-
wait "$CLIENT_PID" || fail "client session through the outage exited non-zero"

while IFS= read -r line; do
    echo "$line" | grep -q '"ok":true' || echo "$line" | grep -q '"transient":true' \
        || fail "phase2: hard client error during outage: $line"
done < "$ART/phase2.jsonl"
STATS2=$(tail -n 1 "$ART/phase2.jsonl")
echo "$STATS2" | grep -q '"failovers":0' && fail "no read failover recorded: $STATS2"
grep -q '"replicas_missed":1' "$ART/phase2.jsonl" \
    || fail "outage writes did not report one missed replica"

# ---- phase 3: restart the replica, journal replay converges ----------
start_backend "$B2" backend2-restarted; PID2=$BACKEND_PID
PIDS=("$PID0" "$PID1" "$PID2" "$ROUTER_PID")
converged=0
for _ in $(seq 1 150); do
    RS=$(printf '{"op":"route-stats"}\n' | "$SERVE" --client "$RADDR" 2>/dev/null || true)
    EPOCHS=$(echo "$RS" | sed -n 's/.*"epochs":"\([^"]*\)".*/\1/p')
    SEQS=$(echo "$RS" | sed -n 's/.*"applied_seqs":"\([^"]*\)".*/\1/p')
    uniform() { [[ -n "$1" ]] && [[ "$(tr ',' '\n' <<<"$1" | sort -u | wc -l)" == 1 ]]; }
    if uniform "$EPOCHS" && uniform "$SEQS" && echo "$RS" | grep -q '"states":"healthy,healthy,healthy"'; then
        converged=1
        echo "$RS" > "$ART/route-stats-converged.json"
        break
    fi
    sleep 0.1
done
[[ "$converged" == 1 ]] || fail "fleet never reconverged after restart: $RS"
grep -q '"journal_replayed":0' "$ART/route-stats-converged.json" \
    && fail "convergence happened without journal replay"
printf '{"op":"graph-stats"}\n' | "$SERVE" --client "$RADDR" | tee "$ART/graph-stats-final.json" \
    | grep -q '"in_sync":true' || fail "fleet out of sync after rejoin"

# ---- phase 4: Prometheus scrape --------------------------------------
exec 3<>"/dev/tcp/${MADDR%:*}/${MADDR#*:}" || fail "metrics endpoint $MADDR unreachable"
printf 'GET /metrics HTTP/1.0\r\n\r\n' >&3
tr -d '\r' <&3 | sed '1,/^$/d' > "$ART/metrics.txt"
exec 3<&- 3>&-
for fam in ligra_route_backends ligra_route_backend_state ligra_route_requests_total \
    ligra_route_forwarded_total ligra_route_failovers_total ligra_route_sheds_total \
    ligra_route_probes_total ligra_route_journal_replayed_total ligra_route_request_ns; do
    grep -q "^# TYPE $fam " "$ART/metrics.txt" || fail "family $fam missing from scrape"
done
FAILOVERS=$(awk '$1 == "ligra_route_failovers_total" { print $2 }' "$ART/metrics.txt")
(( FAILOVERS >= 1 )) || fail "scrape shows no failovers ($FAILOVERS)"
REPLAYED=$(awk '$1 == "ligra_route_journal_replayed_total" { print $2 }' "$ART/metrics.txt")
(( REPLAYED >= 1 )) || fail "scrape shows no journal replay ($REPLAYED)"

# ---- phase 5: graceful shutdown --------------------------------------
printf '{"op":"shutdown"}\n' | "$SERVE" --client "$RADDR" | grep -q '"shutting-down"' \
    || fail "router did not acknowledge shutdown"
for _ in $(seq 1 50); do
    kill -0 "$ROUTER_PID" 2>/dev/null || break
    sleep 0.1
done
kill -0 "$ROUTER_PID" 2>/dev/null && fail "router still alive after shutdown op"
# Replicas drain and exit 0 on SIGTERM.
kill "$PID0" "$PID1" "$PID2"
for p in "$PID0" "$PID1" "$PID2"; do
    code=0; wait "$p" || code=$?
    [[ "$code" == 0 ]] || fail "replica $p exited $code on SIGTERM"
done
PIDS=()
trap - EXIT

echo "route_smoke: OK"
