#!/usr/bin/env bash
# Loopback smoke test for ligra-serve: starts the server on localhost TCP,
# drives one client session through the JSONL protocol, and asserts the
# acceptance-critical responses:
#
#   * a BFS completes with a result summary,
#   * resubmitting it on the same epoch is a visible cache hit,
#   * a query with an already-expired deadline (deadline_ms = 0) is shed at
#     dequeue without executing a single edgeMap round,
#   * the stats counters agree with all of the above.
#
# Usage: scripts/serve_smoke.sh [path-to-ligra-serve]
set -euo pipefail

BIN="${1:-./target/release/ligra-serve}"
ADDR="${LIGRA_SMOKE_ADDR:-127.0.0.1:17421}"

if [[ ! -x "$BIN" ]]; then
    echo "serve_smoke: $BIN not found (build with: cargo build --release -p ligra-engine)" >&2
    exit 1
fi

"$BIN" --listen "$ADDR" --workers 2 &
SERVER_PID=$!
cleanup() { kill "$SERVER_PID" 2>/dev/null || true; }
trap cleanup EXIT

# Wait for the listener to come up.
up=0
for _ in $(seq 1 100); do
    if printf '{"op":"ping"}\n' | "$BIN" --client "$ADDR" 2>/dev/null | grep -q '"pong"'; then
        up=1
        break
    fi
    sleep 0.1
done
[[ "$up" == 1 ]] || { echo "serve_smoke: server never came up on $ADDR" >&2; exit 1; }

OUT=$("$BIN" --client "$ADDR" <<'EOF'
{"op":"gen","family":"rmat","log_n":12}
{"op":"submit","query":"bfs","source":0}
{"op":"wait","id":1}
{"op":"submit","query":"bfs","source":0}
{"op":"wait","id":2}
{"op":"submit","query":"pagerank","max_iters":50,"deadline_ms":0}
{"op":"wait","id":3}
{"op":"span","id":3}
{"op":"stats"}
EOF
)
echo "$OUT"

line() { echo "$OUT" | sed -n "${1}p"; }
expect() { # expect <line-no> <grep-pattern> <label>
    if ! line "$1" | grep -q "$2"; then
        echo "serve_smoke: FAIL [$3] — response line $1 did not match '$2':" >&2
        line "$1" >&2
        exit 1
    fi
}

expect 1 '"ok":true'                         "gen accepted"
expect 1 '"vertices":4096'                   "gen size"
expect 3 '"status":"done"'                   "bfs completes"
expect 3 '"cache_hit":false'                 "first bfs is a miss"
expect 3 '"reached":'                        "bfs carries a result summary"
expect 5 '"status":"done"'                   "repeat bfs completes"
expect 5 '"cache_hit":true'                  "repeat bfs on same epoch is a cache hit"
expect 7 '"status":"shed"'                   "0ms-deadline query is shed at dequeue"
expect 7 '"edge_map_rounds":0'               "shed query never ran an edgeMap round"
expect 8 '"status":"shed"'                   "span records the shed"
expect 8 '"rounds":0,'                       "span shows zero rounds"
expect 9 '"cache_hits":1'                    "stats count the hit"
expect 9 '"queue_deadline_sheds":1'          "stats count the deadline shed"
expect 9 '"completed":2'                     "stats count the completions"

# Clean shutdown path: the server acknowledges, then exits.
printf '{"op":"shutdown"}\n' | "$BIN" --client "$ADDR" | grep -q '"shutting-down"'
for _ in $(seq 1 50); do
    kill -0 "$SERVER_PID" 2>/dev/null || break
    sleep 0.1
done
if kill -0 "$SERVER_PID" 2>/dev/null; then
    echo "serve_smoke: FAIL — server still alive after shutdown op" >&2
    exit 1
fi
trap - EXIT

echo "serve_smoke: OK"
