#!/usr/bin/env bash
# Loopback smoke test for ligra-serve: starts the server on localhost TCP,
# drives one client session through the JSONL protocol, and asserts the
# acceptance-critical responses:
#
#   * a BFS completes with a result summary,
#   * resubmitting it on the same epoch is a visible cache hit,
#   * a query with an already-expired deadline (deadline_ms = 0) is shed at
#     dequeue without executing a single edgeMap round,
#   * the stats counters agree with all of the above,
#   * the --metrics-addr Prometheus endpoint serves the pinned families
#     mid-run, with counters that are monotone across scrapes and agree
#     with the session the smoke just drove (scrapes land in
#     $LIGRA_SMOKE_ARTIFACTS for upload).
#
# Usage: scripts/serve_smoke.sh [path-to-ligra-serve]
set -euo pipefail

BIN="${1:-./target/release/ligra-serve}"
ADDR="${LIGRA_SMOKE_ADDR:-127.0.0.1:17421}"
MADDR="${LIGRA_SMOKE_METRICS_ADDR:-127.0.0.1:17422}"
ART="${LIGRA_SMOKE_ARTIFACTS:-target/smoke-artifacts}"
mkdir -p "$ART"

if [[ ! -x "$BIN" ]]; then
    echo "serve_smoke: $BIN not found (build with: cargo build --release -p ligra-engine)" >&2
    exit 1
fi

"$BIN" --listen "$ADDR" --workers 2 --metrics-addr "$MADDR" &
SERVER_PID=$!
cleanup() { kill "$SERVER_PID" 2>/dev/null || true; }
trap cleanup EXIT

# Wait for the listener to come up.
up=0
for _ in $(seq 1 100); do
    if printf '{"op":"ping"}\n' | "$BIN" --client "$ADDR" 2>/dev/null | grep -q '"pong"'; then
        up=1
        break
    fi
    sleep 0.1
done
[[ "$up" == 1 ]] || { echo "serve_smoke: server never came up on $ADDR" >&2; exit 1; }

# Scrape the Prometheus endpoint over raw TCP (no curl in minimal CI
# images): send an HTTP/1.0 GET, strip the response head, keep the body.
scrape() { # scrape <out-file>
    exec 3<>"/dev/tcp/${MADDR%:*}/${MADDR#*:}" \
        || { echo "serve_smoke: FAIL — metrics endpoint $MADDR unreachable" >&2; exit 1; }
    printf 'GET /metrics HTTP/1.0\r\n\r\n' >&3
    tr -d '\r' <&3 | sed '1,/^$/d' > "$1"
    exec 3<&- 3>&-
}
metric() { # metric <file> <exposition-line-prefix> -> value
    awk -v p="$2" 'index($0, p) == 1 { print $NF }' "$1"
}

# First scrape before the session: the endpoint must be live mid-run,
# not only at shutdown.
scrape "$ART/metrics-before.txt"

OUT=$("$BIN" --client "$ADDR" <<'EOF'
{"op":"gen","family":"rmat","log_n":12}
{"op":"submit","query":"bfs","source":0}
{"op":"wait","id":1}
{"op":"submit","query":"bfs","source":0}
{"op":"wait","id":2}
{"op":"submit","query":"pagerank","max_iters":50,"deadline_ms":0}
{"op":"wait","id":3}
{"op":"span","id":3}
{"op":"stats"}
EOF
)
echo "$OUT"

line() { echo "$OUT" | sed -n "${1}p"; }
expect() { # expect <line-no> <grep-pattern> <label>
    if ! line "$1" | grep -q "$2"; then
        echo "serve_smoke: FAIL [$3] — response line $1 did not match '$2':" >&2
        line "$1" >&2
        exit 1
    fi
}

expect 1 '"ok":true'                         "gen accepted"
expect 1 '"vertices":4096'                   "gen size"
expect 3 '"status":"done"'                   "bfs completes"
expect 3 '"cache_hit":false'                 "first bfs is a miss"
expect 3 '"reached":'                        "bfs carries a result summary"
expect 5 '"status":"done"'                   "repeat bfs completes"
expect 5 '"cache_hit":true'                  "repeat bfs on same epoch is a cache hit"
expect 7 '"status":"shed"'                   "0ms-deadline query is shed at dequeue"
expect 7 '"edge_map_rounds":0'               "shed query never ran an edgeMap round"
expect 8 '"status":"shed"'                   "span records the shed"
expect 8 '"rounds":0,'                       "span shows zero rounds"
expect 9 '"cache_hits":1'                    "stats count the hit"
expect 9 '"queue_deadline_sheds":1'          "stats count the deadline shed"
expect 9 '"completed":2'                     "stats count the completions"

# Second scrape, mid-run after the session: the pinned families must all
# be present and the counters must agree with the session just driven.
scrape "$ART/metrics-after.txt"
for fam in ligra_epoch ligra_queue_depth ligra_running_queries \
    ligra_queries_submitted_total ligra_queries_retired_total \
    ligra_overload_sheds_total ligra_cache_hits_total \
    ligra_fault_injections_total ligra_wire_requests_total \
    ligra_wire_malformed_total ligra_queue_wait_ns ligra_run_time_ns; do
    if ! grep -q "^# TYPE $fam " "$ART/metrics-after.txt"; then
        echo "serve_smoke: FAIL — family $fam missing from scrape" >&2
        exit 1
    fi
done
mexpect() { # mexpect <exposition-line-prefix> <value> <label>
    got=$(metric "$ART/metrics-after.txt" "$1")
    if [[ "$got" != "$2" ]]; then
        echo "serve_smoke: FAIL [$3] — scrape has '$1' = '$got', want $2" >&2
        exit 1
    fi
}
mexpect 'ligra_queries_submitted_total ' 3          "scrape counts the submits"
mexpect 'ligra_queries_retired_total{status="done"} ' 2 "scrape counts the completions"
mexpect 'ligra_queries_retired_total{status="shed"} ' 1 "scrape counts the deadline shed"
mexpect 'ligra_cache_hits_total ' 1                 "scrape counts the cache hit"

# Counters are monotone: the session strictly grew the wire counters
# between the two scrapes.
for ctr in ligra_wire_requests_total ligra_wire_bytes_total; do
    before=$(metric "$ART/metrics-before.txt" "$ctr ")
    after=$(metric "$ART/metrics-after.txt" "$ctr ")
    if (( after <= before )); then
        echo "serve_smoke: FAIL — $ctr not monotone across scrapes ($before -> $after)" >&2
        exit 1
    fi
done

# Clean shutdown path: the server acknowledges, then exits.
printf '{"op":"shutdown"}\n' | "$BIN" --client "$ADDR" | grep -q '"shutting-down"'
for _ in $(seq 1 50); do
    kill -0 "$SERVER_PID" 2>/dev/null || break
    sleep 0.1
done
if kill -0 "$SERVER_PID" 2>/dev/null; then
    echo "serve_smoke: FAIL — server still alive after shutdown op" >&2
    exit 1
fi
trap - EXIT

echo "serve_smoke: OK"
