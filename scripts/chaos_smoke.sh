#!/usr/bin/env bash
# Chaos smoke for ligra-serve: runs the server with deterministic
# `wire.read` faults armed (requires a build with the `fault-inject`
# feature) and proves graceful degradation on a live socket:
#
#   phase 1 (raw socket): an injected wire fault surfaces as a typed,
#     transient error *response* — and malformed / oversized request lines
#     get error responses of their own — while the same connection keeps
#     serving afterwards;
#   phase 2 (retrying client): the bundled `--client` rides out an
#     injected transient fault with backoff and still completes its BFS,
#     and the span/trace telemetry is exported as CI artifacts.
#
# Fault schedules are hit-indexed and the raw-socket phase avoids the
# ping-based readiness probe (a bare TCP connect consumes no wire.read
# hits), so every assertion below is deterministic.
#
# Usage: scripts/chaos_smoke.sh [path-to-ligra-serve]
#        (build with: cargo build --release -p ligra-engine --features fault-inject)
set -euo pipefail

BIN="${1:-./target/release/ligra-serve}"
HOST=127.0.0.1
PORT="${LIGRA_CHAOS_PORT:-17423}"
ADDR="$HOST:$PORT"
ART="${LIGRA_CHAOS_ARTIFACTS:-target/chaos-artifacts}"

if [[ ! -x "$BIN" ]]; then
    echo "chaos_smoke: $BIN not found (build with: cargo build --release -p ligra-engine --features fault-inject)" >&2
    exit 1
fi
mkdir -p "$ART"

SERVER_PID=""
cleanup() { [[ -n "$SERVER_PID" ]] && kill "$SERVER_PID" 2>/dev/null || true; }
trap cleanup EXIT

fail() {
    echo "chaos_smoke: FAIL — $*" >&2
    exit 1
}

start_server() { # start_server <log-name> [server args...]
    local log="$ART/$1"
    shift
    "$BIN" --listen "$ADDR" --workers 2 "$@" 2>"$log" &
    SERVER_PID=$!
    # A bare connect (no request line) never touches the wire.read hit
    # counter, so readiness polling does not perturb the fault schedule.
    for _ in $(seq 1 100); do
        if (exec 3<>"/dev/tcp/$HOST/$PORT") 2>/dev/null; then
            return 0
        fi
        kill -0 "$SERVER_PID" 2>/dev/null || break
        sleep 0.1
    done
    echo "chaos_smoke: server never came up on $ADDR; its log:" >&2
    cat "$log" >&2 || true
    exit 1
}

shutdown_server() {
    printf '{"op":"shutdown"}\n' | "$BIN" --client "$ADDR" | grep -q '"shutting-down"' \
        || fail "shutdown not acknowledged"
    for _ in $(seq 1 50); do
        kill -0 "$SERVER_PID" 2>/dev/null || { SERVER_PID=""; return 0; }
        sleep 0.1
    done
    fail "server still alive after shutdown op"
}

expect() { # expect <text> <line-no> <grep-pattern> <label>
    if ! sed -n "${2}p" <<<"$1" | grep -q "$3"; then
        echo "chaos_smoke: FAIL [$4] — response line $2 did not match '$3':" >&2
        sed -n "${2}p" <<<"$1" >&2
        exit 1
    fi
}

# ---- Phase 1: raw socket sees the injected error; connection survives ----
# wire.read hits: ping=1, ping=2 (injected), garbage=3; the oversized line
# is rejected before the fault hook, so the final ping is hit 4.
start_server phase1_server.log --fault wire.read:error:2 --fault-seed 11

exec 3<>"/dev/tcp/$HOST/$PORT"
{
    printf '{"op":"ping"}\n'
    printf '{"op":"ping"}\n'
    printf 'this line is not a request\n'
    head -c 70000 /dev/zero | tr '\0' 'x'
    printf '\n'
    printf '{"op":"ping"}\n'
} >&3
RAW=$(head -n 5 <&3)
exec 3>&- 3<&-
printf '%s\n' "$RAW" | tee "$ART/phase1_session.jsonl"

expect "$RAW" 1 '"pong"'                          "first ping answers"
expect "$RAW" 2 'injected fault at wire.read'     "armed hit surfaces as a typed error"
expect "$RAW" 2 '"transient":true'                "injected wire error is marked transient"
expect "$RAW" 3 '"ok":false'                      "malformed line gets an error response"
expect "$RAW" 4 'too long'                        "oversized line is drained and reported"
expect "$RAW" 5 '"pong"'                          "the same connection keeps serving"

shutdown_server
echo "chaos_smoke: phase 1 OK (typed wire fault + malformed input, connection survived)"

# ---- Phase 2: the retrying client rides out the fault transparently ----
# wire.read hits: ping=1, gen=2, submit=3 (injected -> client retries)=4,
# wait=5, span=6, trace=7, stats=8.
start_server phase2_server.log --fault wire.read:error:3 --fault-seed 7

OUT=$("$BIN" --client "$ADDR" 2>"$ART/phase2_client_retry.log" <<'EOF'
{"op":"ping"}
{"op":"gen","family":"rmat","log_n":10}
{"op":"submit","query":"bfs","source":0}
{"op":"wait","id":1}
{"op":"span","id":1}
{"op":"trace"}
{"op":"stats"}
EOF
)
printf '%s\n' "$OUT" | tee "$ART/phase2_session.jsonl"

grep -q 'transient failure, retry 1/3' "$ART/phase2_client_retry.log" \
    || fail "client never logged the transient retry (see $ART/phase2_client_retry.log)"
expect "$OUT" 2 '"ok":true'           "gen accepted"
expect "$OUT" 3 '"ok":true'           "submit succeeds after the retry"
expect "$OUT" 3 '"id":1'              "retried submit got the first query id"
expect "$OUT" 4 '"status":"done"'     "bfs completes despite the injected fault"
expect "$OUT" 5 '"status":"done"'     "span records the completed run"
expect "$OUT" 6 '"trace":\['          "trace op exports the span array"
expect "$OUT" 7 '"completed":1'       "stats count the completion"
expect "$OUT" 7 '"panics":0'          "no worker panicked"

# Span artifacts for CI upload: the per-query span line plus the full trace.
sed -n '5p' <<<"$OUT" >"$ART/phase2_span.json"
sed -n '6p' <<<"$OUT" >"$ART/phase2_trace.json"

shutdown_server
trap - EXIT
echo "chaos_smoke: phase 2 OK (client retry rode out the injected fault)"
echo "chaos_smoke: OK (artifacts in $ART)"
