//! Offline stand-in for the subset of the `rayon` API this workspace uses.
//!
//! The build environment has no access to a crates registry, so this path
//! crate provides a drop-in, *sequential* implementation of the rayon
//! surface the codebase depends on: the `par_iter` / `into_par_iter`
//! entry points, the iterator adapters and terminals reachable from them,
//! `ParallelSliceMut::par_sort_unstable_by_key`, `join`, thread-pool
//! introspection, and `ThreadPoolBuilder`.
//!
//! Everything executes on the calling thread in deterministic order. The
//! code written against it stays rayon-correct (atomics, CAS idioms,
//! owner-computes partitioning are all preserved), so swapping the real
//! work-stealing rayon back in is a one-line `Cargo.toml` change when a
//! registry is reachable. `current_num_threads()` reports 1 so that
//! granularity heuristics collapse to their sequential paths.

/// The traits needed to call `.par_iter()` / `.into_par_iter()` and chain
/// the usual adapters.
pub mod prelude {
    pub use crate::iter::{
        IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator, ParallelIterator,
    };
    pub use crate::slice::ParallelSliceMut;
}

pub mod iter {
    /// Sequential "parallel" iterator: a newtype over a standard iterator.
    ///
    /// Adapters are inherent methods so that rayon-specific signatures
    /// (`reduce(identity, op)`, `flat_map_iter`, `find_any`) resolve ahead
    /// of the `Iterator` methods of the same name.
    pub struct ParIter<I>(pub(crate) I);

    impl<I: Iterator> Iterator for ParIter<I> {
        type Item = I::Item;
        #[inline]
        fn next(&mut self) -> Option<I::Item> {
            self.0.next()
        }
        #[inline]
        fn size_hint(&self) -> (usize, Option<usize>) {
            self.0.size_hint()
        }
    }

    impl<I: Iterator> ParIter<I> {
        #[inline]
        pub fn map<B, F: FnMut(I::Item) -> B>(self, f: F) -> ParIter<std::iter::Map<I, F>> {
            ParIter(self.0.map(f))
        }

        #[inline]
        pub fn filter<P: FnMut(&I::Item) -> bool>(self, p: P) -> ParIter<std::iter::Filter<I, P>> {
            ParIter(self.0.filter(p))
        }

        #[inline]
        pub fn filter_map<B, F: FnMut(I::Item) -> Option<B>>(
            self,
            f: F,
        ) -> ParIter<std::iter::FilterMap<I, F>> {
            ParIter(self.0.filter_map(f))
        }

        #[inline]
        pub fn enumerate(self) -> ParIter<std::iter::Enumerate<I>> {
            ParIter(self.0.enumerate())
        }

        #[inline]
        pub fn zip<J: IntoIterator>(self, other: J) -> ParIter<std::iter::Zip<I, J::IntoIter>> {
            ParIter(self.0.zip(other))
        }

        /// rayon's `flat_map_iter`: flat-map with a sequential inner iterator.
        #[inline]
        pub fn flat_map_iter<U: IntoIterator, F: FnMut(I::Item) -> U>(
            self,
            f: F,
        ) -> ParIter<std::iter::FlatMap<I, U, F>> {
            ParIter(self.0.flat_map(f))
        }

        #[inline]
        pub fn with_min_len(self, _min: usize) -> Self {
            self
        }

        #[inline]
        pub fn with_max_len(self, _max: usize) -> Self {
            self
        }

        #[inline]
        pub fn for_each<F: FnMut(I::Item)>(self, f: F) {
            self.0.for_each(f)
        }

        #[inline]
        pub fn collect<C: FromIterator<I::Item>>(self) -> C {
            self.0.collect()
        }

        #[inline]
        pub fn count(self) -> usize {
            self.0.count()
        }

        #[inline]
        pub fn sum<S: std::iter::Sum<I::Item>>(self) -> S {
            self.0.sum()
        }

        #[inline]
        pub fn min(self) -> Option<I::Item>
        where
            I::Item: Ord,
        {
            self.0.min()
        }

        #[inline]
        pub fn max(self) -> Option<I::Item>
        where
            I::Item: Ord,
        {
            self.0.max()
        }

        #[inline]
        pub fn all<P: FnMut(I::Item) -> bool>(mut self, mut p: P) -> bool {
            self.0.all(&mut p)
        }

        #[inline]
        pub fn any<P: FnMut(I::Item) -> bool>(mut self, mut p: P) -> bool {
            self.0.any(&mut p)
        }

        /// rayon's two-closure reduce: fold from `identity()` with `op`.
        #[inline]
        pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> I::Item
        where
            ID: Fn() -> I::Item,
            OP: Fn(I::Item, I::Item) -> I::Item,
        {
            self.0.fold(identity(), op)
        }

        /// rayon's `find_any`: any matching element (here: the first).
        #[inline]
        pub fn find_any<P: FnMut(&I::Item) -> bool>(mut self, mut p: P) -> Option<I::Item> {
            self.0.find(&mut p)
        }
    }

    /// Marker re-export so `use ... ParallelIterator` keeps compiling; the
    /// adapters live on [`ParIter`] as inherent methods.
    pub trait ParallelIterator {}
    impl<I: Iterator> ParallelIterator for ParIter<I> {}

    /// `.into_par_iter()` for owned collections and ranges.
    pub trait IntoParallelIterator {
        type SeqIter: Iterator;
        fn into_par_iter(self) -> ParIter<Self::SeqIter>;
    }

    impl<T: IntoIterator> IntoParallelIterator for T {
        type SeqIter = T::IntoIter;
        #[inline]
        fn into_par_iter(self) -> ParIter<T::IntoIter> {
            ParIter(self.into_iter())
        }
    }

    /// `.par_iter()` for `&self` of anything iterable by reference.
    pub trait IntoParallelRefIterator<'a> {
        type SeqIter: Iterator;
        fn par_iter(&'a self) -> ParIter<Self::SeqIter>;
    }

    impl<'a, T: 'a + ?Sized> IntoParallelRefIterator<'a> for T
    where
        &'a T: IntoIterator,
    {
        type SeqIter = <&'a T as IntoIterator>::IntoIter;
        #[inline]
        fn par_iter(&'a self) -> ParIter<Self::SeqIter> {
            ParIter(self.into_iter())
        }
    }

    /// `.par_iter_mut()` for `&mut self` of anything iterable by `&mut`.
    pub trait IntoParallelRefMutIterator<'a> {
        type SeqIter: Iterator;
        fn par_iter_mut(&'a mut self) -> ParIter<Self::SeqIter>;
    }

    impl<'a, T: 'a + ?Sized> IntoParallelRefMutIterator<'a> for T
    where
        &'a mut T: IntoIterator,
    {
        type SeqIter = <&'a mut T as IntoIterator>::IntoIter;
        #[inline]
        fn par_iter_mut(&'a mut self) -> ParIter<Self::SeqIter> {
            ParIter(self.into_iter())
        }
    }
}

pub mod slice {
    /// The sorting and chunking entry points of rayon's `ParallelSliceMut`.
    pub trait ParallelSliceMut<T> {
        fn par_sort_unstable(&mut self)
        where
            T: Ord;
        fn par_sort_unstable_by_key<K: Ord, F: FnMut(&T) -> K>(&mut self, f: F);
        fn par_sort_unstable_by<F: FnMut(&T, &T) -> std::cmp::Ordering>(&mut self, f: F);
        fn par_chunks_mut(
            &mut self,
            chunk_size: usize,
        ) -> crate::iter::ParIter<std::slice::ChunksMut<'_, T>>;
    }

    impl<T> ParallelSliceMut<T> for [T] {
        #[inline]
        fn par_sort_unstable(&mut self)
        where
            T: Ord,
        {
            self.sort_unstable()
        }
        #[inline]
        fn par_sort_unstable_by_key<K: Ord, F: FnMut(&T) -> K>(&mut self, f: F) {
            self.sort_unstable_by_key(f)
        }
        #[inline]
        fn par_sort_unstable_by<F: FnMut(&T, &T) -> std::cmp::Ordering>(&mut self, f: F) {
            self.sort_unstable_by(f)
        }
        #[inline]
        fn par_chunks_mut(
            &mut self,
            chunk_size: usize,
        ) -> crate::iter::ParIter<std::slice::ChunksMut<'_, T>> {
            crate::iter::ParIter(self.chunks_mut(chunk_size))
        }
    }
}

std::thread_local! {
    /// Logical pool size seen by the current thread; set by
    /// [`ThreadPool::install`], 1 outside any pool.
    static POOL_SIZE: std::cell::Cell<usize> = const { std::cell::Cell::new(1) };
}

/// Number of worker threads of the innermost installed pool. Execution is
/// sequential regardless, but the configured size is reported so that
/// granularity heuristics and thread-sweep harnesses observe it.
#[inline]
pub fn current_num_threads() -> usize {
    POOL_SIZE.with(|s| s.get())
}

/// Index of the current worker thread within the pool.
#[inline]
pub fn current_thread_index() -> Option<usize> {
    Some(0)
}

/// Runs both closures (sequentially) and returns both results.
#[inline]
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB,
{
    (a(), b())
}

/// Error type of [`ThreadPoolBuilder::build`]; never produced.
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// A pool handle; `install` runs the closure on the calling thread while
/// reporting the configured thread count via [`current_num_threads`].
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        let prev = POOL_SIZE.with(|s| s.replace(self.num_threads));
        let out = f();
        POOL_SIZE.with(|s| s.set(prev));
        out
    }
}

/// Builder accepted for API compatibility.
#[derive(Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool { num_threads: self.num_threads.max(1) })
    }

    pub fn build_global(self) -> Result<(), ThreadPoolBuildError> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn par_iter_chains_match_sequential() {
        let xs: Vec<u32> = (0..100).collect();
        let sum: u64 = xs.par_iter().map(|&x| x as u64).sum();
        assert_eq!(sum, 4950);
        let evens: Vec<u32> = (0..20u32).into_par_iter().filter(|x| x % 2 == 0).collect();
        assert_eq!(evens.len(), 10);
        let r = (0..10u32).into_par_iter().map(|x| (x, x)).reduce(
            || (0, 0),
            |a, b| {
                if b.1 > a.1 {
                    b
                } else {
                    a
                }
            },
        );
        assert_eq!(r, (9, 9));
    }

    #[test]
    fn par_iter_mut_writes() {
        let mut xs = vec![0u32; 8];
        xs.par_iter_mut().enumerate().for_each(|(i, slot)| *slot = i as u32);
        assert_eq!(xs, (0..8).collect::<Vec<u32>>());
    }

    #[test]
    fn sort_and_join() {
        let mut xs = vec![3u32, 1, 2];
        xs.par_sort_unstable_by_key(|&x| std::cmp::Reverse(x));
        assert_eq!(xs, vec![3, 2, 1]);
        let (a, b) = crate::join(|| 1, || 2);
        assert_eq!(a + b, 3);
    }
}
