//! Offline stand-in for the subset of `proptest` this workspace uses.
//!
//! The build environment has no crates registry, so this path crate
//! re-implements the property-testing surface the test suite depends on:
//! the [`proptest!`] macro, `prop_assert*` macros, integer-range and
//! `any::<T>()` strategies, tuple strategies, `Just`, `prop_oneof!`, a
//! tiny regex string strategy (character classes with `{m,n}` repetition),
//! `collection::{vec, btree_set}`, and the `prop_map` / `prop_flat_map`
//! combinators.
//!
//! Differences from real proptest: cases are generated from a fixed
//! deterministic seed (derived from the test name), and failing inputs are
//! reported but **not shrunk**. `.proptest-regressions` files are ignored.

pub mod test_runner {
    /// Runner configuration; only `cases` is honoured.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to run per property.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    impl ProptestConfig {
        /// Config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// A failed property case.
    #[derive(Debug)]
    pub struct TestCaseError(pub String);

    impl TestCaseError {
        pub fn fail(msg: String) -> Self {
            TestCaseError(msg)
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "{}", self.0)
        }
    }

    /// Deterministic splitmix64 generator seeded from the test name.
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn new(name: &str) -> Self {
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            TestRng { state: h }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform-ish value in `[0, bound)`; `bound` must be nonzero.
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A generator of values of type `Value`.
    ///
    /// Unlike real proptest there is no value tree and no shrinking:
    /// `sample` draws one concrete value.
    pub trait Strategy {
        type Value;

        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }
    }

    /// Output of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn sample(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Output of [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
        type Value = T::Value;
        fn sample(&self, rng: &mut TestRng) -> T::Value {
            (self.f)(self.inner.sample(rng)).sample(rng)
        }
    }

    /// Always produces a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo + 1) as u64;
                    (lo + rng.below(span) as i128) as $t
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! tuple_strategy {
        ($(($($name:ident),+))*) => {$(
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy!((A)(A, B)(A, B, C)(A, B, C, D)(A, B, C, D, E));

    /// Strategy for a type with a canonical arbitrary distribution.
    pub trait ArbitraryValue {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl ArbitraryValue for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl ArbitraryValue for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// Output of [`any`].
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T: ArbitraryValue> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The full-range strategy for `T` (`any::<u32>()`, `any::<bool>()`, …).
    pub fn any<T: ArbitraryValue>() -> Any<T> {
        Any(std::marker::PhantomData)
    }

    /// Uniform choice among boxed alternatives (`prop_oneof!`).
    pub struct Union<V> {
        options: Vec<Box<dyn Strategy<Value = V>>>,
    }

    impl<V> Union<V> {
        pub fn new(options: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one alternative");
            Union { options }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn sample(&self, rng: &mut TestRng) -> V {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].sample(rng)
        }
    }

    /// Boxes a strategy for use in a [`Union`].
    pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
    where
        S: Strategy + 'static,
    {
        Box::new(s)
    }

    /// Strings matched by a micro-regex: literal characters, `[a-z0-9_]`
    /// character classes (ranges and singletons), and `{m}` / `{m,n}`
    /// repetition of the preceding atom. Enough for patterns like
    /// `"[0-9]{1,6}"`; anything else is treated as literal characters.
    impl Strategy for &str {
        type Value = String;
        fn sample(&self, rng: &mut TestRng) -> String {
            #[derive(Clone)]
            struct Atom {
                choices: Vec<char>,
                min: usize,
                max: usize,
            }
            let mut atoms: Vec<Atom> = Vec::new();
            let chars: Vec<char> = self.chars().collect();
            let mut i = 0;
            while i < chars.len() {
                match chars[i] {
                    '[' => {
                        let mut choices = Vec::new();
                        i += 1;
                        while i < chars.len() && chars[i] != ']' {
                            if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                                let (lo, hi) = (chars[i], chars[i + 2]);
                                for c in lo..=hi {
                                    choices.push(c);
                                }
                                i += 3;
                            } else {
                                choices.push(chars[i]);
                                i += 1;
                            }
                        }
                        i += 1; // closing ']'
                        atoms.push(Atom { choices, min: 1, max: 1 });
                    }
                    '{' => {
                        let close = chars[i..].iter().position(|&c| c == '}').map(|p| p + i);
                        let spec: String = match close {
                            Some(c) => chars[i + 1..c].iter().collect(),
                            None => String::new(),
                        };
                        if let Some(last) = atoms.last_mut() {
                            let mut parts = spec.splitn(2, ',');
                            let m = parts.next().and_then(|s| s.parse().ok()).unwrap_or(1);
                            let n = parts.next().and_then(|s| s.parse().ok()).unwrap_or(m);
                            last.min = m;
                            last.max = n.max(m);
                        }
                        i = close.map_or(chars.len(), |c| c + 1);
                    }
                    c => {
                        atoms.push(Atom { choices: vec![c], min: 1, max: 1 });
                        i += 1;
                    }
                }
            }
            let mut out = String::new();
            for a in &atoms {
                let reps = a.min + rng.below((a.max - a.min + 1) as u64) as usize;
                for _ in 0..reps {
                    if !a.choices.is_empty() {
                        let j = rng.below(a.choices.len() as u64) as usize;
                        out.push(a.choices[j]);
                    }
                }
            }
            out
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::BTreeSet;

    /// `Vec` strategy: length drawn from `size`, elements from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: std::ops::Range<usize>,
    }

    /// Vector of `size.start..size.end` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start).max(1) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// `BTreeSet` strategy; the set may be smaller than the drawn length
    /// when duplicates collide (matches proptest's best-effort semantics).
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: std::ops::Range<usize>,
    }

    /// Set of roughly `size` elements drawn from `element`.
    pub fn btree_set<S>(element: S, size: std::ops::Range<usize>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size }
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let span = (self.size.end - self.size.start).max(1) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Declares property tests. Each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` deterministic samples.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($cfg); $($rest)*);
    };
    (@run ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::new(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                $(let $pat = $crate::strategy::Strategy::sample(&($strat), &mut rng);)+
                let outcome = (|| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!("property {} failed at case {}/{}: {}", stringify!($name), case + 1, config.cases, e);
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::test_runner::ProptestConfig::default()); $($rest)*);
    };
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: {:?} != {:?}: {}", l, r, format!($($fmt)+));
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: {:?} == {:?}", l, r);
    }};
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::boxed($strat)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u32..17, y in 0usize..5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y < 5);
        }

        #[test]
        fn vec_lengths_respect_size(xs in crate::collection::vec(any::<u8>(), 2..6)) {
            prop_assert!(xs.len() >= 2 && xs.len() < 6);
        }

        #[test]
        fn tuples_and_oneof(
            (a, b) in (0u32..10, 0u32..10),
            s in prop_oneof![Just("x"), Just("y")],
        ) {
            prop_assert!(a < 10 && b < 10);
            prop_assert!(s == "x" || s == "y");
        }
    }

    #[test]
    fn regex_strategy_generates_digits() {
        let mut rng = TestRng::new("regex");
        for _ in 0..100 {
            let s = "[0-9]{1,6}".sample(&mut rng);
            assert!(!s.is_empty() && s.len() <= 6, "bad length: {s:?}");
            assert!(s.bytes().all(|b| b.is_ascii_digit()), "non-digit: {s:?}");
        }
    }

    #[test]
    fn flat_map_scales_inner_range() {
        let mut rng = TestRng::new("flat_map");
        let strat = (2u32..10).prop_flat_map(|n| (0u32..n).prop_map(move |x| (n, x)));
        for _ in 0..50 {
            let (n, x) = strat.sample(&mut rng);
            assert!(x < n);
        }
    }
}
