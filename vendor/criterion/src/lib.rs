//! Offline stand-in for the subset of `criterion` this workspace uses.
//!
//! Provides `Criterion`, `benchmark_group` / `bench_function` / `iter`,
//! and the `criterion_group!` / `criterion_main!` macros with a simple
//! best-of-N wall-clock measurement (no statistics, plots, or reports).
//! Honors `--bench` and name-filter CLI arguments loosely: any positional
//! argument is treated as a substring filter on benchmark names.

use std::time::Instant;

/// Re-export mirror of `criterion::black_box`.
pub use std::hint::black_box;

/// Top-level harness handle.
pub struct Criterion {
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // Positional args that are not flags act as a name filter, matching
        // `cargo bench -- <filter>` behaviour.
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-') && !a.is_empty());
        Criterion { filter }
    }
}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\ngroup {name}");
        BenchmarkGroup { criterion: self, group: name.to_string(), sample_size: 10 }
    }

    fn matches(&self, full_name: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| full_name.contains(f))
    }
}

/// A named collection of benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    group: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples to take per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark: `f` receives a [`Bencher`] whose `iter` is timed.
    pub fn bench_function<F>(&mut self, name: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.group, name);
        if !self.criterion.matches(&full) {
            return self;
        }
        let mut b = Bencher { samples: self.sample_size, best_ns: u128::MAX, total_ns: 0 };
        f(&mut b);
        let best = b.best_ns as f64 / 1e9;
        let mean = b.total_ns as f64 / 1e9 / self.sample_size as f64;
        println!("  {full:<50} best {:>12} mean {:>12}", fmt_secs(best), fmt_secs(mean));
        self
    }

    /// Ends the group (printing nothing; kept for API compatibility).
    pub fn finish(&mut self) {}
}

fn fmt_secs(s: f64) -> String {
    if s < 1e-6 {
        format!("{:.1} ns", s * 1e9)
    } else if s < 1e-3 {
        format!("{:.2} µs", s * 1e6)
    } else if s < 1.0 {
        format!("{:.2} ms", s * 1e3)
    } else {
        format!("{s:.3} s")
    }
}

/// Per-benchmark measurement handle.
pub struct Bencher {
    samples: usize,
    best_ns: u128,
    total_ns: u128,
}

impl Bencher {
    /// Times `body` `sample_size` times, tracking best and mean.
    pub fn iter<R>(&mut self, mut body: impl FnMut() -> R) {
        // One untimed warm-up run.
        black_box(body());
        for _ in 0..self.samples {
            let t0 = Instant::now();
            black_box(body());
            let ns = t0.elapsed().as_nanos();
            self.best_ns = self.best_ns.min(ns);
            self.total_ns += ns;
        }
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the bench entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
