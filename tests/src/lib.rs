//! Shared helpers for the cross-crate integration tests.
//!
//! The real content of this package lives in its `tests/` directory; this
//! library only hosts utilities reused by several integration test files.
