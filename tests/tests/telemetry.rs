//! End-to-end telemetry: real application runs produce traces whose
//! events are internally consistent, whose exports round-trip losslessly
//! through both serialization formats, and whose counters respect the
//! structural bounds of the graph being traversed.

use ligra::{
    from_csv, from_json_lines, summary, to_csv, to_json_lines, EdgeMapOptions, Mode, NoopRecorder,
    Op, Traversal, TraversalStats,
};
use ligra_apps as apps;
use ligra_graph::generators::rmat::RmatOptions;
use ligra_graph::generators::{grid3d, rmat};

#[test]
fn bfs_trace_has_one_event_per_round_and_nonzero_monotone_time() {
    let g = rmat(&RmatOptions::paper(11));
    let mut stats = TraversalStats::new();
    let result = apps::bfs_traced(&g, 0, EdgeMapOptions::default(), &mut stats);
    assert_eq!(stats.edge_map_rounds().count(), result.rounds);
    // Wall-clock is recorded for every event and total time accumulates.
    let mut running = 0u64;
    for r in &stats.rounds {
        assert!(r.time_ns > 0, "every recorded span must have measured time");
        running += r.time_ns;
    }
    assert_eq!(stats.total_time_ns(), running);
}

#[test]
fn auto_trace_explains_every_direction_decision() {
    let g = rmat(&RmatOptions::paper(12));
    let m = g.num_edges() as u64;
    let mut stats = TraversalStats::new();
    let _ = apps::bfs_traced(&g, 0, EdgeMapOptions::default(), &mut stats);
    let mut saw_dense = false;
    for r in stats.edge_map_rounds() {
        assert_eq!(r.work, r.frontier_vertices + r.frontier_out_edges);
        assert_eq!(r.threshold, m / 20);
        assert!(!r.forced);
        assert_eq!(r.mode == Mode::Dense, r.work > r.threshold);
        saw_dense |= r.mode == Mode::Dense;
    }
    assert!(saw_dense, "rMat BFS must trip the dense heuristic at its peak");
}

#[test]
fn conversion_flags_mark_representation_switches() {
    let g = rmat(&RmatOptions::paper(12));
    let mut stats = TraversalStats::new();
    let _ = apps::bfs_traced(&g, 0, EdgeMapOptions::default(), &mut stats);
    for r in stats.edge_map_rounds() {
        let wants_sparse = r.mode == Mode::Sparse;
        let input_sparse = r.input_repr == ligra::ReprKind::Sparse;
        if r.frontier_vertices > 0 {
            assert_eq!(r.converted, wants_sparse != input_sparse);
        }
    }
    // A low-diameter BFS goes sparse -> dense -> sparse, so at least one
    // round converted its input representation.
    assert!(stats.edge_map_rounds().any(|r| r.converted));
}

#[test]
fn dense_pull_scans_at_most_all_in_edges() {
    let g = grid3d(12); // symmetric: in-edges == out-edges == m
    let m = g.num_edges() as u64;
    let mut stats = TraversalStats::new();
    let opts = EdgeMapOptions::new().traversal(Traversal::Dense);
    let _ = apps::bfs_traced(&g, 0, opts, &mut stats);
    for r in stats.edge_map_rounds() {
        assert_eq!(r.mode, Mode::Dense);
        assert!(r.forced);
        // Early exit can only shrink the scan, and scanned + skipped
        // always partition the full in-edge set.
        assert!(r.edges_scanned <= m);
        assert_eq!(r.edges_scanned + r.edges_skipped, m);
    }
}

#[test]
fn frontier_bytes_pin_exact_push_output_and_packed_dense_reads() {
    // Pins the memory-traffic contract of the representation work: the
    // sparse push allocates exactly |output| slots (4 bytes each, no
    // sentinel padding between frontier and result), and every dense round
    // streams the n/8-byte packed bitset — once in, once out.
    let g = rmat(&RmatOptions::paper(12));
    let n = g.num_vertices() as u64;
    let packed = n.div_ceil(64) * 8;
    let mut stats = TraversalStats::new();
    let _ = apps::bfs_traced(&g, 0, EdgeMapOptions::default(), &mut stats);
    let mut saw = (false, false);
    for r in stats.edge_map_rounds() {
        if r.frontier_vertices == 0 {
            assert_eq!(r.frontier_bytes, 0);
            continue;
        }
        match r.mode {
            Mode::Sparse => {
                assert_eq!(r.frontier_bytes, 4 * (r.frontier_vertices + r.output_vertices));
                saw.0 = true;
            }
            Mode::Dense | Mode::DenseForward => {
                assert_eq!(r.frontier_bytes, 2 * packed);
                saw.1 = true;
            }
        }
    }
    assert!(saw.0 && saw.1, "BFS on rMat must exercise both sparse and dense rounds");
}

#[test]
fn real_traces_round_trip_through_both_formats() {
    let g = rmat(&RmatOptions::paper(10));
    let mut stats = TraversalStats::new();
    let _ = apps::bfs_traced(&g, 0, EdgeMapOptions::default(), &mut stats);
    let _ = apps::cc_traced(&g, EdgeMapOptions::default(), &mut stats);
    assert!(stats.rounds.iter().any(|r| r.op != Op::EdgeMap), "vertex ops must be in the trace");

    let via_json = from_json_lines(&to_json_lines(&stats)).expect("json round-trip");
    assert_eq!(via_json, stats);
    let via_csv = from_csv(&to_csv(&stats)).expect("csv round-trip");
    assert_eq!(via_csv, stats);

    // The summary is computed off the events alone, so it is identical
    // for the original and the re-imported trace.
    assert_eq!(format!("{}", summary(&stats)), format!("{}", summary(&via_json)));
}

#[test]
fn noop_recorder_matches_traced_results() {
    // The zero-overhead path must not change algorithm output.
    let g = rmat(&RmatOptions::paper(10));
    let mut stats = TraversalStats::new();
    let traced = apps::bfs_traced(&g, 0, EdgeMapOptions::default(), &mut stats);
    let untraced = apps::bfs_traced(&g, 0, EdgeMapOptions::default(), &mut NoopRecorder);
    assert_eq!(traced.dist, untraced.dist);
    assert!(!stats.rounds.is_empty());
}

#[test]
fn engine_span_jsonl_keys_are_a_closed_vocabulary() {
    // Pin the per-query span export schema next to the trace pins: the
    // failure counters ride in these spans (`status` gained "panicked"
    // and "shed"; `retries` counts transient-fault re-dispatches), and
    // downstream consumers key on exact field names in exact order.
    use ligra_engine::{Engine, EngineConfig, Query, QueryStatus};
    use std::sync::Arc;

    let engine = Engine::new(EngineConfig::default());
    engine.install_graph(Arc::new(grid3d(4)));
    let h = engine.submit(Query::Bfs { source: 0 }, None).expect("submit");
    assert_eq!(h.wait(), QueryStatus::Done);

    let lines = ligra_engine::spans_to_json_lines(&engine.spans());
    let line = lines.lines().next().expect("one span exported");
    let keys: Vec<&str> = line
        .match_indices('"')
        .collect::<Vec<_>>()
        .chunks(2)
        .filter_map(|pair| match pair {
            [(a, _), (b, _)] if line[*b + 1..].starts_with(':') => Some(&line[*a + 1..*b]),
            _ => None,
        })
        .collect();
    assert_eq!(
        keys,
        [
            "id",
            "query",
            "epoch",
            "status",
            "cache_hit",
            "queue_wait_ns",
            "run_ns",
            "rounds",
            "events",
            "retries"
        ],
        "span JSONL schema changed: {line}"
    );
}
