//! End-to-end telemetry: real application runs produce traces whose
//! events are internally consistent, whose exports round-trip losslessly
//! through both serialization formats, and whose counters respect the
//! structural bounds of the graph being traversed.

use ligra::{
    from_csv, from_json_lines, summary, to_csv, to_json_lines, EdgeMapOptions, Mode, NoopRecorder,
    Op, Traversal, TraversalStats,
};
use ligra_apps as apps;
use ligra_graph::generators::rmat::RmatOptions;
use ligra_graph::generators::{grid3d, rmat};

#[test]
fn bfs_trace_has_one_event_per_round_and_nonzero_monotone_time() {
    let g = rmat(&RmatOptions::paper(11));
    let mut stats = TraversalStats::new();
    let result = apps::bfs_traced(&g, 0, EdgeMapOptions::default(), &mut stats);
    assert_eq!(stats.edge_map_rounds().count(), result.rounds);
    // Wall-clock is recorded for every event and total time accumulates.
    let mut running = 0u64;
    for r in &stats.rounds {
        assert!(r.time_ns > 0, "every recorded span must have measured time");
        running += r.time_ns;
    }
    assert_eq!(stats.total_time_ns(), running);
}

#[test]
fn auto_trace_explains_every_direction_decision() {
    let g = rmat(&RmatOptions::paper(12));
    let m = g.num_edges() as u64;
    let mut stats = TraversalStats::new();
    let _ = apps::bfs_traced(&g, 0, EdgeMapOptions::default(), &mut stats);
    let mut saw_dense = false;
    for r in stats.edge_map_rounds() {
        assert_eq!(r.work, r.frontier_vertices + r.frontier_out_edges);
        assert_eq!(r.threshold, m / 20);
        assert!(!r.forced);
        assert_eq!(r.mode == Mode::Dense, r.work > r.threshold);
        saw_dense |= r.mode == Mode::Dense;
    }
    assert!(saw_dense, "rMat BFS must trip the dense heuristic at its peak");
}

#[test]
fn conversion_flags_mark_representation_switches() {
    let g = rmat(&RmatOptions::paper(12));
    let mut stats = TraversalStats::new();
    let _ = apps::bfs_traced(&g, 0, EdgeMapOptions::default(), &mut stats);
    for r in stats.edge_map_rounds() {
        let wants_sparse = r.mode == Mode::Sparse;
        let input_sparse = r.input_repr == ligra::ReprKind::Sparse;
        if r.frontier_vertices > 0 {
            assert_eq!(r.converted, wants_sparse != input_sparse);
        }
    }
    // A low-diameter BFS goes sparse -> dense -> sparse, so at least one
    // round converted its input representation.
    assert!(stats.edge_map_rounds().any(|r| r.converted));
}

#[test]
fn dense_pull_scans_at_most_all_in_edges() {
    let g = grid3d(12); // symmetric: in-edges == out-edges == m
    let m = g.num_edges() as u64;
    let mut stats = TraversalStats::new();
    let opts = EdgeMapOptions::new().traversal(Traversal::Dense);
    let _ = apps::bfs_traced(&g, 0, opts, &mut stats);
    for r in stats.edge_map_rounds() {
        assert_eq!(r.mode, Mode::Dense);
        assert!(r.forced);
        // Early exit can only shrink the scan, and scanned + skipped
        // always partition the full in-edge set.
        assert!(r.edges_scanned <= m);
        assert_eq!(r.edges_scanned + r.edges_skipped, m);
    }
}

#[test]
fn frontier_bytes_pin_exact_push_output_and_packed_dense_reads() {
    // Pins the memory-traffic contract of the representation work: the
    // sparse push allocates exactly |output| slots (4 bytes each, no
    // sentinel padding between frontier and result), and every dense round
    // streams the n/8-byte packed bitset — once in, once out.
    let g = rmat(&RmatOptions::paper(12));
    let n = g.num_vertices() as u64;
    let packed = n.div_ceil(64) * 8;
    let mut stats = TraversalStats::new();
    let _ = apps::bfs_traced(&g, 0, EdgeMapOptions::default(), &mut stats);
    let mut saw = (false, false);
    for r in stats.edge_map_rounds() {
        if r.frontier_vertices == 0 {
            assert_eq!(r.frontier_bytes, 0);
            continue;
        }
        match r.mode {
            Mode::Sparse => {
                assert_eq!(r.frontier_bytes, 4 * (r.frontier_vertices + r.output_vertices));
                saw.0 = true;
            }
            Mode::Dense | Mode::DenseForward | Mode::Partitioned => {
                assert_eq!(r.frontier_bytes, 2 * packed);
                saw.1 = true;
            }
        }
    }
    assert!(saw.0 && saw.1, "BFS on rMat must exercise both sparse and dense rounds");
}

#[test]
fn partitioned_rounds_report_bin_traffic_and_classic_rounds_do_not() {
    // The three partition telemetry columns are zero on every classic
    // round and internally consistent on partitioned ones: 8 bytes of
    // bin entry per scanned out-edge on an unweighted graph, at least
    // one flushed bin whenever anything was scattered.
    let g = rmat(&RmatOptions::paper(12));
    let mut stats = TraversalStats::new();
    let _ = apps::bfs_traced(&g, 0, EdgeMapOptions::default(), &mut stats);
    for r in stats.edge_map_rounds() {
        assert_eq!(r.partitions, 0, "auto stays classic below the partition floor");
        assert_eq!(r.bins_flushed, 0);
        assert_eq!(r.scatter_bytes, 0);
    }

    let mut stats = TraversalStats::new();
    let opts = EdgeMapOptions::new().traversal(Traversal::Partitioned).partition_bits(8);
    let _ = apps::bfs_traced(&g, 0, opts, &mut stats);
    let n = g.num_vertices() as u64;
    let mut saw_scatter = false;
    for r in stats.edge_map_rounds() {
        assert_eq!(r.mode, Mode::Partitioned);
        assert!(r.forced);
        if r.frontier_vertices == 0 {
            continue;
        }
        assert_eq!(r.partitions, n.div_ceil(256));
        assert_eq!(r.scatter_bytes, 8 * r.edges_scanned);
        if r.edges_scanned > 0 {
            assert!(r.bins_flushed > 0);
            saw_scatter = true;
        }
    }
    assert!(saw_scatter, "a forced partitioned BFS must scatter something");
}

#[test]
fn auto_upgrades_to_partitioned_only_above_both_floors() {
    // End-to-end pin of the extended direction heuristic: with the
    // vertex floor lowered to cover the test graph, the heaviest BFS
    // rounds (dense territory AND out-edges > m/4) go partitioned, and
    // the decision is exactly reconstructible from the recorded columns.
    let g = rmat(&RmatOptions::paper(12));
    let m = g.num_edges() as u64;
    let mut stats = TraversalStats::new();
    let opts = EdgeMapOptions::new().partition_min_vertices(1);
    let _ = apps::bfs_traced(&g, 0, opts, &mut stats);
    let mut saw_partitioned = false;
    for r in stats.edge_map_rounds() {
        assert!(!r.forced);
        let dense_territory = r.work > r.threshold;
        let miss_bound = r.frontier_out_edges > m / 4;
        let expect = match (dense_territory, miss_bound) {
            (true, true) => Mode::Partitioned,
            (true, false) => Mode::Dense,
            (false, _) => Mode::Sparse,
        };
        assert_eq!(r.mode, expect, "round {r:?}");
        saw_partitioned |= r.mode == Mode::Partitioned;
    }
    assert!(saw_partitioned, "rMat BFS peak must clear the m/4 miss-bound floor");
}

#[test]
fn real_traces_round_trip_through_both_formats() {
    let g = rmat(&RmatOptions::paper(10));
    let mut stats = TraversalStats::new();
    let _ = apps::bfs_traced(&g, 0, EdgeMapOptions::default(), &mut stats);
    let _ = apps::cc_traced(&g, EdgeMapOptions::default(), &mut stats);
    assert!(stats.rounds.iter().any(|r| r.op != Op::EdgeMap), "vertex ops must be in the trace");

    let via_json = from_json_lines(&to_json_lines(&stats)).expect("json round-trip");
    assert_eq!(via_json, stats);
    let via_csv = from_csv(&to_csv(&stats)).expect("csv round-trip");
    assert_eq!(via_csv, stats);

    // The summary is computed off the events alone, so it is identical
    // for the original and the re-imported trace.
    assert_eq!(format!("{}", summary(&stats)), format!("{}", summary(&via_json)));
}

#[test]
fn noop_recorder_matches_traced_results() {
    // The zero-overhead path must not change algorithm output.
    let g = rmat(&RmatOptions::paper(10));
    let mut stats = TraversalStats::new();
    let traced = apps::bfs_traced(&g, 0, EdgeMapOptions::default(), &mut stats);
    let untraced = apps::bfs_traced(&g, 0, EdgeMapOptions::default(), &mut NoopRecorder);
    assert_eq!(traced.dist, untraced.dist);
    assert!(!stats.rounds.is_empty());
}

#[test]
fn engine_span_jsonl_keys_are_a_closed_vocabulary() {
    // Pin the per-query span export schema next to the trace pins: the
    // failure counters ride in these spans (`status` gained "panicked"
    // and "shed"; `retries` counts transient-fault re-dispatches), and
    // downstream consumers key on exact field names in exact order.
    use ligra_engine::{Engine, EngineConfig, Query, QueryStatus};
    use std::sync::Arc;

    let engine = Engine::new(EngineConfig::default());
    engine.install_graph(Arc::new(grid3d(4)));
    let h = engine.submit(Query::Bfs { source: 0 }, None).expect("submit");
    assert_eq!(h.wait(), QueryStatus::Done);

    let lines = ligra_engine::spans_to_json_lines(&engine.spans());
    let line = lines.lines().next().expect("one span exported");
    let keys: Vec<&str> = line
        .match_indices('"')
        .collect::<Vec<_>>()
        .chunks(2)
        .filter_map(|pair| match pair {
            [(a, _), (b, _)] if line[*b + 1..].starts_with(':') => Some(&line[*a + 1..*b]),
            _ => None,
        })
        .collect();
    assert_eq!(
        keys,
        [
            "id",
            "trace_id",
            "query",
            "epoch",
            "status",
            "cache_hit",
            "queue_wait_ns",
            "queue_wait_bucket",
            "run_ns",
            "run_bucket",
            "rounds",
            "events",
            "retries"
        ],
        "span JSONL schema changed: {line}"
    );
}

#[test]
fn prometheus_families_are_a_closed_vocabulary() {
    // Pin the scrape vocabulary verbatim: dashboards and alert rules key
    // on exact family names, types, and label keys. Adding, renaming, or
    // relabeling a family is an observability-contract change and must
    // update this list, DESIGN.md §12, and the README scrape example.
    use ligra_engine::metrics::FAMILIES;

    let expected: &[(&str, &str, &[&str])] = &[
        ("ligra_epoch", "gauge", &[]),
        ("ligra_workers", "gauge", &[]),
        ("ligra_queue_capacity", "gauge", &[]),
        ("ligra_queue_depth", "gauge", &[]),
        ("ligra_running_queries", "gauge", &[]),
        ("ligra_inflight_bytes", "gauge", &[]),
        ("ligra_memory_budget_bytes", "gauge", &[]),
        ("ligra_cache_entries", "gauge", &[]),
        ("ligra_queries_submitted_total", "counter", &[]),
        ("ligra_queries_rejected_total", "counter", &[]),
        ("ligra_queries_retired_total", "counter", &["status"]),
        ("ligra_overload_sheds_total", "counter", &[]),
        ("ligra_dispatch_retries_total", "counter", &[]),
        ("ligra_worker_busy_ns_total", "counter", &[]),
        ("ligra_worker_idle_ns_total", "counter", &[]),
        ("ligra_cache_hits_total", "counter", &[]),
        ("ligra_cache_misses_total", "counter", &[]),
        ("ligra_cache_evictions_total", "counter", &[]),
        ("ligra_partition_rounds_total", "counter", &[]),
        ("ligra_partition_bins_flushed_total", "counter", &[]),
        ("ligra_partition_scatter_bytes_total", "counter", &[]),
        ("ligra_mutation_overlay_edges", "gauge", &[]),
        ("ligra_mutation_overlay_vertices", "gauge", &[]),
        ("ligra_mutation_batches_applied_total", "counter", &[]),
        ("ligra_mutation_edges_added_total", "counter", &[]),
        ("ligra_mutation_edges_deleted_total", "counter", &[]),
        ("ligra_mutation_compactions_total", "counter", &[]),
        ("ligra_mutation_compaction_failures_total", "counter", &[]),
        ("ligra_mutation_compaction_ns", "histogram", &[]),
        ("ligra_fault_injections_total", "counter", &["point"]),
        ("ligra_wire_requests_total", "counter", &[]),
        ("ligra_wire_bytes_total", "counter", &[]),
        ("ligra_wire_malformed_total", "counter", &[]),
        ("ligra_queue_wait_ns", "histogram", &["query"]),
        ("ligra_run_time_ns", "histogram", &["query"]),
    ];
    let actual: Vec<(&str, &str, &[&str])> =
        FAMILIES.iter().map(|&(name, typ, labels, _help)| (name, typ, labels)).collect();
    assert_eq!(actual, expected, "Prometheus family vocabulary changed");
    for (name, typ, _, help) in FAMILIES {
        assert!(name.starts_with("ligra_"), "{name}: families share the ligra_ namespace");
        assert!(matches!(*typ, "gauge" | "counter" | "histogram"), "{name}: bad type {typ}");
        assert!(!help.is_empty(), "{name}: HELP text is mandatory");
        assert_eq!(
            name.ends_with("_total"),
            *typ == "counter",
            "{name}: counters and only counters end in _total"
        );
    }
}

#[test]
fn router_prometheus_families_are_a_closed_vocabulary() {
    // Same contract as above, for the `ligra-route` scrape endpoint
    // (DESIGN.md §16): the router exports its own family vocabulary,
    // disjoint from the engine's, with per-backend labels.
    use ligra_engine::metrics::{FAMILIES, ROUTE_FAMILIES};

    let expected: &[(&str, &str, &[&str])] = &[
        ("ligra_route_backends", "gauge", &[]),
        ("ligra_route_backend_state", "gauge", &["backend"]),
        ("ligra_route_backend_outstanding", "gauge", &["backend"]),
        ("ligra_route_requests_total", "counter", &[]),
        ("ligra_route_forwarded_total", "counter", &["backend"]),
        ("ligra_route_backend_errors_total", "counter", &["backend"]),
        ("ligra_route_retries_total", "counter", &[]),
        ("ligra_route_failovers_total", "counter", &[]),
        ("ligra_route_sheds_total", "counter", &[]),
        ("ligra_route_probes_total", "counter", &[]),
        ("ligra_route_probe_failures_total", "counter", &[]),
        ("ligra_route_journal_entries", "gauge", &[]),
        ("ligra_route_journal_replayed_total", "counter", &[]),
        ("ligra_route_wire_malformed_total", "counter", &[]),
        ("ligra_route_request_ns", "histogram", &["backend"]),
    ];
    let actual: Vec<(&str, &str, &[&str])> =
        ROUTE_FAMILIES.iter().map(|&(name, typ, labels, _help)| (name, typ, labels)).collect();
    assert_eq!(actual, expected, "router Prometheus family vocabulary changed");
    for (name, typ, _, help) in ROUTE_FAMILIES {
        assert!(name.starts_with("ligra_route_"), "{name}: router families share the namespace");
        assert!(matches!(*typ, "gauge" | "counter" | "histogram"), "{name}: bad type {typ}");
        assert!(!help.is_empty(), "{name}: HELP text is mandatory");
        assert_eq!(
            name.ends_with("_total"),
            *typ == "counter",
            "{name}: counters and only counters end in _total"
        );
        assert!(
            !FAMILIES.iter().any(|(n, _, _, _)| n == name),
            "{name}: router families must not collide with engine families"
        );
    }
}

#[test]
fn prometheus_exposition_reflects_engine_activity() {
    // A scrape taken after real queries must agree with the engine's own
    // snapshot: counter lines carry the snapshot values, and histogram
    // _count/_sum match the bucket math the quantiles are derived from.
    use ligra_engine::metrics::render;
    use ligra_engine::{Engine, EngineConfig, Query, QueryStatus};
    use std::sync::Arc;

    let engine = Engine::new(EngineConfig::default());
    engine.install_graph(Arc::new(grid3d(4)));
    for source in [0, 1, 2, 0] {
        let h = engine.submit(Query::Bfs { source }, None).expect("submit");
        assert_eq!(h.wait(), QueryStatus::Done);
    }

    let snap = engine.metrics_snapshot();
    let text = render(&snap);
    let line = |needle: &str| {
        text.lines().find(|l| l.starts_with(needle)).unwrap_or_else(|| {
            panic!("scrape is missing a {needle:?} line:\n{text}");
        })
    };
    assert_eq!(line("ligra_queries_submitted_total "), "ligra_queries_submitted_total 4");
    assert_eq!(
        line("ligra_queries_retired_total{status=\"done\"}"),
        "ligra_queries_retired_total{status=\"done\"} 4"
    );
    assert_eq!(line("ligra_cache_hits_total "), "ligra_cache_hits_total 1");
    let (_, wait) =
        snap.queue_wait.iter().find(|(kind, _)| *kind == "bfs").expect("bfs queue-wait histogram");
    assert_eq!(
        line("ligra_queue_wait_ns_count{query=\"bfs\"}"),
        format!("ligra_queue_wait_ns_count{{query=\"bfs\"}} {}", wait.count)
    );
    assert_eq!(
        line("ligra_queue_wait_ns_sum{query=\"bfs\"}"),
        format!("ligra_queue_wait_ns_sum{{query=\"bfs\"}} {}", wait.sum)
    );
    // The +Inf bucket is mandatory and cumulative: it equals _count.
    assert!(text.contains(&format!(
        "ligra_queue_wait_ns_bucket{{query=\"bfs\",le=\"+Inf\"}} {}\n",
        wait.count
    )));
}
