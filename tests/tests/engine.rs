//! Cross-crate integration tests for the query engine: results served
//! through the scheduler must be byte-identical to direct app calls,
//! snapshots must isolate in-flight queries from graph installs, and the
//! deadline/cache machinery must compose under a concurrent client mix.

use ligra::EdgeMapOptions;
use ligra_apps as apps;
use ligra_engine::{Engine, EngineConfig, Query, QueryOutput, QueryStatus, PAGERANK_ALPHA};
use ligra_graph::generators::rmat::RmatOptions;
use ligra_graph::generators::{grid3d, rmat};
use std::sync::Arc;
use std::time::Duration;

fn engine_with(workers: usize, g: ligra_graph::Graph) -> Engine {
    let engine =
        Engine::new(EngineConfig { workers, queue_capacity: 256, ..EngineConfig::default() });
    engine.install_graph(Arc::new(g));
    engine
}

#[test]
fn served_results_match_direct_app_calls() {
    let g = rmat(&RmatOptions::paper(9));
    let direct_bfs = apps::bfs(&g, 0);
    let direct_cc = apps::cc(&g);
    let direct_pr = apps::pagerank_traced(
        &g,
        PAGERANK_ALPHA,
        0.0,
        5,
        EdgeMapOptions::new(),
        &mut ligra::NoopRecorder,
    );

    let engine = engine_with(2, g);
    let bfs = engine.submit(Query::Bfs { source: 0 }, None).unwrap();
    let cc = engine.submit(Query::Cc, None).unwrap();
    let pr = engine.submit(Query::PageRank { iters: 5 }, None).unwrap();

    assert_eq!(bfs.wait(), QueryStatus::Done);
    match &*bfs.result().unwrap() {
        QueryOutput::Bfs(r) => {
            // Parents may differ under parallel CAS races; the distance
            // vector is the deterministic part of BFS.
            assert_eq!(r.dist, direct_bfs.dist);
            assert_eq!(r.rounds, direct_bfs.rounds);
        }
        other => panic!("expected BFS output, got {:?}", other.summary()),
    }

    assert_eq!(cc.wait(), QueryStatus::Done);
    match &*cc.result().unwrap() {
        QueryOutput::Cc(r) => assert_eq!(r.label, direct_cc.label),
        other => panic!("expected CC output, got {:?}", other.summary()),
    }

    assert_eq!(pr.wait(), QueryStatus::Done);
    match &*pr.result().unwrap() {
        // eps = 0 makes the iteration count exact, so ranks are
        // reproducible bit-for-bit.
        QueryOutput::PageRank(r) => assert_eq!(r.rank, direct_pr.rank),
        other => panic!("expected PageRank output, got {:?}", other.summary()),
    }
}

#[test]
fn snapshot_isolation_and_epoch_keyed_cache() {
    let small = grid3d(6);
    let small_n = small.num_vertices();
    let engine = engine_with(2, small);
    let first_epoch = engine.current_epoch().unwrap();

    let h1 = engine.submit(Query::Cc, None).unwrap();
    assert_eq!(h1.wait(), QueryStatus::Done);

    // Install a new graph: the epoch moves, and the same query now runs
    // against the new snapshot instead of being served from cache.
    let big = grid3d(8);
    let big_n = big.num_vertices();
    let second_epoch = engine.install_graph(Arc::new(big));
    assert!(second_epoch > first_epoch);

    let h2 = engine.submit(Query::Cc, None).unwrap();
    assert_eq!(h2.wait(), QueryStatus::Done);
    let (r1, r2) = (h1.result().unwrap(), h2.result().unwrap());
    match (&*r1, &*r2) {
        (QueryOutput::Cc(a), QueryOutput::Cc(b)) => {
            assert_eq!(a.label.len(), small_n);
            assert_eq!(b.label.len(), big_n);
        }
        _ => panic!("expected CC outputs"),
    }

    // Same epoch + same query = cache hit: identical Arc, no re-run.
    let h3 = engine.submit(Query::Cc, None).unwrap();
    assert_eq!(h3.wait(), QueryStatus::Done);
    assert!(Arc::ptr_eq(&h3.result().unwrap(), &r2));
    assert!(h3.span().unwrap().cache_hit);
    assert_eq!(engine.stats().cache_hits, 1);
}

#[test]
fn zero_deadline_result_is_never_cached() {
    let engine = engine_with(1, rmat(&RmatOptions::paper(9)));
    let q = Query::PageRank { iters: 30 };

    // An already-expired deadline is shed at dequeue: no worker time,
    // zero rounds run.
    let shed = engine.submit(q.clone(), Some(Duration::ZERO)).unwrap();
    assert_eq!(shed.wait(), QueryStatus::Shed);
    assert!(shed.result().is_none());
    let span = shed.span().unwrap();
    assert_eq!(span.rounds, 0, "a shed query must not run any rounds");

    // The shed attempt must not have poisoned the cache with a partial
    // result: the re-run is a miss that completes normally.
    let fresh = engine.submit(q.clone(), None).unwrap();
    assert_eq!(fresh.wait(), QueryStatus::Done);
    assert!(!fresh.span().unwrap().cache_hit);

    let hit = engine.submit(q, None).unwrap();
    assert_eq!(hit.wait(), QueryStatus::Done);
    assert!(hit.span().unwrap().cache_hit);
    assert_eq!(engine.stats().queue_deadline_sheds, 1);
    assert_eq!(engine.stats().cancelled, 0);
}

#[test]
fn concurrent_client_mix_completes_with_consistent_stats() {
    let engine = engine_with(3, rmat(&RmatOptions::paper(8)));
    let n = 1u32 << 8;

    std::thread::scope(|s| {
        for c in 0..4u32 {
            let engine = &engine;
            s.spawn(move || {
                for i in 0..12u32 {
                    let q = match (c + i) % 4 {
                        0 => Query::Bfs { source: (i * 37 + c) % n },
                        1 => Query::Cc,
                        2 => Query::Radii { seed: (c * 100 + i) as u64 },
                        _ => Query::PageRank { iters: 3 + (i % 3) },
                    };
                    let h = engine.submit(q, Some(Duration::from_secs(30))).unwrap();
                    assert_eq!(h.wait(), QueryStatus::Done);
                    assert!(h.result().is_some());
                }
            });
        }
    });

    let stats = engine.stats();
    assert_eq!(stats.submitted, 48);
    assert_eq!(stats.completed, 48);
    assert_eq!(stats.cancelled + stats.failed + stats.rejected, 0);
    assert_eq!(stats.queued, 0);
    assert_eq!(stats.running, 0);
    // Repeated Cc/PageRank/Radii submissions on one epoch must have been
    // cache-absorbed, and every accepted query left a span behind.
    assert!(stats.cache_hits > 0);
    assert_eq!(engine.spans().len(), 48);
}

#[test]
fn trace_id_joins_span_to_kernel_trace_on_disk() {
    // The observability contract end to end: a client-supplied trace_id
    // flows wire -> span -> on-disk kernel trace, so one id resolves
    // both the engine-level span and the per-round edgeMap rows it
    // summarizes.
    let dir = std::env::temp_dir().join(format!("ligra-join-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();

    let engine = Engine::new(EngineConfig {
        workers: 1,
        trace_dir: Some(dir.clone()),
        ..EngineConfig::default()
    });
    engine.install_graph(Arc::new(rmat(&RmatOptions::paper(9))));
    let h = engine.submit_traced(Query::Bfs { source: 0 }, None, Some("it-join-7".into())).unwrap();
    assert_eq!(h.trace_id(), "it-join-7");
    assert_eq!(h.wait(), QueryStatus::Done);

    // Resolve the span by trace_id from the exported JSONL...
    let spans = engine.spans();
    let span = spans.iter().find(|s| s.trace_id == "it-join-7").expect("span by trace_id");
    let line = ligra_engine::spans_to_json_lines(&spans);
    assert!(line.contains("\"trace_id\":\"it-join-7\""));

    // ...then the kernel trace by the same id, and check the join: the
    // trace's edgeMap rows are exactly the rounds the span counted, and
    // the rows' work sums are real.
    let path = dir.join("query-it-join-7.jsonl");
    let text = std::fs::read_to_string(&path).expect("kernel trace written");
    let stats = ligra::from_json_lines(&text).expect("kernel trace parses");
    let edge_rounds = stats.rounds.iter().filter(|r| r.op == ligra::Op::EdgeMap).count() as u64;
    assert_eq!(edge_rounds, span.rounds, "span round count joins to trace rows");
    assert_eq!(stats.rounds.len() as u64, span.events);
    assert!(stats.rounds.iter().all(|r| r.time_ns > 0));

    let _ = std::fs::remove_dir_all(&dir);
}
