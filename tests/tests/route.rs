//! Router robustness suite (`ligra_engine::route`, DESIGN.md §16).
//!
//! Drives a real in-process [`Router`] against scriptable fake JSONL
//! backends whose failure modes we control exactly: torn mid-line
//! responses, black holes that accept TCP but never answer, lagged
//! replicas that answer after the router's deadline, and SIGKILL-style
//! death with later rejoin. The chaos sweeps at the bottom are the
//! acceptance gate: across seeds, with one of three replicas killed
//! (and separately lagged) mid-sweep, the router must finish with zero
//! non-transient client errors, at least one failover, and the
//! rejoined replica must converge back to the fleet epoch via journal
//! replay.
//!
//! Fakes mirror the two wire contracts the router depends on: flat
//! one-line JSON responses, and `rseq` dedup on replicated writes
//! (`ligra-serve`'s exactly-once guard), so a lagged replica that
//! applied a write the router recorded as missed does not double-apply
//! it at replay.

use ligra_engine::route::{drain_until, Router, RouterConfig};
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Per-line behavior of a fake backend.
#[derive(Clone, Copy, PartialEq)]
enum Mode {
    /// Answer correctly and immediately.
    Normal,
    /// Write a torn half-response and close the connection.
    Torn,
    /// Read requests forever, never answer (probe-deadline fodder).
    BlackHole,
    /// Sleep this many ms, then apply + answer — a replica slower than
    /// the router's deadline, which still applies the writes it got.
    Lag(u64),
}

#[derive(Clone)]
struct FakeState {
    mode: Arc<Mutex<Mode>>,
    epoch: Arc<AtomicU64>,
    last_rseq: Arc<AtomicU64>,
    next_id: Arc<AtomicU64>,
    alive: Arc<AtomicBool>,
}

struct Fake {
    addr: String,
    state: FakeState,
}

impl Fake {
    fn start() -> Fake {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind fake backend");
        Self::serve(listener)
    }

    /// Rebinds a previously killed fake's address with fresh state — a
    /// restarted replica that lost everything (epoch back to 0).
    fn restart_at(addr: &str) -> Fake {
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            match TcpListener::bind(addr) {
                Ok(l) => return Self::serve(l),
                Err(e) => {
                    assert!(Instant::now() < deadline, "rebind {addr}: {e}");
                    std::thread::sleep(Duration::from_millis(20));
                }
            }
        }
    }

    fn serve(listener: TcpListener) -> Fake {
        let addr = listener.local_addr().expect("fake addr").to_string();
        let state = FakeState {
            mode: Arc::new(Mutex::new(Mode::Normal)),
            epoch: Arc::new(AtomicU64::new(0)),
            last_rseq: Arc::new(AtomicU64::new(0)),
            next_id: Arc::new(AtomicU64::new(0)),
            alive: Arc::new(AtomicBool::new(true)),
        };
        let st = state.clone();
        std::thread::spawn(move || {
            for stream in listener.incoming() {
                if !st.alive.load(Ordering::Acquire) {
                    break; // drop the listener: further connects refused
                }
                let Ok(stream) = stream else { continue };
                let st = st.clone();
                std::thread::spawn(move || handle_conn(stream, st));
            }
        });
        Fake { addr, state }
    }

    fn set_mode(&self, mode: Mode) {
        *self.state.mode.lock().expect("mode lock") = mode;
    }

    /// SIGKILL equivalent: existing connections die, new ones are
    /// refused. The poke connection wakes the accept loop so the
    /// listener actually drops.
    fn kill(&self) {
        self.state.alive.store(false, Ordering::Release);
        let _ = TcpStream::connect(&self.addr);
    }

    fn epoch(&self) -> u64 {
        self.state.epoch.load(Ordering::Acquire)
    }
}

fn handle_conn(stream: TcpStream, st: FakeState) {
    let _ = stream.set_nodelay(true);
    let Ok(clone) = stream.try_clone() else { return };
    let mut reader = BufReader::new(clone);
    let mut writer = stream;
    loop {
        let mut line = String::new();
        match reader.read_line(&mut line) {
            Ok(0) | Err(_) => return,
            Ok(_) => {}
        }
        // A killed process takes its established connections with it:
        // close without applying or answering.
        if !st.alive.load(Ordering::Acquire) {
            return;
        }
        let mode = *st.mode.lock().expect("mode lock");
        match mode {
            Mode::BlackHole => continue, // swallow the request
            Mode::Torn => {
                let _ = writer.write_all(b"{\"ok\":tru");
                let _ = writer.flush();
                return;
            }
            Mode::Lag(ms) => std::thread::sleep(Duration::from_millis(ms)),
            Mode::Normal => {}
        }
        let resp = respond(&line, &st);
        if writer.write_all(format!("{resp}\n").as_bytes()).is_err() {
            return;
        }
    }
}

/// Minimal flat-JSON field scraping, mirroring the wire format.
fn field_u64(line: &str, key: &str) -> Option<u64> {
    let rest = line.split_once(&format!("\"{key}\":"))?.1;
    let digits: String = rest.chars().take_while(char::is_ascii_digit).collect();
    digits.parse().ok()
}

fn field_str<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let rest = line.split_once(&format!("\"{key}\":\""))?.1;
    rest.split_once('"').map(|(v, _)| v)
}

fn respond(line: &str, st: &FakeState) -> String {
    match field_str(line, "op").unwrap_or("") {
        "mutate" | "gen" | "load" | "compact" => {
            let rseq = field_u64(line, "rseq").unwrap_or(0);
            if rseq > 0 && rseq <= st.last_rseq.load(Ordering::Acquire) {
                return format!(
                    "{{\"ok\":true,\"epoch\":{},\"duplicate\":true}}",
                    st.epoch.load(Ordering::Acquire)
                );
            }
            let e = st.epoch.fetch_add(1, Ordering::AcqRel) + 1;
            if rseq > 0 {
                st.last_rseq.store(rseq, Ordering::Release);
            }
            format!("{{\"ok\":true,\"epoch\":{e}}}")
        }
        "stats" => format!(
            "{{\"ok\":true,\"epoch\":{},\"queued\":0,\"running\":0}}",
            st.epoch.load(Ordering::Acquire)
        ),
        "graph-stats" => format!(
            "{{\"ok\":true,\"epoch\":{},\"loaded\":true}}",
            st.epoch.load(Ordering::Acquire)
        ),
        "submit" => {
            let id = st.next_id.fetch_add(1, Ordering::AcqRel) + 1;
            format!("{{\"ok\":true,\"id\":{id},\"status\":\"queued\"}}")
        }
        "poll" | "wait" | "span" => {
            let id = field_u64(line, "id").unwrap_or(0);
            format!("{{\"ok\":true,\"id\":{id},\"status\":\"done\"}}")
        }
        "cancel" => {
            let id = field_u64(line, "id").unwrap_or(0);
            format!("{{\"ok\":true,\"id\":{id},\"status\":\"cancelled\"}}")
        }
        "ping" => "{\"ok\":true,\"pong\":\"fake\"}".to_string(),
        other => format!("{{\"ok\":false,\"error\":\"unknown op {other}\"}}"),
    }
}

/// A router over the given fakes with test-speed probe/request timing.
fn router_over(fakes: &[&Fake]) -> Arc<Router> {
    Router::start(RouterConfig {
        backends: fakes.iter().map(|f| f.addr.clone()).collect(),
        probe_interval: Duration::from_millis(50),
        probe_deadline: Duration::from_millis(150),
        request_deadline: Duration::from_millis(300),
        down_after: 2,
        retries: 3,
        ..RouterConfig::default()
    })
    .expect("router start")
}

fn ask(router: &Router, line: &str) -> String {
    router.handle_line(line).0
}

fn is_ok(resp: &str) -> bool {
    resp.contains("\"ok\":true")
}

fn is_transient(resp: &str) -> bool {
    resp.contains("\"transient\":true")
}

/// Polls `cond` until it holds or ~5s elapse; returns whether it held.
fn eventually(cond: impl Fn() -> bool) -> bool {
    let deadline = Instant::now() + Duration::from_secs(5);
    while Instant::now() < deadline {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    false
}

#[test]
fn torn_mid_line_response_fails_over_to_sibling() {
    let torn = Fake::start();
    let good = Fake::start();
    torn.set_mode(Mode::Torn);
    let router = router_over(&[&torn, &good]);
    // Rotation guarantees the torn replica is picked within two reads;
    // every client response must still come back whole and ok.
    for i in 0..6 {
        let resp = ask(&router, "{\"op\":\"stats\"}");
        assert!(is_ok(&resp), "read {i} failed: {resp}");
    }
    assert!(router.metrics().failovers.get() >= 1, "no failover recorded");
    // The torn replica keeps failing probes and ends Down.
    assert!(
        eventually(|| ask(&router, "{\"op\":\"route-stats\"}").contains("down")),
        "torn replica never marked down"
    );
    router.begin_shutdown();
}

#[test]
fn black_hole_backend_is_downed_by_probe_deadline() {
    let hole = Fake::start();
    let good = Fake::start();
    hole.set_mode(Mode::BlackHole);
    let router = router_over(&[&hole, &good]);
    // The black hole accepts TCP but never answers: only the probe
    // read deadline can catch it.
    assert!(
        eventually(|| {
            let stats = ask(&router, "{\"op\":\"route-stats\"}");
            field_str(&stats, "states").unwrap_or("").starts_with("down")
        }),
        "black-hole replica never marked down"
    );
    // Reads keep working throughout, served by the healthy sibling.
    for _ in 0..4 {
        let resp = ask(&router, "{\"op\":\"stats\"}");
        assert!(is_ok(&resp), "read failed with black-hole replica: {resp}");
    }
    assert!(router.metrics().probe_failures.get() >= 2);
    router.begin_shutdown();
}

#[test]
fn rejoining_replica_replays_journal_to_epoch_parity() {
    let a = Fake::start();
    let b = Fake::start();
    let router = router_over(&[&a, &b]);
    assert!(is_ok(&ask(&router, "{\"op\":\"gen\",\"family\":\"rmat\",\"log_n\":8}")));
    for _ in 0..3 {
        assert!(is_ok(&ask(&router, "{\"op\":\"mutate\",\"add\":\"0-1\"}")));
    }
    assert_eq!(a.epoch(), 4);
    assert_eq!(b.epoch(), 4);

    // Replica b dies and misses two writes.
    let b_addr = b.addr.clone();
    b.kill();
    for _ in 0..2 {
        let resp = ask(&router, "{\"op\":\"mutate\",\"add\":\"2-3\"}");
        assert!(is_ok(&resp), "write with dead replica failed: {resp}");
        assert!(resp.contains("\"replicas_missed\":1"), "missed count absent: {resp}");
    }

    // It restarts empty (epoch 0): the router must detect the epoch
    // regression, rewind its cursor, and replay all six entries.
    let b2 = Fake::restart_at(&b_addr);
    assert!(
        eventually(|| {
            let stats = ask(&router, "{\"op\":\"route-stats\"}");
            field_str(&stats, "applied_seqs") == Some("6,6")
                && field_str(&stats, "epochs") == Some("6,6")
        }),
        "restarted replica never converged: {}",
        ask(&router, "{\"op\":\"route-stats\"}")
    );
    assert_eq!(b2.epoch(), 6, "replayed replica epoch");
    assert!(router.metrics().journal_replayed.get() >= 6);
    let gs = ask(&router, "{\"op\":\"graph-stats\"}");
    assert!(gs.contains("\"in_sync\":true"), "fleet not in sync after replay: {gs}");
    router.begin_shutdown();
}

#[test]
fn submit_wait_fails_over_when_owning_replica_dies() {
    let a = Fake::start();
    let b = Fake::start();
    let router = router_over(&[&a, &b]);
    // Two submits: rotation places one on each replica.
    let r1 = ask(&router, "{\"op\":\"submit\",\"query\":\"bfs\",\"source\":0}");
    let r2 = ask(&router, "{\"op\":\"submit\",\"query\":\"bfs\",\"source\":0}");
    assert!(is_ok(&r1) && is_ok(&r2), "{r1} {r2}");
    a.kill();
    b.kill();
    let a2 = Fake::restart_at(&a.addr);
    // Only replica a is back: waits on ids owned by the dead replica
    // must be re-executed there, not error out.
    for resp in [r1, r2] {
        let id = field_u64(&resp, "id").expect("router id");
        let wait = ask(&router, &format!("{{\"op\":\"wait\",\"id\":{id}}}"));
        assert!(
            is_ok(&wait) || is_transient(&wait),
            "wait after owner death was a hard error: {wait}"
        );
    }
    drop(a2);
    router.begin_shutdown();
}

#[test]
fn all_replicas_down_sheds_with_retry_hint() {
    let a = Fake::start();
    let router = router_over(&[&a]);
    a.kill();
    // Let the prober notice, then reads must shed transiently (never
    // hang, never hard-error).
    assert!(eventually(|| ask(&router, "{\"op\":\"route-stats\"}").contains("down")));
    let resp = ask(&router, "{\"op\":\"stats\"}");
    assert!(is_transient(&resp), "shed response not transient: {resp}");
    assert!(router.metrics().sheds.get() >= 1);
    router.begin_shutdown();
}

#[test]
fn drain_until_reports_quiescence() {
    assert!(drain_until(|| true, Duration::from_millis(10)));
    assert!(!drain_until(|| false, Duration::from_millis(40)));
}

// ---- chaos acceptance sweeps --------------------------------------

enum Disruption {
    Kill,
    Lag,
}

/// One chaos sweep (the ISSUE acceptance shape): a mixed read/write
/// workload over three replicas, one of which is killed or lagged
/// mid-sweep and rejoins afterwards. Asserts zero non-transient client
/// errors, at least one failover, and post-rejoin epoch convergence.
fn chaos_sweep(seed: u64, disruption: Disruption) {
    let fakes = [Fake::start(), Fake::start(), Fake::start()];
    let router = router_over(&[&fakes[0], &fakes[1], &fakes[2]]);
    assert!(is_ok(&ask(&router, "{\"op\":\"gen\",\"family\":\"rmat\",\"log_n\":8}")));

    let victim = (seed as usize) % fakes.len();
    let mut non_transient_errors = Vec::new();
    let mut check = |resp: String| {
        if !is_ok(&resp) && !is_transient(&resp) {
            non_transient_errors.push(resp);
        }
    };
    for i in 0..40u64 {
        // Disrupt just before a read iteration (i % 5 != 0): a write
        // hitting the victim first would penalize it into Degraded and
        // reads would simply avoid it, never exercising read failover.
        if i == 16 {
            match disruption {
                Disruption::Kill => fakes[victim].kill(),
                // Slower than the router's 300ms request deadline:
                // alive, but every exchange times out.
                Disruption::Lag => fakes[victim].set_mode(Mode::Lag(600)),
            }
        }
        if i % 5 == 0 {
            check(ask(&router, &format!("{{\"op\":\"mutate\",\"add\":\"{}-{}\"}}", seed, i)));
        } else {
            let resp = ask(&router, "{\"op\":\"submit\",\"query\":\"bfs\",\"source\":0}");
            if let Some(id) = field_u64(&resp, "id") {
                check(ask(&router, &format!("{{\"op\":\"wait\",\"id\":{id}}}")));
            }
            check(resp);
        }
    }
    assert!(
        non_transient_errors.is_empty(),
        "seed {seed}: non-transient client errors during sweep: {non_transient_errors:?}"
    );
    assert!(router.metrics().failovers.get() >= 1, "seed {seed}: no failover recorded");

    // Rejoin: the killed replica restarts empty; the lagged one simply
    // recovers. Either way the journal must restore epoch parity.
    let _revived = match disruption {
        Disruption::Kill => {
            let addr = fakes[victim].addr.clone();
            Some(Fake::restart_at(&addr))
        }
        Disruption::Lag => {
            fakes[victim].set_mode(Mode::Normal);
            None
        }
    };
    let converged = eventually(|| {
        let stats = ask(&router, "{\"op\":\"route-stats\"}");
        let seqs = field_str(&stats, "applied_seqs").unwrap_or("").to_string();
        let epochs = field_str(&stats, "epochs").unwrap_or("").to_string();
        let uniform = |s: &str| {
            let mut parts = s.split(',');
            let first = parts.next().unwrap_or("");
            !first.is_empty() && parts.all(|p| p == first)
        };
        uniform(&seqs) && uniform(&epochs)
    });
    assert!(
        converged,
        "seed {seed}: rejoined replica never converged: {}",
        ask(&router, "{\"op\":\"route-stats\"}")
    );
    let gs = ask(&router, "{\"op\":\"graph-stats\"}");
    assert!(gs.contains("\"in_sync\":true"), "seed {seed}: fleet diverged after rejoin: {gs}");
    router.begin_shutdown();
}

#[test]
fn chaos_killed_replica_failover_and_rejoin_across_seeds() {
    for seed in [1, 2, 3] {
        chaos_sweep(seed, Disruption::Kill);
    }
}

#[test]
fn chaos_lagged_replica_failover_and_rejoin_across_seeds() {
    for seed in [1, 2, 3] {
        chaos_sweep(seed, Disruption::Lag);
    }
}

/// The `route.forward` fault point: deterministic injected errors on
/// the router→backend hop must surface as failovers, never as client
/// errors — the chaos-build half of the acceptance gate.
#[cfg(feature = "fault-inject")]
#[test]
fn injected_forward_faults_reroute_across_seeds() {
    use ligra_engine::FaultPlan;
    for seed in [1, 2, 3] {
        let a = Fake::start();
        let b = Fake::start();
        let plan =
            FaultPlan::seeded(seed).arm_spec("route.forward:error:2").expect("arm route.forward");
        let router = Router::start(RouterConfig {
            backends: vec![a.addr.clone(), b.addr.clone()],
            probe_interval: Duration::from_millis(50),
            probe_deadline: Duration::from_millis(150),
            request_deadline: Duration::from_millis(300),
            down_after: 2,
            retries: 3,
            fault: Some(Arc::new(plan)),
            ..RouterConfig::default()
        })
        .expect("router start");
        for i in 0..8 {
            let resp = ask(&router, "{\"op\":\"stats\"}");
            assert!(is_ok(&resp), "seed {seed} read {i}: {resp}");
        }
        assert!(
            router.metrics().failovers.get() >= 1,
            "seed {seed}: injected forward fault produced no failover"
        );
        router.begin_shutdown();
    }
}
