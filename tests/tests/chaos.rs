//! Chaos certification of the query engine under deterministic fault
//! injection (DESIGN.md §11). Built only with `--features fault-inject`
//! (which forwards `ligra/fault-inject` and `ligra-engine/fault-inject`
//! and arms the hooks).
//!
//! The sweep drives every engine-side fault point × action across eight
//! seeds and asserts the robustness invariants the scheduler promises:
//!
//! * no worker thread ever dies — a panicking query is contained by the
//!   worker's `catch_unwind` boundary and the pool self-heals;
//! * every submitted query reaches a terminal state (done / cancelled /
//!   failed / panicked / shed) — nothing hangs, nothing is lost;
//! * the result cache never serves a value produced by a faulted run;
//! * an injected panic surfaces as the typed `QueryError::Panicked`
//!   naming the fault point, and the very next query on the same worker
//!   completes normally.
#![cfg(feature = "fault-inject")]

use ligra_apps as apps;
use ligra_engine::{
    Engine, EngineConfig, FaultAction, FaultPlan, FaultPoint, MutateError, MutationConfig,
    MutationLog, Query, QueryError, QueryOutput, QueryStatus,
};
use ligra_graph::generators::grid3d;
use ligra_graph::DeltaBatch;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

const SEEDS: [u64; 8] = [1, 2, 3, 5, 8, 13, 21, 34];

/// The fault points the engine itself passes through while running
/// queries (`graph.load` and `wire.read` live in the `ligra-serve`
/// front-end and are exercised by `scripts/chaos_smoke.sh`).
const ENGINE_POINTS: [FaultPoint; 3] =
    [FaultPoint::EdgemapRound, FaultPoint::EngineDispatch, FaultPoint::EngineCache];

const ACTIONS: [FaultAction; 3] =
    [FaultAction::Panic, FaultAction::Error, FaultAction::Latency(Duration::from_millis(2))];

fn engine_with(plan: FaultPlan, workers: usize) -> Arc<Engine> {
    let engine = Arc::new(Engine::new(EngineConfig {
        workers,
        fault: Some(Arc::new(plan)),
        ..EngineConfig::default()
    }));
    // 512 vertices, symmetric: big enough for multi-round traversals,
    // small enough that the full sweep stays fast.
    engine.install_graph(Arc::new(grid3d(8)));
    engine
}

/// Twelve pairwise-distinct queries, so every clean run is a cache miss
/// and the `engine.cache` point accumulates enough hits to reach any
/// seeded schedule in 1..=8.
fn distinct_query(i: u32) -> Query {
    match i % 4 {
        0 => Query::Bfs { source: i },
        1 => Query::Bc { source: i },
        2 => Query::PageRank { iters: i + 1 },
        _ => Query::Radii { seed: i as u64 },
    }
}

#[test]
fn sweep_seeds_and_points_every_query_terminal_no_worker_dies() {
    for &seed in &SEEDS {
        for point in ENGINE_POINTS {
            for action in ACTIONS {
                let plan = FaultPlan::seeded(seed).arm(point, action);
                let engine = engine_with(plan, 2);
                let label = format!("seed {seed}, {point}, {}", action.name());

                let handles: Vec<_> = (0..12)
                    .map(|i| {
                        engine
                            .submit(distinct_query(i), None)
                            .unwrap_or_else(|e| panic!("{label}: submit rejected: {e}"))
                    })
                    .collect();
                for h in &handles {
                    let status = h.wait();
                    assert!(status.is_terminal(), "{label}: query {} not terminal", h.id());
                }

                let plan = engine.fault_plan().expect("plan installed");
                assert!(plan.total_injected() >= 1, "{label}: the armed fault never fired");
                assert!(engine.workers_alive(), "{label}: a worker thread died");

                // Self-heal: after the fault fired, the pool keeps serving.
                let h = engine
                    .submit(Query::Cc, None)
                    .unwrap_or_else(|e| panic!("{label}: post-fault submit: {e}"));
                assert_eq!(h.wait(), QueryStatus::Done, "{label}: post-fault query failed");

                let stats = engine.stats();
                assert_eq!(stats.inflight_bytes, 0, "{label}: admission charge leaked");
                if matches!(action, FaultAction::Panic) {
                    assert!(stats.panics >= 1, "{label}: contained panic not counted");
                }
            }
        }
    }
}

#[test]
fn injected_panic_is_typed_and_the_same_worker_keeps_serving() {
    for &seed in &SEEDS {
        // One worker, so the follow-up query provably lands on the
        // worker that just contained a panic.
        let plan = FaultPlan::seeded(seed).arm_at(FaultPoint::EdgemapRound, FaultAction::Panic, 1);
        let engine = engine_with(plan, 1);

        let h = engine.submit(Query::Cc, None).expect("submit");
        assert_eq!(h.wait(), QueryStatus::Panicked, "seed {seed}");
        match h.query_error() {
            Some(QueryError::Panicked { point, .. }) => assert_eq!(point, "edgemap.round"),
            other => panic!("seed {seed}: expected Panicked, got {other:?}"),
        }
        assert!(engine.workers_alive(), "seed {seed}: worker died");

        let h2 = engine.submit(Query::Cc, None).expect("submit after panic");
        assert_eq!(h2.wait(), QueryStatus::Done, "seed {seed}: worker did not self-heal");
        assert!(h2.result().is_some());
        let stats = engine.stats();
        assert_eq!(stats.panics, 1, "seed {seed}");
        assert_eq!(stats.completed, 1, "seed {seed}");
    }
}

#[test]
fn cache_never_serves_a_value_from_a_faulted_run() {
    for &seed in &SEEDS {
        for action in [FaultAction::Error, FaultAction::Panic] {
            // Fire on the very first `engine.cache` hit: the first run is
            // the faulted one, and whatever it produced must not be
            // served to anyone else.
            let plan = FaultPlan::seeded(seed).arm_at(FaultPoint::EngineCache, action, 1);
            let engine = engine_with(plan, 2);
            let q = Query::PageRank { iters: 4 };

            let h1 = engine.submit(q.clone(), None).expect("submit");
            let s1 = h1.wait();
            match action {
                // An injected cache error degrades to a cache miss; the
                // caller still gets its result.
                FaultAction::Error => assert_eq!(s1, QueryStatus::Done, "seed {seed}"),
                // A panic at the cache point is contained and typed.
                _ => assert_eq!(s1, QueryStatus::Panicked, "seed {seed}"),
            }

            // The second identical query must re-execute — the faulted
            // run may not have populated the cache.
            let h2 = engine.submit(q.clone(), None).expect("resubmit");
            assert_eq!(h2.wait(), QueryStatus::Done, "seed {seed}");
            let span2 = h2.span().expect("span");
            assert!(!span2.cache_hit, "seed {seed}: cache served a faulted run's value");

            // The clean re-run does cache (the Once-schedule fault is
            // spent), so a third submit is a hit with identical output.
            let h3 = engine.submit(q, None).expect("third submit");
            assert_eq!(h3.wait(), QueryStatus::Done, "seed {seed}");
            assert!(h3.span().expect("span").cache_hit, "seed {seed}: clean run not cached");
            match (h2.result().as_deref(), h3.result().as_deref()) {
                (
                    Some(ligra_engine::QueryOutput::PageRank(a)),
                    Some(ligra_engine::QueryOutput::PageRank(b)),
                ) => assert_eq!(a.rank, b.rank, "seed {seed}: cached value differs"),
                other => panic!("seed {seed}: unexpected outputs {other:?}"),
            }
        }
    }
}

#[test]
fn transient_dispatch_faults_retry_and_count_in_spans() {
    for &seed in &SEEDS {
        let plan =
            FaultPlan::seeded(seed).arm_at(FaultPoint::EngineDispatch, FaultAction::Error, 1);
        let engine = engine_with(plan, 2);
        let h = engine.submit(Query::Bfs { source: 0 }, None).expect("submit");
        // The first dispatch attempt absorbs the injected transient
        // error; the retry completes the query.
        assert_eq!(h.wait(), QueryStatus::Done, "seed {seed}");
        let span = h.span().expect("span");
        assert_eq!(span.retries, 1, "seed {seed}: retry not recorded in span");
        assert_eq!(engine.stats().retries, 1, "seed {seed}");
        assert!(engine.workers_alive());
    }
}

#[test]
fn periodic_faults_under_load_leave_the_engine_consistent() {
    // Heavier mixed run: a fault every third dispatch, across seeds, with
    // concurrent clients. Terminal accounting must balance exactly.
    for &seed in &SEEDS[..4] {
        let plan =
            FaultPlan::seeded(seed).arm_every(FaultPoint::EdgemapRound, FaultAction::Panic, 7);
        let engine = engine_with(plan, 3);
        let handles: Vec<_> =
            (0..24).filter_map(|i| engine.submit(distinct_query(i % 12), None).ok()).collect();
        let mut terminal = 0u64;
        for h in &handles {
            assert!(h.wait().is_terminal(), "seed {seed}: query {} hung", h.id());
            terminal += 1;
        }
        let stats = engine.stats();
        // Cache-hit submits count under `completed` too, so the terminal
        // statuses partition the handle count exactly.
        assert_eq!(
            stats.completed
                + stats.cancelled
                + stats.failed
                + stats.panics
                + stats.queue_deadline_sheds,
            terminal,
            "seed {seed}: terminal accounting does not balance: {stats:?}"
        );
        assert!(engine.workers_alive(), "seed {seed}");
        assert_eq!(stats.inflight_bytes, 0, "seed {seed}");
    }
}

#[test]
fn metrics_stay_truthful_under_armed_faults() {
    // The observability acceptance probe: under a chaos run the metrics
    // registry must show the faults (injection and panic counters
    // nonzero), its quantiles must be the bucket math applied to its own
    // histograms, and the Prometheus rendering must carry the same
    // numbers a scrape would alert on.
    let plan = FaultPlan::seeded(5).arm_every(FaultPoint::EdgemapRound, FaultAction::Panic, 5);
    let engine = engine_with(plan, 2);
    let handles: Vec<_> =
        (0..24).filter_map(|i| engine.submit(distinct_query(i % 12), None).ok()).collect();
    for h in &handles {
        assert!(h.wait().is_terminal());
    }

    let snap = engine.metrics_snapshot();
    let injected: u64 = snap.fault_injections.iter().map(|&(_, n)| n).sum();
    assert!(injected >= 1, "armed fault never surfaced in the injection counters");
    let panicked = snap.retired[3]; // RETIRE_STATUSES order: done, cancelled, failed, panicked, shed
    assert!(panicked >= 1, "contained panics not visible in retired{{status=panicked}}");
    assert_eq!(snap.retired.iter().sum::<u64>(), handles.len() as u64);

    // stats() quantiles are derived from the same histograms the
    // snapshot exposes — bucket math must agree exactly.
    let stats = engine.stats();
    let run = snap.merged_run_time();
    assert_eq!(stats.run_p50_ns, run.p50());
    assert_eq!(stats.run_p99_ns, run.p99());
    assert_eq!(stats.run_max_ns, run.max);
    let wait = snap.merged_queue_wait();
    assert_eq!(stats.queue_wait_p95_ns, wait.p95());
    // A quantile is a bucket upper bound clamped by the observed max, so
    // it can never exceed the true maximum.
    assert!(run.p99() <= run.max);

    // And the scrape tells the same story in the pinned vocabulary.
    let text = ligra_engine::metrics::render(&snap);
    assert!(text
        .lines()
        .any(|l| l.starts_with("ligra_fault_injections_total{point=\"edgemap.round\"}")
            && !l.ends_with(" 0")));
    assert!(
        text.contains(&format!("ligra_queries_retired_total{{status=\"panicked\"}} {panicked}\n"))
    );
    assert!(engine.workers_alive());
}

#[test]
fn writer_vs_readers_keep_snapshot_isolation_under_apply_faults() {
    // One sequential writer churns the graph through the mutation log
    // (with `mutate.apply` periodically erroring by injection) while
    // reader threads run CC queries the whole time. Every reader
    // observation must match the exact graph its span's epoch named —
    // never a half-applied batch, never a mix of two epochs — and a
    // faulted apply must publish nothing.
    for &seed in &SEEDS[..4] {
        let plan =
            FaultPlan::seeded(seed).arm_every(FaultPoint::MutateApply, FaultAction::Error, 3);
        let engine = engine_with(plan, 2);
        let log = Arc::new(MutationLog::new(
            Arc::clone(&engine),
            MutationConfig { compact_threshold: None },
        ));

        // The writer records the expected CC labels for every epoch it
        // publishes (snapshots are immutable, so computing them inline
        // off the store is race-free).
        let expected_for = |engine: &Engine| {
            let snap = engine.current_snapshot().expect("installed");
            (snap.epoch(), apps::cc(snap.graph().as_ref()).label)
        };
        let mut expected: HashMap<u64, Vec<u32>> = HashMap::new();
        let (e0, labels0) = expected_for(&engine);
        expected.insert(e0, labels0);

        let stop = Arc::new(AtomicBool::new(false));
        let readers: Vec<_> = (0..2)
            .map(|_| {
                let engine = Arc::clone(&engine);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut observations = Vec::new();
                    while !stop.load(Ordering::Relaxed) {
                        let Ok(h) = engine.submit(Query::Cc, None) else { continue };
                        if h.wait() != QueryStatus::Done {
                            continue;
                        }
                        let epoch = h.span().expect("finished query has a span").epoch;
                        if let Some(QueryOutput::Cc(r)) = h.result().as_deref() {
                            observations.push((epoch, r.label.clone()));
                        }
                    }
                    observations
                })
            })
            .collect();

        let mut injected = 0u32;
        for i in 0..30u32 {
            let batch = DeltaBatch::new()
                .add_edge(i % 512, (i * 13 + 7) % 512)
                .del_edge(i % 512, (i + 1) % 512);
            match log.apply(&batch) {
                Ok(r) => {
                    let (epoch, labels) = expected_for(&engine);
                    assert_eq!(epoch, r.epoch, "seed {seed}: single writer owns installs");
                    expected.insert(epoch, labels);
                }
                Err(e) => {
                    assert!(
                        matches!(e, MutateError::Injected { point: "mutate.apply", .. }),
                        "seed {seed}: unexpected apply failure {e}"
                    );
                    injected += 1;
                }
            }
        }
        stop.store(true, Ordering::Relaxed);

        let mut checked = 0usize;
        for reader in readers {
            for (epoch, labels) in reader.join().expect("reader thread panicked") {
                let want = expected.get(&epoch).unwrap_or_else(|| {
                    panic!("seed {seed}: reader observed unpublished epoch {epoch}")
                });
                assert_eq!(
                    &labels, want,
                    "seed {seed}: snapshot isolation broken at epoch {epoch}"
                );
                checked += 1;
            }
        }
        assert!(checked > 0, "seed {seed}: readers observed nothing");
        assert!(injected >= 1, "seed {seed}: the armed apply fault never fired");
        assert!(engine.workers_alive(), "seed {seed}");
    }
}

#[test]
fn panicked_compaction_never_poisons_the_store() {
    for &seed in &SEEDS[..4] {
        let plan = FaultPlan::seeded(seed).arm_at(FaultPoint::MutateCompact, FaultAction::Panic, 1);
        let engine = engine_with(plan, 2);
        let log = Arc::new(MutationLog::new(
            Arc::clone(&engine),
            MutationConfig { compact_threshold: None },
        ));
        for i in 0..5u32 {
            log.apply(&DeltaBatch::new().add_edge(i, 511 - i)).expect("apply is unaffected");
        }
        let epoch_before = engine.current_epoch();
        let graph_before = Arc::clone(engine.current_snapshot().expect("snap").graph());
        let labels_before = apps::cc(graph_before.as_ref()).label;

        // The armed compaction panics; the unwind is contained, the
        // failure is typed and counted, and the store still serves the
        // exact pre-compaction snapshot.
        match log.compact() {
            Err(MutateError::Panicked { point, .. }) => assert_eq!(point, "mutate.compact"),
            other => panic!("seed {seed}: expected contained panic, got {other:?}"),
        }
        assert_eq!(engine.current_epoch(), epoch_before, "seed {seed}: epoch moved");
        assert!(
            Arc::ptr_eq(engine.current_snapshot().expect("snap").graph(), &graph_before),
            "seed {seed}: store swapped a graph from a failed compaction"
        );
        assert_eq!(engine.metrics().mutation_compaction_failures.get(), 1, "seed {seed}");
        assert!(!log.status().compacting, "seed {seed}: compactor slot leaked");

        // Queries and mutations keep working on the overlaid snapshot...
        let h = engine.submit(Query::Cc, None).expect("submit after failed compaction");
        assert_eq!(h.wait(), QueryStatus::Done, "seed {seed}");
        // ...and the next compaction (the Once-schedule fault is spent)
        // succeeds with a result identical to the overlaid view.
        let report = log.compact().expect("second compaction");
        let clean = Arc::clone(engine.current_snapshot().expect("snap").graph());
        assert!(!clean.has_overlay(), "seed {seed}");
        assert_eq!(engine.current_epoch(), Some(report.epoch));
        assert_eq!(
            apps::cc(clean.as_ref()).label,
            labels_before,
            "seed {seed}: compaction changed results"
        );
        assert_eq!(engine.metrics().mutation_compactions.get(), 1, "seed {seed}");
        assert!(engine.workers_alive(), "seed {seed}");
    }
}

/// Lock-order certification of the chaos path itself: after a faulted
/// mixed workload (worker panics, contained compaction failures, retry
/// re-enqueues), the global lock oracle must still hold an acyclic
/// acquisition graph — fault recovery takes the same locks in the same
/// order as the happy path. Needs both features: the fault hooks to
/// drive the workload, the tracked guards to observe it.
#[cfg(feature = "lock-check")]
#[test]
fn chaos_workload_certifies_lock_order() {
    let plan = FaultPlan::seeded(7).arm_at(FaultPoint::EngineDispatch, FaultAction::Panic, 3);
    let engine = engine_with(plan, 3);
    let log = Arc::new(MutationLog::new(Arc::clone(&engine), MutationConfig::default()));
    for i in 0..8u32 {
        log.apply(&DeltaBatch::new().add_edge(i, 511 - i)).expect("apply");
        let h = engine.submit(distinct_query(i), None).expect("submit");
        assert!(h.wait().is_terminal());
    }
    log.compact().expect("compact");

    let report =
        ligra_engine::LockOracle::global().certify().expect("chaos run certifies lock order");
    assert!(!report.sites.is_empty(), "tracked guards recorded nothing");
    assert!(
        report.edges.contains(&("mutation.state", "store.current")),
        "expected the apply-path nesting; edges: {:?}",
        report.edges
    );
}
