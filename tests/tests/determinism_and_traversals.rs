//! Cross-crate integration: traversal policies are interchangeable
//! (same results, different schedules) and deterministic algorithms give
//! bit-identical answers across repeated runs.

use ligra::{EdgeMapOptions, Traversal, TraversalStats};
use ligra_apps as apps;
use ligra_graph::generators::rmat::RmatOptions;
use ligra_graph::generators::{grid3d, random_local, random_weights, rmat};

#[test]
fn repeated_runs_are_identical() {
    let g = rmat(&RmatOptions::paper(11));
    let wg = random_weights(&g, 20, 1);

    let b1 = apps::bfs(&g, 0);
    let b2 = apps::bfs(&g, 0);
    // Distances are deterministic (parents may differ between runs —
    // whichever CAS wins — which is the paper's behaviour as well).
    assert_eq!(b1.dist, b2.dist);

    assert_eq!(apps::cc(&g).label, apps::cc(&g).label);
    assert_eq!(apps::bellman_ford(&wg, 0).dist, apps::bellman_ford(&wg, 0).dist);
    assert_eq!(apps::radii(&g, 5).radii, apps::radii(&g, 5).radii);
}

#[test]
fn every_app_is_traversal_invariant() {
    let g = random_local(3000, 6, 13);
    let wg = random_weights(&g, 30, 2);
    let auto_bfs = apps::bfs(&g, 1);
    let auto_cc = apps::cc(&g);
    let auto_bf = apps::bellman_ford(&wg, 1);
    let auto_radii = apps::radii(&g, 3);
    let auto_bc = apps::bc(&g, 1);

    for t in [Traversal::Sparse, Traversal::Dense, Traversal::DenseForward, Traversal::Partitioned]
    {
        let opts = EdgeMapOptions::new().traversal(t);
        let mut s = TraversalStats::new();
        assert_eq!(apps::bfs_with(&g, 1, opts).dist, auto_bfs.dist, "{t:?}");
        assert_eq!(apps::cc_traced(&g, opts, &mut s).label, auto_cc.label, "{t:?}");
        assert_eq!(apps::bellman_ford_traced(&wg, 1, opts, &mut s).dist, auto_bf.dist, "{t:?}");
        assert_eq!(apps::radii_traced(&g, 3, opts, &mut s).radii, auto_radii.radii, "{t:?}");
        let bc = apps::bc_traced(&g, 1, opts, &mut s);
        for v in 0..g.num_vertices() {
            assert!(
                (bc.dependencies[v] - auto_bc.dependencies[v]).abs() < 1e-8,
                "{t:?} vertex {v}"
            );
        }
    }
}

#[test]
fn traced_rounds_account_for_all_frontier_work() {
    let g = rmat(&RmatOptions::paper(11));
    let mut stats = TraversalStats::new();
    let result = apps::bfs_traced(&g, 0, EdgeMapOptions::default(), &mut stats);
    let rounds: Vec<_> = stats.edge_map_rounds().copied().collect();
    assert_eq!(rounds.len(), result.rounds);
    // Output of round k is the frontier of round k+1.
    for w in rounds.windows(2) {
        assert_eq!(w[0].output_vertices, w[1].frontier_vertices);
    }
    // Total vertices entering frontiers equals reached count (source
    // enters externally, each other reached vertex exactly once).
    let total: u64 = rounds.iter().map(|r| r.output_vertices).sum();
    assert_eq!(total as usize, result.reached - 1);
}

#[test]
fn direction_heuristic_picks_dense_only_above_threshold() {
    let g = rmat(&RmatOptions::paper(12));
    let m = g.num_edges() as u64;
    let mut stats = TraversalStats::new();
    let _ = apps::bfs_traced(&g, 0, EdgeMapOptions::default(), &mut stats);
    for (i, r) in stats.edge_map_rounds().enumerate() {
        // The recorded heuristic inputs must be internally consistent...
        assert_eq!(r.work, r.frontier_vertices + r.frontier_out_edges, "round {i}");
        assert_eq!(r.threshold, m / 20, "round {i}");
        assert!(!r.forced, "Auto rounds must not be marked forced");
        // ...and must explain the decision: dense ⇔ work > threshold.
        let got_dense = r.mode == ligra::Mode::Dense;
        assert_eq!(
            r.work > r.threshold,
            got_dense,
            "round {i}: work {} vs {}",
            r.work,
            r.threshold
        );
    }
}

#[test]
fn grid_has_many_more_rounds_than_rmat() {
    // The structural fact behind the paper's per-graph results: diameter.
    let grid = grid3d(16);
    let rm = rmat(&RmatOptions::paper(12));
    let grid_rounds = apps::bfs(&grid, 0).rounds;
    let rmat_rounds = apps::bfs(&rm, 0).rounds;
    assert!(grid_rounds >= 3 * rmat_rounds, "grid {grid_rounds} rounds vs rMat {rmat_rounds}");
}

#[test]
fn dedup_changes_frontier_sizes_not_results() {
    let g = random_local(2000, 8, 21);
    let wg = random_weights(&g, 25, 4);
    let mut s1 = TraversalStats::new();
    let mut s2 = TraversalStats::new();
    let plain = apps::bellman_ford_traced(&wg, 0, EdgeMapOptions::default(), &mut s1);
    let dedup = apps::bellman_ford_traced(&wg, 0, EdgeMapOptions::new().deduplicate(true), &mut s2);
    assert_eq!(plain.dist, dedup.dist);
}
