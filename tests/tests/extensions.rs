//! Cross-crate integration tests for the extension reproductions: the
//! extra Ligra-release applications (k-core, MIS, triangles) and the
//! Ligra+ compressed representation.

use ligra_apps as apps;
use ligra_compress::apps as capps;
use ligra_compress::CompressedGraph;
use ligra_graph::generators::rmat::RmatOptions;
use ligra_graph::generators::{erdos_renyi, grid3d, random_local, rmat};

#[test]
fn kcore_mis_triangle_consistency() {
    // Structural relationships between the three on the same graph.
    let g = rmat(&RmatOptions::paper(10));

    let cores = apps::kcore(&g);
    let tri = apps::triangle_count(&g);
    let set = apps::mis(&g, 7);
    set.validate(&g);

    // A vertex in a triangle has coreness >= 2.
    for v in 0..g.num_vertices() {
        if tri.local[v] > 0 {
            assert!(cores.coreness[v] >= 2, "vertex {v} in a triangle but coreness < 2");
        }
    }
    // Degeneracy bounds the clique number - 1; any triangle implies
    // max_core >= 2.
    if tri.triangles > 0 {
        assert!(cores.max_core >= 2);
    }
    // MIS size is at least n / (max_degree + 1).
    let (_, dmax) = g.max_out_degree();
    assert!(set.size() >= g.num_vertices() / (dmax + 1));
}

#[test]
fn compressed_graph_runs_the_same_cc() {
    for g in [grid3d(6), random_local(3000, 6, 5), erdos_renyi(2000, 3000, 9, true)] {
        let cg: CompressedGraph = CompressedGraph::from_graph(&g);
        assert_eq!(capps::cc(&cg), apps::cc(&g).label);
    }
}

#[test]
fn compressed_bfs_reaches_the_same_set_in_the_same_rounds() {
    for g in [grid3d(6), rmat(&RmatOptions::paper(10))] {
        let cg: CompressedGraph = CompressedGraph::from_graph(&g);
        let unc = apps::bfs(&g, 0);
        let (parent, rounds) = capps::bfs(&cg, 0);
        assert_eq!(rounds, unc.rounds);
        for (v, &p) in parent.iter().enumerate() {
            assert_eq!(p == capps::UNREACHED, unc.dist[v] == apps::UNREACHED, "vertex {v}");
        }
    }
}

#[test]
fn compressed_pagerank_matches_uncompressed() {
    let g = rmat(&RmatOptions::paper(9));
    let cg: CompressedGraph = CompressedGraph::from_graph(&g);
    let unc = apps::pagerank(&g, 0.85, 1e-10, 150);
    let (p, _) = capps::pagerank(&cg, 0.85, 1e-10, 150);
    let l1: f64 = unc.rank.iter().zip(&p).map(|(a, b)| (a - b).abs()).sum();
    assert!(l1 < 1e-8, "L1 divergence {l1}");
}

#[test]
fn compression_saves_space_on_every_input_family() {
    for (name, g) in [
        ("grid", grid3d(10)),
        ("local", random_local(20_000, 8, 1)),
        ("rmat", rmat(&RmatOptions::paper(13))),
    ] {
        let cg: CompressedGraph = CompressedGraph::from_graph(&g);
        let (compressed, csr, ratio) = cg.space_vs_csr();
        assert!(ratio < 1.0, "{name}: compressed {compressed} not smaller than CSR {csr}");
    }
}

#[test]
fn kcore_of_compressed_families_matches_reference() {
    // k-core only exists uncompressed; sanity-check it against the bucket
    // reference on the benchmark families.
    for g in [grid3d(5), random_local(1500, 5, 2), rmat(&RmatOptions::paper(9))] {
        let par = apps::kcore(&g);
        assert_eq!(par.coreness, apps::kcore::seq_kcore(&g));
    }
}
