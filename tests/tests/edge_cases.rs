//! Degenerate inputs through every public entry point: singleton and
//! edgeless graphs, self-loops, multi-edges, and hub-dominated stars.
//! The framework must handle all of them without panicking and with
//! sensible answers.

use ligra::{edge_fn, edge_map_with, EdgeMapOptions, Traversal, VertexSubset};
use ligra_apps as apps;
use ligra_graph::generators::{random_weights, star};
use ligra_graph::{build_graph, build_weighted_graph, BuildOptions};

#[test]
fn singleton_graph_through_every_app() {
    let g = build_graph(1, &[], BuildOptions::symmetric());
    let bfs = apps::bfs(&g, 0);
    assert_eq!(bfs.reached, 1);
    assert_eq!(apps::cc(&g).label, vec![0]);
    assert_eq!(apps::cc_ldd(&g, 1), vec![0]);
    let bc = apps::bc(&g, 0);
    assert_eq!(bc.dependencies, vec![0.0]);
    // No dangling redistribution (Ligra semantics): an isolated vertex
    // keeps only the teleport mass (1 - alpha) / n = 0.15.
    let pr = apps::pagerank(&g, 0.85, 1e-9, 50);
    assert!((pr.rank[0] - 0.15).abs() < 1e-9, "rank {}", pr.rank[0]);
    let r = apps::radii(&g, 1);
    assert_eq!(r.radii, vec![0]);
    assert_eq!(apps::kcore(&g).coreness, vec![0]);
    let m = apps::mis(&g, 1);
    assert!(m.in_set[0]);
    assert_eq!(apps::triangle_count(&g).triangles, 0);
}

#[test]
fn edgeless_graph_through_every_app() {
    let n = 50;
    let g = build_graph(n, &[], BuildOptions::symmetric());
    assert_eq!(apps::bfs(&g, 7).reached, 1);
    assert_eq!(apps::cc(&g).num_components(), n);
    assert_eq!(apps::cc_ldd(&g, 2), (0..n as u32).collect::<Vec<_>>());
    assert!(apps::mis(&g, 3).in_set.iter().all(|&b| b));
    assert_eq!(apps::kcore(&g).max_core, 0);
    assert_eq!(apps::triangle_count(&g).triangles, 0);
    let two = apps::eccentricity::two_approx(&g);
    assert!(two.iter().all(|&e| e == 0));
}

#[test]
fn self_loops_survive_raw_build_and_bfs() {
    // Raw build keeps loops; BFS must not spin on them.
    let g = build_graph(
        3,
        &[(0, 0), (0, 1), (1, 1), (1, 2)],
        BuildOptions { symmetrize: false, remove_self_loops: false, dedup: false },
    );
    let r = apps::bfs(&g, 0);
    assert_eq!(r.dist[..3], [0, 1, 2]);
    assert_eq!(r.rounds, 3);
}

#[test]
fn multi_edges_do_not_double_count_in_bellman_ford() {
    // Two parallel edges with different weights: min must win even
    // without dedup.
    let g = build_weighted_graph(
        2,
        &[(0, 1), (0, 1)],
        &[10, 3],
        BuildOptions { symmetrize: false, remove_self_loops: true, dedup: false },
    );
    let r = apps::bellman_ford(&g, 0);
    assert_eq!(r.dist[1], 3);
}

#[test]
fn hub_star_exercises_nested_parallelism() {
    // A 100k-degree hub goes through the sparse path's hub-splitting code.
    let n = 100_001;
    let g = star(n);
    let r = apps::bfs(&g, 0);
    assert_eq!(r.reached, n);
    assert_eq!(r.rounds, 2);
    let pr = apps::pagerank(&g, 0.85, 1e-10, 100);
    assert!(pr.rank[0] > pr.rank[1]);
    let w = random_weights(&g, 5, 1);
    let sp = apps::bellman_ford(&w, 1);
    assert!(sp.dist.iter().all(|&d| d != apps::INFINITE_DISTANCE));
}

#[test]
fn frontier_of_every_vertex_with_rejecting_cond() {
    // cond == false everywhere: no updates, empty output, in all modes.
    let g = star(100);
    for t in [Traversal::Sparse, Traversal::Dense, Traversal::DenseForward] {
        let f = edge_fn(|_, _, _: ()| true, |_| false);
        let mut fr = VertexSubset::all(100);
        let out = edge_map_with(&g, &mut fr, &f, EdgeMapOptions::new().traversal(t));
        assert!(out.is_empty(), "traversal {t:?}");
    }
}

#[test]
fn update_always_false_yields_empty_frontier() {
    let g = star(100);
    let f = edge_fn(|_, _, _: ()| false, |_| true);
    let mut fr = VertexSubset::all(100);
    let out = edge_map_with(&g, &mut fr, &f, EdgeMapOptions::default());
    assert!(out.is_empty());
}

#[test]
fn bellman_ford_source_in_tiny_negative_graph() {
    // Smallest possible negative cycle through the source.
    let g = build_weighted_graph(2, &[(0, 1), (1, 0)], &[-1, -1], BuildOptions::raw_directed());
    let r = apps::bellman_ford(&g, 0);
    assert!(r.negative_cycle);
}

#[test]
fn radii_on_two_vertex_components() {
    // Many 2-vertex components: every wave dies after one hop.
    let edges: Vec<(u32, u32)> = (0..50).map(|i| (2 * i, 2 * i + 1)).collect();
    let g = build_graph(100, &edges, BuildOptions::symmetric());
    let r = apps::radii(&g, 3);
    for &s in &r.sample {
        // Each sampled vertex's partner is at distance 1.
        let partner = s ^ 1;
        assert!(r.radii[partner as usize] >= 1);
    }
}
