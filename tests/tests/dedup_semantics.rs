//! Property-based tests for `EdgeMapOptions::deduplicate` — the paper's
//! "remove duplicates" pass over sparse push output.
//!
//! Two user-function families bracket the semantics:
//!
//! * **Multi-winner** (Bellman–Ford-style): `update_atomic` may return
//!   `true` for several in-edges of the same target in one round, so the
//!   raw push output is a multiset. With `deduplicate(true)` the output
//!   must be duplicate-free; with it off, only the *set* is specified.
//! * **CAS-claiming** (BFS-style): the update wins at most once per
//!   target, so the output is duplicate-free with deduplication off, and
//!   turning it on must not change the result set.
//!
//! Coverage caveat: when the workspace is built with the offline vendored
//! proptest stand-in (`.cargo/config.toml` patch, registry-less sandboxes
//! only), cases come from a fixed name-derived seed, failures are not
//! shrunk, and the explored input space is smaller than real proptest's.
//! CI strips the patch and runs these same tests under real proptest.

use ligra::{edge_fn, edge_map_with, EdgeMapOptions, Traversal, VertexSubset};
use ligra_graph::{build_graph, BuildOptions, VertexId};
use proptest::prelude::*;
use std::sync::atomic::{AtomicU32, Ordering};

fn graph_and_frontier() -> impl Strategy<Value = (usize, Vec<(u32, u32)>, Vec<u32>)> {
    (2u32..50).prop_flat_map(|n| {
        let edges = proptest::collection::vec((0..n, 0..n), 0..300);
        let frontier = proptest::collection::btree_set(0..n, 0..n as usize)
            .prop_map(|s| s.into_iter().collect::<Vec<u32>>());
        (Just(n as usize), edges, frontier)
    })
}

/// Distinct out-neighbors of the frontier — the output *set* every run
/// must produce regardless of deduplication.
fn expected_neighborhood(g: &ligra_graph::Graph, frontier: &[u32]) -> Vec<u32> {
    let mut expect: Vec<u32> =
        frontier.iter().flat_map(|&u| g.out_neighbors(u).iter().copied()).collect();
    expect.sort_unstable();
    expect.dedup();
    expect
}

fn sparse_push(g: &ligra_graph::Graph, frontier: &[u32], dedup: bool) -> VertexSubset {
    let f = edge_fn(|_s, _d, _w: ()| true, |_| true);
    let mut fr = VertexSubset::from_sparse(g.num_vertices(), frontier.to_vec());
    edge_map_with(
        g,
        &mut fr,
        &f,
        EdgeMapOptions::new().traversal(Traversal::Sparse).deduplicate(dedup),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn multi_winner_output_is_duplicate_free_with_dedup(
        (n, edges, frontier) in graph_and_frontier(),
    ) {
        // Parallel edges multiply the chances of duplicate emissions, so
        // keep them (directed build, no canonicalization).
        let g = build_graph(n, &edges, BuildOptions::directed());
        let expect = expected_neighborhood(&g, &frontier);

        // Deduplicated run: the sparse output list itself (not just the
        // set) must be duplicate-free, and `len` must count members once.
        let mut out = sparse_push(&g, &frontier, true);
        let raw: Vec<VertexId> = out.as_slice().to_vec();
        let mut uniq = raw.clone();
        uniq.sort_unstable();
        uniq.dedup();
        prop_assert_eq!(raw.len(), uniq.len(), "dedup output has duplicates");
        prop_assert_eq!(out.len(), uniq.len());
        prop_assert_eq!(uniq, expect.clone());

        // Raw run: same set; the multiset may only be bigger.
        let mut out_raw = sparse_push(&g, &frontier, false);
        prop_assert!(out_raw.as_slice().len() >= raw.len());
        let mut raw_set = out_raw.to_vec_sorted();
        raw_set.dedup();
        prop_assert_eq!(raw_set, expect);
    }

    #[test]
    fn cas_claiming_output_ignores_dedup_setting(
        (n, edges, frontier) in graph_and_frontier(),
    ) {
        let g = build_graph(n, &edges, BuildOptions::directed());
        let expect = expected_neighborhood(&g, &frontier);

        for dedup in [false, true] {
            // Fresh claim array per run: a target is won by exactly one
            // in-edge (BFS parent CAS), so even the raw sparse output is
            // duplicate-free and deduplication must be a no-op.
            let claims: Vec<AtomicU32> =
                (0..n).map(|_| AtomicU32::new(u32::MAX)).collect();
            let f = edge_fn(
                |s: VertexId, d: VertexId, _w: ()| {
                    claims[d as usize]
                        .compare_exchange(u32::MAX, s, Ordering::SeqCst, Ordering::SeqCst)
                        .is_ok()
                },
                |d: VertexId| claims[d as usize].load(Ordering::SeqCst) == u32::MAX,
            );
            let mut fr = VertexSubset::from_sparse(n, frontier.clone());
            let mut out = edge_map_with(
                &g,
                &mut fr,
                &f,
                EdgeMapOptions::new().traversal(Traversal::Sparse).deduplicate(dedup),
            );
            let raw: Vec<VertexId> = out.as_slice().to_vec();
            let mut uniq = raw.clone();
            uniq.sort_unstable();
            uniq.dedup();
            prop_assert_eq!(
                raw.len(), uniq.len(),
                "CAS output has duplicates (dedup={})", dedup
            );
            prop_assert_eq!(uniq, expect.clone(), "dedup={}", dedup);
            // Every claimed parent really is a frontier in-neighbor.
            for &d in &raw {
                let p = claims[d as usize].load(Ordering::SeqCst);
                prop_assert!(frontier.contains(&p));
                prop_assert!(g.out_neighbors(p).contains(&d));
            }
        }
    }
}
