//! Lockdep certification (DESIGN.md §15): the runtime lock-order
//! oracle's detection semantics, exercised deterministically across
//! threads, plus — under `--features lock-check` — a clean-run
//! certification of the whole engine tier on the process-global oracle.
//!
//! The oracle API itself is always compiled (only the engine's tracked
//! guards are feature-gated), so the detection tests run in every
//! configuration.

use ligra::lockdep::LockOracle;
use std::sync::{Arc, Barrier};
use std::thread;

/// The canonical two-thread deadlock, sequenced with a barrier so the
/// interleaving is deterministic: thread 1 establishes `a → b`, then
/// thread 2 closes the cycle by taking `b` before `a`. The deferred
/// oracle must record exactly one violation carrying both threads'
/// evidence — the closer's hold stack and the recorded witness of the
/// forward edge.
#[test]
fn two_thread_inversion_is_caught_with_both_witness_chains() {
    let oracle = Arc::new(LockOracle::deferred());
    let barrier = Arc::new(Barrier::new(2));

    let (o1, b1) = (Arc::clone(&oracle), Arc::clone(&barrier));
    let t1 = thread::Builder::new()
        .name("lockdep-t1".into())
        .spawn(move || {
            o1.acquire("a");
            o1.acquire("b");
            o1.release("b");
            o1.release("a");
            b1.wait(); // a → b is on record before t2 starts
        })
        .expect("spawn t1");

    let (o2, b2) = (Arc::clone(&oracle), Arc::clone(&barrier));
    let t2 = thread::Builder::new()
        .name("lockdep-t2".into())
        .spawn(move || {
            b2.wait();
            o2.acquire("b");
            o2.acquire("a"); // closes b → a against the recorded a → b
            o2.release("a");
            o2.release("b");
        })
        .expect("spawn t2");

    t1.join().expect("t1");
    t2.join().expect("t2");

    let report = oracle.report();
    assert_eq!(report.violations.len(), 1, "exactly one cycle: {report:?}");
    let v = &report.violations[0];
    assert_eq!(v.site, "a", "the cycle closes at the second thread's inner acquisition");
    assert_eq!(v.cycle, vec!["a", "b", "a"]);
    assert_eq!(v.thread, "lockdep-t2", "reported by the thread that would deadlock");
    assert_eq!(v.hold_stack, vec!["b"]);
    let witness = v.witnesses.join("; ");
    assert!(
        witness.contains("lockdep-t1"),
        "the forward edge's witness names the other thread: {witness}"
    );
    assert!(oracle.certify().is_err(), "a run that closed a cycle must not certify");
}

/// The same two threads taking the same two locks in the same order is
/// the fix for the test above — and must certify.
#[test]
fn consistent_two_thread_order_certifies() {
    let oracle = Arc::new(LockOracle::deferred());
    let threads: Vec<_> = (0..2)
        .map(|i| {
            let o = Arc::clone(&oracle);
            thread::Builder::new()
                .name(format!("lockdep-c{i}"))
                .spawn(move || {
                    for _ in 0..100 {
                        o.acquire("a");
                        o.acquire("b");
                        o.release("b");
                        o.release("a");
                    }
                })
                .expect("spawn")
        })
        .collect();
    for t in threads {
        t.join().expect("join");
    }
    let report = oracle.certify().expect("consistent order certifies");
    assert_eq!(report.edges, vec![("a", "b")]);
    assert_eq!(report.sites, vec!["a", "b"]);
}

/// A cycle through three sites and three threads, each thread holding
/// one lock and reaching for the next — no pair of threads inverts, the
/// deadlock only exists in the composition.
#[test]
fn three_thread_cycle_is_transitive() {
    let oracle = LockOracle::deferred();
    // Sequential stand-ins for three threads (the oracle keys hold
    // stacks by thread, but edges are global; running the three legs on
    // one thread with explicit release produces the same edge set).
    for (first, second) in [("a", "b"), ("b", "c")] {
        oracle.acquire(first);
        oracle.acquire(second);
        oracle.release(second);
        oracle.release(first);
    }
    oracle.acquire("c");
    oracle.acquire("a");
    oracle.release("a");
    oracle.release("c");
    let report = oracle.report();
    assert_eq!(report.violations.len(), 1);
    assert_eq!(report.violations[0].cycle, vec!["a", "b", "c", "a"]);
}

/// Engine-tier certification: drive queries (including condvar waits and
/// cancellations), live mutations, and a compaction through an engine
/// whose every acquisition reports to the global panic-mode oracle, then
/// certify: a non-empty acquisition DAG covering the named sites, and
/// zero cycles. Only meaningful when the tracked guards are armed.
#[cfg(feature = "lock-check")]
#[test]
fn engine_workload_certifies_on_the_global_oracle() {
    use ligra_engine::{
        Engine, EngineConfig, LockOracle, MutationConfig, MutationLog, Query, QueryStatus,
    };
    use ligra_graph::generators::grid3d;
    use ligra_graph::DeltaBatch;
    use std::time::Duration;

    let engine = Arc::new(Engine::new(EngineConfig {
        workers: 4,
        queue_capacity: 64,
        cache_capacity: 8,
        ..EngineConfig::default()
    }));
    engine.install_graph(Arc::new(grid3d(8)));
    let log = Arc::new(MutationLog::new(
        Arc::clone(&engine),
        MutationConfig { compact_threshold: Some(16) },
    ));

    // Mixed load: queries racing mutations racing background compaction.
    let writer = {
        let log = Arc::clone(&log);
        thread::spawn(move || {
            for i in 0..20u32 {
                let _ = log.apply(&DeltaBatch::new().add_edge(i, 511 - i));
            }
        })
    };
    let handles: Vec<_> = (0..16)
        .filter_map(|i| engine.submit(Query::Bfs { source: i * 31 % 512 }, None).ok())
        .collect();
    for (i, h) in handles.iter().enumerate() {
        if i % 4 == 0 {
            h.cancel();
        }
        // Exercise both condvar wait paths on the job.state site.
        if h.wait_timeout(Duration::from_secs(30)).is_none() {
            assert!(h.wait().is_terminal());
        }
    }
    writer.join().expect("writer");
    let _ = log.compact();
    let done = engine.submit(Query::Cc, None).expect("submit").wait();
    assert_eq!(done, QueryStatus::Done);

    // The global oracle is in panic mode, so reaching this point already
    // means no worker closed a cycle; certify() double-checks and the
    // report proves the instrumentation actually saw the engine's locks.
    let report = LockOracle::global().certify().expect("engine lock order certifies");
    assert!(!report.sites.is_empty(), "oracle recorded no acquisitions");
    for site in ["scheduler.queue", "scheduler.cache", "job.state", "store.current"] {
        assert!(
            report.sites.contains(&site),
            "site {site} never acquired; sites: {:?}",
            report.sites
        );
    }
    assert!(
        !report.edges.is_empty(),
        "workload produced no nested acquisitions (expected at least mutation.state → store.current)"
    );
    assert!(
        report.edges.contains(&("mutation.state", "store.current")),
        "the apply path holds mutation.state across the store install; edges: {:?}",
        report.edges
    );
}
