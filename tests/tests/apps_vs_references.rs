//! Cross-crate integration: every parallel application must agree with
//! its sequential reference on every generator family, across multiple
//! seeds and sources.

use ligra_apps as apps;
use ligra_apps::seq;
use ligra_graph::generators::rmat::RmatOptions;
use ligra_graph::generators::*;
use ligra_graph::Graph;

fn suite(seed: u64) -> Vec<(&'static str, Graph)> {
    vec![
        ("grid3d", grid3d(6)),
        ("random_local", random_local(2500, 5, seed)),
        ("rmat", rmat(&RmatOptions { seed, ..RmatOptions::paper(10) })),
        ("erdos_renyi", erdos_renyi(2000, 8000, seed, true)),
        ("erdos_renyi_sparse", erdos_renyi(2000, 1200, seed, true)),
        ("path", path(500)),
        ("tree", balanced_tree(1023)),
    ]
}

#[test]
fn bfs_agrees_with_sequential_everywhere() {
    for (name, g) in suite(1) {
        for source in [0u32, (g.num_vertices() / 2) as u32] {
            let par = apps::bfs(&g, source);
            let (dist, _) = seq::seq_bfs(&g, source);
            assert_eq!(par.dist, dist, "{name} from {source}");
            par.validate(&g, source);
        }
    }
}

#[test]
fn cc_agrees_with_union_find_everywhere() {
    for (name, g) in suite(2) {
        let par = apps::cc(&g);
        assert_eq!(par.label, seq::seq_cc(&g), "{name}");
    }
}

#[test]
fn bc_agrees_with_brandes_everywhere() {
    for (name, g) in suite(3) {
        let par = apps::bc(&g, 0);
        let reference = seq::seq_brandes(&g, 0);
        for (v, &expected) in reference.iter().enumerate() {
            assert!(
                (par.dependencies[v] - expected).abs() < 1e-8,
                "{name} vertex {v}: {} vs {expected}",
                par.dependencies[v]
            );
        }
    }
}

#[test]
fn bellman_ford_agrees_with_sequential_everywhere() {
    for (name, g) in suite(4) {
        let wg = random_weights(&g, 50, 9);
        let par = apps::bellman_ford(&wg, 0);
        let reference = seq::seq_bellman_ford(&wg, 0).expect("positive weights: no cycle");
        assert_eq!(par.dist, reference, "{name}");
        assert!(!par.negative_cycle);
    }
}

#[test]
fn pagerank_agrees_with_sequential_everywhere() {
    for (name, g) in suite(5) {
        let par = apps::pagerank(&g, 0.85, 1e-9, 200);
        let (reference, _) = seq::seq_pagerank(&g, 0.85, 1e-9, 200);
        let l1: f64 = par.rank.iter().zip(&reference).map(|(a, b)| (a - b).abs()).sum();
        assert!(l1 < 1e-6, "{name}: L1 divergence {l1}");
    }
}

#[test]
fn radii_agrees_with_multi_bfs_reference() {
    for (name, g) in suite(6) {
        let par = apps::radii(&g, 7);
        // Reference: max BFS distance from each sample.
        let n = g.num_vertices();
        let mut expect = vec![u32::MAX; n];
        for &s in &par.sample {
            let (dist, _) = seq::seq_bfs(&g, s);
            for v in 0..n {
                if dist[v] != u32::MAX && (expect[v] == u32::MAX || dist[v] > expect[v]) {
                    expect[v] = dist[v];
                }
            }
        }
        assert_eq!(par.radii, expect, "{name}");
    }
}

#[test]
fn bfs_dist_lower_bounds_weighted_dist() {
    let g = rmat(&RmatOptions::paper(10));
    let wg = random_weights(&g, 10, 3);
    let hops = apps::bfs(&g, 0);
    let sp = apps::bellman_ford(&wg, 0);
    for v in 0..g.num_vertices() {
        if hops.dist[v] == u32::MAX {
            assert_eq!(sp.dist[v], apps::INFINITE_DISTANCE);
        } else {
            assert!(sp.dist[v] >= hops.dist[v] as i64);
            assert!(sp.dist[v] <= hops.dist[v] as i64 * 10);
        }
    }
}

#[test]
fn cc_is_consistent_with_bfs_reachability() {
    // On a symmetric graph: same component <=> mutually reachable.
    let g = erdos_renyi(1200, 800, 11, true);
    let comps = apps::cc(&g);
    let bfs = apps::bfs(&g, 0);
    let c0 = comps.label[0];
    for v in 0..g.num_vertices() {
        assert_eq!(
            comps.label[v] == c0,
            bfs.dist[v] != u32::MAX,
            "vertex {v}: component vs reachability mismatch"
        );
    }
}
