//! Certification of the eight application update functions under the
//! `edgeMap` race oracle, plus negative tests proving the oracle detects
//! contract-violating functions. Built only with `--features race-check`
//! (which forwards `ligra/race-check` and arms the traversal hooks).
//!
//! Win contracts (DESIGN.md §10):
//!
//! | app          | contract  | why                                          |
//! |--------------|-----------|----------------------------------------------|
//! | BFS          | Claim     | CAS-claims the parent slot                   |
//! | BC           | MultiWin  | backward sweep returns `true` per edge       |
//! | CC           | MultiWin  | `writeMin` can lower an ID repeatedly        |
//! | PageRank     | MultiWin  | `fetch_add` contribution per edge            |
//! | Radii        | Claim     | CAS installs the round number once per round |
//! | k-core       | MultiWin  | every degree decrement "wins"                |
//! | MIS          | Claim     | block/knockout Fs never return `true`        |
//! | Bellman–Ford | Claim     | `writeMin` gated by the per-round visited bit|
#![cfg(feature = "race-check")]

use ligra::stats::NoopRecorder;
use ligra::{
    edge_fn, EdgeMapOptions, RaceOracle, Traversal, VertexSubset, ViolationKind, WinContract,
};
use ligra_apps as apps;
use ligra_apps::seq;
use ligra_graph::generators::{erdos_renyi, random_weights, star};

/// Runs `work` with a panicking oracle attached to its options, then
/// asserts a clean certificate backed by real evidence (attempts and
/// rounds actually recorded).
fn certify(name: &str, n: usize, contract: WinContract, work: impl FnOnce(EdgeMapOptions)) {
    let oracle = RaceOracle::new(n, contract);
    work(EdgeMapOptions::default().race_oracle(&oracle));
    let report = oracle.certify().unwrap_or_else(|e| panic!("{name}: {e}"));
    assert!(report.attempts > 0, "{name}: the oracle observed no update attempts");
    assert!(report.rounds > 0, "{name}: the oracle observed no rounds");
}

fn test_graph(seed: u64) -> ligra_graph::Graph {
    // Dense enough that Auto exercises both push and pull rounds.
    erdos_renyi(1500, 9000, seed, true)
}

#[test]
fn bfs_certifies_under_claim() {
    let g = test_graph(1);
    certify("bfs", g.num_vertices(), WinContract::Claim, |opts| {
        apps::bfs_with(&g, 0, opts).validate(&g, 0);
    });
}

#[test]
fn bc_certifies_under_multiwin() {
    let g = test_graph(2);
    certify("bc", g.num_vertices(), WinContract::MultiWin, |opts| {
        let _ = apps::bc_traced(&g, 0, opts, &mut NoopRecorder);
    });
}

#[test]
fn cc_certifies_under_multiwin() {
    let g = test_graph(3);
    certify("cc", g.num_vertices(), WinContract::MultiWin, |opts| {
        let r = apps::cc_traced(&g, opts, &mut NoopRecorder);
        assert_eq!(r.label, seq::seq_cc(&g));
    });
}

#[test]
fn pagerank_certifies_under_multiwin() {
    let g = test_graph(4);
    certify("pagerank", g.num_vertices(), WinContract::MultiWin, |opts| {
        let _ = apps::pagerank_traced(&g, 0.85, 1e-7, 30, opts, &mut NoopRecorder);
    });
}

#[test]
fn radii_certifies_under_claim() {
    let g = test_graph(5);
    certify("radii", g.num_vertices(), WinContract::Claim, |opts| {
        let _ = apps::radii_traced(&g, 5, opts, &mut NoopRecorder);
    });
}

#[test]
fn kcore_certifies_under_multiwin() {
    let g = test_graph(6);
    certify("kcore", g.num_vertices(), WinContract::MultiWin, |opts| {
        let _ = apps::kcore_traced(&g, opts, &mut NoopRecorder);
    });
}

#[test]
fn mis_certifies_under_claim() {
    let g = test_graph(7);
    certify("mis", g.num_vertices(), WinContract::Claim, |opts| {
        apps::mis_traced(&g, 7, opts, &mut NoopRecorder).validate(&g);
    });
}

#[test]
fn bellman_ford_certifies_under_claim() {
    let wg = random_weights(&test_graph(8), 100, 8);
    certify("bellman-ford", wg.num_vertices(), WinContract::Claim, |opts| {
        let r = apps::bellman_ford_traced(&wg, 0, opts, &mut NoopRecorder);
        assert_eq!(
            r.dist,
            seq::seq_bellman_ford(&wg, 0).expect("positive weights: no negative cycle")
        );
    });
}

#[test]
fn bfs_certifies_on_every_forced_traversal() {
    let g = erdos_renyi(800, 6000, 9, true);
    for t in Traversal::ALL {
        certify(&format!("bfs/{t}"), g.num_vertices(), WinContract::Claim, |opts| {
            apps::bfs_with(&g, 0, opts.traversal(t)).validate(&g, 0);
        });
    }
}

#[test]
fn compressed_push_traversals_certify_under_claim() {
    use ligra_parallel::atomics::{as_atomic_u32, cas_u32};
    use std::sync::atomic::Ordering;

    let g = erdos_renyi(600, 4000, 10, true);
    let cg: ligra_compress::CompressedGraph = ligra_compress::CompressedGraph::from_graph(&g);
    let n = g.num_vertices();
    for t in [Traversal::Sparse, Traversal::DenseForward] {
        let oracle = RaceOracle::new(n, WinContract::Claim);
        let mut parent = vec![u32::MAX; n];
        parent[0] = 0;
        {
            let cells = as_atomic_u32(&mut parent);
            let f = edge_fn(
                |u, v, _: ()| cas_u32(&cells[v as usize], u32::MAX, u),
                |v| cells[v as usize].load(Ordering::Relaxed) == u32::MAX,
            );
            let mut frontier = VertexSubset::single(n, 0);
            while !frontier.is_empty() {
                frontier = ligra_compress::edge_map_with(
                    &cg,
                    &mut frontier,
                    &f,
                    EdgeMapOptions::default().traversal(t).race_oracle(&oracle),
                );
            }
        }
        let report = oracle.certify().unwrap_or_else(|e| panic!("compressed/{t}: {e}"));
        assert!(report.attempts > 0, "compressed/{t}: no attempts recorded");
    }
}

/// The deliberately racy update: claims every edge's target
/// unconditionally, the behavior of a plain-write (non-CAS) function
/// that believes it always "won". Two frontier sources sharing a target
/// expose it deterministically, even on a sequential pool.
#[test]
fn blind_true_update_fails_claim_certification() {
    let g = star(8); // hub 0, leaves 1..=7, symmetric
    let oracle = RaceOracle::deferred(8, WinContract::Claim);
    let f = edge_fn(|_, _, _: ()| true, |_| true);
    let mut frontier = VertexSubset::from_sparse(8, vec![1, 2]);
    let _ = ligra::edge_map_with(
        &g,
        &mut frontier,
        &f,
        EdgeMapOptions::default().traversal(Traversal::Sparse).race_oracle(&oracle),
    );
    let report = oracle.report();
    assert!(!report.is_clean(), "the racy update must fail certification");
    let v = report.violations[0];
    assert_eq!(v.kind, ViolationKind::DoubleWin);
    assert_eq!(v.target, 0, "both leaves push into the hub");
    let mut srcs = [v.first_src, v.second_src];
    srcs.sort_unstable();
    assert_eq!(srcs, [1, 2], "the report must name both conflicting sources");
}

#[test]
fn racy_update_is_caught_on_dense_forward_too() {
    let g = star(8);
    let oracle = RaceOracle::deferred(8, WinContract::Claim);
    let f = edge_fn(|_, _, _: ()| true, |_| true);
    let mut frontier = VertexSubset::from_sparse(8, vec![1, 2]);
    let _ = ligra::edge_map_with(
        &g,
        &mut frontier,
        &f,
        EdgeMapOptions::default().traversal(Traversal::DenseForward).race_oracle(&oracle),
    );
    let report = oracle.report();
    assert!(!report.is_clean());
    assert_eq!(report.violations[0].kind, ViolationKind::DoubleWin);
    assert_eq!(report.violations[0].target, 0);
}

#[test]
fn racy_update_is_caught_on_partitioned_gather_too() {
    // The partitioned gather drains each destination partition
    // sequentially, so its non-atomic updates can never overlap — but
    // the per-round win ledger still applies: a Claim function that
    // "wins" one target from two sources is caught, and the absence of
    // ExclusiveOverlap violations is exactly the partition-exclusive
    // write guarantee.
    let g = star(8);
    let oracle = RaceOracle::deferred(8, WinContract::Claim);
    let f = edge_fn(|_, _, _: ()| true, |_| true);
    let mut frontier = VertexSubset::from_sparse(8, vec![1, 2]);
    let _ = ligra::edge_map_with(
        &g,
        &mut frontier,
        &f,
        EdgeMapOptions::default().traversal(Traversal::Partitioned).race_oracle(&oracle),
    );
    let report = oracle.report();
    assert!(!report.is_clean());
    assert_eq!(report.violations[0].kind, ViolationKind::DoubleWin);
    assert_eq!(report.violations[0].target, 0);
    assert_eq!(report.overlaps, 0, "gather must never overlap exclusive entries");
}

#[test]
#[should_panic(expected = "both won target")]
fn panicking_oracle_aborts_inside_edge_map() {
    let g = star(8);
    let oracle = RaceOracle::new(8, WinContract::Claim);
    let f = edge_fn(|_, _, _: ()| true, |_| true);
    let mut frontier = VertexSubset::from_sparse(8, vec![1, 2]);
    let _ = ligra::edge_map_with(
        &g,
        &mut frontier,
        &f,
        EdgeMapOptions::default().traversal(Traversal::Sparse).race_oracle(&oracle),
    );
}

#[test]
fn multiwin_contract_accepts_the_blind_update() {
    // The same function is legal under MultiWin: repeated wins per
    // target per round are its declared behavior.
    let g = star(8);
    let oracle = RaceOracle::new(8, WinContract::MultiWin);
    let f = edge_fn(|_, _, _: ()| true, |_| true);
    let mut frontier = VertexSubset::from_sparse(8, vec![1, 2]);
    let _ = ligra::edge_map_with(
        &g,
        &mut frontier,
        &f,
        EdgeMapOptions::default().traversal(Traversal::Sparse).race_oracle(&oracle),
    );
    let report = oracle.certify().expect("MultiWin allows repeated wins");
    assert_eq!(report.wins, 2);
}

#[test]
fn certification_survives_real_parallel_contention() {
    // On a real rayon pool the push rounds genuinely interleave; on the
    // offline sequential stub this large run adds nothing, so skip it.
    if !ligra_parallel::utils::pool_is_parallel(4) {
        eprintln!("skipping: rayon pool is sequential");
        return;
    }
    let g = erdos_renyi(20_000, 200_000, 11, true);
    certify("bfs-parallel", g.num_vertices(), WinContract::Claim, |opts| {
        apps::bfs_with(&g, 0, opts).validate(&g, 0);
    });
}

#[test]
fn partitioned_certification_survives_real_parallel_contention() {
    // Forces every round through scatter/gather on a graph large enough
    // that the ~79 partitions (2^8 vertices each) are drained by
    // concurrent gather tasks: certifies both the Claim ledger and the
    // exclusive-entry contract under a genuinely parallel pool.
    if !ligra_parallel::utils::pool_is_parallel(4) {
        eprintln!("skipping: rayon pool is sequential");
        return;
    }
    let g = erdos_renyi(20_000, 200_000, 12, true);
    let oracle = RaceOracle::new(g.num_vertices(), WinContract::Claim);
    apps::bfs_with(
        &g,
        0,
        EdgeMapOptions::default()
            .traversal(Traversal::Partitioned)
            .partition_bits(8)
            .race_oracle(&oracle),
    )
    .validate(&g, 0);
    let report = oracle.certify().unwrap_or_else(|e| panic!("bfs-partitioned-parallel: {e}"));
    assert!(report.attempts > 0, "the oracle observed no update attempts");
    assert_eq!(report.overlaps, 0, "partition-exclusive gather writes must never overlap");
}
