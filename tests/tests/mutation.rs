//! Live-mutation correctness: random insert/delete/compact interleavings
//! checked against a naive adjacency-set model, traversal-policy
//! equivalence on overlay snapshots, and the engine-level epoch contract
//! (in-flight queries stay pinned to the snapshot they started on; the
//! result cache keys on epoch so mutations invalidate it naturally).

use ligra::{EdgeMapOptions, Traversal};
use ligra_apps as apps;
use ligra_engine::{
    Engine, EngineConfig, MutationConfig, MutationLog, Query, QueryHandle, QueryStatus,
};
use ligra_graph::builder::{build_graph, BuildOptions};
use ligra_graph::generators::random_local;
use ligra_graph::{apply_batch, DeltaBatch, Graph, VertexId};
use ligra_parallel::hash::mix64;
use std::collections::BTreeSet;
use std::sync::Arc;

/// The oracle: a symmetric graph as one sorted neighbor set per vertex.
struct Model {
    adj: Vec<BTreeSet<VertexId>>,
}

impl Model {
    fn of(g: &Graph) -> Self {
        let mut adj = vec![BTreeSet::new(); g.num_vertices()];
        for (v, set) in adj.iter_mut().enumerate() {
            set.extend(g.out_neighbors(v as VertexId).iter().copied());
        }
        Model { adj }
    }

    fn apply(&mut self, batch: &DeltaBatch) {
        for _ in 0..batch.add_vertices {
            self.adj.push(BTreeSet::new());
        }
        // Same order the real apply uses: deletions before insertions.
        for &v in &batch.del_vertices {
            let gone: Vec<VertexId> = self.adj[v as usize].iter().copied().collect();
            for u in gone {
                self.adj[u as usize].remove(&v);
            }
            self.adj[v as usize].clear();
        }
        for &(u, v) in &batch.del_edges {
            self.adj[u as usize].remove(&v);
            self.adj[v as usize].remove(&u);
        }
        for &(u, v) in &batch.add_edges {
            if u != v {
                self.adj[u as usize].insert(v);
                self.adj[v as usize].insert(u);
            }
        }
    }

    fn edges(&self) -> Vec<(VertexId, VertexId)> {
        let mut out = Vec::new();
        for (u, set) in self.adj.iter().enumerate() {
            for &v in set {
                if (u as VertexId) <= v {
                    out.push((u as VertexId, v));
                }
            }
        }
        out
    }

    /// The model rebuilt as a clean CSR — the reference graph.
    fn to_graph(&self) -> Graph {
        build_graph(self.adj.len(), &self.edges(), BuildOptions::symmetric())
    }
}

/// Checks every structural accessor of `g` against the model.
fn assert_structure(g: &Graph, model: &Model, ctx: &str) {
    assert_eq!(g.num_vertices(), model.adj.len(), "{ctx}: vertex count");
    let m: usize = model.adj.iter().map(BTreeSet::len).sum();
    assert_eq!(g.num_edges(), m, "{ctx}: arc count");
    for (v, set) in model.adj.iter().enumerate() {
        let v = v as VertexId;
        assert_eq!(g.out_degree(v), set.len(), "{ctx}: degree of {v}");
        let mut got: Vec<VertexId> = g.out_neighbors(v).to_vec();
        got.sort_unstable();
        let want: Vec<VertexId> = set.iter().copied().collect();
        assert_eq!(got, want, "{ctx}: neighbors of {v}");
    }
}

/// Checks BFS and CC on `g` against the model's reference CSR.
fn assert_queries(g: &Graph, model: &Model, ctx: &str) {
    let reference = model.to_graph();
    assert_eq!(apps::bfs(g, 0).dist, apps::bfs(&reference, 0).dist, "{ctx}: BFS");
    assert_eq!(apps::cc(g).label, apps::cc(&reference).label, "{ctx}: CC");
}

/// One seeded pseudo-random batch; op mix weighted toward edge churn.
fn random_batch(rng: &mut impl FnMut() -> u64, n: usize) -> DeltaBatch {
    let mut batch = DeltaBatch::new();
    let pick = |rng: &mut dyn FnMut() -> u64| (rng() % n as u64) as VertexId;
    for _ in 0..(1 + rng() % 6) {
        match rng() % 8 {
            0..=3 => {
                let (u, v) = (pick(rng), pick(rng));
                if u != v {
                    batch.add_edges.push((u, v));
                }
            }
            4..=5 => batch.del_edges.push((pick(rng), pick(rng))),
            6 => batch.del_vertices.push(pick(rng)),
            _ => batch.add_vertices += 1,
        }
    }
    batch
}

#[test]
fn random_interleavings_match_the_set_model() {
    for seed in [3u64, 17, 141] {
        let mut state = seed;
        let mut rng = move || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            mix64(state)
        };
        let mut g = random_local(120, 4, seed);
        let mut model = Model::of(&g);
        for step in 0..40 {
            // `n` before the batch so added vertices stay addressable.
            let n = g.num_vertices();
            let batch = random_batch(&mut rng, n);
            let (next, _nb, _stats) =
                apply_batch(&g, &batch).expect("generated batches are in range");
            model.apply(&batch);
            g = next;
            let ctx = format!("seed {seed} step {step}");
            assert_structure(&g, &model, &ctx);
            if step % 10 == 9 {
                assert_queries(&g, &model, &ctx);
            }
            // Interleave compactions: the flattened CSR must be the same
            // graph, and mutation must keep working on top of it.
            if step % 13 == 12 {
                g = g.compacted();
                assert!(!g.has_overlay(), "{ctx}: compacted");
                assert_structure(&g, &model, &format!("{ctx} (compacted)"));
            }
        }
        assert!(g.has_overlay() || g.num_edges() == 0, "the sweep must end mid-overlay");
        assert_queries(&g, &model, &format!("seed {seed} final"));
    }
}

#[test]
fn every_traversal_policy_agrees_on_an_overlay_snapshot() {
    // The satellite contract: all five policies run unmodified on a
    // delta-overlaid graph and agree with each other and with the
    // compacted CSR (extends the determinism_and_traversals sweep).
    let base = random_local(3000, 6, 29);
    let n = base.num_vertices() as VertexId;
    let mut batch = DeltaBatch::new().grow(2);
    for i in 0..200u32 {
        let (u, v) = (mix64(900 + i as u64) % n as u64, mix64(7000 + i as u64) % n as u64);
        if u != v {
            batch.add_edges.push((u as VertexId, v as VertexId));
        }
        batch.del_edges.push((i % n, (i * 7 + 1) % n));
    }
    batch.add_edges.push((n, n + 1)); // the grown vertices are reachable
    batch.add_edges.push((0, n));
    let (g, _, _) = apply_batch(&base, &batch).expect("batch in range");
    assert!(g.has_overlay());

    let clean = g.compacted();
    let want_bfs = apps::bfs(&clean, 1).dist;
    let want_cc = apps::cc(&clean).label;
    let want_radii = apps::radii(&clean, 3).radii;
    for t in Traversal::ALL {
        let opts = EdgeMapOptions::new().traversal(t);
        assert_eq!(apps::bfs_with(&g, 1, opts).dist, want_bfs, "{t:?}");
        let mut s = ligra::TraversalStats::new();
        assert_eq!(apps::cc_traced(&g, opts, &mut s).label, want_cc, "{t:?}");
        assert_eq!(apps::radii_traced(&g, 3, opts, &mut s).radii, want_radii, "{t:?}");
    }
}

#[test]
fn inflight_queries_stay_pinned_while_mutations_publish_new_epochs() {
    // The engine-level acceptance test: a query submitted before a
    // mutation completes on its original snapshot (its span carries the
    // old epoch and its result describes the old graph) even though the
    // store has moved on, and a query submitted after sees the new graph.
    let engine = Arc::new(Engine::new(EngineConfig { workers: 1, ..EngineConfig::default() }));
    let g = random_local(2000, 5, 7);
    let reached_before = apps::bfs(&g, 0).reached;
    engine.install_graph(Arc::new(g));
    let e0 = engine.current_epoch().expect("installed");

    // Occupy the single worker so the pinned query is still in flight
    // when the mutation lands.
    let slow = engine.submit(Query::PageRank { iters: 60 }, None).expect("submit slow");
    let pinned = engine.submit(Query::Bfs { source: 0 }, None).expect("submit pinned");

    let log = Arc::new(MutationLog::new(Arc::clone(&engine), MutationConfig::default()));
    let report = log
        .apply(
            &DeltaBatch::new().grow(3).add_edge(0, 2000).add_edge(2000, 2001).add_edge(2001, 2002),
        )
        .expect("mutate");
    assert!(report.epoch > e0);

    assert_eq!(pinned.wait(), QueryStatus::Done);
    assert_eq!(slow.wait(), QueryStatus::Done);
    let span = engine.span(pinned.id()).expect("span");
    assert_eq!(span.epoch, e0, "in-flight query pinned to its submit-time epoch");
    assert_eq!(
        summary_count(&pinned, "reached"),
        reached_before,
        "pinned result describes the old graph"
    );

    let fresh = engine.submit(Query::Bfs { source: 0 }, None).expect("submit fresh");
    assert_eq!(fresh.wait(), QueryStatus::Done);
    assert_eq!(engine.span(fresh.id()).expect("span").epoch, report.epoch);
    assert_eq!(
        summary_count(&fresh, "reached"),
        reached_before + 3,
        "post-mutation query sees the grown graph"
    );
}

/// Pulls one numeric field out of a finished query's result summary.
fn summary_count(h: &QueryHandle, key: &str) -> usize {
    let summary = h.result().expect("finished query has a result").summary();
    let (_, v) = summary.iter().find(|(k, _)| *k == key).expect("summary has the key");
    v.parse().expect("summary field is a count")
}

#[test]
fn mutation_invalidates_the_result_cache_by_epoch() {
    let engine = Arc::new(Engine::new(EngineConfig::default()));
    engine.install_graph(Arc::new(random_local(500, 4, 11)));
    let log = Arc::new(MutationLog::new(Arc::clone(&engine), MutationConfig::default()));

    let first = engine.submit(Query::Cc, None).expect("submit");
    assert_eq!(first.wait(), QueryStatus::Done);
    let repeat = engine.submit(Query::Cc, None).expect("submit");
    assert_eq!(repeat.wait(), QueryStatus::Done);
    let hits_before = engine.stats().cache_hits;
    assert!(hits_before >= 1, "same (epoch, query) must hit the cache");

    log.apply(&DeltaBatch::new().del_vertex(0)).expect("mutate");
    let after = engine.submit(Query::Cc, None).expect("submit");
    assert_eq!(after.wait(), QueryStatus::Done);
    let span = engine.span(after.id()).expect("span");
    assert!(!span.cache_hit, "a new epoch is a new cache key");
}

#[test]
fn compaction_under_load_preserves_results() {
    // Apply → query → compact → query: answers agree before and after,
    // and the compacted epoch serves from a clean CSR.
    let engine = Arc::new(Engine::new(EngineConfig::default()));
    engine.install_graph(Arc::new(random_local(1500, 5, 23)));
    let log = Arc::new(MutationLog::new(Arc::clone(&engine), MutationConfig::default()));
    for i in 0..10u32 {
        log.apply(&DeltaBatch::new().add_edge(i, 1499 - i).del_edge(i, i + 1)).expect("mutate");
    }
    let overlay_graph = Arc::clone(engine.current_snapshot().expect("snap").graph());
    assert!(overlay_graph.has_overlay());
    let before = apps::cc(overlay_graph.as_ref()).label;

    let report = log.compact().expect("compact");
    let clean = Arc::clone(engine.current_snapshot().expect("snap").graph());
    assert!(!clean.has_overlay());
    assert_eq!(engine.current_epoch(), Some(report.epoch));
    assert_eq!(apps::cc(clean.as_ref()).label, before, "compaction is result-identical");
}

/// With the tracked guards armed, the mutation suite's own workload
/// doubles as lock-order evidence: apply and compact hold
/// `mutation.state` across the store install, and that must be the only
/// direction the pair is ever taken in.
#[cfg(feature = "lock-check")]
#[test]
fn mutation_workload_certifies_lock_order() {
    let engine = Arc::new(Engine::new(EngineConfig::default()));
    engine.install_graph(Arc::new(random_local(600, 4, 41)));
    let log = Arc::new(MutationLog::new(Arc::clone(&engine), MutationConfig::default()));
    for i in 0..12u32 {
        log.apply(&DeltaBatch::new().add_edge(i, 599 - i)).expect("apply");
    }
    log.compact().expect("compact");
    let h = engine.submit(Query::Cc, None).expect("submit");
    assert_eq!(h.wait(), QueryStatus::Done);

    let report = ligra_engine::LockOracle::global()
        .certify()
        .expect("mutation workload certifies lock order");
    assert!(report.edges.contains(&("mutation.state", "store.current")), "{:?}", report.edges);
}
