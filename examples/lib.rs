//! Shared helpers for the runnable examples.
//!
//! Each binary in this package is a self-contained demonstration of the
//! Ligra public API on a realistic scenario:
//!
//! * `quickstart` — the smallest end-to-end program: build a graph, write
//!   a BFS with `edge_map`, print the result.
//! * `social_network` — influence analysis on a power-law (rMat) graph:
//!   PageRank for importance, betweenness for brokerage, components for
//!   reach, radii for the network's effective diameter.
//! * `road_network` — route planning on a weighted grid: Bellman–Ford
//!   distances, reachability, and the diameter of the road mesh.
//! * `web_ranking` — PageRank convergence study on a directed crawl-like
//!   graph, comparing exact iteration against the adaptive
//!   PageRank-Delta approximation.

/// Formats a float vector's top-k indices for display.
pub fn top_k(values: &[f64], k: usize) -> Vec<(usize, f64)> {
    let mut idx: Vec<usize> = (0..values.len()).collect();
    idx.sort_by(|&a, &b| values[b].partial_cmp(&values[a]).unwrap());
    idx.into_iter().take(k).map(|i| (i, values[i])).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn top_k_orders_descending() {
        let vals = vec![0.1, 0.9, 0.5];
        let top = top_k(&vals, 2);
        assert_eq!(top[0].0, 1);
        assert_eq!(top[1].0, 2);
    }
}
