//! Quickstart: the smallest complete Ligra program.
//!
//! Builds a graph from an edge list, runs a hand-written BFS through the
//! framework's `edge_map` while recording a telemetry trace, prints the
//! per-round trace table, and cross-checks the result with the packaged
//! application. Run with:
//!
//! ```text
//! cargo run -p ligra-examples --release --bin quickstart
//! ```

use ligra::{
    edge_fn, edge_map_recorded, summary, to_json_lines, EdgeMapOptions, TraversalStats,
    VertexSubset,
};
use ligra_graph::{build_graph, BuildOptions};
use ligra_parallel::atomics::{as_atomic_u32, cas_u32};
use std::sync::atomic::Ordering;

fn main() {
    // A small undirected graph: two triangles joined by a bridge.
    //
    //   0 - 1        4 - 5
    //   | /    3 - 4 | /
    //   2 - 3        6  (sic: 4-5, 4-6, 5-6)
    let edges = [(0, 1), (0, 2), (1, 2), (2, 3), (3, 4), (4, 5), (4, 6), (5, 6)];
    let n = 7;
    let g = build_graph(n, &edges, BuildOptions::symmetric());
    println!("graph: {} vertices, {} directed edges (symmetric)", g.num_vertices(), g.num_edges());

    // BFS from vertex 0, written directly against the framework: the edge
    // function claims unvisited vertices with a CAS; `cond` prunes claimed
    // ones (and lets the pull traversal stop scanning early).
    let source = 0u32;
    let mut parent = vec![u32::MAX; n];
    parent[source as usize] = source;
    let mut level = 0usize;
    let mut stats = TraversalStats::new();
    {
        let parent = as_atomic_u32(&mut parent);
        let bfs = edge_fn(
            |s: u32, d: u32, _w: ()| cas_u32(&parent[d as usize], u32::MAX, s),
            |d: u32| parent[d as usize].load(Ordering::Relaxed) == u32::MAX,
        );
        let mut frontier = VertexSubset::single(n, source);
        while !frontier.is_empty() {
            frontier =
                edge_map_recorded(&g, &mut frontier, &bfs, EdgeMapOptions::default(), &mut stats);
            if !frontier.is_empty() {
                level += 1;
                println!("level {level}: {:?}", frontier.to_vec_sorted());
            }
        }
    }
    println!("BFS tree parents: {parent:?}");

    // Every round was recorded: what the heuristic saw (`work` vs
    // `threshold`), the direction it chose, and the contention counters.
    println!("\nper-round trace:");
    println!(
        "{:>5} {:>8} {:>9} {:>4} {:>9} {:>9} {:>8} {:>7} {:>5} {:>7}",
        "round",
        "vertices",
        "out-edges",
        "work",
        "threshold",
        "mode",
        "cas_win",
        "scanned",
        "bytes",
        "time_ns"
    );
    for (i, r) in stats.edge_map_rounds().enumerate() {
        println!(
            "{:>5} {:>8} {:>9} {:>4} {:>9} {:>9} {:>8} {:>7} {:>5} {:>7}",
            i + 1,
            r.frontier_vertices,
            r.frontier_out_edges,
            r.work,
            r.threshold,
            r.mode.to_string(),
            format!("{}/{}", r.cas_wins, r.cas_attempts),
            r.edges_scanned,
            r.frontier_bytes,
            r.time_ns,
        );
    }
    println!("{}", summary(&stats));
    println!("trace as JSON lines (what `to_json_lines` exports):");
    print!("{}", to_json_lines(&stats));

    // The same thing via the packaged application.
    let result = ligra_apps::bfs(&g, source);
    assert_eq!(result.parent, parent, "hand-rolled BFS must match ligra-apps");
    println!("ligra_apps::bfs agrees: depth = {}, reached = {}/{n}", level, result.reached);
}
