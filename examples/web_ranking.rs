//! Web-graph ranking — PageRank on a directed crawl-shaped graph, and the
//! exact-vs-adaptive tradeoff of PageRank-Delta (the paper's demonstration
//! that frontier adaptivity helps even "non-traversal" algorithms).
//!
//! ```text
//! cargo run -p ligra-examples --release --bin web_ranking
//! ```

use ligra_apps as apps;
use ligra_examples::top_k;
use ligra_graph::generators::rmat::{rmat, RmatOptions};

fn main() {
    // Directed power-law graph standing in for a web crawl.
    let g = rmat(&RmatOptions { symmetric: false, ..RmatOptions::paper(14) });
    let n = g.num_vertices();
    println!("web graph: {n} pages, {} links (directed)", g.num_edges());

    // Exact damped PageRank to tight tolerance.
    let exact = apps::pagerank(&g, 0.85, 1e-10, 200);
    println!(
        "exact PageRank: {} iterations to L1 change {:.2e}",
        exact.iterations, exact.final_error
    );
    println!("top pages:");
    for (v, r) in top_k(&exact.rank, 5) {
        println!("  page {v:<8} rank {r:.6} in-degree {}", g.in_degree(v as u32));
    }

    // Adaptive PageRank-Delta at a few retention thresholds.
    println!("\nPageRank-Delta accuracy/speed tradeoff:");
    println!("{:>10} {:>12} {:>16} {:>14}", "eps2", "iterations", "L1 error", "top-5 overlap");
    let exact_top: Vec<usize> = top_k(&exact.rank, 5).into_iter().map(|(v, _)| v).collect();
    for eps2 in [1e-1, 1e-2, 1e-3, 1e-4] {
        let approx = apps::pagerank_delta(&g, 0.85, eps2, 200);
        let l1: f64 = exact.rank.iter().zip(&approx.rank).map(|(a, b)| (a - b).abs()).sum();
        let approx_top: Vec<usize> = top_k(&approx.rank, 5).into_iter().map(|(v, _)| v).collect();
        let overlap = approx_top.iter().filter(|v| exact_top.contains(v)).count();
        println!("{eps2:>10.0e} {:>12} {l1:>16.2e} {overlap:>11}/5", approx.iterations);
    }
    println!("\nexpected shape: smaller eps2 -> more iterations, lower error;");
    println!("top pages stabilize long before full convergence.");
}
