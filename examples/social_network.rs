//! Social-network analysis on a power-law graph — the workload family the
//! paper's introduction motivates (studying social networks and the Web
//! graph on a single shared-memory machine).
//!
//! Generates a Twitter-shaped rMAT graph and runs the full analysis
//! pipeline: connectivity (is there a giant component?), PageRank
//! (influence), single-source betweenness (brokerage through the top
//! hub), and radii estimation (how small is this small world?).
//!
//! ```text
//! cargo run -p ligra-examples --release --bin social_network
//! ```

use ligra_apps as apps;
use ligra_examples::top_k;
use ligra_graph::generators::rmat::{rmat_edges, RmatOptions};
use ligra_graph::{build_graph, BuildOptions};

fn main() {
    // Twitter-like skew, symmetrized (friendship rather than follow).
    let opts = RmatOptions { symmetric: true, ..RmatOptions::twitter_like(14) };
    let edges = rmat_edges(&opts);
    let g = build_graph(opts.num_vertices(), &edges, BuildOptions::symmetric());
    let n = g.num_vertices();
    println!("social graph: {} members, {} friendship arcs", n, g.num_edges());

    // 1. Connectivity: size of the giant component.
    let comps = apps::cc(&g);
    let giant = comps.largest_component();
    println!(
        "components: {} total, giant component covers {:.1}% of members",
        comps.num_components(),
        100.0 * giant as f64 / n as f64
    );

    // 2. Influence: PageRank.
    let pr = apps::pagerank(&g, 0.85, 1e-9, 100);
    println!("pagerank converged in {} iterations", pr.iterations);
    println!("top influencers (vertex, rank):");
    for (v, r) in top_k(&pr.rank, 5) {
        println!("  #{v:<8} rank {r:.6}  degree {}", g.out_degree(v as u32));
    }

    // 3. Brokerage: betweenness contributions through the top hub.
    let (hub, hub_deg) = g.max_out_degree();
    let bc = apps::bc(&g, hub);
    println!("betweenness from hub {hub} (degree {hub_deg}):");
    for (v, d) in top_k(&bc.dependencies, 5) {
        println!("  #{v:<8} dependency {d:.1}");
    }

    // 4. Small world: sampled eccentricities.
    let radii = apps::radii(&g, 42);
    println!(
        "estimated diameter: {} ({} multi-BFS rounds over {} samples)",
        radii.estimated_diameter(),
        radii.rounds,
        radii.sample.len()
    );
}
