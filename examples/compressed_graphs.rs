//! Working with compressed graphs (Ligra+) — fit a bigger graph in the
//! same memory and keep running the same algorithms.
//!
//! ```text
//! cargo run -p ligra-examples --release --bin compressed_graphs
//! ```

use ligra_apps as apps;
use ligra_compress::{CompressedGraph, apps as capps};
use ligra_graph::generators::rmat::RmatOptions;
use ligra_graph::generators::{grid3d, random_local, rmat};

fn main() {
    println!("Ligra+ compressed graphs: space and algorithm parity\n");
    println!(
        "{:<16} {:>10} {:>12} {:>12} {:>7}",
        "graph", "edges", "CSR bytes", "compressed", "ratio"
    );

    let inputs = [
        ("3d-grid(24)", grid3d(24)),
        ("random-local", random_local(50_000, 10, 1)),
        ("rMat(2^16)", rmat(&RmatOptions::paper(16))),
    ];

    for (name, g) in &inputs {
        let cg: CompressedGraph = CompressedGraph::from_graph(g);
        let (compressed, csr, ratio) = cg.space_vs_csr();
        println!(
            "{:<16} {:>10} {:>12} {:>12} {:>7.3}",
            name,
            g.num_edges(),
            csr,
            compressed,
            ratio
        );
    }

    // Algorithm parity: identical answers from both representations.
    let g = &inputs[2].1;
    let cg: CompressedGraph = CompressedGraph::from_graph(g);

    let unc = apps::bfs(g, 0);
    let (cparent, crounds) = capps::bfs(&cg, 0);
    let creached = cparent.iter().filter(|&&p| p != capps::UNREACHED).count();
    assert_eq!(crounds, unc.rounds);
    assert_eq!(creached, unc.reached);
    println!("\nBFS parity on rMat(2^16): {} rounds, {} reached — identical ✓", crounds, creached);

    let labels_u = apps::cc(g).label;
    let labels_c = capps::cc(&cg);
    assert_eq!(labels_u, labels_c);
    let ncomp = {
        let mut l = labels_c.clone();
        l.sort_unstable();
        l.dedup();
        l.len()
    };
    println!("Components parity: {ncomp} components — identical ✓");

    let pr_u = apps::pagerank(g, 0.85, 1e-9, 100);
    let (pr_c, iters) = capps::pagerank(&cg, 0.85, 1e-9, 100);
    let l1: f64 = pr_u.rank.iter().zip(&pr_c).map(|(a, b)| (a - b).abs()).sum();
    println!("PageRank parity: {iters} iterations, L1 divergence {l1:.2e} ✓");
    assert!(l1 < 1e-8);
}
