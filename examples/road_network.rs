//! Route planning on a road-mesh-like graph — the high-diameter end of
//! the paper's input spectrum (unstructured meshes, road networks).
//!
//! Builds a 3-D grid (think: a city with stacked road levels), weights
//! the road segments, and runs Bellman–Ford for travel times, BFS for
//! hop counts, and connected components as a sanity check. Shows why
//! direction optimization is irrelevant here: frontiers never densify.
//!
//! ```text
//! cargo run -p ligra-examples --release --bin road_network
//! ```

use ligra::{EdgeMapOptions, TraversalStats};
use ligra_apps as apps;
use ligra_graph::generators::{grid3d, random_weights};

fn main() {
    let side = 24;
    let g = grid3d(side);
    let n = g.num_vertices();
    println!("road mesh: {side}x{side}x{side} torus, {n} junctions, {} segments", g.num_edges());

    // Travel times: random weights 1..=9 per segment.
    let weighted = random_weights(&g, 9, 7);
    let depot = 0u32;
    let sp = apps::bellman_ford(&weighted, depot);
    assert!(!sp.negative_cycle);
    let max_time = sp.dist.iter().max().unwrap();
    let avg_time: f64 = sp.dist.iter().map(|&d| d as f64).sum::<f64>() / n as f64;
    println!(
        "travel times from depot {depot}: max {max_time}, mean {avg_time:.1} ({} relaxation rounds)",
        sp.rounds
    );

    // Hop distances with traversal tracing: every round stays sparse at
    // paper scale; at this laptop scale a few middle rounds may densify,
    // but the round count equals the mesh's hop diameter either way.
    let mut stats = TraversalStats::new();
    let bfs = apps::bfs_traced(&g, depot, EdgeMapOptions::default(), &mut stats);
    let (sparse, dense, _, _) = stats.mode_counts();
    println!(
        "hop diameter from depot: {} rounds ({sparse} sparse / {dense} dense), reached {}/{}",
        bfs.rounds, bfs.reached, n
    );

    // Sanity: a torus is one connected component.
    let comps = apps::cc(&g);
    assert_eq!(comps.num_components(), 1);
    println!("connectivity check: 1 component ✓");

    // Every hop distance lower-bounds its travel time (weights >= 1).
    for v in 0..n {
        assert!(sp.dist[v] >= bfs.dist[v] as i64);
    }
    println!("consistency check: travel time >= hop count everywhere ✓");
}
