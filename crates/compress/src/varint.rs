//! Variable-length byte codes (the "byte" codes of Ligra+).
//!
//! Unsigned integers are split into 7-bit groups, least significant
//! first; the high bit of each byte marks continuation. Signed values
//! (the first-neighbor offset `ngh₀ − v` can be negative) are zigzag
//! mapped first. These are exactly the codes Ligra+ reports as the best
//! time/space tradeoff (its nibble and run-length codes trade a little
//! more space for decode speed; byte codes are its default).

/// Appends the byte code of `v` to `out`; returns the encoded length.
#[inline]
pub fn encode_u64(mut v: u64, out: &mut Vec<u8>) -> usize {
    let mut len = 0;
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        len += 1;
        if v == 0 {
            out.push(byte);
            return len;
        }
        out.push(byte | 0x80);
    }
}

/// Decodes a byte code starting at `data[pos]`; returns `(value, new_pos)`.
///
/// # Panics
/// Panics (by slice indexing) if the code runs past the end of `data`.
#[inline]
pub fn decode_u64(data: &[u8], mut pos: usize) -> (u64, usize) {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let byte = data[pos];
        pos += 1;
        v |= ((byte & 0x7f) as u64) << shift;
        if byte & 0x80 == 0 {
            return (v, pos);
        }
        shift += 7;
        debug_assert!(shift < 64, "varint longer than 64 bits");
    }
}

/// Zigzag map: interleaves signed values onto the unsigned line
/// (0, -1, 1, -2, 2, …) so small magnitudes get short codes.
#[inline]
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
#[inline]
pub fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Appends the zigzag byte code of a signed value.
#[inline]
pub fn encode_i64(v: i64, out: &mut Vec<u8>) -> usize {
    encode_u64(zigzag(v), out)
}

/// Decodes a zigzag byte code.
#[inline]
pub fn decode_i64(data: &[u8], pos: usize) -> (i64, usize) {
    let (u, pos) = decode_u64(data, pos);
    (unzigzag(u), pos)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unsigned_roundtrip() {
        let mut buf = Vec::new();
        let values = [0u64, 1, 127, 128, 255, 16383, 16384, u32::MAX as u64, u64::MAX];
        let mut lens = Vec::new();
        for &v in &values {
            lens.push(encode_u64(v, &mut buf));
        }
        let mut pos = 0;
        for (i, &v) in values.iter().enumerate() {
            let (got, next) = decode_u64(&buf, pos);
            assert_eq!(got, v);
            assert_eq!(next - pos, lens[i]);
            pos = next;
        }
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn code_lengths_are_minimal() {
        let mut buf = Vec::new();
        assert_eq!(encode_u64(0, &mut buf), 1);
        assert_eq!(encode_u64(127, &mut buf), 1);
        assert_eq!(encode_u64(128, &mut buf), 2);
        assert_eq!(encode_u64(16383, &mut buf), 2);
        assert_eq!(encode_u64(16384, &mut buf), 3);
        assert_eq!(encode_u64(u64::MAX, &mut buf), 10);
    }

    #[test]
    fn zigzag_is_a_bijection_on_small_values() {
        for v in -1000i64..=1000 {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
        assert_eq!(unzigzag(zigzag(i64::MIN)), i64::MIN);
        assert_eq!(unzigzag(zigzag(i64::MAX)), i64::MAX);
    }

    #[test]
    fn signed_roundtrip() {
        let mut buf = Vec::new();
        let values = [0i64, -1, 1, -64, 63, -65, 64, i32::MIN as i64, i64::MAX];
        for &v in &values {
            encode_i64(v, &mut buf);
        }
        let mut pos = 0;
        for &v in &values {
            let (got, next) = decode_i64(&buf, pos);
            assert_eq!(got, v);
            pos = next;
        }
    }

    #[test]
    #[should_panic]
    fn truncated_code_panics() {
        let mut buf = Vec::new();
        encode_u64(1 << 20, &mut buf);
        buf.pop();
        let _ = decode_u64(&buf, 0);
    }
}
