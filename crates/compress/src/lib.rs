//! # ligra-compress
//!
//! Reproduction of **Ligra+: Smaller and Faster: Parallel Processing of
//! Compressed Graphs** (Shun, Dhulipala, Blelloch; DCC 2015) — the
//! follow-up system by the paper's authors, reproduced here as the
//! extension work of the main Ligra build.
//!
//! Adjacency lists are stored as difference-encoded byte codes
//! ([`varint`]): the first neighbor relative to the source vertex, the
//! rest as gaps. `edgeMap` runs directly over the compressed
//! representation, decoding on the fly ([`edge_map`]); the claim to
//! verify is ~2× space reduction at roughly equal traversal time
//! (see the `ligraplus` bench binary).

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod apps;
pub mod cgraph;
pub mod codec;
pub mod edge_map;
pub mod varint;

pub use cgraph::{CompressedAdjacency, CompressedGraph};
pub use codec::{ByteCode, ByteRleCode, Codec, NibbleCode};
pub use edge_map::{edge_map, edge_map_recorded, edge_map_traced, edge_map_with};
