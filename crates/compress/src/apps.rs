//! Applications over compressed graphs — the workloads Ligra+'s
//! evaluation reruns to show compression does not cost performance.
//!
//! The edge functions are byte-for-byte the same as the uncompressed
//! applications in `ligra-apps`; only the `edgeMap` they call differs.

use crate::cgraph::CompressedGraph;
use crate::codec::Codec;
use crate::edge_map::edge_map_with;
use ligra::{vertex_map, EdgeMapFn, EdgeMapOptions, VertexSubset};
use ligra_graph::VertexId;
use ligra_parallel::atomics::{as_atomic_f64, as_atomic_u32, cas_u32, write_min_u32, AtomicF64};
use ligra_parallel::checked_u32;
use rayon::prelude::*;
use std::sync::atomic::{AtomicU32, Ordering};

/// Unreached marker (same as `ligra_apps::UNREACHED`).
pub const UNREACHED: u32 = u32::MAX;

struct BfsF<'a> {
    parent: &'a [AtomicU32],
}

impl EdgeMapFn for BfsF<'_> {
    #[inline]
    fn update(&self, src: VertexId, dst: VertexId, _w: ()) -> bool {
        let slot = &self.parent[dst as usize];
        if slot.load(Ordering::Relaxed) == UNREACHED {
            slot.store(src, Ordering::Relaxed);
            true
        } else {
            false
        }
    }

    #[inline]
    fn update_atomic(&self, src: VertexId, dst: VertexId, _w: ()) -> bool {
        cas_u32(&self.parent[dst as usize], UNREACHED, src)
    }

    #[inline]
    fn cond(&self, dst: VertexId) -> bool {
        self.parent[dst as usize].load(Ordering::Relaxed) == UNREACHED
    }
}

/// BFS over the compressed graph; returns `(parent, rounds)`.
pub fn bfs<C: Codec>(g: &CompressedGraph<C>, source: VertexId) -> (Vec<u32>, usize) {
    let n = g.num_vertices();
    assert!((source as usize) < n);
    let mut parent = vec![UNREACHED; n];
    parent[source as usize] = source;
    let mut rounds = 0;
    {
        let cells = as_atomic_u32(&mut parent);
        let f = BfsF { parent: cells };
        let mut frontier = VertexSubset::single(n, source);
        while !frontier.is_empty() {
            frontier = edge_map_with(g, &mut frontier, &f, EdgeMapOptions::default());
            rounds += 1;
        }
    }
    (parent, rounds)
}

struct CcF<'a> {
    ids: &'a [AtomicU32],
    prev: &'a [AtomicU32],
}

impl EdgeMapFn for CcF<'_> {
    #[inline]
    fn update(&self, src: VertexId, dst: VertexId, _w: ()) -> bool {
        let sid = self.ids[src as usize].load(Ordering::Relaxed);
        let slot = &self.ids[dst as usize];
        let orig = slot.load(Ordering::Relaxed);
        if sid < orig {
            slot.store(sid, Ordering::Relaxed);
            orig == self.prev[dst as usize].load(Ordering::Relaxed)
        } else {
            false
        }
    }

    #[inline]
    fn update_atomic(&self, src: VertexId, dst: VertexId, _w: ()) -> bool {
        let sid = self.ids[src as usize].load(Ordering::Relaxed);
        let slot = &self.ids[dst as usize];
        let orig = slot.load(Ordering::Relaxed);
        write_min_u32(slot, sid) && orig == self.prev[dst as usize].load(Ordering::Relaxed)
    }
}

/// Label-propagation connected components over the compressed graph.
///
/// # Panics
/// Panics if `g` is not symmetric.
pub fn cc<C: Codec>(g: &CompressedGraph<C>) -> Vec<u32> {
    assert!(g.is_symmetric(), "connected components requires a symmetric graph");
    let n = g.num_vertices();
    let mut ids: Vec<u32> = (0..checked_u32(n)).collect();
    let mut prev: Vec<u32> = (0..checked_u32(n)).collect();
    {
        let ids = as_atomic_u32(&mut ids);
        let prev = as_atomic_u32(&mut prev);
        let f = CcF { ids, prev };
        let mut frontier = VertexSubset::all(n);
        while !frontier.is_empty() {
            vertex_map(&frontier, |v| {
                prev[v as usize].store(ids[v as usize].load(Ordering::Relaxed), Ordering::Relaxed);
            });
            frontier = edge_map_with(g, &mut frontier, &f, EdgeMapOptions::default());
        }
    }
    ids
}

struct PrF<'a> {
    shares: &'a [f64],
    next: &'a [AtomicF64],
}

impl EdgeMapFn for PrF<'_> {
    #[inline]
    fn update(&self, src: VertexId, dst: VertexId, _w: ()) -> bool {
        let slot = &self.next[dst as usize];
        let cur = slot.load(Ordering::Relaxed);
        slot.store(cur + self.shares[src as usize], Ordering::Relaxed);
        true
    }

    #[inline]
    fn update_atomic(&self, src: VertexId, dst: VertexId, _w: ()) -> bool {
        self.next[dst as usize].fetch_add(self.shares[src as usize]);
        true
    }
}

/// PageRank over the compressed graph; returns `(ranks, iterations)`.
pub fn pagerank<C: Codec>(
    g: &CompressedGraph<C>,
    alpha: f64,
    eps: f64,
    max_iters: usize,
) -> (Vec<f64>, usize) {
    let n = g.num_vertices();
    let base = (1.0 - alpha) / n as f64;
    let mut p = vec![1.0 / n as f64; n];
    let mut next = vec![0.0f64; n];
    let mut shares = vec![0.0f64; n];
    let mut frontier = VertexSubset::all(n);
    let mut iterations = 0;
    let mut err = f64::INFINITY;
    while iterations < max_iters && err >= eps {
        iterations += 1;
        shares
            .par_iter_mut()
            .enumerate()
            .for_each(|(s, slot)| *slot = p[s] / (g.out_degree(checked_u32(s)).max(1)) as f64);
        {
            let cells = as_atomic_f64(&mut next);
            let f = PrF { shares: &shares, next: cells };
            let _ = edge_map_with(g, &mut frontier, &f, EdgeMapOptions::default().no_output());
            vertex_map(&frontier, |v| {
                let x = cells[v as usize].load(Ordering::Relaxed);
                cells[v as usize].store(base + alpha * x, Ordering::Relaxed);
            });
        }
        err = ligra_parallel::reduce::reduce_with(
            n,
            0.0f64,
            |i| (next[i] - p[i]).abs(),
            |a, b| a + b,
        );
        std::mem::swap(&mut p, &mut next);
        next.par_iter_mut().for_each(|x| *x = 0.0);
    }
    (p, iterations)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ligra_graph::generators::rmat::RmatOptions;
    use ligra_graph::generators::{erdos_renyi, grid3d, rmat};

    #[test]
    fn compressed_bfs_matches_uncompressed() {
        for g in [grid3d(6), rmat(&RmatOptions::paper(10))] {
            let cg: CompressedGraph = CompressedGraph::from_graph(&g);
            let (parent, rounds) = bfs(&cg, 0);
            let reference = ligra_apps_bfs_dist(&g, 0);
            // Compare reachability and parent validity (parents race).
            for v in 0..g.num_vertices() {
                assert_eq!(parent[v] == UNREACHED, reference[v] == u32::MAX, "vertex {v}");
            }
            assert!(rounds > 0);
        }
    }

    // Local sequential BFS to avoid a dev-dependency cycle with ligra-apps.
    fn ligra_apps_bfs_dist(g: &ligra_graph::Graph, src: u32) -> Vec<u32> {
        let n = g.num_vertices();
        let mut dist = vec![u32::MAX; n];
        let mut q = std::collections::VecDeque::new();
        dist[src as usize] = 0;
        q.push_back(src);
        while let Some(u) = q.pop_front() {
            for &v in g.out_neighbors(u) {
                if dist[v as usize] == u32::MAX {
                    dist[v as usize] = dist[u as usize] + 1;
                    q.push_back(v);
                }
            }
        }
        dist
    }

    #[test]
    fn compressed_cc_matches_labels() {
        let g = erdos_renyi(1000, 1500, 3, true);
        let cg: CompressedGraph = CompressedGraph::from_graph(&g);
        let labels = cc(&cg);
        // Union-find reference.
        let mut uf: Vec<u32> = (0..1000u32).collect();
        fn find(uf: &mut [u32], mut x: u32) -> u32 {
            while uf[x as usize] != x {
                let g = uf[uf[x as usize] as usize];
                uf[x as usize] = g;
                x = g;
            }
            x
        }
        for u in 0..1000u32 {
            for &v in g.out_neighbors(u) {
                let (ru, rv) = (find(&mut uf, u), find(&mut uf, v));
                if ru != rv {
                    if ru < rv {
                        uf[rv as usize] = ru;
                    } else {
                        uf[ru as usize] = rv;
                    }
                }
            }
        }
        let expect: Vec<u32> = (0..1000u32).map(|v| find(&mut uf, v)).collect();
        assert_eq!(labels, expect);
    }

    #[test]
    fn compressed_pagerank_matches_uncompressed_shape() {
        let g = rmat(&RmatOptions::paper(9));
        let cg: CompressedGraph = CompressedGraph::from_graph(&g);
        let (p, iters) = pagerank(&cg, 0.85, 1e-9, 200);
        assert!(iters < 200);
        // Ranks sum to <= 1 and the hub has high rank.
        let total: f64 = p.iter().sum();
        assert!(total > 0.5 && total <= 1.0 + 1e-9, "total {total}");
    }
}
