//! Difference-encoded compressed graphs (Ligra+'s representation),
//! generic over the [`Codec`].
//!
//! Each vertex's sorted neighbor list is stored as a codec-encoded byte
//! string: the first neighbor as the signed difference `ngh₀ − v`
//! (neighbors cluster near their source in real graphs, so this is
//! small), the rest as positive gaps. Degrees and per-vertex byte offsets
//! stay uncompressed, exactly as in Ligra+.

use crate::codec::{ByteCode, Codec};
use ligra_graph::{Graph, VertexId};
use ligra_parallel::checked_u32;
use ligra_parallel::scan::prefix_sums;
use rayon::prelude::*;

/// One compressed direction of adjacency.
#[derive(Debug, Clone)]
pub struct CompressedAdjacency<C: Codec = ByteCode> {
    /// Byte offset of each vertex's encoded list (length `n + 1`).
    offsets: Vec<u64>,
    /// Degree of each vertex (length `n`).
    degrees: Vec<u32>,
    /// Concatenated codec output.
    data: Vec<u8>,
    _codec: std::marker::PhantomData<C>,
}

impl<C: Codec> CompressedAdjacency<C> {
    /// Compresses one CSR direction. Lists must be strictly sorted (the
    /// builder guarantees this for deduplicated graphs).
    pub fn from_adjacency(adj: &ligra_graph::Adjacency<()>) -> Self {
        let n = adj.num_vertices();
        let chunks: Vec<Vec<u8>> = (0..checked_u32(n))
            .into_par_iter()
            .map(|v| {
                let ns = adj.neighbors(v);
                debug_assert!(
                    ns.windows(2).all(|w| w[0] < w[1]),
                    "compressed lists require strictly sorted neighbors"
                );
                let mut buf = Vec::with_capacity(ns.len() + 4);
                C::encode_list(v, ns, &mut buf);
                buf
            })
            .collect();

        let sizes: Vec<u64> = chunks.iter().map(|c| c.len() as u64).collect();
        let (mut offsets, total) = prefix_sums(&sizes);
        offsets.push(total);
        let mut data = Vec::with_capacity(total as usize);
        for c in &chunks {
            data.extend_from_slice(c);
        }
        let degrees: Vec<u32> = (0..checked_u32(n)).map(|v| checked_u32(adj.degree(v))).collect();
        CompressedAdjacency { offsets, degrees, data, _codec: std::marker::PhantomData }
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.degrees.len()
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        self.degrees[v as usize] as usize
    }

    /// Bytes used by the encoded neighbor data (excluding offsets/degrees).
    #[inline]
    pub fn data_bytes(&self) -> usize {
        self.data.len()
    }

    /// Total bytes of the structure (data + offsets + degrees).
    pub fn total_bytes(&self) -> usize {
        self.data.len() + self.offsets.len() * 8 + self.degrees.len() * 4
    }

    /// Iterates `v`'s neighbors in ascending order, decoding on the fly.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> C::Iter<'_> {
        C::decode_list(v, self.degrees[v as usize], &self.data, self.offsets[v as usize] as usize)
    }

    /// Decodes `v`'s full neighbor list into a vector.
    pub fn decode(&self, v: VertexId) -> Vec<VertexId> {
        self.neighbors(v).collect()
    }
}

/// A compressed graph: out-direction plus, for directed graphs, the
/// compressed transpose. Defaults to Ligra+'s byte codes.
#[derive(Debug, Clone)]
pub struct CompressedGraph<C: Codec = ByteCode> {
    out: CompressedAdjacency<C>,
    incoming: Option<CompressedAdjacency<C>>,
    num_edges: usize,
    /// Lazily built default-width partitioning for the partitioned
    /// traversal, mirroring `ligra_graph::Graph::partitioning`.
    partitions: std::sync::OnceLock<std::sync::Arc<ligra_graph::Partitioning>>,
}

impl<C: Codec> CompressedGraph<C> {
    /// Compresses an uncompressed graph (both directions for directed
    /// inputs).
    pub fn from_graph(g: &Graph) -> Self {
        let out = CompressedAdjacency::from_adjacency(g.out_adj());
        let incoming = if g.is_symmetric() {
            None
        } else {
            Some(CompressedAdjacency::from_adjacency(g.in_adj()))
        };
        CompressedGraph {
            out,
            incoming,
            num_edges: g.num_edges(),
            partitions: std::sync::OnceLock::new(),
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.out.num_vertices()
    }

    /// Number of directed edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// True when one compressed CSR serves both directions.
    #[inline]
    pub fn is_symmetric(&self) -> bool {
        self.incoming.is_none()
    }

    /// Out-degree of `v`.
    #[inline]
    pub fn out_degree(&self, v: VertexId) -> usize {
        self.out.degree(v)
    }

    /// In-degree of `v`.
    #[inline]
    pub fn in_degree(&self, v: VertexId) -> usize {
        self.in_dir().degree(v)
    }

    /// Streaming out-neighbors of `v`.
    #[inline]
    pub fn out_neighbors(&self, v: VertexId) -> C::Iter<'_> {
        self.out.neighbors(v)
    }

    /// Streaming in-neighbors of `v`.
    #[inline]
    pub fn in_neighbors(&self, v: VertexId) -> C::Iter<'_> {
        self.in_dir().neighbors(v)
    }

    #[inline]
    fn in_dir(&self) -> &CompressedAdjacency<C> {
        self.incoming.as_ref().unwrap_or(&self.out)
    }

    /// The cached default-width [`ligra_graph::Partitioning`] for the
    /// partitioned traversal, built on first use from the stored
    /// (uncompressed) in-degree array.
    pub fn partitioning(&self) -> std::sync::Arc<ligra_graph::Partitioning> {
        self.partitions
            .get_or_init(|| {
                let n = self.num_vertices();
                let bits = ligra_graph::partition::default_bits(n);
                std::sync::Arc::new(ligra_graph::Partitioning::from_degrees(n, bits, |v| {
                    self.in_degree(v) as u64
                }))
            })
            .clone()
    }

    /// Like [`Self::partitioning`] but honoring an explicit width
    /// request; `None` falls back to the cached default.
    pub fn partitioning_with(
        &self,
        bits: Option<u32>,
    ) -> std::sync::Arc<ligra_graph::Partitioning> {
        match bits {
            None => self.partitioning(),
            Some(b) => {
                let cached = self.partitioning();
                let clamped =
                    b.clamp(ligra_graph::partition::MIN_BITS, ligra_graph::partition::MAX_BITS);
                if cached.bits() == clamped {
                    cached
                } else {
                    let n = self.num_vertices();
                    std::sync::Arc::new(ligra_graph::Partitioning::from_degrees(n, clamped, |v| {
                        self.in_degree(v) as u64
                    }))
                }
            }
        }
    }

    /// Decodes `v`'s full out-neighbor list into a vector.
    pub fn decode(&self, v: VertexId) -> Vec<VertexId> {
        self.out.decode(v)
    }

    /// Sum of out-degrees over a vertex list.
    pub fn out_degree_sum(&self, vs: &[VertexId]) -> u64 {
        if vs.len() < 2048 {
            vs.iter().map(|&v| self.out_degree(v) as u64).sum()
        } else {
            vs.par_iter().map(|&v| self.out_degree(v) as u64).sum()
        }
    }

    /// Space report: `(compressed_bytes, csr_bytes, ratio)`. The CSR
    /// baseline counts 4 bytes per edge target plus 8 per offset, per
    /// stored direction — the same accounting Ligra+ uses.
    pub fn space_vs_csr(&self) -> (usize, usize, f64) {
        let dirs = if self.is_symmetric() { 1 } else { 2 };
        let csr = dirs * (self.num_edges * 4 + (self.num_vertices() + 1) * 8);
        let mut compressed = self.out.total_bytes();
        if let Some(inc) = &self.incoming {
            compressed += inc.total_bytes();
        }
        (compressed, csr, compressed as f64 / csr as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::{ByteRleCode, NibbleCode};
    use ligra_graph::generators::rmat::RmatOptions;
    use ligra_graph::generators::{erdos_renyi, grid3d, random_local, rmat};

    fn roundtrip_with<C: Codec>(g: &Graph) {
        let cg: CompressedGraph<C> = CompressedGraph::from_graph(g);
        assert_eq!(cg.num_vertices(), g.num_vertices());
        assert_eq!(cg.num_edges(), g.num_edges());
        for v in 0..g.num_vertices() as u32 {
            assert_eq!(cg.decode(v), g.out_neighbors(v), "{}: out list of {v}", C::NAME);
            let ins: Vec<u32> = cg.in_neighbors(v).collect();
            assert_eq!(ins, g.in_neighbors(v), "{}: in list of {v}", C::NAME);
            assert_eq!(cg.out_degree(v), g.out_degree(v));
        }
    }

    fn roundtrip(g: &Graph) {
        roundtrip_with::<ByteCode>(g);
        roundtrip_with::<NibbleCode>(g);
        roundtrip_with::<ByteRleCode>(g);
    }

    #[test]
    fn roundtrips_all_families_all_codecs() {
        roundtrip(&grid3d(5));
        roundtrip(&random_local(2000, 6, 1));
        roundtrip(&rmat(&RmatOptions::paper(10)));
        roundtrip(&erdos_renyi(500, 3000, 2, false)); // directed
    }

    #[test]
    fn empty_lists_decode_empty() {
        let g = ligra_graph::build_graph(4, &[(0, 1)], ligra_graph::BuildOptions::directed());
        let cg: CompressedGraph = CompressedGraph::from_graph(&g);
        assert_eq!(cg.decode(2), Vec::<u32>::new());
        assert_eq!(cg.out_degree(2), 0);
    }

    #[test]
    fn local_graphs_compress_well() {
        let g = grid3d(16);
        let cg: CompressedGraph = CompressedGraph::from_graph(&g);
        let (compressed, csr, ratio) = cg.space_vs_csr();
        assert!(compressed < csr, "{compressed} vs {csr}");
        assert!(ratio < 0.8, "expected real savings on a grid, ratio {ratio}");
    }

    #[test]
    fn random_local_compresses_better_than_uniform_random() {
        let local: CompressedGraph = CompressedGraph::from_graph(&random_local(20_000, 8, 3));
        let uniform: CompressedGraph =
            CompressedGraph::from_graph(&erdos_renyi(20_000, 160_000, 3, true));
        let (_, _, r_local) = local.space_vs_csr();
        let (_, _, r_uniform) = uniform.space_vs_csr();
        assert!(r_local < r_uniform, "locality must help: local {r_local} vs uniform {r_uniform}");
    }

    #[test]
    fn nibble_is_smallest_on_local_graphs() {
        let g = grid3d(12);
        let byte: CompressedGraph<ByteCode> = CompressedGraph::from_graph(&g);
        let nibble: CompressedGraph<NibbleCode> = CompressedGraph::from_graph(&g);
        let (b, _, _) = byte.space_vs_csr();
        let (nb, _, _) = nibble.space_vs_csr();
        assert!(nb <= b, "nibble {nb} vs byte {b}");
    }

    #[test]
    fn iterator_exact_size() {
        let g = grid3d(4);
        let cg: CompressedGraph = CompressedGraph::from_graph(&g);
        let it = cg.out_neighbors(0);
        assert_eq!(it.len(), 6);
        assert_eq!(it.count(), 6);
    }
}
