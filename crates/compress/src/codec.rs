//! The encoding schemes Ligra+ evaluates: byte codes, nibble codes, and
//! run-length-encoded byte codes.
//!
//! A [`Codec`] turns one vertex's sorted neighbor list into bytes and
//! back: the first neighbor as a signed offset from the source vertex,
//! the rest as positive gaps. The DCC'15 paper's finding, which the
//! `ligraplus` bench reproduces in miniature: nibble codes are smallest
//! but slowest to decode; byte codes are the sweet spot; byte-RLE trades
//! a little space for the fastest decoding (runs decode without
//! per-value branches).

use crate::varint;
use ligra_graph::VertexId;
use ligra_parallel::checked_u32;

/// An adjacency-list encoding scheme.
pub trait Codec: Default + Clone + Send + Sync + 'static {
    /// Streaming decoder for one encoded list.
    type Iter<'a>: Iterator<Item = VertexId> + 'a;

    /// Human-readable codec name (for benchmark output).
    const NAME: &'static str;

    /// Appends the encoding of `v`'s sorted, strictly increasing neighbor
    /// list to `out`.
    fn encode_list(v: VertexId, ns: &[VertexId], out: &mut Vec<u8>);

    /// Decodes the list of `v` with `degree` entries starting at
    /// `data[start]`.
    fn decode_list(v: VertexId, degree: u32, data: &[u8], start: usize) -> Self::Iter<'_>;
}

// ---------------------------------------------------------------------
// Byte codes (LEB128-style; Ligra+'s default).
// ---------------------------------------------------------------------

/// 7-bits-per-byte variable-length codes — Ligra+'s default.
#[derive(Debug, Default, Clone, Copy)]
pub struct ByteCode;

/// Decoder for [`ByteCode`].
pub struct ByteIter<'a> {
    data: &'a [u8],
    pos: usize,
    remaining: u32,
    prev: VertexId,
    v: VertexId,
    first: bool,
}

impl Iterator for ByteIter<'_> {
    type Item = VertexId;

    #[inline]
    fn next(&mut self) -> Option<VertexId> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let ngh = if self.first {
            self.first = false;
            let (diff, pos) = varint::decode_i64(self.data, self.pos);
            self.pos = pos;
            checked_u32(self.v as i64 + diff)
        } else {
            let (gap, pos) = varint::decode_u64(self.data, self.pos);
            self.pos = pos;
            self.prev + checked_u32(gap)
        };
        self.prev = ngh;
        Some(ngh)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining as usize, Some(self.remaining as usize))
    }
}

impl ExactSizeIterator for ByteIter<'_> {}

impl Codec for ByteCode {
    type Iter<'a> = ByteIter<'a>;
    const NAME: &'static str = "byte";

    fn encode_list(v: VertexId, ns: &[VertexId], out: &mut Vec<u8>) {
        if let Some((&first, rest)) = ns.split_first() {
            varint::encode_i64(first as i64 - v as i64, out);
            let mut prev = first;
            for &u in rest {
                debug_assert!(u > prev, "lists must be strictly increasing");
                varint::encode_u64((u - prev) as u64, out);
                prev = u;
            }
        }
    }

    #[inline]
    fn decode_list(v: VertexId, degree: u32, data: &[u8], start: usize) -> ByteIter<'_> {
        ByteIter { data, pos: start, remaining: degree, prev: 0, v, first: true }
    }
}

// ---------------------------------------------------------------------
// Nibble codes (3 bits + continue bit per nibble).
// ---------------------------------------------------------------------

/// 3-bits-per-nibble codes: smallest encodings, slowest decode.
#[derive(Debug, Default, Clone, Copy)]
pub struct NibbleCode;

fn encode_nibbles(mut v: u64, nibbles: &mut Vec<u8>) {
    loop {
        let nib = (v & 0x7) as u8;
        v >>= 3;
        if v == 0 {
            nibbles.push(nib);
            return;
        }
        nibbles.push(nib | 0x8);
    }
}

#[inline]
fn read_nibble(data: &[u8], idx: usize) -> u8 {
    let byte = data[idx / 2];
    if idx.is_multiple_of(2) {
        byte & 0x0f
    } else {
        byte >> 4
    }
}

#[inline]
fn decode_nibbles(data: &[u8], mut idx: usize) -> (u64, usize) {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let nib = read_nibble(data, idx);
        idx += 1;
        v |= ((nib & 0x7) as u64) << shift;
        if nib & 0x8 == 0 {
            return (v, idx);
        }
        shift += 3;
    }
}

/// Decoder for [`NibbleCode`].
pub struct NibbleIter<'a> {
    data: &'a [u8],
    /// Position in nibbles, relative to the start of the whole data array
    /// (lists are byte-aligned, so `start_byte * 2`).
    nib: usize,
    remaining: u32,
    prev: VertexId,
    v: VertexId,
    first: bool,
}

impl Iterator for NibbleIter<'_> {
    type Item = VertexId;

    #[inline]
    fn next(&mut self) -> Option<VertexId> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let (raw, nib) = decode_nibbles(self.data, self.nib);
        self.nib = nib;
        let ngh = if self.first {
            self.first = false;
            checked_u32(self.v as i64 + varint::unzigzag(raw))
        } else {
            self.prev + checked_u32(raw)
        };
        self.prev = ngh;
        Some(ngh)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining as usize, Some(self.remaining as usize))
    }
}

impl ExactSizeIterator for NibbleIter<'_> {}

impl Codec for NibbleCode {
    type Iter<'a> = NibbleIter<'a>;
    const NAME: &'static str = "nibble";

    fn encode_list(v: VertexId, ns: &[VertexId], out: &mut Vec<u8>) {
        let mut nibbles: Vec<u8> = Vec::with_capacity(ns.len() * 2);
        if let Some((&first, rest)) = ns.split_first() {
            encode_nibbles(varint::zigzag(first as i64 - v as i64), &mut nibbles);
            let mut prev = first;
            for &u in rest {
                debug_assert!(u > prev);
                encode_nibbles((u - prev) as u64, &mut nibbles);
                prev = u;
            }
        }
        // Pack two nibbles per byte; lists stay byte-aligned.
        for pair in nibbles.chunks(2) {
            let lo = pair[0];
            let hi = pair.get(1).copied().unwrap_or(0);
            out.push(lo | (hi << 4));
        }
    }

    #[inline]
    fn decode_list(v: VertexId, degree: u32, data: &[u8], start: usize) -> NibbleIter<'_> {
        NibbleIter { data, nib: start * 2, remaining: degree, prev: 0, v, first: true }
    }
}

// ---------------------------------------------------------------------
// Run-length-encoded byte codes.
// ---------------------------------------------------------------------

/// Byte-RLE: the first neighbor as a plain signed varint (its zigzagged
/// offset can need 5 bytes, which the run header cannot express), then
/// the gaps as runs of fixed-width values behind a header byte (2 bits
/// byte-width − 1, 6 bits run length). Decodes with one branch per *run*
/// instead of one per value.
#[derive(Debug, Default, Clone, Copy)]
pub struct ByteRleCode;

const MAX_RUN: usize = 64;

fn bytes_needed(v: u64) -> usize {
    match v {
        0..=0xff => 1,
        0x100..=0xffff => 2,
        0x1_0000..=0xff_ffff => 3,
        _ => 4,
    }
}

fn encode_rle_values(values: &[u64], out: &mut Vec<u8>) {
    let mut i = 0;
    while i < values.len() {
        let width = bytes_needed(values[i]);
        // Extend the run while the width stays the same.
        let mut end = i + 1;
        while end < values.len() && end - i < MAX_RUN && bytes_needed(values[end]) == width {
            end += 1;
        }
        let run = end - i;
        debug_assert!((1..=MAX_RUN).contains(&run));
        out.push(((width as u8 - 1) << 6) | (run as u8 - 1));
        for &v in &values[i..end] {
            debug_assert!(v < 1u64 << (8 * width));
            out.extend_from_slice(&v.to_le_bytes()[..width]);
        }
        i = end;
    }
}

/// Decoder for [`ByteRleCode`].
pub struct ByteRleIter<'a> {
    data: &'a [u8],
    pos: usize,
    remaining: u32,
    run_left: u8,
    width: usize,
    prev: VertexId,
    v: VertexId,
    first: bool,
}

impl Iterator for ByteRleIter<'_> {
    type Item = VertexId;

    #[inline]
    fn next(&mut self) -> Option<VertexId> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        if self.first {
            self.first = false;
            let (diff, pos) = varint::decode_i64(self.data, self.pos);
            self.pos = pos;
            let ngh = checked_u32(self.v as i64 + diff);
            self.prev = ngh;
            return Some(ngh);
        }
        if self.run_left == 0 {
            let header = self.data[self.pos];
            self.pos += 1;
            self.width = ((header >> 6) + 1) as usize;
            self.run_left = (header & 0x3f) + 1;
        }
        let mut raw = 0u64;
        for k in 0..self.width {
            raw |= (self.data[self.pos + k] as u64) << (8 * k);
        }
        self.pos += self.width;
        self.run_left -= 1;

        let ngh = self.prev + checked_u32(raw);
        self.prev = ngh;
        Some(ngh)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining as usize, Some(self.remaining as usize))
    }
}

impl ExactSizeIterator for ByteRleIter<'_> {}

impl Codec for ByteRleCode {
    type Iter<'a> = ByteRleIter<'a>;
    const NAME: &'static str = "byte-rle";

    fn encode_list(v: VertexId, ns: &[VertexId], out: &mut Vec<u8>) {
        if ns.is_empty() {
            return;
        }
        varint::encode_i64(ns[0] as i64 - v as i64, out);
        let mut gaps: Vec<u64> = Vec::with_capacity(ns.len() - 1);
        for w in ns.windows(2) {
            debug_assert!(w[1] > w[0]);
            gaps.push((w[1] - w[0]) as u64);
        }
        encode_rle_values(&gaps, out);
    }

    #[inline]
    fn decode_list(v: VertexId, degree: u32, data: &[u8], start: usize) -> ByteRleIter<'_> {
        ByteRleIter {
            data,
            pos: start,
            remaining: degree,
            run_left: 0,
            width: 0,
            prev: 0,
            v,
            first: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<C: Codec>(v: VertexId, ns: &[VertexId]) {
        let mut buf = Vec::new();
        C::encode_list(v, ns, &mut buf);
        let got: Vec<VertexId> = C::decode_list(v, ns.len() as u32, &buf, 0).collect();
        assert_eq!(got, ns, "{} codec, source {v}", C::NAME);
    }

    fn roundtrip_all(v: VertexId, ns: &[VertexId]) {
        roundtrip::<ByteCode>(v, ns);
        roundtrip::<NibbleCode>(v, ns);
        roundtrip::<ByteRleCode>(v, ns);
    }

    #[test]
    fn empty_list() {
        roundtrip_all(5, &[]);
    }

    #[test]
    fn single_neighbor_before_and_after_source() {
        roundtrip_all(100, &[3]);
        roundtrip_all(100, &[100_000]);
        roundtrip_all(0, &[0]);
    }

    #[test]
    fn dense_local_list() {
        roundtrip_all(50, &[45, 46, 47, 48, 49, 51, 52, 53]);
    }

    #[test]
    fn huge_gaps() {
        roundtrip_all(0, &[1, 1 << 10, 1 << 20, 1 << 25, (1 << 31) + 5]);
        roundtrip_all(u32::MAX - 10, &[0, u32::MAX - 11, u32::MAX - 1]);
    }

    #[test]
    fn long_run_crosses_rle_run_limit() {
        // 200 consecutive gaps of 1: several 64-value runs.
        let ns: Vec<u32> = (1000..1200).collect();
        roundtrip_all(999, &ns);
    }

    #[test]
    fn mixed_width_runs() {
        // Alternate small and large gaps to force run breaks.
        let mut ns = Vec::new();
        let mut cur = 10u32;
        for i in 0..50u32 {
            cur += if i.is_multiple_of(2) { 1 } else { 70_000 };
            ns.push(cur);
        }
        roundtrip_all(10, &ns);
    }

    #[test]
    fn nibble_is_never_larger_than_twice_optimal_and_packs() {
        let ns: Vec<u32> = (0..100).map(|i| 5 + i * 2).collect();
        let mut byte = Vec::new();
        let mut nibble = Vec::new();
        ByteCode::encode_list(4, &ns, &mut byte);
        NibbleCode::encode_list(4, &ns, &mut nibble);
        // Gaps of 2 fit in one nibble vs one byte.
        assert!(nibble.len() < byte.len(), "nibble {} vs byte {}", nibble.len(), byte.len());
    }

    #[test]
    fn rle_beats_byte_on_uniform_runs() {
        // Wide gaps (3-byte) in runs: byte code spends 4 bytes each,
        // RLE spends 3 plus one header per 64.
        let ns: Vec<u32> = (1..100).map(|i| i * 3_000_000).collect();
        let mut byte = Vec::new();
        let mut rle = Vec::new();
        ByteCode::encode_list(0, &ns, &mut byte);
        ByteRleCode::encode_list(0, &ns, &mut rle);
        assert!(rle.len() < byte.len(), "rle {} vs byte {}", rle.len(), byte.len());
    }

    #[test]
    fn exhaustive_small_lists() {
        // All strictly-increasing lists over a small universe.
        for a in 0..6u32 {
            for b in (a + 1)..6 {
                for c in (b + 1)..6 {
                    for v in 0..6u32 {
                        roundtrip_all(v, &[a]);
                        roundtrip_all(v, &[a, b]);
                        roundtrip_all(v, &[a, b, c]);
                    }
                }
            }
        }
    }
}
