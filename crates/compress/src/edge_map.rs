//! `edgeMap` running directly over the compressed representation.
//!
//! Ligra+'s key claim: decode-on-the-fly traversal costs about the same
//! time as (and sometimes less than, thanks to reduced memory traffic)
//! traversing the uncompressed CSR, at roughly half the space. The three
//! traversals mirror `ligra::edge_map`, with neighbor slices replaced by
//! streaming decoders.
//!
//! Telemetry follows the exact schema of the uncompressed path: the same
//! [`Recorder`] trait, the same [`RoundStat`] fields, the same counters
//! (CAS attempts/wins on the push modes, decoded-edge scanned/skipped on
//! the pull mode), so traces from compressed and uncompressed runs are
//! directly comparable.

use crate::cgraph::CompressedGraph;
use crate::codec::Codec;
use ligra::options::{EdgeMapOptions, Traversal};
use ligra::stats::{
    EdgeCounters, Mode, NoopRecorder, Recorder, ReprKind, RoundStat, TraversalStats,
};
use ligra::traits::EdgeMapFn;
use ligra::vertex_subset::VertexSubset;
use ligra_graph::VertexId;
use ligra_parallel::atomics::{as_atomic_bool, as_atomic_u32};
use ligra_parallel::bitvec::AtomicBitVec;
use ligra_parallel::pack::filter;
use ligra_parallel::scan::prefix_sums;
use rayon::prelude::*;
use std::sync::atomic::Ordering;
use std::time::Instant;

const NONE_SLOT: u32 = u32::MAX;

/// `edgeMap` over a compressed graph with default options.
pub fn edge_map<C: Codec, F: EdgeMapFn<()>>(
    g: &CompressedGraph<C>,
    frontier: &mut VertexSubset,
    f: &F,
) -> VertexSubset {
    edge_map_with(g, frontier, f, EdgeMapOptions::default())
}

/// `edgeMap` over a compressed graph with explicit options.
pub fn edge_map_with<C: Codec, F: EdgeMapFn<()>>(
    g: &CompressedGraph<C>,
    frontier: &mut VertexSubset,
    f: &F,
    opts: EdgeMapOptions,
) -> VertexSubset {
    edge_map_impl(g, frontier, f, opts, &mut NoopRecorder)
}

/// `edgeMap` over a compressed graph recording one [`RoundStat`].
pub fn edge_map_traced<C: Codec, F: EdgeMapFn<()>>(
    g: &CompressedGraph<C>,
    frontier: &mut VertexSubset,
    f: &F,
    opts: EdgeMapOptions,
    stats: &mut TraversalStats,
) -> VertexSubset {
    edge_map_impl(g, frontier, f, opts, stats)
}

/// `edgeMap` over a compressed graph delivering one timed,
/// counter-annotated [`RoundStat`] to an arbitrary [`Recorder`].
pub fn edge_map_recorded<C: Codec, F: EdgeMapFn<()>, R: Recorder>(
    g: &CompressedGraph<C>,
    frontier: &mut VertexSubset,
    f: &F,
    opts: EdgeMapOptions,
    rec: &mut R,
) -> VertexSubset {
    edge_map_impl(g, frontier, f, opts, rec)
}

fn edge_map_impl<C: Codec, F: EdgeMapFn<()>, R: Recorder>(
    g: &CompressedGraph<C>,
    frontier: &mut VertexSubset,
    f: &F,
    opts: EdgeMapOptions,
    rec: &mut R,
) -> VertexSubset {
    let n = g.num_vertices();
    assert_eq!(frontier.num_vertices(), n, "frontier universe does not match the graph");

    let tracing = rec.enabled();
    let start = tracing.then(Instant::now);

    let frontier_vertices = frontier.len() as u64;
    // As in the uncompressed path: the degree sum only feeds the Auto
    // heuristic, so skip it for forced, unrecorded rounds.
    let need_work = tracing || matches!(opts.traversal, Traversal::Auto);
    let out_edges = if !need_work {
        0
    } else if let Some(vs) = frontier.sparse() {
        g.out_degree_sum(vs)
    } else if let Some(flags) = frontier.dense() {
        flags
            .par_iter()
            .enumerate()
            .filter(|&(_, &b)| b)
            .map(|(v, _)| g.out_degree(v as VertexId) as u64)
            .sum()
    } else {
        unreachable!()
    };
    let work = frontier_vertices + out_edges;
    let threshold = opts.effective_threshold(g.num_edges());

    let mode = match opts.traversal {
        Traversal::Sparse => Mode::Sparse,
        Traversal::Dense => Mode::Dense,
        Traversal::DenseForward => Mode::DenseForward,
        Traversal::Auto => {
            if work > threshold {
                Mode::Dense
            } else {
                Mode::Sparse
            }
        }
    };

    let input_sparse = frontier.is_sparse();
    let counters = tracing.then(EdgeCounters::new);
    let c = counters.as_ref();

    let result = if frontier.is_empty() {
        VertexSubset::empty(n)
    } else {
        match mode {
            Mode::Sparse => sparse(g, frontier.as_slice(), f, opts.deduplicate, opts.output, c),
            Mode::Dense => dense(g, frontier.as_bools(), f, opts.output, c),
            Mode::DenseForward => dense_forward(g, frontier.as_bools(), f, opts.output, c),
        }
    };

    if tracing {
        let wants_sparse = mode == Mode::Sparse;
        let converted = !frontier.is_empty() && wants_sparse != input_sparse;
        rec.record(RoundStat {
            op: ligra::stats::Op::EdgeMap,
            frontier_vertices,
            frontier_out_edges: out_edges,
            work,
            threshold,
            forced: !matches!(opts.traversal, Traversal::Auto),
            mode,
            input_repr: if input_sparse { ReprKind::Sparse } else { ReprKind::Dense },
            output_repr: if result.is_sparse() { ReprKind::Sparse } else { ReprKind::Dense },
            converted,
            output_vertices: result.len() as u64,
            time_ns: start.map_or(0, |t| t.elapsed().as_nanos() as u64),
            cas_attempts: c.map_or(0, |c| c.cas_attempts.sum()),
            cas_wins: c.map_or(0, |c| c.cas_wins.sum()),
            edges_scanned: c.map_or(0, |c| c.edges_scanned.sum()),
            edges_skipped: c.map_or(0, |c| c.edges_skipped.sum()),
        });
    }
    result
}

fn sparse<C: Codec, F: EdgeMapFn<()>>(
    g: &CompressedGraph<C>,
    vs: &[VertexId],
    f: &F,
    deduplicate: bool,
    output: bool,
    counters: Option<&EdgeCounters>,
) -> VertexSubset {
    let n = g.num_vertices();
    if !output {
        vs.par_iter().for_each(|&u| {
            if let Some(c) = counters {
                c.edges_scanned.add(g.out_degree(u) as u64);
            }
            for v in g.out_neighbors(u) {
                if f.cond(v) {
                    let won = f.update_atomic(u, v, ());
                    if let Some(c) = counters {
                        c.cas_attempts.incr();
                        if won {
                            c.cas_wins.incr();
                        }
                    }
                }
            }
        });
        return VertexSubset::empty(n);
    }

    let degrees: Vec<u64> = vs.par_iter().map(|&u| g.out_degree(u) as u64).collect();
    let (offsets, total) = prefix_sums(&degrees);
    let mut out = vec![NONE_SLOT; total as usize];
    {
        let aout = as_atomic_u32(&mut out);
        vs.par_iter().enumerate().for_each(|(i, &u)| {
            let base = offsets[i] as usize;
            if let Some(c) = counters {
                c.edges_scanned.add(g.out_degree(u) as u64);
            }
            for (j, v) in g.out_neighbors(u).enumerate() {
                if f.cond(v) {
                    let won = f.update_atomic(u, v, ());
                    if let Some(c) = counters {
                        c.cas_attempts.incr();
                        if won {
                            c.cas_wins.incr();
                        }
                    }
                    if won {
                        aout[base + j].store(v, Ordering::Relaxed);
                    }
                }
            }
        });
    }
    let mut next = filter(&out, |&x| x != NONE_SLOT);
    if deduplicate && !next.is_empty() {
        let seen = AtomicBitVec::new(n);
        next = filter(&next, |&v| seen.set(v as usize));
    }
    VertexSubset::from_sparse(n, next)
}

fn dense<C: Codec, F: EdgeMapFn<()>>(
    g: &CompressedGraph<C>,
    flags: &[bool],
    f: &F,
    output: bool,
    counters: Option<&EdgeCounters>,
) -> VertexSubset {
    let n = g.num_vertices();
    let mut next = vec![false; n];
    next.par_iter_mut().enumerate().for_each(|(v, slot)| {
        let v = v as VertexId;
        let mut scanned = 0u64;
        if f.cond(v) {
            for u in g.in_neighbors(v) {
                scanned += 1;
                if flags[u as usize] && f.update(u, v, ()) && output {
                    *slot = true;
                }
                if !f.cond(v) {
                    break;
                }
            }
        }
        if let Some(c) = counters {
            c.edges_scanned.add(scanned);
            c.edges_skipped.add(g.in_degree(v) as u64 - scanned);
        }
    });
    if output {
        VertexSubset::from_dense(n, next)
    } else {
        VertexSubset::empty(n)
    }
}

fn dense_forward<C: Codec, F: EdgeMapFn<()>>(
    g: &CompressedGraph<C>,
    flags: &[bool],
    f: &F,
    output: bool,
    counters: Option<&EdgeCounters>,
) -> VertexSubset {
    let n = g.num_vertices();
    let mut next = vec![false; n];
    {
        let anext = as_atomic_bool(&mut next);
        (0..n).into_par_iter().for_each(|u| {
            if flags[u] {
                let u = u as VertexId;
                if let Some(c) = counters {
                    c.edges_scanned.add(g.out_degree(u) as u64);
                }
                for v in g.out_neighbors(u) {
                    if f.cond(v) {
                        let won = f.update_atomic(u, v, ());
                        if let Some(c) = counters {
                            c.cas_attempts.incr();
                            if won {
                                c.cas_wins.incr();
                            }
                        }
                        if won && output {
                            anext[v as usize].store(true, Ordering::Relaxed);
                        }
                    }
                }
            }
        });
    }
    if output {
        VertexSubset::from_dense(n, next)
    } else {
        VertexSubset::empty(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ligra::edge_fn;
    use ligra_graph::generators::erdos_renyi;

    #[test]
    fn all_traversals_match_uncompressed_edge_map() {
        let g = erdos_renyi(400, 3000, 1, true);
        let cg: CompressedGraph = CompressedGraph::from_graph(&g);
        let frontier: Vec<u32> = (0..400u32).filter(|v| v.is_multiple_of(9)).collect();

        let reference = {
            let f = edge_fn(|_s, _d, _w: ()| true, |_| true);
            let mut fr = VertexSubset::from_sparse(400, frontier.clone());
            ligra::edge_map_with(&g, &mut fr, &f, EdgeMapOptions::new().deduplicate(true))
                .to_vec_sorted()
        };

        for t in [Traversal::Sparse, Traversal::Dense, Traversal::DenseForward, Traversal::Auto] {
            let f = edge_fn(|_s, _d, _w: ()| true, |_| true);
            let mut fr = VertexSubset::from_sparse(400, frontier.clone());
            let out = edge_map_with(
                &cg,
                &mut fr,
                &f,
                EdgeMapOptions::new().traversal(t).deduplicate(true),
            );
            assert_eq!(out.to_vec_sorted(), reference, "traversal {t:?}");
        }
    }

    #[test]
    fn directed_compressed_dense_uses_transpose() {
        let g = erdos_renyi(200, 1500, 4, false);
        let cg: CompressedGraph = CompressedGraph::from_graph(&g);
        let frontier: Vec<u32> = (0..200u32).filter(|v| v.is_multiple_of(5)).collect();
        let mut expect: Vec<u32> =
            frontier.iter().flat_map(|&u| g.out_neighbors(u).iter().copied()).collect();
        expect.sort_unstable();
        expect.dedup();

        let f = edge_fn(|_s, _d, _w: ()| true, |_| true);
        let mut fr = VertexSubset::from_sparse(200, frontier);
        let out = edge_map_with(
            &cg,
            &mut fr,
            &f,
            EdgeMapOptions::new().traversal(Traversal::Dense).deduplicate(true),
        );
        assert_eq!(out.to_vec_sorted(), expect);
    }

    #[test]
    fn compressed_trace_matches_uncompressed_schema() {
        let g = erdos_renyi(300, 2400, 6, true);
        let cg: CompressedGraph = CompressedGraph::from_graph(&g);
        let f = edge_fn(|_s, _d, _w: ()| true, |_| true);
        let mut stats = TraversalStats::new();
        let mut fr = VertexSubset::from_sparse(300, vec![0, 5, 9]);
        let _ = edge_map_traced(&cg, &mut fr, &f, EdgeMapOptions::new(), &mut stats);
        let r = stats.rounds[0];
        assert_eq!(r.frontier_vertices, 3);
        assert_eq!(r.work, r.frontier_vertices + r.frontier_out_edges);
        assert_eq!(r.threshold, cg.num_edges() as u64 / 20);
        assert_eq!(r.mode == Mode::Dense, r.work > r.threshold);
        assert!(r.time_ns > 0);
        // Sparse mode walks every decoded out-edge.
        if r.mode == Mode::Sparse {
            assert_eq!(r.edges_scanned, r.frontier_out_edges);
        }
        // Exported trace from a compressed run round-trips like any other.
        let back = ligra::trace::from_json_lines(&ligra::trace::to_json_lines(&stats)).unwrap();
        assert_eq!(back, stats);
    }
}
