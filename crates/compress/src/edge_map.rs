//! `edgeMap` running directly over the compressed representation.
//!
//! Ligra+'s key claim: decode-on-the-fly traversal costs about the same
//! time as (and sometimes less than, thanks to reduced memory traffic)
//! traversing the uncompressed CSR, at roughly half the space. The three
//! traversals mirror `ligra::edge_map`, with neighbor slices replaced by
//! streaming decoders.

use crate::cgraph::CompressedGraph;
use crate::codec::Codec;
use ligra::options::{EdgeMapOptions, Traversal};
use ligra::stats::{Mode, RoundStat, TraversalStats};
use ligra::traits::EdgeMapFn;
use ligra::vertex_subset::VertexSubset;
use ligra_graph::VertexId;
use ligra_parallel::atomics::{as_atomic_bool, as_atomic_u32};
use ligra_parallel::bitvec::AtomicBitVec;
use ligra_parallel::pack::filter;
use ligra_parallel::scan::prefix_sums;
use rayon::prelude::*;
use std::sync::atomic::Ordering;

const NONE_SLOT: u32 = u32::MAX;

/// `edgeMap` over a compressed graph with default options.
pub fn edge_map<C: Codec, F: EdgeMapFn<()>>(
    g: &CompressedGraph<C>,
    frontier: &mut VertexSubset,
    f: &F,
) -> VertexSubset {
    edge_map_with(g, frontier, f, EdgeMapOptions::default())
}

/// `edgeMap` over a compressed graph with explicit options.
pub fn edge_map_with<C: Codec, F: EdgeMapFn<()>>(
    g: &CompressedGraph<C>,
    frontier: &mut VertexSubset,
    f: &F,
    opts: EdgeMapOptions,
) -> VertexSubset {
    edge_map_impl(g, frontier, f, opts, None)
}

/// `edgeMap` over a compressed graph recording one [`RoundStat`].
pub fn edge_map_traced<C: Codec, F: EdgeMapFn<()>>(
    g: &CompressedGraph<C>,
    frontier: &mut VertexSubset,
    f: &F,
    opts: EdgeMapOptions,
    stats: &mut TraversalStats,
) -> VertexSubset {
    edge_map_impl(g, frontier, f, opts, Some(stats))
}

fn edge_map_impl<C: Codec, F: EdgeMapFn<()>>(
    g: &CompressedGraph<C>,
    frontier: &mut VertexSubset,
    f: &F,
    opts: EdgeMapOptions,
    stats: Option<&mut TraversalStats>,
) -> VertexSubset {
    let n = g.num_vertices();
    assert_eq!(frontier.num_vertices(), n, "frontier universe does not match the graph");

    let frontier_vertices = frontier.len() as u64;
    let out_edges = if let Some(vs) = frontier.sparse() {
        g.out_degree_sum(vs)
    } else if let Some(flags) = frontier.dense() {
        flags
            .par_iter()
            .enumerate()
            .filter(|&(_, &b)| b)
            .map(|(v, _)| g.out_degree(v as VertexId) as u64)
            .sum()
    } else {
        unreachable!()
    };

    let mode = match opts.traversal {
        Traversal::Sparse => Mode::Sparse,
        Traversal::Dense => Mode::Dense,
        Traversal::DenseForward => Mode::DenseForward,
        Traversal::Auto => {
            if frontier_vertices + out_edges > opts.effective_threshold(g.num_edges()) {
                Mode::Dense
            } else {
                Mode::Sparse
            }
        }
    };

    let result = if frontier.is_empty() {
        VertexSubset::empty(n)
    } else {
        match mode {
            Mode::Sparse => sparse(g, frontier.as_slice(), f, opts.deduplicate, opts.output),
            Mode::Dense => dense(g, frontier.as_bools(), f, opts.output),
            Mode::DenseForward => dense_forward(g, frontier.as_bools(), f, opts.output),
        }
    };

    if let Some(stats) = stats {
        stats.rounds.push(RoundStat {
            frontier_vertices,
            frontier_out_edges: out_edges,
            mode,
            output_vertices: result.len() as u64,
        });
    }
    result
}

fn sparse<C: Codec, F: EdgeMapFn<()>>(
    g: &CompressedGraph<C>,
    vs: &[VertexId],
    f: &F,
    deduplicate: bool,
    output: bool,
) -> VertexSubset {
    let n = g.num_vertices();
    if !output {
        vs.par_iter().for_each(|&u| {
            for v in g.out_neighbors(u) {
                if f.cond(v) {
                    f.update_atomic(u, v, ());
                }
            }
        });
        return VertexSubset::empty(n);
    }

    let degrees: Vec<u64> = vs.par_iter().map(|&u| g.out_degree(u) as u64).collect();
    let (offsets, total) = prefix_sums(&degrees);
    let mut out = vec![NONE_SLOT; total as usize];
    {
        let aout = as_atomic_u32(&mut out);
        vs.par_iter().enumerate().for_each(|(i, &u)| {
            let base = offsets[i] as usize;
            for (j, v) in g.out_neighbors(u).enumerate() {
                if f.cond(v) && f.update_atomic(u, v, ()) {
                    aout[base + j].store(v, Ordering::Relaxed);
                }
            }
        });
    }
    let mut next = filter(&out, |&x| x != NONE_SLOT);
    if deduplicate && !next.is_empty() {
        let seen = AtomicBitVec::new(n);
        next = filter(&next, |&v| seen.set(v as usize));
    }
    VertexSubset::from_sparse(n, next)
}

fn dense<C: Codec, F: EdgeMapFn<()>>(
    g: &CompressedGraph<C>,
    flags: &[bool],
    f: &F,
    output: bool,
) -> VertexSubset {
    let n = g.num_vertices();
    let mut next = vec![false; n];
    next.par_iter_mut().enumerate().for_each(|(v, slot)| {
        let v = v as VertexId;
        if f.cond(v) {
            for u in g.in_neighbors(v) {
                if flags[u as usize] && f.update(u, v, ()) && output {
                    *slot = true;
                }
                if !f.cond(v) {
                    break;
                }
            }
        }
    });
    if output {
        VertexSubset::from_dense(n, next)
    } else {
        VertexSubset::empty(n)
    }
}

fn dense_forward<C: Codec, F: EdgeMapFn<()>>(
    g: &CompressedGraph<C>,
    flags: &[bool],
    f: &F,
    output: bool,
) -> VertexSubset {
    let n = g.num_vertices();
    let mut next = vec![false; n];
    {
        let anext = as_atomic_bool(&mut next);
        (0..n).into_par_iter().for_each(|u| {
            if flags[u] {
                let u = u as VertexId;
                for v in g.out_neighbors(u) {
                    if f.cond(v) && f.update_atomic(u, v, ()) && output {
                        anext[v as usize].store(true, Ordering::Relaxed);
                    }
                }
            }
        });
    }
    if output {
        VertexSubset::from_dense(n, next)
    } else {
        VertexSubset::empty(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ligra::edge_fn;
    use ligra_graph::generators::erdos_renyi;

    #[test]
    fn all_traversals_match_uncompressed_edge_map() {
        let g = erdos_renyi(400, 3000, 1, true);
        let cg: CompressedGraph = CompressedGraph::from_graph(&g);
        let frontier: Vec<u32> = (0..400u32).filter(|v| v % 9 == 0).collect();

        let reference = {
            let f = edge_fn(|_s, _d, _w: ()| true, |_| true);
            let mut fr = VertexSubset::from_sparse(400, frontier.clone());
            ligra::edge_map_with(
                &g,
                &mut fr,
                &f,
                EdgeMapOptions::new().deduplicate(true),
            )
            .to_vec_sorted()
        };

        for t in [Traversal::Sparse, Traversal::Dense, Traversal::DenseForward, Traversal::Auto] {
            let f = edge_fn(|_s, _d, _w: ()| true, |_| true);
            let mut fr = VertexSubset::from_sparse(400, frontier.clone());
            let out = edge_map_with(
                &cg,
                &mut fr,
                &f,
                EdgeMapOptions::new().traversal(t).deduplicate(true),
            );
            assert_eq!(out.to_vec_sorted(), reference, "traversal {t:?}");
        }
    }

    #[test]
    fn directed_compressed_dense_uses_transpose() {
        let g = erdos_renyi(200, 1500, 4, false);
        let cg: CompressedGraph = CompressedGraph::from_graph(&g);
        let frontier: Vec<u32> = (0..200u32).filter(|v| v % 5 == 0).collect();
        let mut expect: Vec<u32> = frontier
            .iter()
            .flat_map(|&u| g.out_neighbors(u).iter().copied())
            .collect();
        expect.sort_unstable();
        expect.dedup();

        let f = edge_fn(|_s, _d, _w: ()| true, |_| true);
        let mut fr = VertexSubset::from_sparse(200, frontier);
        let out = edge_map_with(
            &cg,
            &mut fr,
            &f,
            EdgeMapOptions::new().traversal(Traversal::Dense).deduplicate(true),
        );
        assert_eq!(out.to_vec_sorted(), expect);
    }
}
