//! `edgeMap` running directly over the compressed representation.
//!
//! Ligra+'s key claim: decode-on-the-fly traversal costs about the same
//! time as (and sometimes less than, thanks to reduced memory traffic)
//! traversing the uncompressed CSR, at roughly half the space. The three
//! traversals mirror `ligra::edge_map`, with neighbor slices replaced by
//! streaming decoders.
//!
//! Telemetry follows the exact schema of the uncompressed path: the same
//! [`Recorder`] trait, the same [`RoundStat`] fields, the same counters
//! (CAS attempts/wins on the push modes, decoded-edge scanned/skipped on
//! the pull mode), so traces from compressed and uncompressed runs are
//! directly comparable.

use crate::cgraph::CompressedGraph;
use crate::codec::Codec;
use ligra::edge_map::EDGE_BLOCK;
use ligra::options::{EdgeMapOptions, Traversal};
use ligra::race::RaceOracle;
use ligra::stats::{
    EdgeCounters, Mode, NoopRecorder, Recorder, ReprKind, RoundStat, TraversalStats,
};
use ligra::traits::EdgeMapFn;
use ligra::vertex_subset::VertexSubset;
use ligra_graph::partition::partition_min_n;
use ligra_graph::{Partitioning, VertexId};
use ligra_parallel::bins::{fragment_row, stitch, Fragments};
use ligra_parallel::bitvec::{AtomicBitVec, BitSet};
use ligra_parallel::checked_u32;
use ligra_parallel::scan::prefix_sums;
use ligra_parallel::utils::SendPtr;
use rayon::prelude::*;
use std::sync::atomic::Ordering;
use std::time::Instant;

/// `edgeMap` over a compressed graph with default options.
pub fn edge_map<C: Codec, F: EdgeMapFn<()>>(
    g: &CompressedGraph<C>,
    frontier: &mut VertexSubset,
    f: &F,
) -> VertexSubset {
    edge_map_with(g, frontier, f, EdgeMapOptions::default())
}

/// `edgeMap` over a compressed graph with explicit options.
pub fn edge_map_with<C: Codec, F: EdgeMapFn<()>>(
    g: &CompressedGraph<C>,
    frontier: &mut VertexSubset,
    f: &F,
    opts: EdgeMapOptions,
) -> VertexSubset {
    edge_map_impl(g, frontier, f, opts, &mut NoopRecorder)
}

/// `edgeMap` over a compressed graph recording one [`RoundStat`].
pub fn edge_map_traced<C: Codec, F: EdgeMapFn<()>>(
    g: &CompressedGraph<C>,
    frontier: &mut VertexSubset,
    f: &F,
    opts: EdgeMapOptions,
    stats: &mut TraversalStats,
) -> VertexSubset {
    edge_map_impl(g, frontier, f, opts, stats)
}

/// `edgeMap` over a compressed graph delivering one timed,
/// counter-annotated [`RoundStat`] to an arbitrary [`Recorder`].
pub fn edge_map_recorded<C: Codec, F: EdgeMapFn<()>, R: Recorder>(
    g: &CompressedGraph<C>,
    frontier: &mut VertexSubset,
    f: &F,
    opts: EdgeMapOptions,
    rec: &mut R,
) -> VertexSubset {
    edge_map_impl(g, frontier, f, opts, rec)
}

fn edge_map_impl<C: Codec, F: EdgeMapFn<()>, R: Recorder>(
    g: &CompressedGraph<C>,
    frontier: &mut VertexSubset,
    f: &F,
    opts: EdgeMapOptions,
    rec: &mut R,
) -> VertexSubset {
    let n = g.num_vertices();
    assert_eq!(frontier.num_vertices(), n, "frontier universe does not match the graph");

    // Cancellation contract mirrors the uncompressed path: a cancelled
    // token makes the round a no-op with an empty result, unrecorded.
    if opts.is_cancelled() {
        return VertexSubset::empty(n);
    }

    let tracing = rec.enabled();
    let start = tracing.then(Instant::now);

    let frontier_vertices = frontier.len() as u64;
    // As in the uncompressed path: the degree sum only feeds the Auto
    // heuristic, so skip it for forced, unrecorded rounds.
    let need_work = tracing || matches!(opts.traversal, Traversal::Auto);
    let out_edges = if !need_work {
        0
    } else if let Some(vs) = frontier.sparse() {
        g.out_degree_sum(vs)
    } else if let Some(bits) = frontier.dense() {
        bits.words()
            .par_iter()
            .enumerate()
            .map(|(wi, &w0)| {
                let mut sum = 0u64;
                let mut w = w0;
                while w != 0 {
                    sum += g.out_degree(checked_u32(wi * 64) + w.trailing_zeros()) as u64;
                    w &= w - 1;
                }
                sum
            })
            .sum()
    } else {
        unreachable!()
    };
    let work = frontier_vertices + out_edges;
    let threshold = opts.effective_threshold(g.num_edges());

    let mode = match opts.traversal {
        Traversal::Sparse => Mode::Sparse,
        Traversal::Dense => Mode::Dense,
        Traversal::DenseForward => Mode::DenseForward,
        Traversal::Partitioned => Mode::Partitioned,
        Traversal::Auto => {
            if work > threshold {
                // Same miss-bound upgrade as the uncompressed path: very
                // heavy dense rounds on large graphs go scatter/gather.
                if out_edges > opts.effective_partition_threshold(g.num_edges())
                    && n >= opts.partition_min_vertices.unwrap_or_else(partition_min_n)
                {
                    Mode::Partitioned
                } else {
                    Mode::Dense
                }
            } else {
                Mode::Sparse
            }
        }
    };

    let input_sparse = frontier.is_sparse();
    let counters = tracing.then(EdgeCounters::new);
    let c = counters.as_ref();

    // Round boundary for the race oracle, mirroring `ligra::edge_map`.
    #[cfg(feature = "race-check")]
    if let Some(o) = opts.oracle {
        o.begin_round();
    }

    let mut pstats = PartitionedStats::default();
    let result = if frontier.is_empty() {
        VertexSubset::empty(n)
    } else {
        match mode {
            Mode::Sparse => {
                sparse(g, frontier.as_slice(), f, opts.deduplicate, opts.output, c, opts.oracle)
            }
            Mode::Dense => dense(g, frontier.as_bits(), f, opts.output, c, opts.oracle),
            Mode::DenseForward => {
                dense_forward(g, frontier.as_bits(), f, opts.output, c, opts.oracle)
            }
            Mode::Partitioned => {
                let part = g.partitioning_with(opts.partition_bits);
                let (res, ps) =
                    partitioned(g, frontier.as_bits(), f, opts.output, &part, c, opts.oracle);
                pstats = ps;
                res
            }
        }
    };

    if tracing {
        let wants_sparse = mode == Mode::Sparse;
        let converted = !frontier.is_empty() && wants_sparse != input_sparse;
        // Same accounting as the uncompressed path: sparse push streams 4
        // bytes per frontier entry and output vertex; dense modes stream
        // the packed bitset each way.
        let frontier_bytes = if frontier.is_empty() {
            0
        } else {
            match mode {
                Mode::Sparse => 4 * (frontier_vertices + result.len() as u64),
                Mode::Dense | Mode::DenseForward | Mode::Partitioned => {
                    let words = (n.div_ceil(64) * 8) as u64;
                    words + if opts.output { words } else { 0 }
                }
            }
        };
        rec.record(RoundStat {
            op: ligra::stats::Op::EdgeMap,
            frontier_vertices,
            frontier_out_edges: out_edges,
            work,
            threshold,
            forced: !matches!(opts.traversal, Traversal::Auto),
            mode,
            input_repr: if input_sparse { ReprKind::Sparse } else { ReprKind::Dense },
            output_repr: if result.is_sparse() { ReprKind::Sparse } else { ReprKind::Dense },
            converted,
            output_vertices: result.len() as u64,
            frontier_bytes,
            time_ns: start.map_or(0, |t| t.elapsed().as_nanos() as u64),
            cas_attempts: c.map_or(0, |c| c.cas_attempts.sum()),
            cas_wins: c.map_or(0, |c| c.cas_wins.sum()),
            edges_scanned: c.map_or(0, |c| c.edges_scanned.sum()),
            edges_skipped: c.map_or(0, |c| c.edges_skipped.sum()),
            partitions: pstats.partitions,
            bins_flushed: pstats.bins_flushed,
            scatter_bytes: pstats.scatter_bytes,
        });
    }
    result
}

fn sparse<C: Codec, F: EdgeMapFn<()>>(
    g: &CompressedGraph<C>,
    vs: &[VertexId],
    f: &F,
    deduplicate: bool,
    output: bool,
    counters: Option<&EdgeCounters>,
    oracle: Option<&RaceOracle>,
) -> VertexSubset {
    #[cfg(not(feature = "race-check"))]
    let _ = oracle;
    let n = g.num_vertices();
    let degrees: Vec<u64> = vs.par_iter().map(|&u| g.out_degree(u) as u64).collect();
    let (offsets, total) = prefix_sums(&degrees);
    let total = total as usize;
    if total == 0 {
        return VertexSubset::empty(n);
    }

    let seen = (deduplicate && output).then(|| AtomicBitVec::new(n));

    // Chunked compaction as in `ligra::edge_map`, but at vertex granularity:
    // a decoder cannot be seeked into the middle of a neighbor stream, so
    // block `b` owns the sources whose runs *start* inside its edge range
    // [b*EDGE_BLOCK, ...) and walks each of them to the end. Winners go to a
    // block-local buffer; no sentinel slots, no global filter pass.
    let nblocks = total.div_ceil(EDGE_BLOCK);
    let buffers: Vec<Vec<u32>> = (0..nblocks)
        .into_par_iter()
        .map(|b| {
            let lo = (b * EDGE_BLOCK) as u64;
            let hi = (((b + 1) * EDGE_BLOCK).min(total)) as u64;
            let i0 = offsets.partition_point(|&o| o < lo);
            let i1 = offsets.partition_point(|&o| o < hi);
            let cap = offsets.get(i1).copied().unwrap_or(total as u64)
                - offsets.get(i0).copied().unwrap_or(total as u64);
            let mut buf: Vec<u32> =
                if output { Vec::with_capacity(cap as usize) } else { Vec::new() };
            let mut scanned = 0u64;
            for &u in &vs[i0..i1] {
                scanned += g.out_degree(u) as u64;
                for v in g.out_neighbors(u) {
                    if f.cond(v) {
                        #[cfg(feature = "race-check")]
                        if let Some(o) = oracle {
                            o.enter_atomic(u, v);
                        }
                        let won = f.update_atomic(u, v, ());
                        #[cfg(feature = "race-check")]
                        if let Some(o) = oracle {
                            o.exit_atomic(u, v, won);
                        }
                        if let Some(c) = counters {
                            c.cas_attempts.incr();
                            if won {
                                c.cas_wins.incr();
                            }
                        }
                        if won && output && seen.as_ref().is_none_or(|s| s.set(v as usize)) {
                            buf.push(v);
                        }
                    }
                }
            }
            if let Some(c) = counters {
                c.edges_scanned.add(scanned);
            }
            buf
        })
        .collect();

    if !output {
        return VertexSubset::empty(n);
    }

    // Prefix-sum stitch: one copy of each winner into an exact-size vector.
    let mut starts: Vec<usize> = buffers.iter().map(Vec::len).collect();
    let mut acc = 0usize;
    for s in starts.iter_mut() {
        let next = acc + *s;
        *s = acc;
        acc = next;
    }
    let mut next: Vec<u32> = Vec::with_capacity(acc);
    {
        let spare = next.spare_capacity_mut();
        let ptr = SendPtr(spare.as_mut_ptr().cast::<u32>());
        buffers.par_iter().enumerate().for_each(|(b, buf)| {
            let p = ptr;
            // SAFETY: scan offsets are disjoint across blocks and their sum
            // equals the reserved capacity.
            unsafe { std::ptr::copy_nonoverlapping(buf.as_ptr(), p.0.add(starts[b]), buf.len()) };
        });
    }
    // SAFETY: exactly `acc` slots were initialized.
    unsafe { next.set_len(acc) };
    VertexSubset::from_sparse(n, next)
}

fn dense<C: Codec, F: EdgeMapFn<()>>(
    g: &CompressedGraph<C>,
    bits: &BitSet,
    f: &F,
    output: bool,
    counters: Option<&EdgeCounters>,
    oracle: Option<&RaceOracle>,
) -> VertexSubset {
    #[cfg(not(feature = "race-check"))]
    let _ = oracle;
    let n = g.num_vertices();
    debug_assert_eq!(bits.len(), n);
    let nwords = bits.words().len();
    let words: Vec<u64> = (0..nwords)
        .into_par_iter()
        .map(|wi| {
            let lo = wi * 64;
            let hi = (lo + 64).min(n);
            let mut out_w = 0u64;
            let mut scanned_w = 0u64;
            let mut skipped_w = 0u64;
            for v in lo..hi {
                let vid = checked_u32(v);
                let mut scanned = 0u64;
                if f.cond(vid) {
                    for u in g.in_neighbors(vid) {
                        scanned += 1;
                        if bits.get(u as usize) {
                            #[cfg(feature = "race-check")]
                            if let Some(o) = oracle {
                                o.enter_exclusive(u, vid);
                            }
                            let won = f.update(u, vid, ());
                            #[cfg(feature = "race-check")]
                            if let Some(o) = oracle {
                                o.exit_exclusive(u, vid, won);
                            }
                            if won && output {
                                out_w |= 1u64 << (v - lo);
                            }
                        }
                        if !f.cond(vid) {
                            break;
                        }
                    }
                }
                scanned_w += scanned;
                skipped_w += g.in_degree(vid) as u64 - scanned;
            }
            if let Some(c) = counters {
                c.edges_scanned.add(scanned_w);
                c.edges_skipped.add(skipped_w);
            }
            out_w
        })
        .collect();
    if output {
        VertexSubset::from_bitset(n, BitSet::from_words(words, n))
    } else {
        VertexSubset::empty(n)
    }
}

fn dense_forward<C: Codec, F: EdgeMapFn<()>>(
    g: &CompressedGraph<C>,
    bits: &BitSet,
    f: &F,
    output: bool,
    counters: Option<&EdgeCounters>,
    oracle: Option<&RaceOracle>,
) -> VertexSubset {
    #[cfg(not(feature = "race-check"))]
    let _ = oracle;
    let n = g.num_vertices();
    debug_assert_eq!(bits.len(), n);
    let mut next = BitSet::new(n);
    {
        let anext = next.as_atomic();
        bits.words().par_iter().enumerate().for_each(|(wi, &w0)| {
            if w0 == 0 {
                return;
            }
            let mut w = w0;
            while w != 0 {
                let u = checked_u32(wi * 64) + w.trailing_zeros();
                w &= w - 1;
                if let Some(c) = counters {
                    c.edges_scanned.add(g.out_degree(u) as u64);
                }
                for v in g.out_neighbors(u) {
                    if f.cond(v) {
                        #[cfg(feature = "race-check")]
                        if let Some(o) = oracle {
                            o.enter_atomic(u, v);
                        }
                        let won = f.update_atomic(u, v, ());
                        #[cfg(feature = "race-check")]
                        if let Some(o) = oracle {
                            o.exit_atomic(u, v, won);
                        }
                        if let Some(c) = counters {
                            c.cas_attempts.incr();
                            if won {
                                c.cas_wins.incr();
                            }
                        }
                        if won && output {
                            anext[(v >> 6) as usize].fetch_or(1u64 << (v & 63), Ordering::Relaxed);
                        }
                    }
                }
            }
        });
    }
    if output {
        VertexSubset::from_bitset(n, next)
    } else {
        VertexSubset::empty(n)
    }
}

/// One scattered update — `(src, dst)`; compressed graphs are unweighted
/// so there is no payload slot.
#[derive(Debug, Clone, Copy)]
struct BinEntry {
    src: VertexId,
    dst: VertexId,
}

/// Partition telemetry a partitioned round reports.
#[derive(Debug, Default, Clone, Copy)]
struct PartitionedStats {
    partitions: u64,
    bins_flushed: u64,
    scatter_bytes: u64,
}

/// Frontier words per scatter task, matching `ligra::edge_map`.
const SCATTER_WORDS: usize = 64;

/// Cache-aware scatter/gather over the compressed out-direction. The
/// scatter phase decodes each frontier vertex's list once, streaming the
/// decoded targets into per-partition bins without touching destination
/// state; the gather phase drains one partition per task with non-atomic
/// updates and plain-write output words, the same partition-exclusive
/// contract as the uncompressed kernel.
fn partitioned<C: Codec, F: EdgeMapFn<()>>(
    g: &CompressedGraph<C>,
    bits: &BitSet,
    f: &F,
    output: bool,
    part: &Partitioning,
    counters: Option<&EdgeCounters>,
    oracle: Option<&RaceOracle>,
) -> (VertexSubset, PartitionedStats) {
    #[cfg(not(feature = "race-check"))]
    let _ = oracle;
    let n = g.num_vertices();
    debug_assert_eq!(bits.len(), n);
    debug_assert_eq!(part.num_vertices(), n, "partitioning built for a different graph");
    let nparts = part.num_partitions();

    let fwords = bits.words();
    let nchunks = fwords.len().div_ceil(SCATTER_WORDS).max(1);
    let frags: Fragments<BinEntry> = (0..nchunks)
        .into_par_iter()
        .map(|ci| {
            let mut row = fragment_row::<BinEntry>(nparts);
            let mut scanned = 0u64;
            let lo = ci * SCATTER_WORDS;
            let hi = (lo + SCATTER_WORDS).min(fwords.len());
            for (wi, &w0) in fwords.iter().enumerate().take(hi).skip(lo) {
                let mut w = w0;
                while w != 0 {
                    let u = checked_u32(wi * 64) + w.trailing_zeros();
                    w &= w - 1;
                    scanned += g.out_degree(u) as u64;
                    for v in g.out_neighbors(u) {
                        row[part.partition_of(v)].push(BinEntry { src: u, dst: v });
                    }
                }
            }
            if let Some(c) = counters {
                c.edges_scanned.add(scanned);
            }
            row
        })
        .collect();
    let (bins, bins_flushed) = stitch(frags);
    let entries: usize = bins.iter().map(Vec::len).sum();
    let pstats = PartitionedStats {
        partitions: nparts as u64,
        bins_flushed,
        scatter_bytes: (entries * std::mem::size_of::<BinEntry>()) as u64,
    };

    let gather = |p: usize, mut out_words: Option<&mut [u64]>| {
        let base = part.range(p).start;
        let mut skipped = 0u64;
        for e in &bins[p] {
            if f.cond(e.dst) {
                #[cfg(feature = "race-check")]
                if let Some(o) = oracle {
                    o.enter_exclusive(e.src, e.dst);
                }
                let won = f.update(e.src, e.dst, ());
                #[cfg(feature = "race-check")]
                if let Some(o) = oracle {
                    o.exit_exclusive(e.src, e.dst, won);
                }
                if won {
                    if let Some(words) = out_words.as_deref_mut() {
                        let local = e.dst as usize - base;
                        words[local >> 6] |= 1u64 << (local & 63);
                    }
                }
            } else {
                skipped += 1;
            }
        }
        if let Some(c) = counters {
            c.edges_skipped.add(skipped);
        }
    };

    let result = if output {
        let mut words = vec![0u64; n.div_ceil(64)];
        // Partition boundaries are multiples of 64, so each gather task
        // owns whole output words (see ligra_graph::partition::MIN_BITS).
        words
            .par_chunks_mut(part.words_per_partition())
            .enumerate()
            .for_each(|(p, chunk)| gather(p, Some(chunk)));
        VertexSubset::from_bitset(n, BitSet::from_words(words, n))
    } else {
        (0..nparts).into_par_iter().for_each(|p| gather(p, None));
        VertexSubset::empty(n)
    };
    (result, pstats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ligra::edge_fn;
    use ligra_graph::generators::erdos_renyi;

    #[test]
    fn all_traversals_match_uncompressed_edge_map() {
        let g = erdos_renyi(400, 3000, 1, true);
        let cg: CompressedGraph = CompressedGraph::from_graph(&g);
        let frontier: Vec<u32> = (0..400u32).filter(|v| v.is_multiple_of(9)).collect();

        let reference = {
            let f = edge_fn(|_s, _d, _w: ()| true, |_| true);
            let mut fr = VertexSubset::from_sparse(400, frontier.clone());
            ligra::edge_map_with(&g, &mut fr, &f, EdgeMapOptions::new().deduplicate(true))
                .to_vec_sorted()
        };

        for t in Traversal::ALL {
            let f = edge_fn(|_s, _d, _w: ()| true, |_| true);
            let mut fr = VertexSubset::from_sparse(400, frontier.clone());
            let out = edge_map_with(
                &cg,
                &mut fr,
                &f,
                EdgeMapOptions::new().traversal(t).deduplicate(true),
            );
            assert_eq!(out.to_vec_sorted(), reference, "traversal {t:?}");
        }
    }

    #[test]
    fn directed_compressed_dense_uses_transpose() {
        let g = erdos_renyi(200, 1500, 4, false);
        let cg: CompressedGraph = CompressedGraph::from_graph(&g);
        let frontier: Vec<u32> = (0..200u32).filter(|v| v.is_multiple_of(5)).collect();
        let mut expect: Vec<u32> =
            frontier.iter().flat_map(|&u| g.out_neighbors(u).iter().copied()).collect();
        expect.sort_unstable();
        expect.dedup();

        let f = edge_fn(|_s, _d, _w: ()| true, |_| true);
        let mut fr = VertexSubset::from_sparse(200, frontier);
        let out = edge_map_with(
            &cg,
            &mut fr,
            &f,
            EdgeMapOptions::new().traversal(Traversal::Dense).deduplicate(true),
        );
        assert_eq!(out.to_vec_sorted(), expect);
    }

    #[test]
    fn compressed_partitioned_traversal_records_bin_telemetry() {
        let g = erdos_renyi(400, 3000, 2, true);
        let cg: CompressedGraph = CompressedGraph::from_graph(&g);
        let frontier: Vec<u32> = (0..400u32).collect();

        let expect = {
            let f = edge_fn(|_s, _d, _w: ()| true, |_| true);
            let mut fr = VertexSubset::from_sparse(400, frontier.clone());
            edge_map_with(&cg, &mut fr, &f, EdgeMapOptions::new().deduplicate(true)).to_vec_sorted()
        };

        let f = edge_fn(|_s, _d, _w: ()| true, |_| true);
        let mut stats = TraversalStats::new();
        let mut fr = VertexSubset::from_sparse(400, frontier);
        let opts = EdgeMapOptions::new().traversal(Traversal::Partitioned).partition_bits(6);
        let out = edge_map_traced(&cg, &mut fr, &f, opts, &mut stats);
        assert_eq!(out.to_vec_sorted(), expect);

        let r = stats.rounds[0];
        assert_eq!(r.mode, Mode::Partitioned);
        assert_eq!(r.partitions, 400u64.div_ceil(64));
        assert!(r.bins_flushed > 0);
        // 8 bytes per binned (src, dst) entry, one entry per frontier
        // out-edge.
        assert_eq!(r.scatter_bytes, 8 * r.frontier_out_edges);
        assert_eq!(r.edges_scanned, r.frontier_out_edges);
    }

    #[test]
    fn compressed_trace_matches_uncompressed_schema() {
        let g = erdos_renyi(300, 2400, 6, true);
        let cg: CompressedGraph = CompressedGraph::from_graph(&g);
        let f = edge_fn(|_s, _d, _w: ()| true, |_| true);
        let mut stats = TraversalStats::new();
        let mut fr = VertexSubset::from_sparse(300, vec![0, 5, 9]);
        let _ = edge_map_traced(&cg, &mut fr, &f, EdgeMapOptions::new(), &mut stats);
        let r = stats.rounds[0];
        assert_eq!(r.frontier_vertices, 3);
        assert_eq!(r.work, r.frontier_vertices + r.frontier_out_edges);
        assert_eq!(r.threshold, cg.num_edges() as u64 / 20);
        assert_eq!(r.mode == Mode::Dense, r.work > r.threshold);
        assert!(r.time_ns > 0);
        // Sparse mode walks every decoded out-edge.
        if r.mode == Mode::Sparse {
            assert_eq!(r.edges_scanned, r.frontier_out_edges);
        }
        // Exported trace from a compressed run round-trips like any other.
        let back = ligra::trace::from_json_lines(&ligra::trace::to_json_lines(&stats)).unwrap();
        assert_eq!(back, stats);
    }
}
