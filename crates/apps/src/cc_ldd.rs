//! Linear-work parallel connectivity via low-diameter decomposition —
//! the authors' follow-up algorithm (Shun, Dhulipala, Blelloch; SPAA
//! 2014), included as the extension baseline to label propagation.
//!
//! The [`ldd`] routine computes a Miller–Peng–Xu style `(β, O(log n / β))`
//! decomposition with simultaneous BFS balls: each vertex draws an
//! exponential shift `δ_v ~ Exp(β)`; a vertex starts its own ball at round
//! `⌊δ_max − δ_v⌋` (implemented equivalently as "unvisited vertices with
//! `⌊δ_v⌋ ≤ round` become centers") and balls grow one hop per round,
//! claiming vertices with CAS. In expectation only a `β` fraction of
//! edges cross clusters.
//!
//! [`cc_ldd`] then contracts clusters and recurses: expected linear work
//! and polylogarithmic depth overall, against label propagation's
//! `O(m · d)` worst case.

use ligra::{edge_map_with, EdgeMapFn, EdgeMapOptions, VertexSubset};
use ligra_graph::{build_graph, BuildOptions, Graph, VertexId};
use ligra_parallel::atomics::cas_u32;
use ligra_parallel::checked_u32;
use ligra_parallel::hash::{hash_to_unit, mix64};
use rayon::prelude::*;
use std::sync::atomic::{AtomicU32, Ordering};

const UNSET: u32 = u32::MAX;

struct ClaimF<'a> {
    cluster: &'a [AtomicU32],
}

impl EdgeMapFn for ClaimF<'_> {
    #[inline]
    fn update(&self, src: VertexId, dst: VertexId, _w: ()) -> bool {
        let slot = &self.cluster[dst as usize];
        if slot.load(Ordering::Relaxed) == UNSET {
            slot.store(self.cluster[src as usize].load(Ordering::Relaxed), Ordering::Relaxed);
            true
        } else {
            false
        }
    }

    #[inline]
    fn update_atomic(&self, src: VertexId, dst: VertexId, _w: ()) -> bool {
        let label = self.cluster[src as usize].load(Ordering::Relaxed);
        cas_u32(&self.cluster[dst as usize], UNSET, label)
    }

    #[inline]
    fn cond(&self, dst: VertexId) -> bool {
        self.cluster[dst as usize].load(Ordering::Relaxed) == UNSET
    }
}

/// Low-diameter decomposition: assigns every vertex a cluster label (the
/// ID of its cluster's center). Higher `beta` gives smaller clusters and
/// more inter-cluster edges. Deterministic in `seed`.
pub fn ldd(g: &Graph, beta: f64, seed: u64) -> Vec<u32> {
    assert!(beta > 0.0 && beta < 1.0, "beta must be in (0, 1)");
    let n = g.num_vertices();

    // Exponential shifts, bucketed by start round ⌊δ_v⌋.
    let shifts: Vec<u32> = (0..n as u64)
        .into_par_iter()
        .map(|v| {
            let u = hash_to_unit(mix64(seed) ^ v).max(1e-12);
            // The saturating f64->u32 cast is the intended clamp of the
            // exponential sample, not an ID truncation.
            // lint: allow(L4): float sample clamp, not an ID cast
            (-u.ln() / beta) as u32
        })
        .collect();

    let mut cluster: Vec<u32> = vec![UNSET; n];
    {
        let cells = ligra_parallel::atomics::as_atomic_u32(&mut cluster);
        let f = ClaimF { cluster: cells };

        let mut frontier = VertexSubset::empty(n);
        let mut round = 0u32;
        let mut num_clustered = 0usize;
        while num_clustered < n {
            // Unvisited vertices whose shift has expired become centers.
            let centers: Vec<u32> = (0..checked_u32(n))
                .into_par_iter()
                .filter(|&v| {
                    shifts[v as usize] <= round
                        && cells[v as usize].load(Ordering::Relaxed) == UNSET
                })
                .collect();
            centers.par_iter().for_each(|&v| {
                cells[v as usize].store(v, Ordering::Relaxed);
            });
            num_clustered += centers.len();

            // Frontier = last round's ball growth plus the new centers.
            let mut members = frontier.as_slice().to_vec();
            members.extend_from_slice(&centers);
            frontier = VertexSubset::from_sparse(n, members);

            let next = edge_map_with(g, &mut frontier, &f, EdgeMapOptions::default());
            num_clustered += next.len();
            frontier = next;
            round += 1;
        }
    }
    cluster
}

/// Connected components by recursive cluster contraction. Returns the
/// same canonical labeling as [`crate::cc`] (minimum original vertex ID
/// per component).
///
/// # Panics
/// Panics if `g` is not symmetric.
pub fn cc_ldd(g: &Graph, seed: u64) -> Vec<u32> {
    assert!(g.is_symmetric(), "connectivity requires a symmetric graph");
    let labels = cc_ldd_rec(g, seed, 0);
    canonicalize_min(g.num_vertices(), &labels)
}

fn cc_ldd_rec(g: &Graph, seed: u64, depth: usize) -> Vec<u32> {
    let n = g.num_vertices();
    assert!(depth < 64, "contraction failed to make progress");
    if g.num_edges() == 0 {
        return (0..checked_u32(n)).collect();
    }

    let cluster = ldd(g, 0.2, mix64(seed ^ depth as u64));

    // Relabel cluster centers to a dense range [0, k).
    let is_center: Vec<bool> =
        (0..checked_u32(n)).into_par_iter().map(|v| cluster[v as usize] == v).collect();
    let centers = ligra_parallel::pack::pack_index(&is_center);
    let k = centers.len();
    if k == n {
        // Every vertex became its own center before being claimed, so
        // contraction made no progress (possible only under adversarial
        // shift draws). Fall back to label propagation for termination.
        return crate::cc(g).label;
    }
    let mut dense_id = vec![0u32; n];
    for (i, &c) in centers.iter().enumerate() {
        dense_id[c as usize] = checked_u32(i);
    }

    // Inter-cluster edges, relabeled.
    let cluster_ref: &[u32] = &cluster;
    let cross: Vec<(u32, u32)> = (0..checked_u32(n))
        .into_par_iter()
        .flat_map_iter(|u| {
            let cu = cluster_ref[u as usize];
            g.out_neighbors(u).iter().filter_map(move |&v| {
                let cv = cluster_ref[v as usize];
                (cu != cv).then_some((cu, cv))
            })
        })
        .map(|(cu, cv)| (dense_id[cu as usize], dense_id[cv as usize]))
        .collect();

    // `cross` already holds both directions (g is symmetric at every
    // level); symmetrize + dedup normalizes it back to a symmetric graph.
    let contracted = build_graph(k, &cross, BuildOptions::symmetric());
    let sub = cc_ldd_rec(&contracted, seed, depth + 1);

    // Map back: component of v = component of its cluster center.
    (0..checked_u32(n))
        .into_par_iter()
        .map(|v| {
            let c = cluster[v as usize];
            centers[sub[dense_id[c as usize] as usize] as usize]
        })
        .collect()
}

/// Rewrites arbitrary component representatives as the minimum vertex ID
/// of each component (matching [`crate::seq::seq_cc`]).
fn canonicalize_min(n: usize, labels: &[u32]) -> Vec<u32> {
    let mut min_of = vec![u32::MAX; n];
    for v in 0..checked_u32(n) {
        let l = labels[v as usize] as usize;
        if v < min_of[l] {
            min_of[l] = v;
        }
    }
    (0..n).map(|v| min_of[labels[v] as usize]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq::seq_cc;
    use ligra_graph::generators::rmat::RmatOptions;
    use ligra_graph::generators::{cycle, erdos_renyi, grid3d, path, random_local, rmat};

    fn check(g: &Graph, seed: u64) {
        assert_eq!(cc_ldd(g, seed), seq_cc(g), "seed {seed}");
    }

    #[test]
    fn simple_families() {
        check(&path(100), 1);
        check(&cycle(64), 2);
        check(&grid3d(5), 3);
    }

    #[test]
    fn random_graphs_all_regimes() {
        check(&erdos_renyi(2000, 800, 4, true), 9); // many components
        check(&erdos_renyi(2000, 6000, 5, true), 10); // giant component
        check(&random_local(3000, 5, 6), 7);
        check(&rmat(&RmatOptions::paper(10)), 8);
    }

    #[test]
    fn agrees_with_label_propagation() {
        let g = rmat(&RmatOptions::paper(10));
        assert_eq!(cc_ldd(&g, 42), crate::cc(&g).label);
    }

    #[test]
    fn deterministic_in_seed() {
        let g = random_local(1000, 4, 3);
        assert_eq!(cc_ldd(&g, 5), cc_ldd(&g, 5));
        // Different seeds still give the same (canonical) answer.
        assert_eq!(cc_ldd(&g, 5), cc_ldd(&g, 6));
    }

    #[test]
    fn edgeless_graph() {
        let g = ligra_graph::build_graph(10, &[], BuildOptions::symmetric());
        assert_eq!(cc_ldd(&g, 1), (0..10u32).collect::<Vec<_>>());
    }

    #[test]
    fn ldd_clusters_are_connected_and_cover() {
        let g = random_local(2000, 6, 11);
        let cluster = ldd(&g, 0.2, 7);
        let n = g.num_vertices();
        // Cover: every vertex labeled; centers label themselves.
        for v in 0..checked_u32(n) {
            let c = cluster[v as usize];
            assert_ne!(c, u32::MAX);
            assert_eq!(cluster[c as usize], c, "center of {v} is not its own center");
        }
        // Connectivity: a vertex's cluster is reachable within the cluster
        // (walk: every non-center has a neighbor in the same cluster that
        // is one BFS hop closer to the center; verify weak version — some
        // neighbor shares the cluster).
        for v in 0..checked_u32(n) {
            let c = cluster[v as usize];
            if c != v {
                assert!(
                    g.out_neighbors(v).iter().any(|&u| cluster[u as usize] == c),
                    "vertex {v} isolated inside its cluster"
                );
            }
        }
    }

    #[test]
    fn higher_beta_makes_more_clusters() {
        let g = grid3d(8);
        let count = |beta: f64| {
            let c = ldd(&g, beta, 3);
            let mut u: Vec<u32> = c.clone();
            u.sort_unstable();
            u.dedup();
            u.len()
        };
        let coarse = count(0.05);
        let fine = count(0.8);
        assert!(fine > coarse, "beta 0.8 -> {fine} clusters vs beta 0.05 -> {coarse}");
    }
}
