//! Breadth-first search (the paper's Figure 1/2 application).
//!
//! Maintains a `parent` array; the edge function claims unvisited targets
//! with a CAS, and `cond` prunes already-claimed targets — which is also
//! what lets the dense (pull) traversal abandon a target's in-edge scan
//! the moment a parent is found. This is exactly the paper's BFS:
//!
//! ```text
//! UPDATE(s, d) = CAS(&parent[d], ⊥, s)
//! COND(d)      = (parent[d] == ⊥)
//! frontier     = {r};  while |frontier| > 0: frontier = EDGEMAP(G, frontier, UPDATE, COND)
//! ```

use ligra::{edge_map_recorded, EdgeMapFn, EdgeMapOptions, NoopRecorder, Recorder, VertexSubset};
use ligra_graph::{Graph, VertexId};
use ligra_parallel::atomics::cas_u32;
use ligra_parallel::checked_u32;
use rayon::prelude::*;
use std::sync::atomic::{AtomicU32, Ordering};

/// Parent value for unreached vertices.
pub const UNREACHED: u32 = u32::MAX;

/// Output of [`bfs`].
#[derive(Debug, Clone)]
pub struct BfsResult {
    /// BFS-tree parent of each vertex; `parent[source] == source`;
    /// [`UNREACHED`] for vertices not reachable from the source.
    pub parent: Vec<u32>,
    /// Hop distance from the source; [`UNREACHED`] when unreachable.
    pub dist: Vec<u32>,
    /// Number of `edgeMap` rounds (the BFS depth).
    pub rounds: usize,
    /// Number of vertices reached (including the source).
    pub reached: usize,
}

/// The paper's BFS edge function: `update` is the single-owner (dense)
/// variant with a plain check-then-write, `update_atomic` the CAS variant.
struct BfsF<'a> {
    parent: &'a [AtomicU32],
}

impl EdgeMapFn for BfsF<'_> {
    #[inline]
    fn update(&self, src: VertexId, dst: VertexId, _w: ()) -> bool {
        // Dense traversal: one thread owns `dst`, so no CAS is needed.
        let slot = &self.parent[dst as usize];
        if slot.load(Ordering::Relaxed) == UNREACHED {
            slot.store(src, Ordering::Relaxed);
            true
        } else {
            false
        }
    }

    #[inline]
    fn update_atomic(&self, src: VertexId, dst: VertexId, _w: ()) -> bool {
        cas_u32(&self.parent[dst as usize], UNREACHED, src)
    }

    #[inline]
    fn cond(&self, dst: VertexId) -> bool {
        self.parent[dst as usize].load(Ordering::Relaxed) == UNREACHED
    }
}

/// Parallel BFS from `source` with default `edgeMap` options.
pub fn bfs(g: &Graph, source: VertexId) -> BfsResult {
    bfs_traced(g, source, EdgeMapOptions::default(), &mut NoopRecorder)
}

/// Parallel BFS with explicit `edgeMap` options (used by the ablation
/// benches to force sparse-only / dense-only traversal).
pub fn bfs_with(g: &Graph, source: VertexId, opts: EdgeMapOptions) -> BfsResult {
    bfs_traced(g, source, opts, &mut NoopRecorder)
}

/// Parallel BFS delivering per-round telemetry to any [`Recorder`]
/// (pass a `&mut TraversalStats` to collect a trace).
pub fn bfs_traced<R: Recorder>(
    g: &Graph,
    source: VertexId,
    opts: EdgeMapOptions,
    stats: &mut R,
) -> BfsResult {
    let n = g.num_vertices();
    assert!((source as usize) < n, "source out of range");

    let mut parent = vec![UNREACHED; n];
    let mut dist = vec![UNREACHED; n];
    parent[source as usize] = source;
    dist[source as usize] = 0;

    let mut rounds = 0usize;
    {
        let parent_atomic = ligra_parallel::atomics::as_atomic_u32(&mut parent);
        let f = BfsF { parent: parent_atomic };
        let mut frontier = VertexSubset::single(n, source);
        let mut level_sets: Vec<VertexSubset> = Vec::new();
        while !frontier.is_empty() {
            frontier = edge_map_recorded(g, &mut frontier, &f, opts, stats);
            rounds += 1;
            if !frontier.is_empty() {
                level_sets.push(frontier.clone());
            }
        }
        // Fill distances level by level (one parallel pass per level; the
        // paper's BFS returns only parents — distances are bookkeeping for
        // the tests and Table 2's reachability checks).
        for (level, fr) in level_sets.iter_mut().enumerate() {
            let d = checked_u32(level) + 1;
            let dist_cell = ligra_parallel::atomics::as_atomic_u32(&mut dist);
            ligra::vertex_map_recorded(
                fr,
                |v| dist_cell[v as usize].store(d, Ordering::Relaxed),
                stats,
            );
        }
    }

    let reached = parent.par_iter().filter(|&&p| p != UNREACHED).count();
    BfsResult { parent, dist, rounds, reached }
}

impl BfsResult {
    /// Checks the parent array is a valid BFS tree for `g` from `source`:
    /// every reached non-source vertex's parent is reached, is one of its
    /// in-neighbors, and distances satisfy `dist[v] == dist[parent[v]] + 1`
    /// with the triangle property over all edges. Panics on violation.
    pub fn validate(&self, g: &Graph, source: VertexId) {
        let n = g.num_vertices();
        assert_eq!(self.parent[source as usize], source);
        assert_eq!(self.dist[source as usize], 0);
        (0..checked_u32(n)).into_par_iter().for_each(|v| {
            let p = self.parent[v as usize];
            if v == source {
                return;
            }
            if p == UNREACHED {
                assert_eq!(self.dist[v as usize], UNREACHED, "dist set for unreached {v}");
                return;
            }
            assert!(
                g.out_neighbors(p).binary_search(&v).is_ok(),
                "parent edge {p}->{v} does not exist"
            );
            assert_eq!(
                self.dist[v as usize],
                self.dist[p as usize] + 1,
                "distance not parent+1 at {v}"
            );
        });
        // Triangle inequality over every edge: dist[v] <= dist[u] + 1.
        (0..checked_u32(n)).into_par_iter().for_each(|u| {
            let du = self.dist[u as usize];
            if du == UNREACHED {
                return;
            }
            for &v in g.out_neighbors(u) {
                let dv = self.dist[v as usize];
                assert!(
                    dv != UNREACHED && dv <= du + 1,
                    "edge {u}->{v} violates BFS optimality ({du} -> {dv})"
                );
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq::seq_bfs;
    use ligra::{Traversal, TraversalStats};
    use ligra_graph::generators::rmat::RmatOptions;
    use ligra_graph::generators::{balanced_tree, grid3d, path, random_local, rmat, star};

    fn check_against_seq(g: &Graph, source: u32) {
        let par = bfs(g, source);
        let (dist, _) = seq_bfs(g, source);
        assert_eq!(par.dist, dist, "distances differ from sequential BFS");
        par.validate(g, source);
    }

    #[test]
    fn path_graph_distances() {
        let g = path(10);
        let r = bfs(&g, 0);
        assert_eq!(r.rounds, 10); // 9 levels + final empty round
        assert_eq!(r.dist, (0..10).map(|i| i as u32).collect::<Vec<_>>());
        assert_eq!(r.reached, 10);
        r.validate(&g, 0);
    }

    #[test]
    fn star_is_one_round_deep() {
        let g = star(100);
        let r = bfs(&g, 0);
        assert_eq!(r.dist[0], 0);
        assert!((1..100).all(|v| r.dist[v] == 1));
        assert_eq!(r.reached, 100);
    }

    #[test]
    fn matches_sequential_on_generators() {
        check_against_seq(&grid3d(6), 0);
        check_against_seq(&random_local(3000, 5, 11), 42);
        check_against_seq(&rmat(&RmatOptions::paper(10)), 0);
        check_against_seq(&balanced_tree(127), 0);
    }

    #[test]
    fn disconnected_vertices_stay_unreached() {
        // Two components: a path 0-1-2 and isolated 3, 4.
        let g = ligra_graph::build_graph(
            5,
            &[(0, 1), (1, 2), (3, 4)],
            ligra_graph::BuildOptions::symmetric(),
        );
        let r = bfs(&g, 0);
        assert_eq!(r.reached, 3);
        assert_eq!(r.dist[3], UNREACHED);
        assert_eq!(r.parent[4], UNREACHED);
        r.validate(&g, 0);
    }

    #[test]
    fn directed_bfs_follows_edge_direction() {
        let g = ligra_graph::build_graph(
            4,
            &[(0, 1), (1, 2), (3, 0)],
            ligra_graph::BuildOptions::directed(),
        );
        let r = bfs(&g, 0);
        assert_eq!(r.dist[..3], [0, 1, 2]);
        assert_eq!(r.dist[3], UNREACHED, "3 -> 0 must not be walked backwards");
    }

    #[test]
    fn all_forced_traversals_agree_with_auto() {
        let g = rmat(&RmatOptions::paper(11));
        let auto = bfs(&g, 0);
        for t in [Traversal::Sparse, Traversal::Dense, Traversal::DenseForward] {
            let forced = bfs_with(&g, 0, EdgeMapOptions::new().traversal(t));
            assert_eq!(forced.dist, auto.dist, "traversal {t:?} differs");
            forced.validate(&g, 0);
        }
    }

    #[test]
    fn hybrid_uses_dense_in_middle_rounds_on_rmat() {
        let g = rmat(&RmatOptions::paper(12));
        let mut stats = TraversalStats::new();
        let _ = bfs_traced(&g, 0, EdgeMapOptions::default(), &mut stats);
        let (_, dense, _, _) = stats.mode_counts();
        assert!(dense > 0, "expected at least one dense round on rMat");
        // High-diameter graphs never densify: a path's frontier is one
        // vertex, always below m/20. (A 3d-grid shows the same behaviour
        // only at the paper's 10^7-vertex scale — at laptop scale its
        // O(side^2) frontiers exceed m/20 = 0.3·side^3; see EXPERIMENTS.md.)
        let g = path(5000);
        let mut stats = TraversalStats::new();
        let _ = bfs_traced(&g, 0, EdgeMapOptions::default(), &mut stats);
        let (_, dense, _, _) = stats.mode_counts();
        assert_eq!(dense, 0, "path frontiers must stay sparse");
    }

    #[test]
    fn source_equals_reached_on_singleton() {
        let g = path(1);
        let r = bfs(&g, 0);
        assert_eq!(r.reached, 1);
        assert_eq!(r.rounds, 1);
    }
}
