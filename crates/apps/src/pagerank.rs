//! PageRank and PageRank-Delta (the paper's two rank applications).
//!
//! **PageRank** runs the classic damped iteration with the whole vertex
//! set as the frontier each round (`edgeMap` with output disabled — the
//! paper's demonstration that Ligra is not *only* for shrinking
//! frontiers). The update rule matches the original `PageRank.C`:
//! uniform start, damping `alpha`, no dangling-mass redistribution,
//! convergence on the L1 change.
//!
//! **PageRank-Delta** propagates only rank *changes* (`delta`) and keeps a
//! vertex in the frontier only while its change is a noticeable fraction
//! of its rank — the paper's showcase of frontier adaptivity: most
//! vertices converge early and drop out, so later iterations touch a
//! shrinking subset of the graph.

use ligra::{
    edge_map_recorded, vertex_filter_recorded, vertex_map_recorded, EdgeMapFn, EdgeMapOptions,
    NoopRecorder, Recorder, VertexSubset,
};
use ligra_graph::{Graph, VertexId};
use ligra_parallel::atomics::{as_atomic_f64, AtomicF64};
use ligra_parallel::checked_u32;
use ligra_parallel::reduce::reduce_with;
use rayon::prelude::*;
use std::sync::atomic::Ordering;

/// The paper's `PR_F`: pull/push `share[s] = p[s]/deg⁺(s)` into each
/// target. Shares are precomputed once per iteration, so the per-edge work
/// is one load and one add — non-atomic in the single-owner dense
/// traversal, a CAS-loop add when pushes race.
struct PrF<'a> {
    shares: &'a [f64],
    next: &'a [AtomicF64],
}

impl EdgeMapFn for PrF<'_> {
    #[inline]
    fn update(&self, src: VertexId, dst: VertexId, _w: ()) -> bool {
        // Dense traversal: one thread owns dst.
        let slot = &self.next[dst as usize];
        let cur = slot.load(Ordering::Relaxed);
        slot.store(cur + self.shares[src as usize], Ordering::Relaxed);
        true
    }

    #[inline]
    fn update_atomic(&self, src: VertexId, dst: VertexId, _w: ()) -> bool {
        self.next[dst as usize].fetch_add(self.shares[src as usize]);
        true
    }
}

/// Output of [`pagerank`] / [`pagerank_delta`].
#[derive(Debug, Clone)]
pub struct PageRankResult {
    /// Rank of each vertex.
    pub rank: Vec<f64>,
    /// Iterations executed.
    pub iterations: usize,
    /// Final L1 change (PageRank) or final active-vertex count
    /// (PageRank-Delta, as a float).
    pub final_error: f64,
}

/// Parallel PageRank. `alpha` is the damping factor (paper: 0.85), `eps`
/// the L1 convergence threshold, `max_iters` a hard cap.
pub fn pagerank(g: &Graph, alpha: f64, eps: f64, max_iters: usize) -> PageRankResult {
    pagerank_traced(g, alpha, eps, max_iters, EdgeMapOptions::default(), &mut NoopRecorder)
}

/// Parallel PageRank recording per-round statistics.
pub fn pagerank_traced<R: Recorder>(
    g: &Graph,
    alpha: f64,
    eps: f64,
    max_iters: usize,
    opts: EdgeMapOptions,
    stats: &mut R,
) -> PageRankResult {
    let n = g.num_vertices();
    assert!(n > 0, "empty graph");
    let base = (1.0 - alpha) / n as f64;
    let mut p = vec![1.0 / n as f64; n];
    let mut next = vec![0.0f64; n];
    let opts = opts.no_output();

    let mut iterations = 0usize;
    let mut err = f64::INFINITY;
    let mut frontier = VertexSubset::all(n);
    let mut shares = vec![0.0f64; n];
    // The iteration count, not the frontier, drives this loop, so the
    // cancellation token must be consulted here — the round boundary.
    while iterations < max_iters && err >= eps && !opts.is_cancelled() {
        iterations += 1;
        {
            // shares[s] = p[s] / deg⁺(s), computed once per iteration.
            shares
                .par_iter_mut()
                .enumerate()
                .for_each(|(s, slot)| *slot = p[s] / (g.out_degree(checked_u32(s)).max(1)) as f64);
            let next_cells = as_atomic_f64(&mut next);
            let f = PrF { shares: &shares, next: next_cells };
            let _ = edge_map_recorded(g, &mut frontier, &f, opts, stats);
            // PR_Vertex_F: damping + teleport.
            vertex_map_recorded(
                &frontier,
                |v| {
                    let x = next_cells[v as usize].load(Ordering::Relaxed);
                    next_cells[v as usize].store(base + alpha * x, Ordering::Relaxed);
                },
                stats,
            );
        }
        err = reduce_with(n, 0.0f64, |i| (next[i] - p[i]).abs(), |a, b| a + b);
        std::mem::swap(&mut p, &mut next);
        next.par_iter_mut().for_each(|x| *x = 0.0);
    }
    PageRankResult { rank: p, iterations, final_error: err }
}

/// Parallel PageRank-Delta.
///
/// `eps2` is the frontier-retention threshold: a vertex stays active while
/// `|delta| > eps2 * rank`. The paper uses a small constant (~1e-2);
/// smaller values trade running time for accuracy. Terminates when the
/// active set empties or after `max_iters`.
pub fn pagerank_delta(g: &Graph, alpha: f64, eps2: f64, max_iters: usize) -> PageRankResult {
    pagerank_delta_traced(g, alpha, eps2, max_iters, EdgeMapOptions::default(), &mut NoopRecorder)
}

/// [`pagerank_delta`] recording per-round statistics.
pub fn pagerank_delta_traced<R: Recorder>(
    g: &Graph,
    alpha: f64,
    eps2: f64,
    max_iters: usize,
    opts: EdgeMapOptions,
    stats: &mut R,
) -> PageRankResult {
    let n = g.num_vertices();
    assert!(n > 0, "empty graph");
    let base = (1.0 - alpha) / n as f64;

    // p accumulates the Neumann series Σ_t (αM)^t · base·1; delta is the
    // current term. Dropping small deltas makes the result approximate —
    // that is the algorithm's point.
    let mut p = vec![base; n];
    let mut delta = vec![base; n];
    let mut ngh_sum = vec![0.0f64; n];

    let mut frontier = VertexSubset::all(n);
    let mut iterations = 0usize;
    let opts = opts.no_output();
    let mut shares = vec![0.0f64; n];
    while iterations < max_iters && !frontier.is_empty() && !opts.is_cancelled() {
        iterations += 1;
        {
            // Only frontier members push, so only their shares are needed.
            let share_cells = as_atomic_f64(&mut shares);
            let delta_read: &[f64] = &delta;
            vertex_map_recorded(
                &frontier,
                |v| {
                    let s = delta_read[v as usize] / (g.out_degree(v).max(1)) as f64;
                    share_cells[v as usize].store(s, Ordering::Relaxed);
                },
                stats,
            );
        }
        {
            let sums = as_atomic_f64(&mut ngh_sum);
            let f = PrF { shares: &shares, next: sums };
            let _ = edge_map_recorded(g, &mut frontier, &f, opts, stats);
        }
        // delta' = α · nghSum; p += delta'; keep vertices with a
        // non-negligible relative change.
        {
            let p_cells = as_atomic_f64(&mut p);
            let d_cells = as_atomic_f64(&mut delta);
            let s_cells = as_atomic_f64(&mut ngh_sum);
            let all = VertexSubset::all(n);
            frontier = vertex_filter_recorded(
                &all,
                |v| {
                    let nd = alpha * s_cells[v as usize].load(Ordering::Relaxed);
                    s_cells[v as usize].store(0.0, Ordering::Relaxed);
                    d_cells[v as usize].store(nd, Ordering::Relaxed);
                    let rank = p_cells[v as usize].load(Ordering::Relaxed) + nd;
                    p_cells[v as usize].store(rank, Ordering::Relaxed);
                    nd.abs() > eps2 * rank
                },
                stats,
            );
        }
    }
    let active = frontier.len() as f64;
    PageRankResult { rank: p, iterations, final_error: active }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq::seq_pagerank;
    use ligra::Traversal;
    use ligra::TraversalStats;
    use ligra_graph::generators::rmat::RmatOptions;
    use ligra_graph::generators::{cycle, erdos_renyi, rmat, star};
    use ligra_graph::{build_graph, BuildOptions};

    fn l1(a: &[f64], b: &[f64]) -> f64 {
        a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum()
    }

    #[test]
    fn uniform_on_cycle() {
        let g = cycle(16);
        let r = pagerank(&g, 0.85, 1e-12, 200);
        for &x in &r.rank {
            assert!((x - 1.0 / 16.0).abs() < 1e-10);
        }
        assert!(r.iterations < 200);
    }

    #[test]
    fn matches_sequential_reference() {
        for g in [erdos_renyi(500, 4000, 1, true), rmat(&RmatOptions::paper(9)), star(64)] {
            let par = pagerank(&g, 0.85, 1e-10, 300);
            let (seq, _) = seq_pagerank(&g, 0.85, 1e-10, 300);
            assert!(
                l1(&par.rank, &seq) < 1e-7,
                "parallel vs sequential L1 = {}",
                l1(&par.rank, &seq)
            );
        }
    }

    #[test]
    fn directed_hub_gives_rank_to_leaves() {
        let edges: Vec<(u32, u32)> = (1..10).map(|i| (0, i)).collect();
        let g = build_graph(10, &edges, BuildOptions::directed());
        let r = pagerank(&g, 0.85, 1e-12, 100);
        assert!(r.rank[1] > r.rank[0]);
        let (seq, _) = seq_pagerank(&g, 0.85, 1e-12, 100);
        assert!(l1(&r.rank, &seq) < 1e-9);
    }

    #[test]
    fn forced_traversals_agree_within_fp_noise() {
        let g = erdos_renyi(400, 3000, 5, true);
        let auto = pagerank(&g, 0.85, 1e-10, 100);
        for t in [Traversal::Sparse, Traversal::Dense, Traversal::DenseForward] {
            let mut stats = TraversalStats::new();
            let forced = pagerank_traced(
                &g,
                0.85,
                1e-10,
                100,
                EdgeMapOptions::new().traversal(t),
                &mut stats,
            );
            assert!(l1(&auto.rank, &forced.rank) < 1e-9, "traversal {t:?}");
        }
    }

    #[test]
    fn delta_approximates_full_pagerank() {
        let g = rmat(&RmatOptions::paper(10));
        let full = pagerank(&g, 0.85, 1e-12, 500);
        let approx = pagerank_delta(&g, 0.85, 1e-4, 500);
        let rel_err = l1(&full.rank, &approx.rank) / full.rank.iter().sum::<f64>();
        assert!(rel_err < 1e-2, "relative L1 error {rel_err}");
    }

    #[test]
    fn delta_frontier_shrinks() {
        let g = rmat(&RmatOptions::paper(10));
        let mut stats = TraversalStats::new();
        let _ = pagerank_delta_traced(&g, 0.85, 1e-2, 100, EdgeMapOptions::default(), &mut stats);
        let sizes: Vec<u64> = stats.edge_map_rounds().map(|r| r.frontier_vertices).collect();
        assert!(sizes.len() >= 3, "expected several delta rounds, got {sizes:?}");
        assert_eq!(sizes[0], g.num_vertices() as u64);
        assert!(*sizes.last().unwrap() < sizes[0] / 2, "frontier should shrink: {sizes:?}");
    }

    #[test]
    fn single_iteration_cap_respected() {
        let g = cycle(8);
        let r = pagerank(&g, 0.85, 0.0, 1);
        assert_eq!(r.iterations, 1);
    }
}
