//! Betweenness centrality (Brandes' algorithm, unweighted) — the paper's
//! BC application.
//!
//! Two phases from a single source `r`:
//!
//! 1. **Forward**: a BFS that counts shortest paths. `num_paths[v]` (σ)
//!    accumulates, over the frontier's edges, the path counts of
//!    predecessors; a vertex joins the next frontier on its *first*
//!    contribution of the round. Each round's frontier is retained as a
//!    level set.
//! 2. **Backward**: dependencies accumulate over the level sets in reverse
//!    order along *reversed* edges, using the inverse-path-count trick of
//!    the original `BC.C`: with `X[v] = σ(v)⁻¹·(1 + δ(v))`, the recurrence
//!    becomes the simple sum `X[v] = σ(v)⁻¹ + Σ_{succ w} X[w]`, so the
//!    same `edgeMap` machinery applies. Finally
//!    `δ(v) = (X[v] − σ(v)⁻¹) · σ(v)`.
//!
//! The returned `dependencies` are the single-source Brandes dependency
//! scores; summing them over all sources yields exact betweenness, and the
//! paper (like most BC benchmarks) reports the time for one source.

use ligra::{
    edge_map_recorded, vertex_map_recorded, EdgeMapFn, EdgeMapOptions, NoopRecorder, Recorder,
    VertexSubset,
};
use ligra_graph::{Graph, VertexId};
use ligra_parallel::atomics::AtomicF64;
use ligra_parallel::bitvec::AtomicBitVec;
use std::sync::atomic::Ordering;

/// Output of [`bc`].
#[derive(Debug, Clone)]
pub struct BcResult {
    /// Brandes dependency score δ(v) of each vertex w.r.t. the source.
    pub dependencies: Vec<f64>,
    /// Number of shortest paths σ(v) from the source (0 when unreachable).
    pub num_paths: Vec<f64>,
    /// Forward-phase rounds (the BFS depth from the source).
    pub rounds: usize,
}

/// Forward phase: accumulate path counts; first contribution claims the
/// vertex for the next frontier.
struct BcForwardF<'a> {
    num_paths: &'a [AtomicF64],
    visited: &'a AtomicBitVec,
}

impl EdgeMapFn for BcForwardF<'_> {
    #[inline]
    fn update(&self, src: VertexId, dst: VertexId, _w: ()) -> bool {
        // Dense traversal: single owner of dst.
        let add = self.num_paths[src as usize].load(Ordering::Relaxed);
        let slot = &self.num_paths[dst as usize];
        let old = slot.load(Ordering::Relaxed);
        slot.store(old + add, Ordering::Relaxed);
        old == 0.0
    }

    #[inline]
    fn update_atomic(&self, src: VertexId, dst: VertexId, _w: ()) -> bool {
        let add = self.num_paths[src as usize].load(Ordering::Relaxed);
        let old = self.num_paths[dst as usize].fetch_add(add);
        old == 0.0
    }

    #[inline]
    fn cond(&self, dst: VertexId) -> bool {
        !self.visited.get(dst as usize)
    }
}

/// Backward phase: accumulate `X[d] += X[s]` along reversed edges from the
/// deeper level; targets are the not-yet-processed shallower vertices.
struct BcBackwardF<'a> {
    x: &'a [AtomicF64],
    visited: &'a AtomicBitVec,
}

impl EdgeMapFn for BcBackwardF<'_> {
    #[inline]
    fn update(&self, src: VertexId, dst: VertexId, _w: ()) -> bool {
        let add = self.x[src as usize].load(Ordering::Relaxed);
        let slot = &self.x[dst as usize];
        let old = slot.load(Ordering::Relaxed);
        slot.store(old + add, Ordering::Relaxed);
        true
    }

    #[inline]
    fn update_atomic(&self, src: VertexId, dst: VertexId, _w: ()) -> bool {
        let add = self.x[src as usize].load(Ordering::Relaxed);
        self.x[dst as usize].fetch_add(add);
        true
    }

    #[inline]
    fn cond(&self, dst: VertexId) -> bool {
        !self.visited.get(dst as usize)
    }
}

/// Parallel single-source betweenness centrality with default options.
pub fn bc(g: &Graph, source: VertexId) -> BcResult {
    bc_traced(g, source, EdgeMapOptions::default(), &mut NoopRecorder)
}

/// Parallel single-source betweenness centrality recording per-round
/// statistics (forward and backward rounds both append).
pub fn bc_traced<R: Recorder>(
    g: &Graph,
    source: VertexId,
    opts: EdgeMapOptions,
    stats: &mut R,
) -> BcResult {
    let n = g.num_vertices();
    assert!((source as usize) < n, "source out of range");

    let num_paths: Vec<AtomicF64> = (0..n).map(|_| AtomicF64::new(0.0)).collect();
    num_paths[source as usize].store(1.0, Ordering::Relaxed);
    let visited = AtomicBitVec::new(n);
    visited.set(source as usize);

    // Forward: BFS with path counting; keep every level's frontier.
    let mut levels: Vec<VertexSubset> = vec![VertexSubset::single(n, source)];
    {
        let f = BcForwardF { num_paths: &num_paths, visited: &visited };
        let mut frontier = levels[0].clone();
        while !frontier.is_empty() {
            frontier = edge_map_recorded(g, &mut frontier, &f, opts, stats);
            vertex_map_recorded(
                &frontier,
                |v| {
                    visited.set(v as usize);
                },
                stats,
            );
            if !frontier.is_empty() {
                levels.push(frontier.clone());
            }
        }
    }
    let rounds = levels.len();

    // X[v] = σ(v)⁻¹ during the backward sweep (σ⁻¹ added when v's level is
    // processed); unreachable vertices keep X = 0 and are zeroed at the end.
    let x: Vec<AtomicF64> = (0..n).map(|_| AtomicF64::new(0.0)).collect();
    visited.clear_all();

    {
        let back = BcBackwardF { x: &x, visited: &visited };
        let rev = g.reversed();
        let back_opts = opts.no_output();
        for level in levels.iter_mut().rev() {
            // The backward sweep iterates stored levels, not the edgeMap
            // output, so it yields to cancellation explicitly per level.
            if opts.is_cancelled() {
                break;
            }
            // BC_Back_Vertex_F: mark processed and add the σ⁻¹ term.
            vertex_map_recorded(
                level,
                |v| {
                    visited.set(v as usize);
                    let sigma = num_paths[v as usize].load(Ordering::Relaxed);
                    debug_assert!(sigma > 0.0);
                    x[v as usize].fetch_add(1.0 / sigma);
                },
                stats,
            );
            let _ = edge_map_recorded(&rev, level, &back, back_opts, stats);
        }
    }

    // δ(v) = (X[v] − σ⁻¹) · σ; unreachable vertices get 0.
    let num_paths_plain: Vec<f64> = num_paths.iter().map(|c| c.load(Ordering::Relaxed)).collect();
    let dependencies: Vec<f64> = (0..n)
        .map(|v| {
            let sigma = num_paths_plain[v];
            if sigma == 0.0 {
                0.0
            } else {
                (x[v].load(Ordering::Relaxed) - 1.0 / sigma) * sigma
            }
        })
        .collect();

    BcResult { dependencies, num_paths: num_paths_plain, rounds }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq::seq_brandes;
    use ligra::Traversal;
    use ligra::TraversalStats;
    use ligra_graph::generators::rmat::RmatOptions;
    use ligra_graph::generators::{cycle, grid3d, path, random_local, rmat, star};
    use ligra_graph::{build_graph, BuildOptions};

    fn max_abs_diff(a: &[f64], b: &[f64]) -> f64 {
        a.iter().zip(b).map(|(x, y)| (x - y).abs()).fold(0.0, f64::max)
    }

    fn check(g: &Graph, source: u32) {
        let par = bc(g, source);
        let seq = seq_brandes(g, source);
        let d = max_abs_diff(&par.dependencies, &seq);
        assert!(d < 1e-9, "dependency mismatch {d} from source {source}");
    }

    #[test]
    fn path_dependencies() {
        let g = path(4);
        let r = bc(&g, 0);
        assert_eq!(r.dependencies, vec![3.0, 2.0, 1.0, 0.0]);
        assert_eq!(r.num_paths, vec![1.0, 1.0, 1.0, 1.0]);
    }

    #[test]
    fn star_center_carries_all_paths() {
        let g = star(6);
        let r = bc(&g, 1); // a leaf
                           // From leaf 1: paths go through center 0 to the other 4 leaves.
        assert_eq!(r.dependencies[0], 4.0);
        assert_eq!(r.dependencies[2], 0.0);
        check(&g, 1);
    }

    #[test]
    fn diamond_splits_paths() {
        //   0 -> 1 -> 3, 0 -> 2 -> 3 (two shortest paths to 3)
        let g = build_graph(4, &[(0, 1), (0, 2), (1, 3), (2, 3)], BuildOptions::directed());
        let r = bc(&g, 0);
        assert_eq!(r.num_paths, vec![1.0, 1.0, 1.0, 2.0]);
        // Each middle vertex carries half the single path to 3.
        assert!((r.dependencies[1] - 0.5).abs() < 1e-12);
        assert!((r.dependencies[2] - 0.5).abs() < 1e-12);
        check(&g, 0);
    }

    #[test]
    fn matches_brandes_on_generators() {
        check(&grid3d(4), 0);
        check(&cycle(21), 3);
        check(&random_local(800, 5, 1), 11);
        check(&rmat(&RmatOptions::paper(9)), 0);
    }

    #[test]
    fn unreached_vertices_have_zero_everything() {
        let g = build_graph(5, &[(0, 1), (1, 2)], BuildOptions::directed());
        let r = bc(&g, 0);
        assert_eq!(r.num_paths[3], 0.0);
        assert_eq!(r.num_paths[4], 0.0);
        assert_eq!(r.dependencies[3], 0.0);
        assert_eq!(r.dependencies[4], 0.0);
        check(&g, 0);
    }

    #[test]
    fn forced_traversals_agree() {
        let g = random_local(600, 6, 8);
        let auto = bc(&g, 0);
        for t in [Traversal::Sparse, Traversal::Dense, Traversal::DenseForward] {
            let mut stats = TraversalStats::new();
            let forced = bc_traced(&g, 0, EdgeMapOptions::new().traversal(t), &mut stats);
            let d = max_abs_diff(&auto.dependencies, &forced.dependencies);
            assert!(d < 1e-9, "traversal {t:?} differs by {d}");
        }
    }

    #[test]
    fn directed_bc_respects_direction() {
        // 0 -> 1 -> 2; from 0, vertex 1 lies on the single path to 2.
        let g = build_graph(3, &[(0, 1), (1, 2)], BuildOptions::directed());
        let r = bc(&g, 0);
        assert_eq!(r.dependencies, vec![2.0, 1.0, 0.0]);
        check(&g, 0);
    }
}
