//! Bellman–Ford single-source shortest paths (the paper's weighted
//! application).
//!
//! Each round relaxes every edge out of the frontier with `writeMin` (a
//! priority update on the distance array); a vertex enters the next
//! frontier the first time its distance improves in a round, tracked by a
//! per-round visited bit exactly as the original `BellmanFord.C` does.
//! If relaxation is still producing changes after `n` rounds, a negative
//! cycle is reachable.

use ligra::{
    edge_map_recorded, vertex_map_recorded, EdgeMapFn, EdgeMapOptions, NoopRecorder, Recorder,
    VertexSubset,
};
use ligra_graph::{VertexId, WeightedGraph};
use ligra_parallel::atomics::write_min_i64;
use ligra_parallel::bitvec::AtomicBitVec;
use std::sync::atomic::{AtomicI64, Ordering};

/// Distance of unreachable vertices.
pub const INFINITE_DISTANCE: i64 = i64::MAX;

/// Output of [`bellman_ford`].
#[derive(Debug, Clone)]
pub struct BellmanFordResult {
    /// Shortest-path distance from the source ([`INFINITE_DISTANCE`] when
    /// unreachable). Meaningless if `negative_cycle` is set.
    pub dist: Vec<i64>,
    /// Relaxation rounds executed.
    pub rounds: usize,
    /// True iff a negative cycle is reachable from the source.
    pub negative_cycle: bool,
}

struct BfF<'a> {
    dist: &'a [AtomicI64],
    visited: &'a AtomicBitVec,
}

impl BfF<'_> {
    /// `dist[src] + w`. Every `src` handed to an update is a frontier
    /// member, and frontier members always have finite distance.
    #[inline]
    fn relax(&self, src: VertexId, w: i32) -> i64 {
        let du = self.dist[src as usize].load(Ordering::Relaxed);
        debug_assert_ne!(du, INFINITE_DISTANCE, "frontier vertex with infinite distance");
        du + w as i64
    }
}

impl EdgeMapFn<i32> for BfF<'_> {
    #[inline]
    fn update(&self, src: VertexId, dst: VertexId, w: i32) -> bool {
        // Dense traversal: single owner of `dst`.
        let nd = self.relax(src, w);
        let slot = &self.dist[dst as usize];
        if nd < slot.load(Ordering::Relaxed) {
            slot.store(nd, Ordering::Relaxed);
            self.visited.set(dst as usize)
        } else {
            false
        }
    }

    #[inline]
    fn update_atomic(&self, src: VertexId, dst: VertexId, w: i32) -> bool {
        let nd = self.relax(src, w);
        write_min_i64(&self.dist[dst as usize], nd) && self.visited.set(dst as usize)
    }
}

/// Parallel Bellman–Ford from `source` with default options.
pub fn bellman_ford(g: &WeightedGraph, source: VertexId) -> BellmanFordResult {
    bellman_ford_traced(g, source, EdgeMapOptions::default(), &mut NoopRecorder)
}

/// Parallel Bellman–Ford recording per-round statistics.
pub fn bellman_ford_traced<R: Recorder>(
    g: &WeightedGraph,
    source: VertexId,
    opts: EdgeMapOptions,
    stats: &mut R,
) -> BellmanFordResult {
    let n = g.num_vertices();
    assert!((source as usize) < n, "source out of range");

    let mut dist = vec![INFINITE_DISTANCE; n];
    dist[source as usize] = 0;
    let visited = AtomicBitVec::new(n);
    let mut rounds = 0usize;
    let mut negative_cycle = false;
    {
        let dist_cells = ligra_parallel::atomics::as_atomic_i64(&mut dist);
        let f = BfF { dist: dist_cells, visited: &visited };
        let mut frontier = VertexSubset::single(n, source);
        while !frontier.is_empty() {
            if rounds >= n {
                negative_cycle = true;
                break;
            }
            rounds += 1;
            frontier = edge_map_recorded(g, &mut frontier, &f, opts, stats);
            // Reset the per-round visited bits of the new frontier (the
            // paper's BF_Vertex_F): cheaper than clearing the whole array.
            vertex_map_recorded(
                &frontier,
                |v| {
                    visited.clear(v as usize);
                },
                stats,
            );
        }
    }
    BellmanFordResult { dist, rounds, negative_cycle }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq::seq_bellman_ford;
    use ligra::Traversal;
    use ligra::TraversalStats;
    use ligra_graph::generators::rmat::RmatOptions;
    use ligra_graph::generators::{grid3d, random_local, random_weights, rmat};
    use ligra_graph::{build_weighted_graph, BuildOptions};

    fn check_against_seq(g: &WeightedGraph, source: u32) {
        let par = bellman_ford(g, source);
        match seq_bellman_ford(g, source) {
            Some(dist) => {
                assert!(!par.negative_cycle);
                assert_eq!(par.dist, dist);
            }
            None => assert!(par.negative_cycle),
        }
    }

    #[test]
    fn simple_dag() {
        let g = build_weighted_graph(
            4,
            &[(0, 1), (1, 2), (0, 2), (2, 3)],
            &[1, 1, 5, 2],
            BuildOptions::directed(),
        );
        let r = bellman_ford(&g, 0);
        assert_eq!(r.dist, vec![0, 1, 2, 4]);
        assert!(!r.negative_cycle);
    }

    #[test]
    fn unreachable_stays_infinite() {
        let g = build_weighted_graph(3, &[(0, 1)], &[7], BuildOptions::directed());
        let r = bellman_ford(&g, 0);
        assert_eq!(r.dist, vec![0, 7, INFINITE_DISTANCE]);
    }

    #[test]
    fn negative_edges_without_cycle() {
        let g = build_weighted_graph(
            4,
            &[(0, 1), (1, 2), (0, 2), (2, 3)],
            &[5, -4, 3, 1],
            BuildOptions::directed(),
        );
        check_against_seq(&g, 0);
        let r = bellman_ford(&g, 0);
        assert_eq!(r.dist, vec![0, 5, 1, 2]);
    }

    #[test]
    fn negative_cycle_detected() {
        let g = build_weighted_graph(
            3,
            &[(0, 1), (1, 2), (2, 1)],
            &[1, -2, 1],
            BuildOptions::directed(),
        );
        let r = bellman_ford(&g, 0);
        assert!(r.negative_cycle);
        check_against_seq(&g, 0);
    }

    #[test]
    fn negative_cycle_unreachable_from_source_is_ignored() {
        // Cycle 2 <-> 3 negative, but source component is {0, 1}.
        let g = build_weighted_graph(
            4,
            &[(0, 1), (2, 3), (3, 2)],
            &[4, -1, -1],
            BuildOptions::directed(),
        );
        let r = bellman_ford(&g, 0);
        assert!(!r.negative_cycle);
        assert_eq!(r.dist[..2], [0, 4]);
    }

    #[test]
    fn matches_sequential_on_generators() {
        let g = random_weights(&grid3d(5), 20, 1);
        check_against_seq(&g, 0);
        let g = random_weights(&random_local(1500, 5, 2), 50, 3);
        check_against_seq(&g, 17);
        let g = random_weights(&rmat(&RmatOptions::paper(9)), 100, 4);
        check_against_seq(&g, 0);
    }

    #[test]
    fn forced_traversals_agree() {
        let g = random_weights(&rmat(&RmatOptions::paper(9)), 30, 9);
        let auto = bellman_ford(&g, 0);
        for t in [Traversal::Sparse, Traversal::Dense, Traversal::DenseForward] {
            let mut stats = TraversalStats::new();
            let forced = bellman_ford_traced(&g, 0, EdgeMapOptions::new().traversal(t), &mut stats);
            assert_eq!(forced.dist, auto.dist, "traversal {t:?}");
        }
    }

    #[test]
    fn dedup_option_does_not_change_result() {
        let g = random_weights(&random_local(800, 6, 5), 40, 6);
        let plain = bellman_ford(&g, 3);
        let mut stats = TraversalStats::new();
        let deduped =
            bellman_ford_traced(&g, 3, EdgeMapOptions::new().deduplicate(true), &mut stats);
        assert_eq!(plain.dist, deduped.dist);
    }

    #[test]
    fn zero_weight_graph_reduces_to_reachability() {
        let g = random_weights(&grid3d(4), 1, 7);
        // All weights are exactly 1 (max_w = 1), so dist == hop count.
        let r = bellman_ford(&g, 0);
        let bfs = crate::bfs::bfs(&ligra_graph::generators::grid3d(4), 0);
        for v in 0..g.num_vertices() {
            assert_eq!(r.dist[v] as u32, bfs.dist[v]);
        }
    }
}
