//! Triangle counting (the `Triangle` application of the original Ligra
//! release; the algorithmic treatment is Shun & Tangwongsan, ICDE 2015).
//!
//! Degree-ordered intersection counting: orient every undirected edge from
//! the lower-rank to the higher-rank endpoint (rank = (degree, id)), then
//! count, for every oriented edge `(u, v)`, the size of the intersection
//! of the oriented adjacency lists of `u` and `v`. Each triangle is
//! counted exactly once. The orientation bounds the oriented out-degree by
//! O(√m), which is what makes the merge-based intersections fast on
//! power-law graphs.

use ligra_graph::{Graph, VertexId};
use ligra_parallel::checked_u32;
use rayon::prelude::*;

/// Output of [`triangle_count`].
#[derive(Debug, Clone)]
pub struct TriangleResult {
    /// Total number of triangles in the graph.
    pub triangles: u64,
    /// Per-vertex triangle counts (each triangle contributes to all three
    /// corners), so `sum(local) == 3 * triangles`.
    pub local: Vec<u64>,
}

/// Rank for the degree orientation: by degree, ties by vertex ID.
#[inline]
fn rank(g: &Graph, v: VertexId) -> (usize, VertexId) {
    (g.out_degree(v), v)
}

/// Oriented adjacency: neighbors of `v` with higher rank, sorted by ID
/// (the underlying CSR lists are ID-sorted, so filtering preserves order).
fn oriented(g: &Graph, v: VertexId) -> Vec<VertexId> {
    g.out_neighbors(v).iter().copied().filter(|&u| rank(g, u) > rank(g, v)).collect()
}

/// Size of the intersection of two ID-sorted lists (merge scan).
fn intersect_count(a: &[VertexId], b: &[VertexId], mut hit: impl FnMut(VertexId)) -> u64 {
    let mut i = 0;
    let mut j = 0;
    let mut count = 0;
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                hit(a[i]);
                count += 1;
                i += 1;
                j += 1;
            }
        }
    }
    count
}

/// Parallel exact triangle count.
///
/// # Panics
/// Panics if `g` is not symmetric (triangles are defined on undirected
/// graphs; symmetrize first).
pub fn triangle_count(g: &Graph) -> TriangleResult {
    assert!(g.is_symmetric(), "triangle counting requires a symmetric graph");
    let n = g.num_vertices();

    // Materialize the oriented lists once: O(m) space, reused by every
    // intersection.
    let oriented_lists: Vec<Vec<VertexId>> =
        (0..checked_u32(n)).into_par_iter().map(|v| oriented(g, v)).collect();

    let local: Vec<std::sync::atomic::AtomicU64> =
        (0..n).map(|_| std::sync::atomic::AtomicU64::new(0)).collect();

    let triangles: u64 = (0..checked_u32(n))
        .into_par_iter()
        .map(|u| {
            let lu = &oriented_lists[u as usize];
            let mut found = 0u64;
            for &v in lu {
                let c = intersect_count(lu, &oriented_lists[v as usize], |w| {
                    // Triangle (u, v, w): credit each corner.
                    local[w as usize].fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                });
                if c > 0 {
                    local[u as usize].fetch_add(c, std::sync::atomic::Ordering::Relaxed);
                    local[v as usize].fetch_add(c, std::sync::atomic::Ordering::Relaxed);
                    found += c;
                }
            }
            found
        })
        .sum();

    let local: Vec<u64> = local.into_iter().map(std::sync::atomic::AtomicU64::into_inner).collect();
    TriangleResult { triangles, local }
}

/// Sequential reference: brute force over vertex triples' adjacency
/// (O(n·d²) via neighbor pairs) — small graphs only.
pub fn seq_triangle_count(g: &Graph) -> u64 {
    assert!(g.is_symmetric());
    let mut count = 0u64;
    for u in 0..checked_u32(g.num_vertices()) {
        let ns = g.out_neighbors(u);
        for (i, &v) in ns.iter().enumerate() {
            if v <= u {
                continue;
            }
            for &w in &ns[i + 1..] {
                if w <= u || w == v {
                    continue;
                }
                if g.out_neighbors(v).binary_search(&w).is_ok() {
                    count += 1;
                }
            }
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use ligra_graph::generators::rmat::RmatOptions;
    use ligra_graph::generators::{complete, cycle, erdos_renyi, grid3d, path, rmat, star};
    use ligra_graph::{build_graph, BuildOptions};

    fn check(g: &Graph) {
        let par = triangle_count(g);
        let seq = seq_triangle_count(g);
        assert_eq!(par.triangles, seq);
        assert_eq!(par.local.iter().sum::<u64>(), 3 * par.triangles);
    }

    #[test]
    fn triangle_free_families() {
        for g in [path(20), star(20), cycle(10), grid3d(4)] {
            let r = triangle_count(&g);
            assert_eq!(r.triangles, 0, "expected triangle-free");
        }
    }

    #[test]
    fn complete_graph_has_n_choose_3() {
        let r = triangle_count(&complete(8));
        assert_eq!(r.triangles, 56); // C(8,3)
                                     // Every vertex participates in C(7,2) = 21 triangles.
        assert!(r.local.iter().all(|&c| c == 21));
    }

    #[test]
    fn single_triangle_with_tail() {
        let g =
            build_graph(5, &[(0, 1), (1, 2), (0, 2), (2, 3), (3, 4)], BuildOptions::symmetric());
        let r = triangle_count(&g);
        assert_eq!(r.triangles, 1);
        assert_eq!(r.local, vec![1, 1, 1, 0, 0]);
    }

    #[test]
    fn odd_cycle_has_no_triangles_but_chords_make_them() {
        let g =
            build_graph(4, &[(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)], BuildOptions::symmetric());
        assert_eq!(triangle_count(&g).triangles, 2);
        check(&g);
    }

    #[test]
    fn matches_reference_on_random_graphs() {
        check(&erdos_renyi(200, 2000, 1, true));
        check(&erdos_renyi(100, 1500, 2, true)); // dense: many triangles
        check(&rmat(&RmatOptions::paper(8)));
    }

    #[test]
    fn rmat_has_many_triangles() {
        // Power-law graphs exhibit strong clustering around hubs.
        let r = triangle_count(&rmat(&RmatOptions::paper(11)));
        assert!(r.triangles > 5_000, "got {}", r.triangles);
    }

    #[test]
    #[should_panic(expected = "symmetric")]
    fn directed_graph_rejected() {
        let g = build_graph(3, &[(0, 1)], BuildOptions::directed());
        let _ = triangle_count(&g);
    }
}
