//! # ligra-apps
//!
//! The applications evaluated in the Ligra paper (PPoPP 2013), implemented
//! on the `ligra` framework exactly as the paper's pseudocode describes,
//! plus sequential reference implementations used for validation and for
//! the single-thread baselines of Table 2.
//!
//! | Paper application | Module |
//! |---|---|
//! | Breadth-first search | [`bfs`] |
//! | Betweenness centrality (Brandes, unweighted) | [`bc`] |
//! | Graph radii estimation (64-way multi-BFS) | [`radii`] |
//! | Connected components (label propagation) | [`cc`] |
//! | PageRank and PageRank-Delta | [`pagerank`] |
//! | Bellman–Ford shortest paths | [`bellman_ford`] |
//!
//! Every module exposes a `*_traced` variant that records per-round
//! [`ligra::TraversalStats`], which the benchmark harness uses to
//! regenerate the paper's frontier-dynamics figure.
//!
//! Beyond the paper's six applications, the modules [`kcore`], [`mis`]
//! and [`triangle`] reproduce the extra applications shipped with the
//! original Ligra source release (KCore.C, MIS.C, Triangle.C).

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod bc;
pub mod bellman_ford;
pub mod bfs;
pub mod cc;
pub mod cc_ldd;
pub mod eccentricity;
pub mod kcore;
pub mod mis;
pub mod pagerank;
pub mod radii;
pub mod seq;
pub mod triangle;

pub use bc::{bc, bc_traced, BcResult};
pub use bellman_ford::{bellman_ford, bellman_ford_traced, BellmanFordResult, INFINITE_DISTANCE};
pub use bfs::{bfs, bfs_traced, bfs_with, BfsResult, UNREACHED};
pub use cc::{cc, cc_traced, CcResult};
pub use cc_ldd::{cc_ldd, ldd};
pub use eccentricity::{k_bfs_two_pass, two_approx};
pub use kcore::{kcore, kcore_traced, KCoreResult};
pub use mis::{mis, mis_traced, MisResult};
pub use pagerank::{
    pagerank, pagerank_delta, pagerank_delta_traced, pagerank_traced, PageRankResult,
};
pub use radii::{radii, radii_from_sample, radii_traced, RadiiResult};
pub use triangle::{triangle_count, TriangleResult};
