//! Maximal independent set (the `MIS` application of the original Ligra
//! release; the analysis is Blelloch–Fineman–Shun, SPAA 2012).
//!
//! Luby-flavored rounds over random priorities: an undecided vertex joins
//! the MIS when every undecided neighbor has a lower priority; its
//! neighbors become excluded. With hash-derived priorities re-drawn each
//! round the expected round count is O(log n). Per round, both the
//! "blocked by a higher-priority neighbor" marking and the "knock out the
//! neighbors of new MIS members" step are `edgeMap` calls over the
//! undecided subset.

use ligra::{
    edge_map_recorded, vertex_filter_recorded, vertex_map_recorded, EdgeMapFn, EdgeMapOptions,
    NoopRecorder, Recorder, VertexSubset,
};
use ligra_graph::{Graph, VertexId};
use ligra_parallel::checked_u32;
use ligra_parallel::hash::mix64;
use std::sync::atomic::{AtomicU32, Ordering};

/// Per-vertex state in the MIS computation.
const UNDECIDED: u32 = 0;
const IN_SET: u32 = 1;
const OUT: u32 = 2;

/// Output of [`mis`].
#[derive(Debug, Clone)]
pub struct MisResult {
    /// `true` for vertices in the maximal independent set.
    pub in_set: Vec<bool>,
    /// Rounds until every vertex was decided.
    pub rounds: usize,
}

impl MisResult {
    /// Number of MIS members.
    pub fn size(&self) -> usize {
        self.in_set.iter().filter(|&&b| b).count()
    }

    /// Panics unless the set is independent (no edge inside the set) and
    /// maximal (every non-member has a member neighbor). Requires the same
    /// graph the result was computed on.
    pub fn validate(&self, g: &Graph) {
        for v in 0..checked_u32(g.num_vertices()) {
            let ns = g.out_neighbors(v);
            if self.in_set[v as usize] {
                for &u in ns {
                    assert!(!self.in_set[u as usize], "edge {v}-{u} inside the independent set");
                }
            } else {
                assert!(
                    ns.iter().any(|&u| self.in_set[u as usize]),
                    "non-member {v} has no member neighbor (not maximal)"
                );
            }
        }
    }
}

/// Round priority: re-drawn every round from the seed; ties broken by ID
/// (priorities are distinct because the vertex ID is mixed in last).
#[inline]
fn priority(seed: u64, round: u64, v: VertexId) -> u64 {
    mix64(seed ^ (round << 32) ^ v as u64) << 32 | v as u64
}

/// Marks targets that have a higher-priority undecided neighbor as
/// "blocked this round".
struct BlockF<'a> {
    state: &'a [AtomicU32],
    blocked: &'a [AtomicU32],
    seed: u64,
    round: u64,
}

impl EdgeMapFn for BlockF<'_> {
    #[inline]
    fn update(&self, src: VertexId, dst: VertexId, _w: ()) -> bool {
        if self.state[src as usize].load(Ordering::Relaxed) == UNDECIDED
            && priority(self.seed, self.round, src) > priority(self.seed, self.round, dst)
        {
            self.blocked[dst as usize].store(1, Ordering::Relaxed);
        }
        false
    }

    #[inline]
    fn update_atomic(&self, src: VertexId, dst: VertexId, w: ()) -> bool {
        self.update(src, dst, w)
    }

    #[inline]
    fn cond(&self, dst: VertexId) -> bool {
        self.state[dst as usize].load(Ordering::Relaxed) == UNDECIDED
    }
}

/// Knocks out the undecided neighbors of freshly admitted MIS members.
struct KnockoutF<'a> {
    state: &'a [AtomicU32],
}

impl EdgeMapFn for KnockoutF<'_> {
    #[inline]
    fn update(&self, _src: VertexId, dst: VertexId, _w: ()) -> bool {
        self.state[dst as usize].store(OUT, Ordering::Relaxed);
        false
    }

    #[inline]
    fn update_atomic(&self, src: VertexId, dst: VertexId, w: ()) -> bool {
        self.update(src, dst, w)
    }

    #[inline]
    fn cond(&self, dst: VertexId) -> bool {
        self.state[dst as usize].load(Ordering::Relaxed) == UNDECIDED
    }
}

/// Parallel maximal independent set with default options.
///
/// Deterministic in `seed`.
///
/// # Panics
/// Panics if `g` is not symmetric.
pub fn mis(g: &Graph, seed: u64) -> MisResult {
    mis_traced(g, seed, EdgeMapOptions::default(), &mut NoopRecorder)
}

/// Parallel MIS recording per-round statistics.
pub fn mis_traced<R: Recorder>(
    g: &Graph,
    seed: u64,
    opts: EdgeMapOptions,
    stats: &mut R,
) -> MisResult {
    assert!(g.is_symmetric(), "MIS requires a symmetric graph");
    let n = g.num_vertices();
    let mut state: Vec<u32> = vec![UNDECIDED; n];
    let mut blocked: Vec<u32> = vec![0; n];
    let mut rounds = 0usize;
    let opts = opts.no_output();

    {
        let state_cells = ligra_parallel::atomics::as_atomic_u32(&mut state);
        let blocked_cells = ligra_parallel::atomics::as_atomic_u32(&mut blocked);
        let mut undecided = VertexSubset::all(n);

        // Both edgeMap passes run with no_output, so the undecided set —
        // not the edgeMap result — drives the loop; yield explicitly.
        while !undecided.is_empty() && !opts.is_cancelled() {
            rounds += 1;
            // Clear round-local blocked flags of the undecided set.
            vertex_map_recorded(
                &undecided,
                |v| blocked_cells[v as usize].store(0, Ordering::Relaxed),
                stats,
            );
            // Pass 1: every undecided vertex with a higher-priority
            // undecided neighbor is blocked.
            let f =
                BlockF { state: state_cells, blocked: blocked_cells, seed, round: rounds as u64 };
            let mut frontier = undecided.clone();
            let _ = edge_map_recorded(g, &mut frontier, &f, opts, stats);

            // Unblocked undecided vertices join the MIS.
            let winners = vertex_filter_recorded(
                &undecided,
                |v| blocked_cells[v as usize].load(Ordering::Relaxed) == 0,
                stats,
            );
            debug_assert!(!winners.is_empty(), "some local maximum always exists");
            vertex_map_recorded(
                &winners,
                |v| state_cells[v as usize].store(IN_SET, Ordering::Relaxed),
                stats,
            );

            // Pass 2: knock out their undecided neighbors.
            let ko = KnockoutF { state: state_cells };
            let mut winners = winners;
            let _ = edge_map_recorded(g, &mut winners, &ko, opts, stats);

            // Shrink the undecided set.
            undecided = vertex_filter_recorded(
                &undecided,
                |v| state_cells[v as usize].load(Ordering::Relaxed) == UNDECIDED,
                stats,
            );
        }
    }

    let in_set: Vec<bool> = state.iter().map(|&s| s == IN_SET).collect();
    MisResult { in_set, rounds }
}

/// Sequential reference: the greedy MIS over ascending vertex IDs.
pub fn seq_mis(g: &Graph) -> Vec<bool> {
    assert!(g.is_symmetric());
    let n = g.num_vertices();
    let mut in_set = vec![false; n];
    let mut excluded = vec![false; n];
    for v in 0..checked_u32(n) {
        if !excluded[v as usize] {
            in_set[v as usize] = true;
            for &u in g.out_neighbors(v) {
                excluded[u as usize] = true;
            }
        }
    }
    in_set
}

#[cfg(test)]
mod tests {
    use super::*;
    use ligra_graph::generators::rmat::RmatOptions;
    use ligra_graph::generators::{complete, cycle, erdos_renyi, grid3d, path, rmat, star};
    use ligra_graph::{build_graph, BuildOptions};

    #[test]
    fn star_mis_is_leaves_or_center() {
        let g = star(10);
        let r = mis(&g, 1);
        r.validate(&g);
        // Either {center} or all 9 leaves.
        assert!(r.size() == 1 || r.size() == 9);
    }

    #[test]
    fn complete_graph_mis_is_single_vertex() {
        let g = complete(8);
        let r = mis(&g, 2);
        r.validate(&g);
        assert_eq!(r.size(), 1);
    }

    #[test]
    fn path_and_cycle_mis_sizes() {
        let g = path(10);
        let r = mis(&g, 3);
        r.validate(&g);
        assert!(r.size() >= 4 && r.size() <= 5); // MIS of P10 is between ceil(10/3) and 5

        let g = cycle(9);
        let r = mis(&g, 4);
        r.validate(&g);
        assert!(r.size() >= 3 && r.size() <= 4);
    }

    #[test]
    fn valid_on_generators_and_seeds() {
        for seed in [1u64, 7, 42] {
            for g in [grid3d(4), erdos_renyi(500, 2500, seed, true), rmat(&RmatOptions::paper(9))] {
                let r = mis(&g, seed);
                r.validate(&g);
                assert!(r.size() > 0);
            }
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let g = erdos_renyi(400, 2000, 5, true);
        assert_eq!(mis(&g, 9).in_set, mis(&g, 9).in_set);
    }

    #[test]
    fn isolated_vertices_always_join() {
        let g = build_graph(5, &[(0, 1)], BuildOptions::symmetric());
        let r = mis(&g, 6);
        r.validate(&g);
        assert!(r.in_set[2] && r.in_set[3] && r.in_set[4]);
    }

    #[test]
    fn round_count_is_logarithmic_in_practice() {
        let g = rmat(&RmatOptions::paper(11));
        let r = mis(&g, 11);
        r.validate(&g);
        assert!(r.rounds <= 40, "expected O(log n) rounds, got {}", r.rounds);
    }

    #[test]
    fn seq_mis_is_valid_too() {
        let g = erdos_renyi(300, 1500, 8, true);
        let in_set = seq_mis(&g);
        let r = MisResult { in_set, rounds: 0 };
        r.validate(&g);
    }

    #[test]
    #[should_panic(expected = "symmetric")]
    fn directed_graph_rejected() {
        let g = build_graph(3, &[(0, 1)], BuildOptions::directed());
        let _ = mis(&g, 1);
    }
}
