//! Graph radii (eccentricity) estimation — the paper's multi-BFS
//! application.
//!
//! Runs `K = 64` breadth-first searches simultaneously, one per bit of a
//! 64-bit word: `visited[v]` holds the set of sample vertices whose BFS
//! wave has reached `v`. A round ORs each frontier vertex's mask into its
//! neighbors (`fetch_or`); a vertex whose mask grew joins the next
//! frontier, and `radii[v]` records the last round in which `v`'s mask
//! changed. Since the bit of sample `s` arrives at `v` exactly at round
//! `dist(s, v)`, the estimate converges to
//! `radii[v] = max_{s ∈ sample reachable from v} dist(s, v)` — a lower
//! bound on `v`'s true eccentricity that sharpens with more samples.

use ligra::{
    edge_map_recorded, vertex_map_recorded, EdgeMapFn, EdgeMapOptions, NoopRecorder, Recorder,
    VertexSubset,
};
use ligra_graph::{Graph, VertexId};
use ligra_parallel::checked_u32;
use ligra_parallel::hash::hash_to_range;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

/// Number of simultaneous BFS waves (bits per mask word).
pub const SAMPLES: usize = 64;

/// Radii value for vertices never reached by any sampled wave.
pub const UNKNOWN_RADIUS: u32 = u32::MAX;

/// Output of [`radii`].
#[derive(Debug, Clone)]
pub struct RadiiResult {
    /// Estimated eccentricity of each vertex ([`UNKNOWN_RADIUS`] when no
    /// sampled wave reached it; `0` for the samples themselves unless a
    /// wave reaches them later).
    pub radii: Vec<u32>,
    /// The sampled source vertices.
    pub sample: Vec<VertexId>,
    /// Rounds until no mask changed.
    pub rounds: usize,
}

impl RadiiResult {
    /// Estimated graph diameter: the maximum known radius.
    pub fn estimated_diameter(&self) -> u32 {
        self.radii.iter().copied().filter(|&r| r != UNKNOWN_RADIUS).max().unwrap_or(0)
    }
}

struct RadiiF<'a> {
    visited: &'a [AtomicU64],
    next_visited: &'a [AtomicU64],
    radii: &'a [AtomicU32],
    round: u32,
}

impl RadiiF<'_> {
    /// Claims "first mask change of `dst` this round" by installing the
    /// round number into `radii[dst]`; exactly one claimant wins.
    #[inline]
    fn claim(&self, dst: VertexId) -> bool {
        let slot = &self.radii[dst as usize];
        loop {
            let r = slot.load(Ordering::Relaxed);
            if r == self.round {
                return false;
            }
            if slot
                .compare_exchange_weak(r, self.round, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                return true;
            }
        }
    }
}

impl EdgeMapFn for RadiiF<'_> {
    #[inline]
    fn update(&self, src: VertexId, dst: VertexId, _w: ()) -> bool {
        let vd = self.visited[dst as usize].load(Ordering::Relaxed);
        let vs = self.visited[src as usize].load(Ordering::Relaxed);
        let to_write = vd | vs;
        if to_write != vd {
            // Single-owner dst in the dense traversal, but other waves may
            // also be ORing into next_visited[dst] through *this* owner
            // only — a plain fetch_or keeps the code shared with the
            // atomic variant at no extra cost.
            self.next_visited[dst as usize].fetch_or(to_write, Ordering::AcqRel);
            self.claim(dst)
        } else {
            false
        }
    }

    #[inline]
    fn update_atomic(&self, src: VertexId, dst: VertexId, _w: ()) -> bool {
        let vd = self.visited[dst as usize].load(Ordering::Relaxed);
        let vs = self.visited[src as usize].load(Ordering::Relaxed);
        let to_write = vd | vs;
        if to_write != vd {
            self.next_visited[dst as usize].fetch_or(to_write, Ordering::AcqRel);
            self.claim(dst)
        } else {
            false
        }
    }
}

/// Picks up to [`SAMPLES`] distinct sample vertices, preferring vertices
/// with at least one edge (waves from isolated vertices go nowhere).
pub fn pick_sample(g: &Graph, seed: u64) -> Vec<VertexId> {
    let n = g.num_vertices();
    let want = SAMPLES.min(n);
    let mut sample = Vec::with_capacity(want);
    let mut picked = std::collections::HashSet::new();
    // Prefer non-isolated vertices (waves from isolated vertices go
    // nowhere); hash-probe with a bounded attempt budget.
    let mut attempt = 0u64;
    while sample.len() < want && attempt < 64 * SAMPLES as u64 {
        let v = checked_u32(hash_to_range(seed ^ attempt, n as u64));
        attempt += 1;
        if g.out_degree(v) > 0 && picked.insert(v) {
            sample.push(v);
        }
    }
    // Deterministic fallback: scan for any remaining distinct vertices
    // (covers graphs that are mostly or entirely isolated vertices).
    let mut v = 0u32;
    while sample.len() < want && (v as usize) < n {
        if picked.insert(v) {
            sample.push(v);
        }
        v += 1;
    }
    sample
}

/// Parallel radii estimation with default options and sampling seed.
pub fn radii(g: &Graph, seed: u64) -> RadiiResult {
    radii_traced(g, seed, EdgeMapOptions::default(), &mut NoopRecorder)
}

/// Parallel radii estimation recording per-round statistics.
pub fn radii_traced<R: Recorder>(
    g: &Graph,
    seed: u64,
    opts: EdgeMapOptions,
    stats: &mut R,
) -> RadiiResult {
    let n = g.num_vertices();
    assert!(n > 0, "empty graph");
    let sample = pick_sample(g, seed);
    radii_from_sample(g, sample, opts, stats)
}

/// Multi-BFS radii estimation from an explicit source sample (at most
/// [`SAMPLES`] vertices; used directly by the two-pass eccentricity
/// estimator, which seeds pass 2 with pass 1's most eccentric vertices).
///
/// # Panics
/// Panics if the sample is larger than [`SAMPLES`] or contains duplicates
/// (each source needs its own mask bit).
pub fn radii_from_sample<R: Recorder>(
    g: &Graph,
    sample: Vec<VertexId>,
    opts: EdgeMapOptions,
    stats: &mut R,
) -> RadiiResult {
    let n = g.num_vertices();
    assert!(sample.len() <= SAMPLES, "sample exceeds the {SAMPLES} mask bits");
    {
        let mut s = sample.clone();
        s.sort_unstable();
        s.dedup();
        assert_eq!(s.len(), sample.len(), "sample contains duplicates");
    }

    let mut visited = vec![0u64; n];
    let mut next_visited = vec![0u64; n];
    let mut radii_arr = vec![UNKNOWN_RADIUS; n];
    for (bit, &s) in sample.iter().enumerate() {
        visited[s as usize] |= 1u64 << bit;
        next_visited[s as usize] |= 1u64 << bit;
        radii_arr[s as usize] = 0;
    }

    let mut rounds = 0usize;
    {
        let visited_cells = ligra_parallel::atomics::as_atomic_u64(&mut visited);
        let next_cells = ligra_parallel::atomics::as_atomic_u64(&mut next_visited);
        let radii_cells = ligra_parallel::atomics::as_atomic_u32(&mut radii_arr);
        let mut frontier = VertexSubset::from_sparse(n, sample.clone());
        while !frontier.is_empty() {
            rounds += 1;
            let f = RadiiF {
                visited: visited_cells,
                next_visited: next_cells,
                radii: radii_cells,
                round: checked_u32(rounds),
            };
            frontier = edge_map_recorded(g, &mut frontier, &f, opts, stats);
            // Commit the masks of the changed vertices (paper's
            // Radii_Vertex_F): visited = nextVisited.
            vertex_map_recorded(
                &frontier,
                |v| {
                    let m = next_cells[v as usize].load(Ordering::Relaxed);
                    visited_cells[v as usize].store(m, Ordering::Relaxed);
                },
                stats,
            );
        }
    }
    RadiiResult { radii: radii_arr, sample, rounds }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq::seq_bfs;
    use ligra_graph::generators::rmat::RmatOptions;
    use ligra_graph::generators::{cycle, grid3d, path, random_local, rmat, star};

    /// Reference: radii[v] = max over samples s of dist(s, v) (finite only).
    fn reference_radii(g: &Graph, sample: &[u32]) -> Vec<u32> {
        let n = g.num_vertices();
        let mut out = vec![UNKNOWN_RADIUS; n];
        for &s in sample {
            let (dist, _) = seq_bfs(g, s);
            for v in 0..n {
                if dist[v] != crate::seq::UNREACHED
                    && (out[v] == UNKNOWN_RADIUS || dist[v] > out[v])
                {
                    out[v] = dist[v];
                }
            }
        }
        out
    }

    fn check(g: &Graph, seed: u64) {
        let r = radii(g, seed);
        let expect = reference_radii(g, &r.sample);
        assert_eq!(r.radii, expect, "radii mismatch (sample = {:?})", r.sample);
    }

    #[test]
    fn small_families_match_reference() {
        check(&path(40), 1);
        check(&cycle(33), 2);
        check(&star(100), 3);
        check(&grid3d(5), 4);
    }

    #[test]
    fn random_graphs_match_reference() {
        check(&random_local(1200, 5, 9), 5);
        check(&rmat(&RmatOptions::paper(9)), 6);
    }

    #[test]
    fn sample_covers_min_of_64_and_n() {
        let g = grid3d(3); // 27 vertices
        let r = radii(&g, 7);
        assert_eq!(r.sample.len(), 27);
        let g = grid3d(6); // 216 vertices
        let r = radii(&g, 7);
        assert_eq!(r.sample.len(), SAMPLES);
        // Distinct samples.
        let mut s = r.sample.clone();
        s.sort_unstable();
        s.dedup();
        assert_eq!(s.len(), SAMPLES);
    }

    #[test]
    fn diameter_estimate_on_path_with_full_sample() {
        // n <= 64: every vertex is a sample, so the estimate is the exact
        // diameter.
        let g = path(50);
        let r = radii(&g, 11);
        assert_eq!(r.estimated_diameter(), 49);
    }

    #[test]
    fn estimate_lower_bounds_true_diameter() {
        let g = grid3d(7);
        let r = radii(&g, 13);
        let true_diameter = 3 * (7 / 2); // torus: 3 axes, each ≤ side/2
        assert!(r.estimated_diameter() <= true_diameter as u32);
        assert!(r.estimated_diameter() >= true_diameter as u32 / 2);
    }

    #[test]
    fn deterministic_in_seed() {
        let g = random_local(500, 4, 3);
        let a = radii(&g, 42);
        let b = radii(&g, 42);
        assert_eq!(a.radii, b.radii);
        assert_eq!(a.sample, b.sample);
    }
}
