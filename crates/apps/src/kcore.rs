//! k-core decomposition (the `KCore` application shipped with the
//! original Ligra release; later made work-efficient in Julienne).
//!
//! Peeling: for `k = 1, 2, …`, repeatedly remove vertices whose remaining
//! degree is below `k`, decrementing their neighbors' degrees through
//! `edgeMap`, until no vertex qualifies; vertices removed while peeling
//! toward `k` have coreness `k − 1`. A vertex's *coreness* is the largest
//! `k` such that it survives in the `k`-core (the maximal subgraph with
//! all degrees ≥ `k`).

use ligra::{
    edge_map_recorded, vertex_map_recorded, EdgeMapFn, EdgeMapOptions, NoopRecorder, Recorder,
    VertexSubset,
};
use ligra_graph::{Graph, VertexId};
use ligra_parallel::checked_u32;
use std::sync::atomic::{AtomicU32, Ordering};

/// Output of [`kcore`].
#[derive(Debug, Clone)]
pub struct KCoreResult {
    /// Coreness of each vertex.
    pub coreness: Vec<u32>,
    /// The degeneracy of the graph (maximum coreness).
    pub max_core: u32,
    /// Total peeling rounds across all `k`.
    pub rounds: usize,
}

/// Decrement the remaining degree of every surviving neighbor of a peeled
/// vertex. Saturating at 0: a vertex can lose more incident edges in one
/// round than its remaining degree only via edges to other peeled
/// vertices, which no longer matter.
struct PeelF<'a> {
    degrees: &'a [AtomicU32],
    alive: &'a [AtomicU32],
}

impl EdgeMapFn for PeelF<'_> {
    #[inline]
    fn update(&self, _src: VertexId, dst: VertexId, _w: ()) -> bool {
        // Dense traversal: single owner of dst.
        let d = self.degrees[dst as usize].load(Ordering::Relaxed);
        if d > 0 {
            self.degrees[dst as usize].store(d - 1, Ordering::Relaxed);
        }
        false
    }

    #[inline]
    fn update_atomic(&self, _src: VertexId, dst: VertexId, _w: ()) -> bool {
        // fetch_update with saturation; contention is per-target bounded
        // by its degree.
        let _ = self.degrees[dst as usize]
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |d| d.checked_sub(1));
        false
    }

    #[inline]
    fn cond(&self, dst: VertexId) -> bool {
        self.alive[dst as usize].load(Ordering::Relaxed) == 1
    }
}

/// Parallel k-core decomposition with default options.
///
/// # Panics
/// Panics if `g` is not symmetric (coreness is defined on undirected
/// graphs; symmetrize first).
pub fn kcore(g: &Graph) -> KCoreResult {
    kcore_traced(g, EdgeMapOptions::default(), &mut NoopRecorder)
}

/// Parallel k-core decomposition recording per-round statistics.
pub fn kcore_traced<R: Recorder>(g: &Graph, opts: EdgeMapOptions, stats: &mut R) -> KCoreResult {
    assert!(g.is_symmetric(), "k-core requires a symmetric graph");
    let n = g.num_vertices();
    let mut degrees: Vec<u32> = (0..checked_u32(n)).map(|v| checked_u32(g.out_degree(v))).collect();
    let mut alive: Vec<u32> = vec![1; n];
    let mut coreness: Vec<u32> = vec![0; n];
    let mut num_alive = n;
    let mut rounds = 0usize;
    let opts = opts.no_output();

    {
        let degrees = ligra_parallel::atomics::as_atomic_u32(&mut degrees);
        let alive_cells = ligra_parallel::atomics::as_atomic_u32(&mut alive);
        let core_cells = ligra_parallel::atomics::as_atomic_u32(&mut coreness);
        let f = PeelF { degrees, alive: alive_cells };

        let mut k = 1u32;
        // Peeling is driven by the alive count, not the edgeMap output
        // (no_output is set), so both loops yield to cancellation here.
        while num_alive > 0 && !opts.is_cancelled() {
            // Peel every vertex below k, repeatedly: removals can drag
            // further vertices below k within the same k-phase.
            while !opts.is_cancelled() {
                let peel = VertexSubset::from_fn(n, |v| {
                    alive_cells[v as usize].load(Ordering::Relaxed) == 1
                        && degrees[v as usize].load(Ordering::Relaxed) < k
                });
                if peel.is_empty() {
                    break;
                }
                rounds += 1;
                vertex_map_recorded(
                    &peel,
                    |v| {
                        alive_cells[v as usize].store(0, Ordering::Relaxed);
                        core_cells[v as usize].store(k - 1, Ordering::Relaxed);
                    },
                    stats,
                );
                num_alive -= peel.len();
                let mut frontier = peel;
                let _ = edge_map_recorded(g, &mut frontier, &f, opts, stats);
            }
            k += 1;
        }
    }

    let max_core = coreness.iter().copied().max().unwrap_or(0);
    KCoreResult { coreness, max_core, rounds }
}

/// Sequential reference: textbook bucket-queue peeling (Batagelj–Zaveršnik),
/// O(n + m).
pub fn seq_kcore(g: &Graph) -> Vec<u32> {
    assert!(g.is_symmetric());
    let n = g.num_vertices();
    let mut degree: Vec<u32> = (0..checked_u32(n)).map(|v| checked_u32(g.out_degree(v))).collect();
    let max_deg = degree.iter().copied().max().unwrap_or(0) as usize;

    // Bucket sort vertices by degree.
    let mut bucket_start = vec![0usize; max_deg + 2];
    for &d in &degree {
        bucket_start[d as usize + 1] += 1;
    }
    for i in 1..bucket_start.len() {
        bucket_start[i] += bucket_start[i - 1];
    }
    let mut pos = vec![0usize; n]; // vertex -> index in `order`
    let mut order = vec![0u32; n]; // sorted by current degree
    {
        let mut cursor = bucket_start.clone();
        for v in 0..checked_u32(n) {
            let d = degree[v as usize] as usize;
            order[cursor[d]] = v;
            pos[v as usize] = cursor[d];
            cursor[d] += 1;
        }
    }

    let mut coreness = vec![0u32; n];
    for i in 0..n {
        let v = order[i];
        coreness[v as usize] = degree[v as usize];
        for &u in g.out_neighbors(v) {
            if degree[u as usize] > degree[v as usize] {
                // Move u one bucket down: swap it with the first entry of
                // its bucket, then shrink the bucket.
                let du = degree[u as usize] as usize;
                let first = bucket_start[du];
                let first_v = order[first];
                let pu = pos[u as usize];
                order.swap(first, pu);
                pos[u as usize] = first;
                pos[first_v as usize] = pu;
                bucket_start[du] += 1;
                degree[u as usize] -= 1;
            }
        }
    }
    coreness
}

#[cfg(test)]
mod tests {
    use super::*;
    use ligra_graph::generators::rmat::RmatOptions;
    use ligra_graph::generators::{complete, cycle, erdos_renyi, grid3d, path, rmat, star};
    use ligra_graph::{build_graph, BuildOptions};

    fn check(g: &Graph) {
        let par = kcore(g);
        let seq = seq_kcore(g);
        assert_eq!(par.coreness, seq);
    }

    #[test]
    fn path_is_1_core() {
        let r = kcore(&path(10));
        assert!(r.coreness.iter().all(|&c| c == 1));
        assert_eq!(r.max_core, 1);
    }

    #[test]
    fn cycle_is_2_core() {
        let r = kcore(&cycle(10));
        assert!(r.coreness.iter().all(|&c| c == 2));
    }

    #[test]
    fn complete_graph_core_is_n_minus_1() {
        let r = kcore(&complete(7));
        assert!(r.coreness.iter().all(|&c| c == 6));
        assert_eq!(r.max_core, 6);
    }

    #[test]
    fn star_leaves_are_1_core() {
        let r = kcore(&star(20));
        assert_eq!(r.coreness[0], 1); // hub falls when all leaves are gone
        assert!((1..20).all(|v| r.coreness[v] == 1));
    }

    #[test]
    fn triangle_with_tail() {
        // Triangle {0,1,2} plus tail 2-3-4: triangle is 2-core, tail 1-core.
        let g =
            build_graph(5, &[(0, 1), (1, 2), (0, 2), (2, 3), (3, 4)], BuildOptions::symmetric());
        let r = kcore(&g);
        assert_eq!(r.coreness, vec![2, 2, 2, 1, 1]);
        check(&g);
    }

    #[test]
    fn matches_bucket_peeling_on_generators() {
        check(&grid3d(5));
        check(&erdos_renyi(800, 4000, 3, true));
        check(&rmat(&RmatOptions::paper(10)));
        check(&erdos_renyi(500, 300, 9, true)); // sparse: isolated vertices
    }

    #[test]
    fn isolated_vertices_have_coreness_zero() {
        let g = build_graph(4, &[(0, 1)], BuildOptions::symmetric());
        let r = kcore(&g);
        assert_eq!(r.coreness, vec![1, 1, 0, 0]);
    }

    #[test]
    #[should_panic(expected = "symmetric")]
    fn directed_graph_rejected() {
        let g = build_graph(3, &[(0, 1)], BuildOptions::directed());
        let _ = kcore(&g);
    }
}
