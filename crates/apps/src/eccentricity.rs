//! Eccentricity estimation beyond the paper's Radii application —
//! the algorithms compared in Shun's KDD 2015 study ("An Evaluation of
//! Parallel Eccentricity Estimation Algorithms on Undirected Real-World
//! Graphs"), reproduced as extension experiments:
//!
//! * [`two_approx`] — the classic 2-approximation: one BFS per connected
//!   component from an arbitrary root `w`; every vertex `v` gets
//!   `max(d(w,v), ecc(w) − d(w,v))`, which is ≥ ecc(v)/2 and ≤ ecc(v).
//! * [`k_bfs_two_pass`] — the study's overall winner: one 64-way
//!   multi-BFS from a random sample (the paper's Radii), then a second
//!   64-way pass seeded from the vertices the first pass found to be
//!   most eccentric. Estimates only improve (they are maxima over real
//!   distances), and on small-diameter graphs the second pass usually
//!   closes most of the remaining gap to the true eccentricities.
//!
//! All estimates are *lower bounds* on the true eccentricity (they are
//! maxima of genuine shortest-path distances).

use crate::radii::{radii_from_sample, RadiiResult, SAMPLES, UNKNOWN_RADIUS};
use crate::seq::seq_bfs;
use ligra::EdgeMapOptions;
use ligra::TraversalStats;
use ligra_graph::Graph;
use ligra_parallel::checked_u32;

/// 2-approximation of all eccentricities: one BFS per component.
///
/// Returns per-vertex estimates `e` with `ecc(v)/2 ≤ e[v] ≤ ecc(v)`.
/// Isolated vertices get 0.
///
/// # Panics
/// Panics if `g` is not symmetric (eccentricity is an undirected notion
/// here, as in the study).
pub fn two_approx(g: &Graph) -> Vec<u32> {
    assert!(g.is_symmetric(), "eccentricity requires a symmetric graph");
    let n = g.num_vertices();
    let labels = crate::cc(g).label;
    let mut est = vec![0u32; n];

    // One BFS per component, rooted at the component's canonical (min-ID)
    // vertex. Components are processed one after another; each BFS is the
    // parallel frontier BFS.
    let mut seen = std::collections::HashSet::new();
    for v in 0..checked_u32(n) {
        let root = labels[v as usize];
        if !seen.insert(root) {
            continue;
        }
        let bfs = crate::bfs(g, root);
        let ecc_w = bfs.dist.iter().filter(|&&d| d != crate::UNREACHED).max().copied().unwrap_or(0);
        for (u, slot) in est.iter_mut().enumerate() {
            let d = bfs.dist[u];
            if d != crate::UNREACHED {
                *slot = d.max(ecc_w.saturating_sub(d));
            }
        }
    }
    est
}

/// Two-pass 64-way multi-BFS estimation (kBFS-2phase in the study).
///
/// Pass 1 runs the paper's Radii from a hash-random sample; pass 2 reruns
/// it from the `SAMPLES` vertices with the highest pass-1 estimates
/// (distinct, ties broken by ID). The result is the pointwise maximum.
pub fn k_bfs_two_pass(g: &Graph, seed: u64) -> RadiiResult {
    let n = g.num_vertices();
    assert!(n > 0, "empty graph");
    let first = crate::radii(g, seed);

    // Pick the most eccentric vertices found by pass 1 as pass-2 sources.
    let mut by_est: Vec<u32> =
        (0..checked_u32(n)).filter(|&v| first.radii[v as usize] != UNKNOWN_RADIUS).collect();
    by_est.sort_unstable_by_key(|&v| (std::cmp::Reverse(first.radii[v as usize]), v));
    by_est.truncate(SAMPLES.min(n));
    if by_est.is_empty() {
        return first;
    }

    let mut stats = TraversalStats::new();
    let second = radii_from_sample(g, by_est, EdgeMapOptions::default(), &mut stats);

    // Pointwise maximum of the two lower bounds.
    let radii: Vec<u32> = (0..n)
        .map(|v| {
            let a = first.radii[v];
            let b = second.radii[v];
            match (a == UNKNOWN_RADIUS, b == UNKNOWN_RADIUS) {
                (true, true) => UNKNOWN_RADIUS,
                (true, false) => b,
                (false, true) => a,
                (false, false) => a.max(b),
            }
        })
        .collect();
    RadiiResult { radii, sample: second.sample, rounds: first.rounds + second.rounds }
}

/// Exact eccentricities by one BFS per vertex — O(nm), small graphs only;
/// the ground truth the study measures estimators against.
pub fn exact(g: &Graph) -> Vec<u32> {
    assert!(g.is_symmetric());
    let n = g.num_vertices();
    (0..checked_u32(n))
        .map(|v| {
            let (dist, _) = seq_bfs(g, v);
            dist.into_iter().filter(|&d| d != crate::UNREACHED).max().unwrap_or(0)
        })
        .collect()
}

/// Mean relative error of `estimate` against `truth`, ignoring isolated
/// vertices (truth 0). Estimates are lower bounds, so this is in [0, 1].
pub fn mean_relative_error(estimate: &[u32], truth: &[u32]) -> f64 {
    let mut total = 0.0;
    let mut count = 0usize;
    for (e, t) in estimate.iter().zip(truth) {
        if *t > 0 {
            let e = if *e == UNKNOWN_RADIUS { 0 } else { *e };
            total += (*t as f64 - e as f64) / *t as f64;
            count += 1;
        }
    }
    if count == 0 {
        0.0
    } else {
        total / count as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ligra_graph::generators::rmat::RmatOptions;
    use ligra_graph::generators::{cycle, grid3d, path, random_local, rmat, star};
    use ligra_graph::{build_graph, BuildOptions};

    fn assert_lower_bound_and_half(g: &Graph) {
        let truth = exact(g);
        let est = two_approx(g);
        for v in 0..g.num_vertices() {
            assert!(est[v] <= truth[v], "estimate above truth at {v}");
            assert!(2 * est[v] >= truth[v], "worse than 2-approx at {v}");
        }
    }

    #[test]
    fn two_approx_bounds_hold() {
        assert_lower_bound_and_half(&path(30));
        assert_lower_bound_and_half(&cycle(24));
        assert_lower_bound_and_half(&star(20));
        assert_lower_bound_and_half(&grid3d(4));
        assert_lower_bound_and_half(&random_local(500, 4, 1));
    }

    #[test]
    fn two_approx_handles_multiple_components() {
        let g =
            build_graph(7, &[(0, 1), (1, 2), (3, 4), (4, 5), (5, 6)], BuildOptions::symmetric());
        let est = two_approx(&g);
        let truth = exact(&g);
        for v in 0..7 {
            assert!(est[v] <= truth[v] && 2 * est[v] >= truth[v], "vertex {v}");
        }
    }

    #[test]
    fn two_pass_is_a_lower_bound_and_improves_on_one_pass() {
        for g in [random_local(1500, 5, 3), rmat(&RmatOptions::paper(9)), grid3d(5)] {
            let truth = exact(&g);
            let one = crate::radii(&g, 11);
            let two = k_bfs_two_pass(&g, 11);
            for (v, &tv) in truth.iter().enumerate() {
                let t = two.radii[v];
                let o = one.radii[v];
                if t != UNKNOWN_RADIUS {
                    assert!(t <= tv, "vertex {v}: {t} > true ecc {tv}");
                }
                if o != UNKNOWN_RADIUS {
                    assert!(t != UNKNOWN_RADIUS && t >= o, "pass 2 regressed at {v}");
                }
            }
            let e1 = mean_relative_error(&one.radii, &truth);
            let e2 = mean_relative_error(&two.radii, &truth);
            assert!(e2 <= e1 + 1e-12, "two-pass error {e2} worse than one-pass {e1}");
        }
    }

    #[test]
    fn two_pass_is_exact_when_n_below_sample_size() {
        // With n <= 64 every vertex is a source: estimates are exact.
        let g = path(40);
        let truth = exact(&g);
        let two = k_bfs_two_pass(&g, 5);
        assert_eq!(two.radii, truth);
    }

    #[test]
    fn mean_relative_error_basics() {
        assert_eq!(mean_relative_error(&[5, 5], &[10, 5]), 0.25);
        assert_eq!(mean_relative_error(&[], &[]), 0.0);
        assert_eq!(mean_relative_error(&[0], &[0]), 0.0); // isolated ignored
    }

    #[test]
    #[should_panic(expected = "symmetric")]
    fn directed_graph_rejected() {
        let g = build_graph(3, &[(0, 1)], BuildOptions::directed());
        let _ = two_approx(&g);
    }
}
