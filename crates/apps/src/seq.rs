//! Sequential reference implementations.
//!
//! Textbook single-threaded algorithms used (a) as ground truth in the
//! test suite and (b) as honest single-thread baselines for the Table 2
//! harness — the paper's "(1)" columns are plain sequential codes, not the
//! parallel codes pinned to one thread.

use ligra_graph::{Graph, VertexId, WeightedGraph};
use ligra_parallel::checked_u32;
use std::collections::VecDeque;

/// Unreached marker for BFS distances/parents.
pub const UNREACHED: u32 = u32::MAX;

/// Sequential BFS: returns `(dist, parent)` arrays.
pub fn seq_bfs(g: &Graph, source: VertexId) -> (Vec<u32>, Vec<u32>) {
    let n = g.num_vertices();
    let mut dist = vec![UNREACHED; n];
    let mut parent = vec![UNREACHED; n];
    let mut queue = VecDeque::new();
    dist[source as usize] = 0;
    parent[source as usize] = source;
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        let du = dist[u as usize];
        for &v in g.out_neighbors(u) {
            if dist[v as usize] == UNREACHED {
                dist[v as usize] = du + 1;
                parent[v as usize] = u;
                queue.push_back(v);
            }
        }
    }
    (dist, parent)
}

/// Sequential connected components by union-find with path compression
/// and union by smaller root ID, relabeled so each vertex gets the minimum
/// vertex ID of its component (the same canonical labeling the parallel
/// algorithm converges to).
pub fn seq_cc(g: &Graph) -> Vec<u32> {
    let n = g.num_vertices();
    let mut uf: Vec<u32> = (0..checked_u32(n)).collect();

    fn find(uf: &mut [u32], mut x: u32) -> u32 {
        while uf[x as usize] != x {
            let gp = uf[uf[x as usize] as usize];
            uf[x as usize] = gp;
            x = gp;
        }
        x
    }

    for u in 0..checked_u32(n) {
        for &v in g.out_neighbors(u) {
            let ru = find(&mut uf, u);
            let rv = find(&mut uf, v);
            if ru != rv {
                // Union by smaller ID keeps the min-ID root invariant.
                if ru < rv {
                    uf[rv as usize] = ru;
                } else {
                    uf[ru as usize] = rv;
                }
            }
        }
    }
    (0..checked_u32(n)).map(|v| find(&mut uf, v)).collect()
}

/// Sequential PageRank with the paper's update rule (uniform start,
/// damping `alpha`, **no** dangling-mass redistribution, matching the
/// original Ligra's `PageRank.C`). Stops when the L1 change drops below
/// `eps` or after `max_iters` iterations. Returns `(ranks, iterations)`.
pub fn seq_pagerank(g: &Graph, alpha: f64, eps: f64, max_iters: usize) -> (Vec<f64>, usize) {
    let n = g.num_vertices();
    let mut p = vec![1.0 / n as f64; n];
    let mut next = vec![0.0f64; n];
    let base = (1.0 - alpha) / n as f64;
    for iter in 1..=max_iters {
        next.iter_mut().for_each(|x| *x = 0.0);
        for u in 0..checked_u32(n) {
            let deg = g.out_degree(u);
            if deg > 0 {
                let share = p[u as usize] / deg as f64;
                for &v in g.out_neighbors(u) {
                    next[v as usize] += share;
                }
            }
        }
        let mut err = 0.0;
        for v in 0..n {
            next[v] = base + alpha * next[v];
            err += (next[v] - p[v]).abs();
        }
        std::mem::swap(&mut p, &mut next);
        if err < eps {
            return (p, iter);
        }
    }
    (p, max_iters)
}

/// Sequential Bellman–Ford. Returns `None` when a negative cycle is
/// reachable from the source, otherwise the distance array
/// (`i64::MAX` = unreachable).
pub fn seq_bellman_ford(g: &WeightedGraph, source: VertexId) -> Option<Vec<i64>> {
    let n = g.num_vertices();
    let mut dist = vec![i64::MAX; n];
    dist[source as usize] = 0;
    for round in 0..n {
        let mut changed = false;
        for u in 0..checked_u32(n) {
            let du = dist[u as usize];
            if du == i64::MAX {
                continue;
            }
            let ns = g.out_neighbors(u);
            let ws = g.out_weights(u);
            for (i, &v) in ns.iter().enumerate() {
                let nd = du + ws[i] as i64;
                if nd < dist[v as usize] {
                    dist[v as usize] = nd;
                    changed = true;
                }
            }
        }
        if !changed {
            return Some(dist);
        }
        if round == n - 1 {
            return None; // still relaxing after n rounds: negative cycle
        }
    }
    Some(dist)
}

/// Sequential Brandes betweenness from one source (unweighted): returns
/// the dependency scores `delta[v]` for all `v` (the contribution of
/// shortest paths from `source` to each vertex's betweenness).
pub fn seq_brandes(g: &Graph, source: VertexId) -> Vec<f64> {
    let n = g.num_vertices();
    let mut sigma = vec![0.0f64; n];
    let mut dist = vec![UNREACHED; n];
    let mut order: Vec<u32> = Vec::with_capacity(n);
    let mut queue = VecDeque::new();

    sigma[source as usize] = 1.0;
    dist[source as usize] = 0;
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        order.push(u);
        let du = dist[u as usize];
        for &v in g.out_neighbors(u) {
            if dist[v as usize] == UNREACHED {
                dist[v as usize] = du + 1;
                queue.push_back(v);
            }
            if dist[v as usize] == du + 1 {
                sigma[v as usize] += sigma[u as usize];
            }
        }
    }

    let mut delta = vec![0.0f64; n];
    for &u in order.iter().rev() {
        let du = dist[u as usize];
        for &v in g.out_neighbors(u) {
            if dist[v as usize] == du + 1 {
                delta[u as usize] +=
                    sigma[u as usize] / sigma[v as usize] * (1.0 + delta[v as usize]);
            }
        }
    }
    delta
}

/// Exact eccentricity of every vertex by one BFS per vertex — O(nm);
/// small graphs only. Unreachable pairs are ignored (per-component
/// eccentricity), matching what the sampled radii estimate converges to
/// when the sample covers each component. Isolated vertices get 0.
pub fn seq_eccentricities(g: &Graph) -> Vec<u32> {
    let n = g.num_vertices();
    (0..checked_u32(n))
        .map(|v| {
            let (dist, _) = seq_bfs(g, v);
            dist.iter().filter(|&&d| d != UNREACHED).max().copied().unwrap_or(0)
        })
        .collect()
}

/// Maximum finite BFS distance from `source` to any vertex of `g`.
pub fn seq_max_distance(g: &Graph, source: VertexId) -> u32 {
    let (dist, _) = seq_bfs(g, source);
    dist.into_iter().filter(|&d| d != UNREACHED).max().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ligra_graph::generators::random_weights;
    use ligra_graph::generators::{cycle, path, star};
    use ligra_graph::{build_graph, build_weighted_graph, BuildOptions};

    #[test]
    fn seq_bfs_on_path() {
        let g = path(5);
        let (dist, parent) = seq_bfs(&g, 0);
        assert_eq!(dist, vec![0, 1, 2, 3, 4]);
        assert_eq!(parent, vec![0, 0, 1, 2, 3]);
    }

    #[test]
    fn seq_cc_labels_are_component_minima() {
        let g = build_graph(6, &[(5, 4), (4, 3), (0, 1)], BuildOptions::symmetric());
        assert_eq!(seq_cc(&g), vec![0, 0, 2, 3, 3, 3]);
    }

    #[test]
    fn seq_pagerank_sums_below_one_without_dangling_fix() {
        // Star with directed edges 0 -> i: leaves are dangling, so total
        // mass leaks (Ligra semantics).
        let edges: Vec<(u32, u32)> = (1..5).map(|i| (0, i)).collect();
        let g = build_graph(5, &edges, BuildOptions::directed());
        let (p, _) = seq_pagerank(&g, 0.85, 1e-12, 100);
        let total: f64 = p.iter().sum();
        assert!(total < 1.0);
        assert!(p[1] > p[0], "leaves receive rank from the hub");
    }

    #[test]
    fn seq_pagerank_uniform_on_cycle() {
        let g = cycle(10);
        let (p, iters) = seq_pagerank(&g, 0.85, 1e-12, 200);
        assert!(iters < 200);
        for &x in &p {
            assert!((x - 0.1).abs() < 1e-9, "cycle PageRank must be uniform, got {x}");
        }
    }

    #[test]
    fn seq_bellman_ford_simple() {
        let g = build_weighted_graph(
            4,
            &[(0, 1), (1, 2), (0, 2), (2, 3)],
            &[1, 1, 5, 2],
            BuildOptions::directed(),
        );
        let d = seq_bellman_ford(&g, 0).unwrap();
        assert_eq!(d, vec![0, 1, 2, 4]);
    }

    #[test]
    fn seq_bellman_ford_negative_edge_ok_cycle_detected() {
        let ok = build_weighted_graph(3, &[(0, 1), (1, 2)], &[-5, 2], BuildOptions::directed());
        assert_eq!(seq_bellman_ford(&ok, 0).unwrap(), vec![0, -5, -3]);

        let neg = build_weighted_graph(
            3,
            &[(0, 1), (1, 2), (2, 0)],
            &[1, -3, 1],
            BuildOptions::directed(),
        );
        assert!(seq_bellman_ford(&neg, 0).is_none());
    }

    #[test]
    fn seq_brandes_on_path() {
        // Path 0-1-2-3: from source 0, delta[1] counts paths through it
        // to 2 and 3 => 2; delta[2] => 1; delta[3] => 0.
        let g = path(4);
        let d = seq_brandes(&g, 0);
        assert_eq!(d, vec![3.0, 2.0, 1.0, 0.0]);
    }

    #[test]
    fn seq_eccentricities_of_star_and_path() {
        assert_eq!(seq_eccentricities(&star(5)), vec![1, 2, 2, 2, 2]);
        assert_eq!(seq_eccentricities(&path(4)), vec![3, 2, 2, 3]);
    }

    #[test]
    fn random_weights_dont_break_reference_sssp() {
        let g = random_weights(&cycle(12), 9, 3);
        let d = seq_bellman_ford(&g, 0).unwrap();
        assert_eq!(d[0], 0);
        assert!(d.iter().all(|&x| x != i64::MAX));
    }
}
