//! Connected components by label propagation (the paper's `Components`).
//!
//! Every vertex starts with its own ID as label; each round, every edge
//! out of the frontier pushes the smaller label to the larger side with
//! `writeMin` (a priority update), and a vertex enters the next frontier
//! the first time its label shrinks in a round. Converges when no label
//! changes. On a symmetric graph the fixed point is: every vertex labeled
//! with the minimum vertex ID of its component.

use ligra::{
    edge_map_recorded, vertex_map_recorded, EdgeMapFn, EdgeMapOptions, NoopRecorder, Recorder,
    VertexSubset,
};
use ligra_graph::{Graph, VertexId};
use ligra_parallel::atomics::write_min_u32;
use ligra_parallel::checked_u32;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU32, Ordering};

/// Output of [`cc`].
#[derive(Debug, Clone)]
pub struct CcResult {
    /// Component label of each vertex — the minimum vertex ID in its
    /// component.
    pub label: Vec<u32>,
    /// Number of label-propagation rounds until convergence.
    pub rounds: usize,
}

impl CcResult {
    /// Number of distinct components.
    pub fn num_components(&self) -> usize {
        let mut set: Vec<u32> = self.label.clone();
        set.sort_unstable();
        set.dedup();
        set.len()
    }

    /// Sizes of components keyed by label.
    pub fn component_sizes(&self) -> HashMap<u32, usize> {
        let mut sizes = HashMap::new();
        for &l in &self.label {
            *sizes.entry(l).or_insert(0) += 1;
        }
        sizes
    }

    /// Size of the largest component.
    pub fn largest_component(&self) -> usize {
        self.component_sizes().values().copied().max().unwrap_or(0)
    }
}

/// The paper's `CC_F`: push the smaller ID across each edge; a vertex
/// joins the output the first time its ID changes within the round
/// (detected by comparing against `prev_ids`, the snapshot taken at the
/// start of the round).
struct CcF<'a> {
    ids: &'a [AtomicU32],
    prev_ids: &'a [AtomicU32],
}

impl EdgeMapFn for CcF<'_> {
    #[inline]
    fn update(&self, src: VertexId, dst: VertexId, _w: ()) -> bool {
        let src_id = self.ids[src as usize].load(Ordering::Relaxed);
        let slot = &self.ids[dst as usize];
        let orig = slot.load(Ordering::Relaxed);
        if src_id < orig {
            slot.store(src_id, Ordering::Relaxed);
            orig == self.prev_ids[dst as usize].load(Ordering::Relaxed)
        } else {
            false
        }
    }

    #[inline]
    fn update_atomic(&self, src: VertexId, dst: VertexId, _w: ()) -> bool {
        let src_id = self.ids[src as usize].load(Ordering::Relaxed);
        let slot = &self.ids[dst as usize];
        let orig = slot.load(Ordering::Relaxed);
        write_min_u32(slot, src_id) && orig == self.prev_ids[dst as usize].load(Ordering::Relaxed)
    }
}

/// Parallel connected components with default options.
///
/// # Panics
/// Panics if `g` is not symmetric — label propagation computes *undirected*
/// connectivity; symmetrize directed graphs first (as the paper does).
pub fn cc(g: &Graph) -> CcResult {
    cc_traced(g, EdgeMapOptions::default(), &mut NoopRecorder)
}

/// Parallel connected components recording per-round statistics.
pub fn cc_traced<R: Recorder>(g: &Graph, opts: EdgeMapOptions, stats: &mut R) -> CcResult {
    assert!(g.is_symmetric(), "connected components requires a symmetric graph; symmetrize first");
    let n = g.num_vertices();
    let mut ids: Vec<u32> = (0..checked_u32(n)).collect();
    let mut prev_ids: Vec<u32> = (0..checked_u32(n)).collect();
    let mut rounds = 0usize;
    {
        let ids = ligra_parallel::atomics::as_atomic_u32(&mut ids);
        let prev = ligra_parallel::atomics::as_atomic_u32(&mut prev_ids);
        let f = CcF { ids, prev_ids: prev };
        let mut frontier = VertexSubset::all(n);
        while !frontier.is_empty() {
            // Snapshot labels of the active vertices (paper's CC_Vertex_F).
            vertex_map_recorded(
                &frontier,
                |v| {
                    prev[v as usize]
                        .store(ids[v as usize].load(Ordering::Relaxed), Ordering::Relaxed);
                },
                stats,
            );
            frontier = edge_map_recorded(g, &mut frontier, &f, opts, stats);
            rounds += 1;
        }
    }
    CcResult { label: ids, rounds }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq::seq_cc;
    use ligra::Traversal;
    use ligra::TraversalStats;
    use ligra_graph::generators::rmat::RmatOptions;
    use ligra_graph::generators::{cycle, erdos_renyi, grid3d, path, random_local, rmat, star};
    use ligra_graph::{build_graph, BuildOptions};

    fn check_against_seq(g: &Graph) {
        let par = cc(g);
        let seq = seq_cc(g);
        assert_eq!(par.label, seq, "labels differ from union-find reference");
    }

    #[test]
    fn single_component_families() {
        for g in [path(50), cycle(64), star(33), grid3d(4)] {
            let r = cc(&g);
            assert_eq!(r.num_components(), 1);
            assert!(r.label.iter().all(|&l| l == 0));
        }
    }

    #[test]
    fn two_components() {
        let g = build_graph(6, &[(0, 1), (1, 2), (3, 4), (4, 5)], BuildOptions::symmetric());
        let r = cc(&g);
        assert_eq!(r.label, vec![0, 0, 0, 3, 3, 3]);
        assert_eq!(r.num_components(), 2);
        assert_eq!(r.largest_component(), 3);
    }

    #[test]
    fn isolated_vertices_are_their_own_components() {
        let g = build_graph(4, &[(1, 2)], BuildOptions::symmetric());
        let r = cc(&g);
        assert_eq!(r.label, vec![0, 1, 1, 3]);
        assert_eq!(r.num_components(), 3);
    }

    #[test]
    fn matches_union_find_on_generators() {
        check_against_seq(&grid3d(5));
        check_against_seq(&random_local(2000, 4, 3));
        check_against_seq(&rmat(&RmatOptions::paper(10)));
        check_against_seq(&erdos_renyi(1500, 2500, 8, true));
        // Sparse ER below the connectivity threshold: many components.
        let g = erdos_renyi(2000, 900, 5, true);
        let r = cc(&g);
        assert!(r.num_components() > 100);
        check_against_seq(&g);
    }

    #[test]
    fn forced_traversals_agree() {
        let g = erdos_renyi(800, 6000, 2, true);
        let auto = cc(&g);
        for t in [Traversal::Sparse, Traversal::Dense, Traversal::DenseForward] {
            let mut stats = TraversalStats::new();
            let forced = cc_traced(&g, EdgeMapOptions::new().traversal(t), &mut stats);
            assert_eq!(forced.label, auto.label, "traversal {t:?}");
        }
    }

    #[test]
    fn rounds_bounded_by_diameter_plus_one() {
        // Label propagation converges in at most (min-ID eccentricity)
        // rounds per component + 1 empty round; on a path labels crawl.
        let g = path(20);
        let r = cc(&g);
        assert!(r.rounds <= 21, "rounds {}", r.rounds);
        assert_eq!(r.label, vec![0; 20]);
    }

    #[test]
    #[should_panic(expected = "symmetric")]
    fn directed_graph_is_rejected() {
        let g = build_graph(3, &[(0, 1)], BuildOptions::directed());
        let _ = cc(&g);
    }
}
