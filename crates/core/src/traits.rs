//! The user-function interface of `edgeMap`.
//!
//! Ligra's `EDGEMAP(G, U, F, C)` takes two user callbacks:
//!
//! * `F(u, v) -> bool` — process edge `(u, v)`; return `true` to put `v`
//!   in the output subset. The framework calls one of two variants:
//!   [`EdgeMapFn::update`] when it can guarantee `v` is touched by a
//!   single thread (the dense/pull traversal, where one thread owns each
//!   target), and [`EdgeMapFn::update_atomic`] when multiple sources may
//!   race on `v` (the sparse/push and dense-forward traversals).
//! * `C(v) -> bool` — "is `v` still worth updating?" The dense traversal
//!   breaks out of a target's in-edge scan as soon as `C(v)` turns false
//!   (e.g. BFS stops reading in-edges once a parent is found), which is
//!   where the pull direction's big constant-factor win comes from.

use ligra_graph::VertexId;

/// User function for [`crate::edge_map`] over graphs with edge data `W`
/// (`()` for unweighted graphs).
pub trait EdgeMapFn<W = ()>: Sync {
    /// Processes edge `(src, dst)`; single-threaded access to `dst`.
    ///
    /// Returns `true` to add `dst` to the output subset.
    fn update(&self, src: VertexId, dst: VertexId, w: W) -> bool;

    /// Processes edge `(src, dst)` when `dst` may be updated concurrently;
    /// must synchronize through atomics.
    ///
    /// Returns `true` to add `dst` to the output subset; for correctness
    /// under races it must return `true` for **at most one** concurrent
    /// update of the same `dst` per "win" (the CAS/priority-update idiom).
    fn update_atomic(&self, src: VertexId, dst: VertexId, w: W) -> bool;

    /// Whether `dst` should still be updated. Targets failing `cond` are
    /// skipped entirely, and the dense traversal stops scanning a target's
    /// in-edges once this turns false.
    fn cond(&self, dst: VertexId) -> bool {
        let _ = dst;
        true
    }
}

/// Adapter: a single atomic-safe closure used for both `update` variants,
/// plus an optional `cond`.
///
/// Most applications write their update once with atomics (it is then
/// trivially safe in the single-writer dense case too); this mirrors how
/// the Ligra paper presents BFS before introducing the optimized
/// non-atomic dense variants.
pub struct ClosureEdgeMap<FU, FC> {
    update: FU,
    cond: FC,
}

impl<FU, FC> ClosureEdgeMap<FU, FC> {
    /// Creates the adapter from an atomic-safe update and a cond.
    pub fn new(update: FU, cond: FC) -> Self {
        ClosureEdgeMap { update, cond }
    }
}

impl<W, FU, FC> EdgeMapFn<W> for ClosureEdgeMap<FU, FC>
where
    W: Copy,
    FU: Fn(VertexId, VertexId, W) -> bool + Sync,
    FC: Fn(VertexId) -> bool + Sync,
{
    #[inline]
    fn update(&self, src: VertexId, dst: VertexId, w: W) -> bool {
        (self.update)(src, dst, w)
    }

    #[inline]
    fn update_atomic(&self, src: VertexId, dst: VertexId, w: W) -> bool {
        (self.update)(src, dst, w)
    }

    #[inline]
    fn cond(&self, dst: VertexId) -> bool {
        (self.cond)(dst)
    }
}

/// Builds an [`EdgeMapFn`] from one atomic-safe closure and a cond closure.
pub fn edge_fn<W, FU, FC>(update: FU, cond: FC) -> ClosureEdgeMap<FU, FC>
where
    W: Copy,
    FU: Fn(VertexId, VertexId, W) -> bool + Sync,
    FC: Fn(VertexId) -> bool + Sync,
{
    ClosureEdgeMap::new(update, cond)
}

/// The always-true cond (`C_true` in the paper).
#[inline]
pub fn cond_true(_: VertexId) -> bool {
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closure_adapter_dispatches_both_variants() {
        let f = ClosureEdgeMap::new(|s: u32, d: u32, _w: ()| s < d, |d: u32| d != 3);
        assert!(EdgeMapFn::update(&f, 1, 2, ()));
        assert!(!EdgeMapFn::update_atomic(&f, 2, 1, ()));
        assert!(f.cond(2));
        assert!(!f.cond(3));
    }

    #[test]
    fn default_cond_is_true() {
        struct Always;
        impl EdgeMapFn for Always {
            fn update(&self, _: u32, _: u32, _: ()) -> bool {
                true
            }
            fn update_atomic(&self, _: u32, _: u32, _: ()) -> bool {
                true
            }
        }
        assert!(Always.cond(123));
    }
}
