//! `vertexSubset` — Ligra's frontier abstraction.
//!
//! A subset `U ⊆ V` with two interchangeable representations:
//!
//! * **Sparse** — an array of the member vertex IDs. Cheap to iterate when
//!   `|U| ≪ n`; the representation sparse `edgeMap` consumes and produces.
//! * **Dense** — a packed [`BitSet`] of `n` bits. O(1) membership tests;
//!   the representation the dense (pull) traversal consumes and produces.
//!   One bit per vertex means a full-frontier stream touches `n/8` bytes
//!   instead of the `n` a `Vec<bool>` would, and empty regions are skipped
//!   64 vertices per zero word.
//!
//! Conversions run in parallel (`pack_index_bits` one way, a blocked scatter
//! the other) and are performed lazily by `edgeMap` when the direction
//! heuristic picks the representation it doesn't have — precisely the
//! behaviour of the original system's `vertexSubset::toSparse`/`toDense`.
//! A sparse list that is known to be in ascending order (the common case:
//! every dense→sparse conversion produces one) is flagged, which makes
//! [`VertexSubset::contains`] a binary search instead of a linear scan and
//! lets `to_dense` scatter with plain (non-atomic) word writes.

use ligra_graph::VertexId;
use ligra_parallel::bitvec::BitSet;
use ligra_parallel::checked_u32;
use ligra_parallel::pack::pack_index_bits;

/// The two frontier representations.
#[derive(Debug, Clone)]
enum Repr {
    Sparse(Vec<VertexId>),
    Dense(BitSet),
}

/// A subset of the vertices `0..n`.
#[derive(Debug, Clone)]
pub struct VertexSubset {
    n: usize,
    len: usize,
    /// True iff a sparse representation is known to be in ascending order.
    /// (Meaningless while dense — the bitset is inherently ordered.)
    sorted: bool,
    repr: Repr,
}

impl VertexSubset {
    /// The empty subset of a graph with `n` vertices.
    pub fn empty(n: usize) -> Self {
        VertexSubset { n, len: 0, sorted: true, repr: Repr::Sparse(Vec::new()) }
    }

    /// The singleton `{v}`.
    ///
    /// # Panics
    /// Panics if `v >= n`.
    pub fn single(n: usize, v: VertexId) -> Self {
        assert!((v as usize) < n, "vertex {v} out of range (n = {n})");
        VertexSubset { n, len: 1, sorted: true, repr: Repr::Sparse(vec![v]) }
    }

    /// The full vertex set `0..n` (dense).
    pub fn all(n: usize) -> Self {
        VertexSubset { n, len: n, sorted: true, repr: Repr::Dense(BitSet::full(n)) }
    }

    /// Builds a sparse subset from a list of member IDs.
    ///
    /// Callers must not pass duplicates — `len()` counts entries. (Debug
    /// builds verify membership range; duplicates are the caller's
    /// contract, as in the original system.) An ascending list is detected
    /// here once, unlocking binary-search `contains` and the non-atomic
    /// dense conversion.
    pub fn from_sparse(n: usize, mut vs: Vec<VertexId>) -> Self {
        debug_assert!(vs.iter().all(|&v| (v as usize) < n));
        vs.shrink_to_fit();
        let len = vs.len();
        let sorted = vs.is_sorted();
        VertexSubset { n, len, sorted, repr: Repr::Sparse(vs) }
    }

    /// Builds a dense subset from a boolean membership array.
    ///
    /// # Panics
    /// Panics if `flags.len() != n`.
    pub fn from_dense(n: usize, flags: Vec<bool>) -> Self {
        assert_eq!(flags.len(), n, "dense representation must have length n");
        VertexSubset::from_bitset(n, BitSet::from_bools(&flags))
    }

    /// Builds a dense subset directly from a packed bit set.
    ///
    /// # Panics
    /// Panics if `bits.len() != n`.
    pub fn from_bitset(n: usize, bits: BitSet) -> Self {
        assert_eq!(bits.len(), n, "dense representation must have length n");
        let len = bits.count_ones();
        VertexSubset { n, len, sorted: true, repr: Repr::Dense(bits) }
    }

    /// Builds the subset `{ v : pred(v) }` in parallel.
    pub fn from_fn(n: usize, pred: impl Fn(VertexId) -> bool + Sync) -> Self {
        VertexSubset::from_bitset(n, BitSet::from_fn(n, |v| pred(checked_u32(v))))
    }

    /// Size of the universe `n`.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Number of member vertices `|U|`.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True iff the subset is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// True iff the current representation is sparse.
    #[inline]
    pub fn is_sparse(&self) -> bool {
        matches!(self.repr, Repr::Sparse(_))
    }

    /// Membership test. O(1) dense, O(log |U|) sorted sparse, O(|U|) only
    /// for an unsorted sparse list.
    pub fn contains(&self, v: VertexId) -> bool {
        match &self.repr {
            Repr::Sparse(vs) if self.sorted => vs.binary_search(&v).is_ok(),
            Repr::Sparse(vs) => vs.contains(&v),
            Repr::Dense(bits) => bits.get(v as usize),
        }
    }

    /// Converts to the sparse representation (no-op if already sparse).
    pub fn to_sparse(&mut self) {
        if let Repr::Dense(bits) = &self.repr {
            let vs = pack_index_bits(bits);
            debug_assert_eq!(vs.len(), self.len);
            self.sorted = true;
            self.repr = Repr::Sparse(vs);
        }
    }

    /// Converts to the dense representation (no-op if already dense).
    ///
    /// A sorted sparse list scatters with plain word writes over disjoint
    /// blocks; only an unsorted list needs the atomic (`fetch_or`) path.
    pub fn to_dense(&mut self) {
        if let Repr::Sparse(vs) = &self.repr {
            self.repr = Repr::Dense(BitSet::from_ids(self.n, vs, self.sorted));
        }
    }

    /// The member IDs; converts to sparse first.
    pub fn as_slice(&mut self) -> &[VertexId] {
        self.to_sparse();
        match &self.repr {
            Repr::Sparse(vs) => vs,
            Repr::Dense(_) => unreachable!(),
        }
    }

    /// The packed membership bits; converts to dense first.
    pub fn as_bits(&mut self) -> &BitSet {
        self.to_dense();
        match &self.repr {
            Repr::Dense(bits) => bits,
            Repr::Sparse(_) => unreachable!(),
        }
    }

    /// The membership flags as one byte per vertex (test/debug adapter;
    /// the traversals consume [`VertexSubset::as_bits`]).
    pub fn to_bools(&self) -> Vec<bool> {
        match &self.repr {
            Repr::Dense(bits) => bits.to_bools(),
            Repr::Sparse(vs) => {
                let mut flags = vec![false; self.n];
                for &v in vs {
                    flags[v as usize] = true;
                }
                flags
            }
        }
    }

    /// The member IDs if currently sparse.
    pub fn sparse(&self) -> Option<&[VertexId]> {
        match &self.repr {
            Repr::Sparse(vs) => Some(vs),
            Repr::Dense(_) => None,
        }
    }

    /// True iff currently sparse and the ID list is known to be ascending.
    #[inline]
    pub fn is_sorted_sparse(&self) -> bool {
        self.sorted && self.is_sparse()
    }

    /// The packed membership bits if currently dense.
    pub fn dense(&self) -> Option<&BitSet> {
        match &self.repr {
            Repr::Dense(bits) => Some(bits),
            Repr::Sparse(_) => None,
        }
    }

    /// Bytes the current representation occupies (sparse: 4 per entry;
    /// dense: the packed `n/8`). This is what a traversal streaming the
    /// frontier reads — the telemetry `frontier_bytes` field is built on it.
    pub fn repr_bytes(&self) -> u64 {
        match &self.repr {
            Repr::Sparse(vs) => 4 * vs.len() as u64,
            Repr::Dense(bits) => bits.bytes() as u64,
        }
    }

    /// Member IDs in ascending order (for tests/reporting; converts a copy).
    pub fn to_vec_sorted(&self) -> Vec<VertexId> {
        match &self.repr {
            Repr::Sparse(vs) if self.sorted => vs.clone(),
            Repr::Sparse(vs) => {
                let mut vs = vs.clone();
                vs.sort_unstable();
                vs
            }
            Repr::Dense(bits) => pack_index_bits(bits),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_single() {
        let e = VertexSubset::empty(10);
        assert!(e.is_empty());
        assert_eq!(e.len(), 0);
        let s = VertexSubset::single(10, 3);
        assert_eq!(s.len(), 1);
        assert!(s.contains(3));
        assert!(!s.contains(4));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn single_out_of_range_panics() {
        let _ = VertexSubset::single(3, 3);
    }

    #[test]
    fn all_contains_everything() {
        let a = VertexSubset::all(5);
        assert_eq!(a.len(), 5);
        assert!((0..5u32).all(|v| a.contains(v)));
    }

    #[test]
    fn dense_sparse_roundtrip() {
        let n = 1000;
        let mut s = VertexSubset::from_fn(n, |v| v.is_multiple_of(7));
        let expect: Vec<u32> = (0..n as u32).filter(|v| v.is_multiple_of(7)).collect();
        assert_eq!(s.len(), expect.len());
        assert_eq!(s.as_slice(), &expect[..]);
        s.to_dense();
        assert!(!s.is_sparse());
        assert_eq!(s.len(), expect.len());
        assert_eq!(s.to_vec_sorted(), expect);
        s.to_sparse();
        assert!(s.is_sparse());
        assert_eq!(s.to_vec_sorted(), expect);
    }

    #[test]
    fn from_dense_counts_members() {
        let flags = vec![true, false, true, true];
        let s = VertexSubset::from_dense(4, flags);
        assert_eq!(s.len(), 3);
    }

    #[test]
    #[should_panic(expected = "length n")]
    fn from_dense_wrong_length_panics() {
        let _ = VertexSubset::from_dense(3, vec![true]);
    }

    #[test]
    fn conversions_preserve_len_on_large_random_sets() {
        let n = 100_000;
        let mut s = VertexSubset::from_fn(n, |v| ligra_parallel::hash32(v).is_multiple_of(3));
        let len = s.len();
        s.to_sparse();
        assert_eq!(s.len(), len);
        assert_eq!(s.as_slice().len(), len);
        s.to_dense();
        assert_eq!(s.len(), len);
        assert_eq!(s.as_bits().count_ones(), len);
    }

    #[test]
    fn to_bools_of_sparse() {
        let s = VertexSubset::from_sparse(6, vec![1, 4]);
        assert_eq!(s.to_bools(), &[false, true, false, false, true, false]);
    }

    #[test]
    fn contains_on_sorted_and_unsorted_sparse() {
        // Sorted list: binary-search path.
        let s = VertexSubset::from_sparse(100, vec![3, 17, 41, 99]);
        assert!(s.is_sorted_sparse());
        for v in 0..100u32 {
            assert_eq!(s.contains(v), [3, 17, 41, 99].contains(&v), "v={v}");
        }
        // Unsorted list: linear-scan fallback, same answers.
        let u = VertexSubset::from_sparse(100, vec![99, 3, 41, 17]);
        assert!(!u.is_sorted_sparse());
        for v in 0..100u32 {
            assert_eq!(u.contains(v), s.contains(v), "v={v}");
        }
    }

    #[test]
    fn to_dense_of_unsorted_sparse() {
        let mut u = VertexSubset::from_sparse(200, vec![150, 3, 64, 63]);
        u.to_dense();
        assert_eq!(u.to_vec_sorted(), vec![3, 63, 64, 150]);
    }

    #[test]
    fn repr_bytes_tracks_representation() {
        let mut s = VertexSubset::from_sparse(640, vec![1, 2, 3]);
        assert_eq!(s.repr_bytes(), 12, "sparse: 4 bytes per entry");
        s.to_dense();
        assert_eq!(s.repr_bytes(), 80, "dense: n/8 bytes packed");
    }

    #[test]
    fn from_bitset_counts_members() {
        let mut bits = BitSet::new(70);
        bits.set(0);
        bits.set(69);
        let s = VertexSubset::from_bitset(70, bits);
        assert_eq!(s.len(), 2);
        assert_eq!(s.to_vec_sorted(), vec![0, 69]);
    }
}
