//! `vertexSubset` — Ligra's frontier abstraction.
//!
//! A subset `U ⊆ V` with two interchangeable representations:
//!
//! * **Sparse** — an array of the member vertex IDs. Cheap to iterate when
//!   `|U| ≪ n`; the representation sparse `edgeMap` consumes and produces.
//! * **Dense** — a boolean array of length `n`. O(1) membership tests; the
//!   representation the dense (pull) traversal consumes and produces.
//!
//! Conversions run in parallel (`pack_index` one way, a scatter the other)
//! and are performed lazily by `edgeMap` when the direction heuristic picks
//! the representation it doesn't have — precisely the behaviour of the
//! original system's `vertexSubset::toSparse`/`toDense`.

use ligra_graph::VertexId;
use ligra_parallel::pack::pack_index;
use rayon::prelude::*;

/// The two frontier representations.
#[derive(Debug, Clone)]
enum Repr {
    Sparse(Vec<VertexId>),
    Dense(Vec<bool>),
}

/// A subset of the vertices `0..n`.
#[derive(Debug, Clone)]
pub struct VertexSubset {
    n: usize,
    len: usize,
    repr: Repr,
}

impl VertexSubset {
    /// The empty subset of a graph with `n` vertices.
    pub fn empty(n: usize) -> Self {
        VertexSubset { n, len: 0, repr: Repr::Sparse(Vec::new()) }
    }

    /// The singleton `{v}`.
    ///
    /// # Panics
    /// Panics if `v >= n`.
    pub fn single(n: usize, v: VertexId) -> Self {
        assert!((v as usize) < n, "vertex {v} out of range (n = {n})");
        VertexSubset { n, len: 1, repr: Repr::Sparse(vec![v]) }
    }

    /// The full vertex set `0..n` (dense).
    pub fn all(n: usize) -> Self {
        VertexSubset { n, len: n, repr: Repr::Dense(vec![true; n]) }
    }

    /// Builds a sparse subset from a list of member IDs.
    ///
    /// Callers must not pass duplicates — `len()` counts entries. (Debug
    /// builds verify membership range; duplicates are the caller's
    /// contract, as in the original system.)
    pub fn from_sparse(n: usize, mut vs: Vec<VertexId>) -> Self {
        debug_assert!(vs.iter().all(|&v| (v as usize) < n));
        vs.shrink_to_fit();
        let len = vs.len();
        VertexSubset { n, len, repr: Repr::Sparse(vs) }
    }

    /// Builds a dense subset from a boolean membership array.
    ///
    /// # Panics
    /// Panics if `flags.len() != n`.
    pub fn from_dense(n: usize, flags: Vec<bool>) -> Self {
        assert_eq!(flags.len(), n, "dense representation must have length n");
        let len = flags.par_iter().filter(|&&b| b).count();
        VertexSubset { n, len, repr: Repr::Dense(flags) }
    }

    /// Builds the subset `{ v : pred(v) }` in parallel.
    pub fn from_fn(n: usize, pred: impl Fn(VertexId) -> bool + Sync) -> Self {
        let flags: Vec<bool> = (0..n).into_par_iter().map(|v| pred(v as VertexId)).collect();
        VertexSubset::from_dense(n, flags)
    }

    /// Size of the universe `n`.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Number of member vertices `|U|`.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True iff the subset is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// True iff the current representation is sparse.
    #[inline]
    pub fn is_sparse(&self) -> bool {
        matches!(self.repr, Repr::Sparse(_))
    }

    /// Membership test. O(1) dense, O(|U|) sparse.
    pub fn contains(&self, v: VertexId) -> bool {
        match &self.repr {
            Repr::Sparse(vs) => vs.contains(&v),
            Repr::Dense(flags) => flags[v as usize],
        }
    }

    /// Converts to the sparse representation (no-op if already sparse).
    pub fn to_sparse(&mut self) {
        if let Repr::Dense(flags) = &self.repr {
            let vs = pack_index(flags);
            debug_assert_eq!(vs.len(), self.len);
            self.repr = Repr::Sparse(vs);
        }
    }

    /// Converts to the dense representation (no-op if already dense).
    pub fn to_dense(&mut self) {
        if let Repr::Sparse(vs) = &self.repr {
            let mut flags = vec![false; self.n];
            {
                let aflags = ligra_parallel::atomics::as_atomic_bool(&mut flags);
                vs.par_iter().for_each(|&v| {
                    aflags[v as usize].store(true, std::sync::atomic::Ordering::Relaxed);
                });
            }
            self.repr = Repr::Dense(flags);
        }
    }

    /// The member IDs; converts to sparse first.
    pub fn as_slice(&mut self) -> &[VertexId] {
        self.to_sparse();
        match &self.repr {
            Repr::Sparse(vs) => vs,
            Repr::Dense(_) => unreachable!(),
        }
    }

    /// The membership flags; converts to dense first.
    pub fn as_bools(&mut self) -> &[bool] {
        self.to_dense();
        match &self.repr {
            Repr::Dense(flags) => flags,
            Repr::Sparse(_) => unreachable!(),
        }
    }

    /// The member IDs if currently sparse.
    pub fn sparse(&self) -> Option<&[VertexId]> {
        match &self.repr {
            Repr::Sparse(vs) => Some(vs),
            Repr::Dense(_) => None,
        }
    }

    /// The membership flags if currently dense.
    pub fn dense(&self) -> Option<&[bool]> {
        match &self.repr {
            Repr::Dense(flags) => Some(flags),
            Repr::Sparse(_) => None,
        }
    }

    /// Member IDs in ascending order (for tests/reporting; converts a copy).
    pub fn to_vec_sorted(&self) -> Vec<VertexId> {
        let mut vs = match &self.repr {
            Repr::Sparse(vs) => vs.clone(),
            Repr::Dense(flags) => pack_index(flags),
        };
        vs.sort_unstable();
        vs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_single() {
        let e = VertexSubset::empty(10);
        assert!(e.is_empty());
        assert_eq!(e.len(), 0);
        let s = VertexSubset::single(10, 3);
        assert_eq!(s.len(), 1);
        assert!(s.contains(3));
        assert!(!s.contains(4));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn single_out_of_range_panics() {
        let _ = VertexSubset::single(3, 3);
    }

    #[test]
    fn all_contains_everything() {
        let a = VertexSubset::all(5);
        assert_eq!(a.len(), 5);
        assert!((0..5u32).all(|v| a.contains(v)));
    }

    #[test]
    fn dense_sparse_roundtrip() {
        let n = 1000;
        let mut s = VertexSubset::from_fn(n, |v| v.is_multiple_of(7));
        let expect: Vec<u32> = (0..n as u32).filter(|v| v.is_multiple_of(7)).collect();
        assert_eq!(s.len(), expect.len());
        assert_eq!(s.as_slice(), &expect[..]);
        s.to_dense();
        assert!(!s.is_sparse());
        assert_eq!(s.len(), expect.len());
        assert_eq!(s.to_vec_sorted(), expect);
        s.to_sparse();
        assert!(s.is_sparse());
        assert_eq!(s.to_vec_sorted(), expect);
    }

    #[test]
    fn from_dense_counts_members() {
        let flags = vec![true, false, true, true];
        let s = VertexSubset::from_dense(4, flags);
        assert_eq!(s.len(), 3);
    }

    #[test]
    #[should_panic(expected = "length n")]
    fn from_dense_wrong_length_panics() {
        let _ = VertexSubset::from_dense(3, vec![true]);
    }

    #[test]
    fn conversions_preserve_len_on_large_random_sets() {
        let n = 100_000;
        let mut s = VertexSubset::from_fn(n, |v| ligra_parallel::hash32(v).is_multiple_of(3));
        let len = s.len();
        s.to_sparse();
        assert_eq!(s.len(), len);
        assert_eq!(s.as_slice().len(), len);
        s.to_dense();
        assert_eq!(s.len(), len);
        assert_eq!(s.as_bools().iter().filter(|&&b| b).count(), len);
    }

    #[test]
    fn as_bools_of_sparse() {
        let mut s = VertexSubset::from_sparse(6, vec![1, 4]);
        assert_eq!(s.as_bools(), &[false, true, false, false, true, false]);
    }
}
