//! Shadow-state race oracle for `edgeMap` update functions.
//!
//! The paper's correctness contract (§3 of the Ligra paper) is implicit:
//! on the push traversals (sparse and dense-forward) many sources may
//! drive one target concurrently, so `update_atomic` must synchronize —
//! typically a CAS that lets at most one source "win" a target per
//! round. The pull traversal scans each target from exactly one task, so
//! plain `update` may use unsynchronized writes. Nothing in the type
//! system enforces either half of that contract; a plain-write `F`
//! driven through the push path is a silent data race.
//!
//! [`RaceOracle`] makes the contract checkable. With the `race-check`
//! cargo feature enabled, the traversal kernels record every update
//! attempt against per-target shadow cells:
//!
//! * **overlap evidence** — two in-flight attempts on one target prove
//!   the push path really did drive the target concurrently, i.e. the
//!   certification run actually exercised the contract;
//! * **win accounting** — under [`WinContract::Claim`] a second `true`
//!   return for one target in one round is a violation reported with
//!   *both* conflicting source vertices;
//! * **pull exclusivity** — on the dense(pull) path any concurrent pair
//!   of attempts on one target is a framework bug, independent of `F`.
//!
//! Without the feature the hooks compile away and `edgeMap` is
//! unchanged; the oracle type itself always exists so harnesses can be
//! written without `cfg` noise.

use crate::graph::VertexId;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Mutex;

/// How many times an update function may legitimately return `true`
/// ("win") for one target vertex within one `edgeMap` round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WinContract {
    /// At most one win per target per round — the CAS-claim discipline
    /// of BFS-style functions. A second win is reported as a race.
    Claim,
    /// Any number of wins per target per round — accumulate-style
    /// functions (PageRank's `fetch_add`, Bellman–Ford's repeated
    /// relaxations). Win counting is still recorded as evidence but
    /// never flagged.
    MultiWin,
}

/// What kind of contract breach a [`Violation`] records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ViolationKind {
    /// Two sources both won one target in one round under
    /// [`WinContract::Claim`].
    DoubleWin,
    /// Two attempts were in flight on one target on the dense(pull)
    /// path, which promises single-owner targets regardless of `F`.
    ExclusiveOverlap,
}

/// One recorded contract breach, naming both conflicting sources.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Violation {
    /// Which contract was breached.
    pub kind: ViolationKind,
    /// The contended target vertex.
    pub target: VertexId,
    /// The source that reached the target first (best-effort under
    /// contention; exact for [`ViolationKind::DoubleWin`]).
    pub first_src: VertexId,
    /// The source whose attempt exposed the breach.
    pub second_src: VertexId,
    /// 0-based `edgeMap` round (i.e. `begin_round` call count - 1).
    pub round: u32,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.kind {
            ViolationKind::DoubleWin => write!(
                f,
                "race-check: sources {} and {} both won target {} in round {} \
                 (WinContract::Claim allows one winner per target per round)",
                self.first_src, self.second_src, self.target, self.round
            ),
            ViolationKind::ExclusiveOverlap => write!(
                f,
                "race-check: sources {} and {} drove target {} concurrently in round {} \
                 on the dense(pull) path, which guarantees single-owner targets",
                self.first_src, self.second_src, self.target, self.round
            ),
        }
    }
}

/// Aggregate evidence from one certified run. Produced by
/// [`RaceOracle::report`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OracleReport {
    /// Rounds observed (`begin_round` calls).
    pub rounds: u32,
    /// Total update attempts that passed through the shadow protocol.
    pub attempts: u64,
    /// Attempts that returned `true`.
    pub wins: u64,
    /// Attempts that observed another attempt in flight on the same
    /// target — proof the run exercised real contention.
    pub overlaps: u64,
    /// Contract breaches, in detection order.
    pub violations: Vec<Violation>,
}

impl OracleReport {
    /// `true` when the run recorded no contract breach.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Per-target shadow recorder certifying `edgeMap` update functions.
/// See the [module docs](self) for the protocol.
pub struct RaceOracle {
    contract: WinContract,
    panic_on_violation: bool,
    /// Attempts currently in flight per target.
    inflight: Vec<AtomicU32>,
    /// Last source to enter each target (best-effort identification of
    /// the "other side" of an overlap).
    entrant: Vec<AtomicU32>,
    /// Wins per target in the current round.
    round_wins: Vec<AtomicU32>,
    /// First winning source per target in the current round.
    win_src: Vec<AtomicU32>,
    round: AtomicU32,
    attempts: AtomicU64,
    wins: AtomicU64,
    overlaps: AtomicU64,
    violations: Mutex<Vec<Violation>>,
}

impl std::fmt::Debug for RaceOracle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RaceOracle")
            .field("contract", &self.contract)
            .field("n", &self.inflight.len())
            .field("rounds", &self.round.load(Ordering::Relaxed))
            .field("attempts", &self.attempts.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl RaceOracle {
    /// An oracle over `n` vertices that panics at the first violation,
    /// naming both conflicting sources. This is the certification mode:
    /// a racy `F` fails the run immediately and loudly.
    pub fn new(n: usize, contract: WinContract) -> Self {
        Self::build(n, contract, true)
    }

    /// An oracle that records violations in [`RaceOracle::report`]
    /// instead of panicking — for negative tests that want to inspect
    /// the evidence.
    pub fn deferred(n: usize, contract: WinContract) -> Self {
        Self::build(n, contract, false)
    }

    fn build(n: usize, contract: WinContract, panic_on_violation: bool) -> Self {
        let zeroed = |v: u32| (0..n).map(|_| AtomicU32::new(v)).collect::<Vec<_>>();
        RaceOracle {
            contract,
            panic_on_violation,
            inflight: zeroed(0),
            entrant: zeroed(u32::MAX),
            round_wins: zeroed(0),
            win_src: zeroed(u32::MAX),
            round: AtomicU32::new(0),
            attempts: AtomicU64::new(0),
            wins: AtomicU64::new(0),
            overlaps: AtomicU64::new(0),
            violations: Mutex::new(Vec::new()),
        }
    }

    /// The win discipline this oracle enforces.
    pub fn contract(&self) -> WinContract {
        self.contract
    }

    /// Resets the per-round win ledger. `edge_map_with` calls this once
    /// per round before dispatching a traversal; harnesses driving the
    /// kernels directly must do the same.
    pub fn begin_round(&self) {
        for (w, s) in self.round_wins.iter().zip(&self.win_src) {
            w.store(0, Ordering::Relaxed);
            s.store(u32::MAX, Ordering::Relaxed);
        }
        self.round.fetch_add(1, Ordering::AcqRel);
    }

    /// Marks an `update_atomic(src, target, ..)` attempt as in flight on
    /// a push path. Must be paired with [`RaceOracle::exit_atomic`].
    #[inline]
    pub fn enter_atomic(&self, src: VertexId, target: VertexId) {
        let t = target as usize;
        self.attempts.fetch_add(1, Ordering::Relaxed);
        let prev = self.inflight[t].fetch_add(1, Ordering::AcqRel);
        if prev > 0 {
            self.overlaps.fetch_add(1, Ordering::Relaxed);
        }
        self.entrant[t].store(src, Ordering::Relaxed);
    }

    /// Completes a push-path attempt, recording whether `F` claimed the
    /// target. Under [`WinContract::Claim`], the second win for one
    /// target in one round is a violation carrying both sources.
    #[inline]
    pub fn exit_atomic(&self, src: VertexId, target: VertexId, won: bool) {
        let t = target as usize;
        if won {
            self.wins.fetch_add(1, Ordering::Relaxed);
            let prior = self.round_wins[t].fetch_add(1, Ordering::AcqRel);
            if prior == 0 {
                self.win_src[t].store(src, Ordering::Relaxed);
            } else if self.contract == WinContract::Claim {
                let first = self.win_src[t].load(Ordering::Relaxed);
                self.record(Violation {
                    kind: ViolationKind::DoubleWin,
                    target,
                    first_src: first,
                    second_src: src,
                    round: self.round.load(Ordering::Relaxed).saturating_sub(1),
                });
            }
        }
        self.inflight[t].fetch_sub(1, Ordering::AcqRel);
    }

    /// Marks a plain `update(src, target, ..)` as in flight on the
    /// dense(pull) path, where the framework promises each target is
    /// scanned by exactly one task. Any overlap here is a framework
    /// bug, reported regardless of the win contract. Pair with
    /// [`RaceOracle::exit_exclusive`].
    #[inline]
    pub fn enter_exclusive(&self, src: VertexId, target: VertexId) {
        let t = target as usize;
        self.attempts.fetch_add(1, Ordering::Relaxed);
        let prev = self.inflight[t].fetch_add(1, Ordering::AcqRel);
        if prev > 0 {
            self.overlaps.fetch_add(1, Ordering::Relaxed);
            let other = self.entrant[t].load(Ordering::Relaxed);
            self.record(Violation {
                kind: ViolationKind::ExclusiveOverlap,
                target,
                first_src: other,
                second_src: src,
                round: self.round.load(Ordering::Relaxed).saturating_sub(1),
            });
        }
        self.entrant[t].store(src, Ordering::Relaxed);
    }

    /// Completes a pull-path attempt. Wins are tallied under the same
    /// per-round ledger as the push paths.
    #[inline]
    pub fn exit_exclusive(&self, src: VertexId, target: VertexId, won: bool) {
        // Same ledger as the push path: a Claim function must not win a
        // target twice per round on any path.
        self.exit_atomic(src, target, won);
    }

    fn record(&self, v: Violation) {
        self.violations.lock().expect("race-oracle violation log poisoned").push(v);
        if self.panic_on_violation {
            panic!("{v}");
        }
    }

    /// Snapshot of the evidence gathered so far.
    pub fn report(&self) -> OracleReport {
        OracleReport {
            rounds: self.round.load(Ordering::Acquire),
            attempts: self.attempts.load(Ordering::Relaxed),
            wins: self.wins.load(Ordering::Relaxed),
            overlaps: self.overlaps.load(Ordering::Relaxed),
            violations: self.violations.lock().expect("race-oracle violation log poisoned").clone(),
        }
    }

    /// Certification check: `Ok(report)` when no violation was
    /// recorded, `Err` describing the first breach otherwise.
    pub fn certify(&self) -> Result<OracleReport, String> {
        let report = self.report();
        match report.violations.first() {
            None => Ok(report),
            Some(v) => Err(format!("{v} ({} violation(s) total)", report.violations.len())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn claim_single_winner_is_clean() {
        let o = RaceOracle::new(8, WinContract::Claim);
        o.begin_round();
        // Three sources contend for target 3; exactly one wins.
        for (src, won) in [(0u32, false), (1, true), (2, false)] {
            o.enter_atomic(src, 3);
            o.exit_atomic(src, 3, won);
        }
        let r = o.certify().expect("single winner must certify");
        assert_eq!(r.attempts, 3);
        assert_eq!(r.wins, 1);
        assert!(r.is_clean());
    }

    #[test]
    fn claim_double_win_names_both_sources() {
        let o = RaceOracle::deferred(8, WinContract::Claim);
        o.begin_round();
        o.enter_atomic(4, 7);
        o.exit_atomic(4, 7, true);
        o.enter_atomic(5, 7);
        o.exit_atomic(5, 7, true);
        let r = o.report();
        assert_eq!(r.violations.len(), 1);
        let v = r.violations[0];
        assert_eq!(v.kind, ViolationKind::DoubleWin);
        assert_eq!(v.target, 7);
        assert_eq!((v.first_src, v.second_src), (4, 5));
        let msg = v.to_string();
        assert!(msg.contains("sources 4 and 5"), "message was {msg:?}");
    }

    #[test]
    fn round_boundary_resets_the_claim_ledger() {
        let o = RaceOracle::new(4, WinContract::Claim);
        o.begin_round();
        o.enter_atomic(0, 2);
        o.exit_atomic(0, 2, true);
        o.begin_round();
        // Winning the same target in the next round is legitimate
        // (e.g. Bellman–Ford improving a distance round after round).
        o.enter_atomic(1, 2);
        o.exit_atomic(1, 2, true);
        assert!(o.certify().is_ok());
        assert_eq!(o.report().rounds, 2);
    }

    #[test]
    fn multiwin_never_flags_double_wins() {
        let o = RaceOracle::new(4, WinContract::MultiWin);
        o.begin_round();
        for src in 0u32..4 {
            o.enter_atomic(src, 1);
            o.exit_atomic(src, 1, true);
        }
        let r = o.certify().expect("MultiWin allows repeated wins");
        assert_eq!(r.wins, 4);
    }

    #[test]
    fn overlap_is_counted_as_evidence() {
        let o = RaceOracle::new(4, WinContract::Claim);
        o.begin_round();
        // Interleave two attempts on target 0 (as a parallel run would).
        o.enter_atomic(1, 0);
        o.enter_atomic(2, 0);
        o.exit_atomic(1, 0, true);
        o.exit_atomic(2, 0, false);
        let r = o.report();
        assert_eq!(r.overlaps, 1);
        assert!(r.is_clean());
    }

    #[test]
    fn exclusive_overlap_is_a_framework_violation() {
        let o = RaceOracle::deferred(4, WinContract::MultiWin);
        o.begin_round();
        o.enter_exclusive(1, 3);
        o.enter_exclusive(2, 3);
        let r = o.report();
        assert_eq!(r.violations.len(), 1);
        assert_eq!(r.violations[0].kind, ViolationKind::ExclusiveOverlap);
        assert_eq!((r.violations[0].first_src, r.violations[0].second_src), (1, 2));
    }

    #[test]
    #[should_panic(expected = "both won target")]
    fn panicking_mode_aborts_on_double_win() {
        let o = RaceOracle::new(4, WinContract::Claim);
        o.begin_round();
        o.enter_atomic(0, 1);
        o.exit_atomic(0, 1, true);
        o.enter_atomic(2, 1);
        o.exit_atomic(2, 1, true);
    }
}
