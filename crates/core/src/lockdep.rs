//! Runtime lock-order oracle ("lockdep") for the serving tier.
//!
//! The static lock pass (`ligra-lint` rules L7/L8, DESIGN.md §15) proves
//! ordering properties about the call graph it can see; this module is
//! its runtime twin, in the mold of [`crate::race::RaceOracle`]: evidence
//! from executions instead of names. Every engine-tier lock acquisition
//! is wrapped in a *named site* (`"scheduler.queue"`,
//! `"mutation.state"`, …); the oracle maintains
//!
//! * a per-thread **hold stack** — the sites this thread currently
//!   holds, in acquisition order, and
//! * a global **acquisition-order graph** — an edge `a → b` for every
//!   observed "acquired `b` while holding `a`", each edge carrying the
//!   thread and hold stack that first witnessed it.
//!
//! Acquiring a site that can already *reach* one of the held sites
//! through recorded edges closes a cycle: some interleaving of the
//! witnessed paths deadlocks. In certification mode ([`LockOracle::new`],
//! used by the [`LockOracle::global`] instance behind the engine's
//! `lock-check` feature) that aborts immediately with both chains — the
//! acquiring thread's stack and the recorded witness of every edge on
//! the closing path. [`LockOracle::deferred`] records instead, for
//! negative tests.
//!
//! The oracle tracks lock *classes* (site names), not lock instances, so
//! one observed `a → b` plus one observed `b → a` is a violation even if
//! the two runs touched different objects — exactly the discipline the
//! kernel lockdep enforces, and the reason a clean chaos run certifies
//! the ordering for every future instance pairing.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::{Mutex, OnceLock, PoisonError};
use std::thread::{self, ThreadId};

/// One observed "acquired `to` while holding `from`" edge, with the
/// context that first witnessed it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EdgeWitness {
    /// Name (or debug id) of the witnessing thread.
    pub thread: String,
    /// That thread's full hold stack at the moment of acquisition.
    pub hold_stack: Vec<&'static str>,
}

/// A cycle in the acquisition-order graph: the deadlock witness.
#[derive(Debug, Clone)]
pub struct LockViolation {
    /// The site whose acquisition closed the cycle.
    pub site: &'static str,
    /// The cycle as a site sequence `site → … → held → site`.
    pub cycle: Vec<&'static str>,
    /// Thread that closed the cycle.
    pub thread: String,
    /// Its hold stack at that moment.
    pub hold_stack: Vec<&'static str>,
    /// Rendered witness (thread + hold stack) for each recorded edge on
    /// the closing path.
    pub witnesses: Vec<String>,
}

impl std::fmt::Display for LockViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "lock-check: acquiring `{}` on thread `{}` (holding [{}]) closes the cycle {}; \
             recorded witnesses: {}",
            self.site,
            self.thread,
            self.hold_stack.join(", "),
            self.cycle.join(" → "),
            self.witnesses.join("; ")
        )
    }
}

/// Aggregate evidence from one run. Produced by [`LockOracle::report`].
#[derive(Debug, Clone)]
pub struct LockReport {
    /// Every site that participated in an acquisition.
    pub sites: Vec<&'static str>,
    /// The acquisition-order edges observed, sorted.
    pub edges: Vec<(&'static str, &'static str)>,
    /// Cycles detected, in detection order.
    pub violations: Vec<LockViolation>,
}

impl LockReport {
    /// `true` when the run closed no cycle.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

#[derive(Default)]
struct OracleState {
    seen: BTreeSet<&'static str>,
    edges: BTreeMap<(&'static str, &'static str), EdgeWitness>,
    held: HashMap<ThreadId, Vec<&'static str>>,
    violations: Vec<LockViolation>,
}

/// The acquisition-order oracle. See the [module docs](self) for the
/// protocol; engine code talks to it through the tracked guards in
/// `ligra_engine::lockdep`, tests may drive [`LockOracle::acquire`] /
/// [`LockOracle::release`] directly.
pub struct LockOracle {
    panic_on_violation: bool,
    state: Mutex<OracleState>,
}

impl std::fmt::Debug for LockOracle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let st = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        f.debug_struct("LockOracle")
            .field("edges", &st.edges.len())
            .field("violations", &st.violations.len())
            .finish_non_exhaustive()
    }
}

impl Default for LockOracle {
    fn default() -> Self {
        Self::new()
    }
}

impl LockOracle {
    /// An oracle that panics the moment an acquisition closes a cycle,
    /// printing both threads' evidence. This is certification mode: the
    /// potential deadlock fails the run immediately and loudly (inside
    /// an engine worker the panic surfaces as `QueryStatus::Panicked`,
    /// which every clean-run test asserts against).
    pub fn new() -> Self {
        LockOracle { panic_on_violation: true, state: Mutex::new(OracleState::default()) }
    }

    /// An oracle that records violations in [`LockOracle::report`]
    /// instead of panicking — for tests that construct a cycle on
    /// purpose and inspect the witness.
    pub fn deferred() -> Self {
        LockOracle { panic_on_violation: false, state: Mutex::new(OracleState::default()) }
    }

    /// The process-wide oracle the `lock-check` feature routes every
    /// engine-tier acquisition through. Certification mode.
    pub fn global() -> &'static LockOracle {
        static GLOBAL: OnceLock<LockOracle> = OnceLock::new();
        GLOBAL.get_or_init(LockOracle::new)
    }

    /// Records that the current thread is about to acquire `site`:
    /// inserts an order edge from every currently-held site, then pushes
    /// `site` on this thread's hold stack. Called *before* blocking on
    /// the real lock — a cycle must be reported by the thread that would
    /// complete the deadlock, not after it is already stuck.
    pub fn acquire(&self, site: &'static str) {
        let tid = thread::current().id();
        let violation = {
            let mut st = self.state.lock().unwrap_or_else(PoisonError::into_inner);
            st.seen.insert(site);
            let stack = st.held.get(&tid).cloned().unwrap_or_default();
            let mut found: Option<LockViolation> = None;
            for &h in &stack {
                if h == site || st.edges.contains_key(&(h, site)) {
                    continue;
                }
                if let Some(path) = find_path(&st.edges, site, h) {
                    // Adding h → site closes site → … → h → site.
                    let mut cycle = path.clone();
                    cycle.push(site);
                    let witnesses = path
                        .windows(2)
                        .map(|w| {
                            let wit = &st.edges[&(w[0], w[1])];
                            format!(
                                "`{}` → `{}` first seen on thread `{}` holding [{}]",
                                w[0],
                                w[1],
                                wit.thread,
                                wit.hold_stack.join(", ")
                            )
                        })
                        .collect();
                    found = Some(LockViolation {
                        site,
                        cycle,
                        thread: thread_label(),
                        hold_stack: stack.clone(),
                        witnesses,
                    });
                    break;
                }
                st.edges.insert(
                    (h, site),
                    EdgeWitness { thread: thread_label(), hold_stack: stack.clone() },
                );
            }
            if let Some(v) = found.clone() {
                st.violations.push(v);
            }
            st.held.entry(tid).or_default().push(site);
            found
        };
        if let Some(v) = violation {
            if self.panic_on_violation {
                panic!("{v}");
            }
        }
    }

    /// Pops `site` from the current thread's hold stack (topmost
    /// occurrence first, matching guard-drop order).
    pub fn release(&self, site: &'static str) {
        let tid = thread::current().id();
        let mut st = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(stack) = st.held.get_mut(&tid) {
            if let Some(pos) = stack.iter().rposition(|&s| s == site) {
                stack.remove(pos);
            }
            if stack.is_empty() {
                st.held.remove(&tid);
            }
        }
    }

    /// Snapshot of the acquisition DAG and any detected cycles.
    pub fn report(&self) -> LockReport {
        let st = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        LockReport {
            sites: st.seen.iter().copied().collect(),
            edges: st.edges.keys().copied().collect(),
            violations: st.violations.clone(),
        }
    }

    /// Certification check: `Ok(report)` when no cycle was closed,
    /// `Err` describing the first otherwise.
    pub fn certify(&self) -> Result<LockReport, String> {
        let report = self.report();
        match report.violations.first() {
            None => Ok(report),
            Some(v) => Err(format!("{v} ({} violation(s) total)", report.violations.len())),
        }
    }
}

/// DFS path `from → … → to` through the recorded edges, if one exists.
fn find_path(
    edges: &BTreeMap<(&'static str, &'static str), EdgeWitness>,
    from: &'static str,
    to: &'static str,
) -> Option<Vec<&'static str>> {
    let mut stack = vec![vec![from]];
    let mut visited = vec![from];
    while let Some(path) = stack.pop() {
        let last = *path.last().expect("paths start non-empty");
        if last == to {
            return Some(path);
        }
        for &(a, b) in edges.keys() {
            if a == last && !visited.contains(&b) {
                visited.push(b);
                let mut next = path.clone();
                next.push(b);
                stack.push(next);
            }
        }
    }
    None
}

fn thread_label() -> String {
    let cur = thread::current();
    match cur.name() {
        Some(n) => n.to_string(),
        None => format!("{:?}", cur.id()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn consistent_order_is_clean() {
        let o = LockOracle::deferred();
        for _ in 0..2 {
            o.acquire("a");
            o.acquire("b");
            o.release("b");
            o.release("a");
        }
        let r = o.certify().expect("consistent order must certify");
        assert_eq!(r.edges, vec![("a", "b")]);
    }

    #[test]
    fn inversion_closes_a_cycle() {
        let o = LockOracle::deferred();
        o.acquire("a");
        o.acquire("b");
        o.release("b");
        o.release("a");
        o.acquire("b");
        o.acquire("a");
        let r = o.report();
        assert_eq!(r.violations.len(), 1);
        let v = &r.violations[0];
        assert_eq!(v.site, "a");
        assert_eq!(v.cycle, vec!["a", "b", "a"]);
        assert_eq!(v.hold_stack, vec!["b"]);
        assert!(v.to_string().contains("closes the cycle"), "message: {v}");
    }

    #[test]
    fn reentrant_same_class_is_not_an_ordering() {
        let o = LockOracle::deferred();
        o.acquire("a");
        o.acquire("a");
        o.release("a");
        o.release("a");
        assert!(o.report().edges.is_empty());
    }

    #[test]
    fn transitive_cycle_through_three_sites() {
        let o = LockOracle::deferred();
        o.acquire("a");
        o.acquire("b");
        o.release("b");
        o.release("a");
        o.acquire("b");
        o.acquire("c");
        o.release("c");
        o.release("b");
        o.acquire("c");
        o.acquire("a");
        let r = o.report();
        assert_eq!(r.violations.len(), 1);
        assert_eq!(r.violations[0].cycle, vec!["a", "b", "c", "a"]);
    }

    #[test]
    #[should_panic(expected = "closes the cycle")]
    fn certification_mode_panics() {
        let o = LockOracle::new();
        o.acquire("a");
        o.acquire("b");
        o.release("b");
        o.release("a");
        o.acquire("b");
        o.acquire("a");
    }

    #[test]
    fn release_pops_topmost_occurrence() {
        let o = LockOracle::deferred();
        o.acquire("a");
        o.acquire("b");
        o.release("a");
        // `b` is still held: acquiring `c` records b → c but not a → c.
        o.acquire("c");
        let r = o.report();
        assert!(r.edges.contains(&("b", "c")));
        assert!(!r.edges.contains(&("a", "c")));
    }
}
