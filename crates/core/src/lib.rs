//! # ligra
//!
//! A Rust reproduction of **Ligra: A Lightweight Graph Processing Framework
//! for Shared Memory** (Julian Shun and Guy E. Blelloch, PPoPP 2013).
//!
//! The entire programming model is three operations over a frontier
//! abstraction:
//!
//! * [`VertexSubset`] — a set of vertices with interchangeable sparse
//!   (ID list) and dense (flag array) representations.
//! * [`edge_map`] — apply a user function to every edge out of the
//!   frontier, returning the subset of targets the function claimed. The
//!   framework automatically switches between a push traversal (sparse
//!   frontier, scan-allocated output) and a pull traversal (dense frontier,
//!   early-exit in-edge scans) using the paper's `|U| + Σdeg⁺(U) > m/20`
//!   heuristic.
//! * [`vertex_map`] / [`vertex_filter`] — parallel per-vertex operations.
//!
//! ## Example: breadth-first search in ~20 lines
//!
//! ```
//! use ligra::{edge_map, VertexSubset, edge_fn};
//! use ligra_graph::generators::grid3d;
//! use ligra_parallel::atomics::{as_atomic_u32, cas_u32};
//! use std::sync::atomic::Ordering;
//!
//! let g = grid3d(8);                       // 512-vertex torus
//! let n = g.num_vertices();
//! let mut parent = vec![u32::MAX; n];
//! let source = 0u32;
//! parent[source as usize] = source;
//!
//! {
//!     let parent = as_atomic_u32(&mut parent);
//!     let bfs = edge_fn(
//!         // claim unvisited targets with CAS; winner adds them to the frontier
//!         |u, v, _| cas_u32(&parent[v as usize], u32::MAX, u),
//!         // only unvisited targets are worth updating
//!         |v| parent[v as usize].load(Ordering::Relaxed) == u32::MAX,
//!     );
//!     let mut frontier = VertexSubset::single(n, source);
//!     while !frontier.is_empty() {
//!         frontier = edge_map(&g, &mut frontier, &bfs);
//!     }
//! }
//! assert!(parent.iter().all(|&p| p != u32::MAX)); // torus is connected
//! ```

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod cancel;
pub mod edge_map;
pub mod fault;
pub mod lockdep;
pub mod options;
pub mod race;
pub mod stats;
pub mod trace;
pub mod traits;
pub mod vertex_map;
pub mod vertex_subset;

pub use crate::cancel::CancelToken;
pub use crate::edge_map::{
    edge_map, edge_map_dense, edge_map_dense_forward, edge_map_partitioned, edge_map_recorded,
    edge_map_sparse, edge_map_traced, edge_map_with,
};
pub use crate::fault::{FaultAction, FaultError, FaultPlan, FaultPoint};
pub use crate::lockdep::{EdgeWitness, LockOracle, LockReport, LockViolation};
pub use crate::options::{EdgeMapOptions, Traversal};
pub use crate::race::{OracleReport, RaceOracle, Violation, ViolationKind, WinContract};
pub use crate::stats::{
    EdgeCounters, Mode, NoopRecorder, Op, Recorder, ReprKind, RoundStat, TraversalStats,
};
pub use crate::trace::{
    from_csv, from_json_lines, save_jsonl, summary, to_csv, to_json_lines, TraceSummary,
};
pub use crate::traits::{cond_true, edge_fn, ClosureEdgeMap, EdgeMapFn};
pub use crate::vertex_map::{
    vertex_filter, vertex_filter_recorded, vertex_map, vertex_map_recorded, vertex_map_reduce_f64,
};
pub use crate::vertex_subset::VertexSubset;

// Re-export the substrate crates so applications can depend on `ligra`
// alone, as downstream users of the original system include one header.
pub use ligra_graph as graph;
pub use ligra_parallel as parallel;
