//! Cooperative cancellation for frontier computations.
//!
//! A [`CancelToken`] is a shared atomic flag plus an optional deadline.
//! Threaded through [`crate::EdgeMapOptions`], it is consulted by
//! `edgeMap` at the start of every round (and by the applications at
//! their own loop boundaries), so a long-running traversal stops at the
//! *next round boundary* rather than running to completion — the
//! granularity contract a serving layer needs: a cancelled query never
//! tears down mid-round state, it simply produces an empty next frontier
//! and lets the driving loop drain.
//!
//! The token is `Sync` and designed to be shared: a query engine keeps one
//! handle (typically inside an `Arc`) to flip from another thread while the
//! traversal holds a plain reference via its options.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

/// Shared cancellation flag with an optional deadline.
///
/// `is_cancelled` reports true once either [`CancelToken::cancel`] has been
/// called or the deadline (fixed at construction) has passed. Checking is a
/// relaxed atomic load plus, when a deadline exists, one monotonic-clock
/// read — cheap enough for once-per-round use, far too cheap to matter.
#[derive(Debug, Default)]
pub struct CancelToken {
    flag: AtomicBool,
    deadline: Option<Instant>,
}

impl CancelToken {
    /// A token with no deadline; cancels only via [`CancelToken::cancel`].
    pub fn new() -> Self {
        Self::default()
    }

    /// A token that auto-cancels once `deadline` passes.
    pub fn with_deadline(deadline: Instant) -> Self {
        CancelToken { flag: AtomicBool::new(false), deadline: Some(deadline) }
    }

    /// A token that auto-cancels `timeout` from now. A zero timeout yields
    /// a token that is already expired — useful for admission-time
    /// rejection tests and "just probe the cache" submissions.
    pub fn with_timeout(timeout: Duration) -> Self {
        Self::with_deadline(Instant::now() + timeout)
    }

    /// Requests cancellation. Idempotent; never blocks.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Whether the token was cancelled explicitly (not via deadline).
    pub fn cancel_requested(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }

    /// Whether work observing this token should stop at its next boundary.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire) || self.deadline.is_some_and(|d| Instant::now() >= d)
    }

    /// The deadline, if one was set at construction.
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }

    /// Time left until the deadline (`None` when no deadline is set;
    /// `Some(ZERO)` once it has passed).
    pub fn remaining(&self) -> Option<Duration> {
        self.deadline.map(|d| d.saturating_duration_since(Instant::now()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_token_is_live() {
        let t = CancelToken::new();
        assert!(!t.is_cancelled());
        assert!(!t.cancel_requested());
        assert_eq!(t.deadline(), None);
        assert_eq!(t.remaining(), None);
    }

    #[test]
    fn cancel_flips_once_and_stays() {
        let t = CancelToken::new();
        t.cancel();
        assert!(t.is_cancelled());
        assert!(t.cancel_requested());
        t.cancel(); // idempotent
        assert!(t.is_cancelled());
    }

    #[test]
    fn zero_timeout_is_immediately_expired() {
        let t = CancelToken::with_timeout(Duration::ZERO);
        assert!(t.is_cancelled());
        assert!(!t.cancel_requested(), "deadline expiry is not an explicit cancel");
        assert_eq!(t.remaining(), Some(Duration::ZERO));
    }

    #[test]
    fn future_deadline_is_live_until_it_passes() {
        let t = CancelToken::with_timeout(Duration::from_secs(3600));
        assert!(!t.is_cancelled());
        assert!(t.remaining().unwrap() > Duration::from_secs(3000));
        t.cancel(); // explicit cancel still wins before the deadline
        assert!(t.is_cancelled());
    }

    #[test]
    fn shared_across_threads() {
        let t = std::sync::Arc::new(CancelToken::new());
        let t2 = t.clone();
        let h = std::thread::spawn(move || t2.cancel());
        h.join().unwrap();
        assert!(t.is_cancelled());
    }
}
