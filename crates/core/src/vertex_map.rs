//! `vertexMap` and `vertexFilter`.

use crate::stats::{Op, Recorder, ReprKind, RoundStat};
use crate::vertex_subset::VertexSubset;
use ligra_graph::VertexId;
use ligra_parallel::checked_u32;
use rayon::prelude::*;
use std::time::Instant;

/// Applies `f` to every member of `subset` in parallel.
///
/// Works on whichever representation the subset currently has (no
/// conversion): sparse iterates the member list, dense decodes the packed
/// bitset word-at-a-time, skipping 64 non-members per zero word.
pub fn vertex_map(subset: &VertexSubset, f: impl Fn(VertexId) + Sync) {
    if let Some(vs) = subset.sparse() {
        vs.par_iter().for_each(|&v| f(v));
    } else if let Some(bits) = subset.dense() {
        bits.words().par_iter().enumerate().for_each(|(wi, &w0)| {
            let mut w = w0;
            while w != 0 {
                f(checked_u32(wi * 64) + w.trailing_zeros());
                w &= w - 1;
            }
        });
    }
}

/// Returns the members of `subset` for which `f` returns `true`, applying
/// `f` exactly once per member. Preserves the input's representation; the
/// dense path maps each input word to one output word, so no atomics and
/// no per-vertex writes.
pub fn vertex_filter(subset: &VertexSubset, f: impl Fn(VertexId) -> bool + Sync) -> VertexSubset {
    let n = subset.num_vertices();
    if let Some(vs) = subset.sparse() {
        let kept = ligra_parallel::pack::filter(vs, |&v| f(v));
        VertexSubset::from_sparse(n, kept)
    } else if let Some(bits) = subset.dense() {
        let words: Vec<u64> = bits
            .words()
            .par_iter()
            .enumerate()
            .map(|(wi, &w0)| {
                let mut out = 0u64;
                let mut w = w0;
                while w != 0 {
                    let b = w.trailing_zeros();
                    if f(checked_u32(wi * 64) + b) {
                        out |= 1u64 << b;
                    }
                    w &= w - 1;
                }
                out
            })
            .collect();
        VertexSubset::from_bitset(n, ligra_parallel::bitvec::BitSet::from_words(words, n))
    } else {
        unreachable!()
    }
}

/// Current representation of `subset` as a telemetry tag.
fn repr_of(subset: &VertexSubset) -> ReprKind {
    if subset.is_sparse() {
        ReprKind::Sparse
    } else {
        ReprKind::Dense
    }
}

/// [`vertex_map`] delivering one timed [`RoundStat`] to `rec`.
pub fn vertex_map_recorded<R: Recorder>(
    subset: &VertexSubset,
    f: impl Fn(VertexId) + Sync,
    rec: &mut R,
) {
    if !rec.enabled() {
        return vertex_map(subset, f);
    }
    let start = Instant::now();
    vertex_map(subset, f);
    let mut r = RoundStat::vertex_op(
        Op::VertexMap,
        subset.len() as u64,
        repr_of(subset),
        subset.len() as u64,
    );
    r.frontier_bytes = subset.repr_bytes();
    r.time_ns = start.elapsed().as_nanos() as u64;
    rec.record(r);
}

/// [`vertex_filter`] delivering one timed [`RoundStat`] to `rec`.
pub fn vertex_filter_recorded<R: Recorder>(
    subset: &VertexSubset,
    f: impl Fn(VertexId) -> bool + Sync,
    rec: &mut R,
) -> VertexSubset {
    if !rec.enabled() {
        return vertex_filter(subset, f);
    }
    let start = Instant::now();
    let out = vertex_filter(subset, f);
    let mut r = RoundStat::vertex_op(
        Op::VertexFilter,
        subset.len() as u64,
        repr_of(subset),
        out.len() as u64,
    );
    r.frontier_bytes = subset.repr_bytes() + out.repr_bytes();
    r.time_ns = start.elapsed().as_nanos() as u64;
    rec.record(r);
    out
}

/// Sums `f(v)` over the members of `subset` (a common reduction in the
/// applications, e.g. PageRank's dangling-mass and error terms).
pub fn vertex_map_reduce_f64(subset: &VertexSubset, f: impl Fn(VertexId) -> f64 + Sync) -> f64 {
    if let Some(vs) = subset.sparse() {
        vs.par_iter().map(|&v| f(v)).sum()
    } else if let Some(bits) = subset.dense() {
        bits.words()
            .par_iter()
            .enumerate()
            .map(|(wi, &w0)| {
                let mut sum = 0.0;
                let mut w = w0;
                while w != 0 {
                    sum += f(checked_u32(wi * 64) + w.trailing_zeros());
                    w &= w - 1;
                }
                sum
            })
            .sum()
    } else {
        unreachable!()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};

    #[test]
    fn map_visits_each_member_once_sparse() {
        let hits: Vec<AtomicU32> = (0..10).map(|_| AtomicU32::new(0)).collect();
        let s = VertexSubset::from_sparse(10, vec![1, 3, 5]);
        vertex_map(&s, |v| {
            hits[v as usize].fetch_add(1, Ordering::Relaxed);
        });
        let counts: Vec<u32> = hits.iter().map(|h| h.load(Ordering::Relaxed)).collect();
        assert_eq!(counts, vec![0, 1, 0, 1, 0, 1, 0, 0, 0, 0]);
    }

    #[test]
    fn map_visits_each_member_once_dense() {
        let hits: Vec<AtomicU32> = (0..8).map(|_| AtomicU32::new(0)).collect();
        let mut s = VertexSubset::from_sparse(8, vec![0, 7]);
        s.to_dense();
        vertex_map(&s, |v| {
            hits[v as usize].fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits[0].load(Ordering::Relaxed), 1);
        assert_eq!(hits[7].load(Ordering::Relaxed), 1);
        assert_eq!(hits[3].load(Ordering::Relaxed), 0);
    }

    #[test]
    fn filter_preserves_representation() {
        let sparse = VertexSubset::from_sparse(10, vec![1, 2, 3, 4]);
        let out = vertex_filter(&sparse, |v| v.is_multiple_of(2));
        assert!(out.is_sparse());
        assert_eq!(out.to_vec_sorted(), vec![2, 4]);

        let mut dense = VertexSubset::from_sparse(10, vec![1, 2, 3, 4]);
        dense.to_dense();
        let out = vertex_filter(&dense, |v| v % 2 == 1);
        assert!(!out.is_sparse());
        assert_eq!(out.to_vec_sorted(), vec![1, 3]);
    }

    #[test]
    fn filter_empty() {
        let s = VertexSubset::empty(5);
        let out = vertex_filter(&s, |_| true);
        assert!(out.is_empty());
    }

    #[test]
    fn recorded_vertex_ops_emit_events() {
        use crate::stats::{NoopRecorder, Op, TraversalStats};
        let s = VertexSubset::from_sparse(10, vec![1, 3, 5, 7]);
        let mut stats = TraversalStats::new();
        vertex_map_recorded(&s, |_| {}, &mut stats);
        let out = vertex_filter_recorded(&s, |v| v > 3, &mut stats);
        assert_eq!(out.to_vec_sorted(), vec![5, 7]);
        assert_eq!(stats.num_rounds(), 2);
        assert_eq!(stats.rounds[0].op, Op::VertexMap);
        assert_eq!(stats.rounds[0].frontier_vertices, 4);
        assert_eq!(stats.rounds[1].op, Op::VertexFilter);
        assert_eq!(stats.rounds[1].output_vertices, 2);
        assert!(stats.rounds[0].time_ns > 0 && stats.rounds[1].time_ns > 0);
        // Noop path: same results, no events anywhere.
        let out = vertex_filter_recorded(&s, |v| v > 3, &mut NoopRecorder);
        assert_eq!(out.to_vec_sorted(), vec![5, 7]);
    }

    #[test]
    fn reduce_sums_members_only() {
        let s = VertexSubset::from_sparse(10, vec![2, 4]);
        let sum = vertex_map_reduce_f64(&s, |v| v as f64);
        assert_eq!(sum, 6.0);
        let mut d = s.clone();
        d.to_dense();
        assert_eq!(vertex_map_reduce_f64(&d, |v| v as f64), 6.0);
    }
}
