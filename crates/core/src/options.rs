//! `edgeMap` tuning knobs.

use crate::cancel::CancelToken;
use crate::fault::FaultPlan;
use crate::race::RaceOracle;

/// Which traversal `edgeMap` should use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Traversal {
    /// The paper's direction heuristic: dense when
    /// `|U| + Σ deg⁺(u) > threshold`, sparse otherwise.
    Auto,
    /// Always push along out-edges of the frontier (sparse representation).
    Sparse,
    /// Always pull along in-edges of all vertices (dense representation,
    /// early exit via `cond`).
    Dense,
    /// Always push along out-edges of *all* vertices whose dense flag is
    /// set — the paper's "dense forward" variant, which avoids reading the
    /// transpose at the cost of atomic updates and no early exit.
    DenseForward,
    /// Cache-aware scatter/gather over contiguous vertex partitions:
    /// scatter appends `(dst, payload)` updates into per-partition bins,
    /// gather drains each bin with partition-exclusive (non-atomic)
    /// writes. Trades one streaming pass of bin traffic for the random
    /// LLC misses of dense pull on large graphs.
    Partitioned,
}

impl Traversal {
    /// All traversal policies, in the order benches sweep them.
    pub const ALL: [Traversal; 5] = [
        Traversal::Auto,
        Traversal::Sparse,
        Traversal::Dense,
        Traversal::DenseForward,
        Traversal::Partitioned,
    ];

    /// The canonical name [`std::fmt::Display`] renders (and
    /// [`std::str::FromStr`] accepts, along with a few aliases).
    pub fn name(self) -> &'static str {
        match self {
            Traversal::Auto => "auto",
            Traversal::Sparse => "sparse",
            Traversal::Dense => "dense",
            Traversal::DenseForward => "dense-forward",
            Traversal::Partitioned => "partitioned",
        }
    }
}

impl std::fmt::Display for Traversal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for Traversal {
    type Err = String;

    /// Parses a policy name. Canonical names are the [`Traversal::name`]
    /// strings; the historical bench labels (`hybrid`, `sparse-only`,
    /// `dense-only`, `dense-fwd`) are accepted as aliases. Matching is
    /// case-insensitive.
    fn from_str(s: &str) -> Result<Self, String> {
        match s.to_ascii_lowercase().as_str() {
            "auto" | "hybrid" => Ok(Traversal::Auto),
            "sparse" | "sparse-only" | "push" => Ok(Traversal::Sparse),
            "dense" | "dense-only" | "pull" => Ok(Traversal::Dense),
            "dense-forward" | "dense_forward" | "dense-fwd" => Ok(Traversal::DenseForward),
            "partitioned" | "partition" | "scatter-gather" => Ok(Traversal::Partitioned),
            other => Err(format!(
                "unknown traversal {other:?} (expected auto, sparse, dense, dense-forward, \
                 or partitioned)"
            )),
        }
    }
}

/// Options for [`crate::edge_map_with`].
#[derive(Debug, Clone, Copy)]
pub struct EdgeMapOptions<'a> {
    /// Direction-switch threshold; `None` means the paper's default
    /// `m / 20`.
    pub threshold: Option<u64>,
    /// Remove duplicate vertices from the sparse output. Needed only when
    /// the user's `update_atomic` may return `true` more than once for the
    /// same target in one round (e.g. Bellman–Ford, where a vertex's
    /// distance can improve repeatedly); BFS-style CAS functions guarantee
    /// a single winner and can skip the extra pass.
    pub deduplicate: bool,
    /// Traversal selection.
    pub traversal: Traversal,
    /// When `false`, skip materializing the output subset (Ligra's
    /// `no_output` flag) — used by PageRank, whose next frontier is
    /// computed by a separate `vertexFilter`.
    pub output: bool,
    /// Cooperative cancellation: when the token reports cancelled,
    /// `edgeMap` returns an empty subset instead of running the round, so
    /// frontier-driven loops drain at the next round boundary. Applications
    /// with loops not driven by the `edgeMap` output (PageRank, k-core,
    /// MIS, BC's backward sweep) check the same token themselves.
    pub cancel: Option<&'a CancelToken>,
    /// Shadow-state race oracle certifying the update function's win
    /// discipline. Recording only happens in builds with the core
    /// `race-check` feature; without it the attached oracle is inert
    /// (the traversal hooks compile away). See [`crate::race`].
    pub oracle: Option<&'a RaceOracle>,
    /// Deterministic fault-injection schedule checked at the
    /// `edgemap.round` fault point. Active only in builds with the
    /// `fault-inject` feature; without it the attached plan is inert
    /// (the round hook compiles away). See [`crate::fault`].
    pub fault: Option<&'a FaultPlan>,
    /// Frontier out-edge count above which the `Auto` heuristic upgrades
    /// a dense round to the partitioned scatter/gather traversal; `None`
    /// means the default `m / 4`. Only consulted on graphs large enough
    /// for partitioning to pay (see `ligra_graph::partition::MIN_N`).
    pub partition_threshold: Option<u64>,
    /// log2 of the partition width in vertices for the partitioned
    /// traversal; `None` defers to `LIGRA_PARTITION_BITS` or the
    /// cache-sized default in `ligra_graph::partition`.
    pub partition_bits: Option<u32>,
    /// Smallest vertex count for which `Auto` will upgrade a dense round
    /// to the partitioned traversal; `None` defers to
    /// `LIGRA_PARTITION_MIN_N` / `ligra_graph::partition::MIN_N`.
    pub partition_min_vertices: Option<usize>,
}

impl Default for EdgeMapOptions<'_> {
    fn default() -> Self {
        EdgeMapOptions {
            threshold: None,
            deduplicate: false,
            traversal: Traversal::Auto,
            output: true,
            cancel: None,
            oracle: None,
            fault: None,
            partition_threshold: None,
            partition_bits: None,
            partition_min_vertices: None,
        }
    }
}

impl<'a> EdgeMapOptions<'a> {
    /// Default options (auto direction, `m/20` threshold, no dedup).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets an explicit direction-switch threshold.
    pub fn threshold(mut self, t: u64) -> Self {
        self.threshold = Some(t);
        self
    }

    /// Enables duplicate removal on the sparse output.
    pub fn deduplicate(mut self, on: bool) -> Self {
        self.deduplicate = on;
        self
    }

    /// Forces a traversal strategy.
    pub fn traversal(mut self, t: Traversal) -> Self {
        self.traversal = t;
        self
    }

    /// Disables output-subset construction.
    pub fn no_output(mut self) -> Self {
        self.output = false;
        self
    }

    /// Attaches a cancellation token checked at every round boundary.
    pub fn cancel(mut self, token: &'a CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Attaches a race oracle recording every update attempt (active
    /// only under the `race-check` feature).
    pub fn race_oracle(mut self, oracle: &'a RaceOracle) -> Self {
        self.oracle = Some(oracle);
        self
    }

    /// Attaches a fault plan checked at the start of every round
    /// (active only under the `fault-inject` feature).
    pub fn fault_plan(mut self, plan: &'a FaultPlan) -> Self {
        self.fault = Some(plan);
        self
    }

    /// Whether the attached token (if any) has requested a stop.
    #[inline]
    pub fn is_cancelled(&self) -> bool {
        self.cancel.is_some_and(CancelToken::is_cancelled)
    }

    /// The effective threshold for a graph with `m` edges.
    #[inline]
    pub fn effective_threshold(&self, m: usize) -> u64 {
        self.threshold.unwrap_or(m as u64 / 20)
    }

    /// Sets the frontier out-edge count above which `Auto` upgrades a
    /// dense round to the partitioned traversal.
    pub fn partition_threshold(mut self, t: u64) -> Self {
        self.partition_threshold = Some(t);
        self
    }

    /// Sets the partition width (log2 vertices per partition) for the
    /// partitioned traversal.
    pub fn partition_bits(mut self, bits: u32) -> Self {
        self.partition_bits = Some(bits);
        self
    }

    /// Sets the smallest vertex count at which `Auto` considers the
    /// partitioned upgrade (mainly for tests; production sizing comes
    /// from `ligra_graph::partition`).
    pub fn partition_min_vertices(mut self, n: usize) -> Self {
        self.partition_min_vertices = Some(n);
        self
    }

    /// The effective partition upgrade threshold for a graph with `m`
    /// edges: dense rounds whose frontier out-edge sum exceeds this are
    /// miss-bound enough for scatter/gather to pay for its bin traffic.
    #[inline]
    pub fn effective_partition_threshold(&self, m: usize) -> u64 {
        self.partition_threshold.unwrap_or(m as u64 / 4)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_threshold_is_m_over_20() {
        let o = EdgeMapOptions::new();
        assert_eq!(o.effective_threshold(2000), 100);
        assert_eq!(o.threshold(7).effective_threshold(2000), 7);
    }

    #[test]
    fn builder_chains() {
        let o = EdgeMapOptions::new().deduplicate(true).traversal(Traversal::Sparse).no_output();
        assert!(o.deduplicate);
        assert_eq!(o.traversal, Traversal::Sparse);
        assert!(!o.output);
        assert!(o.cancel.is_none());
        assert!(!o.is_cancelled());
    }

    #[test]
    fn cancel_token_threads_through() {
        let token = CancelToken::new();
        let o = EdgeMapOptions::new().cancel(&token);
        assert!(!o.is_cancelled());
        token.cancel();
        assert!(o.is_cancelled());
    }

    #[test]
    fn fault_plan_threads_through() {
        let plan = crate::fault::FaultPlan::seeded(42);
        let o = EdgeMapOptions::new().fault_plan(&plan);
        assert!(o.fault.is_some());
        assert!(EdgeMapOptions::new().fault.is_none());
    }

    #[test]
    fn race_oracle_threads_through() {
        let oracle = crate::race::RaceOracle::new(4, crate::race::WinContract::Claim);
        let o = EdgeMapOptions::new().race_oracle(&oracle);
        assert!(o.oracle.is_some());
        assert!(EdgeMapOptions::new().oracle.is_none());
    }

    #[test]
    fn traversal_display_round_trips() {
        for t in Traversal::ALL {
            assert_eq!(t.to_string().parse::<Traversal>().unwrap(), t);
            assert_eq!(t.to_string(), t.name());
        }
    }

    #[test]
    fn traversal_parse_accepts_bench_aliases() {
        assert_eq!("hybrid".parse::<Traversal>().unwrap(), Traversal::Auto);
        assert_eq!("sparse-only".parse::<Traversal>().unwrap(), Traversal::Sparse);
        assert_eq!("dense-only".parse::<Traversal>().unwrap(), Traversal::Dense);
        assert_eq!("dense-fwd".parse::<Traversal>().unwrap(), Traversal::DenseForward);
        assert_eq!("DENSE".parse::<Traversal>().unwrap(), Traversal::Dense);
        assert_eq!("partition".parse::<Traversal>().unwrap(), Traversal::Partitioned);
        assert_eq!("scatter-gather".parse::<Traversal>().unwrap(), Traversal::Partitioned);
        assert!("diagonal".parse::<Traversal>().is_err());
    }

    #[test]
    fn partition_knobs_default_and_chain() {
        let o = EdgeMapOptions::new();
        assert_eq!(o.effective_partition_threshold(2000), 500);
        assert!(o.partition_bits.is_none());
        let o = o.partition_threshold(9).partition_bits(12);
        assert_eq!(o.effective_partition_threshold(2000), 9);
        assert_eq!(o.partition_bits, Some(12));
    }
}
