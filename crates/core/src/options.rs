//! `edgeMap` tuning knobs.

/// Which traversal `edgeMap` should use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Traversal {
    /// The paper's direction heuristic: dense when
    /// `|U| + Σ deg⁺(u) > threshold`, sparse otherwise.
    Auto,
    /// Always push along out-edges of the frontier (sparse representation).
    Sparse,
    /// Always pull along in-edges of all vertices (dense representation,
    /// early exit via `cond`).
    Dense,
    /// Always push along out-edges of *all* vertices whose dense flag is
    /// set — the paper's "dense forward" variant, which avoids reading the
    /// transpose at the cost of atomic updates and no early exit.
    DenseForward,
}

/// Options for [`crate::edge_map_with`].
#[derive(Debug, Clone, Copy)]
pub struct EdgeMapOptions {
    /// Direction-switch threshold; `None` means the paper's default
    /// `m / 20`.
    pub threshold: Option<u64>,
    /// Remove duplicate vertices from the sparse output. Needed only when
    /// the user's `update_atomic` may return `true` more than once for the
    /// same target in one round (e.g. Bellman–Ford, where a vertex's
    /// distance can improve repeatedly); BFS-style CAS functions guarantee
    /// a single winner and can skip the extra pass.
    pub deduplicate: bool,
    /// Traversal selection.
    pub traversal: Traversal,
    /// When `false`, skip materializing the output subset (Ligra's
    /// `no_output` flag) — used by PageRank, whose next frontier is
    /// computed by a separate `vertexFilter`.
    pub output: bool,
}

impl Default for EdgeMapOptions {
    fn default() -> Self {
        EdgeMapOptions {
            threshold: None,
            deduplicate: false,
            traversal: Traversal::Auto,
            output: true,
        }
    }
}

impl EdgeMapOptions {
    /// Default options (auto direction, `m/20` threshold, no dedup).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets an explicit direction-switch threshold.
    pub fn threshold(mut self, t: u64) -> Self {
        self.threshold = Some(t);
        self
    }

    /// Enables duplicate removal on the sparse output.
    pub fn deduplicate(mut self, on: bool) -> Self {
        self.deduplicate = on;
        self
    }

    /// Forces a traversal strategy.
    pub fn traversal(mut self, t: Traversal) -> Self {
        self.traversal = t;
        self
    }

    /// Disables output-subset construction.
    pub fn no_output(mut self) -> Self {
        self.output = false;
        self
    }

    /// The effective threshold for a graph with `m` edges.
    #[inline]
    pub fn effective_threshold(&self, m: usize) -> u64 {
        self.threshold.unwrap_or(m as u64 / 20)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_threshold_is_m_over_20() {
        let o = EdgeMapOptions::new();
        assert_eq!(o.effective_threshold(2000), 100);
        assert_eq!(o.threshold(7).effective_threshold(2000), 7);
    }

    #[test]
    fn builder_chains() {
        let o = EdgeMapOptions::new().deduplicate(true).traversal(Traversal::Sparse).no_output();
        assert!(o.deduplicate);
        assert_eq!(o.traversal, Traversal::Sparse);
        assert!(!o.output);
    }
}
