//! Deterministic, seeded fault injection for robustness testing.
//!
//! A [`FaultPlan`] arms named *fault points* — fixed places in the
//! framework and the serving engine where a fault may be injected: at
//! graph load, at every `edgeMap` round boundary, when a worker picks up
//! a query, around the result cache, and in the wire read loop. Each
//! armed point fires on the Nth time execution passes through it, where
//! N comes either from an explicit schedule or deterministically from a
//! seed, so a failing chaos run is replayable from `(seed, point)`
//! alone.
//!
//! Three fault shapes cover the failure modes a serving engine must
//! survive (DESIGN.md §11):
//!
//! * [`FaultAction::Panic`] — unwinds with a typed [`FaultError`]
//!   payload, exercising `catch_unwind` worker isolation;
//! * [`FaultAction::Latency`] — sleeps, exercising deadlines, queue-wait
//!   shedding, and retry budgets;
//! * [`FaultAction::Error`] — returns a typed [`FaultError`] through the
//!   call site's normal error channel, exercising graceful degradation.
//!
//! Mirroring the `race-check` oracle (DESIGN.md §10), the types here
//! always exist so harnesses compile without `cfg` noise, but every
//! hook in the traversal kernels and the engine is gated behind the
//! `fault-inject` cargo feature and compiles away entirely when it is
//! off.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Named places where a [`FaultPlan`] may inject a fault. The set is a
/// closed vocabulary: telemetry and chaos tests pin these names.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultPoint {
    /// Graph file loading (the serving `load` path).
    GraphLoad,
    /// The start of each `edgeMap` round inside a running query.
    EdgemapRound,
    /// A scheduler worker dispatching a dequeued query.
    EngineDispatch,
    /// The result-cache probe/insert path.
    EngineCache,
    /// The JSONL wire read loop in `ligra-serve`.
    WireRead,
    /// Applying a mutation batch to the live graph (`MutationLog`).
    MutateApply,
    /// The background CSR compaction of an overlaid snapshot.
    MutateCompact,
    /// The router forwarding a request to a backend (`ligra-route`).
    RouteForward,
}

/// Number of named fault points (array sizes below).
const NUM_POINTS: usize = 8;

impl FaultPoint {
    /// All fault points, in schedule order.
    pub const ALL: [FaultPoint; NUM_POINTS] = [
        FaultPoint::GraphLoad,
        FaultPoint::EdgemapRound,
        FaultPoint::EngineDispatch,
        FaultPoint::EngineCache,
        FaultPoint::WireRead,
        FaultPoint::MutateApply,
        FaultPoint::MutateCompact,
        FaultPoint::RouteForward,
    ];

    /// The stable wire/CLI name of this point.
    pub fn name(self) -> &'static str {
        match self {
            FaultPoint::GraphLoad => "graph.load",
            FaultPoint::EdgemapRound => "edgemap.round",
            FaultPoint::EngineDispatch => "engine.dispatch",
            FaultPoint::EngineCache => "engine.cache",
            FaultPoint::WireRead => "wire.read",
            FaultPoint::MutateApply => "mutate.apply",
            FaultPoint::MutateCompact => "mutate.compact",
            FaultPoint::RouteForward => "route.forward",
        }
    }

    /// Parses a stable name back into a point (`"graph.load"`, ...).
    pub fn parse(s: &str) -> Option<FaultPoint> {
        FaultPoint::ALL.into_iter().find(|p| p.name() == s)
    }

    fn index(self) -> usize {
        match self {
            FaultPoint::GraphLoad => 0,
            FaultPoint::EdgemapRound => 1,
            FaultPoint::EngineDispatch => 2,
            FaultPoint::EngineCache => 3,
            FaultPoint::WireRead => 4,
            FaultPoint::MutateApply => 5,
            FaultPoint::MutateCompact => 6,
            FaultPoint::RouteForward => 7,
        }
    }
}

impl std::fmt::Display for FaultPoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// What an armed fault point does when its schedule fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Unwind with a [`FaultError`] payload (`std::panic::panic_any`),
    /// so the recovery boundary can attribute the panic to its point.
    Panic,
    /// Sleep for the given duration, then continue normally.
    Latency(Duration),
    /// Return a typed [`FaultError`] through the call site's error
    /// channel — a spurious transient failure.
    Error,
}

impl FaultAction {
    /// The stable name of this action (`"panic"`, `"latency"`,
    /// `"error"`).
    pub fn name(self) -> &'static str {
        match self {
            FaultAction::Panic => "panic",
            FaultAction::Latency(_) => "latency",
            FaultAction::Error => "error",
        }
    }
}

/// The typed error a fired fault produces: either returned as
/// `Err(FaultError)` ([`FaultAction::Error`]) or carried as the unwind
/// payload ([`FaultAction::Panic`]).
///
/// Call sites with no `Result` channel (the `edgeMap` round boundary)
/// surface the `Error` action by unwinding with this payload instead;
/// the recovery boundary inspects [`FaultError::action`] to tell an
/// injected transient error apart from an injected panic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultError {
    /// The point that fired.
    pub point: FaultPoint,
    /// 1-based hit count at which the fault fired.
    pub hit: u64,
    /// The action the schedule fired with.
    pub action: FaultAction,
}

impl std::fmt::Display for FaultError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "fault-inject: injected fault at {} (hit {})", self.point, self.hit)
    }
}

impl std::error::Error for FaultError {}

/// When an armed point fires relative to its hit counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Schedule {
    /// Fire exactly once, on the Nth hit (1-based).
    Once(u64),
    /// Fire on every Nth hit (hit % n == 0).
    Every(u64),
}

#[derive(Debug, Clone, Copy)]
struct Arm {
    action: FaultAction,
    schedule: Schedule,
}

/// A deterministic injection schedule over the named [`FaultPoint`]s.
///
/// Construction is cheap and lock-free at check time; the plan is
/// shared by reference (engine configs hold an `Arc<FaultPlan>`). Hit
/// and injection counters are observable afterwards so tests can assert
/// a fault actually fired.
#[derive(Debug)]
pub struct FaultPlan {
    seed: u64,
    arms: [Option<Arm>; NUM_POINTS],
    hits: [AtomicU64; NUM_POINTS],
    injected: [AtomicU64; NUM_POINTS],
}

impl FaultPlan {
    /// An empty plan (nothing armed) carrying `seed` for later
    /// [`FaultPlan::arm`] calls.
    pub fn seeded(seed: u64) -> Self {
        FaultPlan {
            seed,
            arms: [None; NUM_POINTS],
            hits: Default::default(),
            injected: Default::default(),
        }
    }

    /// The seed this plan derives its schedules from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Arms `point` with `action`, firing once on a hit index derived
    /// deterministically from `(seed, point)` — between the 1st and 8th
    /// hit, so short runs still reach the fault.
    pub fn arm(mut self, point: FaultPoint, action: FaultAction) -> Self {
        let nth = 1 + splitmix64(self.seed ^ (0x9e37 + point.index() as u64)) % 8;
        self.arms[point.index()] = Some(Arm { action, schedule: Schedule::Once(nth) });
        self
    }

    /// Arms `point` with `action`, firing once on exactly the `nth`
    /// hit (1-based). `nth == 0` is clamped to 1.
    pub fn arm_at(mut self, point: FaultPoint, action: FaultAction, nth: u64) -> Self {
        self.arms[point.index()] = Some(Arm { action, schedule: Schedule::Once(nth.max(1)) });
        self
    }

    /// Arms `point` with `action`, firing on every `period`-th hit.
    /// `period == 0` is clamped to 1 (fire on every hit).
    pub fn arm_every(mut self, point: FaultPoint, action: FaultAction, period: u64) -> Self {
        self.arms[point.index()] = Some(Arm { action, schedule: Schedule::Every(period.max(1)) });
        self
    }

    /// The 1-based hit at which `point` will fire, if armed `Once`.
    pub fn scheduled_hit(&self, point: FaultPoint) -> Option<u64> {
        match self.arms[point.index()]?.schedule {
            Schedule::Once(n) => Some(n),
            Schedule::Every(_) => None,
        }
    }

    /// Times execution has passed through `point` on this plan.
    pub fn hits(&self, point: FaultPoint) -> u64 {
        self.hits[point.index()].load(Ordering::Relaxed)
    }

    /// Times `point` actually injected a fault.
    pub fn injected(&self, point: FaultPoint) -> u64 {
        self.injected[point.index()].load(Ordering::Relaxed)
    }

    /// Total injections across all points.
    pub fn total_injected(&self) -> u64 {
        self.injected.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }

    /// The hook call sites place at a fault point. Counts the hit, and
    /// if the point's schedule fires: sleeps ([`FaultAction::Latency`]),
    /// unwinds with a [`FaultError`] payload ([`FaultAction::Panic`]),
    /// or returns `Err(FaultError)` ([`FaultAction::Error`]). Unarmed
    /// points only pay one relaxed `fetch_add`.
    pub fn check(&self, point: FaultPoint) -> Result<(), FaultError> {
        let i = point.index();
        let hit = self.hits[i].fetch_add(1, Ordering::Relaxed) + 1;
        let Some(arm) = self.arms[i] else { return Ok(()) };
        let fire = match arm.schedule {
            Schedule::Once(n) => hit == n,
            Schedule::Every(p) => hit.is_multiple_of(p),
        };
        if !fire {
            return Ok(());
        }
        self.injected[i].fetch_add(1, Ordering::Relaxed);
        let err = FaultError { point, hit, action: arm.action };
        match arm.action {
            FaultAction::Latency(d) => {
                std::thread::sleep(d);
                Ok(())
            }
            FaultAction::Error => Err(err),
            FaultAction::Panic => std::panic::panic_any(err),
        }
    }

    /// Parses a CLI/script spec of the form
    /// `point:action[:nth]` where `action` is `panic`, `error`, or
    /// `latency-<millis>ms` — e.g. `wire.read:error:2` or
    /// `edgemap.round:latency-5ms`. Omitting `nth` uses the seeded
    /// schedule.
    pub fn arm_spec(self, spec: &str) -> Result<Self, String> {
        let mut parts = spec.split(':');
        let point = parts
            .next()
            .and_then(FaultPoint::parse)
            .ok_or_else(|| format!("unknown fault point in spec {spec:?}"))?;
        let action = match parts.next() {
            Some("panic") => FaultAction::Panic,
            Some("error") => FaultAction::Error,
            Some(a) if a.starts_with("latency-") && a.ends_with("ms") => {
                let ms: u64 = a["latency-".len()..a.len() - 2]
                    .parse()
                    .map_err(|_| format!("bad latency in spec {spec:?}"))?;
                FaultAction::Latency(Duration::from_millis(ms))
            }
            _ => return Err(format!("unknown fault action in spec {spec:?}")),
        };
        match parts.next() {
            None => Ok(self.arm(point, action)),
            Some(n) => {
                let nth: u64 = n.parse().map_err(|_| format!("bad hit index in spec {spec:?}"))?;
                Ok(self.arm_at(point, action, nth))
            }
        }
    }
}

/// SplitMix64 — the same cheap deterministic mixer the generators use;
/// duplicated here so `core` needs no dependency on graph internals.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unarmed_points_never_fire() {
        let plan = FaultPlan::seeded(7);
        for _ in 0..100 {
            for p in FaultPoint::ALL {
                plan.check(p).expect("unarmed point must not fire");
            }
        }
        assert_eq!(plan.total_injected(), 0);
        assert_eq!(plan.hits(FaultPoint::WireRead), 100);
    }

    #[test]
    fn error_fires_exactly_once_on_the_nth_hit() {
        let plan = FaultPlan::seeded(0).arm_at(FaultPoint::EngineCache, FaultAction::Error, 3);
        assert!(plan.check(FaultPoint::EngineCache).is_ok());
        assert!(plan.check(FaultPoint::EngineCache).is_ok());
        let err = plan.check(FaultPoint::EngineCache).expect_err("3rd hit fires");
        assert_eq!(err.point, FaultPoint::EngineCache);
        assert_eq!(err.hit, 3);
        assert!(plan.check(FaultPoint::EngineCache).is_ok());
        assert_eq!(plan.injected(FaultPoint::EngineCache), 1);
    }

    #[test]
    fn every_schedule_fires_periodically() {
        let plan = FaultPlan::seeded(0).arm_every(FaultPoint::WireRead, FaultAction::Error, 2);
        let fired: Vec<bool> = (0..6).map(|_| plan.check(FaultPoint::WireRead).is_err()).collect();
        assert_eq!(fired, [false, true, false, true, false, true]);
        assert_eq!(plan.injected(FaultPoint::WireRead), 3);
    }

    #[test]
    fn seeded_schedule_is_deterministic_and_in_range() {
        for seed in 0..32u64 {
            let a = FaultPlan::seeded(seed).arm(FaultPoint::EdgemapRound, FaultAction::Error);
            let b = FaultPlan::seeded(seed).arm(FaultPoint::EdgemapRound, FaultAction::Error);
            let nth = a.scheduled_hit(FaultPoint::EdgemapRound).expect("armed once");
            assert_eq!(Some(nth), b.scheduled_hit(FaultPoint::EdgemapRound));
            assert!((1..=8).contains(&nth), "seed {seed} scheduled hit {nth}");
        }
    }

    #[test]
    fn panic_action_unwinds_with_typed_payload() {
        let plan = FaultPlan::seeded(0).arm_at(FaultPoint::EngineDispatch, FaultAction::Panic, 1);
        let payload = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = plan.check(FaultPoint::EngineDispatch);
        }))
        .expect_err("panic action must unwind");
        let err = payload.downcast_ref::<FaultError>().expect("typed payload");
        assert_eq!(err.point, FaultPoint::EngineDispatch);
        assert!(err.to_string().contains("engine.dispatch"));
    }

    #[test]
    fn latency_action_delays_then_succeeds() {
        let plan = FaultPlan::seeded(0).arm_at(
            FaultPoint::GraphLoad,
            FaultAction::Latency(Duration::from_millis(5)),
            1,
        );
        let start = std::time::Instant::now();
        plan.check(FaultPoint::GraphLoad).expect("latency is not an error");
        assert!(start.elapsed() >= Duration::from_millis(5));
        assert_eq!(plan.injected(FaultPoint::GraphLoad), 1);
    }

    #[test]
    fn specs_parse_points_actions_and_hits() {
        let plan = FaultPlan::seeded(0)
            .arm_spec("wire.read:error:2")
            .and_then(|p| p.arm_spec("edgemap.round:latency-5ms"))
            .expect("specs parse");
        assert_eq!(plan.scheduled_hit(FaultPoint::WireRead), Some(2));
        assert!(plan.scheduled_hit(FaultPoint::EdgemapRound).is_some());
        let mutate = FaultPlan::seeded(0).arm_spec("mutate.apply:panic:1").expect("mutate spec");
        assert_eq!(mutate.scheduled_hit(FaultPoint::MutateApply), Some(1));
        assert!(FaultPlan::seeded(0).arm_spec("mutate.compact:error").is_ok());
        let route = FaultPlan::seeded(0).arm_spec("route.forward:error:2").expect("route spec");
        assert_eq!(route.scheduled_hit(FaultPoint::RouteForward), Some(2));
        assert!(FaultPlan::seeded(0).arm_spec("nope:error").is_err());
        assert!(FaultPlan::seeded(0).arm_spec("wire.read:explode").is_err());
        assert!(FaultPlan::seeded(0).arm_spec("wire.read:error:x").is_err());
    }

    #[test]
    fn point_names_round_trip() {
        for p in FaultPoint::ALL {
            assert_eq!(FaultPoint::parse(p.name()), Some(p));
        }
        assert_eq!(FaultPoint::parse("bogus"), None);
    }
}
