//! Traversal instrumentation.
//!
//! The paper's frontier-dynamics figure plots, per `edgeMap` round, the
//! frontier size (vertices and out-edges) and which direction the
//! heuristic chose. [`TraversalStats`] records exactly those rows when
//! passed to [`crate::edge_map_traced`].

/// Which concrete traversal `edgeMap` executed for one round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Push over the sparse frontier.
    Sparse,
    /// Pull over all vertices (read in-edges, early exit).
    Dense,
    /// Push over the dense frontier (no transpose needed).
    DenseForward,
}

impl std::fmt::Display for Mode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Mode::Sparse => write!(f, "sparse"),
            Mode::Dense => write!(f, "dense"),
            Mode::DenseForward => write!(f, "dense-fwd"),
        }
    }
}

/// One `edgeMap` round's record.
#[derive(Debug, Clone, Copy)]
pub struct RoundStat {
    /// `|U|` — number of vertices in the input frontier.
    pub frontier_vertices: u64,
    /// `Σ_{u∈U} deg⁺(u)` — out-edges incident to the frontier.
    pub frontier_out_edges: u64,
    /// Traversal the framework executed.
    pub mode: Mode,
    /// Number of vertices in the output subset (0 when output is skipped).
    pub output_vertices: u64,
}

/// Per-round trace of a frontier-based computation.
#[derive(Debug, Clone, Default)]
pub struct TraversalStats {
    /// One entry per `edgeMap` call, in execution order.
    pub rounds: Vec<RoundStat>,
}

impl TraversalStats {
    /// Fresh, empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of recorded rounds.
    pub fn num_rounds(&self) -> usize {
        self.rounds.len()
    }

    /// Rounds that ran in each mode: `(sparse, dense, dense_forward)`.
    pub fn mode_counts(&self) -> (usize, usize, usize) {
        let mut s = 0;
        let mut d = 0;
        let mut f = 0;
        for r in &self.rounds {
            match r.mode {
                Mode::Sparse => s += 1,
                Mode::Dense => d += 1,
                Mode::DenseForward => f += 1,
            }
        }
        (s, d, f)
    }

    /// Total edges incident to all frontiers (the work the traversal
    /// touched, modulo early exit).
    pub fn total_frontier_edges(&self) -> u64 {
        self.rounds.iter().map(|r| r.frontier_out_edges).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_counting() {
        let mut t = TraversalStats::new();
        for (mode, out) in [(Mode::Sparse, 2), (Mode::Dense, 100), (Mode::Sparse, 1)] {
            t.rounds.push(RoundStat {
                frontier_vertices: 1,
                frontier_out_edges: 10,
                mode,
                output_vertices: out,
            });
        }
        assert_eq!(t.num_rounds(), 3);
        assert_eq!(t.mode_counts(), (2, 1, 0));
        assert_eq!(t.total_frontier_edges(), 30);
    }

    #[test]
    fn display_names() {
        assert_eq!(Mode::Sparse.to_string(), "sparse");
        assert_eq!(Mode::Dense.to_string(), "dense");
        assert_eq!(Mode::DenseForward.to_string(), "dense-fwd");
    }
}
