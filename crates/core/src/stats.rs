//! Traversal telemetry: structured per-round events for `edgeMap` and
//! `vertexMap`.
//!
//! The paper's entire contribution is a runtime *decision* — the
//! `|U| + Σ deg⁺(u) > m/20` direction heuristic — so the framework records
//! not only which branch was taken but what it cost: per-round wall-clock,
//! the heuristic's inputs (`work` vs. effective `threshold`), the frontier
//! representation on entry/exit and whether a sparse↔dense conversion
//! happened, and contention counters (CAS attempts vs. wins on the
//! write-based traversals, in-edges scanned vs. skipped by the early exit
//! on the pull traversal).
//!
//! Collection is driven by the [`Recorder`] trait. The default
//! [`NoopRecorder`] reports `enabled() == false`, which lets the hot path
//! skip timers, counter allocation, and even the O(|U|) frontier-degree
//! pass when the traversal direction is forced — tracing off costs
//! nothing. [`TraversalStats`] is the recording implementation: it stores
//! every event in execution order and can export them as JSON-lines or
//! CSV (see [`crate::trace`]).

use ligra_parallel::counter::StripedU64;

/// Which concrete traversal `edgeMap` executed for one round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Push over the sparse frontier.
    Sparse,
    /// Pull over all vertices (read in-edges, early exit).
    Dense,
    /// Push over the dense frontier (no transpose needed).
    DenseForward,
    /// Cache-aware scatter/gather: push updates into per-partition bins,
    /// then drain each bin with partition-exclusive writes.
    Partitioned,
}

impl std::fmt::Display for Mode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Mode::Sparse => write!(f, "sparse"),
            Mode::Dense => write!(f, "dense"),
            Mode::DenseForward => write!(f, "dense-fwd"),
            Mode::Partitioned => write!(f, "partitioned"),
        }
    }
}

impl std::str::FromStr for Mode {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "sparse" => Ok(Mode::Sparse),
            "dense" => Ok(Mode::Dense),
            "dense-fwd" => Ok(Mode::DenseForward),
            "partitioned" => Ok(Mode::Partitioned),
            other => Err(format!("unknown mode {other:?}")),
        }
    }
}

/// Which framework operation produced an event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// An `edgeMap` round.
    EdgeMap,
    /// A `vertexMap` pass.
    VertexMap,
    /// A `vertexFilter` pass.
    VertexFilter,
}

impl std::fmt::Display for Op {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Op::EdgeMap => write!(f, "edge_map"),
            Op::VertexMap => write!(f, "vertex_map"),
            Op::VertexFilter => write!(f, "vertex_filter"),
        }
    }
}

impl std::str::FromStr for Op {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "edge_map" => Ok(Op::EdgeMap),
            "vertex_map" => Ok(Op::VertexMap),
            "vertex_filter" => Ok(Op::VertexFilter),
            other => Err(format!("unknown op {other:?}")),
        }
    }
}

/// A `vertexSubset` representation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReprKind {
    /// Member-ID list.
    Sparse,
    /// Packed bitset of `n` bits (one bit per vertex).
    Dense,
}

impl std::fmt::Display for ReprKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReprKind::Sparse => write!(f, "sparse"),
            ReprKind::Dense => write!(f, "dense"),
        }
    }
}

impl std::str::FromStr for ReprKind {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "sparse" => Ok(ReprKind::Sparse),
            "dense" => Ok(ReprKind::Dense),
            other => Err(format!("unknown representation {other:?}")),
        }
    }
}

/// One recorded framework operation (the trace event schema).
///
/// Every field is scalar so events are `Copy`, allocation-free to record,
/// and serialize losslessly to flat JSON/CSV. Counter fields are zero when
/// the producing operation does not define them (e.g. `cas_attempts` on a
/// pull round, every edge counter on a `vertexMap` event).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RoundStat {
    /// Which operation produced this event.
    pub op: Op,
    /// `|U|` — number of vertices in the input frontier.
    pub frontier_vertices: u64,
    /// `Σ_{u∈U} deg⁺(u)` — out-edges incident to the frontier.
    pub frontier_out_edges: u64,
    /// The heuristic's input: `|U| + Σ deg⁺(u)`.
    pub work: u64,
    /// The effective direction threshold this round compared against
    /// (the paper's `m/20` unless overridden).
    pub threshold: u64,
    /// Whether the traversal was forced by options (non-`Auto`), i.e. the
    /// heuristic did not decide this round.
    pub forced: bool,
    /// Traversal the framework executed.
    pub mode: Mode,
    /// Representation of the input frontier on entry.
    pub input_repr: ReprKind,
    /// Representation of the output subset.
    pub output_repr: ReprKind,
    /// Whether the input frontier was converted between representations to
    /// satisfy the chosen traversal (the conversion the paper's
    /// `vertexSubset` performs lazily).
    pub converted: bool,
    /// Number of vertices in the output subset (0 when output is skipped).
    pub output_vertices: u64,
    /// Frontier-representation bytes the operation streamed: input plus
    /// produced output. Sparse push reads 4 bytes per frontier entry and
    /// writes exactly 4 per output vertex (chunk-compacted, no sentinel
    /// slots); dense modes stream the packed `⌈n/64⌉·8`-byte bitset each
    /// way. Vertex ops report the bytes of the representation they walked.
    pub frontier_bytes: u64,
    /// Wall-clock nanoseconds for the whole operation (0 when the recorder
    /// was disabled mid-flight — never the case for [`TraversalStats`]).
    pub time_ns: u64,
    /// Atomic update attempts (sparse/dense-forward: one per `update_atomic`
    /// call on a `cond`-passing target).
    pub cas_attempts: u64,
    /// Atomic update attempts that won (returned `true`).
    pub cas_wins: u64,
    /// Edges actually examined: out-edges walked by the push traversals,
    /// in-edges read before the early exit by the pull traversal.
    pub edges_scanned: u64,
    /// In-edges *not* read in dense-pull rounds because `cond` failed at or
    /// during the target's scan (the early-exit saving; 0 for push modes).
    pub edges_skipped: u64,
    /// Cache-fitting vertex partitions the graph was segmented into for a
    /// partitioned round (0 for the classic traversals).
    pub partitions: u64,
    /// Scatter-phase bin fragments stitched during a partitioned round —
    /// one per (source chunk, destination partition) pair that received at
    /// least one update (0 for the classic traversals).
    pub bins_flushed: u64,
    /// Bytes of `(dst, payload)` update entries the scatter phase wrote
    /// into partition bins (0 for the classic traversals).
    pub scatter_bytes: u64,
}

impl RoundStat {
    /// An event for a vertex-level operation over `vertices` members of a
    /// subset currently in representation `repr`.
    pub fn vertex_op(op: Op, vertices: u64, repr: ReprKind, output_vertices: u64) -> Self {
        RoundStat {
            op,
            frontier_vertices: vertices,
            frontier_out_edges: 0,
            work: vertices,
            threshold: 0,
            forced: false,
            mode: match repr {
                ReprKind::Sparse => Mode::Sparse,
                ReprKind::Dense => Mode::Dense,
            },
            input_repr: repr,
            output_repr: repr,
            converted: false,
            output_vertices,
            frontier_bytes: 0,
            time_ns: 0,
            cas_attempts: 0,
            cas_wins: 0,
            edges_scanned: 0,
            edges_skipped: 0,
            partitions: 0,
            bins_flushed: 0,
            scatter_bytes: 0,
        }
    }
}

/// Sink for per-round telemetry events.
///
/// `edge_map` and the recorded `vertexMap` variants consult
/// [`Recorder::enabled`] once per operation: when it returns `false`, all
/// measurement work (timers, counter striping, the O(|U|) degree pass for
/// a forced traversal) is skipped, making the disabled path effectively
/// free. [`TraversalStats`] records; [`NoopRecorder`] does not.
pub trait Recorder {
    /// Whether events should be measured and delivered.
    fn enabled(&self) -> bool;

    /// Consumes one event. Only called when [`Recorder::enabled`] held at
    /// the start of the operation.
    fn record(&mut self, round: RoundStat);
}

/// The zero-overhead default recorder: disabled, records nothing.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    #[inline]
    fn enabled(&self) -> bool {
        false
    }

    #[inline]
    fn record(&mut self, _round: RoundStat) {}
}

impl Recorder for TraversalStats {
    #[inline]
    fn enabled(&self) -> bool {
        true
    }

    #[inline]
    fn record(&mut self, round: RoundStat) {
        self.rounds.push(round);
    }
}

/// Per-round trace of a frontier-based computation.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraversalStats {
    /// One entry per recorded operation, in execution order.
    pub rounds: Vec<RoundStat>,
}

impl TraversalStats {
    /// Fresh, empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of recorded events (all operations).
    pub fn num_rounds(&self) -> usize {
        self.rounds.len()
    }

    /// The `edgeMap` events only, in execution order.
    pub fn edge_map_rounds(&self) -> impl Iterator<Item = &RoundStat> {
        self.rounds.iter().filter(|r| r.op == Op::EdgeMap)
    }

    /// `edgeMap` rounds that ran in each mode:
    /// `(sparse, dense, dense_forward, partitioned)`.
    pub fn mode_counts(&self) -> (usize, usize, usize, usize) {
        let mut s = 0;
        let mut d = 0;
        let mut f = 0;
        let mut p = 0;
        for r in self.edge_map_rounds() {
            match r.mode {
                Mode::Sparse => s += 1,
                Mode::Dense => d += 1,
                Mode::DenseForward => f += 1,
                Mode::Partitioned => p += 1,
            }
        }
        (s, d, f, p)
    }

    /// Total edges incident to all frontiers (the work the traversal
    /// touched, modulo early exit).
    pub fn total_frontier_edges(&self) -> u64 {
        self.edge_map_rounds().map(|r| r.frontier_out_edges).sum()
    }

    /// Total wall-clock nanoseconds across all recorded events.
    pub fn total_time_ns(&self) -> u64 {
        self.rounds.iter().map(|r| r.time_ns).sum()
    }
}

/// Live counters one `edgeMap` round accumulates into, striped per thread
/// so the traversal's inner loops pay one uncontended relaxed RMW per
/// frontier vertex (or per edge on nested-parallel hubs). Only allocated
/// when the recorder is enabled.
#[derive(Debug, Default)]
pub struct EdgeCounters {
    /// `update_atomic` calls on `cond`-passing targets.
    pub cas_attempts: StripedU64,
    /// `update_atomic` calls that returned `true`.
    pub cas_wins: StripedU64,
    /// Edges examined (out-edges pushed, or in-edges read before early exit).
    pub edges_scanned: StripedU64,
    /// In-edges skipped by the pull traversal's early exit / `cond` filter.
    pub edges_skipped: StripedU64,
}

impl EdgeCounters {
    /// Fresh zeroed counters striped for the current thread pool.
    pub fn new() -> Self {
        Self::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn round(mode: Mode, out: u64) -> RoundStat {
        RoundStat {
            op: Op::EdgeMap,
            frontier_vertices: 1,
            frontier_out_edges: 10,
            work: 11,
            threshold: 100,
            forced: false,
            mode,
            input_repr: ReprKind::Sparse,
            output_repr: ReprKind::Sparse,
            converted: false,
            output_vertices: out,
            frontier_bytes: 4 * (1 + out),
            time_ns: 42,
            cas_attempts: 10,
            cas_wins: out,
            edges_scanned: 10,
            edges_skipped: 0,
            partitions: 0,
            bins_flushed: 0,
            scatter_bytes: 0,
        }
    }

    #[test]
    fn mode_counting() {
        let mut t = TraversalStats::new();
        for (mode, out) in [(Mode::Sparse, 2), (Mode::Dense, 100), (Mode::Sparse, 1)] {
            t.rounds.push(round(mode, out));
        }
        t.rounds.push(round(Mode::Partitioned, 5));
        t.rounds.push(RoundStat::vertex_op(Op::VertexMap, 7, ReprKind::Dense, 7));
        assert_eq!(t.num_rounds(), 5);
        assert_eq!(t.mode_counts(), (2, 1, 0, 1), "vertex ops must not count as modes");
        assert_eq!(t.total_frontier_edges(), 40);
    }

    #[test]
    fn display_names() {
        assert_eq!(Mode::Sparse.to_string(), "sparse");
        assert_eq!(Mode::Dense.to_string(), "dense");
        assert_eq!(Mode::DenseForward.to_string(), "dense-fwd");
        assert_eq!(Mode::Partitioned.to_string(), "partitioned");
        assert_eq!(Op::EdgeMap.to_string(), "edge_map");
        assert_eq!(ReprKind::Dense.to_string(), "dense");
    }

    #[test]
    fn enum_round_trips_through_strings() {
        for m in [Mode::Sparse, Mode::Dense, Mode::DenseForward, Mode::Partitioned] {
            assert_eq!(m.to_string().parse::<Mode>().unwrap(), m);
        }
        for o in [Op::EdgeMap, Op::VertexMap, Op::VertexFilter] {
            assert_eq!(o.to_string().parse::<Op>().unwrap(), o);
        }
        for r in [ReprKind::Sparse, ReprKind::Dense] {
            assert_eq!(r.to_string().parse::<ReprKind>().unwrap(), r);
        }
        assert!("pull".parse::<Mode>().is_err());
    }

    #[test]
    fn noop_recorder_is_disabled() {
        let mut r = NoopRecorder;
        assert!(!r.enabled());
        r.record(round(Mode::Sparse, 0)); // must be a no-op
    }

    #[test]
    fn traversal_stats_records() {
        let mut t = TraversalStats::new();
        assert!(Recorder::enabled(&t));
        Recorder::record(&mut t, round(Mode::Dense, 3));
        assert_eq!(t.num_rounds(), 1);
        assert_eq!(t.total_time_ns(), 42);
    }

    #[test]
    fn edge_counters_accumulate() {
        let c = EdgeCounters::new();
        c.cas_attempts.add(5);
        c.cas_wins.add(3);
        assert_eq!(c.cas_attempts.sum(), 5);
        assert_eq!(c.cas_wins.sum(), 3);
    }
}
