//! `edgeMap` — Ligra's central primitive, with automatic direction
//! optimization.
//!
//! `edge_map(G, U, F)` applies `F` to every edge `(u, v)` with `u ∈ U` and
//! `C(v)`, returning the subset of targets for which `F` returned `true`.
//! Three concrete traversals implement it:
//!
//! * [`edge_map_sparse`] (push): the frontier's out-edge range is split into
//!   fixed-size blocks of [`EDGE_BLOCK`] edges (Ligra's granular
//!   parallel_for), so skewed degree distributions load-balance without
//!   per-edge task overhead. Each block writes the targets it claims into a
//!   local buffer; a prefix-sum stitch then copies the buffers into an
//!   exact-size output — no sentinel-filled `Σ deg⁺(u)` array, no second
//!   full-array compaction pass, and deduplication folds into the same walk.
//! * [`edge_map_dense`] (pull): parallel over *all* vertices, scanning each
//!   unclaimed target's in-edges sequentially with an early exit as soon as
//!   `cond` turns false. O(n + m) worst case, but for huge frontiers the
//!   early exit reads only a small fraction of edges, and no atomics are
//!   needed because each target has one owner thread. The frontier is the
//!   packed [`BitSet`]: one bit per source vertex read, and each task owns
//!   one 64-bit word of the output.
//! * [`edge_map_dense_forward`] (push over dense frontier): the paper's
//!   write-based dense variant — walks every frontier vertex's out-edges,
//!   needing no transpose but atomic updates and no early exit. Zero words
//!   of the frontier bitset skip 64 non-members with a single load.
//! * [`edge_map_partitioned`] (cache-aware scatter/gather): vertices are
//!   pre-split into contiguous cache-fitting segments
//!   (`ligra_graph::partition`). A scatter pass walks the frontier's
//!   out-edges and appends `(src, dst, weight)` entries into one bin per
//!   destination partition — sequential streams instead of random writes —
//!   then a gather pass drains each partition's bin in source order,
//!   applying the *non-atomic* [`EdgeMapFn::update`]: every destination
//!   belongs to exactly one partition and each partition is drained by one
//!   task, so writes are partition-exclusive, the same single-owner
//!   contract as the pull traversal. The payoff is locality: on graphs
//!   whose destination state outgrows the LLC, dense pull takes a likely
//!   miss per edge, while the gather phase touches one cache-sized segment
//!   of state at a time.
//!
//! The direction heuristic (the paper's `|U| + Σ deg⁺(u) > m/20`) picks
//! pull for large frontiers and push for small ones, generalizing Beamer
//! et al.'s direction-optimizing BFS to every frontier algorithm. On
//! graphs with at least `ligra_graph::partition::partition_min_n()`
//! vertices, a third point kicks in: a dense round whose frontier
//! out-edge sum also exceeds [`EdgeMapOptions::effective_partition_threshold`]
//! (default `m/4`) is miss-bound enough to route to the partitioned
//! traversal instead.
//!
//! Every round can be observed through a [`Recorder`]: when the recorder is
//! enabled, the round is timed, the heuristic's inputs are captured, the
//! frontier bytes the traversal streams are reported, and the traversals
//! count atomic-update attempts/wins (push modes) and in-edges scanned vs.
//! skipped by the early exit (pull mode) into striped [`EdgeCounters`].
//! When disabled (the [`NoopRecorder`] default), none of that work happens —
//! not even the O(|U|) frontier-degree pass, if the traversal direction is
//! forced and the heuristic doesn't need it.

use crate::options::{EdgeMapOptions, Traversal};
use crate::race::RaceOracle;
use crate::stats::{
    EdgeCounters, Mode, NoopRecorder, Recorder, ReprKind, RoundStat, TraversalStats,
};
use crate::traits::EdgeMapFn;
use crate::vertex_subset::VertexSubset;
use ligra_graph::partition::{partition_min_n, Partitioning};
use ligra_graph::{Graph, VertexId};
use ligra_parallel::bins::{fragment_row, stitch, Fragments};
use ligra_parallel::bitvec::{AtomicBitVec, BitSet};
use ligra_parallel::checked_u32;
use ligra_parallel::scan::prefix_sums;
use ligra_parallel::utils::SendPtr;
use rayon::prelude::*;
use std::sync::atomic::Ordering;
use std::time::Instant;

/// Edges per block of the edge-balanced sparse/hub traversals.
///
/// The push traversal splits the frontier's edge range `0..Σ deg⁺(u)` into
/// blocks of this many edges and hands each block to one task: a power-law
/// hub contributes to many blocks instead of serializing a round on one
/// thread, and a run of low-degree vertices shares one block instead of
/// paying per-vertex task overhead.
pub const EDGE_BLOCK: usize = 1 << 12;

/// Edge weight for position `j` of a weight slice; `()` graphs carry no
/// weight memory, so zero-sized `W` short-circuits to the default.
#[inline(always)]
fn wt<W: Copy + Default>(ws: &[W], j: usize) -> W {
    if std::mem::size_of::<W>() == 0 {
        W::default()
    } else {
        ws[j]
    }
}

/// `edgeMap` with default options (auto direction, `m/20` threshold).
///
/// The input subset may be converted between representations in place —
/// that is the conversion caching the original system performs.
pub fn edge_map<W, F>(g: &Graph<W>, frontier: &mut VertexSubset, f: &F) -> VertexSubset
where
    W: Copy + Send + Sync + Default,
    F: EdgeMapFn<W>,
{
    edge_map_with(g, frontier, f, EdgeMapOptions::default())
}

/// `edgeMap` with explicit [`EdgeMapOptions`].
pub fn edge_map_with<W, F>(
    g: &Graph<W>,
    frontier: &mut VertexSubset,
    f: &F,
    opts: EdgeMapOptions,
) -> VertexSubset
where
    W: Copy + Send + Sync + Default,
    F: EdgeMapFn<W>,
{
    edge_map_impl(g, frontier, f, opts, &mut NoopRecorder)
}

/// `edgeMap` recording one [`RoundStat`] into `stats`.
///
/// Equivalent to [`edge_map_recorded`] with a [`TraversalStats`] sink; kept
/// as the conventional entry point for the applications.
pub fn edge_map_traced<W, F>(
    g: &Graph<W>,
    frontier: &mut VertexSubset,
    f: &F,
    opts: EdgeMapOptions,
    stats: &mut TraversalStats,
) -> VertexSubset
where
    W: Copy + Send + Sync + Default,
    F: EdgeMapFn<W>,
{
    edge_map_impl(g, frontier, f, opts, stats)
}

/// `edgeMap` delivering one timed, counter-annotated [`RoundStat`] to an
/// arbitrary [`Recorder`].
pub fn edge_map_recorded<W, F, R>(
    g: &Graph<W>,
    frontier: &mut VertexSubset,
    f: &F,
    opts: EdgeMapOptions,
    rec: &mut R,
) -> VertexSubset
where
    W: Copy + Send + Sync + Default,
    F: EdgeMapFn<W>,
    R: Recorder,
{
    edge_map_impl(g, frontier, f, opts, rec)
}

fn edge_map_impl<W, F, R>(
    g: &Graph<W>,
    frontier: &mut VertexSubset,
    f: &F,
    opts: EdgeMapOptions,
    rec: &mut R,
) -> VertexSubset
where
    W: Copy + Send + Sync + Default,
    F: EdgeMapFn<W>,
    R: Recorder,
{
    let n = g.num_vertices();
    assert_eq!(frontier.num_vertices(), n, "frontier universe does not match the graph");

    // Cooperative cancellation: a cancelled (or deadline-expired) token
    // turns this round into an empty result, so frontier-driven loops
    // drain at the round boundary without touching any edge. Nothing is
    // recorded — the round did not run.
    if opts.is_cancelled() {
        return VertexSubset::empty(n);
    }

    let tracing = rec.enabled();
    let start = tracing.then(Instant::now);

    let frontier_vertices = frontier.len() as u64;
    // The degree sum is only an input to the Auto heuristic; when the
    // direction is forced and nobody is recording, skip the O(|U|) pass.
    let need_work = tracing || matches!(opts.traversal, Traversal::Auto);
    let out_edges = if need_work { frontier_degree_sum(g, frontier) } else { 0 };
    let work = frontier_vertices + out_edges;
    let threshold = opts.effective_threshold(g.num_edges());

    let mode = match opts.traversal {
        Traversal::Sparse => Mode::Sparse,
        Traversal::Dense => Mode::Dense,
        Traversal::DenseForward => Mode::DenseForward,
        Traversal::Partitioned => Mode::Partitioned,
        Traversal::Auto => {
            if work > threshold {
                // Dense territory. When the round is also miss-bound —
                // enough frontier out-edges that pull would take a cache
                // miss per edge on a graph whose destination state
                // outgrows the LLC — route to scatter/gather instead.
                if out_edges > opts.effective_partition_threshold(g.num_edges())
                    && n >= opts.partition_min_vertices.unwrap_or_else(partition_min_n)
                {
                    Mode::Partitioned
                } else {
                    Mode::Dense
                }
            } else {
                Mode::Sparse
            }
        }
    };

    let input_sparse = frontier.is_sparse();
    let counters = tracing.then(EdgeCounters::new);
    let c = counters.as_ref();

    // A new round starts: reset the oracle's per-round win ledger so a
    // Claim-contract function may legitimately re-win targets it claimed
    // in earlier rounds (Bellman–Ford relaxations, k-core decrements).
    #[cfg(feature = "race-check")]
    if let Some(o) = opts.oracle {
        o.begin_round();
    }

    // The `edgemap.round` fault point fires before any edge is touched.
    // This site has no error channel, so the Error action also surfaces
    // as an unwind with the typed FaultError payload; the engine's
    // catch_unwind boundary tells the two apart via `FaultError::action`.
    #[cfg(feature = "fault-inject")]
    if let Some(plan) = opts.fault {
        if let Err(e) = plan.check(crate::fault::FaultPoint::EdgemapRound) {
            std::panic::panic_any(e);
        }
    }

    let mut pstats = PartitionedRoundStats::default();
    let result = if frontier.is_empty() {
        VertexSubset::empty(n)
    } else {
        match mode {
            Mode::Sparse => {
                let vs = frontier.as_slice();
                sparse_impl(g, vs, f, opts.deduplicate, opts.output, c, opts.oracle)
            }
            Mode::Dense => dense_impl(g, frontier.as_bits(), f, opts.output, c, opts.oracle),
            Mode::DenseForward => {
                dense_forward_impl(g, frontier.as_bits(), f, opts.output, c, opts.oracle)
            }
            Mode::Partitioned => {
                let part = g.partitioning_with(opts.partition_bits);
                let (res, ps) =
                    partitioned_impl(g, frontier.as_bits(), f, opts.output, &part, c, opts.oracle);
                pstats = ps;
                res
            }
        }
    };

    if tracing {
        // The chosen traversal needs sparse input iff it is the push mode;
        // a mismatch with the entry representation means `as_slice` /
        // `as_bits` converted the frontier above (empty frontiers take
        // neither path).
        let wants_sparse = mode == Mode::Sparse;
        let converted = !frontier.is_empty() && wants_sparse != input_sparse;
        // Frontier bytes the traversal streamed: the input representation it
        // consumed plus the output it produced. Sparse push reads 4 bytes
        // per frontier entry and writes exactly 4 per claimed target (the
        // chunked compaction allocates no sentinel slots); the dense modes
        // stream the packed n/8-byte bitset each way.
        let frontier_bytes = if frontier.is_empty() {
            0
        } else {
            match mode {
                Mode::Sparse => 4 * (frontier_vertices + result.len() as u64),
                Mode::Dense | Mode::DenseForward | Mode::Partitioned => {
                    let words = (n.div_ceil(64) * 8) as u64;
                    words + if opts.output { words } else { 0 }
                }
            }
        };
        rec.record(RoundStat {
            op: crate::stats::Op::EdgeMap,
            frontier_vertices,
            frontier_out_edges: out_edges,
            work,
            threshold,
            forced: !matches!(opts.traversal, Traversal::Auto),
            mode,
            input_repr: if input_sparse { ReprKind::Sparse } else { ReprKind::Dense },
            output_repr: if result.is_sparse() { ReprKind::Sparse } else { ReprKind::Dense },
            converted,
            output_vertices: result.len() as u64,
            frontier_bytes,
            time_ns: start.map_or(0, |t| t.elapsed().as_nanos() as u64),
            cas_attempts: c.map_or(0, |c| c.cas_attempts.sum()),
            cas_wins: c.map_or(0, |c| c.cas_wins.sum()),
            edges_scanned: c.map_or(0, |c| c.edges_scanned.sum()),
            edges_skipped: c.map_or(0, |c| c.edges_skipped.sum()),
            partitions: pstats.partitions,
            bins_flushed: pstats.bins_flushed,
            scatter_bytes: pstats.scatter_bytes,
        });
    }
    result
}

/// `|U|`'s incident out-edge count, from whichever representation the
/// frontier currently has (no conversion). The dense pass decodes the
/// bitset word-at-a-time, skipping 64 non-members per zero word.
fn frontier_degree_sum<W: Copy + Send + Sync>(g: &Graph<W>, frontier: &VertexSubset) -> u64 {
    if let Some(vs) = frontier.sparse() {
        g.out_degree_sum(vs)
    } else if let Some(bits) = frontier.dense() {
        bits.words()
            .par_iter()
            .enumerate()
            .map(|(wi, &w0)| {
                let mut sum = 0u64;
                let mut w = w0;
                while w != 0 {
                    let v = checked_u32(wi * 64) + w.trailing_zeros();
                    w &= w - 1;
                    sum += g.out_degree(v) as u64;
                }
                sum
            })
            .sum()
    } else {
        unreachable!()
    }
}

/// Push traversal over a sparse frontier. Public for the ablation benches;
/// use [`edge_map_with`] with [`Traversal::Sparse`] in normal code.
pub fn edge_map_sparse<W, F>(
    g: &Graph<W>,
    vs: &[VertexId],
    f: &F,
    deduplicate: bool,
    output: bool,
) -> VertexSubset
where
    W: Copy + Send + Sync + Default,
    F: EdgeMapFn<W>,
{
    sparse_impl(g, vs, f, deduplicate, output, None, None)
}

fn sparse_impl<W, F>(
    g: &Graph<W>,
    vs: &[VertexId],
    f: &F,
    deduplicate: bool,
    output: bool,
    counters: Option<&EdgeCounters>,
    oracle: Option<&RaceOracle>,
) -> VertexSubset
where
    W: Copy + Send + Sync + Default,
    F: EdgeMapFn<W>,
{
    #[cfg(not(feature = "race-check"))]
    let _ = oracle;
    let n = g.num_vertices();
    // Offsets of each source's run within the frontier's edge range.
    let degrees: Vec<u64> = vs.par_iter().map(|&u| g.out_degree(u) as u64).collect();
    let (offsets, total) = prefix_sums(&degrees);
    let total = total as usize;
    if total == 0 {
        return VertexSubset::empty(n);
    }

    // Deduplication folds into the walk: the first claim of a target wins a
    // bit in `seen` and enters its block's buffer; later claims are dropped
    // at the source instead of in a second pass over the output.
    let seen = (deduplicate && output).then(|| AtomicBitVec::new(n));

    // Edge-balanced blocks: block `b` owns edges [b*EDGE_BLOCK, ...) of the
    // frontier's concatenated edge range, locating its first source by
    // binary search on the offsets (offsets[0] == 0, so the partition point
    // is never 0). Winners go to a block-local buffer; no shared output
    // array, no sentinels.
    let nblocks = total.div_ceil(EDGE_BLOCK);
    let buffers: Vec<Vec<u32>> = (0..nblocks)
        .into_par_iter()
        .map(|b| {
            let lo = (b * EDGE_BLOCK) as u64;
            let hi = (((b + 1) * EDGE_BLOCK).min(total)) as u64;
            let mut i = offsets.partition_point(|&o| o <= lo) - 1;
            let mut buf: Vec<u32> =
                if output { Vec::with_capacity((hi - lo) as usize) } else { Vec::new() };
            let mut scanned = 0u64;
            while i < vs.len() {
                let base = offsets[i];
                if base >= hi {
                    break;
                }
                let u = vs[i];
                let ns = g.out_neighbors(u);
                let ws = g.out_weights(u);
                // This block's sub-range of u's edges (empty for the
                // zero-degree sources sharing an offset).
                let j0 = lo.saturating_sub(base) as usize;
                let j1 = ns.len().min((hi - base) as usize);
                for (j, &v) in ns.iter().enumerate().take(j1).skip(j0) {
                    if f.cond(v) {
                        #[cfg(feature = "race-check")]
                        if let Some(o) = oracle {
                            o.enter_atomic(u, v);
                        }
                        let won = f.update_atomic(u, v, wt(ws, j));
                        #[cfg(feature = "race-check")]
                        if let Some(o) = oracle {
                            o.exit_atomic(u, v, won);
                        }
                        if let Some(c) = counters {
                            c.cas_attempts.incr();
                            if won {
                                c.cas_wins.incr();
                            }
                        }
                        if won && output && seen.as_ref().is_none_or(|s| s.set(v as usize)) {
                            buf.push(v);
                        }
                    }
                }
                scanned += (j1 - j0) as u64;
                i += 1;
            }
            if let Some(c) = counters {
                c.edges_scanned.add(scanned);
            }
            buf
        })
        .collect();

    if !output {
        return VertexSubset::empty(n);
    }

    // Prefix-sum stitch: one copy of each winner into an exact-size vector.
    let mut starts: Vec<usize> = buffers.iter().map(Vec::len).collect();
    let mut acc = 0usize;
    for s in starts.iter_mut() {
        let next = acc + *s;
        *s = acc;
        acc = next;
    }
    let mut next: Vec<u32> = Vec::with_capacity(acc);
    {
        let spare = next.spare_capacity_mut();
        let ptr = SendPtr(spare.as_mut_ptr().cast::<u32>());
        buffers.par_iter().enumerate().for_each(|(b, buf)| {
            let p = ptr;
            // SAFETY: scan offsets are disjoint across blocks and their sum
            // equals the reserved capacity.
            unsafe { std::ptr::copy_nonoverlapping(buf.as_ptr(), p.0.add(starts[b]), buf.len()) };
        });
    }
    // SAFETY: exactly `acc` slots were initialized.
    unsafe { next.set_len(acc) };
    VertexSubset::from_sparse(n, next)
}

/// Pull traversal over all vertices. Each target is owned by one thread,
/// so the non-atomic [`EdgeMapFn::update`] is used and the in-edge scan
/// stops as soon as `cond` fails (BFS: parent found). Frontier membership
/// is one packed bit per source; each task owns one output word, so the
/// produced bitset needs no atomics either.
pub fn edge_map_dense<W, F>(g: &Graph<W>, bits: &BitSet, f: &F, output: bool) -> VertexSubset
where
    W: Copy + Send + Sync + Default,
    F: EdgeMapFn<W>,
{
    dense_impl(g, bits, f, output, None, None)
}

fn dense_impl<W, F>(
    g: &Graph<W>,
    bits: &BitSet,
    f: &F,
    output: bool,
    counters: Option<&EdgeCounters>,
    oracle: Option<&RaceOracle>,
) -> VertexSubset
where
    W: Copy + Send + Sync + Default,
    F: EdgeMapFn<W>,
{
    #[cfg(not(feature = "race-check"))]
    let _ = oracle;
    let n = g.num_vertices();
    debug_assert_eq!(bits.len(), n);
    let nwords = bits.words().len();
    let words: Vec<u64> = (0..nwords)
        .into_par_iter()
        .map(|wi| {
            let lo = wi * 64;
            let hi = (lo + 64).min(n);
            let mut out_w = 0u64;
            let mut scanned_w = 0u64;
            let mut skipped_w = 0u64;
            for v in lo..hi {
                let vid = checked_u32(v);
                let ns = g.in_neighbors(vid);
                let mut scanned = 0usize;
                if f.cond(vid) {
                    let ws = g.in_weights(vid);
                    for (j, &u) in ns.iter().enumerate() {
                        scanned = j + 1;
                        if bits.get(u as usize) {
                            #[cfg(feature = "race-check")]
                            if let Some(o) = oracle {
                                o.enter_exclusive(u, vid);
                            }
                            let won = f.update(u, vid, wt(ws, j));
                            #[cfg(feature = "race-check")]
                            if let Some(o) = oracle {
                                o.exit_exclusive(u, vid, won);
                            }
                            if won && output {
                                out_w |= 1u64 << (v - lo);
                            }
                        }
                        if !f.cond(vid) {
                            break;
                        }
                    }
                }
                scanned_w += scanned as u64;
                skipped_w += (ns.len() - scanned) as u64;
            }
            if let Some(c) = counters {
                c.edges_scanned.add(scanned_w);
                c.edges_skipped.add(skipped_w);
            }
            out_w
        })
        .collect();
    if output {
        VertexSubset::from_bitset(n, BitSet::from_words(words, n))
    } else {
        VertexSubset::empty(n)
    }
}

/// Write-based dense traversal: walk the out-edges of every frontier
/// vertex using the dense representation. No transpose required, but
/// updates race (atomic variant used) and there is no early exit. A zero
/// frontier word skips 64 non-members with a single load; hub vertices
/// split their out-edges into [`EDGE_BLOCK`]-sized blocks.
pub fn edge_map_dense_forward<W, F>(
    g: &Graph<W>,
    bits: &BitSet,
    f: &F,
    output: bool,
) -> VertexSubset
where
    W: Copy + Send + Sync + Default,
    F: EdgeMapFn<W>,
{
    dense_forward_impl(g, bits, f, output, None, None)
}

fn dense_forward_impl<W, F>(
    g: &Graph<W>,
    bits: &BitSet,
    f: &F,
    output: bool,
    counters: Option<&EdgeCounters>,
    oracle: Option<&RaceOracle>,
) -> VertexSubset
where
    W: Copy + Send + Sync + Default,
    F: EdgeMapFn<W>,
{
    #[cfg(not(feature = "race-check"))]
    let _ = oracle;
    let n = g.num_vertices();
    debug_assert_eq!(bits.len(), n);
    let mut next = BitSet::new(n);
    {
        let anext = next.as_atomic();
        bits.words().par_iter().enumerate().for_each(|(wi, &w0)| {
            if w0 == 0 {
                return;
            }
            let mut w = w0;
            while w != 0 {
                let u = checked_u32(wi * 64) + w.trailing_zeros();
                w &= w - 1;
                let ns = g.out_neighbors(u);
                let ws = g.out_weights(u);
                if let Some(c) = counters {
                    c.edges_scanned.add(ns.len() as u64);
                }
                let body = |j: usize| {
                    let v = ns[j];
                    if f.cond(v) {
                        #[cfg(feature = "race-check")]
                        if let Some(o) = oracle {
                            o.enter_atomic(u, v);
                        }
                        let won = f.update_atomic(u, v, wt(ws, j));
                        #[cfg(feature = "race-check")]
                        if let Some(o) = oracle {
                            o.exit_atomic(u, v, won);
                        }
                        if let Some(c) = counters {
                            c.cas_attempts.incr();
                            if won {
                                c.cas_wins.incr();
                            }
                        }
                        if won && output {
                            anext[(v >> 6) as usize].fetch_or(1u64 << (v & 63), Ordering::Relaxed);
                        }
                    }
                };
                if ns.len() > EDGE_BLOCK {
                    let nb = ns.len().div_ceil(EDGE_BLOCK);
                    (0..nb).into_par_iter().for_each(|b| {
                        let lo = b * EDGE_BLOCK;
                        let hi = ((b + 1) * EDGE_BLOCK).min(ns.len());
                        (lo..hi).for_each(&body);
                    });
                } else {
                    (0..ns.len()).for_each(&body);
                }
            }
        });
    }
    if output {
        VertexSubset::from_bitset(n, next)
    } else {
        VertexSubset::empty(n)
    }
}

/// Frontier words one scatter task walks (4096 source vertices): big
/// enough to amortize per-task fragment rows, small enough that rmat-sized
/// frontiers produce many times more chunks than threads. A single
/// mega-hub still serializes its chunk — the accepted trade for keeping
/// the scatter phase allocation-local (see DESIGN §13).
const SCATTER_WORDS: usize = 64;

/// One scattered update: the edge `(src, dst)` with its payload, parked
/// in `dst`'s partition bin until the gather phase drains it.
#[derive(Debug, Clone, Copy)]
struct BinEntry<W> {
    src: VertexId,
    dst: VertexId,
    w: W,
}

/// The partition-specific telemetry a partitioned round reports.
#[derive(Debug, Default, Clone, Copy)]
struct PartitionedRoundStats {
    partitions: u64,
    bins_flushed: u64,
    scatter_bytes: u64,
}

/// Cache-aware scatter/gather traversal over a dense frontier. Public for
/// the ablation benches; use [`edge_map_with`] with
/// [`Traversal::Partitioned`] in normal code. Uses the graph's cached
/// default-width partitioning.
pub fn edge_map_partitioned<W, F>(g: &Graph<W>, bits: &BitSet, f: &F, output: bool) -> VertexSubset
where
    W: Copy + Send + Sync + Default,
    F: EdgeMapFn<W>,
{
    partitioned_impl(g, bits, f, output, &g.partitioning(), None, None).0
}

fn partitioned_impl<W, F>(
    g: &Graph<W>,
    bits: &BitSet,
    f: &F,
    output: bool,
    part: &Partitioning,
    counters: Option<&EdgeCounters>,
    oracle: Option<&RaceOracle>,
) -> (VertexSubset, PartitionedRoundStats)
where
    W: Copy + Send + Sync + Default,
    F: EdgeMapFn<W>,
{
    #[cfg(not(feature = "race-check"))]
    let _ = oracle;
    let n = g.num_vertices();
    debug_assert_eq!(bits.len(), n);
    debug_assert_eq!(part.num_vertices(), n, "partitioning built for a different graph");
    let nparts = part.num_partitions();

    // --- Scatter: parallel over source chunks, writes only chunk-local
    // fragments. No `cond`, no destination state is read — touching
    // `dst`-indexed data here would reintroduce exactly the random
    // accesses this traversal exists to avoid. Entries land in bins in
    // (chunk, bit) order, i.e. ascending source.
    let fwords = bits.words();
    let nchunks = fwords.len().div_ceil(SCATTER_WORDS).max(1);
    let frags: Fragments<BinEntry<W>> = (0..nchunks)
        .into_par_iter()
        .map(|ci| {
            let mut row = fragment_row::<BinEntry<W>>(nparts);
            let mut scanned = 0u64;
            let lo = ci * SCATTER_WORDS;
            let hi = (lo + SCATTER_WORDS).min(fwords.len());
            for (wi, &w0) in fwords.iter().enumerate().take(hi).skip(lo) {
                let mut w = w0;
                while w != 0 {
                    let u = checked_u32(wi * 64) + w.trailing_zeros();
                    w &= w - 1;
                    let ns = g.out_neighbors(u);
                    let ws = g.out_weights(u);
                    scanned += ns.len() as u64;
                    for (j, &v) in ns.iter().enumerate() {
                        row[part.partition_of(v)].push(BinEntry { src: u, dst: v, w: wt(ws, j) });
                    }
                }
            }
            if let Some(c) = counters {
                c.edges_scanned.add(scanned);
            }
            row
        })
        .collect();
    let (bins, bins_flushed) = stitch(frags);
    let entries: usize = bins.iter().map(Vec::len).sum();
    let pstats = PartitionedRoundStats {
        partitions: nparts as u64,
        bins_flushed,
        scatter_bytes: (entries * std::mem::size_of::<BinEntry<W>>()) as u64,
    };

    // --- Gather: parallel over partitions, sequential within one. Every
    // destination lives in exactly one partition and each partition's bin
    // is drained by one task, so the non-atomic `update` and the plain
    // writes into the partition's own output words are race-free — the
    // same single-owner contract the pull traversal relies on, certified
    // by the oracle's exclusive-entry hooks.
    let gather = |p: usize, mut out_words: Option<&mut [u64]>| {
        let base = part.range(p).start;
        let mut skipped = 0u64;
        for e in &bins[p] {
            if f.cond(e.dst) {
                #[cfg(feature = "race-check")]
                if let Some(o) = oracle {
                    o.enter_exclusive(e.src, e.dst);
                }
                let won = f.update(e.src, e.dst, e.w);
                #[cfg(feature = "race-check")]
                if let Some(o) = oracle {
                    o.exit_exclusive(e.src, e.dst, won);
                }
                if won {
                    if let Some(words) = out_words.as_deref_mut() {
                        let local = e.dst as usize - base;
                        words[local >> 6] |= 1u64 << (local & 63);
                    }
                }
            } else {
                skipped += 1;
            }
        }
        if let Some(c) = counters {
            c.edges_skipped.add(skipped);
        }
    };

    let result = if output {
        let mut words = vec![0u64; n.div_ceil(64)];
        // Partition boundaries are multiples of 64 (partition::MIN_BITS),
        // so each partition owns whole output words and the chunking
        // below hands every gather task exactly its own words.
        words
            .par_chunks_mut(part.words_per_partition())
            .enumerate()
            .for_each(|(p, chunk)| gather(p, Some(chunk)));
        VertexSubset::from_bitset(n, BitSet::from_words(words, n))
    } else {
        (0..nparts).into_par_iter().for_each(|p| gather(p, None));
        VertexSubset::empty(n)
    };
    (result, pstats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::edge_fn;
    use ligra_graph::generators::{erdos_renyi, star};
    use ligra_graph::{build_graph, BuildOptions};

    /// Frontier's neighborhood, computed three ways, must agree.
    fn neighborhood_via(g: &Graph, frontier: &[u32], traversal: Traversal) -> Vec<u32> {
        let f = edge_fn(|_s: u32, _d: u32, _w: ()| true, |_| true);
        let mut fr = VertexSubset::from_sparse(g.num_vertices(), frontier.to_vec());
        let opts = EdgeMapOptions::new().traversal(traversal).deduplicate(true);
        edge_map_with(g, &mut fr, &f, opts).to_vec_sorted()
    }

    fn reference_neighborhood(g: &Graph, frontier: &[u32]) -> Vec<u32> {
        let mut out: Vec<u32> =
            frontier.iter().flat_map(|&u| g.out_neighbors(u).iter().copied()).collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    #[test]
    fn all_traversals_agree_on_neighborhood() {
        let g = erdos_renyi(500, 4000, 7, true);
        let frontier: Vec<u32> = (0..500u32).filter(|v| v.is_multiple_of(13)).collect();
        let expect = reference_neighborhood(&g, &frontier);
        for t in Traversal::ALL {
            assert_eq!(neighborhood_via(&g, &frontier, t), expect, "traversal {t:?}");
        }
    }

    #[test]
    fn directed_graph_traversals_agree() {
        let g = erdos_renyi(300, 2500, 3, false);
        let frontier: Vec<u32> = (0..300u32).filter(|v| v.is_multiple_of(7)).collect();
        let expect = reference_neighborhood(&g, &frontier);
        for t in
            [Traversal::Sparse, Traversal::Dense, Traversal::DenseForward, Traversal::Partitioned]
        {
            assert_eq!(neighborhood_via(&g, &frontier, t), expect, "traversal {t:?}");
        }
    }

    #[test]
    fn empty_frontier_yields_empty_output() {
        let g = star(10);
        let f = edge_fn(|_, _, _: ()| true, |_| true);
        let mut fr = VertexSubset::empty(10);
        let out = edge_map(&g, &mut fr, &f);
        assert!(out.is_empty());
    }

    #[test]
    fn cond_filters_targets() {
        // Star: frontier {0}, cond rejects odd vertices.
        let g = star(8);
        let f = edge_fn(|_, _, _: ()| true, |d: u32| d.is_multiple_of(2));
        let mut fr = VertexSubset::single(8, 0);
        for t in
            [Traversal::Sparse, Traversal::Dense, Traversal::DenseForward, Traversal::Partitioned]
        {
            let out = edge_map_with(&g, &mut fr, &f, EdgeMapOptions::new().traversal(t));
            assert_eq!(out.to_vec_sorted(), vec![2, 4, 6], "traversal {t:?}");
        }
    }

    #[test]
    fn update_return_controls_membership() {
        // Keep only targets > 4.
        let g = star(8);
        let f = edge_fn(|_, d: u32, _: ()| d > 4, |_| true);
        let mut fr = VertexSubset::single(8, 0);
        let out = edge_map(&g, &mut fr, &f);
        assert_eq!(out.to_vec_sorted(), vec![5, 6, 7]);
    }

    #[test]
    fn auto_picks_sparse_for_tiny_frontier_and_dense_for_huge() {
        let g = erdos_renyi(2000, 40_000, 1, true);
        let f = edge_fn(|_, _, _: ()| true, |_| true);
        let mut stats = TraversalStats::new();

        let mut tiny = VertexSubset::single(2000, 0);
        let _ = edge_map_traced(&g, &mut tiny, &f, EdgeMapOptions::new(), &mut stats);
        assert_eq!(stats.rounds[0].mode, Mode::Sparse);

        let mut huge = VertexSubset::all(2000);
        let _ = edge_map_traced(&g, &mut huge, &f, EdgeMapOptions::new(), &mut stats);
        assert_eq!(stats.rounds[1].mode, Mode::Dense);
    }

    #[test]
    fn threshold_override_flips_direction() {
        let g = erdos_renyi(1000, 10_000, 2, true);
        let f = edge_fn(|_, _, _: ()| true, |_| true);
        let mut stats = TraversalStats::new();
        let mut fr = VertexSubset::single(1000, 0);
        // Threshold 0: any nonempty frontier exceeds it -> dense.
        let _ = edge_map_traced(&g, &mut fr, &f, EdgeMapOptions::new().threshold(0), &mut stats);
        assert_eq!(stats.rounds[0].mode, Mode::Dense);
        // Huge threshold -> sparse even for the full set.
        let mut all = VertexSubset::all(1000);
        let _ = edge_map_traced(
            &g,
            &mut all,
            &f,
            EdgeMapOptions::new().threshold(u64::MAX),
            &mut stats,
        );
        assert_eq!(stats.rounds[1].mode, Mode::Sparse);
    }

    #[test]
    fn sparse_without_dedup_repeats_targets() {
        // Two sources both point at vertex 2.
        let g = build_graph(3, &[(0, 2), (1, 2)], BuildOptions::directed());
        let f = edge_fn(|_, _, _: ()| true, |_| true);
        let mut fr = VertexSubset::from_sparse(3, vec![0, 1]);
        let out =
            edge_map_with(&g, &mut fr, &f, EdgeMapOptions::new().traversal(Traversal::Sparse));
        assert_eq!(out.to_vec_sorted(), vec![2, 2]);
        let deduped = edge_map_with(
            &g,
            &mut fr,
            &f,
            EdgeMapOptions::new().traversal(Traversal::Sparse).deduplicate(true),
        );
        assert_eq!(deduped.to_vec_sorted(), vec![2]);
    }

    #[test]
    fn no_output_returns_empty_but_applies_updates() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let g = star(50);
        let hits = AtomicUsize::new(0);
        let f = edge_fn(
            |_, _, _: ()| {
                hits.fetch_add(1, Ordering::Relaxed);
                true
            },
            |_| true,
        );
        let mut fr = VertexSubset::single(50, 0);
        for t in
            [Traversal::Sparse, Traversal::Dense, Traversal::DenseForward, Traversal::Partitioned]
        {
            hits.store(0, Ordering::Relaxed);
            let out =
                edge_map_with(&g, &mut fr, &f, EdgeMapOptions::new().traversal(t).no_output());
            assert!(out.is_empty(), "traversal {t:?}");
            assert_eq!(hits.load(Ordering::Relaxed), 49, "traversal {t:?}");
        }
    }

    #[test]
    fn dense_early_exit_stops_scanning() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        // Complete-ish graph: vertex v has many in-neighbors; cond turns
        // false after the first update, so each target sees ~1 call.
        let g = ligra_graph::generators::complete(64);
        let calls = AtomicUsize::new(0);
        let done = AtomicBitVec::new(64);
        let f = edge_fn(
            |_, d: u32, _: ()| {
                calls.fetch_add(1, Ordering::Relaxed);
                done.set(d as usize);
                true
            },
            |d: u32| !done.get(d as usize),
        );
        let mut fr = VertexSubset::all(64);
        let _ = edge_map_with(&g, &mut fr, &f, EdgeMapOptions::new().traversal(Traversal::Dense));
        let c = calls.load(Ordering::Relaxed);
        assert!(c <= 64 + 63, "early exit failed: {c} calls for 64 targets");
    }

    #[test]
    fn weighted_edge_map_passes_weights() {
        use ligra_graph::build_weighted_graph;
        let g = build_weighted_graph(3, &[(0, 1), (0, 2)], &[10, 20], BuildOptions::directed());
        // Keep targets whose incoming weight is 20.
        let f = edge_fn(|_, _, w: i32| w == 20, |_| true);
        let mut fr = VertexSubset::single(3, 0);
        for t in
            [Traversal::Sparse, Traversal::Dense, Traversal::DenseForward, Traversal::Partitioned]
        {
            let out = edge_map_with(&g, &mut fr, &f, EdgeMapOptions::new().traversal(t));
            assert_eq!(out.to_vec_sorted(), vec![2], "traversal {t:?}");
        }
    }

    #[test]
    fn cancelled_round_is_a_recordless_no_op() {
        use crate::cancel::CancelToken;
        use std::sync::atomic::{AtomicUsize, Ordering};
        let g = star(16);
        let hits = AtomicUsize::new(0);
        let f = edge_fn(
            |_, _, _: ()| {
                hits.fetch_add(1, Ordering::Relaxed);
                true
            },
            |_| true,
        );
        let token = CancelToken::new();
        token.cancel();
        let mut stats = TraversalStats::new();
        let mut fr = VertexSubset::single(16, 0);
        let out =
            edge_map_traced(&g, &mut fr, &f, EdgeMapOptions::new().cancel(&token), &mut stats);
        assert!(out.is_empty(), "cancelled round must produce an empty frontier");
        assert_eq!(hits.load(Ordering::Relaxed), 0, "no edge may be touched");
        assert_eq!(stats.num_rounds(), 0, "a skipped round records nothing");

        // A live token changes nothing.
        let live = CancelToken::new();
        let mut fr = VertexSubset::single(16, 0);
        let out = edge_map_with(&g, &mut fr, &f, EdgeMapOptions::new().cancel(&live));
        assert_eq!(out.len(), 15);
    }

    #[test]
    #[should_panic(expected = "universe does not match")]
    fn mismatched_universe_panics() {
        let g = star(5);
        let f = edge_fn(|_, _, _: ()| true, |_| true);
        let mut fr = VertexSubset::single(6, 0);
        let _ = edge_map(&g, &mut fr, &f);
    }

    #[test]
    fn recorded_round_captures_heuristic_inputs() {
        let g = erdos_renyi(1000, 10_000, 5, true);
        let f = edge_fn(|_, _, _: ()| true, |_| true);
        let mut stats = TraversalStats::new();
        let mut fr = VertexSubset::from_sparse(1000, vec![0, 1, 2]);
        let _ = edge_map_traced(&g, &mut fr, &f, EdgeMapOptions::new(), &mut stats);
        let r = stats.rounds[0];
        assert_eq!(r.frontier_vertices, 3);
        assert_eq!(r.work, r.frontier_vertices + r.frontier_out_edges);
        assert_eq!(r.threshold, g.num_edges() as u64 / 20);
        assert!(!r.forced);
        // Auto consistency: dense iff work exceeded the threshold.
        assert_eq!(r.mode == Mode::Dense, r.work > r.threshold);
    }

    #[test]
    fn recorded_round_detects_conversion() {
        let g = erdos_renyi(500, 5000, 9, true);
        let f = edge_fn(|_, _, _: ()| true, |_| true);

        // Sparse input forced through the pull traversal: must convert.
        let mut stats = TraversalStats::new();
        let mut fr = VertexSubset::from_sparse(500, vec![0, 1]);
        let opts = EdgeMapOptions::new().traversal(Traversal::Dense);
        let _ = edge_map_traced(&g, &mut fr, &f, opts, &mut stats);
        let r = stats.rounds[0];
        assert_eq!(r.input_repr, ReprKind::Sparse);
        assert!(r.converted);
        assert!(r.forced);
        assert_eq!(r.output_repr, ReprKind::Dense);

        // Sparse input through the push traversal: no conversion.
        let mut stats = TraversalStats::new();
        let mut fr = VertexSubset::from_sparse(500, vec![0, 1]);
        let opts = EdgeMapOptions::new().traversal(Traversal::Sparse);
        let _ = edge_map_traced(&g, &mut fr, &f, opts, &mut stats);
        assert!(!stats.rounds[0].converted);
    }

    #[test]
    fn sparse_round_counts_cas_attempts_and_wins() {
        // Star from 0: 7 targets, cond rejects odd ones, update claims >4.
        let g = star(8);
        let f = edge_fn(|_, d: u32, _: ()| d > 4, |d: u32| d.is_multiple_of(2));
        let mut stats = TraversalStats::new();
        let mut fr = VertexSubset::single(8, 0);
        let opts = EdgeMapOptions::new().traversal(Traversal::Sparse);
        let _ = edge_map_traced(&g, &mut fr, &f, opts, &mut stats);
        let r = stats.rounds[0];
        assert_eq!(r.edges_scanned, 7, "all out-edges walked");
        assert_eq!(r.cas_attempts, 3, "targets 2, 4, 6 pass cond");
        assert_eq!(r.cas_wins, 1, "only target 6 is > 4");
        assert_eq!(r.edges_skipped, 0, "push mode has no early exit");
    }

    #[test]
    fn dense_round_counts_scanned_and_skipped_edges() {
        use ligra_graph::generators::complete;
        // Full frontier on K64 with a one-shot cond: the early exit must
        // leave most in-edges unread, and scanned+skipped must cover all m.
        let g = complete(64);
        let done = AtomicBitVec::new(64);
        let f = edge_fn(
            |_, d: u32, _: ()| {
                done.set(d as usize);
                true
            },
            |d: u32| !done.get(d as usize),
        );
        let mut stats = TraversalStats::new();
        let mut fr = VertexSubset::all(64);
        let opts = EdgeMapOptions::new().traversal(Traversal::Dense);
        let _ = edge_map_traced(&g, &mut fr, &f, opts, &mut stats);
        let r = stats.rounds[0];
        let total_in_edges = g.num_edges() as u64;
        assert_eq!(r.edges_scanned + r.edges_skipped, total_in_edges);
        assert!(r.edges_scanned <= 64 + 63, "early exit must bound the scan");
        assert!(r.edges_skipped > 0);
        assert_eq!(r.cas_attempts, 0, "pull mode uses no atomics");
    }

    #[test]
    fn forced_untracked_round_skips_degree_sum_but_traced_does_not() {
        let g = star(16);
        let f = edge_fn(|_, _, _: ()| true, |_| true);
        let mut fr = VertexSubset::single(16, 0);
        // Untracked + forced: work fields never materialize (observable only
        // as "still correct output" — the skip is a pure optimization).
        let out =
            edge_map_with(&g, &mut fr, &f, EdgeMapOptions::new().traversal(Traversal::Sparse));
        assert_eq!(out.len(), 15);
        // Traced + forced: the degree sum must still be recorded.
        let mut stats = TraversalStats::new();
        let mut fr = VertexSubset::single(16, 0);
        let _ = edge_map_traced(
            &g,
            &mut fr,
            &f,
            EdgeMapOptions::new().traversal(Traversal::Sparse),
            &mut stats,
        );
        assert_eq!(stats.rounds[0].frontier_out_edges, 15);
        assert!(stats.rounds[0].forced);
    }

    #[test]
    fn recorded_rounds_have_nonzero_time() {
        let g = erdos_renyi(200, 1000, 4, true);
        let f = edge_fn(|_, _, _: ()| true, |_| true);
        let mut stats = TraversalStats::new();
        let mut fr = VertexSubset::single(200, 0);
        let _ = edge_map_traced(&g, &mut fr, &f, EdgeMapOptions::new(), &mut stats);
        assert!(stats.rounds[0].time_ns > 0);
    }

    #[test]
    fn sparse_push_spanning_many_edge_blocks_matches_reference() {
        // A hub whose degree is many EDGE_BLOCKs plus a tail of small
        // vertices: exercises the partition-point start, the mid-hub block
        // boundaries, and the stitch across non-uniform buffer sizes.
        let hub_deg = 3 * EDGE_BLOCK + 17;
        let n = hub_deg + 10;
        let mut edges: Vec<(u32, u32)> = (0..hub_deg as u32).map(|j| (0, j + 1)).collect();
        for k in 0..9u32 {
            edges.push((1 + k, n as u32 - 1));
        }
        let g = build_graph(n, &edges, BuildOptions::directed());
        let frontier: Vec<u32> = (0..10u32).collect();
        let expect = reference_neighborhood(&g, &frontier);
        for t in [Traversal::Sparse, Traversal::Auto] {
            assert_eq!(neighborhood_via(&g, &frontier, t), expect, "traversal {t:?}");
        }
    }

    #[test]
    fn sparse_frontier_with_zero_degree_sources() {
        // Sources with no out-edges share prefix-sum offsets with their
        // neighbors; the block walk must neither visit their (empty) edge
        // ranges twice nor lose the edges around them.
        let g = build_graph(6, &[(0, 5), (3, 4)], BuildOptions::directed());
        let f = edge_fn(|_, _, _: ()| true, |_| true);
        let mut fr = VertexSubset::from_sparse(6, vec![0, 1, 2, 3]);
        let out =
            edge_map_with(&g, &mut fr, &f, EdgeMapOptions::new().traversal(Traversal::Sparse));
        assert_eq!(out.to_vec_sorted(), vec![4, 5]);
    }

    #[test]
    fn recorded_sparse_round_reports_exact_output_bytes() {
        // Star from 0: 7 out-edges, but only 3 targets pass cond. The old
        // sentinel scheme allocated 4*7 output bytes; chunked compaction
        // reports exactly 4*(|U| + |output|).
        let g = star(8);
        let f = edge_fn(|_, _, _: ()| true, |d: u32| d.is_multiple_of(2));
        let mut stats = TraversalStats::new();
        let mut fr = VertexSubset::single(8, 0);
        let opts = EdgeMapOptions::new().traversal(Traversal::Sparse);
        let _ = edge_map_traced(&g, &mut fr, &f, opts, &mut stats);
        let r = stats.rounds[0];
        assert_eq!(r.output_vertices, 3);
        assert_eq!(r.frontier_bytes, 4 * (1 + 3));
    }

    #[test]
    fn partitioned_round_records_partition_telemetry() {
        let g = erdos_renyi(500, 5000, 11, true);
        let f = edge_fn(|_, _, _: ()| true, |_| true);
        let mut stats = TraversalStats::new();
        let mut fr = VertexSubset::all(500);
        // Width 6 -> 64-vertex partitions -> ceil(500/64) = 8 of them.
        let opts = EdgeMapOptions::new().traversal(Traversal::Partitioned).partition_bits(6);
        let _ = edge_map_traced(&g, &mut fr, &f, opts, &mut stats);
        let r = stats.rounds[0];
        assert_eq!(r.mode, Mode::Partitioned);
        assert!(r.forced);
        assert_eq!(r.partitions, 8);
        assert!(r.bins_flushed > 0);
        // One 8-byte (src, dst) entry per frontier out-edge: the scatter
        // phase bins everything and defers cond to the gather.
        assert_eq!(r.scatter_bytes, 8 * r.frontier_out_edges);
        assert_eq!(r.edges_scanned, r.frontier_out_edges);
        let words = 500usize.div_ceil(64) as u64 * 8;
        assert_eq!(r.frontier_bytes, 2 * words, "dense-style input + output bitsets");
        // The classic traversals must keep the new columns at zero.
        let mut fr = VertexSubset::all(500);
        let opts = EdgeMapOptions::new().traversal(Traversal::Dense);
        let _ = edge_map_traced(&g, &mut fr, &f, opts, &mut stats);
        let r = stats.rounds[1];
        assert_eq!((r.partitions, r.bins_flushed, r.scatter_bytes), (0, 0, 0));
    }

    #[test]
    fn partitioned_cond_filtering_counts_skipped_entries() {
        let g = star(80);
        let f = edge_fn(|_, _, _: ()| true, |d: u32| d.is_multiple_of(2));
        let mut stats = TraversalStats::new();
        let mut fr = VertexSubset::single(80, 0);
        let opts = EdgeMapOptions::new().traversal(Traversal::Partitioned).partition_bits(6);
        let out = edge_map_traced(&g, &mut fr, &f, opts, &mut stats);
        assert_eq!(out.len(), 39, "targets 2,4,...,78");
        let r = stats.rounds[0];
        assert_eq!(r.edges_scanned, 79, "scatter bins every out-edge");
        assert_eq!(r.edges_skipped, 40, "gather drops the cond-failing entries");
    }

    #[test]
    fn auto_upgrades_miss_bound_dense_rounds_to_partitioned() {
        let g = erdos_renyi(2000, 40_000, 1, true);
        let f = edge_fn(|_, _, _: ()| true, |_| true);
        let mut stats = TraversalStats::new();
        // With the size floor lowered, a full frontier is both dense
        // (work > m/20) and miss-bound (out-edges > m/4).
        let opts = EdgeMapOptions::new().partition_min_vertices(1);
        let mut huge = VertexSubset::all(2000);
        let _ = edge_map_traced(&g, &mut huge, &f, opts, &mut stats);
        assert_eq!(stats.rounds[0].mode, Mode::Partitioned);
        assert!(!stats.rounds[0].forced, "Auto decided, not a forced policy");
        // A tiny frontier still takes the sparse path.
        let mut tiny = VertexSubset::single(2000, 0);
        let _ = edge_map_traced(&g, &mut tiny, &f, opts, &mut stats);
        assert_eq!(stats.rounds[1].mode, Mode::Sparse);
        // At the production floor this graph is far too small to upgrade.
        let mut huge = VertexSubset::all(2000);
        let _ = edge_map_traced(&g, &mut huge, &f, EdgeMapOptions::new(), &mut stats);
        assert_eq!(stats.rounds[2].mode, Mode::Dense);
        // Raising the partition threshold vetoes the upgrade even when big.
        let mut huge = VertexSubset::all(2000);
        let opts = EdgeMapOptions::new().partition_min_vertices(1).partition_threshold(u64::MAX);
        let _ = edge_map_traced(&g, &mut huge, &f, opts, &mut stats);
        assert_eq!(stats.rounds[3].mode, Mode::Dense);
    }

    #[test]
    fn partitioned_handles_hub_spanning_partitions() {
        // A hub with out-edges into every partition plus tail sources:
        // exercises fragment rows with many active bins and the stitch's
        // chunk-order concatenation.
        let hub_deg = 2 * EDGE_BLOCK + 11;
        let n = hub_deg + 10;
        let mut edges: Vec<(u32, u32)> = (0..hub_deg as u32).map(|j| (0, j + 1)).collect();
        for k in 0..9u32 {
            edges.push((1 + k, n as u32 - 1));
        }
        let g = build_graph(n, &edges, BuildOptions::directed());
        let frontier: Vec<u32> = (0..10u32).collect();
        let expect = reference_neighborhood(&g, &frontier);
        assert_eq!(neighborhood_via(&g, &frontier, Traversal::Partitioned), expect);
    }

    #[test]
    fn recorded_dense_round_reports_packed_bitset_bytes() {
        let g = erdos_renyi(1000, 10_000, 2, true);
        let f = edge_fn(|_, _, _: ()| true, |_| true);
        let mut stats = TraversalStats::new();
        let mut fr = VertexSubset::all(1000);
        let opts = EdgeMapOptions::new().traversal(Traversal::Dense);
        let _ = edge_map_traced(&g, &mut fr, &f, opts, &mut stats);
        let words = 1000usize.div_ceil(64) as u64 * 8;
        assert_eq!(stats.rounds[0].frontier_bytes, 2 * words, "input + output bitset");

        // Without output only the input side is streamed.
        let mut fr = VertexSubset::all(1000);
        let _ = edge_map_traced(&g, &mut fr, &f, opts.no_output(), &mut stats);
        assert_eq!(stats.rounds[1].frontier_bytes, words);
    }
}
