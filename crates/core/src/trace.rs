//! Machine-readable trace export for [`TraversalStats`].
//!
//! Two flat formats, both hand-rolled so the framework stays
//! dependency-free:
//!
//! * **JSON lines** — one self-describing JSON object per recorded event
//!   ([`to_json_lines`] / [`from_json_lines`]). The schema is flat (only
//!   numbers, booleans, and closed-vocabulary strings), so the parser is a
//!   small exact scanner, not a general JSON implementation.
//! * **CSV** — a header row plus one row per event ([`to_csv`] /
//!   [`from_csv`]), column order fixed by [`COLUMNS`].
//!
//! Both directions round-trip losslessly (`from_*(to_*(t)) == t`), which
//! the figure binaries rely on: they export traces and re-read them to
//! build tables. [`summary`] folds a trace into per-mode aggregates for
//! quick human inspection.

use crate::stats::{Mode, Op, ReprKind, RoundStat, TraversalStats};
use std::fmt::Write as _;

/// Column order shared by the CSV header and the JSON key order.
pub const COLUMNS: [&str; 21] = [
    "round",
    "op",
    "mode",
    "frontier_vertices",
    "frontier_out_edges",
    "work",
    "threshold",
    "forced",
    "input_repr",
    "output_repr",
    "converted",
    "output_vertices",
    "frontier_bytes",
    "time_ns",
    "cas_attempts",
    "cas_wins",
    "edges_scanned",
    "edges_skipped",
    "partitions",
    "bins_flushed",
    "scatter_bytes",
];

/// Serializes a trace as JSON lines: one flat object per event, keys in
/// [`COLUMNS`] order, `round` being the event's position in the trace.
pub fn to_json_lines(stats: &TraversalStats) -> String {
    let mut out = String::new();
    for (i, r) in stats.rounds.iter().enumerate() {
        let _ = write!(
            out,
            concat!(
                "{{\"round\":{},\"op\":\"{}\",\"mode\":\"{}\",",
                "\"frontier_vertices\":{},\"frontier_out_edges\":{},",
                "\"work\":{},\"threshold\":{},\"forced\":{},",
                "\"input_repr\":\"{}\",\"output_repr\":\"{}\",\"converted\":{},",
                "\"output_vertices\":{},\"frontier_bytes\":{},\"time_ns\":{},",
                "\"cas_attempts\":{},\"cas_wins\":{},",
                "\"edges_scanned\":{},\"edges_skipped\":{},",
                "\"partitions\":{},\"bins_flushed\":{},\"scatter_bytes\":{}}}\n"
            ),
            i,
            r.op,
            r.mode,
            r.frontier_vertices,
            r.frontier_out_edges,
            r.work,
            r.threshold,
            r.forced,
            r.input_repr,
            r.output_repr,
            r.converted,
            r.output_vertices,
            r.frontier_bytes,
            r.time_ns,
            r.cas_attempts,
            r.cas_wins,
            r.edges_scanned,
            r.edges_skipped,
            r.partitions,
            r.bins_flushed,
            r.scatter_bytes,
        );
    }
    out
}

/// Serializes a trace as CSV with a [`COLUMNS`] header row.
pub fn to_csv(stats: &TraversalStats) -> String {
    let mut out = COLUMNS.join(",");
    out.push('\n');
    for (i, r) in stats.rounds.iter().enumerate() {
        let _ = writeln!(
            out,
            "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}",
            i,
            r.op,
            r.mode,
            r.frontier_vertices,
            r.frontier_out_edges,
            r.work,
            r.threshold,
            r.forced,
            r.input_repr,
            r.output_repr,
            r.converted,
            r.output_vertices,
            r.frontier_bytes,
            r.time_ns,
            r.cas_attempts,
            r.cas_wins,
            r.edges_scanned,
            r.edges_skipped,
            r.partitions,
            r.bins_flushed,
            r.scatter_bytes,
        );
    }
    out
}

/// Strips one optional pair of surrounding quotes from a scanned JSON
/// token and rejects anything the flat closed-vocabulary schema never
/// emits: interior or unbalanced quotes and backslash escapes. Splitting
/// the line on `,`/`:` is only sound while those stay impossible inside
/// values, so smuggling them in must be a parse error, not silent
/// truncation.
fn unquote(token: &str) -> Result<&str, String> {
    let t = token.trim();
    let inner = match t.strip_prefix('"') {
        Some(rest) => rest.strip_suffix('"').ok_or_else(|| format!("{t:?}: unbalanced quotes"))?,
        None => t,
    };
    if inner.contains('"') || inner.contains('\\') {
        return Err(format!("{t:?}: quotes/escapes are not part of the trace schema"));
    }
    Ok(inner)
}

/// One parsed `key -> raw value` record from either format.
struct Record<'a> {
    fields: Vec<(&'a str, &'a str)>,
}

impl<'a> Record<'a> {
    fn get(&self, key: &str) -> Result<&'a str, String> {
        self.fields
            .iter()
            .find(|(k, _)| *k == key)
            .map(|(_, v)| *v)
            .ok_or_else(|| format!("missing field {key:?}"))
    }

    fn u64(&self, key: &str) -> Result<u64, String> {
        let raw = self.get(key)?;
        raw.parse().map_err(|_| format!("field {key:?}: not a u64: {raw:?}"))
    }

    fn bool(&self, key: &str) -> Result<bool, String> {
        match self.get(key)? {
            "true" => Ok(true),
            "false" => Ok(false),
            other => Err(format!("field {key:?}: not a bool: {other:?}")),
        }
    }

    fn round_stat(&self) -> Result<RoundStat, String> {
        Ok(RoundStat {
            op: self.get("op")?.parse::<Op>()?,
            frontier_vertices: self.u64("frontier_vertices")?,
            frontier_out_edges: self.u64("frontier_out_edges")?,
            work: self.u64("work")?,
            threshold: self.u64("threshold")?,
            forced: self.bool("forced")?,
            mode: self.get("mode")?.parse::<Mode>()?,
            input_repr: self.get("input_repr")?.parse::<ReprKind>()?,
            output_repr: self.get("output_repr")?.parse::<ReprKind>()?,
            converted: self.bool("converted")?,
            output_vertices: self.u64("output_vertices")?,
            frontier_bytes: self.u64("frontier_bytes")?,
            time_ns: self.u64("time_ns")?,
            cas_attempts: self.u64("cas_attempts")?,
            cas_wins: self.u64("cas_wins")?,
            edges_scanned: self.u64("edges_scanned")?,
            edges_skipped: self.u64("edges_skipped")?,
            partitions: self.u64("partitions")?,
            bins_flushed: self.u64("bins_flushed")?,
            scatter_bytes: self.u64("scatter_bytes")?,
        })
    }
}

/// Parses the output of [`to_json_lines`] back into a trace.
///
/// Accepts exactly the flat schema this module emits (no nesting, no
/// escapes, no embedded commas) — it is a format reader, not a general
/// JSON parser. Blank lines are skipped.
pub fn from_json_lines(text: &str) -> Result<TraversalStats, String> {
    let mut stats = TraversalStats::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let body = line
            .strip_prefix('{')
            .and_then(|s| s.strip_suffix('}'))
            .ok_or_else(|| format!("line {}: not a JSON object", lineno + 1))?;
        let mut fields = Vec::with_capacity(COLUMNS.len());
        for pair in body.split(',') {
            let (k, v) = pair
                .split_once(':')
                .ok_or_else(|| format!("line {}: malformed pair {pair:?}", lineno + 1))?;
            let k = unquote(k).map_err(|e| format!("line {}: key {e}", lineno + 1))?;
            let v = unquote(v).map_err(|e| format!("line {}: value {e}", lineno + 1))?;
            fields.push((k, v));
        }
        let rec = Record { fields };
        let r = rec.round_stat().map_err(|e| format!("line {}: {e}", lineno + 1))?;
        stats.rounds.push(r);
    }
    Ok(stats)
}

/// Parses the output of [`to_csv`] back into a trace.
///
/// The first non-empty line must be the [`COLUMNS`] header (any column
/// order is accepted; names bind values).
pub fn from_csv(text: &str) -> Result<TraversalStats, String> {
    let mut lines = text.lines().filter(|l| !l.trim().is_empty());
    let header: Vec<&str> =
        lines.next().ok_or_else(|| "empty CSV".to_string())?.split(',').map(str::trim).collect();
    let mut stats = TraversalStats::new();
    for (lineno, line) in lines.enumerate() {
        let values: Vec<&str> = line.split(',').map(str::trim).collect();
        if values.len() != header.len() {
            return Err(format!(
                "row {}: {} values for {} columns",
                lineno + 2,
                values.len(),
                header.len()
            ));
        }
        let fields: Vec<(&str, &str)> =
            header.iter().copied().zip(values.iter().copied()).collect();
        let rec = Record { fields };
        let r = rec.round_stat().map_err(|e| format!("row {}: {e}", lineno + 2))?;
        stats.rounds.push(r);
    }
    Ok(stats)
}

/// Writes a trace as `<dir>/<stem>.jsonl` (the [`to_json_lines`] format)
/// and returns the path written. One shared helper so every producer of
/// on-disk kernel traces — the figure binaries and the engine's
/// per-query trace join — agrees on naming and format; a span or report
/// that carries `stem` can always be resolved back to its rows.
pub fn save_jsonl(
    dir: &std::path::Path,
    stem: &str,
    stats: &TraversalStats,
) -> Result<std::path::PathBuf, String> {
    let path = dir.join(format!("{stem}.jsonl"));
    std::fs::write(&path, to_json_lines(stats))
        .map_err(|e| format!("write {}: {e}", path.display()))?;
    Ok(path)
}

/// Aggregate view of a trace, one bucket per `edgeMap` mode plus totals.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceSummary {
    /// Total recorded events (edge and vertex operations).
    pub events: usize,
    /// `edgeMap` rounds by mode: sparse, dense, dense-forward.
    pub sparse_rounds: usize,
    /// Dense (pull) rounds.
    pub dense_rounds: usize,
    /// Dense-forward rounds.
    pub dense_forward_rounds: usize,
    /// Partitioned scatter/gather rounds.
    pub partitioned_rounds: usize,
    /// Rounds whose input frontier was converted between representations.
    pub conversions: usize,
    /// Total wall-clock nanoseconds across all events.
    pub total_time_ns: u64,
    /// Σ edges scanned by the traversals.
    pub edges_scanned: u64,
    /// Σ in-edges skipped by the pull early exit.
    pub edges_skipped: u64,
    /// Σ atomic update attempts in the push traversals.
    pub cas_attempts: u64,
    /// Σ atomic update attempts that won.
    pub cas_wins: u64,
    /// Σ bytes the partitioned scatter phase wrote into bins.
    pub scatter_bytes: u64,
}

impl TraceSummary {
    /// Fraction of atomic update attempts that won (1.0 when none made).
    pub fn cas_win_rate(&self) -> f64 {
        if self.cas_attempts == 0 {
            1.0
        } else {
            self.cas_wins as f64 / self.cas_attempts as f64
        }
    }

    /// Fraction of in-edges the pull traversal avoided reading.
    pub fn early_exit_rate(&self) -> f64 {
        let total = self.edges_scanned + self.edges_skipped;
        if total == 0 {
            0.0
        } else {
            self.edges_skipped as f64 / total as f64
        }
    }
}

impl std::fmt::Display for TraceSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{} events ({} sparse / {} dense / {} dense-fwd / {} partitioned edgeMap rounds, \
             {} conversions)",
            self.events,
            self.sparse_rounds,
            self.dense_rounds,
            self.dense_forward_rounds,
            self.partitioned_rounds,
            self.conversions
        )?;
        writeln!(
            f,
            "time {:.3} ms | edges scanned {} skipped {} (early-exit {:.1}%)",
            self.total_time_ns as f64 / 1e6,
            self.edges_scanned,
            self.edges_skipped,
            100.0 * self.early_exit_rate()
        )?;
        write!(
            f,
            "cas attempts {} wins {} (win rate {:.1}%)",
            self.cas_attempts,
            self.cas_wins,
            100.0 * self.cas_win_rate()
        )
    }
}

/// Folds a trace into a [`TraceSummary`].
pub fn summary(stats: &TraversalStats) -> TraceSummary {
    let mut s = TraceSummary { events: stats.rounds.len(), ..TraceSummary::default() };
    for r in &stats.rounds {
        if r.op == Op::EdgeMap {
            match r.mode {
                Mode::Sparse => s.sparse_rounds += 1,
                Mode::Dense => s.dense_rounds += 1,
                Mode::DenseForward => s.dense_forward_rounds += 1,
                Mode::Partitioned => s.partitioned_rounds += 1,
            }
            if r.converted {
                s.conversions += 1;
            }
        }
        s.total_time_ns += r.time_ns;
        s.edges_scanned += r.edges_scanned;
        s.edges_skipped += r.edges_skipped;
        s.cas_attempts += r.cas_attempts;
        s.cas_wins += r.cas_wins;
        s.scatter_bytes += r.scatter_bytes;
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> TraversalStats {
        let mut t = TraversalStats::new();
        t.rounds.push(RoundStat {
            op: Op::EdgeMap,
            frontier_vertices: 1,
            frontier_out_edges: 9,
            work: 10,
            threshold: 500,
            forced: false,
            mode: Mode::Sparse,
            input_repr: ReprKind::Sparse,
            output_repr: ReprKind::Sparse,
            converted: false,
            output_vertices: 9,
            frontier_bytes: 40,
            time_ns: 1234,
            cas_attempts: 9,
            cas_wins: 9,
            edges_scanned: 9,
            edges_skipped: 0,
            partitions: 0,
            bins_flushed: 0,
            scatter_bytes: 0,
        });
        t.rounds.push(RoundStat {
            op: Op::EdgeMap,
            frontier_vertices: 900,
            frontier_out_edges: 8000,
            work: 8900,
            threshold: 500,
            forced: false,
            mode: Mode::Dense,
            input_repr: ReprKind::Sparse,
            output_repr: ReprKind::Dense,
            converted: true,
            output_vertices: 80,
            frontier_bytes: 256,
            time_ns: 5678,
            cas_attempts: 0,
            cas_wins: 0,
            edges_scanned: 1000,
            edges_skipped: 9000,
            partitions: 0,
            bins_flushed: 0,
            scatter_bytes: 0,
        });
        t.rounds.push(RoundStat {
            op: Op::EdgeMap,
            frontier_vertices: 600,
            frontier_out_edges: 7000,
            work: 7600,
            threshold: 500,
            forced: true,
            mode: Mode::Partitioned,
            input_repr: ReprKind::Dense,
            output_repr: ReprKind::Dense,
            converted: false,
            output_vertices: 40,
            frontier_bytes: 256,
            time_ns: 4321,
            cas_attempts: 0,
            cas_wins: 0,
            edges_scanned: 7000,
            edges_skipped: 0,
            partitions: 8,
            bins_flushed: 24,
            scatter_bytes: 56_000,
        });
        t.rounds.push(RoundStat::vertex_op(Op::VertexMap, 80, ReprKind::Dense, 80));
        t
    }

    #[test]
    fn json_lines_round_trip() {
        let t = sample_trace();
        let text = to_json_lines(&t);
        assert_eq!(text.lines().count(), 4);
        assert!(text.lines().next().unwrap().starts_with("{\"round\":0,\"op\":\"edge_map\""));
        let back = from_json_lines(&text).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn csv_round_trip() {
        let t = sample_trace();
        let text = to_csv(&t);
        assert_eq!(text.lines().next().unwrap(), COLUMNS.join(","));
        assert_eq!(text.lines().count(), 5);
        let back = from_csv(&text).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn empty_trace_round_trips() {
        let t = TraversalStats::new();
        assert_eq!(from_json_lines(&to_json_lines(&t)).unwrap(), t);
        assert_eq!(from_csv(&to_csv(&t)).unwrap(), t);
    }

    #[test]
    fn parsers_reject_malformed_input() {
        assert!(from_json_lines("not json\n").is_err());
        assert!(from_json_lines("{\"round\":0}\n").is_err(), "missing fields");
        assert!(from_csv("").is_err());
        let t = sample_trace();
        let mut csv = to_csv(&t);
        csv.push_str("1,2,3\n");
        assert!(from_csv(&csv).is_err(), "short row");
    }

    #[test]
    fn json_parser_rejects_quotes_and_escapes_in_values() {
        let good = to_json_lines(&sample_trace());
        // Interior quote, backslash escape, and unbalanced quote must all be
        // hard errors, never silently trimmed into a different value.
        for (from, to) in [
            ("\"sparse\"", "\"spa\"rse\""),
            ("\"sparse\"", "\"spa\\u0022rse\""),
            ("\"sparse\"", "\"sparse"),
        ] {
            let bad = good.replacen(from, to, 1);
            assert_ne!(bad, good, "mutation {to:?} did not apply");
            assert!(from_json_lines(&bad).is_err(), "accepted {to:?}");
        }
    }

    #[test]
    fn string_fields_stay_closed_vocabulary() {
        // The exact-scanner parsers split on ',' and ':' and forbid '"' and
        // '\\' inside values, so every string the serializers can emit must
        // avoid those four characters. This pins the schema: adding an enum
        // variant (or a new string column) whose rendering breaks the
        // invariant must fail here, not mis-parse downstream.
        let ops = [Op::EdgeMap, Op::VertexMap, Op::VertexFilter];
        let modes = [Mode::Sparse, Mode::Dense, Mode::DenseForward, Mode::Partitioned];
        let reprs = [ReprKind::Sparse, ReprKind::Dense];
        let rendered: Vec<String> = ops
            .iter()
            .map(ToString::to_string)
            .chain(modes.iter().map(ToString::to_string))
            .chain(reprs.iter().map(ToString::to_string))
            .collect();
        for s in &rendered {
            assert!(!s.contains([',', ':', '"', '\\']), "{s:?} would break the flat trace format");
        }
    }

    #[test]
    fn summary_aggregates_modes_and_counters() {
        let t = sample_trace();
        let s = summary(&t);
        assert_eq!(s.events, 4);
        assert_eq!(
            (s.sparse_rounds, s.dense_rounds, s.dense_forward_rounds, s.partitioned_rounds),
            (1, 1, 0, 1)
        );
        assert_eq!(s.conversions, 1);
        assert_eq!(s.total_time_ns, 1234 + 5678 + 4321);
        assert_eq!(s.cas_attempts, 9);
        assert_eq!(s.edges_skipped, 9000);
        assert_eq!(s.scatter_bytes, 56_000);
        let text = s.to_string();
        assert!(text.contains("1 sparse / 1 dense"));
        assert!(text.contains("1 partitioned"));
        assert!(text.contains("win rate 100.0%"));
    }
}
