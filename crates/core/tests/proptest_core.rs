//! Property-based tests for the framework core: on arbitrary graphs and
//! frontiers, every traversal policy of `edgeMap` (including the
//! partitioned scatter/gather mode) must compute the same relation, and
//! `vertexSubset` conversions must be lossless.
//!
//! Coverage caveat: when the workspace is built with the offline vendored
//! proptest stand-in (`.cargo/config.toml` patch, registry-less sandboxes
//! only), cases come from a fixed name-derived seed, failures are not
//! shrunk, and the explored input space is smaller than real proptest's.
//! CI strips the patch and runs these same tests under real proptest.

use ligra::{
    edge_fn, edge_map_with, vertex_filter, vertex_map, EdgeMapOptions, Traversal, VertexSubset,
};
use ligra_graph::{build_graph, BuildOptions};
use proptest::prelude::*;
use std::sync::atomic::{AtomicU32, Ordering};

fn graph_and_frontier() -> impl Strategy<Value = (usize, Vec<(u32, u32)>, Vec<u32>)> {
    (2u32..50).prop_flat_map(|n| {
        let edges = proptest::collection::vec((0..n, 0..n), 0..300);
        let frontier = proptest::collection::btree_set(0..n, 0..n as usize)
            .prop_map(|s| s.into_iter().collect::<Vec<u32>>());
        (Just(n as usize), edges, frontier)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn traversals_compute_identical_neighborhoods(
        (n, edges, frontier) in graph_and_frontier(),
        symmetric in any::<bool>(),
    ) {
        let opts = if symmetric { BuildOptions::symmetric() } else { BuildOptions::directed() };
        let g = build_graph(n, &edges, opts);
        let mut expect: Vec<u32> = frontier
            .iter()
            .flat_map(|&u| g.out_neighbors(u).iter().copied())
            .collect();
        expect.sort_unstable();
        expect.dedup();

        for t in Traversal::ALL {
            let f = edge_fn(|_s, _d, _w: ()| true, |_| true);
            let mut fr = VertexSubset::from_sparse(n, frontier.clone());
            let out = edge_map_with(
                &g, &mut fr, &f,
                EdgeMapOptions::new().traversal(t).deduplicate(true),
            );
            prop_assert_eq!(out.to_vec_sorted(), expect.clone(), "traversal {:?}", t);
        }
    }

    #[test]
    fn bitset_dense_frontier_agrees_with_sparse_frontier(
        (n, edges, frontier) in graph_and_frontier(),
        symmetric in any::<bool>(),
        modulus in 1u32..4,
    ) {
        // The packed-bitset input representation must be invisible to the
        // traversal result: feeding the same frontier as a sorted sparse
        // list and as a bitset must yield identical output sets under every
        // mode, including Auto's heuristic pick.
        let opts = if symmetric { BuildOptions::symmetric() } else { BuildOptions::directed() };
        let g = build_graph(n, &edges, opts);
        for t in Traversal::ALL {
            let f = edge_fn(|_s, _d, _w: ()| true, |d: u32| d.is_multiple_of(modulus));
            let mut sparse_fr = VertexSubset::from_sparse(n, frontier.clone());
            let from_sparse = edge_map_with(
                &g, &mut sparse_fr, &f,
                EdgeMapOptions::new().traversal(t).deduplicate(true),
            );
            let mut dense_fr = VertexSubset::from_sparse(n, frontier.clone());
            dense_fr.to_dense();
            prop_assert!(!dense_fr.is_sparse());
            let from_dense = edge_map_with(
                &g, &mut dense_fr, &f,
                EdgeMapOptions::new().traversal(t).deduplicate(true),
            );
            prop_assert_eq!(
                from_sparse.to_vec_sorted(),
                from_dense.to_vec_sorted(),
                "traversal {:?}",
                t
            );
        }
    }

    #[test]
    fn cond_restricts_targets_identically(
        (n, edges, frontier) in graph_and_frontier(),
        modulus in 1u32..5,
    ) {
        let g = build_graph(n, &edges, BuildOptions::directed());
        let mut expect: Vec<u32> = frontier
            .iter()
            .flat_map(|&u| g.out_neighbors(u).iter().copied())
            .filter(|&v| v % modulus == 0)
            .collect();
        expect.sort_unstable();
        expect.dedup();

        for t in Traversal::ALL {
            let f = edge_fn(|_s, _d, _w: ()| true, |d: u32| d.is_multiple_of(modulus));
            let mut fr = VertexSubset::from_sparse(n, frontier.clone());
            let out = edge_map_with(
                &g, &mut fr, &f,
                EdgeMapOptions::new().traversal(t).deduplicate(true),
            );
            prop_assert_eq!(out.to_vec_sorted(), expect.clone(), "traversal {:?}", t);
        }
    }

    #[test]
    fn subset_conversions_are_lossless(
        n in 1usize..2000,
        seed in any::<u64>(),
    ) {
        let members: Vec<u32> = (0..n as u32)
            .filter(|&v| ligra_parallel::hash64(seed ^ v as u64).is_multiple_of(3))
            .collect();
        let mut s = VertexSubset::from_sparse(n, members.clone());
        for _ in 0..3 {
            s.to_dense();
            prop_assert_eq!(s.len(), members.len());
            s.to_sparse();
            prop_assert_eq!(s.as_slice().len(), members.len());
        }
        prop_assert_eq!(s.to_vec_sorted(), members);
    }

    #[test]
    fn vertex_map_touches_each_member_exactly_once(
        n in 1usize..500,
        seed in any::<u64>(),
        dense in any::<bool>(),
    ) {
        let members: Vec<u32> = (0..n as u32)
            .filter(|&v| ligra_parallel::hash64(seed ^ v as u64).is_multiple_of(4))
            .collect();
        let mut s = VertexSubset::from_sparse(n, members.clone());
        if dense {
            s.to_dense();
        }
        let hits: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(0)).collect();
        vertex_map(&s, |v| {
            hits[v as usize].fetch_add(1, Ordering::Relaxed);
        });
        for v in 0..n as u32 {
            let expect = u32::from(members.contains(&v));
            prop_assert_eq!(hits[v as usize].load(Ordering::Relaxed), expect, "vertex {}", v);
        }
    }

    #[test]
    fn vertex_filter_equals_retain(
        n in 1usize..500,
        seed in any::<u64>(),
        modulus in 1u32..5,
    ) {
        let members: Vec<u32> = (0..n as u32)
            .filter(|&v| ligra_parallel::hash64(seed ^ v as u64).is_multiple_of(3))
            .collect();
        let s = VertexSubset::from_sparse(n, members.clone());
        let out = vertex_filter(&s, |v| v % modulus == 0);
        let expect: Vec<u32> = members.into_iter().filter(|&v| v % modulus == 0).collect();
        prop_assert_eq!(out.to_vec_sorted(), expect);
    }

    #[test]
    fn no_output_mode_agrees_with_output_mode_side_effects(
        (n, edges, frontier) in graph_and_frontier(),
    ) {
        // Count edge-function invocations with and without output
        // construction; they must agree (output is bookkeeping only).
        let g = build_graph(n, &edges, BuildOptions::directed());
        let count_with = |opts: EdgeMapOptions| {
            let hits = AtomicU32::new(0);
            let f = edge_fn(
                |_s, _d, _w: ()| {
                    hits.fetch_add(1, Ordering::Relaxed);
                    true
                },
                |_| true,
            );
            let mut fr = VertexSubset::from_sparse(n, frontier.clone());
            let _ = edge_map_with(&g, &mut fr, &f, opts);
            hits.load(Ordering::Relaxed)
        };
        let sparse = EdgeMapOptions::new().traversal(Traversal::Sparse);
        prop_assert_eq!(count_with(sparse), count_with(sparse.no_output()));
    }
}
