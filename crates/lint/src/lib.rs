//! `ligra-lint`: project-specific concurrency-soundness lints.
//!
//! A dependency-free static analyzer for the Ligra workspace. It lexes
//! every `.rs` file with a hand-rolled, comment/string-aware scanner (no
//! `syn`, so it builds offline before any vendored-stub machinery) and
//! enforces the project rules described in [`rules`] and DESIGN.md
//! §10/§15: the per-file rules L1–L6, the interprocedural lock-discipline
//! rules L7/L8 ([`lockpass`]), and the stale-waiver warning W1. Run it
//! as:
//!
//! ```text
//! cargo run -p ligra-lint -- --workspace
//! ```
//!
//! Exit code 0 means no errors (W1 warnings are still printed); 1 means
//! violations were printed (one `file:line: severity[Lx]: …` per line);
//! 2 means the linter itself failed (I/O, bad arguments).

pub mod config;
pub mod lexer;
pub mod lockpass;
pub mod rules;

pub use rules::{check_file, check_unused_waivers, Diag, FileCtx, FileKind, RuleId, Severity};

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Lints one source string as if it lived at `path` in `crate_name`,
/// treating the file as a complete one-file crate: the per-file rules,
/// the lock pass (for library files), and the stale-waiver sweep all
/// run. Fixture tests call this directly; [`lint_workspace`] runs the
/// same phases with whole-crate scope.
pub fn lint_source(path: &str, crate_name: &str, kind: FileKind, src: &str) -> Vec<Diag> {
    let ctx = FileCtx::new(path, crate_name, kind, src);
    let mut diags = check_file(&ctx);
    if kind == FileKind::Lib {
        lockpass::check_crate(&[&ctx], &mut diags);
    }
    check_unused_waivers(&ctx, &mut diags);
    diags.sort_by_key(|d| (d.line, d.rule));
    diags
}

/// Walks the workspace rooted at `root` and lints every classified `.rs`
/// file: per-file rules first, then the per-crate lock pass over each
/// crate's library files (L7/L8 are properties of call paths, not single
/// files), then the unused-waiver sweep — which must come last, since
/// only a waiver no rule consumed is stale. Diagnostics come back sorted
/// by (file, line, rule).
pub fn lint_workspace(root: &Path) -> io::Result<Vec<Diag>> {
    let mut files = Vec::new();
    collect_rs_files(root, root, &mut files)?;
    files.sort();
    let mut ctxs: Vec<FileCtx> = Vec::new();
    for rel in &files {
        let Some((crate_name, kind)) = classify(rel) else { continue };
        let src = fs::read_to_string(root.join(rel))?;
        let label = rel.to_string_lossy().replace('\\', "/");
        ctxs.push(FileCtx::new(&label, &crate_name, kind, &src));
    }
    let mut diags = Vec::new();
    for ctx in &ctxs {
        diags.extend(check_file(ctx));
    }
    let mut crate_names: Vec<&str> = ctxs.iter().map(|c| c.crate_name.as_str()).collect();
    crate_names.sort_unstable();
    crate_names.dedup();
    for name in crate_names {
        let group: Vec<&FileCtx> =
            ctxs.iter().filter(|c| c.crate_name == name && c.kind == FileKind::Lib).collect();
        if !group.is_empty() {
            lockpass::check_crate(&group, &mut diags);
        }
    }
    for ctx in &ctxs {
        check_unused_waivers(ctx, &mut diags);
    }
    diags.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    Ok(diags)
}

/// Recursively collects workspace-relative `.rs` paths, skipping trees
/// the lints never apply to (vendored stubs, build output, VCS metadata,
/// and the linter's own deliberately-violating fixtures).
fn collect_rs_files(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if matches!(name.as_ref(), "vendor" | "target" | ".git" | "fixtures") {
                continue;
            }
            collect_rs_files(root, &path, out)?;
        } else if name.ends_with(".rs") {
            let rel = path.strip_prefix(root).map_err(io::Error::other)?;
            out.push(rel.to_path_buf());
        }
    }
    Ok(())
}

/// Maps a workspace-relative path to `(crate_name, kind)`, or `None` for
/// files the linter ignores.
///
/// * `crates/<name>/src/**` → that crate, [`FileKind::Lib`]
/// * `crates/<name>/{tests,benches}/**` → that crate, [`FileKind::Test`]
/// * `examples/**` → crate `examples` (`src` is Lib, the rest Test)
/// * `tests/**` (the workspace integration-test package) → crate `tests`,
///   always [`FileKind::Test`]
pub fn classify(rel: &Path) -> Option<(String, FileKind)> {
    let parts: Vec<String> =
        rel.components().map(|c| c.as_os_str().to_string_lossy().into_owned()).collect();
    match parts.first().map(String::as_str) {
        Some("crates") => {
            let crate_name = parts.get(1)?.clone();
            match parts.get(2).map(String::as_str) {
                Some("src") => Some((crate_name, FileKind::Lib)),
                Some("tests") | Some("benches") => Some((crate_name, FileKind::Test)),
                _ => None,
            }
        }
        Some("examples") => {
            let kind = if parts.get(1).map(String::as_str) == Some("src") {
                FileKind::Lib
            } else {
                FileKind::Test
            };
            Some(("examples".to_string(), kind))
        }
        Some("tests") => Some(("tests".to_string(), FileKind::Test)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_paths() {
        let c = |p: &str| classify(Path::new(p));
        assert_eq!(c("crates/core/src/edge_map.rs"), Some(("core".into(), FileKind::Lib)));
        assert_eq!(
            c("crates/bench/src/bin/bench_edgemap.rs"),
            Some(("bench".into(), FileKind::Lib))
        );
        assert_eq!(c("crates/lint/tests/fixtures.rs"), Some(("lint".into(), FileKind::Test)));
        assert_eq!(c("tests/tests/engine.rs"), Some(("tests".into(), FileKind::Test)));
        assert_eq!(c("examples/src/lib.rs"), Some(("examples".into(), FileKind::Lib)));
        assert_eq!(c("Cargo.toml"), None);
        assert_eq!(c("crates/core/Cargo.toml"), None);
    }

    #[test]
    fn lint_source_flags_and_waives() {
        let bad = "pub fn f(x: u64) -> u32 { x as u32 }\n";
        let diags = lint_source("x.rs", "graph", FileKind::Lib, bad);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, RuleId::L4);
        assert_eq!(diags[0].line, 1);

        let waived =
            "// lint: allow(L4): bounded by caller\npub fn f(x: u64) -> u32 { x as u32 }\n";
        assert!(lint_source("x.rs", "graph", FileKind::Lib, waived).is_empty());
    }
}
