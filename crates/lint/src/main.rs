//! CLI for `ligra-lint`. See `lib.rs` for the rule catalog.
//!
//! ```text
//! cargo run -p ligra-lint -- --workspace          # lint the whole tree
//! cargo run -p ligra-lint -- --workspace --json   # machine-readable output
//! cargo run -p ligra-lint -- path/to/file.rs …    # lint specific files
//! ```

use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut workspace = false;
    let mut json = false;
    let mut files: Vec<String> = Vec::new();
    for a in &args {
        match a.as_str() {
            "--workspace" => workspace = true,
            "--json" => json = true,
            "--help" | "-h" => {
                print_help();
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') => {
                eprintln!("ligra-lint: unknown flag `{other}` (try --help)");
                return ExitCode::from(2);
            }
            other => files.push(other.to_string()),
        }
    }
    if !workspace && files.is_empty() {
        print_help();
        return ExitCode::from(2);
    }

    let root = workspace_root();
    let mut diags = Vec::new();
    if workspace {
        match ligra_lint::lint_workspace(&root) {
            Ok(d) => diags.extend(d),
            Err(e) => {
                eprintln!("ligra-lint: workspace walk failed: {e}");
                return ExitCode::from(2);
            }
        }
    }
    for f in &files {
        let path = Path::new(f);
        let rel = path.strip_prefix(&root).unwrap_or(path);
        let Some((crate_name, kind)) = ligra_lint::classify(rel) else {
            eprintln!("ligra-lint: `{f}` is outside the linted tree; skipping");
            continue;
        };
        let src = match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("ligra-lint: cannot read `{f}`: {e}");
                return ExitCode::from(2);
            }
        };
        let label = rel.to_string_lossy().replace('\\', "/");
        diags.extend(ligra_lint::lint_source(&label, &crate_name, kind, &src));
    }

    if json {
        // Hand-rolled JSON lines (no serde in this crate by design); rule
        // IDs and paths contain no characters needing escapes beyond `"`
        // and `\`, which `escape` handles.
        for d in &diags {
            println!(
                "{{\"file\":\"{}\",\"line\":{},\"rule\":\"{}\",\"severity\":\"{}\",\"msg\":\"{}\"}}",
                escape(&d.file),
                d.line,
                d.rule,
                d.severity,
                escape(&d.msg)
            );
        }
    } else {
        for d in &diags {
            println!("{d}");
        }
    }
    let errors = diags.iter().filter(|d| d.severity == ligra_lint::Severity::Error).count();
    if errors > 0 {
        eprintln!("ligra-lint: {errors} error(s)");
        ExitCode::FAILURE
    } else {
        if !json {
            println!("ligra-lint: clean");
        }
        ExitCode::SUCCESS
    }
}

/// The workspace root: `CARGO_MANIFEST_DIR/../..` when run via cargo,
/// falling back to the current directory for a bare binary.
fn workspace_root() -> PathBuf {
    match std::env::var("CARGO_MANIFEST_DIR") {
        Ok(dir) => {
            let p = PathBuf::from(dir);
            p.parent().and_then(Path::parent).map(Path::to_path_buf).unwrap_or(p)
        }
        Err(_) => PathBuf::from("."),
    }
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn print_help() {
    eprintln!(
        "ligra-lint: project-specific concurrency-soundness lints\n\
         \n\
         USAGE: ligra-lint [--workspace] [--json] [FILES…]\n\
         \n\
         Rules: L1 unsafe-needs-SAFETY, L2 ordering whitelist, L3 no bare\n\
         unwrap, L4 no truncating ID casts, L5 core pub fns documented,\n\
         L6 no panic macros in serving code, L7 lock-order inversion,\n\
         L8 blocking call under a held lock, W1 stale waiver (warning).\n\
         Waive one occurrence with `// lint: allow(L4): reason`.\n\
         Exit codes: 0 no errors, 1 violations, 2 internal error."
    );
}
