//! The project policy the lints enforce.
//!
//! This table — not the rule engine — is the contract reviewers sign off
//! on. DESIGN.md §10 documents the rationale per crate; a new crate or a
//! new ordering in an existing crate must be added here deliberately,
//! which is the point: the diff that relaxes the policy is visible.

/// Atomic orderings each crate may use in non-test code (rule L2).
///
/// `SeqCst` is never listed: Ligra's synchronization is all point-to-point
/// (CAS claims, priority updates, published flags) and never relies on a
/// single total order over unrelated atomics, so a `SeqCst` is either a
/// misunderstanding or an unannotated algorithm change. Per-crate policy:
///
/// * `parallel` — defines the atomic vocabulary (CAS, writeMin, bitsets,
///   striped counters): needs the full acquire/release set.
/// * `core` — relaxed telemetry and bitset output stores, plus the
///   acquire/release pair on the cancellation flag; the race oracle's
///   shadow cells use acquire/release RMWs.
/// * `graph`/`compress` — only relaxed degree/telemetry counters; all
///   cross-thread hand-off happens through `parallel` primitives or
///   fork/join boundaries.
/// * `apps` — relaxed single-owner dense writes (documented in each app)
///   plus acquire/release RMWs (`fetch_or`, `fetch_update`) where an edge
///   function claims through its own atomic rather than `parallel`'s.
/// * `engine` — relaxed stat counters, the release-store/acquire-load
///   pair on the scheduler shutdown flag, and the metrics module's
///   striped counters/histograms: per-event increments are relaxed by
///   design (each snapshot read tolerates mid-flight adds; nothing is
///   published through them), with the gauge clamp CAS covered by
///   [`CAS_RELAXED_SUCCESS_FILES`].
/// * `bench`, `examples`, `tests` — relaxed instrumentation counters only.
/// * `lint` — no atomics at all.
pub const ORDERING_WHITELIST: &[(&str, &[&str])] = &[
    ("parallel", &["Relaxed", "Acquire", "Release", "AcqRel"]),
    ("core", &["Relaxed", "Acquire", "Release", "AcqRel"]),
    ("graph", &["Relaxed"]),
    ("compress", &["Relaxed"]),
    ("apps", &["Relaxed", "Acquire", "AcqRel"]),
    ("engine", &["Relaxed", "Acquire", "Release"]),
    ("bench", &["Relaxed"]),
    ("examples", &["Relaxed"]),
    ("tests", &["Relaxed"]),
    ("lint", &[]),
];

/// Crates whose non-test library code may not call bare `.unwrap()`
/// (rule L3): panics in the traversal/serving stack must either carry the
/// violated invariant (`.expect("…")`) or propagate. `apps` is exempt —
/// its result types are research outputs, not serving surfaces — as are
/// benches and examples.
pub const NO_UNWRAP_CRATES: &[&str] = &["core", "parallel", "graph", "compress", "engine", "lint"];

/// Crates whose non-test code may not use truncating `as u32` /
/// `as VertexId` casts (rule L4); vertex and edge IDs must go through the
/// asserting helpers in `parallel::utils` (`checked_u32`, `word_base`).
pub const NO_TRUNCATING_CAST_CRATES: &[&str] =
    &["core", "parallel", "graph", "compress", "engine", "apps"];

/// Files exempt from L4 because they *are* the checked helpers.
pub const CAST_HELPER_FILES: &[&str] = &["crates/parallel/src/utils.rs"];

/// Crates whose `pub fn`s must carry doc comments (rule L5).
pub const DOC_REQUIRED_CRATES: &[&str] = &["core"];

/// Crates whose non-test code (binaries included) may not invoke
/// `panic!` / `unreachable!` / `todo!` / `unimplemented!` (rule L6): the
/// engine's failure model routes every fault through typed errors and
/// the worker `catch_unwind` boundary, so an explicit panicking macro is
/// a latent serving crash. Waive genuinely unreachable states with
/// `// lint: allow(L6): reason`.
pub const NO_PANIC_CRATES: &[&str] = &["engine"];

/// Orderings a `compare_exchange`/`compare_exchange_weak`/`fetch_update`
/// success slot may use (rule L2's CAS-loop check): the winner of a claim
/// publishes data, so it must be at least `Acquire`, and `AcqRel` is the
/// documented default for RMW claims.
pub const CAS_SUCCESS_ALLOWED: &[&str] = &["AcqRel", "Acquire"];

/// Orderings a CAS failure slot may use: a failed claim only observes,
/// never publishes.
pub const CAS_FAILURE_ALLOWED: &[&str] = &["Acquire", "Relaxed"];

/// Files where a CAS success slot may additionally be `Relaxed`. The
/// claim discipline above assumes the CAS winner publishes data the
/// loser will read through the claimed cell; the serving-tier metrics
/// module is the one place that is not true — its gauge `sub` CASes
/// purely to clamp a standalone counter at zero, every reader tolerates
/// arbitrary interleaving by design, and no payload hangs off the cell.
/// Extending this list to a file that hands data through its CAS would
/// reintroduce the races L2 exists to catch, so it stays per-file, not
/// per-crate.
pub const CAS_RELAXED_SUCCESS_FILES: &[&str] = &["crates/engine/src/metrics/mod.rs"];

/// Free functions the lock pass (rules L7/L8) treats as lock
/// acquisitions: the scheduler's poison-recovering `lock(mutex, site)`
/// helper and the `lockdep` tracked wrappers. The acquired lock's name is
/// the last field identifier of the first argument (`lock(&self.state,
/// …)` → `state`), which keeps the static lock names aligned with the
/// runtime `LockOracle` site suffixes. Method-style `.lock()` / `.read()`
/// / `.write()` with empty argument lists are recognized independently.
pub const LOCK_ACQUIRE_FNS: &[&str] = &["lock", "tracked_lock", "tracked_read", "tracked_write"];

/// Calls the lock pass treats as blocking (rule L8): parking, channel
/// receives, thread joins, panic-dispatch via `catch_unwind`, and
/// file/socket I/O. Condvar `wait`/`wait_timeout` are handled separately
/// (the guard they atomically release is exempt); `join` only counts in
/// the empty-argument `JoinHandle::join` shape, not `slice.join(", ")`.
pub const BLOCKING_CALLS: &[&str] = &[
    "sleep",
    "recv",
    "recv_timeout",
    "recv_deadline",
    "join",
    "catch_unwind",
    "read_line",
    "read_to_string",
    "read_to_end",
    "read_exact",
    "write_all",
    "flush",
    "accept",
    "connect",
];

/// Method receivers whose `.lock()` is not a contended mutex: the std
/// stream handles, where `lock()` takes a per-process reader/writer
/// handle that nothing in this workspace holds across other locks.
pub const LOCK_EXEMPT_RECEIVERS: &[&str] = &["stdin", "stdout", "stderr"];

/// Files the lock pass skips entirely because they *implement* the lock
/// primitives: their internal `m.lock()` shapes would register generic
/// lock names (`m`, `inner`) that alias every call site. Call sites of
/// their wrappers are still analyzed everywhere else.
pub const LOCK_WRAPPER_FILES: &[&str] =
    &["crates/core/src/lockdep.rs", "crates/engine/src/lockdep.rs"];

/// Call names the lock pass does not resolve through the crate call
/// graph. These are trait-impl and constructor names so overloaded that
/// name-based resolution unions every type in the crate (`Engine::new`,
/// `Histogram::new`, and `VecDeque::new` become one node), fabricating
/// lock chains no execution takes. The cost is real: a lock acquired
/// inside a constructor called under another lock goes unseen — which is
/// why DESIGN.md §15 pairs this pass with the runtime `LockOracle`, whose
/// edges come from executions, not names.
pub const CALL_RESOLUTION_EXEMPT: &[&str] =
    &["new", "default", "clone", "from", "fmt", "to_string", "eq", "hash", "next", "drop"];

/// Functions whose closure argument runs on *another* thread and must
/// not be scanned as the caller's inline code (a spawned worker inherits
/// none of the spawner's held locks).
pub const THREAD_SPAWN_FNS: &[&str] = &["spawn"];

/// Returns the orderings `crate_name` may use, or `None` for an unknown
/// crate (which L2 reports as its own violation so the table stays in
/// sync with the workspace).
pub fn allowed_orderings(crate_name: &str) -> Option<&'static [&'static str]> {
    ORDERING_WHITELIST.iter().find(|(c, _)| *c == crate_name).map(|(_, list)| *list)
}
