//! The per-file project rules, evaluated over one file's token stream.
//!
//! | ID | check |
//! |----|-------|
//! | L1 | every `unsafe` block/fn/impl carries a nearby `// SAFETY:` comment |
//! | L2 | atomic orderings come from the per-crate whitelist; `SeqCst` is always an error; CAS success/failure orderings follow the claim discipline |
//! | L3 | no bare `.unwrap()` in non-test library code of the serving-stack crates |
//! | L4 | no truncating `as u32` / `as VertexId` casts outside `parallel::utils` |
//! | L5 | every `pub fn` in `core` has a doc comment |
//! | L6 | no `panic!` / `unreachable!` / `todo!` in the serving crates' non-test code |
//! | L7 | lock-order inversion across the crate's call graph (see [`crate::lockpass`]) |
//! | L8 | blocking call reached while a lock guard is live (see [`crate::lockpass`]) |
//! | W1 | a `// lint: allow(Lx)` waiver that suppresses no finding |
//!
//! A rule can be waived on a specific line with
//! `// lint: allow(L4): why this is sound`, which the scanner records and
//! applies to the comment's own line and the line below it. Waivers are a
//! reviewed escape hatch: the reason is part of the comment grammar on
//! purpose — and a waiver that stops suppressing anything is itself
//! reported (`warning[W1]`), so the escape hatches cannot silently
//! outlive the code they excused.

use std::cell::Cell;

use crate::config;
use crate::lexer::{SpannedTok, Tok};

/// Lint rule identifiers (stable, used by fixtures and CI logs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RuleId {
    /// `unsafe` without a `// SAFETY:` justification.
    L1,
    /// Atomic ordering outside the per-crate whitelist.
    L2,
    /// Bare `.unwrap()` in non-test library code.
    L3,
    /// Truncating `as u32`/`as VertexId` cast outside the checked helpers.
    L4,
    /// Undocumented `pub fn` in `core`.
    L5,
    /// `panic!`/`unreachable!`/`todo!` in serving-crate non-test code.
    L6,
    /// Two call paths acquire the same pair of locks in opposite order.
    L7,
    /// Blocking call reached while a lock guard is held.
    L8,
    /// Stale waiver: a `lint: allow` comment that suppresses nothing.
    W1,
}

impl std::fmt::Display for RuleId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            RuleId::L1 => "L1",
            RuleId::L2 => "L2",
            RuleId::L3 => "L3",
            RuleId::L4 => "L4",
            RuleId::L5 => "L5",
            RuleId::L6 => "L6",
            RuleId::L7 => "L7",
            RuleId::L8 => "L8",
            RuleId::W1 => "W1",
        })
    }
}

/// Diagnostic severity. The `L*` rules are errors (the linter gates CI);
/// `W1` ships as `Warn` so the exit code keeps meaning "soundness
/// violation" — though the workspace self-check test still demands a
/// fully clean tree, warnings included.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    Warn,
    Error,
}

impl std::fmt::Display for Severity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Severity::Warn => "warning",
            Severity::Error => "error",
        })
    }
}

/// One finding: `file:line: severity[rule]: msg`.
#[derive(Debug, Clone)]
pub struct Diag {
    pub rule: RuleId,
    pub severity: Severity,
    pub file: String,
    pub line: u32,
    pub msg: String,
}

impl std::fmt::Display for Diag {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}: {}[{}]: {}", self.file, self.line, self.severity, self.rule, self.msg)
    }
}

/// How a file participates in the rule scopes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// Library/binary source: all rules in scope.
    Lib,
    /// Test source (a `tests/` or `benches/` tree): only L1 applies.
    Test,
}

/// One recorded `// lint: allow(Lx)` waiver. `used` flips when the waiver
/// actually suppresses a diagnostic; waivers still cold after every rule
/// (including the cross-file lock pass) has run are reported as `W1`.
struct Allow {
    line: u32,
    rule: RuleId,
    used: Cell<bool>,
}

/// Everything the rules need about one file.
pub struct FileCtx {
    /// Workspace-relative path used in diagnostics.
    pub path: String,
    /// Crate the file belongs to (`core`, `parallel`, …).
    pub crate_name: String,
    pub kind: FileKind,
    pub(crate) toks: Vec<SpannedTok>,
    /// Closed line ranges covered by `#[cfg(test)]` / `#[test]` items.
    test_regions: Vec<(u32, u32)>,
    /// Waivers from `// lint: allow(...)` comments, with usage tracking.
    allows: Vec<Allow>,
}

impl FileCtx {
    pub fn new(path: &str, crate_name: &str, kind: FileKind, src: &str) -> FileCtx {
        let toks = crate::lexer::lex(src);
        let test_regions = find_test_regions(&toks);
        let allows = find_allows(&toks);
        FileCtx {
            path: path.to_string(),
            crate_name: crate_name.to_string(),
            kind,
            toks,
            test_regions,
            allows,
        }
    }

    pub(crate) fn in_test_region(&self, line: u32) -> bool {
        self.kind == FileKind::Test
            || self.test_regions.iter().any(|&(a, b)| a <= line && line <= b)
    }

    /// True when `rule` is waived at `line` (the waiver sits on that line
    /// or the line above). Consulting a matching waiver marks it used.
    pub(crate) fn allowed(&self, line: u32, rule: RuleId) -> bool {
        let mut hit = false;
        for a in &self.allows {
            if a.rule == rule && (a.line == line || a.line + 1 == line) {
                a.used.set(true);
                hit = true;
            }
        }
        hit
    }

    pub(crate) fn diag(&self, out: &mut Vec<Diag>, rule: RuleId, line: u32, msg: String) {
        if !self.allowed(line, rule) {
            out.push(Diag { rule, severity: Severity::Error, file: self.path.clone(), line, msg });
        }
    }
}

/// Emits `warning[W1]` for every waiver in `ctx` that suppressed nothing.
/// Must run after every other rule — including the cross-file lock pass —
/// since those are what mark waivers used.
pub fn check_unused_waivers(ctx: &FileCtx, out: &mut Vec<Diag>) {
    for a in &ctx.allows {
        if !a.used.get() {
            out.push(Diag {
                rule: RuleId::W1,
                severity: Severity::Warn,
                file: ctx.path.clone(),
                line: a.line,
                msg: format!(
                    "stale waiver: `lint: allow({})` suppresses no finding on this or the \
                     next line — remove it (or fix the drifted code it used to excuse)",
                    a.rule
                ),
            });
        }
    }
}

/// Runs every in-scope rule over the file.
pub fn check_file(ctx: &FileCtx) -> Vec<Diag> {
    let mut out = Vec::new();
    rule_l1_safety_comments(ctx, &mut out);
    if ctx.kind == FileKind::Lib {
        rule_l2_orderings(ctx, &mut out);
        rule_l3_unwrap(ctx, &mut out);
        rule_l4_truncating_casts(ctx, &mut out);
        rule_l5_doc_comments(ctx, &mut out);
        rule_l6_no_panics(ctx, &mut out);
    }
    out.sort_by_key(|d| (d.line, d.rule));
    out
}

/// Marks `{…}` bodies of items annotated `#[cfg(test)]` / `#[test]`
/// (or any `cfg(...)` mentioning `test`, e.g. `cfg(all(test, unix))`).
fn find_test_regions(toks: &[SpannedTok]) -> Vec<(u32, u32)> {
    let mut regions = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if let Some(attr_end) = parse_attr(toks, i) {
            if attr_is_test(&toks[i..=attr_end]) {
                // Find the annotated item's opening brace (a `;` first
                // means a braceless item like `#[cfg(test)] use x;`).
                let mut j = attr_end + 1;
                let mut open = None;
                while j < toks.len() {
                    match &toks[j].tok {
                        Tok::Punct('{') => {
                            open = Some(j);
                            break;
                        }
                        Tok::Punct(';') => break,
                        _ => j += 1,
                    }
                }
                if let Some(open) = open {
                    let close = matching_brace(toks, open);
                    regions.push((toks[i].line, toks[close].line));
                    i = close + 1;
                    continue;
                }
            }
            i = attr_end + 1;
            continue;
        }
        i += 1;
    }
    regions
}

/// If `toks[i]` starts an attribute (`#[…]` or `#![…]`), returns the index
/// of its closing `]`.
fn parse_attr(toks: &[SpannedTok], i: usize) -> Option<usize> {
    if toks.get(i).map(|t| &t.tok) != Some(&Tok::Punct('#')) {
        return None;
    }
    let mut j = i + 1;
    if toks.get(j).map(|t| &t.tok) == Some(&Tok::Punct('!')) {
        j += 1;
    }
    if toks.get(j).map(|t| &t.tok) != Some(&Tok::Punct('[')) {
        return None;
    }
    let mut depth = 0i32;
    for (k, t) in toks.iter().enumerate().skip(j) {
        match t.tok {
            Tok::Punct('[') => depth += 1,
            Tok::Punct(']') => {
                depth -= 1;
                if depth == 0 {
                    return Some(k);
                }
            }
            _ => {}
        }
    }
    None
}

fn attr_is_test(attr: &[SpannedTok]) -> bool {
    let idents: Vec<&str> = attr
        .iter()
        .filter_map(|t| match &t.tok {
            Tok::Ident(s) => Some(s.as_str()),
            _ => None,
        })
        .collect();
    match idents.first() {
        Some(&"test") => true,
        Some(&"cfg") => idents.contains(&"test"),
        _ => false,
    }
}

/// Index of the `}` matching the `{` at `open` (or the last token if the
/// file is truncated mid-item).
fn matching_brace(toks: &[SpannedTok], open: usize) -> usize {
    let mut depth = 0i32;
    for (k, t) in toks.iter().enumerate().skip(open) {
        match t.tok {
            Tok::Punct('{') => depth += 1,
            Tok::Punct('}') => {
                depth -= 1;
                if depth == 0 {
                    return k;
                }
            }
            _ => {}
        }
    }
    toks.len() - 1
}

/// Collects `// lint: allow(L4)` / `// lint: allow(L2, L4): reason`
/// waivers. Only plain (non-doc) comments whose text *starts* with the
/// waiver grammar count: doc comments and prose that merely mention the
/// syntax (this file does, several times) are not waivers.
fn find_allows(toks: &[SpannedTok]) -> Vec<Allow> {
    let mut out = Vec::new();
    for t in toks {
        let text = match &t.tok {
            Tok::LineComment { doc: false, text } | Tok::BlockComment { doc: false, text } => text,
            _ => continue,
        };
        let trimmed = text.trim_start();
        let Some(rest) = trimmed.strip_prefix("lint: allow(") else { continue };
        let Some(end) = rest.find(')') else { continue };
        for name in rest[..end].split(',') {
            let rule = match name.trim() {
                "L1" => RuleId::L1,
                "L2" => RuleId::L2,
                "L3" => RuleId::L3,
                "L4" => RuleId::L4,
                "L5" => RuleId::L5,
                "L6" => RuleId::L6,
                "L7" => RuleId::L7,
                "L8" => RuleId::L8,
                _ => continue,
            };
            out.push(Allow { line: t.line, rule, used: Cell::new(false) });
        }
    }
    out
}

// ---------------------------------------------------------------------------
// L1: unsafe needs a SAFETY comment
// ---------------------------------------------------------------------------

fn rule_l1_safety_comments(ctx: &FileCtx, out: &mut Vec<Diag>) {
    // Lines on which a comment mentions `SAFETY:`.
    let safety_lines: Vec<u32> = ctx
        .toks
        .iter()
        .filter(|t| match &t.tok {
            Tok::LineComment { text, .. } | Tok::BlockComment { text, .. } => {
                text.contains("SAFETY:")
            }
            _ => false,
        })
        .map(|t| t.line)
        .collect();

    for (i, t) in ctx.toks.iter().enumerate() {
        if !matches!(&t.tok, Tok::Ident(s) if s == "unsafe") {
            continue;
        }
        let line = t.line;
        // A justification within the five lines above (a short comment
        // block) or trailing on the same line satisfies the rule.
        let justified = safety_lines.iter().any(|&sl| sl <= line && line.saturating_sub(sl) <= 5);
        if justified {
            continue;
        }
        let what = match ctx.toks.get(i + 1).map(|t| &t.tok) {
            Some(Tok::Ident(s)) if s == "fn" => "unsafe fn",
            Some(Tok::Ident(s)) if s == "impl" => "unsafe impl",
            Some(Tok::Ident(s)) if s == "trait" => "unsafe trait",
            _ => "unsafe block",
        };
        ctx.diag(
            out,
            RuleId::L1,
            line,
            format!("{what} without a `// SAFETY:` comment stating the upheld invariant"),
        );
    }
}

// ---------------------------------------------------------------------------
// L2: ordering whitelist + CAS discipline
// ---------------------------------------------------------------------------

const ATOMIC_ORDERINGS: &[&str] = &["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// Ordering idents named at `Ordering::X` or `Ordering::{X, Y}` positions,
/// with their token indices.
fn ordering_uses(toks: &[SpannedTok]) -> Vec<(usize, &str)> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i + 3 < toks.len() {
        let is_path = matches!(&toks[i].tok, Tok::Ident(s) if s == "Ordering")
            && toks[i + 1].tok == Tok::Punct(':')
            && toks[i + 2].tok == Tok::Punct(':');
        if !is_path {
            i += 1;
            continue;
        }
        match &toks[i + 3].tok {
            Tok::Ident(s) if ATOMIC_ORDERINGS.contains(&s.as_str()) => {
                out.push((i + 3, s.as_str()));
                i += 4;
            }
            Tok::Punct('{') => {
                // `use …::Ordering::{Acquire, Release}`
                let mut j = i + 4;
                while j < toks.len() && toks[j].tok != Tok::Punct('}') {
                    if let Tok::Ident(s) = &toks[j].tok {
                        if ATOMIC_ORDERINGS.contains(&s.as_str()) {
                            out.push((j, s.as_str()));
                        }
                    }
                    j += 1;
                }
                i = j;
            }
            _ => i += 4,
        }
    }
    out
}

fn rule_l2_orderings(ctx: &FileCtx, out: &mut Vec<Diag>) {
    let uses = ordering_uses(&ctx.toks);
    let allowed = config::allowed_orderings(&ctx.crate_name);
    for &(idx, ord) in &uses {
        let line = ctx.toks[idx].line;
        if ctx.in_test_region(line) {
            continue;
        }
        if ord == "SeqCst" {
            ctx.diag(
                out,
                RuleId::L2,
                line,
                "Ordering::SeqCst is banned: Ligra synchronization is point-to-point \
                 (CAS claims / published flags); use AcqRel/Acquire/Release and document \
                 the protocol"
                    .to_string(),
            );
            continue;
        }
        match allowed {
            Some(list) if list.contains(&ord) => {}
            Some(_) => ctx.diag(
                out,
                RuleId::L2,
                line,
                format!(
                    "Ordering::{ord} is not in crate `{}`'s ordering whitelist \
                     (see ligra-lint config.rs / DESIGN.md §10)",
                    ctx.crate_name
                ),
            ),
            None => ctx.diag(
                out,
                RuleId::L2,
                line,
                format!(
                    "crate `{}` has no entry in the ordering whitelist; add one to \
                     ligra-lint's config.rs",
                    ctx.crate_name
                ),
            ),
        }
    }
    rule_l2_cas_discipline(ctx, out);
}

/// Checks explicit success/failure orderings of `compare_exchange[_weak]`
/// and `fetch_update` calls. Calls whose orderings are not literal
/// `Ordering::X` paths (e.g. passed through a variable) are skipped —
/// the whitelist above still constrains whatever they name.
fn rule_l2_cas_discipline(ctx: &FileCtx, out: &mut Vec<Diag>) {
    const CAS_FNS: &[&str] = &["compare_exchange", "compare_exchange_weak", "fetch_update"];
    for (i, t) in ctx.toks.iter().enumerate() {
        let Tok::Ident(name) = &t.tok else { continue };
        if !CAS_FNS.contains(&name.as_str()) {
            continue;
        }
        if ctx.toks.get(i + 1).map(|t| &t.tok) != Some(&Tok::Punct('(')) {
            continue;
        }
        let line = t.line;
        if ctx.in_test_region(line) {
            continue;
        }
        // Scan the balanced argument list for ordering literals.
        let mut depth = 0i32;
        let mut orderings: Vec<&str> = Vec::new();
        let mut j = i + 1;
        while j < ctx.toks.len() {
            match &ctx.toks[j].tok {
                Tok::Punct('(') => depth += 1,
                Tok::Punct(')') => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                Tok::Ident(s)
                    if ATOMIC_ORDERINGS.contains(&s.as_str())
                        && j >= 2
                        && ctx.toks[j - 1].tok == Tok::Punct(':')
                        && ctx.toks[j - 2].tok == Tok::Punct(':') =>
                {
                    orderings.push(s.as_str());
                }
                _ => {}
            }
            j += 1;
        }
        if orderings.len() != 2 {
            continue;
        }
        // For compare_exchange*: (success, failure). For fetch_update the
        // slots are (set_order, fetch_order) — same discipline: the write
        // side publishes, the read side observes.
        let (success, failure) = (orderings[0], orderings[1]);
        let relaxed_ok = success == "Relaxed"
            && config::CAS_RELAXED_SUCCESS_FILES.iter().any(|f| ctx.path.ends_with(f));
        if !config::CAS_SUCCESS_ALLOWED.contains(&success) && !relaxed_ok {
            ctx.diag(
                out,
                RuleId::L2,
                line,
                format!(
                    "{name} success ordering {success} violates the claim discipline \
                     (want AcqRel, or Acquire for read-only winners)"
                ),
            );
        }
        if !config::CAS_FAILURE_ALLOWED.contains(&failure) {
            ctx.diag(
                out,
                RuleId::L2,
                line,
                format!(
                    "{name} failure ordering {failure} violates the claim discipline \
                     (a failed claim only observes: want Acquire or Relaxed)"
                ),
            );
        }
    }
}

// ---------------------------------------------------------------------------
// L3: no bare .unwrap() in library code
// ---------------------------------------------------------------------------

fn rule_l3_unwrap(ctx: &FileCtx, out: &mut Vec<Diag>) {
    if !config::NO_UNWRAP_CRATES.contains(&ctx.crate_name.as_str()) {
        return;
    }
    for (i, t) in ctx.toks.iter().enumerate() {
        let is_unwrap = matches!(&t.tok, Tok::Ident(s) if s == "unwrap");
        if !is_unwrap
            || i == 0
            || ctx.toks[i - 1].tok != Tok::Punct('.')
            || ctx.toks.get(i + 1).map(|t| &t.tok) != Some(&Tok::Punct('('))
        {
            continue;
        }
        let line = t.line;
        if ctx.in_test_region(line) {
            continue;
        }
        ctx.diag(
            out,
            RuleId::L3,
            line,
            "bare `.unwrap()` in library code: state the violated invariant with \
             `.expect(\"…\")` or propagate the error"
                .to_string(),
        );
    }
}

// ---------------------------------------------------------------------------
// L4: truncating casts go through the checked helpers
// ---------------------------------------------------------------------------

fn rule_l4_truncating_casts(ctx: &FileCtx, out: &mut Vec<Diag>) {
    if !config::NO_TRUNCATING_CAST_CRATES.contains(&ctx.crate_name.as_str()) {
        return;
    }
    if config::CAST_HELPER_FILES.iter().any(|f| ctx.path.ends_with(f)) {
        return;
    }
    for (i, t) in ctx.toks.iter().enumerate() {
        let is_as = matches!(&t.tok, Tok::Ident(s) if s == "as");
        if !is_as {
            continue;
        }
        let Some(next) = ctx.toks.get(i + 1) else { continue };
        let target = match &next.tok {
            Tok::Ident(s) if s == "u32" || s == "VertexId" => s.as_str(),
            _ => continue,
        };
        let line = t.line;
        if ctx.in_test_region(line) {
            continue;
        }
        ctx.diag(
            out,
            RuleId::L4,
            line,
            format!(
                "truncating `as {target}` cast on an ID-sized value: use \
                 `parallel::utils::checked_u32`/`word_base` (asserting) instead"
            ),
        );
    }
}

// ---------------------------------------------------------------------------
// L5: pub fns in core carry doc comments
// ---------------------------------------------------------------------------

fn rule_l5_doc_comments(ctx: &FileCtx, out: &mut Vec<Diag>) {
    if !config::DOC_REQUIRED_CRATES.contains(&ctx.crate_name.as_str()) {
        return;
    }
    for (i, t) in ctx.toks.iter().enumerate() {
        if !matches!(&t.tok, Tok::Ident(s) if s == "pub") {
            continue;
        }
        // `pub(crate)` / `pub(super)` are not public API: exempt.
        if ctx.toks.get(i + 1).map(|t| &t.tok) == Some(&Tok::Punct('(')) {
            continue;
        }
        // Skip qualifiers: `pub const unsafe extern "C" async fn name`.
        let mut j = i + 1;
        let mut is_fn = false;
        while let Some(nt) = ctx.toks.get(j) {
            match &nt.tok {
                Tok::Ident(s) if ["const", "unsafe", "async", "extern"].contains(&s.as_str()) => {
                    j += 1
                }
                Tok::Str => j += 1, // extern ABI string
                Tok::Ident(s) if s == "fn" => {
                    is_fn = true;
                    break;
                }
                _ => break,
            }
        }
        if !is_fn {
            continue;
        }
        let line = t.line;
        if ctx.in_test_region(line) {
            continue;
        }
        let name = match ctx.toks.get(j + 1).map(|t| &t.tok) {
            Some(Tok::Ident(s)) => s.clone(),
            _ => String::from("?"),
        };
        if !has_doc_above(ctx, i) {
            ctx.diag(out, RuleId::L5, line, format!("public function `{name}` has no doc comment"));
        }
    }
}

// ---------------------------------------------------------------------------
// L6: no panicking macros in serving-crate code
// ---------------------------------------------------------------------------

/// The engine's robustness contract (DESIGN.md §11) promises that one bad
/// request or query cannot take down a serving worker: failures must be
/// typed errors, and the only unwinds crossing a worker are the ones the
/// `catch_unwind` boundary is designed to contain. A `panic!` /
/// `unreachable!` / `todo!` in that code is therefore a latent crash;
/// genuinely impossible states can be waived with
/// `// lint: allow(L6): why`.
fn rule_l6_no_panics(ctx: &FileCtx, out: &mut Vec<Diag>) {
    if !config::NO_PANIC_CRATES.contains(&ctx.crate_name.as_str()) {
        return;
    }
    const BANNED: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];
    for (i, t) in ctx.toks.iter().enumerate() {
        let Tok::Ident(name) = &t.tok else { continue };
        if !BANNED.contains(&name.as_str()) {
            continue;
        }
        // Macro invocation: ident immediately followed by `!` and an
        // open delimiter (`panic_any` and `panic::catch_unwind` paths
        // don't match).
        if ctx.toks.get(i + 1).map(|t| &t.tok) != Some(&Tok::Punct('!')) {
            continue;
        }
        if !matches!(
            ctx.toks.get(i + 2).map(|t| &t.tok),
            Some(Tok::Punct('(') | Tok::Punct('[') | Tok::Punct('{'))
        ) {
            continue;
        }
        let line = t.line;
        if ctx.in_test_region(line) {
            continue;
        }
        ctx.diag(
            out,
            RuleId::L6,
            line,
            format!(
                "`{name}!` in serving-crate code: return a typed error instead — a panic \
                 here rides the worker's unwind boundary as a crash, not a contract \
                 (DESIGN.md §11)"
            ),
        );
    }
}

/// Walks backward from the `pub` token over attributes and plain comments
/// looking for a doc comment (or a `#[doc…]` attribute).
fn has_doc_above(ctx: &FileCtx, pub_idx: usize) -> bool {
    let mut k = pub_idx;
    while k > 0 {
        k -= 1;
        match &ctx.toks[k].tok {
            Tok::LineComment { doc: true, .. } | Tok::BlockComment { doc: true, .. } => {
                return true
            }
            Tok::LineComment { doc: false, .. } | Tok::BlockComment { doc: false, .. } => {}
            Tok::Punct(']') => {
                // Skip backward over one attribute; `#[doc = "…"]` counts
                // as documentation.
                let mut depth = 0i32;
                let mut saw_doc = false;
                loop {
                    match &ctx.toks[k].tok {
                        Tok::Punct(']') => depth += 1,
                        Tok::Punct('[') => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        Tok::Ident(s) if s == "doc" => saw_doc = true,
                        _ => {}
                    }
                    if k == 0 {
                        break;
                    }
                    k -= 1;
                }
                if saw_doc {
                    return true;
                }
                // Step over the leading `#` (and optional `!`).
                if k > 0 && ctx.toks[k - 1].tok == Tok::Punct('#') {
                    k -= 1;
                } else if k > 1
                    && ctx.toks[k - 1].tok == Tok::Punct('!')
                    && ctx.toks[k - 2].tok == Tok::Punct('#')
                {
                    k -= 2;
                }
            }
            _ => return false,
        }
    }
    false
}
