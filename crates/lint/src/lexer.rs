//! A hand-rolled Rust surface lexer.
//!
//! Produces a flat token stream with line numbers — enough structure for
//! the project lints (identifier adjacency, comment text and placement,
//! brace-delimited regions) without a real parser. The lexer is exact
//! about the things that make naive `grep`-style linting wrong:
//!
//! * line comments (`//`, `///`, `//!`) and nested block comments
//!   (`/* /* */ */`, `/** */`, `/*! */`) are single tokens carrying their
//!   text, so `unsafe` inside a comment is never a keyword;
//! * string-ish literals — `"…"` with escapes, raw strings `r#"…"#` with
//!   any hash depth, byte/C variants `b"…"`, `br#"…"#`, `c"…"` — are
//!   opaque tokens, so `Ordering::SeqCst` inside a string is not an
//!   ordering;
//! * `'a'` (char literal) and `'a` (lifetime) are disambiguated by
//!   lookahead for the closing quote, so lifetimes do not swallow code;
//! * numbers absorb their suffixes (`1u32`, `0x1f`, `1.5e-3`) so a cast
//!   like `64 as u32` lexes as `Num`, `Ident(as)`, `Ident(u32)`.
//!
//! Everything else is an `Ident` (identifiers and keywords, including raw
//! `r#ident`) or a single-character `Punct`.

/// One lexed token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword (`unsafe`, `Ordering`, `unwrap`, …).
    Ident(String),
    /// Single punctuation character (`{`, `}`, `.`, `:`, `#`, …).
    Punct(char),
    /// `//`-style comment. `doc` marks `///` and `//!` forms; `text` is
    /// everything after the slashes, untrimmed.
    LineComment { doc: bool, text: String },
    /// `/* … */` comment (possibly nested); `doc` marks `/**` and `/*!`.
    BlockComment { doc: bool, text: String },
    /// Any string-ish literal, contents dropped.
    Str,
    /// Char literal (`'x'`, `'\n'`).
    Char,
    /// Lifetime (`'a`, `'static`).
    Lifetime,
    /// Numeric literal including suffix.
    Num,
}

/// A token plus the 1-based line it starts on.
#[derive(Debug, Clone)]
pub struct SpannedTok {
    pub tok: Tok,
    pub line: u32,
}

/// Lexes `src` into a flat spanned-token stream.
///
/// The lexer never fails: unterminated literals simply consume to end of
/// input, which is good enough for lint purposes (the compiler is the
/// authority on well-formedness; the linter runs on code that builds).
pub fn lex(src: &str) -> Vec<SpannedTok> {
    Lexer { chars: src.chars().collect(), pos: 0, line: 1, out: Vec::new() }.run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    out: Vec<SpannedTok>,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied();
        if let Some(ch) = c {
            self.pos += 1;
            if ch == '\n' {
                self.line += 1;
            }
        }
        c
    }

    fn push(&mut self, tok: Tok, line: u32) {
        self.out.push(SpannedTok { tok, line });
    }

    fn run(mut self) -> Vec<SpannedTok> {
        while let Some(c) = self.peek(0) {
            let line = self.line;
            match c {
                c if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(line),
                '/' if self.peek(1) == Some('*') => self.block_comment(line),
                '"' => {
                    self.bump();
                    self.string_body('"');
                    self.push(Tok::Str, line);
                }
                '\'' => self.char_or_lifetime(line),
                c if c.is_ascii_digit() => self.number(line),
                c if c == '_' || c.is_alphabetic() => self.ident_or_prefixed(line),
                _ => {
                    self.bump();
                    self.push(Tok::Punct(c), line);
                }
            }
        }
        self.out
    }

    fn line_comment(&mut self, line: u32) {
        self.bump();
        self.bump(); // the two slashes
                     // `///` is a doc comment but `////…` is a plain one (rustdoc rule);
                     // `//!` is an inner doc comment.
        let doc =
            (self.peek(0) == Some('/') && self.peek(1) != Some('/')) || self.peek(0) == Some('!');
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.push(Tok::LineComment { doc, text }, line);
    }

    fn block_comment(&mut self, line: u32) {
        self.bump();
        self.bump(); // `/*`
        let doc =
            (self.peek(0) == Some('*') && self.peek(1) != Some('*')) || self.peek(0) == Some('!');
        let mut depth = 1usize;
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '/' && self.peek(1) == Some('*') {
                depth += 1;
                self.bump();
                self.bump();
                text.push_str("/*");
            } else if c == '*' && self.peek(1) == Some('/') {
                self.bump();
                self.bump();
                depth -= 1;
                if depth == 0 {
                    break;
                }
                text.push_str("*/");
            } else {
                text.push(c);
                self.bump();
            }
        }
        self.push(Tok::BlockComment { doc, text }, line);
    }

    /// Consumes a quoted body after the opening quote, honoring `\`
    /// escapes, up to and including the closing `quote`.
    fn string_body(&mut self, quote: char) {
        while let Some(c) = self.bump() {
            if c == '\\' {
                self.bump();
            } else if c == quote {
                break;
            }
        }
    }

    /// Raw string after the `r` (and optional `b`/`c`) prefix: `#…#"…"#…#`.
    fn raw_string_body(&mut self) {
        let mut hashes = 0usize;
        while self.peek(0) == Some('#') {
            hashes += 1;
            self.bump();
        }
        self.bump(); // opening `"`
        'outer: while let Some(c) = self.bump() {
            if c == '"' {
                for i in 0..hashes {
                    if self.peek(i) != Some('#') {
                        continue 'outer;
                    }
                }
                for _ in 0..hashes {
                    self.bump();
                }
                break;
            }
        }
    }

    fn char_or_lifetime(&mut self, line: u32) {
        self.bump(); // `'`
        match self.peek(0) {
            Some('\\') => {
                // Escaped char literal.
                self.string_body('\'');
                self.push(Tok::Char, line);
            }
            Some(c) if c == '_' || c.is_alphanumeric() => {
                if self.peek(1) == Some('\'') {
                    // `'x'`
                    self.bump();
                    self.bump();
                    self.push(Tok::Char, line);
                } else {
                    // `'ident` lifetime: consume the identifier.
                    while let Some(c) = self.peek(0) {
                        if c == '_' || c.is_alphanumeric() {
                            self.bump();
                        } else {
                            break;
                        }
                    }
                    self.push(Tok::Lifetime, line);
                }
            }
            _ => {
                // `'('` and friends: a one-char literal of punctuation.
                self.string_body('\'');
                self.push(Tok::Char, line);
            }
        }
    }

    fn number(&mut self, line: u32) {
        // Digits, then letters/digits/underscores (hex, suffixes, exponent
        // with sign), then at most one `.` followed by more of the same —
        // but never `..` (range operator).
        let mut prev = ' ';
        while let Some(c) = self.peek(0) {
            let take = if c == '.' {
                self.peek(1) != Some('.') && prev != '.'
            } else {
                c.is_ascii_alphanumeric()
                    || c == '_'
                    || ((c == '+' || c == '-') && (prev == 'e' || prev == 'E'))
            };
            if !take {
                break;
            }
            prev = c;
            self.bump();
        }
        self.push(Tok::Num, line);
    }

    fn ident_or_prefixed(&mut self, line: u32) {
        // Check the string/char prefixes first: r"", r#"", b"", br"", b'',
        // c"", cr"" and raw identifiers r#ident.
        let c0 = self.peek(0);
        let c1 = self.peek(1);
        let c2 = self.peek(2);
        match (c0, c1) {
            (Some('r'), Some('"')) | (Some('r'), Some('#'))
                if c1 == Some('"') || c2 == Some('"') || c2 == Some('#') =>
            {
                // Could still be a raw identifier `r#ident`; a raw *string*
                // has only `#`s between `r` and `"`.
                let mut i = 1;
                while self.peek(i) == Some('#') {
                    i += 1;
                }
                if self.peek(i) == Some('"') {
                    self.bump(); // r
                    self.raw_string_body();
                    self.push(Tok::Str, line);
                    return;
                }
                self.raw_ident(line);
            }
            (Some('r'), Some('#')) => self.raw_ident(line),
            (Some('b'), Some('"')) | (Some('c'), Some('"')) => {
                self.bump();
                self.bump();
                self.string_body('"');
                self.push(Tok::Str, line);
            }
            (Some('b'), Some('\'')) => {
                self.bump();
                self.bump();
                self.string_body('\'');
                self.push(Tok::Char, line);
            }
            (Some('b'), Some('r')) | (Some('c'), Some('r'))
                if c2 == Some('"') || c2 == Some('#') =>
            {
                self.bump();
                self.bump();
                self.raw_string_body();
                self.push(Tok::Str, line);
            }
            _ => {
                let mut name = String::new();
                while let Some(c) = self.peek(0) {
                    if c == '_' || c.is_alphanumeric() {
                        name.push(c);
                        self.bump();
                    } else {
                        break;
                    }
                }
                self.push(Tok::Ident(name), line);
            }
        }
    }

    fn raw_ident(&mut self, line: u32) {
        self.bump(); // r
        self.bump(); // #
        let mut name = String::new();
        while let Some(c) = self.peek(0) {
            if c == '_' || c.is_alphanumeric() {
                name.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.push(Tok::Ident(name), line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .into_iter()
            .filter_map(|t| match t.tok {
                Tok::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn comments_swallow_keywords() {
        let src = "// unsafe here\n/* unsafe { } */ fn ok() {}";
        assert_eq!(idents(src), vec!["fn", "ok"]);
    }

    #[test]
    fn nested_block_comments() {
        let src = "/* a /* unsafe */ b */ let x;";
        assert_eq!(idents(src), vec!["let", "x"]);
    }

    #[test]
    fn strings_are_opaque() {
        let src = r##"let s = "Ordering::SeqCst"; let r = r#"unsafe "quoted" "#; done();"##;
        assert_eq!(idents(src), vec!["let", "s", "let", "r", "done"]);
    }

    #[test]
    fn char_vs_lifetime() {
        let toks: Vec<Tok> =
            lex("'a' x 'static y '\\n' z '_'").into_iter().map(|t| t.tok).collect();
        assert_eq!(
            toks,
            vec![
                Tok::Char,
                Tok::Ident("x".into()),
                Tok::Lifetime,
                Tok::Ident("y".into()),
                Tok::Char,
                Tok::Ident("z".into()),
                Tok::Char,
            ]
        );
    }

    #[test]
    fn doc_comment_flavors() {
        let toks = lex("/// outer\n//! inner\n//// plain\n// plain\n/** blockdoc */\n/* block */");
        let docs: Vec<bool> = toks
            .iter()
            .map(|t| match &t.tok {
                Tok::LineComment { doc, .. } | Tok::BlockComment { doc, .. } => *doc,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(docs, vec![true, true, false, false, true, false]);
    }

    #[test]
    fn numbers_absorb_suffixes_and_ranges_split() {
        let toks: Vec<Tok> = lex("0..10u32 1.5e-3 0x1f_u64").into_iter().map(|t| t.tok).collect();
        assert_eq!(
            toks,
            vec![Tok::Num, Tok::Punct('.'), Tok::Punct('.'), Tok::Num, Tok::Num, Tok::Num,]
        );
    }

    #[test]
    fn line_numbers_are_one_based() {
        let toks = lex("a\nb\n  c");
        let lines: Vec<u32> = toks.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 3]);
    }

    #[test]
    fn cast_shape_lexes_cleanly() {
        assert_eq!(idents("(wi * 64) as u32"), vec!["wi", "as", "u32"]);
    }

    #[test]
    fn byte_and_c_strings() {
        assert_eq!(idents(r#"b"x" c"y" br"z" x"#), vec!["x"]);
    }
}
