//! The interprocedural lock-discipline pass (rules L7 and L8).
//!
//! Where the per-file rules in [`crate::rules`] look at token adjacency,
//! this pass builds a small model of each crate:
//!
//! 1. **Functions** — every `fn name(…) { … }` body in the crate's
//!    library files (nested fns are lifted out and analyzed separately;
//!    closures are treated as inline code of their enclosing fn).
//! 2. **Acquisition sites** — calls to the project lock helpers
//!    (`lock(&self.state, …)`, `tracked_read(&store.current, …)`; see
//!    [`config::LOCK_ACQUIRE_FNS`]) and empty-argument `.lock()` /
//!    `.read()` / `.write()` method calls. A site's *lock name* is the
//!    last field identifier of the guarded expression (`&self.state` →
//!    `state`), which lines up with the runtime site-naming scheme
//!    (`mutation.state`) documented in DESIGN.md §15.
//! 3. **Guard lifetimes** — `let`-bound guards live to the end of their
//!    enclosing block or an explicit `drop(guard)`; un-bound guards are
//!    statement temporaries that die at the `;`.
//! 4. **A call graph** — `name(…)` / `.name(…)` call sites resolve to
//!    every same-crate fn with that name (an over-approximation that
//!    needs no type information).
//!
//! Each function gets a memoized summary of the locks it (transitively)
//! acquires and the blocking operations it (transitively) reaches. The
//! pass then reports:
//!
//! * **L7** — the crate-wide acquisition-order graph contains both
//!   `a → b` and `b → a` for two lock names: some interleaving of the
//!   two witness paths deadlocks. Both acquisition chains are printed.
//! * **L8** — a blocking operation (`thread::sleep`, channel `recv`,
//!   `JoinHandle::join`, file/socket I/O, `catch_unwind` dispatch; see
//!   [`config::BLOCKING_CALLS`]) is reachable while a guard is live.
//!   Condvar `wait`/`wait_timeout` calls are exempt for the guard they
//!   atomically release (named as receiver or argument) but still count
//!   against any *other* guard held across them.
//!
//! Both rules honor `// lint: allow(L7/L8): reason` waivers at the
//! reported line; for L7 a waiver on either direction's anchor suppresses
//! the pair.

use crate::config;
use crate::lexer::Tok;
use crate::rules::{Diag, FileCtx, RuleId};
use std::collections::HashMap;

/// Runs the lock pass over one crate's library files, appending L7/L8
/// diagnostics to `out`. `ctxs` must all belong to the same crate.
pub fn check_crate(ctxs: &[&FileCtx], out: &mut Vec<Diag>) {
    let ctxs: Vec<&FileCtx> = ctxs
        .iter()
        .copied()
        .filter(|c| !config::LOCK_WRAPPER_FILES.iter().any(|f| c.path.ends_with(f)))
        .collect();
    if ctxs.is_empty() {
        return;
    }
    let fns = collect_fns(&ctxs);
    let mut by_name: HashMap<&str, Vec<usize>> = HashMap::new();
    for (i, f) in fns.iter().enumerate() {
        by_name.entry(f.name.as_str()).or_default().push(i);
    }
    let mut pass = Pass {
        ctxs: &ctxs,
        fns: &fns,
        by_name,
        state: vec![SummaryState::Unvisited; fns.len()],
        done: Vec::new(),
        edges: HashMap::new(),
        l8: Vec::new(),
    };
    for i in 0..fns.len() {
        pass.summary(i);
    }
    pass.report(out);
}

/// One `fn` body found in the crate.
struct FnInfo {
    name: String,
    /// Index into the crate's `ctxs` slice.
    ctx: usize,
    /// Token range of the body, `open` at `{`, `close` at the match.
    open: usize,
    close: usize,
}

/// A lock-relevant happening inside one fn body, in token order.
enum Ev {
    Open,
    Close,
    /// Statement end: statement-temporary guards at this depth die.
    Semi,
    Acquire {
        lock: String,
        line: u32,
        binding: Option<String>,
    },
    Drop {
        binding: String,
    },
    /// `what` names the blocking call; `exempt` lists identifiers (guard
    /// bindings) a condvar wait atomically releases.
    Blocking {
        what: String,
        line: u32,
        exempt: Vec<String>,
    },
    Call {
        name: String,
        line: u32,
    },
}

/// What a function does to locks, as seen by its callers.
#[derive(Clone, Default)]
struct Summary {
    /// Lock names (transitively) acquired, each with the chain of frames
    /// leading to the acquisition.
    acquires: Vec<(String, Vec<String>)>,
    /// Blocking operations (transitively) reached, with chains.
    blocking: Vec<(String, Vec<String>)>,
}

#[derive(Clone, Copy, PartialEq)]
enum SummaryState {
    Unvisited,
    Visiting,
    Done(usize),
}

/// Witness for one acquisition-order edge `from → to`.
struct EdgeWitness {
    ctx: usize,
    /// Line a waiver for this direction would anchor to (the second
    /// acquisition, or the call that transitively performs it).
    line: u32,
    desc: String,
}

/// A pending L8 finding (emitted at report time so waiver bookkeeping
/// happens exactly once per deduplicated site).
struct L8Finding {
    ctx: usize,
    line: u32,
    msg: String,
}

struct Pass<'a> {
    ctxs: &'a [&'a FileCtx],
    fns: &'a [FnInfo],
    by_name: HashMap<&'a str, Vec<usize>>,
    state: Vec<SummaryState>,
    /// Memoized summaries, indexed by `SummaryState::Done`.
    done: Vec<Summary>,
    /// `(from, to)` lock-name order edges with their first witness.
    edges: HashMap<(String, String), EdgeWitness>,
    l8: Vec<L8Finding>,
}

impl<'a> Pass<'a> {
    fn report(&mut self, out: &mut Vec<Diag>) {
        // L7: both directions present for a pair of distinct lock names.
        let mut pairs: Vec<(&(String, String), &EdgeWitness)> = self
            .edges
            .iter()
            .filter(|((a, b), _)| a < b && self.edges.contains_key(&(b.clone(), a.clone())))
            .collect();
        pairs.sort_by_key(|((a, b), _)| (a.clone(), b.clone()));
        for ((a, b), fwd) in pairs {
            let rev = &self.edges[&(b.clone(), a.clone())];
            let (c1, c2) = (self.ctxs[fwd.ctx], self.ctxs[rev.ctx]);
            // A waiver on either direction's anchor covers the pair (and
            // is marked used by the `allowed` probe).
            let w1 = c1.allowed(fwd.line, RuleId::L7);
            let w2 = c2.allowed(rev.line, RuleId::L7);
            if w1 || w2 {
                continue;
            }
            out.push(Diag {
                rule: RuleId::L7,
                severity: crate::rules::Severity::Error,
                file: c1.path.clone(),
                line: fwd.line,
                msg: format!(
                    "lock-order inversion between `{a}` and `{b}`: {} — but {} \
                     (an interleaving of these paths deadlocks; pick one order, \
                     or waive with `lint: allow(L7): reason` if the locks are \
                     provably never contended together)",
                    fwd.desc, rev.desc
                ),
            });
        }
        // L8, deduplicated by site.
        let mut seen: Vec<(usize, u32, String)> = Vec::new();
        for f in &self.l8 {
            let key = (f.ctx, f.line, f.msg.clone());
            if seen.contains(&key) {
                continue;
            }
            seen.push(key);
            self.ctxs[f.ctx].diag(out, RuleId::L8, f.line, f.msg.clone());
        }
    }

    /// Computes (memoized) the summary of `fns[i]`, emitting edges and L8
    /// findings for its body as a side effect of the first visit. A fn
    /// already on the DFS stack returns an empty summary: recursion past
    /// the first unrolling adds no new acquisition.
    fn summary(&mut self, i: usize) -> Summary {
        match self.state[i] {
            SummaryState::Visiting => return Summary::default(),
            SummaryState::Done(idx) => return self.done[idx].clone(),
            SummaryState::Unvisited => {}
        }
        self.state[i] = SummaryState::Visiting;
        let s = self.analyze(i);
        self.done.push(s.clone());
        self.state[i] = SummaryState::Done(self.done.len() - 1);
        s
    }

    fn analyze(&mut self, i: usize) -> Summary {
        let f = &self.fns[i];
        let ctx = self.ctxs[f.ctx];
        let events = extract_events(ctx, f);
        let mut sum = Summary::default();
        // Live guards: (lock, binding, block depth, line acquired).
        let mut held: Vec<(String, Option<String>, usize, u32)> = Vec::new();
        let mut depth = 0usize;
        for ev in events {
            match ev {
                Ev::Open => depth += 1,
                Ev::Close => {
                    held.retain(|g| g.2 < depth);
                    depth = depth.saturating_sub(1);
                }
                Ev::Semi => held.retain(|g| g.1.is_some() || g.2 < depth),
                Ev::Drop { binding } => {
                    if let Some(pos) =
                        held.iter().rposition(|g| g.1.as_deref() == Some(binding.as_str()))
                    {
                        held.remove(pos);
                    }
                }
                Ev::Acquire { lock, line, binding } => {
                    for g in &held {
                        self.record_edge(
                            &g.0,
                            &lock,
                            f.ctx,
                            line,
                            format!(
                                "`{}` holds `{}` (acquired {}:{}) and then acquires `{}` at {}:{}",
                                f.name, g.0, ctx.path, g.3, lock, ctx.path, line
                            ),
                        );
                    }
                    if !sum.acquires.iter().any(|(l, _)| *l == lock) {
                        sum.acquires.push((
                            lock.clone(),
                            vec![format!(
                                "`{}` acquires `{}` at {}:{}",
                                f.name, lock, ctx.path, line
                            )],
                        ));
                    }
                    held.push((lock, binding, depth, line));
                }
                Ev::Blocking { what, line, exempt } => {
                    let offenders: Vec<&(String, Option<String>, usize, u32)> = held
                        .iter()
                        .filter(|g| {
                            !g.1.as_deref().map(|b| exempt.iter().any(|e| e == b)).unwrap_or(false)
                        })
                        .collect();
                    if !offenders.is_empty() {
                        let locks: Vec<String> = offenders
                            .iter()
                            .map(|g| format!("`{}` (acquired line {})", g.0, g.3))
                            .collect();
                        self.l8.push(L8Finding {
                            ctx: f.ctx,
                            line,
                            msg: format!(
                                "blocking call `{what}` while holding {}: a stalled peer \
                                 (or the unwound dispatch itself) extends the critical \
                                 section unboundedly — move the blocking work off-lock, \
                                 or waive with `lint: allow(L8): reason`",
                                locks.join(", ")
                            ),
                        });
                    }
                    if !sum.blocking.iter().any(|(w, _)| *w == what) {
                        sum.blocking.push((
                            what.clone(),
                            vec![format!(
                                "`{}` blocks in `{}` at {}:{}",
                                f.name, what, ctx.path, line
                            )],
                        ));
                    }
                }
                Ev::Call { name, line } => {
                    let callees = match self.by_name.get(name.as_str()) {
                        Some(v) => v.clone(),
                        None => continue,
                    };
                    for c in callees {
                        if c == i {
                            continue; // direct recursion adds nothing new
                        }
                        let cs = self.summary(c);
                        for (lock, chain) in &cs.acquires {
                            for g in &held {
                                let mut desc = format!(
                                    "`{}` holds `{}` (acquired {}:{}) and calls `{}` at {}:{}, which reaches: ",
                                    f.name, g.0, ctx.path, g.3, name, ctx.path, line
                                );
                                desc.push_str(&chain.join(" → "));
                                self.record_edge(&g.0, lock, f.ctx, line, desc);
                            }
                            if !sum.acquires.iter().any(|(l, _)| l == lock) {
                                let mut chain2 = vec![format!(
                                    "`{}` calls `{}` at {}:{}",
                                    f.name, name, ctx.path, line
                                )];
                                chain2.extend(chain.iter().cloned());
                                sum.acquires.push((lock.clone(), chain2));
                            }
                        }
                        for (what, chain) in &cs.blocking {
                            if !held.is_empty() {
                                let locks: Vec<String> = held
                                    .iter()
                                    .map(|g| format!("`{}` (acquired line {})", g.0, g.3))
                                    .collect();
                                self.l8.push(L8Finding {
                                    ctx: f.ctx,
                                    line,
                                    msg: format!(
                                        "call to `{name}` reaches blocking `{what}` while \
                                         holding {} [{}] — move the call off-lock, or waive \
                                         with `lint: allow(L8): reason`",
                                        locks.join(", "),
                                        chain.join(" → ")
                                    ),
                                });
                            }
                            if !sum.blocking.iter().any(|(w, _)| w == what) {
                                let mut chain2 = vec![format!(
                                    "`{}` calls `{}` at {}:{}",
                                    f.name, name, ctx.path, line
                                )];
                                chain2.extend(chain.iter().cloned());
                                sum.blocking.push((what.clone(), chain2));
                            }
                        }
                    }
                }
            }
        }
        sum
    }

    fn record_edge(&mut self, from: &str, to: &str, ctx: usize, line: u32, desc: String) {
        if from == to {
            // Same lock class twice on one path is re-entrancy, not an
            // ordering question (and spurious under name aliasing).
            return;
        }
        self.edges.entry((from.to_string(), to.to_string())).or_insert(EdgeWitness {
            ctx,
            line,
            desc,
        });
    }
}

// ---------------------------------------------------------------------------
// Token-stream extraction
// ---------------------------------------------------------------------------

/// Finds every `fn name(…) { … }` body across the crate's files. Bodies
/// inside `#[cfg(test)]` regions are skipped (test code may block under
/// locks it owns exclusively); bodies of nested fns are collected here
/// and skipped by the enclosing fn's event scan.
fn collect_fns(ctxs: &[&FileCtx]) -> Vec<FnInfo> {
    let mut out = Vec::new();
    for (ci, ctx) in ctxs.iter().enumerate() {
        let toks = &ctx.toks;
        let mut i = 0usize;
        while i + 1 < toks.len() {
            let is_fn = matches!(&toks[i].tok, Tok::Ident(s) if s == "fn");
            if !is_fn {
                i += 1;
                continue;
            }
            let Some(Tok::Ident(name)) = toks.get(i + 1).map(|t| &t.tok) else {
                i += 1; // `fn(…)` pointer type
                continue;
            };
            // Scan the signature for the body `{` (a `;` first means a
            // bodiless trait method or extern decl).
            let mut j = i + 2;
            let mut open = None;
            while let Some(t) = toks.get(j) {
                match t.tok {
                    Tok::Punct('{') => {
                        open = Some(j);
                        break;
                    }
                    Tok::Punct(';') => break,
                    _ => j += 1,
                }
            }
            let Some(open) = open else {
                i = j + 1;
                continue;
            };
            let close = matching_brace(toks, open);
            if !ctx.in_test_region(toks[i].line) {
                out.push(FnInfo { name: name.clone(), ctx: ci, open, close });
            }
            // Do not skip to `close`: nested fns inside this body must be
            // collected too. The event scan handles the nesting.
            i = open + 1;
        }
    }
    out
}

/// Index of the `}` matching the `{` at `open`.
fn matching_brace(toks: &[crate::lexer::SpannedTok], open: usize) -> usize {
    let mut depth = 0i32;
    for (k, t) in toks.iter().enumerate().skip(open) {
        match t.tok {
            Tok::Punct('{') => depth += 1,
            Tok::Punct('}') => {
                depth -= 1;
                if depth == 0 {
                    return k;
                }
            }
            _ => {}
        }
    }
    toks.len() - 1
}

/// Call-position identifiers that are control-flow keywords, not calls.
const KEYWORDS: &[&str] = &[
    "if", "while", "match", "return", "for", "in", "loop", "move", "else", "break", "continue",
    "unsafe", "ref", "dyn", "where", "as", "box", "await", "Some", "Ok", "Err",
];

/// Scans one fn body into lock events. Nested `fn` bodies are skipped
/// (they are separate entries in the crate's fn list); closure bodies are
/// scanned inline as part of the enclosing fn, which over-approximates
/// (a stored closure's body may run later, off-lock) but is exactly right
/// for the immediately-invoked `catch_unwind`/worker-loop closures this
/// codebase uses.
fn extract_events(ctx: &FileCtx, f: &FnInfo) -> Vec<Ev> {
    let toks = &ctx.toks;
    let mut out = Vec::new();
    let mut pending_let: Option<String> = None;
    let mut i = f.open;
    while i <= f.close {
        match &toks[i].tok {
            Tok::Punct('{') => {
                pending_let = None;
                out.push(Ev::Open);
            }
            Tok::Punct('}') => out.push(Ev::Close),
            Tok::Punct(';') => {
                pending_let = None;
                out.push(Ev::Semi);
            }
            Tok::Ident(s) if s == "fn" => {
                // Nested fn: skip its whole body.
                if matches!(toks.get(i + 1).map(|t| &t.tok), Some(Tok::Ident(_))) {
                    let mut j = i + 2;
                    while let Some(t) = toks.get(j) {
                        match t.tok {
                            Tok::Punct('{') => {
                                i = matching_brace(toks, j);
                                break;
                            }
                            Tok::Punct(';') => {
                                i = j;
                                break;
                            }
                            _ => j += 1,
                        }
                    }
                }
            }
            Tok::Ident(s) if s == "let" => {
                pending_let = let_binding(toks, i);
            }
            Tok::Ident(name) if toks.get(i + 1).map(|t| &t.tok) == Some(&Tok::Punct('(')) => {
                let line = toks[i].line;
                let is_method = i > 0 && toks[i - 1].tok == Tok::Punct('.');
                let empty_args = toks.get(i + 2).map(|t| &t.tok) == Some(&Tok::Punct(')'));
                if !is_method && config::LOCK_ACQUIRE_FNS.contains(&name.as_str()) {
                    // Project lock helper: `lock(&self.state, "site")`.
                    if let Some(lock) = first_arg_last_ident(toks, i + 1) {
                        out.push(Ev::Acquire { lock, line, binding: pending_let.take() });
                    }
                } else if is_method
                    && empty_args
                    && matches!(name.as_str(), "lock" | "read" | "write")
                {
                    // `.lock()` / RwLock `.read()` / `.write()`.
                    if let Some(recv) = receiver_ident(toks, i - 1) {
                        if !config::LOCK_EXEMPT_RECEIVERS.contains(&recv.as_str()) {
                            out.push(Ev::Acquire { lock: recv, line, binding: pending_let.take() });
                        }
                    }
                } else if !is_method && name == "drop" {
                    if let Some(Tok::Ident(b)) = toks.get(i + 2).map(|t| &t.tok) {
                        if toks.get(i + 3).map(|t| &t.tok) == Some(&Tok::Punct(')')) {
                            out.push(Ev::Drop { binding: b.clone() });
                        }
                    }
                } else if is_method && matches!(name.as_str(), "wait" | "wait_timeout") {
                    // Condvar wait: the guard it releases appears as the
                    // receiver (`q.wait(&cv)`) or an argument
                    // (`cv.wait(q)`); either spelling exempts it.
                    let mut exempt = receiver_chain_idents(toks, i - 1);
                    exempt.extend(arg_idents(toks, i + 1));
                    out.push(Ev::Blocking { what: name.clone(), line, exempt });
                } else if config::BLOCKING_CALLS.contains(&name.as_str())
                    && (name != "join" || (is_method && empty_args))
                {
                    // `join` must look like `JoinHandle::join` (`.join()`),
                    // not `slice.join(", ")`.
                    out.push(Ev::Blocking { what: name.clone(), line, exempt: Vec::new() });
                } else if config::THREAD_SPAWN_FNS.contains(&name.as_str()) {
                    // The spawned closure runs on its own thread with an
                    // empty hold stack: skip the whole argument list.
                    let mut depth = 0i32;
                    let mut j = i + 1;
                    while let Some(t) = toks.get(j) {
                        match t.tok {
                            Tok::Punct('(') => depth += 1,
                            Tok::Punct(')') => {
                                depth -= 1;
                                if depth == 0 {
                                    break;
                                }
                            }
                            _ => {}
                        }
                        j += 1;
                    }
                    i = j;
                } else if !KEYWORDS.contains(&name.as_str())
                    && !config::CALL_RESOLUTION_EXEMPT.contains(&name.as_str())
                {
                    out.push(Ev::Call { name: name.clone(), line });
                }
            }
            _ => {}
        }
        i += 1;
    }
    out
}

/// The variable a `let` statement binds, descending one level into
/// `Some(x)` / `Ok(mut g)` / `(a, b)` patterns.
fn let_binding(toks: &[crate::lexer::SpannedTok], let_idx: usize) -> Option<String> {
    let mut j = let_idx + 1;
    loop {
        match toks.get(j).map(|t| &t.tok) {
            Some(Tok::Ident(s)) if s == "mut" || s == "ref" => j += 1,
            Some(Tok::Ident(s)) => {
                // `Some(x)` — prefer the ident inside the parens.
                if toks.get(j + 1).map(|t| &t.tok) == Some(&Tok::Punct('(')) {
                    let mut k = j + 2;
                    while let Some(t) = toks.get(k) {
                        match &t.tok {
                            Tok::Ident(s2) if s2 == "mut" || s2 == "ref" => k += 1,
                            Tok::Ident(s2) => return Some(s2.clone()),
                            _ => return Some(s.clone()),
                        }
                    }
                }
                return Some(s.clone());
            }
            Some(Tok::Punct('(')) => j += 1, // tuple pattern: take first elem
            _ => return None,
        }
    }
}

/// Last identifier inside the first top-level argument of the call whose
/// `(` sits at `open`: `lock(&self.state, "x")` → `state`.
fn first_arg_last_ident(toks: &[crate::lexer::SpannedTok], open: usize) -> Option<String> {
    let mut depth = 0i32;
    let mut last: Option<String> = None;
    for t in toks.iter().skip(open) {
        match &t.tok {
            Tok::Punct('(') => depth += 1,
            Tok::Punct(')') => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            Tok::Punct(',') if depth == 1 => break,
            Tok::Ident(s) => last = Some(s.clone()),
            _ => {}
        }
    }
    last
}

/// The identifier naming a method receiver, walking back from the `.` at
/// `dot`: `self.current.read()` → `current`; `io::stdout().lock()` →
/// `stdout` (skipping the `()` call).
fn receiver_ident(toks: &[crate::lexer::SpannedTok], dot: usize) -> Option<String> {
    let mut k = dot;
    loop {
        if k == 0 {
            return None;
        }
        k -= 1;
        match &toks[k].tok {
            Tok::Ident(s) => return Some(s.clone()),
            Tok::Punct(')') => {
                // Skip a balanced `(…)` (receiver is a call result).
                let mut depth = 0i32;
                loop {
                    match toks[k].tok {
                        Tok::Punct(')') => depth += 1,
                        Tok::Punct('(') => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    if k == 0 {
                        return None;
                    }
                    k -= 1;
                }
            }
            _ => return None,
        }
    }
}

/// All identifiers in a dotted receiver chain (`self.job.done.wait(…)` →
/// `[done, job, self]`), for the condvar-wait guard exemption.
fn receiver_chain_idents(toks: &[crate::lexer::SpannedTok], dot: usize) -> Vec<String> {
    let mut out = Vec::new();
    let mut k = dot;
    while k > 0 {
        k -= 1;
        match &toks[k].tok {
            Tok::Ident(s) => out.push(s.clone()),
            Tok::Punct('.') => {}
            _ => break,
        }
    }
    out
}

/// All identifiers anywhere in a call's argument list.
fn arg_idents(toks: &[crate::lexer::SpannedTok], open: usize) -> Vec<String> {
    let mut depth = 0i32;
    let mut out = Vec::new();
    for t in toks.iter().skip(open) {
        match &t.tok {
            Tok::Punct('(') => depth += 1,
            Tok::Punct(')') => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            Tok::Ident(s) => out.push(s.clone()),
            _ => {}
        }
    }
    out
}
