//! L8 fixture: `sleeps_under_lock` blocks directly while its guard is
//! live; `blocks_via_call` reaches blocking I/O through a callee.
use std::sync::Mutex;
use std::thread;
use std::time::Duration;

struct S {
    m: Mutex<u32>,
    n: Mutex<u32>,
}

impl S {
    fn sleeps_under_lock(&self) {
        let g = self.m.lock();
        thread::sleep(Duration::from_millis(1));
        drop(g);
    }

    fn blocks_via_call(&self) {
        let g = self.n.lock();
        self.does_io();
        drop(g);
    }

    fn does_io(&self) {
        let mut s = String::new();
        let _ = std::io::stdin().read_line(&mut s);
    }
}
