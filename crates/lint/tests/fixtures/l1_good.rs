pub fn peek(xs: &[u32]) -> u32 {
    // SAFETY: callers guarantee xs is non-empty.
    unsafe { *xs.get_unchecked(0) }
}

struct Wrapper(*mut u32);

// SAFETY: the pointer is only dereferenced on the owning thread.
unsafe impl Send for Wrapper {}
