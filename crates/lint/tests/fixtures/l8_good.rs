//! L8 compliant twin: the guard is explicitly dropped (or its block
//! ends) before anything blocks, and a condvar wait is exempt for the
//! guard it atomically releases — in either spelling.
use std::sync::{Condvar, Mutex};
use std::thread;
use std::time::Duration;

struct S {
    m: Mutex<u32>,
    cv: Condvar,
}

impl S {
    fn drop_then_sleep(&self) {
        let g = self.m.lock();
        drop(g);
        thread::sleep(Duration::from_millis(1));
    }

    fn scope_then_sleep(&self) {
        {
            let _g = self.m.lock();
        }
        thread::sleep(Duration::from_millis(1));
    }

    fn wait_releases_arg_guard(&self) {
        let mut g = self.m.lock();
        g = self.cv.wait(g);
        drop(g);
    }

    fn wait_releases_receiver_guard(&self) {
        let mut g = self.m.lock();
        g = g.wait(&self.cv);
        drop(g);
    }
}
