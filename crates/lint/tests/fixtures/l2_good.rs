use std::sync::atomic::{AtomicU32, Ordering};

pub fn claim(x: &AtomicU32) -> bool {
    x.compare_exchange(0, 1, Ordering::AcqRel, Ordering::Acquire).is_ok()
}

pub fn read(x: &AtomicU32) -> u32 {
    x.load(Ordering::Acquire)
}
