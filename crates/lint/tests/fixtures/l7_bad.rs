//! L7 fixture: `ab` and `ba` take the same pair of locks in opposite
//! order (direct inversion); `outer`/`outer_rev` reproduce the inversion
//! through one level of calls (`take_d`/`take_c`).
use std::sync::Mutex;

struct S {
    a: Mutex<u32>,
    b: Mutex<u32>,
    c: Mutex<u32>,
    d: Mutex<u32>,
}

impl S {
    fn ab(&self) {
        let ga = self.a.lock();
        let gb = self.b.lock();
        drop(gb);
        drop(ga);
    }

    fn ba(&self) {
        let gb = self.b.lock();
        let ga = self.a.lock();
        drop(ga);
        drop(gb);
    }

    fn outer(&self) {
        let gc = self.c.lock();
        self.take_d();
        drop(gc);
    }

    fn take_d(&self) {
        let gd = self.d.lock();
        drop(gd);
    }

    fn outer_rev(&self) {
        let gd = self.d.lock();
        self.take_c();
        drop(gd);
    }

    fn take_c(&self) {
        let gc = self.c.lock();
        drop(gc);
    }
}
