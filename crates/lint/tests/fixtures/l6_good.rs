// L6 fixture: the compliant twin returns typed errors, contains panics
// behind the designated unwind boundary, or carries a reviewed waiver.
pub fn dispatch(op: &str) -> Result<u32, String> {
    match op {
        "a" => Ok(1),
        other => Err(format!("unknown op {other:?}")),
    }
}

pub fn contain(f: impl FnOnce() + std::panic::UnwindSafe) -> Result<(), String> {
    // `catch_unwind` and `panic_any` are the failure model's own
    // machinery, not banned macros.
    std::panic::catch_unwind(f).map_err(|_| "query panicked".to_string())
}

pub fn checked_step(s: u8) -> u8 {
    debug_assert!(s <= 3, "states are 0..=3");
    if s > 3 {
        // lint: allow(L6): state space is pinned by the parser above
        unreachable!("states are 0..=3");
    }
    s + 1
}
