// L6 fixture: panicking macros in serving-crate library code.
pub fn dispatch(op: &str) -> u32 {
    match op {
        "a" => 1,
        "b" => todo!("b is not wired up yet"),
        _ => panic!("unknown op {op:?}"),
    }
}

pub fn state_machine(s: u8) -> u8 {
    if s > 3 {
        unreachable!("states are 0..=3");
    }
    s + 1
}

#[cfg(test)]
mod tests {
    #[test]
    fn panics_in_tests_are_fine() {
        if false {
            panic!("test-only panic is out of scope");
        }
    }
}
