pub fn widen(x: u32) -> u64 {
    x as u64
}

pub fn clamp(x: f64) -> u32 {
    // lint: allow(L4): saturating clamp of a float sample, not an ID cast
    x as u32
}
