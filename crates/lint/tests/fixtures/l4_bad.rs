pub type VertexId = u32;

pub fn truncate(x: u64) -> u32 {
    x as u32
}

pub fn to_id(x: usize) -> VertexId {
    x as VertexId
}
