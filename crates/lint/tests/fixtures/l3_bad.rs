pub fn last(xs: &[u32]) -> u32 {
    *xs.last().unwrap()
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_fine() {
        assert_eq!(super::last(&[1]), *[1u32].last().unwrap());
    }
}
