/// Frobnicates.
pub fn frob() {}

#[doc = "Documented via the attribute form."]
pub fn attr_doc() {}

pub(crate) fn internal_needs_no_docs() {}
