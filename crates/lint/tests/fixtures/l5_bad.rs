/// Documented.
pub fn documented() {}

pub fn undocumented() {}

pub(crate) fn internal_needs_no_docs() {}
