//! W1 fixture: a waiver that suppresses nothing (line 4) is stale; the
//! used waiver on line 9 stays silent.
fn stale() -> u32 {
    // lint: allow(L3): nothing here ever needed this
    42
}

fn used(x: Option<u32>) -> u32 {
    // lint: allow(L3): fixture exercises a consumed waiver
    x.unwrap()
}
