//! L7 compliant twin: both paths (one direct, one through a call) take
//! the locks in the same order, so the acquisition graph stays acyclic.
use std::sync::Mutex;

struct S {
    a: Mutex<u32>,
    b: Mutex<u32>,
}

impl S {
    fn ab(&self) {
        let ga = self.a.lock();
        let gb = self.b.lock();
        drop(gb);
        drop(ga);
    }

    fn ab_via_call(&self) {
        let ga = self.a.lock();
        self.take_b();
        drop(ga);
    }

    fn take_b(&self) {
        let gb = self.b.lock();
        drop(gb);
    }
}
