// An unsafe block with no justification.
pub fn peek(xs: &[u32]) -> u32 {
    unsafe { *xs.get_unchecked(0) }
}

struct Wrapper(*mut u32);

unsafe impl Send for Wrapper {}
