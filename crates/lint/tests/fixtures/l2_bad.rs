use std::sync::atomic::{AtomicU32, Ordering};

pub fn bump(x: &AtomicU32) {
    x.fetch_add(1, Ordering::SeqCst);
}

pub fn publish(x: &AtomicU32) {
    x.store(1, Ordering::Release);
}

pub fn claim(x: &AtomicU32) -> bool {
    x.compare_exchange(0, 1, Ordering::Relaxed, Ordering::Relaxed).is_ok()
}
