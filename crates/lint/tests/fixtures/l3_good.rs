pub fn last(xs: &[u32]) -> u32 {
    *xs.last().expect("xs must be non-empty")
}
