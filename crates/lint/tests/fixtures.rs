//! Fixture tests: each rule has a deliberately-violating file (checked
//! for the exact rule IDs *and* line numbers) and a compliant twin
//! (checked to produce no diagnostics). The fixtures live under
//! `tests/fixtures/`, which the workspace walker skips by name.

use ligra_lint::{lint_source, FileKind, RuleId};

fn check(name: &str, crate_name: &str, src: &str, expect: &[(RuleId, u32)]) {
    let diags = lint_source(name, crate_name, FileKind::Lib, src);
    let got: Vec<(RuleId, u32)> = diags.iter().map(|d| (d.rule, d.line)).collect();
    assert_eq!(
        got,
        expect,
        "{name} diagnostics:\n{}",
        diags.iter().map(|d| format!("  {d}")).collect::<Vec<_>>().join("\n")
    );
}

#[test]
fn l1_unsafe_without_safety_comment() {
    check(
        "fixtures/l1_bad.rs",
        "graph",
        include_str!("fixtures/l1_bad.rs"),
        &[(RuleId::L1, 3), (RuleId::L1, 8)],
    );
    check("fixtures/l1_good.rs", "graph", include_str!("fixtures/l1_good.rs"), &[]);
}

#[test]
fn l1_applies_even_to_test_files() {
    // L1 is the one rule that stays in scope for test/bench sources.
    let diags = lint_source(
        "fixtures/l1_bad.rs",
        "graph",
        FileKind::Test,
        include_str!("fixtures/l1_bad.rs"),
    );
    assert_eq!(diags.len(), 2);
    assert!(diags.iter().all(|d| d.rule == RuleId::L1));
}

#[test]
fn l2_ordering_whitelist_and_cas_discipline() {
    // Crate `graph` whitelists only Relaxed: line 4 is the SeqCst ban,
    // line 8 an off-whitelist Release, line 12 a Relaxed-success CAS.
    check(
        "fixtures/l2_bad.rs",
        "graph",
        include_str!("fixtures/l2_bad.rs"),
        &[(RuleId::L2, 4), (RuleId::L2, 8), (RuleId::L2, 12)],
    );
    // The same ordering mix is legal in `parallel`, and the CAS follows
    // the AcqRel/Acquire claim discipline.
    check("fixtures/l2_good.rs", "parallel", include_str!("fixtures/l2_good.rs"), &[]);
}

#[test]
fn l3_bare_unwrap_in_library_code() {
    // `engine` is an unwrap-free crate; the unwrap inside `#[cfg(test)]`
    // must not be flagged.
    check("fixtures/l3_bad.rs", "engine", include_str!("fixtures/l3_bad.rs"), &[(RuleId::L3, 2)]);
    check("fixtures/l3_good.rs", "engine", include_str!("fixtures/l3_good.rs"), &[]);
    // Crates outside the no-unwrap set (e.g. `apps`) are exempt.
    check("fixtures/l3_bad.rs", "apps", include_str!("fixtures/l3_bad.rs"), &[]);
}

#[test]
fn l4_truncating_casts() {
    check(
        "fixtures/l4_bad.rs",
        "graph",
        include_str!("fixtures/l4_bad.rs"),
        &[(RuleId::L4, 4), (RuleId::L4, 8)],
    );
    // Widening casts pass; a waived float clamp passes with its reason.
    check("fixtures/l4_good.rs", "graph", include_str!("fixtures/l4_good.rs"), &[]);
    // The checked-helper file itself is exempt by path.
    check("crates/parallel/src/utils.rs", "parallel", include_str!("fixtures/l4_bad.rs"), &[]);
}

#[test]
fn l5_pub_fn_docs_in_core() {
    check("fixtures/l5_bad.rs", "core", include_str!("fixtures/l5_bad.rs"), &[(RuleId::L5, 4)]);
    check("fixtures/l5_good.rs", "core", include_str!("fixtures/l5_good.rs"), &[]);
    // Doc coverage is only demanded of `core`'s public surface.
    check("fixtures/l5_bad.rs", "graph", include_str!("fixtures/l5_bad.rs"), &[]);
}

#[test]
fn l6_no_panicking_macros_in_serving_code() {
    // Lines 5/6 are `todo!`/`panic!`, line 12 `unreachable!`; the panic
    // inside `#[cfg(test)]` is out of scope.
    check(
        "fixtures/l6_bad.rs",
        "engine",
        include_str!("fixtures/l6_bad.rs"),
        &[(RuleId::L6, 5), (RuleId::L6, 6), (RuleId::L6, 12)],
    );
    // Typed errors, `catch_unwind`/`panic_any` machinery, and a waived
    // unreachable all pass.
    check("fixtures/l6_good.rs", "engine", include_str!("fixtures/l6_good.rs"), &[]);
    // Only the serving crates are in scope.
    check("fixtures/l6_bad.rs", "apps", include_str!("fixtures/l6_bad.rs"), &[]);
}

#[test]
fn l7_lock_order_inversion() {
    // Line 16 anchors the direct `a`/`b` inversion (the second
    // acquisition of the offending direction); line 30 anchors the
    // interprocedural `c`/`d` inversion at the call that transitively
    // acquires `d` while `c` is held.
    check(
        "fixtures/l7_bad.rs",
        "engine",
        include_str!("fixtures/l7_bad.rs"),
        &[(RuleId::L7, 16), (RuleId::L7, 30)],
    );
    // Consistent ordering — directly and through a call — is clean.
    check("fixtures/l7_good.rs", "engine", include_str!("fixtures/l7_good.rs"), &[]);
}

#[test]
fn l7_reports_both_witness_chains() {
    let diags = lint_source(
        "fixtures/l7_bad.rs",
        "engine",
        FileKind::Lib,
        include_str!("fixtures/l7_bad.rs"),
    );
    let msg = &diags[0].msg;
    assert!(msg.contains("`ab` holds `a`"), "missing forward chain: {msg}");
    assert!(msg.contains("`ba` holds `b`"), "missing reverse chain: {msg}");
}

#[test]
fn l8_blocking_under_guard() {
    // Line 15: `thread::sleep` with the guard live. Line 21: the call
    // into `does_io`, whose `read_line` blocks, with `n` held.
    check(
        "fixtures/l8_bad.rs",
        "engine",
        include_str!("fixtures/l8_bad.rs"),
        &[(RuleId::L8, 15), (RuleId::L8, 21)],
    );
    // Dropped/scope-ended guards and condvar waits (either spelling of
    // the released guard) are clean.
    check("fixtures/l8_good.rs", "engine", include_str!("fixtures/l8_good.rs"), &[]);
}

#[test]
fn w1_stale_waiver() {
    check("fixtures/w1_bad.rs", "engine", include_str!("fixtures/w1_bad.rs"), &[(RuleId::W1, 4)]);
}

#[test]
fn w1_renders_as_warning() {
    let diags = lint_source(
        "fixtures/w1_bad.rs",
        "engine",
        FileKind::Lib,
        include_str!("fixtures/w1_bad.rs"),
    );
    assert_eq!(diags.len(), 1);
    assert_eq!(diags[0].severity, ligra_lint::Severity::Warn);
    assert!(
        diags[0].to_string().starts_with("fixtures/w1_bad.rs:4: warning[W1]: "),
        "unexpected diagnostic format: {}",
        diags[0]
    );
}

#[test]
fn l7_l8_waivable_at_anchor() {
    // A waiver on the line above either direction's anchor suppresses
    // the L7 pair; same for an L8 site.
    let src = include_str!("fixtures/l7_bad.rs")
        .replace("        let gb = self.b.lock();\n        drop(gb);\n        drop(ga);\n    }\n\n    fn ba",
                 "        // lint: allow(L7): fixture proves waivability\n        let gb = self.b.lock();\n        drop(gb);\n        drop(ga);\n    }\n\n    fn ba");
    let diags = lint_source("fixtures/l7_waived.rs", "engine", FileKind::Lib, &src);
    assert!(
        diags.iter().filter(|d| d.rule == RuleId::L7).count() == 1,
        "only the unwaived c/d inversion should remain: {diags:?}"
    );
    // The consumed waiver must not be reported stale.
    assert!(diags.iter().all(|d| d.rule != RuleId::W1), "waiver wrongly stale: {diags:?}");
}

#[test]
fn diagnostics_render_machine_readable() {
    let diags = lint_source(
        "crates/graph/src/x.rs",
        "graph",
        FileKind::Lib,
        include_str!("fixtures/l4_bad.rs"),
    );
    let line = diags[0].to_string();
    assert!(
        line.starts_with("crates/graph/src/x.rs:4: error[L4]: "),
        "unexpected diagnostic format: {line}"
    );
}
