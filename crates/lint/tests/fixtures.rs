//! Fixture tests: each rule has a deliberately-violating file (checked
//! for the exact rule IDs *and* line numbers) and a compliant twin
//! (checked to produce no diagnostics). The fixtures live under
//! `tests/fixtures/`, which the workspace walker skips by name.

use ligra_lint::{lint_source, FileKind, RuleId};

fn check(name: &str, crate_name: &str, src: &str, expect: &[(RuleId, u32)]) {
    let diags = lint_source(name, crate_name, FileKind::Lib, src);
    let got: Vec<(RuleId, u32)> = diags.iter().map(|d| (d.rule, d.line)).collect();
    assert_eq!(
        got,
        expect,
        "{name} diagnostics:\n{}",
        diags.iter().map(|d| format!("  {d}")).collect::<Vec<_>>().join("\n")
    );
}

#[test]
fn l1_unsafe_without_safety_comment() {
    check(
        "fixtures/l1_bad.rs",
        "graph",
        include_str!("fixtures/l1_bad.rs"),
        &[(RuleId::L1, 3), (RuleId::L1, 8)],
    );
    check("fixtures/l1_good.rs", "graph", include_str!("fixtures/l1_good.rs"), &[]);
}

#[test]
fn l1_applies_even_to_test_files() {
    // L1 is the one rule that stays in scope for test/bench sources.
    let diags = lint_source(
        "fixtures/l1_bad.rs",
        "graph",
        FileKind::Test,
        include_str!("fixtures/l1_bad.rs"),
    );
    assert_eq!(diags.len(), 2);
    assert!(diags.iter().all(|d| d.rule == RuleId::L1));
}

#[test]
fn l2_ordering_whitelist_and_cas_discipline() {
    // Crate `graph` whitelists only Relaxed: line 4 is the SeqCst ban,
    // line 8 an off-whitelist Release, line 12 a Relaxed-success CAS.
    check(
        "fixtures/l2_bad.rs",
        "graph",
        include_str!("fixtures/l2_bad.rs"),
        &[(RuleId::L2, 4), (RuleId::L2, 8), (RuleId::L2, 12)],
    );
    // The same ordering mix is legal in `parallel`, and the CAS follows
    // the AcqRel/Acquire claim discipline.
    check("fixtures/l2_good.rs", "parallel", include_str!("fixtures/l2_good.rs"), &[]);
}

#[test]
fn l3_bare_unwrap_in_library_code() {
    // `engine` is an unwrap-free crate; the unwrap inside `#[cfg(test)]`
    // must not be flagged.
    check("fixtures/l3_bad.rs", "engine", include_str!("fixtures/l3_bad.rs"), &[(RuleId::L3, 2)]);
    check("fixtures/l3_good.rs", "engine", include_str!("fixtures/l3_good.rs"), &[]);
    // Crates outside the no-unwrap set (e.g. `apps`) are exempt.
    check("fixtures/l3_bad.rs", "apps", include_str!("fixtures/l3_bad.rs"), &[]);
}

#[test]
fn l4_truncating_casts() {
    check(
        "fixtures/l4_bad.rs",
        "graph",
        include_str!("fixtures/l4_bad.rs"),
        &[(RuleId::L4, 4), (RuleId::L4, 8)],
    );
    // Widening casts pass; a waived float clamp passes with its reason.
    check("fixtures/l4_good.rs", "graph", include_str!("fixtures/l4_good.rs"), &[]);
    // The checked-helper file itself is exempt by path.
    check("crates/parallel/src/utils.rs", "parallel", include_str!("fixtures/l4_bad.rs"), &[]);
}

#[test]
fn l5_pub_fn_docs_in_core() {
    check("fixtures/l5_bad.rs", "core", include_str!("fixtures/l5_bad.rs"), &[(RuleId::L5, 4)]);
    check("fixtures/l5_good.rs", "core", include_str!("fixtures/l5_good.rs"), &[]);
    // Doc coverage is only demanded of `core`'s public surface.
    check("fixtures/l5_bad.rs", "graph", include_str!("fixtures/l5_bad.rs"), &[]);
}

#[test]
fn l6_no_panicking_macros_in_serving_code() {
    // Lines 5/6 are `todo!`/`panic!`, line 12 `unreachable!`; the panic
    // inside `#[cfg(test)]` is out of scope.
    check(
        "fixtures/l6_bad.rs",
        "engine",
        include_str!("fixtures/l6_bad.rs"),
        &[(RuleId::L6, 5), (RuleId::L6, 6), (RuleId::L6, 12)],
    );
    // Typed errors, `catch_unwind`/`panic_any` machinery, and a waived
    // unreachable all pass.
    check("fixtures/l6_good.rs", "engine", include_str!("fixtures/l6_good.rs"), &[]);
    // Only the serving crates are in scope.
    check("fixtures/l6_bad.rs", "apps", include_str!("fixtures/l6_bad.rs"), &[]);
}

#[test]
fn diagnostics_render_machine_readable() {
    let diags = lint_source(
        "crates/graph/src/x.rs",
        "graph",
        FileKind::Lib,
        include_str!("fixtures/l4_bad.rs"),
    );
    let line = diags[0].to_string();
    assert!(
        line.starts_with("crates/graph/src/x.rs:4: error[L4]: "),
        "unexpected diagnostic format: {line}"
    );
}
