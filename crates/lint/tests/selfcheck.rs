//! The linter's acceptance gate on itself: the real workspace tree must
//! lint clean. This is the same check CI runs via
//! `cargo run -p ligra-lint -- --workspace`.

use ligra_lint::lint_workspace;
use std::path::Path;

#[test]
fn workspace_lints_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let diags = lint_workspace(&root).expect("workspace walk failed");
    assert!(
        diags.is_empty(),
        "the workspace must lint clean; found:\n{}",
        diags.iter().map(|d| format!("  {d}")).collect::<Vec<_>>().join("\n")
    );
}
