//! # ligra-parallel
//!
//! Parallel-primitives substrate for the Ligra reproduction.
//!
//! The original Ligra system (Shun & Blelloch, PPoPP 2013) is built on the
//! primitives of the Problem Based Benchmark Suite (PBBS): parallel prefix
//! sums, filter/pack, reductions, and a small family of contention-aware
//! atomic operations (`CAS`, `writeMin`, `writeAdd`, `fetchOr`, and the
//! *priority update* of Shun et al., SPAA 2013). This crate implements those
//! primitives from scratch on top of [`rayon`]'s work-stealing fork-join
//! scheduler, which plays the role Cilk Plus plays in the paper.
//!
//! Everything here is deterministic-by-construction where the paper requires
//! it (scans, packs, reductions return the same result as their sequential
//! counterparts) and uses explicit memory orderings on the contended paths.
//!
//! ## Module map
//!
//! * [`utils`] — granularity control and thread-pool helpers.
//! * [`scan`] — blocked two-pass parallel prefix sums (exclusive/inclusive).
//! * [`reduce`] — parallel reductions (sum, min/max with index, count).
//! * [`pack`] — parallel filter/pack and `pack_index`.
//! * [`histogram`] — parallel bounded-key counting (degree histograms).
//! * [`atomics`] — `write_min`/`write_max`, priority update, `AtomicF64`,
//!   and slice-as-atomic views.
//! * [`bins`] — per-partition propagation bins (scatter-fragment stitch).
//! * [`bitvec`] — bit vectors: a concurrently writable one
//!   (`fetch_or`-based) and a packed single-owner [`BitSet`].
//! * [`counter`] — cache-padded per-thread event counters (telemetry).
//! * [`hash`] — deterministic avalanche hashes used by the graph generators.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod atomics;
pub mod bins;
pub mod bitvec;
pub mod counter;
pub mod hash;
pub mod histogram;
pub mod pack;
pub mod reduce;
pub mod scan;
pub mod utils;

pub use atomics::{priority_min, priority_write, write_max_u32, write_min_u32, AtomicF64};
pub use bitvec::{AtomicBitVec, BitSet};
pub use counter::StripedU64;
pub use hash::{hash32, hash64, mix64};
pub use pack::{filter, pack, pack_index, pack_index_bits};
pub use reduce::{max_index, min_index, reduce, sum_u64, sum_usize};
pub use scan::{plus_scan_inclusive_u32, prefix_sums, scan_exclusive, scan_inplace_exclusive};
pub use utils::{checked_u32, num_threads, with_threads, GRANULARITY};
