//! Per-partition propagation bins for scatter/gather traversals.
//!
//! The scatter phase of a partitioned traversal runs parallel over source
//! chunks; each chunk appends update entries into one small `Vec` per
//! destination partition (its *fragments*), touching no shared state. The
//! gather phase wants each partition's updates as one contiguous stream in
//! deterministic (chunk-major, i.e. ascending source) order. [`stitch`]
//! performs that transposition: per-partition fragment lengths are summed
//! (the prefix-sum pass of the PR 2 chunk-compaction idiom, here folded
//! into an exact `with_capacity`), then every partition concatenates its
//! fragments in chunk order — parallel **across** partitions, sequential
//! within one, so no synchronization is needed on the write side.

use rayon::prelude::*;

/// Scatter-side fragment matrix: `frags[chunk][partition]` is the slice of
/// updates chunk `chunk` produced for destination partition `partition`.
pub type Fragments<T> = Vec<Vec<Vec<T>>>;

/// Allocates one empty fragment row (`num_partitions` empty bins) for a
/// scatter chunk.
pub fn fragment_row<T>(num_partitions: usize) -> Vec<Vec<T>> {
    (0..num_partitions).map(|_| Vec::new()).collect()
}

/// Transposes chunk-major fragments into one exact-size `Vec` per
/// partition, concatenated in chunk order. Returns the per-partition
/// streams and the number of non-empty fragments folded in (the
/// `bins_flushed` telemetry count).
///
/// Every row of `frags` must have the same number of partitions; rows
/// produced by [`fragment_row`] always do.
pub fn stitch<T: Copy + Send + Sync>(frags: Fragments<T>) -> (Vec<Vec<T>>, u64) {
    let num_partitions = frags.first().map_or(0, Vec::len);
    debug_assert!(frags.iter().all(|row| row.len() == num_partitions));
    let flushed: u64 =
        frags.iter().map(|row| row.iter().filter(|bin| !bin.is_empty()).count() as u64).sum();
    let stitched: Vec<Vec<T>> = (0..num_partitions)
        .into_par_iter()
        .map(|p| {
            let total: usize = frags.iter().map(|row| row[p].len()).sum();
            let mut out = Vec::with_capacity(total);
            for row in &frags {
                out.extend_from_slice(&row[p]);
            }
            out
        })
        .collect();
    (stitched, flushed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stitch_concatenates_in_chunk_order() {
        let mut frags: Fragments<u32> = Vec::new();
        let mut row0 = fragment_row::<u32>(3);
        row0[0].extend([1, 2]);
        row0[2].push(9);
        frags.push(row0);
        let mut row1 = fragment_row::<u32>(3);
        row1[0].push(3);
        row1[1].push(7);
        frags.push(row1);

        let (bins, flushed) = stitch(frags);
        assert_eq!(bins, vec![vec![1, 2, 3], vec![7], vec![9]]);
        assert_eq!(flushed, 4, "only non-empty fragments count");
    }

    #[test]
    fn stitch_of_nothing_is_empty() {
        let (bins, flushed) = stitch(Fragments::<u64>::new());
        assert!(bins.is_empty());
        assert_eq!(flushed, 0);
        let (bins, flushed) = stitch(vec![fragment_row::<u64>(4)]);
        assert_eq!(bins.len(), 4);
        assert!(bins.iter().all(Vec::is_empty));
        assert_eq!(flushed, 0);
    }

    #[test]
    fn stitched_capacity_is_exact() {
        let mut frags: Fragments<u8> = Vec::new();
        for c in 0..10u8 {
            let mut row = fragment_row::<u8>(2);
            row[(c % 2) as usize].extend(std::iter::repeat_n(c, c as usize));
            frags.push(row);
        }
        let (bins, _) = stitch(frags);
        for bin in &bins {
            assert_eq!(bin.capacity(), bin.len());
        }
    }
}
