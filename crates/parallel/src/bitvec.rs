//! A concurrently writable bit vector.
//!
//! Dense vertex subsets and visited flags are bit vectors in Ligra (one bit
//! per vertex, set with `fetch_or`). Setting a bit returns whether this call
//! flipped it, which gives the same "exactly one winner" guarantee as a CAS
//! on a byte but with 8x less memory traffic.

use crate::atomics::as_atomic_u64;
use crate::utils::{block_range, num_blocks, SendPtr, GRANULARITY};
use rayon::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};

/// Number of `u64` words needed for `len` bits.
#[inline]
pub const fn words_for(len: usize) -> usize {
    len.div_ceil(64)
}

/// Fixed-size bit vector with atomic set/clear/test.
#[derive(Debug)]
pub struct AtomicBitVec {
    words: Vec<AtomicU64>,
    len: usize,
}

impl AtomicBitVec {
    /// Creates a bit vector of `len` bits, all clear.
    pub fn new(len: usize) -> Self {
        let nwords = len.div_ceil(64);
        let words = (0..nwords).map(|_| AtomicU64::new(0)).collect();
        AtomicBitVec { words, len }
    }

    /// Number of bits.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the vector has zero bits.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Tests bit `i`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        let w = self.words[i / 64].load(Ordering::Acquire);
        (w >> (i % 64)) & 1 != 0
    }

    /// Sets bit `i`; returns `true` iff this call flipped it from 0 to 1.
    #[inline]
    pub fn set(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        let mask = 1u64 << (i % 64);
        self.words[i / 64].fetch_or(mask, Ordering::AcqRel) & mask == 0
    }

    /// Clears bit `i`; returns `true` iff this call flipped it from 1 to 0.
    #[inline]
    pub fn clear(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        let mask = 1u64 << (i % 64);
        self.words[i / 64].fetch_and(!mask, Ordering::AcqRel) & mask != 0
    }

    /// Clears all bits.
    pub fn clear_all(&self) {
        self.words.par_iter().for_each(|w| w.store(0, Ordering::Relaxed));
    }

    /// Number of set bits (parallel popcount).
    pub fn count_ones(&self) -> usize {
        self.words.par_iter().map(|w| w.load(Ordering::Relaxed).count_ones() as usize).sum()
    }

    /// Converts to a `Vec<bool>` (one byte per bit).
    pub fn to_bools(&self) -> Vec<bool> {
        (0..self.len).into_par_iter().map(|i| self.get(i)).collect()
    }

    /// Builds from a boolean slice.
    pub fn from_bools(bits: &[bool]) -> Self {
        let bv = AtomicBitVec::new(bits.len());
        bits.par_iter().enumerate().for_each(|(i, &b)| {
            if b {
                bv.set(i);
            }
        });
        bv
    }
}

impl Clone for AtomicBitVec {
    fn clone(&self) -> Self {
        let words = self.words.iter().map(|w| AtomicU64::new(w.load(Ordering::Relaxed))).collect();
        AtomicBitVec { words, len: self.len }
    }
}

/// A packed, single-owner bit vector: one bit per element in `u64` words.
///
/// This is the dense `vertexSubset` representation — 8× less memory traffic
/// than a `Vec<bool>` when a traversal streams the whole membership array,
/// and empty regions skip 64 vertices per word test. Unlike
/// [`AtomicBitVec`], mutation goes through `&mut self` (plain stores); for
/// the racy scatter paths take the [`BitSet::as_atomic`] word view.
///
/// Invariant: bits at positions `>= len` in the last word are always zero,
/// so whole-word operations (popcount, zero-word skip) need no tail masking.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BitSet {
    words: Vec<u64>,
    len: usize,
}

impl BitSet {
    /// Creates a bit set of `len` bits, all clear.
    pub fn new(len: usize) -> Self {
        BitSet { words: vec![0; words_for(len)], len }
    }

    /// Creates a bit set of `len` bits, all set.
    pub fn full(len: usize) -> Self {
        let mut words = vec![!0u64; words_for(len)];
        if let Some(last) = words.last_mut() {
            if !len.is_multiple_of(64) {
                *last = (1u64 << (len % 64)) - 1;
            }
        }
        BitSet { words, len }
    }

    /// Wraps an already-packed word array holding `len` bits.
    ///
    /// # Panics
    /// Panics if `words.len() != words_for(len)`. Debug builds also verify
    /// the tail-bits-zero invariant.
    pub fn from_words(words: Vec<u64>, len: usize) -> Self {
        assert_eq!(words.len(), words_for(len), "word count does not match length");
        if let Some(&last) = words.last() {
            debug_assert!(
                len.is_multiple_of(64) || last >> (len % 64) == 0,
                "bits beyond len must be zero"
            );
        }
        BitSet { words, len }
    }

    /// Number of bits.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the set has zero bits.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Size of the packed representation in bytes.
    #[inline]
    pub fn bytes(&self) -> usize {
        self.words.len() * 8
    }

    /// Tests bit `i`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        (self.words[i / 64] >> (i % 64)) & 1 != 0
    }

    /// Sets bit `i`.
    #[inline]
    pub fn set(&mut self, i: usize) {
        debug_assert!(i < self.len);
        self.words[i / 64] |= 1u64 << (i % 64);
    }

    /// Clears bit `i`.
    #[inline]
    pub fn clear(&mut self, i: usize) {
        debug_assert!(i < self.len);
        self.words[i / 64] &= !(1u64 << (i % 64));
    }

    /// The packed words (bit `i` is word `i / 64`, position `i % 64`).
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Atomic view of the words, for racy scatters (`fetch_or`).
    #[inline]
    pub fn as_atomic(&mut self) -> &[AtomicU64] {
        as_atomic_u64(&mut self.words)
    }

    /// Number of set bits (parallel popcount; no tail masking needed by the
    /// invariant).
    pub fn count_ones(&self) -> usize {
        self.words.par_iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Builds the set `{ i : pred(i) }` in parallel, one word per task.
    pub fn from_fn(len: usize, pred: impl Fn(usize) -> bool + Sync) -> Self {
        let words = (0..words_for(len))
            .into_par_iter()
            .map(|wi| {
                let lo = wi * 64;
                let hi = (lo + 64).min(len);
                let mut w = 0u64;
                for i in lo..hi {
                    if pred(i) {
                        w |= 1u64 << (i - lo);
                    }
                }
                w
            })
            .collect();
        BitSet { words, len }
    }

    /// Builds from a boolean slice.
    pub fn from_bools(bits: &[bool]) -> Self {
        BitSet::from_fn(bits.len(), |i| bits[i])
    }

    /// Converts to a `Vec<bool>` (one byte per bit).
    pub fn to_bools(&self) -> Vec<bool> {
        (0..self.len).into_par_iter().map(|i| self.get(i)).collect()
    }

    /// Scatters a list of member IDs into a packed set of `len` bits.
    ///
    /// When `sorted` is true the IDs mapping to one word are consecutive, so
    /// each parallel block owns the words its range touches first and writes
    /// them with plain stores — no atomics on the conversion path `edgeMap`
    /// hits at every representation flip. Unsorted IDs fall back to a
    /// `fetch_or` scatter (distinct IDs may share a word, so plain disjoint
    /// writes are impossible).
    ///
    /// Duplicates are allowed in either path (they re-set the same bit).
    pub fn from_ids(len: usize, ids: &[u32], sorted: bool) -> Self {
        debug_assert!(ids.iter().all(|&v| (v as usize) < len));
        let mut bs = BitSet::new(len);
        if ids.is_empty() {
            return bs;
        }
        if sorted {
            debug_assert!(ids.is_sorted());
            let n = ids.len();
            let nblocks = num_blocks(n, GRANULARITY);
            let ptr = SendPtr(bs.words.as_mut_ptr());
            (0..nblocks).into_par_iter().for_each(|b| {
                let r = block_range(n, nblocks, b);
                let mut i = r.start;
                // A word split across the block boundary belongs to the
                // block where its run of IDs starts; skip our share of it.
                if b > 0 {
                    let prev = ids[r.start - 1] >> 6;
                    while i < r.end && ids[i] >> 6 == prev {
                        i += 1;
                    }
                }
                if i == r.end {
                    return;
                }
                let p = ptr;
                let mut cur = ids[i] >> 6;
                let mut acc = 0u64;
                while i < n {
                    let w = ids[i] >> 6;
                    if w != cur {
                        if i >= r.end {
                            break;
                        }
                        // SAFETY: the run of IDs for word `cur` starts in
                        // this block's range, so no other block writes it.
                        unsafe { *p.0.add(cur as usize) = acc };
                        cur = w;
                        acc = 0;
                    }
                    acc |= 1u64 << (ids[i] & 63);
                    i += 1;
                }
                // SAFETY: as above — `cur`'s ID run began inside this
                // block, so this block is its only writer.
                unsafe { *p.0.add(cur as usize) = acc };
            });
        } else {
            let aw = bs.as_atomic();
            ids.par_iter().for_each(|&v| {
                aw[(v >> 6) as usize].fetch_or(1u64 << (v & 63), Ordering::Relaxed);
            });
        }
        bs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::hash32;

    #[test]
    fn empty_bitvec() {
        let bv = AtomicBitVec::new(0);
        assert!(bv.is_empty());
        assert_eq!(bv.count_ones(), 0);
        assert!(bv.to_bools().is_empty());
    }

    #[test]
    fn set_and_get_across_word_boundaries() {
        let bv = AtomicBitVec::new(130);
        for i in [0usize, 1, 63, 64, 65, 127, 128, 129] {
            assert!(!bv.get(i));
            assert!(bv.set(i), "first set of bit {i} must win");
            assert!(bv.get(i));
            assert!(!bv.set(i), "second set of bit {i} must lose");
        }
        assert_eq!(bv.count_ones(), 8);
    }

    #[test]
    fn clear_flips_back() {
        let bv = AtomicBitVec::new(100);
        bv.set(42);
        assert!(bv.clear(42));
        assert!(!bv.clear(42));
        assert!(!bv.get(42));
    }

    #[test]
    fn exactly_one_winner_under_contention() {
        let bv = AtomicBitVec::new(64);
        let wins: u32 = (0..10_000).into_par_iter().map(|_| u32::from(bv.set(7))).sum();
        assert_eq!(wins, 1);
    }

    #[test]
    fn count_matches_bools_roundtrip() {
        let bits: Vec<bool> = (0..10_000).map(|i| hash32(i).is_multiple_of(3)).collect();
        let bv = AtomicBitVec::from_bools(&bits);
        assert_eq!(bv.count_ones(), bits.iter().filter(|&&b| b).count());
        assert_eq!(bv.to_bools(), bits);
    }

    #[test]
    fn clear_all_resets() {
        let bits = vec![true; 1000];
        let bv = AtomicBitVec::from_bools(&bits);
        assert_eq!(bv.count_ones(), 1000);
        bv.clear_all();
        assert_eq!(bv.count_ones(), 0);
    }

    #[test]
    fn bitset_empty() {
        let bs = BitSet::new(0);
        assert!(bs.is_empty());
        assert_eq!(bs.count_ones(), 0);
        assert_eq!(bs.bytes(), 0);
        assert!(bs.to_bools().is_empty());
    }

    #[test]
    fn bitset_set_get_clear_across_word_boundaries() {
        let mut bs = BitSet::new(130);
        for i in [0usize, 1, 63, 64, 65, 127, 128, 129] {
            assert!(!bs.get(i));
            bs.set(i);
            assert!(bs.get(i));
        }
        assert_eq!(bs.count_ones(), 8);
        bs.clear(64);
        assert!(!bs.get(64));
        assert_eq!(bs.count_ones(), 7);
    }

    #[test]
    fn bitset_full_masks_tail_bits() {
        for len in [1usize, 63, 64, 65, 128, 130, 1000] {
            let bs = BitSet::full(len);
            assert_eq!(bs.count_ones(), len, "len={len}");
            assert!((0..len).all(|i| bs.get(i)));
            if !len.is_multiple_of(64) {
                assert_eq!(bs.words().last().unwrap() >> (len % 64), 0);
            }
        }
    }

    #[test]
    fn bitset_bytes_is_packed_size() {
        assert_eq!(BitSet::new(64).bytes(), 8);
        assert_eq!(BitSet::new(65).bytes(), 16);
        assert_eq!(BitSet::new(1024).bytes(), 128);
    }

    #[test]
    fn bitset_bools_roundtrip() {
        let bits: Vec<bool> = (0..10_000).map(|i| hash32(i).is_multiple_of(3)).collect();
        let bs = BitSet::from_bools(&bits);
        assert_eq!(bs.count_ones(), bits.iter().filter(|&&b| b).count());
        assert_eq!(bs.to_bools(), bits);
    }

    #[test]
    fn bitset_from_fn_matches_pred() {
        let bs = BitSet::from_fn(5000, |i| i.is_multiple_of(7));
        assert!((0..5000).all(|i| bs.get(i) == i.is_multiple_of(7)));
    }

    #[test]
    fn bitset_from_words_rejects_bad_count() {
        let r = std::panic::catch_unwind(|| BitSet::from_words(vec![0u64; 3], 64));
        assert!(r.is_err());
    }

    #[test]
    fn bitset_from_ids_sorted_and_unsorted_agree() {
        // Large enough to split into many blocks, with dense word-sharing
        // runs so the boundary-ownership skip is exercised.
        let sorted: Vec<u32> = (0..200_000u32).filter(|&v| !hash32(v).is_multiple_of(3)).collect();
        let mut shuffled = sorted.clone();
        shuffled.sort_unstable_by_key(|&v| hash32(v));
        let n = 200_000;
        let a = BitSet::from_ids(n, &sorted, true);
        let b = BitSet::from_ids(n, &shuffled, false);
        assert_eq!(a, b);
        assert_eq!(a.count_ones(), sorted.len());
        assert!(sorted.iter().all(|&v| a.get(v as usize)));
    }

    #[test]
    fn bitset_from_ids_handles_duplicates_and_empties() {
        assert_eq!(BitSet::from_ids(100, &[], true).count_ones(), 0);
        let bs = BitSet::from_ids(100, &[5, 5, 5, 70], true);
        assert_eq!(bs.count_ones(), 2);
        assert!(bs.get(5) && bs.get(70));
    }

    #[test]
    fn bitset_atomic_view_scatter() {
        let mut bs = BitSet::new(300);
        {
            let aw = bs.as_atomic();
            (0..300usize).into_par_iter().filter(|i| i.is_multiple_of(2)).for_each(|i| {
                aw[i / 64].fetch_or(1u64 << (i % 64), Ordering::Relaxed);
            });
        }
        assert_eq!(bs.count_ones(), 150);
    }
}
