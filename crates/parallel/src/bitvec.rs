//! A concurrently writable bit vector.
//!
//! Dense vertex subsets and visited flags are bit vectors in Ligra (one bit
//! per vertex, set with `fetch_or`). Setting a bit returns whether this call
//! flipped it, which gives the same "exactly one winner" guarantee as a CAS
//! on a byte but with 8x less memory traffic.

use rayon::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};

/// Fixed-size bit vector with atomic set/clear/test.
#[derive(Debug)]
pub struct AtomicBitVec {
    words: Vec<AtomicU64>,
    len: usize,
}

impl AtomicBitVec {
    /// Creates a bit vector of `len` bits, all clear.
    pub fn new(len: usize) -> Self {
        let nwords = len.div_ceil(64);
        let words = (0..nwords).map(|_| AtomicU64::new(0)).collect();
        AtomicBitVec { words, len }
    }

    /// Number of bits.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the vector has zero bits.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Tests bit `i`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        let w = self.words[i / 64].load(Ordering::Acquire);
        (w >> (i % 64)) & 1 != 0
    }

    /// Sets bit `i`; returns `true` iff this call flipped it from 0 to 1.
    #[inline]
    pub fn set(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        let mask = 1u64 << (i % 64);
        self.words[i / 64].fetch_or(mask, Ordering::AcqRel) & mask == 0
    }

    /// Clears bit `i`; returns `true` iff this call flipped it from 1 to 0.
    #[inline]
    pub fn clear(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        let mask = 1u64 << (i % 64);
        self.words[i / 64].fetch_and(!mask, Ordering::AcqRel) & mask != 0
    }

    /// Clears all bits.
    pub fn clear_all(&self) {
        self.words.par_iter().for_each(|w| w.store(0, Ordering::Relaxed));
    }

    /// Number of set bits (parallel popcount).
    pub fn count_ones(&self) -> usize {
        self.words.par_iter().map(|w| w.load(Ordering::Relaxed).count_ones() as usize).sum()
    }

    /// Converts to a `Vec<bool>` (one byte per bit).
    pub fn to_bools(&self) -> Vec<bool> {
        (0..self.len).into_par_iter().map(|i| self.get(i)).collect()
    }

    /// Builds from a boolean slice.
    pub fn from_bools(bits: &[bool]) -> Self {
        let bv = AtomicBitVec::new(bits.len());
        bits.par_iter().enumerate().for_each(|(i, &b)| {
            if b {
                bv.set(i);
            }
        });
        bv
    }
}

impl Clone for AtomicBitVec {
    fn clone(&self) -> Self {
        let words = self.words.iter().map(|w| AtomicU64::new(w.load(Ordering::Relaxed))).collect();
        AtomicBitVec { words, len: self.len }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::hash32;

    #[test]
    fn empty_bitvec() {
        let bv = AtomicBitVec::new(0);
        assert!(bv.is_empty());
        assert_eq!(bv.count_ones(), 0);
        assert!(bv.to_bools().is_empty());
    }

    #[test]
    fn set_and_get_across_word_boundaries() {
        let bv = AtomicBitVec::new(130);
        for i in [0usize, 1, 63, 64, 65, 127, 128, 129] {
            assert!(!bv.get(i));
            assert!(bv.set(i), "first set of bit {i} must win");
            assert!(bv.get(i));
            assert!(!bv.set(i), "second set of bit {i} must lose");
        }
        assert_eq!(bv.count_ones(), 8);
    }

    #[test]
    fn clear_flips_back() {
        let bv = AtomicBitVec::new(100);
        bv.set(42);
        assert!(bv.clear(42));
        assert!(!bv.clear(42));
        assert!(!bv.get(42));
    }

    #[test]
    fn exactly_one_winner_under_contention() {
        let bv = AtomicBitVec::new(64);
        let wins: u32 = (0..10_000).into_par_iter().map(|_| u32::from(bv.set(7))).sum();
        assert_eq!(wins, 1);
    }

    #[test]
    fn count_matches_bools_roundtrip() {
        let bits: Vec<bool> = (0..10_000).map(|i| hash32(i).is_multiple_of(3)).collect();
        let bv = AtomicBitVec::from_bools(&bits);
        assert_eq!(bv.count_ones(), bits.iter().filter(|&&b| b).count());
        assert_eq!(bv.to_bools(), bits);
    }

    #[test]
    fn clear_all_resets() {
        let bits = vec![true; 1000];
        let bv = AtomicBitVec::from_bools(&bits);
        assert_eq!(bv.count_ones(), 1000);
        bv.clear_all();
        assert_eq!(bv.count_ones(), 0);
    }
}
