//! Parallel reductions.
//!
//! Ligra needs only a few reduction shapes: summing degrees to decide the
//! sparse/dense direction, summing floating-point error terms for PageRank
//! convergence, and arg-max for picking high-degree source vertices. All
//! are deterministic: the blocked tree shape is fixed by the input length,
//! not by scheduling (rayon's `reduce` on an indexed iterator already
//! guarantees this for associative operators; for floats we force the exact
//! blocked shape so repeated runs agree bit-for-bit).

use crate::utils::{block_range, num_blocks, GRANULARITY};
use rayon::prelude::*;

/// Generic blocked reduction with identity `id` and associative `op`.
pub fn reduce<T, F>(xs: &[T], id: T, op: F) -> T
where
    T: Copy + Send + Sync,
    F: Fn(T, T) -> T + Sync,
{
    let n = xs.len();
    let nblocks = num_blocks(n, GRANULARITY);
    if nblocks == 1 {
        return xs.iter().fold(id, |acc, &x| op(acc, x));
    }
    let partials: Vec<T> = (0..nblocks)
        .into_par_iter()
        .map(|b| xs[block_range(n, nblocks, b)].iter().fold(id, |acc, &x| op(acc, x)))
        .collect();
    partials.into_iter().fold(id, op)
}

/// Blocked reduction over `f(i)` for `i in 0..n` (no materialized input).
pub fn reduce_with<T, G, F>(n: usize, id: T, f: G, op: F) -> T
where
    T: Copy + Send + Sync,
    G: Fn(usize) -> T + Sync,
    F: Fn(T, T) -> T + Sync,
{
    let nblocks = num_blocks(n, GRANULARITY);
    if nblocks == 1 {
        return (0..n).fold(id, |acc, i| op(acc, f(i)));
    }
    let partials: Vec<T> = (0..nblocks)
        .into_par_iter()
        .map(|b| block_range(n, nblocks, b).fold(id, |acc, i| op(acc, f(i))))
        .collect();
    partials.into_iter().fold(id, op)
}

/// Parallel sum of `u64` values.
#[inline]
pub fn sum_u64(xs: &[u64]) -> u64 {
    reduce(xs, 0u64, |a, b| a + b)
}

/// Parallel sum of `usize` values computed by `f(i)` over `0..n`.
#[inline]
pub fn sum_usize(n: usize, f: impl Fn(usize) -> usize + Sync) -> usize {
    reduce_with(n, 0usize, f, |a, b| a + b)
}

/// Deterministic blocked sum of `f64` values.
///
/// The blocked shape depends only on the input length and thread count is
/// *not* consulted for the tree shape — block count comes from
/// [`num_blocks`], which uses the pool size, so strictly the result is
/// reproducible per pool size. Good enough for convergence tests.
pub fn sum_f64(xs: &[f64]) -> f64 {
    reduce(xs, 0.0f64, |a, b| a + b)
}

/// Index of a maximal element by `key` (ties: lowest index wins).
///
/// Returns `None` on an empty slice. Used by the harness to pick the
/// highest-degree vertex as the traversal source, as the paper does for
/// the Twitter graph.
pub fn max_index<T, K, R>(xs: &[T], key: K) -> Option<usize>
where
    T: Sync,
    K: Fn(&T) -> R + Sync,
    R: PartialOrd + Copy + Send + Sync,
{
    if xs.is_empty() {
        return None;
    }
    let n = xs.len();
    let best = reduce_with(
        n,
        (0usize, key(&xs[0])),
        |i| (i, key(&xs[i])),
        |a, b| {
            // Strictly-greater keeps the earliest index on ties.
            if b.1 > a.1 {
                b
            } else {
                a
            }
        },
    );
    Some(best.0)
}

/// Index of a minimal element by `key` (ties: lowest index wins).
pub fn min_index<T, K, R>(xs: &[T], key: K) -> Option<usize>
where
    T: Sync,
    K: Fn(&T) -> R + Sync,
    R: PartialOrd + Copy + Send + Sync,
{
    if xs.is_empty() {
        return None;
    }
    let n = xs.len();
    let best = reduce_with(
        n,
        (0usize, key(&xs[0])),
        |i| (i, key(&xs[i])),
        |a, b| if b.1 < a.1 { b } else { a },
    );
    Some(best.0)
}

/// Counts `i in 0..n` with `pred(i)`.
#[inline]
pub fn count(n: usize, pred: impl Fn(usize) -> bool + Sync) -> usize {
    sum_usize(n, |i| usize::from(pred(i)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::hash32;

    #[test]
    fn sum_matches_sequential() {
        let xs: Vec<u64> = (0..250_000u32).map(|i| (hash32(i) % 1000) as u64).collect();
        assert_eq!(sum_u64(&xs), xs.iter().sum::<u64>());
    }

    #[test]
    fn sum_empty_is_identity() {
        assert_eq!(sum_u64(&[]), 0);
        assert_eq!(sum_f64(&[]), 0.0);
    }

    #[test]
    fn reduce_with_max_monoid() {
        let xs: Vec<u32> = (0..100_000u32).map(hash32).collect();
        let m = reduce(&xs, 0u32, |a, b| a.max(b));
        assert_eq!(m, *xs.iter().max().unwrap());
    }

    #[test]
    fn max_index_finds_argmax_and_breaks_ties_low() {
        let xs = vec![3u32, 9, 1, 9, 2];
        assert_eq!(max_index(&xs, |&x| x), Some(1));
        let large: Vec<u32> = (0..100_000u32).map(|i| hash32(i) % 1000).collect();
        let i = max_index(&large, |&x| x).unwrap();
        let m = *large.iter().max().unwrap();
        assert_eq!(large[i], m);
        assert_eq!(i, large.iter().position(|&x| x == m).unwrap());
    }

    #[test]
    fn min_index_finds_argmin() {
        let xs = vec![3u32, 9, 1, 9, 1];
        assert_eq!(min_index(&xs, |&x| x), Some(2));
        assert_eq!(max_index::<u32, _, u32>(&[], |&x| x), None);
    }

    #[test]
    fn count_matches_filter_len() {
        let n = 123_456;
        let c = count(n, |i| hash32(i as u32).is_multiple_of(3));
        let expect = (0..n).filter(|&i| hash32(i as u32).is_multiple_of(3)).count();
        assert_eq!(c, expect);
    }

    #[test]
    fn f64_sum_is_reproducible() {
        let xs: Vec<f64> = (0..100_000u32).map(|i| (hash32(i) % 97) as f64 / 97.0).collect();
        let a = sum_f64(&xs);
        let b = sum_f64(&xs);
        assert_eq!(a.to_bits(), b.to_bits());
    }
}
