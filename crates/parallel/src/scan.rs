//! Blocked two-pass parallel prefix sums.
//!
//! The scan is the workhorse of Ligra's sparse `edgeMap`: the output
//! frontier is built by prefix-summing the out-degrees of the input
//! frontier to obtain per-source write offsets. We use the classic blocked
//! scheme (PBBS `sequence::scan`): (1) reduce each block sequentially,
//! (2) scan the per-block sums, (3) re-walk each block writing results.
//! This does ~2n work, has O(blocks) sequential depth between passes, and
//! returns bit-identical results to the sequential scan for any associative
//! operation.

use crate::utils::{block_range, num_blocks, GRANULARITY};
use rayon::prelude::*;

/// Generic exclusive scan into a fresh vector.
///
/// `out[i] = id ⊕ x[0] ⊕ … ⊕ x[i-1]`; returns `(out, total)` where `total`
/// is the reduction of the whole input. `op` must be associative.
pub fn scan_exclusive<T, F>(xs: &[T], id: T, op: F) -> (Vec<T>, T)
where
    T: Copy + Send + Sync,
    F: Fn(T, T) -> T + Sync,
{
    let n = xs.len();
    if n == 0 {
        return (Vec::new(), id);
    }
    let nblocks = num_blocks(n, GRANULARITY);
    if nblocks == 1 {
        let mut out = Vec::with_capacity(n);
        let mut acc = id;
        for &x in xs {
            out.push(acc);
            acc = op(acc, x);
        }
        return (out, acc);
    }

    // Pass 1: per-block reductions.
    let mut sums: Vec<T> = (0..nblocks)
        .into_par_iter()
        .map(|b| {
            let r = block_range(n, nblocks, b);
            xs[r].iter().fold(id, |acc, &x| op(acc, x))
        })
        .collect();

    // Sequential scan of the (small) block-sum array.
    let mut acc = id;
    for s in sums.iter_mut() {
        let next = op(acc, *s);
        *s = acc;
        acc = next;
    }
    let total = acc;

    // Pass 2: re-scan each block seeded with its prefix.
    let mut out: Vec<T> = Vec::with_capacity(n);
    {
        let out_uninit = out.spare_capacity_mut();
        // SAFETY-free approach: write via per-block disjoint chunks of the
        // spare capacity, then set the length. MaybeUninit writes are plain
        // stores; blocks are disjoint so the parallel writes don't alias.
        let out_ptr = SendPtr(out_uninit.as_mut_ptr());
        (0..nblocks).into_par_iter().for_each(|b| {
            let r = block_range(n, nblocks, b);
            let mut acc = sums[b];
            let p = out_ptr;
            for i in r {
                // SAFETY: each index i is written by exactly one block, and
                // the allocation has capacity n.
                unsafe { (*p.0.add(i)).write(acc) };
                acc = op(acc, xs[i]);
            }
        });
    }
    // SAFETY: all n slots were initialized above.
    unsafe { out.set_len(n) };
    (out, total)
}

/// Raw-pointer wrapper so disjoint parallel writes can cross the closure
/// boundary. Safety rests on the callers writing disjoint indices.
#[derive(Clone, Copy)]
struct SendPtr<T>(*mut T);
// SAFETY: bare address; the scan passes write disjoint block ranges, so
// sharing the pointer across workers cannot alias a write.
unsafe impl<T> Send for SendPtr<T> {}
// SAFETY: as above — all concurrent use is disjoint-range writes.
unsafe impl<T> Sync for SendPtr<T> {}

/// In-place exclusive scan; returns the total.
///
/// `xs[i] <- id ⊕ xs[0] ⊕ … ⊕ xs[i-1]`. This is the allocation-free variant
/// used on the hot path of sparse `edgeMap` (the degree array is consumed
/// into the offset array).
pub fn scan_inplace_exclusive<T, F>(xs: &mut [T], id: T, op: F) -> T
where
    T: Copy + Send + Sync,
    F: Fn(T, T) -> T + Sync,
{
    let n = xs.len();
    if n == 0 {
        return id;
    }
    let nblocks = num_blocks(n, GRANULARITY);
    if nblocks == 1 {
        let mut acc = id;
        for x in xs.iter_mut() {
            let next = op(acc, *x);
            *x = acc;
            acc = next;
        }
        return acc;
    }

    let mut sums: Vec<T> = (0..nblocks)
        .into_par_iter()
        .map(|b| {
            let r = block_range(n, nblocks, b);
            xs[r].iter().fold(id, |acc, &x| op(acc, x))
        })
        .collect();

    let mut acc = id;
    for s in sums.iter_mut() {
        let next = op(acc, *s);
        *s = acc;
        acc = next;
    }
    let total = acc;

    // Second pass rewrites blocks in place; par_chunks via split_at_mut
    // style decomposition using rayon's chunk iterator over computed ranges.
    let base = n / nblocks;
    let extra = n % nblocks;
    let mut rest = xs;
    let mut pieces: Vec<&mut [T]> = Vec::with_capacity(nblocks);
    for b in 0..nblocks {
        let len = base + usize::from(b < extra);
        let (head, tail) = rest.split_at_mut(len);
        pieces.push(head);
        rest = tail;
    }
    pieces.into_par_iter().zip(sums.into_par_iter()).for_each(|(block, seed)| {
        let mut acc = seed;
        for x in block.iter_mut() {
            let next = op(acc, *x);
            *x = acc;
            acc = next;
        }
    });
    total
}

/// Exclusive `+`-scan of `u64` degrees — the common case in the framework.
///
/// Returns `(offsets, total)` with `offsets.len() == xs.len()`.
#[inline]
pub fn prefix_sums(xs: &[u64]) -> (Vec<u64>, u64) {
    scan_exclusive(xs, 0u64, |a, b| a + b)
}

/// Inclusive `+`-scan of `u32` values, in place; returns the total.
pub fn plus_scan_inclusive_u32(xs: &mut [u32]) -> u32 {
    let total = scan_inplace_exclusive(xs, 0u32, |a, b| a + b);
    // Convert exclusive -> inclusive: slot i needs prefix(i+1), which the
    // exclusive scan left at slot i+1 (the last slot becomes the total).
    let n = xs.len();
    if n > 0 {
        xs.copy_within(1..n, 0);
        xs[n - 1] = total;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::hash32;

    fn seq_exclusive(xs: &[u64]) -> (Vec<u64>, u64) {
        let mut out = Vec::with_capacity(xs.len());
        let mut acc = 0u64;
        for &x in xs {
            out.push(acc);
            acc += x;
        }
        (out, acc)
    }

    #[test]
    fn empty_scan() {
        let (out, total) = prefix_sums(&[]);
        assert!(out.is_empty());
        assert_eq!(total, 0);
    }

    #[test]
    fn single_element_scan() {
        let (out, total) = prefix_sums(&[7]);
        assert_eq!(out, vec![0]);
        assert_eq!(total, 7);
    }

    #[test]
    fn matches_sequential_small() {
        let xs: Vec<u64> = (0..100).map(|i| (hash32(i) % 10) as u64).collect();
        let (par, total) = prefix_sums(&xs);
        let (seq, seq_total) = seq_exclusive(&xs);
        assert_eq!(par, seq);
        assert_eq!(total, seq_total);
    }

    #[test]
    fn matches_sequential_large() {
        let xs: Vec<u64> = (0..300_000u32).map(|i| (hash32(i) % 100) as u64).collect();
        let (par, total) = prefix_sums(&xs);
        let (seq, seq_total) = seq_exclusive(&xs);
        assert_eq!(par, seq);
        assert_eq!(total, seq_total);
    }

    #[test]
    fn inplace_matches_out_of_place() {
        let xs: Vec<u64> = (0..100_000u32).map(|i| (hash32(i) % 7) as u64).collect();
        let (expect, expect_total) = prefix_sums(&xs);
        let mut ys = xs.clone();
        let total = scan_inplace_exclusive(&mut ys, 0u64, |a, b| a + b);
        assert_eq!(ys, expect);
        assert_eq!(total, expect_total);
    }

    #[test]
    fn scan_with_max_monoid() {
        let xs: Vec<u32> = (0..50_000u32).map(hash32).collect();
        let (out, total) = scan_exclusive(&xs, 0u32, |a, b| a.max(b));
        assert_eq!(total, *xs.iter().max().unwrap());
        let mut running = 0u32;
        for (i, &x) in xs.iter().enumerate() {
            assert_eq!(out[i], running);
            running = running.max(x);
        }
    }

    #[test]
    fn inclusive_scan_u32() {
        let mut xs: Vec<u32> = vec![1, 2, 3, 4, 5];
        let total = plus_scan_inclusive_u32(&mut xs);
        assert_eq!(xs, vec![1, 3, 6, 10, 15]);
        assert_eq!(total, 15);
    }

    #[test]
    fn inclusive_scan_empty_and_single() {
        let mut e: Vec<u32> = vec![];
        assert_eq!(plus_scan_inclusive_u32(&mut e), 0);
        let mut s = vec![9u32];
        assert_eq!(plus_scan_inclusive_u32(&mut s), 9);
        assert_eq!(s, vec![9]);
    }
}
