//! Contention-aware atomic utilities.
//!
//! Ligra's user-supplied edge functions synchronize through a tiny
//! vocabulary of atomic operations: `CAS`, `writeMin`, `writeAdd`, and
//! `fetchOr`. `writeMin` is the *priority update* of Shun, Blelloch,
//! Fineman and Gibbons (SPAA 2013): it atomically installs a new value only
//! if it improves on the current one and, crucially, returns whether the
//! caller won, which the applications use to build the output frontier.
//! Because a priority update writes only while the value improves, the
//! number of actual writes to a hot location is logarithmic in the number of
//! contending updates in expectation — this is what keeps label-propagation
//! connectivity and Bellman–Ford scalable.
//!
//! This module also provides *atomic views* over plain slices. The
//! applications allocate ordinary `Vec<u32>` state and reborrow it as
//! `&[AtomicU32]` for the parallel phases; the exclusive `&mut` borrow
//! guarantees no non-atomic access can overlap the atomic one, and the
//! std atomic types are documented to have the same size and bit validity
//! as their underlying integer type.

use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU32, AtomicU64, Ordering};

/// Reborrows a mutable `u32` slice as a slice of atomics.
///
/// Sound because (a) `AtomicU32` has the same size, alignment and bit
/// validity as `u32`, and (b) the exclusive borrow of `s` is held for the
/// lifetime of the returned shared borrow, so all access goes through the
/// atomics.
#[inline]
pub fn as_atomic_u32(s: &mut [u32]) -> &[AtomicU32] {
    // SAFETY: AtomicU32 has u32's size/alignment/bit-validity, and the
    // exclusive borrow of `s` outlives the returned shared borrow, so no
    // non-atomic access can overlap the atomic view.
    unsafe { &*(s as *mut [u32] as *const [AtomicU32]) }
}

/// Reborrows a mutable `u64` slice as a slice of atomics. See [`as_atomic_u32`].
#[inline]
pub fn as_atomic_u64(s: &mut [u64]) -> &[AtomicU64] {
    // SAFETY: same layout/borrow argument as `as_atomic_u32`.
    unsafe { &*(s as *mut [u64] as *const [AtomicU64]) }
}

/// Reborrows a mutable `bool` slice as a slice of atomics. See [`as_atomic_u32`].
///
/// Used for the dense `edgeMap` output: many sources may set the same
/// target flag concurrently, which must go through `AtomicBool` stores.
#[inline]
pub fn as_atomic_bool(s: &mut [bool]) -> &[AtomicBool] {
    // SAFETY: AtomicBool matches bool's size and validity (only 0/1 are
    // ever stored), and the exclusive borrow of `s` outlives the atomic
    // view; same argument as `as_atomic_u32`.
    unsafe { &*(s as *mut [bool] as *const [AtomicBool]) }
}

/// Reborrows a mutable `f64` slice as a slice of [`AtomicF64`].
///
/// `AtomicF64` is `#[repr(transparent)]` over `AtomicU64`, which has the
/// same layout as `u64`/`f64` (all 8 bytes, no padding, no invalid bit
/// patterns for the integer view).
#[inline]
pub fn as_atomic_f64(s: &mut [f64]) -> &[AtomicF64] {
    // SAFETY: AtomicF64 is repr(transparent) over AtomicU64, which shares
    // u64/f64's 8-byte layout with no invalid patterns for the integer
    // view; the exclusive borrow of `s` outlives the atomic view.
    unsafe { &*(s as *mut [f64] as *const [AtomicF64]) }
}

/// Compare-and-swap on a `u32`, Ligra's `CAS(loc, old, new)`.
///
/// Returns `true` iff the value was `old` and has been replaced by `new`.
#[inline]
pub fn cas_u32(a: &AtomicU32, old: u32, new: u32) -> bool {
    a.compare_exchange(old, new, Ordering::AcqRel, Ordering::Acquire).is_ok()
}

/// Ligra's `writeMin`: atomically `*a = min(*a, v)`.
///
/// Returns `true` iff `v` strictly improved the stored value (i.e. the
/// caller's write "won"), which edge functions use to decide frontier
/// membership.
///
/// Reads before writing (the SPAA'13 priority-update discipline): losers
/// take a read-only fast path instead of a contended RMW. The early
/// return is sound because the stored value only ever decreases — once
/// `*a <= v` holds it holds forever. The `priority_update` microbench
/// measures this at >10× under contention vs a blind `fetch_min`.
#[inline]
pub fn write_min_u32(a: &AtomicU32, v: u32) -> bool {
    if a.load(Ordering::Relaxed) <= v {
        return false;
    }
    // fetch_min returns the previous value; we won iff it was larger.
    a.fetch_min(v, Ordering::AcqRel) > v
}

/// Atomically `*a = max(*a, v)`; returns `true` iff `v` won.
/// Read-first like [`write_min_u32`] (values only grow).
#[inline]
pub fn write_max_u32(a: &AtomicU32, v: u32) -> bool {
    if a.load(Ordering::Relaxed) >= v {
        return false;
    }
    a.fetch_max(v, Ordering::AcqRel) < v
}

/// Reborrows a mutable `i64` slice as a slice of atomics. See [`as_atomic_u32`].
#[inline]
pub fn as_atomic_i64(s: &mut [i64]) -> &[AtomicI64] {
    // SAFETY: same layout/borrow argument as `as_atomic_u32`.
    unsafe { &*(s as *mut [i64] as *const [AtomicI64]) }
}

/// Ligra's `writeMin` on signed 64-bit distances (Bellman–Ford).
/// Returns `true` iff `v` strictly improved the stored value.
/// Read-first like [`write_min_u32`] (distances only shrink).
#[inline]
pub fn write_min_i64(a: &AtomicI64, v: i64) -> bool {
    if a.load(Ordering::Relaxed) <= v {
        return false;
    }
    a.fetch_min(v, Ordering::AcqRel) > v
}

/// General priority update over `u32` values (SPAA 2013).
///
/// Installs `new` iff `prefer(new, current)` holds, retrying on contention.
/// Returns `true` iff this call performed the write. `prefer` must define a
/// strict partial order (irreflexive), otherwise the loop may livelock with
/// two values that each "prefer" the other.
#[inline]
pub fn priority_write(a: &AtomicU32, new: u32, prefer: impl Fn(u32, u32) -> bool) -> bool {
    let mut cur = a.load(Ordering::Acquire);
    while prefer(new, cur) {
        match a.compare_exchange_weak(cur, new, Ordering::AcqRel, Ordering::Acquire) {
            Ok(_) => return true,
            Err(actual) => cur = actual,
        }
    }
    false
}

/// Priority update specialized to `min` — identical semantics to
/// [`write_min_u32`] but via the generic CAS loop; kept for the A2 ablation
/// bench comparing `fetch_min` against the CAS-loop formulation.
#[inline]
pub fn priority_min(a: &AtomicU32, new: u32) -> bool {
    priority_write(a, new, |n, c| n < c)
}

/// A `f64` with atomic load/store/add, built over `AtomicU64` bit patterns.
///
/// The paper's PageRank and betweenness-centrality kernels use an atomic
/// floating-point `writeAdd` implemented exactly like this (a CAS loop over
/// the 64-bit image of the double).
#[repr(transparent)]
#[derive(Debug)]
pub struct AtomicF64(AtomicU64);

impl AtomicF64 {
    /// Creates a new atomic double.
    #[inline]
    pub fn new(v: f64) -> Self {
        AtomicF64(AtomicU64::new(v.to_bits()))
    }

    /// Atomic load.
    #[inline]
    pub fn load(&self, order: Ordering) -> f64 {
        f64::from_bits(self.0.load(order))
    }

    /// Atomic store.
    #[inline]
    pub fn store(&self, v: f64, order: Ordering) {
        self.0.store(v.to_bits(), order);
    }

    /// Atomic `*self += v` via a CAS loop; returns the previous value.
    #[inline]
    pub fn fetch_add(&self, v: f64) -> f64 {
        let mut cur = self.0.load(Ordering::Acquire);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match self.0.compare_exchange_weak(cur, next, Ordering::AcqRel, Ordering::Acquire) {
                Ok(prev) => return f64::from_bits(prev),
                Err(actual) => cur = actual,
            }
        }
    }

    /// Atomic `*self = min(*self, v)`; returns `true` iff `v` won.
    ///
    /// NaN never wins and never loses (comparisons are `false`), matching
    /// the short-circuit behaviour of the C `<` used by Ligra.
    #[inline]
    pub fn write_min(&self, v: f64) -> bool {
        let mut cur = self.0.load(Ordering::Acquire);
        while v < f64::from_bits(cur) {
            match self.0.compare_exchange_weak(
                cur,
                v.to_bits(),
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return true,
                Err(actual) => cur = actual,
            }
        }
        false
    }
}

impl Default for AtomicF64 {
    fn default() -> Self {
        AtomicF64::new(0.0)
    }
}

impl Clone for AtomicF64 {
    fn clone(&self) -> Self {
        AtomicF64::new(self.load(Ordering::Relaxed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rayon::prelude::*;

    #[test]
    fn cas_succeeds_only_on_expected() {
        let a = AtomicU32::new(5);
        assert!(cas_u32(&a, 5, 7));
        assert!(!cas_u32(&a, 5, 9));
        assert_eq!(a.load(Ordering::Relaxed), 7);
    }

    #[test]
    fn write_min_reports_strict_improvement() {
        let a = AtomicU32::new(10);
        assert!(write_min_u32(&a, 3));
        assert!(!write_min_u32(&a, 3), "equal value must not win");
        assert!(!write_min_u32(&a, 5));
        assert_eq!(a.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn write_max_reports_strict_improvement() {
        let a = AtomicU32::new(10);
        assert!(write_max_u32(&a, 20));
        assert!(!write_max_u32(&a, 20));
        assert!(!write_max_u32(&a, 15));
        assert_eq!(a.load(Ordering::Relaxed), 20);
    }

    #[test]
    fn priority_write_matches_fetch_min_under_contention() {
        let a = AtomicU32::new(u32::MAX);
        let wins: u32 =
            (0..10_000u32).into_par_iter().map(|i| u32::from(priority_min(&a, i))).sum();
        assert_eq!(a.load(Ordering::Relaxed), 0);
        // At least the final winner wrote; at most one write per distinct
        // improving value.
        assert!(wins >= 1);
    }

    #[test]
    fn exactly_one_winner_per_value_level() {
        // All threads write the same value: exactly one must win.
        let a = AtomicU32::new(u32::MAX);
        let wins: u32 = (0..1000u32).into_par_iter().map(|_| u32::from(priority_min(&a, 7))).sum();
        assert_eq!(wins, 1);
        assert_eq!(a.load(Ordering::Relaxed), 7);
    }

    #[test]
    fn atomic_f64_add_accumulates_exactly_with_equal_addends() {
        let a = AtomicF64::new(0.0);
        (0..4096).into_par_iter().for_each(|_| {
            a.fetch_add(0.5);
        });
        assert_eq!(a.load(Ordering::Relaxed), 2048.0);
    }

    #[test]
    fn atomic_f64_write_min() {
        let a = AtomicF64::new(1.0);
        assert!(a.write_min(0.25));
        assert!(!a.write_min(0.5));
        assert!(!a.write_min(0.25));
        assert_eq!(a.load(Ordering::Relaxed), 0.25);
    }

    #[test]
    fn atomic_f64_nan_never_wins() {
        let a = AtomicF64::new(1.0);
        assert!(!a.write_min(f64::NAN));
        assert_eq!(a.load(Ordering::Relaxed), 1.0);
    }

    #[test]
    fn atomic_view_roundtrips() {
        let mut v = vec![1u32, 2, 3];
        {
            let a = as_atomic_u32(&mut v);
            a[0].store(10, Ordering::Relaxed);
            a[2].fetch_add(1, Ordering::Relaxed);
        }
        assert_eq!(v, vec![10, 2, 4]);
    }

    #[test]
    fn atomic_f64_view_roundtrips() {
        let mut v = vec![1.0f64, 2.0];
        {
            let a = as_atomic_f64(&mut v);
            a[0].fetch_add(0.5);
            a[1].store(-3.0, Ordering::Relaxed);
        }
        assert_eq!(v, vec![1.5, -3.0]);
    }

    #[test]
    fn parallel_min_over_atomic_view_equals_sequential_min() {
        let data: Vec<u32> = (0..50_000u32).map(crate::hash::hash32).collect();
        let mut result = vec![u32::MAX];
        {
            let cell = &as_atomic_u32(&mut result)[0];
            data.par_iter().for_each(|&x| {
                write_min_u32(cell, x);
            });
        }
        assert_eq!(result[0], *data.iter().min().unwrap());
    }
}
