//! Parallel filter / pack.
//!
//! `pack` keeps the elements whose flag is set, preserving order — exactly
//! PBBS `sequence::pack`. Ligra uses it to (a) convert dense vertex subsets
//! to sparse ones and (b) compact the over-allocated output of sparse
//! `edgeMap` (slots that produced no target hold a sentinel). The scheme is
//! the standard one: per-block counts, exclusive scan of counts, then a
//! second pass copying survivors to their final offsets.

use crate::utils::{block_range, num_blocks, SendPtr, GRANULARITY};
use rayon::prelude::*;

/// Keeps `xs[i]` iff `flags[i]`, preserving order.
///
/// # Panics
/// Panics if `xs.len() != flags.len()`.
pub fn pack<T: Copy + Send + Sync>(xs: &[T], flags: &[bool]) -> Vec<T> {
    assert_eq!(xs.len(), flags.len(), "pack: mismatched lengths");
    pack_with(xs.len(), |i| flags[i], |i| xs[i])
}

/// Keeps `xs[i]` iff `pred(&xs[i])`, preserving order.
pub fn filter<T: Copy + Send + Sync>(xs: &[T], pred: impl Fn(&T) -> bool + Sync) -> Vec<T> {
    pack_with(xs.len(), |i| pred(&xs[i]), |i| xs[i])
}

/// Returns the indices `i` (as `u32`) with `flags[i]` set, in order.
///
/// This is the dense→sparse `vertexSubset` conversion: the flags array is
/// the dense representation, the output is the sparse one.
pub fn pack_index(flags: &[bool]) -> Vec<u32> {
    debug_assert!(flags.len() <= u32::MAX as usize);
    pack_with(flags.len(), |i| flags[i], crate::utils::checked_u32)
}

/// Returns the indices of the set bits of a packed bit set, in order.
///
/// The dense→sparse `vertexSubset` conversion for the bitset representation:
/// per-block popcounts replace the per-element flag test of [`pack_index`],
/// and the write pass decodes set bits with `trailing_zeros`, skipping
/// 64 positions per zero word.
pub fn pack_index_bits(bits: &crate::bitvec::BitSet) -> Vec<u32> {
    debug_assert!(bits.len() <= u32::MAX as usize);
    let words = bits.words();
    let nw = words.len();
    if nw == 0 {
        return Vec::new();
    }
    // Block over words; GRANULARITY bits of work per sequential grain.
    let nblocks = num_blocks(nw, GRANULARITY / 64);
    let mut counts: Vec<usize> = (0..nblocks)
        .into_par_iter()
        .map(|b| block_range(nw, nblocks, b).map(|wi| words[wi].count_ones() as usize).sum())
        .collect();
    let mut acc = 0usize;
    for c in counts.iter_mut() {
        let next = acc + *c;
        *c = acc;
        acc = next;
    }
    let total = acc;

    let mut out: Vec<u32> = Vec::with_capacity(total);
    {
        let spare = out.spare_capacity_mut();
        let ptr = SendPtr(spare.as_mut_ptr());
        (0..nblocks).into_par_iter().for_each(|b| {
            let mut o = counts[b];
            let p = ptr;
            for wi in block_range(nw, nblocks, b) {
                let mut w = words[wi];
                while w != 0 {
                    let i = crate::utils::checked_u32(wi * 64) + w.trailing_zeros();
                    // SAFETY: offsets from the scan are disjoint across
                    // blocks and total <= capacity.
                    unsafe { (*p.0.add(o)).write(i) };
                    o += 1;
                    w &= w - 1;
                }
            }
        });
    }
    // SAFETY: exactly `total` slots were initialized.
    unsafe { out.set_len(total) };
    out
}

/// Shared engine: keeps `produce(i)` for every `i in 0..n` with `keep(i)`.
pub fn pack_with<T, K, P>(n: usize, keep: K, produce: P) -> Vec<T>
where
    T: Copy + Send + Sync,
    K: Fn(usize) -> bool + Sync,
    P: Fn(usize) -> T + Sync,
{
    if n == 0 {
        return Vec::new();
    }
    let nblocks = num_blocks(n, GRANULARITY);
    if nblocks == 1 {
        let mut out = Vec::new();
        for i in 0..n {
            if keep(i) {
                out.push(produce(i));
            }
        }
        return out;
    }

    // Pass 1: count survivors per block.
    let mut counts: Vec<usize> = (0..nblocks)
        .into_par_iter()
        .map(|b| block_range(n, nblocks, b).filter(|&i| keep(i)).count())
        .collect();

    // Exclusive scan of counts (small array — sequential).
    let mut acc = 0usize;
    for c in counts.iter_mut() {
        let next = acc + *c;
        *c = acc;
        acc = next;
    }
    let total = acc;

    // Pass 2: copy survivors to their offsets.
    let mut out: Vec<T> = Vec::with_capacity(total);
    {
        let spare = out.spare_capacity_mut();
        let ptr = SendPtr(spare.as_mut_ptr());
        (0..nblocks).into_par_iter().for_each(|b| {
            let mut o = counts[b];
            let p = ptr;
            for i in block_range(n, nblocks, b) {
                if keep(i) {
                    // SAFETY: offsets from the scan are disjoint across
                    // blocks and total <= capacity.
                    unsafe { (*p.0.add(o)).write(produce(i)) };
                    o += 1;
                }
            }
        });
    }
    // SAFETY: exactly `total` slots were initialized.
    unsafe { out.set_len(total) };
    out
}

/// Splits `xs` into `(kept, rejected)` by `pred`, both order-preserving.
pub fn partition<T: Copy + Send + Sync>(
    xs: &[T],
    pred: impl Fn(&T) -> bool + Sync,
) -> (Vec<T>, Vec<T>) {
    let kept = filter(xs, &pred);
    let rejected = filter(xs, |x| !pred(x));
    (kept, rejected)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::hash32;

    #[test]
    fn pack_empty() {
        let out: Vec<u32> = pack(&[], &[]);
        assert!(out.is_empty());
    }

    #[test]
    fn pack_all_and_none() {
        let xs: Vec<u32> = (0..10_000).collect();
        let all = vec![true; xs.len()];
        let none = vec![false; xs.len()];
        assert_eq!(pack(&xs, &all), xs);
        assert!(pack(&xs, &none).is_empty());
    }

    #[test]
    fn pack_matches_sequential() {
        let xs: Vec<u32> = (0..200_000u32).map(hash32).collect();
        let flags: Vec<bool> = xs.iter().map(|&x| x.is_multiple_of(3)).collect();
        let expect: Vec<u32> =
            xs.iter().zip(&flags).filter_map(|(&x, &f)| f.then_some(x)).collect();
        assert_eq!(pack(&xs, &flags), expect);
    }

    #[test]
    fn filter_preserves_order() {
        let xs: Vec<u32> = (0..100_000).collect();
        let out = filter(&xs, |&x| x.is_multiple_of(7));
        let expect: Vec<u32> = (0..100_000u32).filter(|&x| x.is_multiple_of(7)).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn pack_index_is_sorted_positions() {
        let flags: Vec<bool> = (0..50_000).map(|i| hash32(i).is_multiple_of(5)).collect();
        let idx = pack_index(&flags);
        let expect: Vec<u32> = (0..50_000u32).filter(|&i| flags[i as usize]).collect();
        assert_eq!(idx, expect);
        assert!(idx.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn pack_index_bits_matches_pack_index() {
        use crate::bitvec::BitSet;
        for n in [0usize, 1, 63, 64, 65, 2048, 50_000] {
            let flags: Vec<bool> = (0..n).map(|i| hash32(i as u32).is_multiple_of(5)).collect();
            let bits = BitSet::from_bools(&flags);
            assert_eq!(pack_index_bits(&bits), pack_index(&flags), "n={n}");
        }
    }

    #[test]
    fn partition_is_exhaustive_and_disjoint() {
        let xs: Vec<u32> = (0..30_000u32).map(hash32).collect();
        let (evens, odds) = partition(&xs, |&x| x.is_multiple_of(2));
        assert_eq!(evens.len() + odds.len(), xs.len());
        assert!(evens.iter().all(|x| x.is_multiple_of(2)));
        assert!(odds.iter().all(|x| x % 2 == 1));
    }

    #[test]
    fn pack_mismatched_lengths_panics() {
        let r = std::panic::catch_unwind(|| pack(&[1u32, 2], &[true]));
        assert!(r.is_err());
    }
}
