//! Deterministic avalanche hash functions.
//!
//! The PBBS utilities underlying Ligra use an integer hash both as a cheap
//! deterministic pseudo-random source (graph generators, vertex sampling)
//! and for duplicate removal. These are the classic finalizers with full
//! avalanche: every input bit flips every output bit with probability ~1/2.

/// 32-bit avalanche hash (Wang's integer hash, as used in PBBS `utils::hash`).
#[inline]
pub fn hash32(mut a: u32) -> u32 {
    a = (a ^ 61) ^ (a >> 16);
    a = a.wrapping_add(a << 3);
    a ^= a >> 4;
    a = a.wrapping_mul(0x27d4_eb2d);
    a ^= a >> 15;
    a
}

/// 64-bit avalanche hash (variant of Wang's 64-bit hash).
#[inline]
pub fn hash64(mut a: u64) -> u64 {
    a = (!a).wrapping_add(a << 21);
    a ^= a >> 24;
    a = a.wrapping_add(a << 3).wrapping_add(a << 8);
    a ^= a >> 14;
    a = a.wrapping_add(a << 2).wrapping_add(a << 4);
    a ^= a >> 28;
    a = a.wrapping_add(a << 31);
    a
}

/// SplitMix64 finalizer: the mixing function of Steele et al.'s SplitMix
/// generator. Slightly stronger avalanche than [`hash64`]; used where the
/// generators need independent streams (`mix64(seed ^ index)`).
#[inline]
pub fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Hash `v` into the half-open range `[0, bound)`.
///
/// Uses the widening-multiply trick (Lemire) instead of `%` so the mapping
/// is branch-free and nearly unbiased for `bound << 2^64`.
#[inline]
pub fn hash_to_range(v: u64, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    ((mix64(v) as u128 * bound as u128) >> 64) as u64
}

/// Hash `v` to a float uniform in `[0, 1)`.
#[inline]
pub fn hash_to_unit(v: u64) -> f64 {
    // Take the top 53 bits so the result is exactly representable.
    (mix64(v) >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hashes_are_deterministic() {
        assert_eq!(hash32(42), hash32(42));
        assert_eq!(hash64(42), hash64(42));
        assert_eq!(mix64(42), mix64(42));
    }

    #[test]
    fn hashes_separate_nearby_inputs() {
        // Consecutive inputs should land far apart (avalanche).
        let a = hash32(1000);
        let b = hash32(1001);
        assert_ne!(a, b);
        assert!((a ^ b).count_ones() > 4, "poor avalanche: {a:x} vs {b:x}");

        let c = hash64(1000);
        let d = hash64(1001);
        assert!((c ^ d).count_ones() > 8);
    }

    #[test]
    fn hash32_is_roughly_uniform_in_buckets() {
        let buckets = 16usize;
        let mut counts = vec![0usize; buckets];
        let n = 1 << 16;
        for i in 0..n {
            counts[(hash32(i) as usize) % buckets] += 1;
        }
        let expected = n as usize / buckets;
        for &c in &counts {
            assert!(
                c > expected / 2 && c < expected * 2,
                "bucket count {c} vs expected {expected}"
            );
        }
    }

    #[test]
    fn hash_to_range_respects_bound() {
        for bound in [1u64, 2, 3, 10, 1 << 20] {
            for v in 0..1000u64 {
                assert!(hash_to_range(v, bound) < bound);
            }
        }
    }

    #[test]
    fn hash_to_unit_is_in_unit_interval() {
        let mut sum = 0.0;
        let n = 10_000u64;
        for v in 0..n {
            let x = hash_to_unit(v);
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    #[test]
    fn mix64_has_no_small_cycles_at_origin() {
        // Iterating the mixer from 0 should not return to 0 quickly.
        let mut z = 0u64;
        for _ in 0..1000 {
            z = mix64(z);
            assert_ne!(z, 0);
        }
    }
}
