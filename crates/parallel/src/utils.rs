//! Granularity control and thread-pool helpers.
//!
//! The paper's Cilk code relies on the scheduler to amortize spawn overhead;
//! in rayon the analogous discipline is to stop subdividing work below a
//! sequential grain size. Every parallel primitive in this crate falls back
//! to its sequential implementation below [`GRANULARITY`] elements, which
//! keeps the primitives fast on the small frontiers that dominate
//! high-diameter graph traversals.

use rayon::prelude::*;

/// Sequential fall-back threshold for the parallel primitives.
///
/// Work on fewer than this many elements is done sequentially: at ~2k
/// elements the cost of a fork/join round trip outweighs the work itself for
/// the cheap per-element operations (copies, adds, compares) these
/// primitives perform.
pub const GRANULARITY: usize = 2048;

/// A raw pointer that parallel blocks may share.
///
/// The standard PBBS compaction shape — per-block counts, exclusive scan,
/// then parallel writes to disjoint offset ranges — needs a mutable pointer
/// captured by many tasks at once. Safety rests entirely on the caller
/// guaranteeing the blocks write disjoint slots.
#[derive(Clone, Copy)]
pub struct SendPtr<T>(pub *mut T);
// SAFETY: SendPtr is a plain address with no aliasing claims of its own;
// every use site confines concurrent writes through it to disjoint index
// ranges (counts + exclusive scan ⇒ non-overlapping destinations), which is
// the invariant that makes cross-thread sharing of the address sound.
unsafe impl<T> Send for SendPtr<T> {}
// SAFETY: see the Send impl above — disjoint-range writes are the only
// shared-reference use.
unsafe impl<T> Sync for SendPtr<T> {}

// The checked ID-cast helpers below are the one sanctioned home for
// narrowing conversions on vertex/edge IDs (lint rule L4 exempts this
// file). Widening `as usize` stays unchecked everywhere because the
// workspace only targets 64-bit platforms:
const _: () = assert!(
    std::mem::size_of::<usize>() >= 8,
    "ligra assumes 64-bit usize: `id as usize` must be lossless"
);

/// Narrows an index to `u32`, panicking with the violated invariant if it
/// exceeds vertex-ID range. Use this (not `as u32`) whenever a `usize` or
/// `u64` becomes a vertex/edge ID; the branch predicts perfectly and keeps
/// truncation bugs loud instead of graph-dependent.
#[inline]
pub fn checked_u32<T: TryInto<u32>>(x: T) -> u32 {
    match x.try_into() {
        Ok(v) => v,
        Err(_) => panic!("id exceeds u32 vertex-ID range"),
    }
}

/// Number of worker threads in the current rayon pool.
#[inline]
pub fn num_threads() -> usize {
    rayon::current_num_threads()
}

/// Picks a block count for a blocked parallel pass over `len` elements.
///
/// Aims for ~8 blocks per thread (for load balance under work stealing)
/// while never making blocks smaller than the sequential grain.
#[inline]
pub fn num_blocks(len: usize, grain: usize) -> usize {
    if len <= grain.max(1) {
        1
    } else {
        let by_grain = len.div_ceil(grain.max(1));
        let by_threads = 8 * num_threads();
        by_grain.min(by_threads).max(1)
    }
}

/// Splits `0..len` into `nblocks` contiguous ranges of near-equal size.
///
/// Block `i` is `block_range(len, nblocks, i)`. The first `len % nblocks`
/// blocks get one extra element, so sizes differ by at most one.
#[inline]
pub fn block_range(len: usize, nblocks: usize, i: usize) -> std::ops::Range<usize> {
    debug_assert!(i < nblocks);
    let base = len / nblocks;
    let extra = len % nblocks;
    let start = i * base + i.min(extra);
    let end = start + base + usize::from(i < extra);
    start..end
}

/// Runs `body(block_index, range)` for every block of a blocked
/// decomposition of `0..len`, in parallel.
pub fn for_each_block<F>(len: usize, grain: usize, body: F)
where
    F: Fn(usize, std::ops::Range<usize>) + Sync,
{
    let nblocks = num_blocks(len, grain);
    if nblocks == 1 {
        body(0, 0..len);
    } else {
        (0..nblocks).into_par_iter().for_each(|i| body(i, block_range(len, nblocks, i)));
    }
}

/// Runs `f` inside a dedicated rayon pool with exactly `n` threads.
///
/// Used by the scalability benchmarks (Figure F4) to sweep thread counts;
/// the paper's equivalent is setting `CILK_NWORKERS`.
pub fn with_threads<R: Send>(n: usize, f: impl FnOnce() -> R + Send) -> R {
    rayon::ThreadPoolBuilder::new()
        .num_threads(n)
        .build()
        .expect("failed to build rayon pool")
        .install(f)
}

/// Reports whether [`with_threads`]`(n, ...)` actually runs work on more
/// than one OS thread.
///
/// A sequential stand-in for rayon (such as the vendored offline stub this
/// workspace patches in when no crates registry is reachable) reports the
/// configured pool size through `current_num_threads` but executes every
/// closure on the calling thread. Pool-size introspection therefore cannot
/// distinguish the two; this probe can: it runs a small parallel workload
/// and counts the distinct OS threads that touched it. Thread-sweep
/// harnesses use it to avoid presenting identical sequential runs as
/// scaling data.
pub fn pool_is_parallel(n: usize) -> bool {
    if n < 2 {
        return false;
    }
    with_threads(n, || {
        let ids = std::sync::Mutex::new(std::collections::HashSet::new());
        // Enough tasks per worker, each slow enough, that an idle real
        // worker steals at least one; a sequential runtime keeps all of
        // them on the calling thread.
        (0..n * 8).into_par_iter().with_max_len(1).for_each(|_| {
            ids.lock().expect("probe mutex poisoned").insert(std::thread::current().id());
            std::thread::sleep(std::time::Duration::from_millis(1));
        });
        ids.into_inner().expect("probe mutex poisoned").len() > 1
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_ranges_tile_exactly() {
        for len in [0usize, 1, 7, 100, 1000, 2049] {
            for nblocks in [1usize, 2, 3, 7, 16] {
                let mut covered = 0usize;
                let mut prev_end = 0usize;
                for i in 0..nblocks {
                    let r = block_range(len, nblocks, i);
                    assert_eq!(r.start, prev_end, "len={len} nblocks={nblocks} i={i}");
                    prev_end = r.end;
                    covered += r.len();
                }
                assert_eq!(prev_end, len);
                assert_eq!(covered, len);
            }
        }
    }

    #[test]
    fn block_sizes_differ_by_at_most_one() {
        let len = 1003;
        let nblocks = 16;
        let sizes: Vec<usize> = (0..nblocks).map(|i| block_range(len, nblocks, i).len()).collect();
        let min = *sizes.iter().min().unwrap();
        let max = *sizes.iter().max().unwrap();
        assert!(max - min <= 1);
    }

    #[test]
    fn num_blocks_is_one_for_small_inputs() {
        assert_eq!(num_blocks(0, GRANULARITY), 1);
        assert_eq!(num_blocks(GRANULARITY, GRANULARITY), 1);
        assert!(num_blocks(GRANULARITY * 64, GRANULARITY) > 1);
    }

    #[test]
    fn for_each_block_visits_every_index_once() {
        use std::sync::atomic::{AtomicU32, Ordering};
        let len = 10_000;
        let hits: Vec<AtomicU32> = (0..len).map(|_| AtomicU32::new(0)).collect();
        for_each_block(len, 128, |_, range| {
            for i in range {
                hits[i].fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn with_threads_runs_in_sized_pool() {
        let n = with_threads(2, num_threads);
        assert_eq!(n, 2);
    }

    #[test]
    fn checked_u32_roundtrips_and_panics() {
        assert_eq!(checked_u32(0usize), 0);
        assert_eq!(checked_u32(u32::MAX as usize), u32::MAX);
        assert_eq!(checked_u32(41u64), 41);
        assert!(std::panic::catch_unwind(|| checked_u32(u32::MAX as u64 + 1)).is_err());
    }

    #[test]
    fn single_thread_pool_is_not_parallel() {
        // Holds under both real rayon and the sequential offline stub; the
        // n >= 2 answer is runtime-dependent and probed, not asserted.
        assert!(!pool_is_parallel(1));
    }
}
