//! Parallel bounded-key counting.
//!
//! The graph builder needs degree histograms: given `m` edge sources in
//! `[0, n)`, count occurrences of each key. For the sizes we care about
//! (keys ≲ 2²⁴) the cache-friendly scheme is per-block local count arrays
//! merged by a parallel loop over keys; for very large key spaces relative
//! to the input we fall back to atomic increments, which contend rarely
//! because collisions are rare by assumption.

use crate::utils::{block_range, num_blocks, GRANULARITY};
use rayon::prelude::*;
use std::sync::atomic::{AtomicU32, Ordering};

/// Counts occurrences of each key: `out[k] = |{ i : keys[i] == k }|`.
///
/// # Panics
/// Panics (in debug) if any key is `>= nkeys`.
pub fn histogram_u32(keys: &[u32], nkeys: usize) -> Vec<u32> {
    let n = keys.len();
    let nblocks = num_blocks(n, GRANULARITY);
    if nblocks == 1 {
        let mut out = vec![0u32; nkeys];
        for &k in keys {
            debug_assert!((k as usize) < nkeys, "key {k} out of range {nkeys}");
            out[k as usize] += 1;
        }
        return out;
    }

    // Heuristic: local arrays cost nblocks * nkeys space; switch to the
    // atomic scheme when that exceeds ~4x the input size.
    if nblocks.saturating_mul(nkeys) <= 4 * n.max(1) {
        let locals: Vec<Vec<u32>> = (0..nblocks)
            .into_par_iter()
            .map(|b| {
                let mut local = vec![0u32; nkeys];
                for &k in &keys[block_range(n, nblocks, b)] {
                    debug_assert!((k as usize) < nkeys);
                    local[k as usize] += 1;
                }
                local
            })
            .collect();
        let mut out = vec![0u32; nkeys];
        out.par_iter_mut().enumerate().for_each(|(k, slot)| {
            *slot = locals.iter().map(|l| l[k]).sum();
        });
        out
    } else {
        let out: Vec<AtomicU32> = (0..nkeys).map(|_| AtomicU32::new(0)).collect();
        keys.par_iter().for_each(|&k| {
            debug_assert!((k as usize) < nkeys);
            out[k as usize].fetch_add(1, Ordering::Relaxed);
        });
        out.into_iter().map(AtomicU32::into_inner).collect()
    }
}

/// Counts keys produced on the fly: `out[k] = |{ i in 0..n : key(i) == k }|`.
pub fn histogram_with(n: usize, nkeys: usize, key: impl Fn(usize) -> u32 + Sync) -> Vec<u32> {
    let nblocks = num_blocks(n, GRANULARITY);
    if nblocks == 1 {
        let mut out = vec![0u32; nkeys];
        for i in 0..n {
            out[key(i) as usize] += 1;
        }
        return out;
    }
    let locals: Vec<Vec<u32>> = (0..nblocks)
        .into_par_iter()
        .map(|b| {
            let mut local = vec![0u32; nkeys];
            for i in block_range(n, nblocks, b) {
                local[key(i) as usize] += 1;
            }
            local
        })
        .collect();
    let mut out = vec![0u32; nkeys];
    out.par_iter_mut().enumerate().for_each(|(k, slot)| {
        *slot = locals.iter().map(|l| l[k]).sum();
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::hash32;

    fn seq_histogram(keys: &[u32], nkeys: usize) -> Vec<u32> {
        let mut out = vec![0u32; nkeys];
        for &k in keys {
            out[k as usize] += 1;
        }
        out
    }

    #[test]
    fn empty_histogram() {
        assert_eq!(histogram_u32(&[], 4), vec![0, 0, 0, 0]);
    }

    #[test]
    fn small_histogram_matches_sequential() {
        let keys = vec![0u32, 1, 1, 3, 3, 3];
        assert_eq!(histogram_u32(&keys, 4), vec![1, 2, 0, 3]);
    }

    #[test]
    fn large_histogram_small_keyspace() {
        let keys: Vec<u32> = (0..500_000u32).map(|i| hash32(i) % 64).collect();
        assert_eq!(histogram_u32(&keys, 64), seq_histogram(&keys, 64));
    }

    #[test]
    fn large_histogram_large_keyspace_uses_atomics() {
        // nkeys >> input forces the atomic path.
        let nkeys = 1 << 20;
        let keys: Vec<u32> = (0..10_000u32).map(|i| hash32(i) % nkeys as u32).collect();
        assert_eq!(histogram_u32(&keys, nkeys), seq_histogram(&keys, nkeys));
    }

    #[test]
    fn histogram_with_matches_materialized() {
        let n = 300_000;
        let nkeys = 128;
        let keys: Vec<u32> = (0..n as u32).map(|i| hash32(i) % nkeys as u32).collect();
        let a = histogram_with(n, nkeys, |i| keys[i]);
        let b = histogram_u32(&keys, nkeys);
        assert_eq!(a, b);
    }

    #[test]
    fn total_mass_is_preserved() {
        let keys: Vec<u32> = (0..100_000u32).map(|i| hash32(i) % 1000).collect();
        let h = histogram_u32(&keys, 1000);
        assert_eq!(h.iter().map(|&c| c as usize).sum::<usize>(), keys.len());
    }
}
