//! Contention-free event counters for hot-path instrumentation.
//!
//! A [`StripedU64`] is a monotonically increasing `u64` counter striped
//! across cache-line-padded per-thread slots. Worker threads add to their
//! own slot with a relaxed RMW on an otherwise-uncontended cache line, so
//! counting inside a parallel traversal costs a handful of cycles and
//! never bounces lines between cores; readers sum the slots. This is the
//! classic "per-thread counters, reconcile on read" telemetry pattern —
//! exact totals, no ordering guarantees between concurrent adds and sums.

use std::sync::atomic::{AtomicU64, Ordering};

/// One counter slot, padded to its own cache line so adjacent slots never
/// share a line (the padding is what makes striping contention-free).
#[repr(align(64))]
#[derive(Default)]
struct PaddedU64(AtomicU64);

/// A `u64` event counter striped over per-thread, cache-padded slots.
pub struct StripedU64 {
    slots: Box<[PaddedU64]>,
}

impl StripedU64 {
    /// Counter with one slot per worker thread of the current pool.
    pub fn new() -> Self {
        Self::with_stripes(rayon::current_num_threads().max(1))
    }

    /// Counter with an explicit stripe count (≥ 1).
    pub fn with_stripes(n: usize) -> Self {
        let slots = (0..n.max(1)).map(|_| PaddedU64::default()).collect();
        StripedU64 { slots }
    }

    /// Adds `x` to the calling thread's slot (relaxed; wrap-around on
    /// overflow, which at 64 bits is unreachable in practice).
    #[inline]
    pub fn add(&self, x: u64) {
        let i = rayon::current_thread_index().unwrap_or(0) % self.slots.len();
        self.slots[i].0.fetch_add(x, Ordering::Relaxed);
    }

    /// Increments the calling thread's slot by one.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Sum of all slots. Exact once concurrent writers have quiesced.
    pub fn sum(&self) -> u64 {
        self.slots.iter().map(|s| s.0.load(Ordering::Relaxed)).sum()
    }

    /// Resets every slot to zero (not atomic with respect to `add`).
    pub fn reset(&self) {
        for s in self.slots.iter() {
            s.0.store(0, Ordering::Relaxed);
        }
    }
}

impl Default for StripedU64 {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for StripedU64 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StripedU64").field("sum", &self.sum()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rayon::prelude::*;

    #[test]
    fn counts_exactly_under_parallel_adds() {
        let c = StripedU64::new();
        (0..10_000u64).into_par_iter().for_each(|i| c.add(i % 3));
        let expect: u64 = (0..10_000u64).map(|i| i % 3).sum();
        assert_eq!(c.sum(), expect);
    }

    #[test]
    fn incr_and_reset() {
        let c = StripedU64::with_stripes(4);
        for _ in 0..5 {
            c.incr();
        }
        assert_eq!(c.sum(), 5);
        c.reset();
        assert_eq!(c.sum(), 0);
    }

    #[test]
    fn slots_are_cache_line_sized() {
        assert_eq!(std::mem::size_of::<super::PaddedU64>(), 64);
    }
}
