//! Property-based tests for the parallel-primitives substrate: every
//! primitive must agree with its obvious sequential specification on
//! arbitrary inputs.
//!
//! Coverage caveat: when the workspace is built with the offline vendored
//! proptest stand-in (`.cargo/config.toml` patch, registry-less sandboxes
//! only), cases come from a fixed name-derived seed, failures are not
//! shrunk, and the explored input space is smaller than real proptest's.
//! CI strips the patch and runs these same tests under real proptest.

use ligra_parallel::atomics::{as_atomic_u32, write_min_u32};
use ligra_parallel::bitvec::AtomicBitVec;
use ligra_parallel::histogram::histogram_u32;
use ligra_parallel::pack::{filter, pack, pack_index};
use ligra_parallel::reduce::{max_index, reduce, sum_u64};
use ligra_parallel::scan::{prefix_sums, scan_exclusive, scan_inplace_exclusive};
use proptest::prelude::*;
use rayon::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn scan_matches_sequential(xs in proptest::collection::vec(0u64..1000, 0..5000)) {
        let (out, total) = prefix_sums(&xs);
        let mut acc = 0u64;
        for (i, &x) in xs.iter().enumerate() {
            prop_assert_eq!(out[i], acc);
            acc += x;
        }
        prop_assert_eq!(total, acc);
    }

    #[test]
    fn scan_inplace_matches_out_of_place(xs in proptest::collection::vec(0u64..100, 0..3000)) {
        let (expect, expect_total) = prefix_sums(&xs);
        let mut ys = xs.clone();
        let total = scan_inplace_exclusive(&mut ys, 0u64, |a, b| a + b);
        prop_assert_eq!(ys, expect);
        prop_assert_eq!(total, expect_total);
    }

    #[test]
    fn scan_is_generic_over_monoid(xs in proptest::collection::vec(0u32..u32::MAX, 0..3000)) {
        // max-monoid scan: out[i] = max of prefix.
        let (out, total) = scan_exclusive(&xs, 0u32, |a, b| a.max(b));
        let mut run = 0u32;
        for (i, &x) in xs.iter().enumerate() {
            prop_assert_eq!(out[i], run);
            run = run.max(x);
        }
        prop_assert_eq!(total, run);
    }

    #[test]
    fn pack_matches_filter_spec(
        xs in proptest::collection::vec(any::<u32>(), 0..4000),
        modulus in 1u32..7,
    ) {
        let flags: Vec<bool> = xs.iter().map(|&x| x % modulus == 0).collect();
        let got = pack(&xs, &flags);
        let expect: Vec<u32> = xs.iter().copied().filter(|&x| x % modulus == 0).collect();
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn filter_and_pack_index_agree(flags in proptest::collection::vec(any::<bool>(), 0..4000)) {
        let idx = pack_index(&flags);
        let expect: Vec<u32> = flags
            .iter()
            .enumerate()
            .filter_map(|(i, &b)| b.then_some(i as u32))
            .collect();
        prop_assert_eq!(&idx, &expect);
        // pack_index is filter over the identity sequence.
        let ids: Vec<u32> = (0..flags.len() as u32).collect();
        prop_assert_eq!(idx, filter(&ids, |&i| flags[i as usize]));
    }

    #[test]
    fn sum_and_reduce_match(xs in proptest::collection::vec(0u64..1_000_000, 0..4000)) {
        prop_assert_eq!(sum_u64(&xs), xs.iter().sum::<u64>());
        prop_assert_eq!(reduce(&xs, u64::MAX, |a, b| a.min(b)),
            xs.iter().copied().min().unwrap_or(u64::MAX));
    }

    #[test]
    fn max_index_is_first_argmax(xs in proptest::collection::vec(0u32..50, 1..3000)) {
        let i = max_index(&xs, |&x| x).unwrap();
        let m = *xs.iter().max().unwrap();
        prop_assert_eq!(xs[i], m);
        prop_assert_eq!(i, xs.iter().position(|&x| x == m).unwrap());
    }

    #[test]
    fn histogram_matches_counting(keys in proptest::collection::vec(0u32..256, 0..4000)) {
        let got = histogram_u32(&keys, 256);
        let mut expect = vec![0u32; 256];
        for &k in &keys {
            expect[k as usize] += 1;
        }
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn parallel_write_min_finds_global_min(xs in proptest::collection::vec(any::<u32>(), 1..4000)) {
        let mut cell = vec![u32::MAX];
        {
            let a = &as_atomic_u32(&mut cell)[0];
            xs.par_iter().for_each(|&x| {
                write_min_u32(a, x);
            });
        }
        prop_assert_eq!(cell[0], *xs.iter().min().unwrap());
    }

    #[test]
    fn bitvec_roundtrip(bits in proptest::collection::vec(any::<bool>(), 0..2000)) {
        let bv = AtomicBitVec::from_bools(&bits);
        prop_assert_eq!(bv.count_ones(), bits.iter().filter(|&&b| b).count());
        prop_assert_eq!(bv.to_bools(), bits);
    }
}
