//! Property-based tests for the graph substrate: the builder, transpose,
//! I/O and generators must uphold CSR invariants on arbitrary edge lists.
//!
//! Coverage caveat: when the workspace is built with the offline vendored
//! proptest stand-in (`.cargo/config.toml` patch, registry-less sandboxes
//! only), cases come from a fixed name-derived seed, failures are not
//! shrunk, and the explored input space is smaller than real proptest's.
//! CI strips the patch and runs these same tests under real proptest.

use ligra_graph::csr::transpose;
use ligra_graph::io::{read_adjacency_graph, write_adjacency_graph};
use ligra_graph::{build_graph, build_weighted_graph, properties, BuildOptions, Graph};
use proptest::prelude::*;

// Arbitrary edge list over `n` vertices.
fn edges_strategy(max_n: u32, max_m: usize) -> impl Strategy<Value = (usize, Vec<(u32, u32)>)> {
    (2u32..max_n).prop_flat_map(move |n| {
        let edge = (0..n, 0..n);
        proptest::collection::vec(edge, 0..max_m).prop_map(move |es| (n as usize, es))
    })
}

fn reference_neighbors(n: usize, edges: &[(u32, u32)], v: u32, symmetrize: bool) -> Vec<u32> {
    let mut out: Vec<u32> = Vec::new();
    for &(a, b) in edges {
        if a == b {
            continue; // default options remove self loops
        }
        if a == v {
            out.push(b);
        }
        if symmetrize && b == v {
            out.push(a);
        }
    }
    let _ = n;
    out.sort_unstable();
    out.dedup();
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn built_graph_matches_reference_adjacency((n, edges) in edges_strategy(60, 400)) {
        let g = build_graph(n, &edges, BuildOptions::directed());
        for v in 0..n as u32 {
            prop_assert_eq!(
                g.out_neighbors(v),
                &reference_neighbors(n, &edges, v, false)[..],
                "vertex {}", v
            );
        }
        properties::assert_valid(&g);
    }

    #[test]
    fn symmetrized_graph_is_symmetric((n, edges) in edges_strategy(60, 400)) {
        let g = build_graph(n, &edges, BuildOptions::symmetric());
        prop_assert!(properties::is_symmetric(&g));
        for v in 0..n as u32 {
            prop_assert_eq!(
                g.out_neighbors(v),
                &reference_neighbors(n, &edges, v, true)[..],
                "vertex {}", v
            );
        }
    }

    #[test]
    fn transpose_involution((n, edges) in edges_strategy(50, 300)) {
        let g = build_graph(n, &edges, BuildOptions::directed());
        let t = transpose(g.out_adj());
        let tt = transpose(&t);
        prop_assert_eq!(tt.offsets(), g.out_adj().offsets());
        prop_assert_eq!(tt.targets(), g.out_adj().targets());
    }

    #[test]
    fn degree_sums_are_consistent((n, edges) in edges_strategy(50, 300)) {
        let g = build_graph(n, &edges, BuildOptions::directed());
        let out_sum: usize = (0..n as u32).map(|v| g.out_degree(v)).sum();
        let in_sum: usize = (0..n as u32).map(|v| g.in_degree(v)).sum();
        prop_assert_eq!(out_sum, g.num_edges());
        prop_assert_eq!(in_sum, g.num_edges());
    }

    #[test]
    fn io_roundtrip_preserves_graph((n, edges) in edges_strategy(40, 250)) {
        let g = build_graph(n, &edges, BuildOptions::symmetric());
        let mut buf = Vec::new();
        write_adjacency_graph(&g, &mut buf).unwrap();
        let g2 = read_adjacency_graph(&buf[..], true).unwrap();
        prop_assert_eq!(g.num_vertices(), g2.num_vertices());
        prop_assert_eq!(g.num_edges(), g2.num_edges());
        for v in 0..n as u32 {
            prop_assert_eq!(g.out_neighbors(v), g2.out_neighbors(v));
        }
    }

    #[test]
    fn weighted_build_keeps_weight_edge_alignment((n, edges) in edges_strategy(40, 250)) {
        // Weight each input edge by a function of its endpoints so we can
        // verify alignment after the builder permutes edges.
        let weights: Vec<i32> =
            edges.iter().map(|&(a, b)| (a as i32) * 1000 + b as i32).collect();
        let g = build_weighted_graph(n, &edges, &weights, BuildOptions::directed());
        for u in 0..n as u32 {
            let ns = g.out_neighbors(u);
            let ws = g.out_weights(u);
            for (i, &v) in ns.iter().enumerate() {
                prop_assert_eq!(ws[i], (u as i32) * 1000 + v as i32, "arc {}->{}", u, v);
            }
        }
    }

    #[test]
    fn raw_build_preserves_multiplicity((n, edges) in edges_strategy(30, 200)) {
        let g = build_graph(n, &edges, BuildOptions::raw_directed());
        prop_assert_eq!(g.num_edges(), edges.len());
        // Multiset of arcs is preserved.
        let mut input: Vec<(u32, u32)> = edges.clone();
        input.sort_unstable();
        let mut stored: Vec<(u32, u32)> = (0..n as u32)
            .flat_map(|u| g.out_neighbors(u).iter().map(move |&v| (u, v)))
            .collect();
        stored.sort_unstable();
        prop_assert_eq!(input, stored);
    }
}

// The generators must produce structurally valid graphs for any seed.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn generators_always_valid(seed in any::<u64>()) {
        use ligra_graph::generators::*;
        let graphs: Vec<Graph> = vec![
            erdos_renyi(100, 500, seed, true),
            erdos_renyi(100, 500, seed, false),
            random_local(200, 4, seed),
            rmat(&rmat::RmatOptions { seed, ..rmat::RmatOptions::paper(7) }),
        ];
        for g in &graphs {
            properties::assert_valid(g);
        }
    }
}
