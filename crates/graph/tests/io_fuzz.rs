//! Robustness of the AdjacencyGraph parser: arbitrary and corrupted
//! inputs must produce `Err`, never a panic or an invalid graph.
//!
//! Coverage caveat: when the workspace is built with the offline vendored
//! proptest stand-in (`.cargo/config.toml` patch, registry-less sandboxes
//! only), cases come from a fixed name-derived seed, failures are not
//! shrunk, and the explored input space is smaller than real proptest's.
//! CI strips the patch and runs these same tests under real proptest.

use ligra_graph::io::{read_adjacency_graph, write_adjacency_graph};
use ligra_graph::{build_graph, BuildOptions};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn arbitrary_bytes_never_panic(data in proptest::collection::vec(any::<u8>(), 0..512)) {
        // Either parses (astronomically unlikely) or errors; must not panic.
        let _ = read_adjacency_graph(&data[..], true);
        let _ = read_adjacency_graph(&data[..], false);
    }

    #[test]
    fn arbitrary_token_streams_never_panic(
        tokens in proptest::collection::vec("[0-9]{1,6}", 0..64),
        header in prop_oneof![Just("AdjacencyGraph"), Just("WeightedAdjacencyGraph"), Just("junk")],
    ) {
        let text = format!("{header}\n{}", tokens.join("\n"));
        let _ = read_adjacency_graph(text.as_bytes(), true);
    }

    #[test]
    fn truncations_of_a_valid_file_error_or_roundtrip(
        nedges in 0usize..40,
        cut in 0usize..200,
    ) {
        let edges: Vec<(u32, u32)> = (0..nedges as u32)
            .map(|i| (ligra_parallel::hash32(i) % 10, ligra_parallel::hash32(i + 99) % 10))
            .collect();
        let g = build_graph(10, &edges, BuildOptions::symmetric());
        let mut buf = Vec::new();
        write_adjacency_graph(&g, &mut buf).unwrap();
        let cut = cut.min(buf.len());
        let truncated = &buf[..cut];
        match read_adjacency_graph(truncated, true) {
            Ok(g2) => {
                // Acceptable only when every token survived (e.g. only
                // trailing whitespace was cut): the graph must be intact.
                prop_assert_eq!(g2.num_vertices(), g.num_vertices());
                prop_assert_eq!(g2.num_edges(), g.num_edges());
                for v in 0..g.num_vertices() as u32 {
                    prop_assert_eq!(g2.out_neighbors(v), g.out_neighbors(v));
                }
            }
            Err(_) => prop_assert!(cut < buf.len(), "full file failed to parse"),
        }
    }

    #[test]
    fn corrupting_one_digit_never_yields_invalid_graph(
        nedges in 1usize..30,
        pos in 0usize..400,
        digit in 0u8..10,
    ) {
        let edges: Vec<(u32, u32)> = (0..nedges as u32)
            .map(|i| (ligra_parallel::hash32(i) % 8, ligra_parallel::hash32(i + 7) % 8))
            .collect();
        let g = build_graph(8, &edges, BuildOptions::symmetric());
        let mut buf = Vec::new();
        write_adjacency_graph(&g, &mut buf).unwrap();
        let pos = pos % buf.len();
        if buf[pos].is_ascii_digit() {
            buf[pos] = b'0' + digit;
        }
        // Whatever happens, a successfully parsed graph must satisfy the
        // invariants the parser promises: monotone offsets and in-range
        // targets with consistent counts. (Sortedness is a property of
        // *builder*-produced graphs, not of arbitrary parseable files, so
        // `assert_valid` does not apply here.)
        if let Ok(g2) = read_adjacency_graph(&buf[..], true) {
            let n = g2.num_vertices();
            let mut arcs = 0usize;
            for v in 0..n as u32 {
                for &t in g2.out_neighbors(v) {
                    prop_assert!((t as usize) < n, "target out of range after corruption");
                }
                arcs += g2.out_degree(v);
            }
            prop_assert_eq!(arcs, g2.num_edges());
        }
    }
}
