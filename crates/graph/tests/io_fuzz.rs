//! Robustness of the AdjacencyGraph parser: arbitrary and corrupted
//! inputs must produce `Err`, never a panic or an invalid graph.
//!
//! Coverage caveat: when the workspace is built with the offline vendored
//! proptest stand-in (`.cargo/config.toml` patch, registry-less sandboxes
//! only), cases come from a fixed name-derived seed, failures are not
//! shrunk, and the explored input space is smaller than real proptest's.
//! CI strips the patch and runs these same tests under real proptest.

use ligra_graph::io::{
    read_adjacency_graph, read_weighted_adjacency_graph, write_adjacency_graph,
    write_weighted_adjacency_graph,
};
use ligra_graph::{build_graph, build_weighted_graph, BuildOptions};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn arbitrary_bytes_never_panic(data in proptest::collection::vec(any::<u8>(), 0..512)) {
        // Either parses (astronomically unlikely) or errors; must not panic.
        let _ = read_adjacency_graph(&data[..], true);
        let _ = read_adjacency_graph(&data[..], false);
    }

    #[test]
    fn arbitrary_token_streams_never_panic(
        tokens in proptest::collection::vec("[0-9]{1,6}", 0..64),
        header in prop_oneof![Just("AdjacencyGraph"), Just("WeightedAdjacencyGraph"), Just("junk")],
    ) {
        let text = format!("{header}\n{}", tokens.join("\n"));
        let _ = read_adjacency_graph(text.as_bytes(), true);
    }

    #[test]
    fn truncations_of_a_valid_file_error_or_roundtrip(
        nedges in 0usize..40,
        cut in 0usize..200,
    ) {
        let edges: Vec<(u32, u32)> = (0..nedges as u32)
            .map(|i| (ligra_parallel::hash32(i) % 10, ligra_parallel::hash32(i + 99) % 10))
            .collect();
        let g = build_graph(10, &edges, BuildOptions::symmetric());
        let mut buf = Vec::new();
        write_adjacency_graph(&g, &mut buf).unwrap();
        let cut = cut.min(buf.len());
        let truncated = &buf[..cut];
        match read_adjacency_graph(truncated, true) {
            Ok(g2) => {
                // Acceptable only when every token survived (e.g. only
                // trailing whitespace was cut): the graph must be intact.
                prop_assert_eq!(g2.num_vertices(), g.num_vertices());
                prop_assert_eq!(g2.num_edges(), g.num_edges());
                for v in 0..g.num_vertices() as u32 {
                    prop_assert_eq!(g2.out_neighbors(v), g.out_neighbors(v));
                }
            }
            Err(_) => prop_assert!(cut < buf.len(), "full file failed to parse"),
        }
    }

    #[test]
    fn corrupting_one_digit_never_yields_invalid_graph(
        nedges in 1usize..30,
        pos in 0usize..400,
        digit in 0u8..10,
    ) {
        let edges: Vec<(u32, u32)> = (0..nedges as u32)
            .map(|i| (ligra_parallel::hash32(i) % 8, ligra_parallel::hash32(i + 7) % 8))
            .collect();
        let g = build_graph(8, &edges, BuildOptions::symmetric());
        let mut buf = Vec::new();
        write_adjacency_graph(&g, &mut buf).unwrap();
        let pos = pos % buf.len();
        if buf[pos].is_ascii_digit() {
            buf[pos] = b'0' + digit;
        }
        // Whatever happens, a successfully parsed graph must satisfy the
        // invariants the parser promises: monotone offsets and in-range
        // targets with consistent counts. (Sortedness is a property of
        // *builder*-produced graphs, not of arbitrary parseable files, so
        // `assert_valid` does not apply here.)
        if let Ok(g2) = read_adjacency_graph(&buf[..], true) {
            let n = g2.num_vertices();
            let mut arcs = 0usize;
            for v in 0..n as u32 {
                for &t in g2.out_neighbors(v) {
                    prop_assert!((t as usize) < n, "target out of range after corruption");
                }
                arcs += g2.out_degree(v);
            }
            prop_assert_eq!(arcs, g2.num_edges());
        }
    }

    #[test]
    fn bit_flipped_files_error_or_stay_valid_never_panic(
        nedges in 1usize..30,
        flips in proptest::collection::vec((0usize..4096, 0u32..8), 1..6),
    ) {
        // Arbitrary single-bit corruption anywhere in the file: the
        // loader must return `Ok` of a structurally valid graph or an
        // `IoError` — never unwind, and never abort on a ballooned
        // header count.
        let edges: Vec<(u32, u32)> = (0..nedges as u32)
            .map(|i| (ligra_parallel::hash32(i) % 9, ligra_parallel::hash32(i + 13) % 9))
            .collect();
        let g = build_graph(9, &edges, BuildOptions::symmetric());
        let mut buf = Vec::new();
        write_adjacency_graph(&g, &mut buf).unwrap();
        for &(pos, bit) in &flips {
            let pos = pos % buf.len();
            buf[pos] ^= 1 << bit;
        }
        if let Ok(g2) = read_adjacency_graph(&buf[..], true) {
            let n = g2.num_vertices();
            let mut arcs = 0usize;
            for v in 0..n as u32 {
                for &t in g2.out_neighbors(v) {
                    prop_assert!((t as usize) < n, "target out of range after bit flips");
                }
                arcs += g2.out_degree(v);
            }
            prop_assert_eq!(arcs, g2.num_edges());
        }
    }

    #[test]
    fn bit_flipped_weighted_files_error_or_stay_valid_never_panic(
        nedges in 1usize..20,
        flips in proptest::collection::vec((0usize..4096, 0u32..8), 1..6),
    ) {
        let edges: Vec<(u32, u32)> = (0..nedges as u32)
            .map(|i| (ligra_parallel::hash32(i) % 7, ligra_parallel::hash32(i + 31) % 7))
            .collect();
        let weights: Vec<i32> = (0..edges.len() as i32).map(|i| i % 11 - 5).collect();
        let g = build_weighted_graph(7, &edges, &weights, BuildOptions::directed());
        let mut buf = Vec::new();
        write_weighted_adjacency_graph(&g, &mut buf).unwrap();
        for &(pos, bit) in &flips {
            let pos = pos % buf.len();
            buf[pos] ^= 1 << bit;
        }
        if let Ok(g2) = read_weighted_adjacency_graph(&buf[..], false) {
            let n = g2.num_vertices();
            let mut arcs = 0usize;
            for v in 0..n as u32 {
                prop_assert_eq!(g2.out_neighbors(v).len(), g2.out_weights(v).len());
                for &t in g2.out_neighbors(v) {
                    prop_assert!((t as usize) < n, "target out of range after bit flips");
                }
                arcs += g2.out_degree(v);
            }
            prop_assert_eq!(arcs, g2.num_edges());
        }
    }
}

#[test]
fn absurd_header_counts_error_without_an_allocation_abort() {
    // A bit-flipped vertex count past the u32 id space is a parse error,
    // not a panic inside `checked_u32`.
    let e =
        read_adjacency_graph("AdjacencyGraph\n5000000000\n0\n0\n".as_bytes(), true).unwrap_err();
    assert!(e.to_string().contains("u32 id space"), "{e}");
    // A corrupted edge count in the exabyte range must fail on missing
    // tokens, not abort reserving `m` slots up front.
    let r = read_adjacency_graph("AdjacencyGraph\n1\n9999999999999999\n0\n".as_bytes(), true);
    assert!(r.is_err());
    let r = read_weighted_adjacency_graph(
        "WeightedAdjacencyGraph\n1\n9999999999999999\n0\n".as_bytes(),
        true,
    );
    assert!(r.is_err());
}
