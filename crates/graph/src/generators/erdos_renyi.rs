//! Erdős–Rényi `G(n, m)` generator.
//!
//! Not one of the paper's inputs, but the natural null model for tests and
//! property-based checks: `m` endpoint pairs chosen independently and
//! uniformly at random (hash-based, so parallel and deterministic).

use crate::builder::{build_graph, BuildOptions};
use crate::csr::{Graph, VertexId};
use ligra_parallel::checked_u32;
use ligra_parallel::hash::{hash_to_range, mix64};
use rayon::prelude::*;

/// Generates `m` uniform edge samples over `n` vertices.
pub fn erdos_renyi_edges(n: usize, m: usize, seed: u64) -> Vec<(VertexId, VertexId)> {
    assert!(n >= 1 && n <= u32::MAX as usize);
    (0..m as u64)
        .into_par_iter()
        .map(|i| {
            let h = mix64(seed ^ i.wrapping_mul(0x9e37_79b9_7f4a_7c15));
            let u = checked_u32(hash_to_range(h, n as u64));
            let v = checked_u32(hash_to_range(h ^ 0x5555_5555_5555_5555, n as u64));
            (u, v)
        })
        .collect()
}

/// Generates a `G(n, m)` graph; `symmetric` controls undirected vs directed.
pub fn erdos_renyi(n: usize, m: usize, seed: u64, symmetric: bool) -> Graph {
    let edges = erdos_renyi_edges(n, m, seed);
    let opts = if symmetric { BuildOptions::symmetric() } else { BuildOptions::directed() };
    build_graph(n, &edges, opts)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_range() {
        let edges = erdos_renyi_edges(100, 1000, 5);
        assert_eq!(edges.len(), 1000);
        assert!(edges.iter().all(|&(u, v)| u < 100 && v < 100));
    }

    #[test]
    fn roughly_uniform_sources() {
        let n = 64;
        let edges = erdos_renyi_edges(n, 64_000, 11);
        let mut counts = vec![0usize; n];
        for (u, _) in edges {
            counts[u as usize] += 1;
        }
        let expect = 1000;
        assert!(counts.iter().all(|&c| c > expect / 2 && c < expect * 2));
    }

    #[test]
    fn directed_graph_has_transpose() {
        let g = erdos_renyi(50, 400, 3, false);
        assert!(!g.is_symmetric());
        crate::properties::assert_valid(&g);
    }

    #[test]
    fn symmetric_graph_is_symmetric() {
        let g = erdos_renyi(50, 400, 3, true);
        assert!(crate::properties::is_symmetric(&g));
    }
}
