//! Random graph with local edges (`randLocal` in PBBS / the paper).
//!
//! Every vertex gets `degree` out-edge samples whose targets are biased to
//! nearby vertex IDs: the distance is drawn from a truncated power-law
//! (choose a scale `2^k` with geometrically decreasing probability, then a
//! uniform offset below that scale). This mimics meshes and road-like
//! networks where most edges are short, giving a moderate diameter —
//! between the 3d-grid and rMat extremes the paper's table spans.

use crate::builder::{build_graph, BuildOptions};
use crate::csr::{Graph, VertexId};
use ligra_parallel::checked_u32;
use ligra_parallel::hash::{hash_to_range, mix64};
use rayon::prelude::*;

/// Generates the `randLocal` edge list: `n * degree` samples.
pub fn random_local_edges(n: usize, degree: usize, seed: u64) -> Vec<(VertexId, VertexId)> {
    assert!(n >= 2, "need at least two vertices");
    assert!(n <= u32::MAX as usize);
    let log_n = usize::BITS - (n - 1).leading_zeros(); // ceil(log2 n)
    (0..(n * degree) as u64)
        .into_par_iter()
        .map(|i| {
            let u = (i / degree as u64) as usize;
            let h = mix64(seed ^ i.wrapping_mul(0x2545_f491_4f6c_dd1d));
            // Geometric scale: k uniform in [1, log_n], distance < 2^k.
            let k = 1 + checked_u32(hash_to_range(h, log_n as u64));
            let dist = 1 + hash_to_range(h ^ 0xabcd_ef01, (1u64 << k).min(n as u64 - 1));
            let v = (u as u64 + dist) % n as u64;
            (checked_u32(u), checked_u32(v))
        })
        .collect()
}

/// Generates a symmetric random-local graph with ~`2 * n * degree` arcs
/// (before dedup).
pub fn random_local(n: usize, degree: usize, seed: u64) -> Graph {
    let edges = random_local_edges(n, degree, seed);
    build_graph(n, &edges, BuildOptions::symmetric())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_count_and_range() {
        let edges = random_local_edges(1000, 5, 1);
        assert_eq!(edges.len(), 5000);
        assert!(edges.iter().all(|&(u, v)| u < 1000 && v < 1000 && u != v));
    }

    #[test]
    fn deterministic_in_seed() {
        assert_eq!(random_local_edges(500, 4, 9), random_local_edges(500, 4, 9));
        assert_ne!(random_local_edges(500, 4, 9), random_local_edges(500, 4, 10));
    }

    #[test]
    fn edges_are_mostly_local() {
        let n = 1 << 14;
        let edges = random_local_edges(n, 8, 3);
        let ring_dist = |u: u32, v: u32| {
            let d = (u as i64 - v as i64).unsigned_abs() as usize;
            d.min(n - d)
        };
        let near = edges.iter().filter(|&&(u, v)| ring_dist(u, v) <= n / 64).count();
        // With geometric scales, well over half the edges are within n/64.
        assert!(near * 2 > edges.len(), "only {near}/{} edges are local", edges.len());
    }

    #[test]
    fn graph_is_symmetric_and_valid() {
        let g = random_local(2000, 6, 7);
        assert!(g.is_symmetric());
        crate::properties::assert_valid(&g);
        assert!(crate::properties::is_symmetric(&g));
        // Average degree close to 2 * requested (symmetrized), minus dedup.
        let avg = g.num_edges() as f64 / g.num_vertices() as f64;
        assert!(avg > 6.0 && avg < 12.5, "avg degree {avg}");
    }
}
