//! Graph generators reproducing the paper's input families.
//!
//! Table 1 of the paper uses three synthetic families from PBBS plus two
//! real-world graphs:
//!
//! * **3d-grid** — every vertex connected to its six axis neighbors
//!   (high diameter, constant degree) → [`grid3d`].
//! * **random-local** (`randLocal`) — uniform-degree random graph whose
//!   endpoints are biased to nearby IDs → [`random_local`].
//! * **rMat** — Kronecker-style power-law graph (Chakrabarti et al.), the
//!   paper's stand-in for social-network topology → [`rmat`].
//! * Twitter / Yahoo real graphs → substituted by rMAT with the skewed
//!   parameters (a=0.57, b=c=0.19) the Graph500 benchmark uses, see
//!   [`rmat::RmatOptions::twitter_like`].
//!
//! All generators are deterministic in their seed (hash-based, not
//! sequential RNG), so edges can be produced independently in parallel —
//! the same property PBBS relies on.

pub mod erdos_renyi;
pub mod grid3d;
pub mod random_local;
pub mod rmat;
pub mod simple;
pub mod weights;

pub use erdos_renyi::erdos_renyi;
pub use grid3d::grid3d;
pub use random_local::random_local;
pub use rmat::{rmat, RmatOptions};
pub use simple::{balanced_tree, complete, cycle, path, star};
pub use weights::random_weights;
