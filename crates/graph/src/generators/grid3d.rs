//! 3-D grid (torus) generator.
//!
//! The paper's `3d-grid` input: every vertex is connected to its six
//! nearest neighbors in a cubic lattice. We wrap at the boundary (a torus)
//! so every vertex has degree exactly six, as in the PBBS `gridGraph`
//! generator. The defining property for the evaluation is the *diameter*:
//! Θ(n^{1/3}) BFS rounds, which keeps every frontier sparse and makes the
//! dense traversal useless — the opposite extreme from rMat.

use crate::builder::{build_graph, BuildOptions};
use crate::csr::{Graph, VertexId};
use ligra_parallel::checked_u32;
use rayon::prelude::*;

/// Generates a `side × side × side` torus with 6-neighbor connectivity.
///
/// The graph is symmetric with `6 · side³` directed arcs.
///
/// # Panics
/// Panics if `side < 2` (wrap-around would create duplicate/self edges) or
/// if `side³` overflows `u32`.
pub fn grid3d(side: usize) -> Graph {
    assert!(side >= 2, "grid3d needs side >= 2");
    let n = side.checked_mul(side).and_then(|s| s.checked_mul(side)).expect("side^3 overflow");
    assert!(n <= u32::MAX as usize, "too many vertices for u32 IDs");

    let idx = |x: usize, y: usize, z: usize| -> VertexId { checked_u32((x * side + y) * side + z) };

    // Each vertex contributes its +1 neighbor in each dimension; the
    // symmetrizing build adds the reverse arcs.
    let edges: Vec<(VertexId, VertexId)> = (0..n)
        .into_par_iter()
        .flat_map_iter(|v| {
            let z = v % side;
            let y = (v / side) % side;
            let x = v / (side * side);
            let v = checked_u32(v);
            [
                (v, idx((x + 1) % side, y, z)),
                (v, idx(x, (y + 1) % side, z)),
                (v, idx(x, y, (z + 1) % side)),
            ]
        })
        .collect();

    build_graph(n, &edges, BuildOptions::symmetric())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_degrees_are_six() {
        let g = grid3d(5);
        assert_eq!(g.num_vertices(), 125);
        assert_eq!(g.num_edges(), 6 * 125);
        for v in 0..125u32 {
            assert_eq!(g.out_degree(v), 6, "vertex {v}");
        }
    }

    #[test]
    fn side_two_has_degree_three() {
        // side=2: +1 and -1 wrap to the same neighbor, which dedups.
        let g = grid3d(2);
        assert_eq!(g.num_vertices(), 8);
        for v in 0..8u32 {
            assert_eq!(g.out_degree(v), 3);
        }
    }

    #[test]
    fn is_symmetric_and_valid() {
        let g = grid3d(4);
        assert!(g.is_symmetric());
        crate::properties::assert_valid(&g);
        assert!(crate::properties::is_symmetric(&g));
    }

    #[test]
    fn neighbors_differ_in_one_coordinate() {
        let side = 4;
        let g = grid3d(side);
        let coord = |v: u32| {
            let v = v as usize;
            (v / (side * side), (v / side) % side, v % side)
        };
        for v in 0..g.num_vertices() as u32 {
            let (x, y, z) = coord(v);
            for &u in g.out_neighbors(v) {
                let (a, b, c) = coord(u);
                let dx = usize::from(a != x);
                let dy = usize::from(b != y);
                let dz = usize::from(c != z);
                assert_eq!(dx + dy + dz, 1, "{v} -> {u} not an axis neighbor");
            }
        }
    }

    #[test]
    #[should_panic(expected = "side >= 2")]
    fn tiny_side_panics() {
        let _ = grid3d(1);
    }
}
