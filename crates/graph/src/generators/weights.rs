//! Random edge weights.
//!
//! The paper's Bellman–Ford experiments use integer edge weights drawn
//! uniformly at random. For symmetric graphs the weight must agree for the
//! two directions of an edge; we achieve that by hashing the *unordered*
//! endpoint pair rather than the arc.

use crate::csr::{Graph, VertexId, WeightedGraph};
use ligra_parallel::checked_u32;
use ligra_parallel::hash::{hash_to_range, mix64};
use rayon::prelude::*;

/// Deterministic weight for the unordered pair `{u, v}` in `[1, max_w]`.
#[inline]
pub fn pair_weight(u: VertexId, v: VertexId, max_w: i32, seed: u64) -> i32 {
    let (lo, hi) = if u <= v { (u, v) } else { (v, u) };
    let key = ((lo as u64) << 32) | hi as u64;
    1 + hash_to_range(mix64(seed) ^ key, max_w as u64) as i32
}

/// Attaches random weights in `[1, max_w]` to every edge of `g`.
///
/// Symmetric graphs keep their symmetry: both directions of an undirected
/// edge get the same weight.
pub fn random_weights(g: &Graph, max_w: i32, seed: u64) -> WeightedGraph {
    assert!(max_w >= 1);
    // The raw offset/target copies below assume a contiguous CSR; flatten
    // any live delta overlay first (cheap clone otherwise).
    let compacted;
    let g = if g.has_overlay() {
        compacted = g.compacted();
        &compacted
    } else {
        g
    };
    let n = g.num_vertices();

    let weigh = |adj: &crate::csr::Adjacency<()>, transposed: bool| {
        let offsets = adj.offsets().to_vec();
        let targets = adj.targets().to_vec();
        let weights: Vec<i32> = (0..n)
            .into_par_iter()
            .flat_map_iter(|v| {
                let v = checked_u32(v);
                adj.neighbors(v).iter().map(move |&t| {
                    let (a, b) = if transposed { (t, v) } else { (v, t) };
                    pair_weight(a, b, max_w, seed)
                })
            })
            .collect();
        crate::csr::Adjacency::new(offsets, targets, weights)
    };

    if g.is_symmetric() {
        WeightedGraph::symmetric(weigh(g.out_adj(), false))
    } else {
        WeightedGraph::directed(weigh(g.out_adj(), false), weigh(g.in_adj(), true))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{cycle, erdos_renyi};

    #[test]
    fn weights_in_range() {
        let g = erdos_renyi(200, 2000, 1, true);
        let wg = random_weights(&g, 100, 5);
        for v in 0..wg.num_vertices() as u32 {
            for &w in wg.out_weights(v) {
                assert!((1..=100).contains(&w));
            }
        }
    }

    #[test]
    fn symmetric_weights_agree_across_directions() {
        let g = erdos_renyi(100, 1000, 2, true);
        let wg = random_weights(&g, 50, 9);
        for u in 0..wg.num_vertices() as u32 {
            let ns = wg.out_neighbors(u);
            let ws = wg.out_weights(u);
            for (i, &v) in ns.iter().enumerate() {
                let j = wg.out_neighbors(v).iter().position(|&x| x == u).unwrap();
                assert_eq!(ws[i], wg.out_weights(v)[j], "weight mismatch {u}<->{v}");
            }
        }
    }

    #[test]
    fn directed_graph_in_weights_match_out_weights() {
        let g = erdos_renyi(80, 600, 3, false);
        let wg = random_weights(&g, 20, 4);
        for u in 0..wg.num_vertices() as u32 {
            let ns = wg.out_neighbors(u);
            let ws = wg.out_weights(u);
            for (i, &v) in ns.iter().enumerate() {
                // Find arc u->v in v's in-list; weight must agree.
                let pos = wg.in_neighbors(v).iter().position(|&x| x == u).unwrap();
                assert_eq!(ws[i], wg.in_weights(v)[pos]);
            }
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let g = cycle(50);
        let a = random_weights(&g, 10, 7);
        let b = random_weights(&g, 10, 7);
        for v in 0..50u32 {
            assert_eq!(a.out_weights(v), b.out_weights(v));
        }
    }
}
