//! Small deterministic graph families for tests and examples.

use crate::builder::{build_graph, BuildOptions};
use crate::csr::{Graph, VertexId};
use ligra_parallel::checked_u32;

/// Path `0 - 1 - … - (n-1)` (symmetric). The worst case for
/// direction-optimization: every frontier has one vertex.
pub fn path(n: usize) -> Graph {
    assert!(n >= 1);
    let edges: Vec<(VertexId, VertexId)> =
        (0..checked_u32(n.saturating_sub(1))).map(|i| (i, i + 1)).collect();
    build_graph(n, &edges, BuildOptions::symmetric())
}

/// Cycle on `n` vertices (symmetric).
pub fn cycle(n: usize) -> Graph {
    assert!(n >= 3, "cycle needs n >= 3");
    let n32 = checked_u32(n);
    let edges: Vec<(VertexId, VertexId)> = (0..n32).map(|i| (i, (i + 1) % n32)).collect();
    build_graph(n, &edges, BuildOptions::symmetric())
}

/// Star: vertex 0 connected to all others (symmetric). One BFS round
/// reaches everything — the best case for the dense traversal.
pub fn star(n: usize) -> Graph {
    assert!(n >= 2);
    let edges: Vec<(VertexId, VertexId)> = (1..checked_u32(n)).map(|i| (0, i)).collect();
    build_graph(n, &edges, BuildOptions::symmetric())
}

/// Complete graph `K_n` (symmetric).
pub fn complete(n: usize) -> Graph {
    assert!(n >= 2);
    let mut edges = Vec::with_capacity(n * (n - 1) / 2);
    for u in 0..checked_u32(n) {
        for v in (u + 1)..checked_u32(n) {
            edges.push((u, v));
        }
    }
    build_graph(n, &edges, BuildOptions::symmetric())
}

/// Complete binary tree with `n` vertices, edges parent→child plus the
/// reverse (symmetric). Vertex 0 is the root; children of `i` are
/// `2i + 1` and `2i + 2`.
pub fn balanced_tree(n: usize) -> Graph {
    assert!(n >= 1);
    let mut edges = Vec::with_capacity(n.saturating_sub(1));
    for i in 1..checked_u32(n) {
        edges.push(((i - 1) / 2, i));
    }
    build_graph(n, &edges, BuildOptions::symmetric())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_degrees() {
        let g = path(5);
        assert_eq!(g.num_edges(), 8);
        assert_eq!(g.out_degree(0), 1);
        assert_eq!(g.out_degree(2), 2);
        assert_eq!(g.out_degree(4), 1);
    }

    #[test]
    fn singleton_path() {
        let g = path(1);
        assert_eq!(g.num_vertices(), 1);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn cycle_is_two_regular() {
        let g = cycle(7);
        assert_eq!(g.num_edges(), 14);
        assert!((0..7u32).all(|v| g.out_degree(v) == 2));
    }

    #[test]
    fn star_degrees() {
        let g = star(10);
        assert_eq!(g.out_degree(0), 9);
        assert!((1..10u32).all(|v| g.out_degree(v) == 1));
    }

    #[test]
    fn complete_graph() {
        let g = complete(6);
        assert_eq!(g.num_edges(), 30);
        assert!((0..6u32).all(|v| g.out_degree(v) == 5));
    }

    #[test]
    fn tree_shape() {
        let g = balanced_tree(7);
        assert_eq!(g.num_edges(), 12);
        assert_eq!(g.out_neighbors(0), &[1, 2]);
        assert_eq!(g.out_neighbors(3), &[1]);
        assert_eq!(g.out_degree(1), 3); // parent 0 + children 3, 4
    }

    #[test]
    fn all_families_are_valid_and_symmetric() {
        for g in [path(10), cycle(10), star(10), complete(8), balanced_tree(15)] {
            crate::properties::assert_valid(&g);
            assert!(crate::properties::is_symmetric(&g));
        }
    }
}
