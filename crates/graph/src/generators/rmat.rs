//! Recursive-matrix (rMAT) graph generator.
//!
//! Chakrabarti, Zhan & Faloutsos's R-MAT model: each edge picks its endpoint
//! pair by recursively descending into one of the four quadrants of the
//! adjacency matrix with probabilities `(a, b, c, d)`. With `a > d` the
//! resulting degree distribution is a power law — the paper uses rMat as its
//! social-network-like input, and we additionally use the Graph500
//! parameters as the stand-in for the Twitter/Yahoo graphs.
//!
//! Like the PBBS generator, edge `i` derives all of its random choices from
//! hashes of `(seed, i, level)`, so the edge list is a pure function of the
//! options and can be generated in parallel.

use crate::builder::{build_graph, BuildOptions};
use crate::csr::{Graph, VertexId};
use ligra_parallel::checked_u32;
use ligra_parallel::hash::{hash_to_unit, mix64};
use rayon::prelude::*;

/// Parameters for [`rmat`].
#[derive(Debug, Clone, Copy)]
pub struct RmatOptions {
    /// log2 of the vertex count.
    pub log_n: u32,
    /// Edges per vertex (the paper's rMat graphs average ~6-10).
    pub edge_factor: usize,
    /// Quadrant probability `a` (top-left).
    pub a: f64,
    /// Quadrant probability `b` (top-right).
    pub b: f64,
    /// Quadrant probability `c` (bottom-left); `d = 1 - a - b - c`.
    pub c: f64,
    /// Hash seed.
    pub seed: u64,
    /// Build a symmetric graph (the paper symmetrizes its rMat inputs).
    pub symmetric: bool,
}

impl RmatOptions {
    /// The paper's rMat parameters (PBBS defaults): a=0.5, b=c=0.1.
    pub fn paper(log_n: u32) -> Self {
        RmatOptions { log_n, edge_factor: 10, a: 0.5, b: 0.1, c: 0.1, seed: 42, symmetric: true }
    }

    /// Graph500 skew (a=0.57, b=c=0.19): our stand-in for the Twitter graph
    /// (heavier power-law tail, lower effective diameter).
    pub fn twitter_like(log_n: u32) -> Self {
        RmatOptions {
            log_n,
            edge_factor: 16,
            a: 0.57,
            b: 0.19,
            c: 0.19,
            seed: 271828,
            symmetric: false,
        }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        1usize << self.log_n
    }

    /// Number of generated edge samples (before dedup/symmetrization).
    pub fn num_edge_samples(&self) -> usize {
        self.num_vertices() * self.edge_factor
    }
}

/// Generates the rMAT edge list (may contain duplicates and self loops).
pub fn rmat_edges(opts: &RmatOptions) -> Vec<(VertexId, VertexId)> {
    assert!(opts.log_n >= 1 && opts.log_n <= 31, "log_n out of range");
    let ab = opts.a + opts.b;
    let abc = ab + opts.c;
    assert!(abc < 1.0 + 1e-9, "quadrant probabilities exceed 1");
    let nedges = opts.num_edge_samples();
    (0..nedges as u64)
        .into_par_iter()
        .map(|i| {
            let mut u: u64 = 0;
            let mut v: u64 = 0;
            // One hash stream per (edge, level); mix the seed in once.
            let base = mix64(opts.seed ^ (i.wrapping_mul(0x9e37_79b9_7f4a_7c15)));
            for level in 0..opts.log_n {
                let r = hash_to_unit(base ^ ((level as u64 + 1) << 32));
                u <<= 1;
                v <<= 1;
                if r < opts.a {
                    // top-left: (0, 0)
                } else if r < ab {
                    v |= 1; // top-right: (0, 1)
                } else if r < abc {
                    u |= 1; // bottom-left: (1, 0)
                } else {
                    u |= 1;
                    v |= 1; // bottom-right: (1, 1)
                }
            }
            (checked_u32(u), checked_u32(v))
        })
        .collect()
}

/// Generates an rMAT graph (deduplicated, loops removed, optionally
/// symmetrized per `opts.symmetric`).
pub fn rmat(opts: &RmatOptions) -> Graph {
    let edges = rmat_edges(opts);
    let build = if opts.symmetric { BuildOptions::symmetric() } else { BuildOptions::directed() };
    build_graph(opts.num_vertices(), &edges, build)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_endpoints_in_range() {
        let opts = RmatOptions::paper(10);
        let edges = rmat_edges(&opts);
        assert_eq!(edges.len(), opts.num_edge_samples());
        let n = opts.num_vertices() as u32;
        assert!(edges.iter().all(|&(u, v)| u < n && v < n));
    }

    #[test]
    fn deterministic_in_seed() {
        let opts = RmatOptions::paper(8);
        assert_eq!(rmat_edges(&opts), rmat_edges(&opts));
        let other = RmatOptions { seed: 7, ..opts };
        assert_ne!(rmat_edges(&opts), rmat_edges(&other));
    }

    #[test]
    fn degree_distribution_is_skewed() {
        // With a=0.5 > d=0.3 low-ID vertices must be much heavier.
        let opts = RmatOptions::paper(12);
        let g = rmat(&opts);
        let n = g.num_vertices();
        let low: usize = (0..(n / 16) as u32).map(|v| g.out_degree(v)).sum();
        let high: usize = ((n - n / 16) as u32..n as u32).map(|v| g.out_degree(v)).sum();
        assert!(low > 3 * high, "expected skew toward low IDs: low-16th {low} vs high-16th {high}");
        // And the max degree should far exceed the average.
        let avg = g.num_edges() / n;
        let (_, dmax) = g.max_out_degree();
        assert!(dmax > 5 * avg, "max degree {dmax} vs avg {avg}");
    }

    #[test]
    fn symmetric_output_is_symmetric() {
        let g = rmat(&RmatOptions::paper(8));
        assert!(g.is_symmetric());
        crate::properties::assert_valid(&g);
        assert!(crate::properties::is_symmetric(&g));
    }

    #[test]
    fn twitter_like_is_directed_and_skewed() {
        let g = rmat(&RmatOptions::twitter_like(10));
        assert!(!g.is_symmetric());
        let (_, dmax) = g.max_out_degree();
        let avg = (g.num_edges() / g.num_vertices()).max(1);
        assert!(dmax > 10 * avg, "twitter-like max degree {dmax} vs avg {avg}");
    }
}
