//! Batched live-graph deltas: edge/vertex inserts and deletes applied to an
//! immutable [`Graph`] snapshot, producing a new snapshot that layers a
//! delta overlay over the *same* base CSR arrays (see
//! [`crate::csr::Adjacency`]).
//!
//! Semantics are **set semantics with tombstones**:
//! * adding an edge that already exists is a no-op;
//! * deleting an edge removes *all* parallel copies (a tombstone for the
//!   endpoint pair), and deleting a missing edge is a no-op;
//! * deleting a vertex tombstones every edge incident to it *at apply
//!   time* (the vertex id itself stays in the id space with degree 0, so
//!   ids remain dense and stable across epochs);
//! * within one batch, deletions apply before insertions — a pair in both
//!   lists ends up present.
//!
//! On symmetric graphs an edge `{u, v}` is one undirected edge: both arcs
//! are inserted/removed together. On directed graphs a pair `(u, v)` is
//! the single arc `u -> v`.
//!
//! [`apply_batch`] also returns the batch reduced to a [`NormalizedBatch`]
//! of pure arc-level set operations. Re-applying the normalized form to
//! the same starting snapshot reproduces the same view — that determinism
//! is what lets a background compactor rebuild a clean CSR from the base
//! and then roll forward the batches that landed while it ran.

use crate::csr::{Adjacency, Graph, Overlay, VertexId};
use ligra_parallel::checked_u32;

/// A batch of graph mutations, applied atomically as one epoch.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DeltaBatch {
    /// Number of fresh (edgeless) vertex ids to append to the id space.
    pub add_vertices: usize,
    /// Vertices whose incident edges are all tombstoned.
    pub del_vertices: Vec<VertexId>,
    /// Edges to insert (set semantics).
    pub add_edges: Vec<(VertexId, VertexId)>,
    /// Edge tombstones (remove all parallel copies; missing is a no-op).
    pub del_edges: Vec<(VertexId, VertexId)>,
}

impl DeltaBatch {
    /// An empty batch.
    pub fn new() -> Self {
        DeltaBatch::default()
    }

    /// True when the batch performs no mutation at all.
    pub fn is_empty(&self) -> bool {
        self.add_vertices == 0
            && self.del_vertices.is_empty()
            && self.add_edges.is_empty()
            && self.del_edges.is_empty()
    }

    /// Appends `count` fresh vertices.
    pub fn grow(mut self, count: usize) -> Self {
        self.add_vertices += count;
        self
    }

    /// Inserts edge `(u, v)`.
    pub fn add_edge(mut self, u: VertexId, v: VertexId) -> Self {
        self.add_edges.push((u, v));
        self
    }

    /// Tombstones edge `(u, v)`.
    pub fn del_edge(mut self, u: VertexId, v: VertexId) -> Self {
        self.del_edges.push((u, v));
        self
    }

    /// Tombstones every edge incident to `v`.
    pub fn del_vertex(mut self, v: VertexId) -> Self {
        self.del_vertices.push(v);
        self
    }
}

/// Why a batch was rejected (the snapshot is untouched).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeltaError {
    /// An edge endpoint or deleted vertex lies outside the post-growth id
    /// space `0..n_after`.
    VertexOutOfRange {
        /// The offending id.
        v: VertexId,
        /// The id space size the batch would produce.
        n: usize,
    },
}

impl std::fmt::Display for DeltaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeltaError::VertexOutOfRange { v, n } => {
                write!(f, "vertex {v} out of range for id space of size {n}")
            }
        }
    }
}

impl std::error::Error for DeltaError {}

/// A batch reduced to pure arc-level set operations against a known vertex
/// universe. Vertex deletions are expanded to their incident edges at the
/// original apply time, so re-applying a normalized batch is deterministic
/// regardless of what the graph looks like when the compactor replays it.
#[derive(Debug, Clone)]
pub struct NormalizedBatch {
    /// Id-space size after this batch.
    pub n_after: usize,
    /// Logical edge pairs to insert, sorted + deduplicated. On symmetric
    /// graphs each pair stands for both arcs.
    adds: Vec<(VertexId, VertexId)>,
    /// Logical edge pairs to tombstone first, sorted + deduplicated.
    dels: Vec<(VertexId, VertexId)>,
}

impl NormalizedBatch {
    /// Number of logical edge inserts requested (before set-semantics
    /// no-ops are discounted).
    pub fn num_adds(&self) -> usize {
        self.adds.len()
    }

    /// Number of logical edge tombstones requested.
    pub fn num_dels(&self) -> usize {
        self.dels.len()
    }
}

/// What a batch actually changed, in arcs (symmetric mirrors count).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ApplyStats {
    /// Arcs inserted (requested inserts already present don't count).
    pub arcs_added: u64,
    /// Arc copies removed by tombstones.
    pub arcs_deleted: u64,
    /// Fresh vertex ids appended.
    pub vertices_added: u64,
    /// Vertices whose incident edges were tombstoned.
    pub vertices_deleted: u64,
}

/// Applies `batch` to `g`, returning the new overlaid snapshot, the
/// batch's normalized (replayable) form, and what actually changed.
/// `g` itself is untouched — callers publish the returned graph as the
/// next epoch.
pub fn apply_batch(
    g: &Graph,
    batch: &DeltaBatch,
) -> Result<(Graph, NormalizedBatch, ApplyStats), DeltaError> {
    let n0 = g.num_vertices();
    let n_after = n0 + batch.add_vertices;
    let check = |v: VertexId| -> Result<(), DeltaError> {
        if (v as usize) < n_after {
            Ok(())
        } else {
            Err(DeltaError::VertexOutOfRange { v, n: n_after })
        }
    };
    for &v in &batch.del_vertices {
        check(v)?;
    }
    for &(u, v) in batch.add_edges.iter().chain(&batch.del_edges) {
        check(u)?;
        check(v)?;
    }

    // Expand vertex deletions into edge tombstones against the current
    // view. Out-neighbors cover everything on symmetric graphs; directed
    // graphs also tombstone the in-arcs.
    let mut dels = batch.del_edges.clone();
    let mut deleted_vertices: Vec<VertexId> = batch.del_vertices.clone();
    deleted_vertices.sort_unstable();
    deleted_vertices.dedup();
    for &v in &deleted_vertices {
        if (v as usize) >= n0 {
            continue; // brand-new id: nothing incident yet
        }
        for &w in g.out_neighbors(v) {
            dels.push((v, w));
        }
        if !g.is_symmetric() {
            for &u in g.in_neighbors(v) {
                dels.push((u, v));
            }
        }
    }
    dels.sort_unstable();
    dels.dedup();

    let mut adds = batch.add_edges.clone();
    if g.is_symmetric() {
        // Canonicalize undirected pairs so {u,v} and {v,u} dedup together.
        for e in adds.iter_mut().chain(dels.iter_mut()) {
            if e.0 > e.1 {
                *e = (e.1, e.0);
            }
        }
        dels.sort_unstable();
        dels.dedup();
    }
    adds.sort_unstable();
    adds.dedup();

    let nb = NormalizedBatch { n_after, adds, dels };
    let (graph, mut stats) = apply_normalized(g, &nb);
    stats.vertices_deleted = deleted_vertices.iter().filter(|&&v| (v as usize) < n0).count() as u64;
    Ok((graph, nb, stats))
}

/// Replays a normalized batch against `g` (the compactor's roll-forward
/// path). `nb.n_after` must be `>= g.num_vertices()`.
pub fn apply_normalized(g: &Graph, nb: &NormalizedBatch) -> (Graph, ApplyStats) {
    let n0 = g.num_vertices();
    debug_assert!(nb.n_after >= n0, "normalized batches never shrink the id space");
    let sym = g.is_symmetric();

    // Expand logical pairs into per-direction arc lists.
    let expand_out = |pairs: &[(VertexId, VertexId)]| -> Vec<(VertexId, VertexId)> {
        let mut arcs = Vec::with_capacity(pairs.len() * if sym { 2 } else { 1 });
        for &(u, v) in pairs {
            arcs.push((u, v));
            if sym && u != v {
                arcs.push((v, u));
            }
        }
        arcs.sort_unstable();
        arcs.dedup();
        arcs
    };
    let out_adds = expand_out(&nb.adds);
    let out_dels = expand_out(&nb.dels);

    let (out_adj, added, deleted) =
        overlay_direction(g.out_adj(), nb.n_after, &out_adds, &out_dels);
    let stats = ApplyStats {
        arcs_added: added,
        arcs_deleted: deleted,
        vertices_added: (nb.n_after - n0) as u64,
        vertices_deleted: 0,
    };
    if sym {
        return (Graph::symmetric(out_adj), stats);
    }

    // In-direction: the same arcs keyed by destination.
    let flip = |arcs: &[(VertexId, VertexId)]| -> Vec<(VertexId, VertexId)> {
        let mut f: Vec<(VertexId, VertexId)> = arcs.iter().map(|&(u, v)| (v, u)).collect();
        f.sort_unstable();
        f
    };
    let in_adds = flip(&out_adds);
    let in_dels = flip(&out_dels);
    let (in_adj, in_added, in_deleted) =
        overlay_direction(g.in_adj(), nb.n_after, &in_adds, &in_dels);
    debug_assert_eq!(added, in_added, "out/in directions must agree on inserted arcs");
    debug_assert_eq!(deleted, in_deleted, "out/in directions must agree on removed arcs");
    (Graph::directed(out_adj, in_adj), stats)
}

/// Builds the overlaid view of one direction. `add_arcs` / `del_arcs` are
/// sorted, deduplicated `(key, neighbor)` pairs keyed by this direction's
/// row vertex. Returns the new adjacency plus the arcs actually inserted
/// and removed.
fn overlay_direction(
    adj: &Adjacency,
    n_after: usize,
    add_arcs: &[(VertexId, VertexId)],
    del_arcs: &[(VertexId, VertexId)],
) -> (Adjacency, u64, u64) {
    let old_n = adj.num_vertices();

    // Touched = previously-touched ∪ batch-touched ∪ freshly-added ids.
    // Previously-touched rows must stay in the side CSR (their base rows
    // are stale), so their merged lists are carried over verbatim.
    let mut touched: Vec<VertexId> = Vec::new();
    if let Some(o) = adj.overlay() {
        touched.extend_from_slice(&o.ids);
    }
    touched.extend(add_arcs.iter().map(|a| a.0));
    touched.extend(del_arcs.iter().map(|a| a.0));
    touched.extend((old_n..n_after).map(checked_u32));
    touched.sort_unstable();
    touched.dedup();

    let mut offs: Vec<u64> = Vec::with_capacity(touched.len() + 1);
    offs.push(0);
    let mut targets: Vec<VertexId> = Vec::new();
    let mut added = 0u64;
    let mut deleted = 0u64;

    // Per-key range over a sorted arc list.
    let range_of = |arcs: &[(VertexId, VertexId)], v: VertexId| -> std::ops::Range<usize> {
        let lo = arcs.partition_point(|&(k, _)| k < v);
        let hi = arcs.partition_point(|&(k, _)| k <= v);
        lo..hi
    };

    for &v in &touched {
        let cur: &[VertexId] = if (v as usize) < old_n { adj.neighbors(v) } else { &[] };
        let a = range_of(add_arcs, v);
        let d = range_of(del_arcs, v);
        if a.is_empty() && d.is_empty() {
            // Carried-over row: keep the old merged list as-is.
            targets.extend_from_slice(cur);
        } else {
            let mut list: Vec<VertexId> = cur.to_vec();
            // Loaded base lists aren't guaranteed sorted; merged lists are.
            list.sort_unstable();
            let dvals: Vec<VertexId> = del_arcs[d].iter().map(|&(_, x)| x).collect();
            if !dvals.is_empty() {
                list.retain(|x| {
                    if dvals.binary_search(x).is_ok() {
                        deleted += 1;
                        false
                    } else {
                        true
                    }
                });
            }
            let avals = &add_arcs[a];
            if avals.is_empty() {
                targets.extend_from_slice(&list);
            } else {
                // Merge the sorted insert set into the sorted list,
                // skipping values already present (set semantics).
                let mut i = 0;
                for &(_, x) in avals {
                    while i < list.len() && list[i] < x {
                        targets.push(list[i]);
                        i += 1;
                    }
                    if i < list.len() && list[i] == x {
                        continue; // already present: no-op
                    }
                    targets.push(x);
                    added += 1;
                }
                targets.extend_from_slice(&list[i..]);
            }
        }
        offs.push(targets.len() as u64);
    }

    let m = adj.num_edges() as u64 + added - deleted;
    let words = n_after.div_ceil(64).max(1);
    let mut bits = vec![0u64; words];
    for &v in &touched {
        bits[(v as usize) >> 6] |= 1u64 << (v & 63);
    }
    let overlay = Overlay {
        n: n_after,
        m,
        touched: bits.into_boxed_slice(),
        ids: touched.into_boxed_slice(),
        offs: offs.into_boxed_slice(),
        targets: targets.into_boxed_slice(),
        weights: Box::new([]),
    };
    (adj.overlaid(overlay), added, deleted)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{build_graph, BuildOptions};

    fn path3() -> Graph {
        // 0 - 1 - 2, symmetric.
        build_graph(3, &[(0, 1), (1, 2)], BuildOptions::symmetric())
    }

    #[test]
    fn add_edge_appears_in_both_endpoint_lists() {
        let g = path3();
        let (g2, _, stats) =
            apply_batch(&g, &DeltaBatch::new().add_edge(0, 2)).expect("valid batch");
        assert_eq!(stats.arcs_added, 2);
        assert_eq!(g2.out_neighbors(0), &[1, 2]);
        assert_eq!(g2.out_neighbors(2), &[0, 1]);
        assert_eq!(g2.num_edges(), g.num_edges() + 2);
        // The original snapshot is untouched.
        assert_eq!(g.out_neighbors(0), &[1]);
        assert!(g2.has_overlay() && !g.has_overlay());
    }

    #[test]
    fn add_existing_edge_is_a_noop() {
        let g = path3();
        let (g2, _, stats) =
            apply_batch(&g, &DeltaBatch::new().add_edge(1, 0)).expect("valid batch");
        assert_eq!(stats.arcs_added, 0);
        assert_eq!(g2.num_edges(), g.num_edges());
        assert_eq!(g2.out_neighbors(0), &[1]);
    }

    #[test]
    fn delete_removes_all_parallel_copies() {
        // Hand-built CSR with the 0-1 edge duplicated in both lists (the
        // builder dedups, so parallel copies only arrive via raw input).
        let adj = crate::csr::Adjacency::new(vec![0, 2, 4], vec![1, 1, 0, 0], vec![(); 4]);
        let g = Graph::symmetric(adj);
        assert_eq!(g.out_degree(0), 2);
        let (g2, _, stats) =
            apply_batch(&g, &DeltaBatch::new().del_edge(1, 0)).expect("valid batch");
        assert_eq!(stats.arcs_deleted, 4);
        assert_eq!(g2.out_degree(0), 0);
        assert_eq!(g2.out_degree(1), 0);
        assert_eq!(g2.num_edges(), 0);
    }

    #[test]
    fn delete_missing_edge_is_a_noop() {
        let g = path3();
        let (g2, _, stats) =
            apply_batch(&g, &DeltaBatch::new().del_edge(0, 2)).expect("valid batch");
        assert_eq!(stats.arcs_deleted, 0);
        assert_eq!(g2.num_edges(), g.num_edges());
    }

    #[test]
    fn delete_then_add_same_pair_ends_present() {
        let g = path3();
        let (g2, _, stats) =
            apply_batch(&g, &DeltaBatch::new().del_edge(0, 1).add_edge(0, 1)).expect("valid batch");
        assert_eq!(stats.arcs_deleted, 2);
        assert_eq!(stats.arcs_added, 2);
        assert_eq!(g2.out_neighbors(0), &[1]);
    }

    #[test]
    fn vertex_growth_and_edge_to_new_vertex() {
        let g = path3();
        let (g2, _, stats) =
            apply_batch(&g, &DeltaBatch::new().grow(2).add_edge(4, 0)).expect("valid batch");
        assert_eq!(stats.vertices_added, 2);
        assert_eq!(g2.num_vertices(), 5);
        assert_eq!(g2.out_neighbors(4), &[0]);
        assert_eq!(g2.out_neighbors(3), &[] as &[u32]);
        assert_eq!(g2.out_neighbors(0), &[1, 4]);
        assert_eq!(g2.out_degree(3), 0);
    }

    #[test]
    fn vertex_delete_tombstones_incident_edges() {
        let g = path3();
        let (g2, _, stats) =
            apply_batch(&g, &DeltaBatch::new().del_vertex(1)).expect("valid batch");
        assert_eq!(stats.vertices_deleted, 1);
        assert_eq!(g2.num_vertices(), 3, "ids stay dense");
        assert_eq!(g2.out_degree(1), 0);
        assert_eq!(g2.out_neighbors(0), &[] as &[u32]);
        assert_eq!(g2.out_neighbors(2), &[] as &[u32]);
        assert_eq!(g2.num_edges(), 0);
    }

    #[test]
    fn directed_batch_updates_both_csrs() {
        let g = build_graph(4, &[(0, 1), (1, 2)], BuildOptions::directed());
        let (g2, _, stats) =
            apply_batch(&g, &DeltaBatch::new().add_edge(2, 0).del_edge(0, 1)).expect("valid batch");
        assert_eq!(stats.arcs_added, 1);
        assert_eq!(stats.arcs_deleted, 1);
        assert_eq!(g2.out_neighbors(2), &[0]);
        assert_eq!(g2.in_neighbors(0), &[2]);
        assert_eq!(g2.out_neighbors(0), &[] as &[u32]);
        assert_eq!(g2.in_neighbors(1), &[] as &[u32]);
        assert_eq!(g2.num_edges(), 2);
    }

    #[test]
    fn out_of_range_endpoint_is_rejected() {
        let g = path3();
        let err = apply_batch(&g, &DeltaBatch::new().add_edge(0, 7)).expect_err("out of range");
        assert_eq!(err, DeltaError::VertexOutOfRange { v: 7, n: 3 });
        // Growth extends the admissible range.
        assert!(apply_batch(&g, &DeltaBatch::new().grow(5).add_edge(0, 7)).is_ok());
    }

    #[test]
    fn stacked_batches_carry_earlier_edits() {
        let g = path3();
        let (g1, _, _) = apply_batch(&g, &DeltaBatch::new().add_edge(0, 2)).expect("batch 1");
        let (g2, _, _) = apply_batch(&g1, &DeltaBatch::new().del_edge(0, 1)).expect("batch 2");
        assert_eq!(g2.out_neighbors(0), &[2], "first batch's edge survives the second");
        assert_eq!(g2.out_neighbors(1), &[2]);
        assert_eq!(g2.num_edges(), 4);
    }

    #[test]
    fn compaction_matches_overlay_view() {
        let g = build_graph(6, &[(0, 1), (1, 2), (2, 3), (3, 4)], BuildOptions::symmetric());
        let (g1, _, _) = apply_batch(
            &g,
            &DeltaBatch::new().grow(1).add_edge(6, 0).add_edge(4, 5).del_edge(1, 2),
        )
        .expect("batch");
        let clean = g1.compacted();
        assert!(!clean.has_overlay());
        assert_eq!(clean.num_vertices(), g1.num_vertices());
        assert_eq!(clean.num_edges(), g1.num_edges());
        for v in 0..g1.num_vertices() as u32 {
            assert_eq!(clean.out_neighbors(v), g1.out_neighbors(v), "vertex {v}");
        }
    }

    #[test]
    fn normalized_replay_reproduces_the_view() {
        let g = path3();
        let batch = DeltaBatch::new().grow(1).add_edge(3, 1).del_vertex(0);
        let (g1, nb, _) = apply_batch(&g, &batch).expect("batch");
        let (replayed, _) = apply_normalized(&g, &nb);
        assert_eq!(replayed.num_vertices(), g1.num_vertices());
        assert_eq!(replayed.num_edges(), g1.num_edges());
        for v in 0..g1.num_vertices() as u32 {
            assert_eq!(replayed.out_neighbors(v), g1.out_neighbors(v), "vertex {v}");
        }
    }
}
