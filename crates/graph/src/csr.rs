//! Compressed sparse row graph representations.

use ligra_parallel::checked_u32;
use rayon::prelude::*;
use std::sync::Arc;

/// Dense vertex identifier. The paper's `intT`; `u32` supports graphs with
/// up to ~4.2 billion vertices, matching Ligra's default build.
pub type VertexId = u32;

/// A live-mutation delta overlay over one direction of a base CSR (built
/// by [`crate::delta`]). Touched vertices store their *fully merged*
/// neighbor list in a compact side CSR, so [`Adjacency::neighbors`] still
/// hands traversal kernels a contiguous slice; untouched vertices read
/// the base arrays unchanged. Vertices `>= base n` (added after the base
/// was built) are always touched, which keeps base-offset indexing in
/// bounds.
#[derive(Debug)]
pub(crate) struct Overlay<W> {
    /// Vertex count of the overlaid view (>= the base CSR's).
    pub(crate) n: usize,
    /// Arc count of the overlaid view.
    pub(crate) m: u64,
    /// Word-packed touched-vertex bitset over `0..n`.
    pub(crate) touched: Box<[u64]>,
    /// Sorted touched vertex ids — the side CSR's row keys.
    pub(crate) ids: Box<[VertexId]>,
    /// Side-CSR offsets, length `ids.len() + 1`.
    pub(crate) offs: Box<[u64]>,
    /// Concatenated merged neighbor lists of the touched vertices.
    pub(crate) targets: Box<[VertexId]>,
    /// Weights parallel to `targets` (empty when `W = ()`).
    pub(crate) weights: Box<[W]>,
}

impl<W> Overlay<W> {
    /// Whether `v` has a side-CSR row (one bitset probe).
    #[inline]
    pub(crate) fn is_touched(&self, v: usize) -> bool {
        (self.touched[v >> 6] >> (v & 63)) & 1 == 1
    }

    /// The side-CSR range of a touched vertex's merged list.
    #[inline]
    fn range(&self, v: VertexId) -> std::ops::Range<usize> {
        let s = self.ids.binary_search(&v).expect("touched vertex has a side-CSR row");
        self.offs[s] as usize..self.offs[s + 1] as usize
    }
}

/// One direction of adjacency in CSR form, optionally weighted.
///
/// `offsets` has length `n + 1`; the neighbors of `v` are
/// `targets[offsets[v] .. offsets[v+1]]` and (for weighted graphs) the
/// corresponding weights occupy the same range of `weights`. For unweighted
/// graphs `W = ()` and the weight array is a zero-sized placeholder.
///
/// The arrays are reference-counted so clones are O(1) — a delta overlay
/// (see [`crate::delta`]) layers per-vertex edits over the *same* base
/// arrays without copying them. Per-vertex accessors (`degree`,
/// `neighbors`, `weights`) and the counts (`num_vertices`, `num_edges`)
/// see the overlaid view; the whole-array accessors (`offsets`,
/// `targets`, `weight_slice`, `offset`) expose the base CSR only and must
/// be guarded by [`Adjacency::has_overlay`] / [`Adjacency::materialized`].
#[derive(Debug, Clone)]
pub struct Adjacency<W = ()> {
    offsets: Arc<[u64]>,
    targets: Arc<[VertexId]>,
    weights: Arc<[W]>,
    overlay: Option<Arc<Overlay<W>>>,
}

impl<W: Copy + Send + Sync> Adjacency<W> {
    /// Builds from raw parts.
    ///
    /// # Panics
    /// Panics if the offsets are not monotone, don't start at 0, don't end
    /// at `targets.len()`, or (for non-`()` weights) if
    /// `weights.len() != targets.len()`.
    pub fn new(offsets: Vec<u64>, targets: Vec<VertexId>, weights: Vec<W>) -> Self {
        assert!(!offsets.is_empty(), "offsets must have length n+1 >= 1");
        assert_eq!(offsets[0], 0, "offsets must start at 0");
        assert_eq!(
            *offsets.last().expect("offsets nonempty: asserted above"),
            targets.len() as u64,
            "offsets must end at the edge count"
        );
        assert!(
            offsets.windows(2).all(|w| w[0] <= w[1]),
            "offsets must be monotone non-decreasing"
        );
        if std::mem::size_of::<W>() != 0 {
            assert_eq!(weights.len(), targets.len(), "one weight per edge");
        }
        Adjacency {
            offsets: offsets.into(),
            targets: targets.into(),
            weights: weights.into(),
            overlay: None,
        }
    }

    /// Number of vertices in this direction's view.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        match &self.overlay {
            Some(o) => o.n,
            None => self.offsets.len() - 1,
        }
    }

    /// Number of edges (arcs) stored in this direction's view.
    #[inline]
    pub fn num_edges(&self) -> usize {
        match &self.overlay {
            Some(o) => o.m as usize,
            None => self.targets.len(),
        }
    }

    /// Degree of `v` in this direction.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        if let Some(o) = &self.overlay {
            if o.is_touched(v as usize) {
                let r = o.range(v);
                return r.end - r.start;
            }
        }
        let v = v as usize;
        (self.offsets[v + 1] - self.offsets[v]) as usize
    }

    /// Start of `v`'s adjacency range in the **base** arrays. Base-only:
    /// meaningless for overlaid vertices — callers walking raw arrays must
    /// check [`Self::has_overlay`] (or take a [`Self::materialized`] copy).
    #[inline]
    pub fn offset(&self, v: VertexId) -> u64 {
        self.offsets[v as usize]
    }

    /// Neighbor list of `v`.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        if let Some(o) = &self.overlay {
            if o.is_touched(v as usize) {
                return &o.targets[o.range(v)];
            }
        }
        let v = v as usize;
        &self.targets[self.offsets[v] as usize..self.offsets[v + 1] as usize]
    }

    /// Edge weights of `v` (parallel to [`Self::neighbors`]).
    ///
    /// For unweighted graphs (`W = ()`) this is an empty slice.
    #[inline]
    pub fn weights(&self, v: VertexId) -> &[W] {
        if std::mem::size_of::<W>() == 0 {
            return &[];
        }
        if let Some(o) = &self.overlay {
            if o.is_touched(v as usize) {
                return &o.weights[o.range(v)];
            }
        }
        let v = v as usize;
        &self.weights[self.offsets[v] as usize..self.offsets[v + 1] as usize]
    }

    /// The whole **base** offset array (length `base n + 1`; ignores any
    /// overlay — guard with [`Self::has_overlay`]).
    #[inline]
    pub fn offsets(&self) -> &[u64] {
        &self.offsets
    }

    /// The whole **base** target array (length `base m`; ignores any
    /// overlay — guard with [`Self::has_overlay`]).
    #[inline]
    pub fn targets(&self) -> &[VertexId] {
        &self.targets
    }

    /// The whole **base** weight array (length `base m`, or 0 for
    /// unweighted; ignores any overlay — guard with [`Self::has_overlay`]).
    #[inline]
    pub fn weight_slice(&self) -> &[W] {
        &self.weights
    }

    /// Whether this direction carries a delta overlay.
    #[inline]
    pub fn has_overlay(&self) -> bool {
        self.overlay.is_some()
    }

    /// Arcs stored in the overlay side CSR (0 without an overlay). This is
    /// the *merged-list* footprint — the memory the overlay costs on top
    /// of the shared base arrays.
    #[inline]
    pub fn overlay_arcs(&self) -> u64 {
        self.overlay.as_ref().map_or(0, |o| o.targets.len() as u64)
    }

    /// Touched vertices in the overlay (0 without an overlay).
    #[inline]
    pub fn overlay_vertices(&self) -> u64 {
        self.overlay.as_ref().map_or(0, |o| o.ids.len() as u64)
    }

    /// The overlay, if any (for [`crate::delta`]'s stacking merge).
    #[inline]
    pub(crate) fn overlay(&self) -> Option<&Overlay<W>> {
        self.overlay.as_deref()
    }

    /// The same base arrays (shared, O(1)) under a new overlay.
    pub(crate) fn overlaid(&self, overlay: Overlay<W>) -> Self {
        debug_assert!(overlay.n.div_ceil(64) <= overlay.touched.len());
        debug_assert_eq!(overlay.offs.len(), overlay.ids.len() + 1);
        Adjacency {
            offsets: Arc::clone(&self.offsets),
            targets: Arc::clone(&self.targets),
            weights: Arc::clone(&self.weights),
            overlay: Some(Arc::new(overlay)),
        }
    }

    /// Flattens the overlaid view into a clean CSR with fresh contiguous
    /// arrays (the compactor's kernel). Without an overlay this is a cheap
    /// clone of the shared base arrays.
    pub fn materialized(&self) -> Self {
        use ligra_parallel::scan::prefix_sums;

        if self.overlay.is_none() {
            return self.clone();
        }
        let n = self.num_vertices();
        let m = self.num_edges();
        let weighted = std::mem::size_of::<W>() != 0;

        let degrees: Vec<u64> =
            (0..n).into_par_iter().map(|v| self.degree(checked_u32(v)) as u64).collect();
        let (mut offsets, total) = prefix_sums(&degrees);
        offsets.push(total);
        debug_assert_eq!(total as usize, m, "overlay arc count must match summed degrees");

        // Copy each merged list into its disjoint output range.
        let mut targets: Vec<VertexId> = vec![0; m];
        {
            let mut pieces: Vec<(VertexId, &mut [VertexId])> = Vec::with_capacity(n);
            let mut rest: &mut [VertexId] = &mut targets;
            for v in 0..n {
                let len = (offsets[v + 1] - offsets[v]) as usize;
                let (head, tail) = rest.split_at_mut(len);
                pieces.push((checked_u32(v), head));
                rest = tail;
            }
            pieces.into_par_iter().for_each(|(v, out)| out.copy_from_slice(self.neighbors(v)));
        }

        let mut weights: Vec<W> = Vec::new();
        if weighted {
            weights.reserve_exact(m);
            let spare = weights.spare_capacity_mut();
            let ptr = SendPtr(spare.as_mut_ptr());
            (0..n).into_par_iter().for_each(|v| {
                let p = ptr;
                let base = offsets[v] as usize;
                // SAFETY: per-vertex output ranges come from an exclusive
                // scan of the degrees, so writes are disjoint and within
                // the reserved capacity; each slot is written exactly once.
                for (i, &w) in self.weights(checked_u32(v)).iter().enumerate() {
                    unsafe { (*p.0.add(base + i)).write(w) };
                }
            });
            // SAFETY: the scan covers all m slots, so every one is
            // initialized by the loop above.
            unsafe { weights.set_len(m) };
        }

        Adjacency::new(offsets, targets, weights)
    }

    /// The same view with weights dropped (`W = ()`), preserving any
    /// overlay structure so the stripped twin stays O(overlay)-cheap.
    pub fn stripped(&self) -> Adjacency<()> {
        Adjacency {
            offsets: Arc::clone(&self.offsets),
            targets: Arc::clone(&self.targets),
            weights: Arc::from(Vec::new()),
            overlay: self.overlay.as_ref().map(|o| {
                Arc::new(Overlay {
                    n: o.n,
                    m: o.m,
                    touched: o.touched.clone(),
                    ids: o.ids.clone(),
                    offs: o.offs.clone(),
                    targets: o.targets.clone(),
                    weights: Box::new([]),
                })
            }),
        }
    }
}

impl Adjacency<()> {
    /// The same view with every edge given unit weight, preserving any
    /// overlay structure (the lazily-built weighted twin of an unweighted
    /// snapshot must not flatten the overlay).
    pub fn unit_weighted(&self) -> Adjacency<i32> {
        Adjacency {
            offsets: Arc::clone(&self.offsets),
            targets: Arc::clone(&self.targets),
            weights: vec![1i32; self.targets.len()].into(),
            overlay: self.overlay.as_ref().map(|o| {
                Arc::new(Overlay {
                    n: o.n,
                    m: o.m,
                    touched: o.touched.clone(),
                    ids: o.ids.clone(),
                    offs: o.offs.clone(),
                    targets: o.targets.clone(),
                    weights: vec![1i32; o.targets.len()].into_boxed_slice(),
                })
            }),
        }
    }
}

/// A bare pointer that rayon may carry across threads for disjoint-range
/// scatter writes. Every use site must justify disjointness with its own
/// SAFETY comment.
struct SendPtr<T>(*mut T);
// SAFETY: the wrapper only smuggles the address; use sites guarantee the
// concurrent writes hit disjoint slots.
unsafe impl<T> Send for SendPtr<T> {}
// SAFETY: as above — scatter destinations are disjoint.
unsafe impl<T> Sync for SendPtr<T> {}
impl<T> Clone for SendPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for SendPtr<T> {}

/// A graph in CSR form: out-edges plus, for directed graphs, the transpose.
///
/// * **Symmetric** graphs store a single CSR used for both directions
///   (every edge appears in both endpoints' lists).
/// * **Directed** graphs store the out-CSR and the in-CSR; the latter is
///   required by the dense (pull) traversal of `edgeMap` and by algorithms
///   that walk edges backwards (betweenness centrality).
///
/// The CSRs are reference-counted, so [`Graph::clone`] and
/// [`Graph::reversed`] are O(1) — betweenness centrality runs `edgeMap`
/// over the reversed graph without copying anything.
#[derive(Debug, Clone)]
pub struct Graph<W = ()> {
    out: std::sync::Arc<Adjacency<W>>,
    incoming: Option<std::sync::Arc<Adjacency<W>>>,
    /// Lazily built default-width vertex partitioning for the partitioned
    /// traversal, shared by all clones made after it materializes.
    partitions: std::sync::OnceLock<std::sync::Arc<crate::partition::Partitioning>>,
}

/// A graph whose edges carry `i32` weights (the paper's `intE`).
pub type WeightedGraph = Graph<i32>;

impl<W: Copy + Send + Sync> Graph<W> {
    /// Creates a symmetric graph from one CSR (used for both directions).
    pub fn symmetric(adj: Adjacency<W>) -> Self {
        Graph {
            out: std::sync::Arc::new(adj),
            incoming: None,
            partitions: std::sync::OnceLock::new(),
        }
    }

    /// Creates a directed graph from its out-CSR and in-CSR.
    ///
    /// # Panics
    /// Panics if the two directions disagree on vertex or edge counts.
    pub fn directed(out: Adjacency<W>, incoming: Adjacency<W>) -> Self {
        assert_eq!(out.num_vertices(), incoming.num_vertices());
        assert_eq!(out.num_edges(), incoming.num_edges());
        Graph {
            out: std::sync::Arc::new(out),
            incoming: Some(std::sync::Arc::new(incoming)),
            partitions: std::sync::OnceLock::new(),
        }
    }

    /// Creates a directed graph from its out-CSR alone, computing the
    /// in-CSR (transpose) in parallel.
    pub fn directed_from_out(out: Adjacency<W>) -> Self {
        let incoming = transpose(&out);
        Graph::directed(out, incoming)
    }

    /// The graph with every edge reversed, sharing this graph's storage
    /// (O(1)). For symmetric graphs this is the graph itself.
    pub fn reversed(&self) -> Self {
        match &self.incoming {
            None => self.clone(),
            // The reversed graph pulls along a different direction, so it
            // starts with an empty partition cache of its own.
            Some(incoming) => Graph {
                out: incoming.clone(),
                incoming: Some(self.out.clone()),
                partitions: std::sync::OnceLock::new(),
            },
        }
    }

    /// Number of vertices `n`.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.out.num_vertices()
    }

    /// Number of directed edges `m` (for symmetric graphs, each undirected
    /// edge counts twice, as in the paper's tables).
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.out.num_edges()
    }

    /// True if this graph stores a single CSR for both directions.
    #[inline]
    pub fn is_symmetric(&self) -> bool {
        self.incoming.is_none()
    }

    /// Out-degree of `v`.
    #[inline]
    pub fn out_degree(&self, v: VertexId) -> usize {
        self.out.degree(v)
    }

    /// In-degree of `v` (equals out-degree for symmetric graphs).
    #[inline]
    pub fn in_degree(&self, v: VertexId) -> usize {
        self.in_adj().degree(v)
    }

    /// Out-neighbors of `v`.
    #[inline]
    pub fn out_neighbors(&self, v: VertexId) -> &[VertexId] {
        self.out.neighbors(v)
    }

    /// In-neighbors of `v` (equals out-neighbors for symmetric graphs).
    #[inline]
    pub fn in_neighbors(&self, v: VertexId) -> &[VertexId] {
        self.in_adj().neighbors(v)
    }

    /// Weights parallel to [`Self::out_neighbors`].
    #[inline]
    pub fn out_weights(&self, v: VertexId) -> &[W] {
        self.out.weights(v)
    }

    /// Weights parallel to [`Self::in_neighbors`].
    #[inline]
    pub fn in_weights(&self, v: VertexId) -> &[W] {
        self.in_adj().weights(v)
    }

    /// The out-direction CSR.
    #[inline]
    pub fn out_adj(&self) -> &Adjacency<W> {
        self.out.as_ref()
    }

    /// The in-direction CSR (the out CSR for symmetric graphs).
    #[inline]
    pub fn in_adj(&self) -> &Adjacency<W> {
        self.incoming.as_deref().unwrap_or_else(|| self.out.as_ref())
    }

    /// Sum of out-degrees over `vs` — the `|U| + Σ deg⁺(u)` quantity of the
    /// paper's direction heuristic is `vs.len() + graph.degree_sum(vs)`.
    pub fn out_degree_sum(&self, vs: &[VertexId]) -> u64 {
        if vs.len() < 2048 {
            vs.iter().map(|&v| self.out_degree(v) as u64).sum()
        } else {
            vs.par_iter().map(|&v| self.out_degree(v) as u64).sum()
        }
    }

    /// The default-width vertex partitioning over this graph's
    /// in-direction, built on first use and cached (clones made after
    /// that share it). The width comes from
    /// [`crate::partition::default_bits`], so `LIGRA_PARTITION_BITS` is
    /// read once per graph, at first materialization.
    pub fn partitioning(&self) -> std::sync::Arc<crate::partition::Partitioning> {
        self.partitions
            .get_or_init(|| {
                let bits = crate::partition::default_bits(self.num_vertices());
                std::sync::Arc::new(crate::partition::Partitioning::of(self.in_adj(), bits))
            })
            .clone()
    }

    /// A partitioning at an explicit width: serves the cached one when
    /// the widths agree, otherwise builds a throwaway one at `bits`.
    pub fn partitioning_with(
        &self,
        bits: Option<u32>,
    ) -> std::sync::Arc<crate::partition::Partitioning> {
        match bits {
            None => self.partitioning(),
            Some(b) => {
                let cached = self.partitioning();
                if cached.bits() == b.clamp(crate::partition::MIN_BITS, crate::partition::MAX_BITS)
                {
                    cached
                } else {
                    std::sync::Arc::new(crate::partition::Partitioning::of(self.in_adj(), b))
                }
            }
        }
    }

    /// Maximum out-degree and one vertex attaining it; `(0, 0)` on an
    /// edgeless graph.
    pub fn max_out_degree(&self) -> (VertexId, usize) {
        let n = self.num_vertices();
        if n == 0 {
            return (0, 0);
        }
        (0..n)
            .into_par_iter()
            .map(|v| {
                let v = checked_u32(v);
                (v, self.out_degree(v))
            })
            .reduce(|| (0, 0), |a, b| if b.1 > a.1 || (b.1 == a.1 && b.0 < a.0) { b } else { a })
    }

    /// Whether either direction carries a delta overlay (a live-mutation
    /// view that has not been compacted yet).
    #[inline]
    pub fn has_overlay(&self) -> bool {
        self.out.has_overlay() || self.incoming.as_ref().is_some_and(|i| i.has_overlay())
    }

    /// Arcs held in overlay side CSRs across both directions — the memory
    /// the live view costs on top of the shared base arrays.
    #[inline]
    pub fn overlay_arcs(&self) -> u64 {
        self.out.overlay_arcs() + self.incoming.as_ref().map_or(0, |i| i.overlay_arcs())
    }

    /// Touched vertices in the out-direction overlay.
    #[inline]
    pub fn overlay_vertices(&self) -> u64 {
        self.out.overlay_vertices()
    }

    /// Flattens any overlay into clean CSRs (fresh contiguous arrays, no
    /// overlay, empty partition cache). Results are identical vertex by
    /// vertex; only the layout changes. Without an overlay this is an
    /// O(1) clone.
    pub fn compacted(&self) -> Self {
        if !self.has_overlay() {
            return self.clone();
        }
        let out = self.out.materialized();
        match &self.incoming {
            None => Graph::symmetric(out),
            Some(inc) => Graph::directed(out, inc.materialized()),
        }
    }
}

/// Computes the transpose of a CSR direction: the in-CSR whose list for
/// `v` holds every `u` with an arc `u -> v` (sorted), weights carried along.
///
/// An overlaid direction is materialized first — the histogram/scatter
/// below walks the raw base arrays.
pub fn transpose<W: Copy + Send + Sync>(adj: &Adjacency<W>) -> Adjacency<W> {
    use ligra_parallel::atomics::{as_atomic_u32, as_atomic_u64};
    use ligra_parallel::histogram::histogram_u32;
    use ligra_parallel::scan::prefix_sums;
    use std::sync::atomic::Ordering;

    if adj.has_overlay() {
        return transpose(&adj.materialized());
    }
    let n = adj.num_vertices();
    let m = adj.num_edges();
    let weighted = std::mem::size_of::<W>() != 0;

    // In-degrees = histogram of targets.
    let degrees: Vec<u64> =
        histogram_u32(adj.targets(), n).into_par_iter().map(u64::from).collect();
    let (mut offsets, total) = prefix_sums(&degrees);
    offsets.push(total);
    debug_assert_eq!(total as usize, m);

    // Scatter sources into the in-lists with atomic cursors; record where
    // each arc landed so the weight scatter can follow.
    let mut cursors: Vec<u64> = offsets[..n].to_vec();
    let mut sources: Vec<VertexId> = vec![0; m];
    let mut landing: Vec<u64> = vec![0; m];
    {
        let cur = as_atomic_u64(&mut cursors);
        let src = as_atomic_u32(&mut sources);
        let land = as_atomic_u64(&mut landing);
        (0..n).into_par_iter().for_each(|u| {
            let u = checked_u32(u);
            let base = adj.offset(u) as usize;
            for (i, &v) in adj.neighbors(u).iter().enumerate() {
                let slot = cur[v as usize].fetch_add(1, Ordering::Relaxed) as usize;
                src[slot].store(u, Ordering::Relaxed);
                land[base + i].store(slot as u64, Ordering::Relaxed);
            }
        });
    }

    let mut weights: Vec<W> = Vec::new();
    if weighted {
        weights.reserve_exact(m);
        let spare = weights.spare_capacity_mut();
        let ptr = SendPtr(spare.as_mut_ptr());
        let all_weights = adj.weight_slice();
        (0..m).into_par_iter().for_each(|i| {
            let p = ptr;
            // SAFETY: `landing` is a permutation of 0..m, so writes are
            // disjoint and within the reserved capacity.
            unsafe { (*p.0.add(landing[i] as usize)).write(all_weights[i]) };
        });
        // SAFETY: all m slots initialized (landing is a permutation).
        unsafe { weights.set_len(m) };
    }

    // Sort each in-list (carrying weights) for determinism.
    let mut src_pieces: Vec<&mut [VertexId]> = Vec::with_capacity(n);
    let mut w_pieces: Vec<&mut [W]> = Vec::with_capacity(if weighted { n } else { 0 });
    {
        let mut rest: &mut [VertexId] = &mut sources;
        let mut wrest: &mut [W] = &mut weights;
        for v in 0..n {
            let len = (offsets[v + 1] - offsets[v]) as usize;
            let (head, tail) = rest.split_at_mut(len);
            src_pieces.push(head);
            rest = tail;
            if weighted {
                let (wh, wt) = wrest.split_at_mut(len);
                w_pieces.push(wh);
                wrest = wt;
            }
        }
    }
    if weighted {
        src_pieces.into_par_iter().zip(w_pieces.into_par_iter()).for_each(|(ss, ws)| {
            let mut idx: Vec<usize> = (0..ss.len()).collect();
            idx.sort_unstable_by_key(|&i| ss[i]);
            let sorted_s: Vec<VertexId> = idx.iter().map(|&i| ss[i]).collect();
            let sorted_w: Vec<W> = idx.iter().map(|&i| ws[i]).collect();
            ss.copy_from_slice(&sorted_s);
            ws.copy_from_slice(&sorted_w);
        });
    } else {
        src_pieces.into_par_iter().for_each(|p| p.sort_unstable());
    }

    Adjacency::new(offsets, sources, weights)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 0 -> 1, 0 -> 2, 1 -> 2 (directed triangle minus one edge).
    fn small_directed() -> Graph {
        let out = Adjacency::new(vec![0, 2, 3, 3], vec![1, 2, 2], vec![(); 3]);
        let inc = Adjacency::new(vec![0, 0, 1, 3], vec![0, 0, 1], vec![(); 3]);
        Graph::directed(out, inc)
    }

    #[test]
    fn adjacency_accessors() {
        let g = small_directed();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 3);
        assert!(!g.is_symmetric());
        assert_eq!(g.out_neighbors(0), &[1, 2]);
        assert_eq!(g.out_neighbors(2), &[] as &[u32]);
        assert_eq!(g.in_neighbors(2), &[0, 1]);
        assert_eq!(g.out_degree(0), 2);
        assert_eq!(g.in_degree(0), 0);
        assert_eq!(g.in_degree(2), 2);
    }

    #[test]
    fn symmetric_graph_shares_directions() {
        // Path 0 - 1 - 2, symmetric.
        let adj = Adjacency::new(vec![0, 1, 3, 4], vec![1, 0, 2, 1], vec![(); 4]);
        let g = Graph::symmetric(adj);
        assert!(g.is_symmetric());
        assert_eq!(g.out_neighbors(1), g.in_neighbors(1));
        assert_eq!(g.in_degree(0), g.out_degree(0));
    }

    #[test]
    fn weighted_adjacency() {
        let adj = Adjacency::new(vec![0, 2, 2], vec![0, 1], vec![5i32, -3]);
        assert_eq!(adj.weights(0), &[5, -3]);
        assert_eq!(adj.weights(1), &[] as &[i32]);
    }

    #[test]
    fn unweighted_weights_are_empty() {
        let g = small_directed();
        assert!(g.out_weights(0).is_empty());
    }

    #[test]
    fn degree_sum_and_max_degree() {
        let g = small_directed();
        assert_eq!(g.out_degree_sum(&[0, 1, 2]), 3);
        assert_eq!(g.out_degree_sum(&[2]), 0);
        let (v, d) = g.max_out_degree();
        assert_eq!((v, d), (0, 2));
    }

    #[test]
    #[should_panic(expected = "offsets must end at the edge count")]
    fn bad_offsets_panic() {
        let _ = Adjacency::new(vec![0, 5], vec![1, 2], vec![(); 2]);
    }

    #[test]
    #[should_panic(expected = "monotone")]
    fn non_monotone_offsets_panic() {
        let _ = Adjacency::new(vec![0, 2, 1, 2], vec![1, 0], vec![(); 2]);
    }

    #[test]
    fn transpose_of_small_graph() {
        let out = Adjacency::new(vec![0, 2, 3, 3], vec![1, 2, 2], vec![(); 3]);
        let t = transpose(&out);
        assert_eq!(t.neighbors(0), &[] as &[u32]);
        assert_eq!(t.neighbors(1), &[0]);
        assert_eq!(t.neighbors(2), &[0, 1]);
    }

    #[test]
    fn transpose_twice_is_identity() {
        // Pseudo-random directed CSR via the builder-free path.
        let n = 200u32;
        let edges: Vec<(u32, u32)> = (0..2000u32)
            .map(|i| (ligra_parallel::hash32(i) % n, ligra_parallel::hash32(i ^ 0xdead_beef) % n))
            .collect();
        let g = crate::builder::build_graph(
            n as usize,
            &edges,
            crate::builder::BuildOptions::directed(),
        );
        let t = transpose(g.out_adj());
        let tt = transpose(&t);
        assert_eq!(tt.offsets(), g.out_adj().offsets());
        assert_eq!(tt.targets(), g.out_adj().targets());
    }

    #[test]
    fn transpose_carries_weights() {
        // 0 -(5)-> 1, 2 -(9)-> 1
        let out = Adjacency::new(vec![0, 1, 1, 2], vec![1, 1], vec![5i32, 9]);
        let t = transpose(&out);
        assert_eq!(t.neighbors(1), &[0, 2]);
        assert_eq!(t.weights(1), &[5, 9]);
    }

    #[test]
    fn directed_from_out_matches_manual_transpose() {
        let out = Adjacency::new(vec![0, 2, 3, 3], vec![1, 2, 2], vec![(); 3]);
        let g = Graph::directed_from_out(out);
        assert_eq!(g.in_neighbors(2), &[0, 1]);
        assert_eq!(g.in_degree(0), 0);
    }

    #[test]
    fn reversed_swaps_directions() {
        let g = small_directed();
        let r = g.reversed();
        assert_eq!(r.out_neighbors(2), g.in_neighbors(2));
        assert_eq!(r.in_neighbors(0), g.out_neighbors(0));
        assert_eq!(r.num_edges(), g.num_edges());
        // Reversing twice gets back the original adjacency.
        let rr = r.reversed();
        for v in 0..3u32 {
            assert_eq!(rr.out_neighbors(v), g.out_neighbors(v));
        }
    }

    #[test]
    fn partitioning_is_cached_per_direction() {
        let g = small_directed();
        let p1 = g.partitioning();
        assert!(std::sync::Arc::ptr_eq(&p1, &g.partitioning()));
        assert!(std::sync::Arc::ptr_eq(&p1, &g.partitioning_with(None)));
        assert_eq!(p1.num_vertices(), 3);
        assert_eq!(p1.total_in_edges(), 3, "counts come from the in-CSR");
        let wide = g.partitioning_with(Some(7));
        assert_eq!(wide.bits(), 7);
        assert!(!std::sync::Arc::ptr_eq(&p1, &wide));
        // The reversed graph partitions over the opposite direction.
        let r = g.reversed();
        assert_eq!(r.partitioning().total_in_edges(), 3);
    }

    #[test]
    fn reversed_symmetric_is_identity() {
        let adj = Adjacency::new(vec![0, 1, 3, 4], vec![1, 0, 2, 1], vec![(); 4]);
        let g = Graph::symmetric(adj);
        let r = g.reversed();
        assert!(r.is_symmetric());
        assert_eq!(r.out_neighbors(1), g.out_neighbors(1));
    }
}
