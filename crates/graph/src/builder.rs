//! Parallel graph construction from edge lists.
//!
//! The builder follows the PBBS `graphIO`/`graphUtils` pipeline Ligra's
//! inputs go through: count degrees (parallel histogram), prefix-sum the
//! degrees into offsets, scatter targets with per-source atomic cursors,
//! then sort each adjacency list so the result is independent of scatter
//! order (determinism), with optional de-duplication and self-loop removal.

use crate::csr::{Adjacency, Graph, VertexId};
use ligra_parallel::atomics::as_atomic_u64;
use ligra_parallel::histogram::histogram_u32;
use ligra_parallel::scan::prefix_sums;
use rayon::prelude::*;
use std::sync::atomic::Ordering;

/// Options controlling [`build_graph`].
#[derive(Debug, Clone, Copy)]
pub struct BuildOptions {
    /// Add the reverse of every edge and mark the graph symmetric.
    pub symmetrize: bool,
    /// Drop `(u, u)` edges.
    pub remove_self_loops: bool,
    /// Drop repeated `(u, v)` pairs (keeps the first weight for weighted
    /// graphs — after sorting, the smallest weight).
    pub dedup: bool,
}

impl Default for BuildOptions {
    fn default() -> Self {
        BuildOptions { symmetrize: false, remove_self_loops: true, dedup: true }
    }
}

impl BuildOptions {
    /// Options producing a symmetric (undirected) graph.
    pub fn symmetric() -> Self {
        BuildOptions { symmetrize: true, ..Default::default() }
    }

    /// Options producing a directed graph (with transpose).
    pub fn directed() -> Self {
        BuildOptions::default()
    }

    /// Keep the edge list exactly as given (multi-edges and loops survive).
    pub fn raw_directed() -> Self {
        BuildOptions { symmetrize: false, remove_self_loops: false, dedup: false }
    }
}

/// Builds an unweighted graph from `(source, target)` pairs.
///
/// Directed inputs get their transpose built automatically so the dense
/// (pull) traversal has in-edges to walk.
///
/// # Panics
/// Panics if any endpoint is `>= n`.
pub fn build_graph(n: usize, edges: &[(VertexId, VertexId)], opts: BuildOptions) -> Graph {
    let unit = vec![(); edges.len()];
    build_generic(n, edges, &unit, opts)
}

/// Builds a weighted graph from `(source, target)` pairs plus one weight
/// per edge.
///
/// # Panics
/// Panics if `weights.len() != edges.len()` or any endpoint is `>= n`.
pub fn build_weighted_graph(
    n: usize,
    edges: &[(VertexId, VertexId)],
    weights: &[i32],
    opts: BuildOptions,
) -> Graph<i32> {
    assert_eq!(edges.len(), weights.len(), "one weight per edge");
    build_generic(n, edges, weights, opts)
}

fn build_generic<W: Copy + Send + Sync + Ord>(
    n: usize,
    edges: &[(VertexId, VertexId)],
    weights: &[W],
    opts: BuildOptions,
) -> Graph<W> {
    validate_endpoints(n, edges);

    // Materialize the working arc list (applying symmetrize / loop removal).
    let mut arcs: Vec<(VertexId, VertexId, W)> =
        Vec::with_capacity(edges.len() * if opts.symmetrize { 2 } else { 1 });
    for (i, &(u, v)) in edges.iter().enumerate() {
        if opts.remove_self_loops && u == v {
            continue;
        }
        let w = weights[i];
        arcs.push((u, v, w));
        if opts.symmetrize && u != v {
            arcs.push((v, u, w));
        }
    }

    let out = csr_from_arcs(n, &arcs, opts.dedup, false);
    if opts.symmetrize {
        Graph::symmetric(out)
    } else {
        let incoming = csr_from_arcs(n, &arcs, opts.dedup, true);
        // Dedup can drop different numbers of arcs per direction only if it
        // dropped none overall; both directions see the same multiset.
        Graph::directed(out, incoming)
    }
}

fn validate_endpoints(n: usize, edges: &[(VertexId, VertexId)]) {
    let bad = edges.par_iter().find_any(|&&(u, v)| u as usize >= n || v as usize >= n);
    assert!(bad.is_none(), "edge endpoint out of range (n = {n}): {:?}", bad);
}

/// Builds one CSR direction from an arc list.
///
/// `transposed = true` swaps the roles of source and target.
fn csr_from_arcs<W: Copy + Send + Sync + Ord>(
    n: usize,
    arcs: &[(VertexId, VertexId, W)],
    dedup: bool,
    transposed: bool,
) -> Adjacency<W> {
    let src = |a: &(VertexId, VertexId, W)| if transposed { a.1 } else { a.0 };
    let dst = |a: &(VertexId, VertexId, W)| if transposed { a.0 } else { a.1 };

    // Degree histogram -> offsets.
    let sources: Vec<u32> = arcs.par_iter().map(&src).collect();
    let degrees: Vec<u64> = histogram_u32(&sources, n).into_par_iter().map(u64::from).collect();
    let (mut offsets, m) = prefix_sums(&degrees);
    offsets.push(m);
    debug_assert_eq!(m as usize, arcs.len());

    // Scatter with per-source atomic cursors.
    let mut cursors: Vec<u64> = offsets[..n].to_vec();
    let mut targets: Vec<VertexId> = vec![0; arcs.len()];
    let mut positions: Vec<u64> = vec![0; arcs.len()]; // where arc i landed
    {
        let cur = as_atomic_u64(&mut cursors);
        // Write via atomic view of the target array to keep the scatter safe.
        let tgt = ligra_parallel::atomics::as_atomic_u32(&mut targets);
        let pos = as_atomic_u64(&mut positions);
        arcs.par_iter().enumerate().for_each(|(i, a)| {
            let s = src(a) as usize;
            let slot = cur[s].fetch_add(1, Ordering::Relaxed) as usize;
            tgt[slot].store(dst(a), Ordering::Relaxed);
            pos[i].store(slot as u64, Ordering::Relaxed);
        });
    }

    // Scatter weights to the recorded positions (separate pass so the hot
    // unweighted path touches no weight memory).
    let mut wts: Vec<W> = if std::mem::size_of::<W>() == 0 {
        Vec::new()
    } else {
        let mut wts = Vec::with_capacity(arcs.len());
        // Initialize by scattering through `positions`.
        let spare = wts.spare_capacity_mut();
        let ptr = SendPtr(spare.as_mut_ptr());
        arcs.par_iter().enumerate().for_each(|(i, a)| {
            let p = ptr;
            // SAFETY: `positions` is a permutation of 0..len, so writes are
            // disjoint and within capacity.
            unsafe { (*p.0.add(positions[i] as usize)).write(a.2) };
        });
        // SAFETY: all len slots written (positions is a permutation).
        unsafe { wts.set_len(arcs.len()) };
        wts
    };

    // Sort each adjacency list (by target, then weight) for determinism.
    sort_adjacency_lists(n, &offsets, &mut targets, &mut wts);

    if dedup {
        dedup_sorted(n, offsets, targets, wts)
    } else {
        Adjacency::new(offsets, targets, wts)
    }
}

#[derive(Clone, Copy)]
struct SendPtr<T>(*mut T);
// SAFETY: bare address; each worker sorts a distinct vertex's neighbor
// range, so concurrent writes through the pointer never overlap.
unsafe impl<T> Send for SendPtr<T> {}
// SAFETY: as above — per-vertex ranges are disjoint.
unsafe impl<T> Sync for SendPtr<T> {}

/// Sorts every vertex's neighbor range in place, carrying weights along.
fn sort_adjacency_lists<W: Copy + Send + Sync + Ord>(
    n: usize,
    offsets: &[u64],
    targets: &mut [VertexId],
    weights: &mut [W],
) {
    if std::mem::size_of::<W>() == 0 {
        // Unweighted: sort the target ranges directly.
        let mut pieces: Vec<&mut [VertexId]> = Vec::with_capacity(n);
        let mut rest = targets;
        let mut prev = 0u64;
        for v in 0..n {
            let len = (offsets[v + 1] - prev) as usize;
            let (head, tail) = rest.split_at_mut(len);
            pieces.push(head);
            rest = tail;
            prev = offsets[v + 1];
        }
        pieces.into_par_iter().for_each(|p| p.sort_unstable());
    } else {
        // Weighted: sort (target, weight) pairs per range.
        let mut tpieces: Vec<(&mut [VertexId], &mut [W])> = Vec::with_capacity(n);
        let mut trest = targets;
        let mut wrest = weights;
        let mut prev = 0u64;
        for v in 0..n {
            let len = (offsets[v + 1] - prev) as usize;
            let (th, tt) = trest.split_at_mut(len);
            let (wh, wt) = wrest.split_at_mut(len);
            tpieces.push((th, wh));
            trest = tt;
            wrest = wt;
            prev = offsets[v + 1];
        }
        tpieces.into_par_iter().for_each(|(ts, ws)| {
            let mut pairs: Vec<(VertexId, W)> =
                ts.iter().copied().zip(ws.iter().copied()).collect();
            pairs.sort_unstable();
            for (i, (t, w)) in pairs.into_iter().enumerate() {
                ts[i] = t;
                ws[i] = w;
            }
        });
    }
}

/// Removes duplicate `(source, target)` arcs from sorted adjacency lists.
fn dedup_sorted<W: Copy + Send + Sync>(
    n: usize,
    offsets: Vec<u64>,
    targets: Vec<VertexId>,
    weights: Vec<W>,
) -> Adjacency<W> {
    let weighted = std::mem::size_of::<W>() != 0;
    // Per-vertex surviving degree.
    let new_degrees: Vec<u64> = (0..n)
        .into_par_iter()
        .map(|v| {
            let r = offsets[v] as usize..offsets[v + 1] as usize;
            let ts = &targets[r];
            let mut d = 0u64;
            let mut prev: Option<VertexId> = None;
            for &t in ts {
                if prev != Some(t) {
                    d += 1;
                    prev = Some(t);
                }
            }
            d
        })
        .collect();
    let (mut new_offsets, new_m) = prefix_sums(&new_degrees);
    new_offsets.push(new_m);

    let mut new_targets: Vec<VertexId> = vec![0; new_m as usize];
    let mut new_weights: Vec<W> =
        if weighted { Vec::with_capacity(new_m as usize) } else { Vec::new() };
    if weighted && new_m > 0 {
        // Prefill so per-vertex slices can be carved out; every slot is
        // overwritten with the first weight of its run below. (weights is
        // nonempty here: new_m > 0 implies at least one surviving arc.)
        new_weights.extend(std::iter::repeat_n(weights[0], new_m as usize));
    }

    // Writable per-vertex destination slices.
    let mut tpieces: Vec<&mut [VertexId]> = Vec::with_capacity(n);
    {
        let mut rest: &mut [VertexId] = &mut new_targets;
        for v in 0..n {
            let len = (new_offsets[v + 1] - new_offsets[v]) as usize;
            let (head, tail) = rest.split_at_mut(len);
            tpieces.push(head);
            rest = tail;
        }
    }
    let mut wpieces: Vec<&mut [W]> = Vec::with_capacity(if weighted { n } else { 0 });
    if weighted {
        let mut rest: &mut [W] = &mut new_weights;
        for v in 0..n {
            let len = (new_offsets[v + 1] - new_offsets[v]) as usize;
            let (head, tail) = rest.split_at_mut(len);
            wpieces.push(head);
            rest = tail;
        }
    }

    if weighted {
        tpieces.into_par_iter().zip(wpieces.into_par_iter()).enumerate().for_each(
            |(v, (tdst, wdst))| {
                let r = offsets[v] as usize..offsets[v + 1] as usize;
                let ts = &targets[r.clone()];
                let ws = &weights[r];
                let mut o = 0usize;
                let mut prev: Option<VertexId> = None;
                for (i, &t) in ts.iter().enumerate() {
                    if prev != Some(t) {
                        tdst[o] = t;
                        wdst[o] = ws[i];
                        o += 1;
                        prev = Some(t);
                    }
                }
                debug_assert_eq!(o, tdst.len());
            },
        );
    } else {
        tpieces.into_par_iter().enumerate().for_each(|(v, tdst)| {
            let r = offsets[v] as usize..offsets[v + 1] as usize;
            let ts = &targets[r];
            let mut o = 0usize;
            let mut prev: Option<VertexId> = None;
            for &t in ts {
                if prev != Some(t) {
                    tdst[o] = t;
                    o += 1;
                    prev = Some(t);
                }
            }
            debug_assert_eq!(o, tdst.len());
        });
    }

    Adjacency::new(new_offsets, new_targets, new_weights)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn directed_triangle() {
        let g = build_graph(3, &[(0, 1), (1, 2), (2, 0)], BuildOptions::directed());
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 3);
        assert!(!g.is_symmetric());
        assert_eq!(g.out_neighbors(0), &[1]);
        assert_eq!(g.in_neighbors(0), &[2]);
    }

    #[test]
    fn symmetrize_doubles_edges() {
        let g = build_graph(3, &[(0, 1), (1, 2)], BuildOptions::symmetric());
        assert!(g.is_symmetric());
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.out_neighbors(1), &[0, 2]);
    }

    #[test]
    fn self_loops_removed_by_default() {
        let g = build_graph(2, &[(0, 0), (0, 1)], BuildOptions::directed());
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.out_neighbors(0), &[1]);
    }

    #[test]
    fn self_loops_kept_when_raw() {
        let g = build_graph(2, &[(0, 0), (0, 1)], BuildOptions::raw_directed());
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.out_neighbors(0), &[0, 1]);
    }

    #[test]
    fn duplicates_removed() {
        let g = build_graph(3, &[(0, 1), (0, 1), (0, 2)], BuildOptions::directed());
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.out_neighbors(0), &[1, 2]);
    }

    #[test]
    fn duplicates_kept_when_raw() {
        let g = build_graph(3, &[(0, 1), (0, 1)], BuildOptions::raw_directed());
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.out_neighbors(0), &[1, 1]);
        assert_eq!(g.in_neighbors(1), &[0, 0]);
    }

    #[test]
    fn adjacency_lists_are_sorted() {
        let edges = vec![(0u32, 3u32), (0, 1), (0, 2), (1, 0)];
        let g = build_graph(4, &edges, BuildOptions::directed());
        assert_eq!(g.out_neighbors(0), &[1, 2, 3]);
    }

    #[test]
    fn transpose_is_consistent() {
        // Every out-arc must appear as an in-arc.
        let edges: Vec<(u32, u32)> = (0..100u32)
            .flat_map(|i| {
                let u = ligra_parallel::hash32(i) % 50;
                let v = ligra_parallel::hash32(i + 1000) % 50;
                (u != v).then_some((u, v))
            })
            .collect();
        let g = build_graph(50, &edges, BuildOptions::directed());
        for u in 0..50u32 {
            for &v in g.out_neighbors(u) {
                assert!(g.in_neighbors(v).contains(&u), "missing transpose arc {u}->{v}");
            }
        }
        let out_m: usize = (0..50u32).map(|v| g.out_degree(v)).sum();
        let in_m: usize = (0..50u32).map(|v| g.in_degree(v)).sum();
        assert_eq!(out_m, in_m);
        assert_eq!(out_m, g.num_edges());
    }

    #[test]
    fn weighted_build_keeps_weights_aligned() {
        let edges = vec![(0u32, 2u32), (0, 1), (1, 2)];
        let weights = vec![30, 10, 20];
        let g = build_weighted_graph(3, &edges, &weights, BuildOptions::directed());
        // Sorted by target: 0 -> [1 (w=10), 2 (w=30)]
        assert_eq!(g.out_neighbors(0), &[1, 2]);
        assert_eq!(g.out_weights(0), &[10, 30]);
        assert_eq!(g.in_neighbors(2), &[0, 1]);
        assert_eq!(g.in_weights(2), &[30, 20]);
    }

    #[test]
    fn weighted_dedup_keeps_smallest_weight() {
        let edges = vec![(0u32, 1u32), (0, 1)];
        let weights = vec![7, 3];
        let g = build_weighted_graph(2, &edges, &weights, BuildOptions::directed());
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.out_weights(0), &[3]);
    }

    #[test]
    fn empty_graph() {
        let g = build_graph(5, &[], BuildOptions::symmetric());
        assert_eq!(g.num_vertices(), 5);
        assert_eq!(g.num_edges(), 0);
        for v in 0..5 {
            assert!(g.out_neighbors(v).is_empty());
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_endpoint_panics() {
        let _ = build_graph(2, &[(0, 5)], BuildOptions::directed());
    }

    #[test]
    fn empty_weighted_graph_builds() {
        // Regression: dedup used to index weights[0] on zero-edge inputs.
        let g = build_weighted_graph(21, &[], &[], BuildOptions::directed());
        assert_eq!(g.num_edges(), 0);
        let g = build_weighted_graph(3, &[(0, 0)], &[5], BuildOptions::directed());
        assert_eq!(g.num_edges(), 0, "only edge was a removed self-loop");
    }

    #[test]
    fn symmetric_self_loop_not_doubled_when_kept() {
        let g = build_graph(
            2,
            &[(0, 0), (0, 1)],
            BuildOptions { symmetrize: true, remove_self_loops: false, dedup: false },
        );
        // (0,0) once, (0,1) and (1,0): 3 arcs.
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.out_neighbors(0), &[0, 1]);
    }

    #[test]
    fn larger_random_build_roundtrip() {
        // Build from a pseudo-random edge list; verify degrees sum to m and
        // each adjacency is sorted and in range.
        let n = 1000usize;
        let edges: Vec<(u32, u32)> = (0..20_000u32)
            .map(|i| {
                (
                    ligra_parallel::hash32(i) % n as u32,
                    ligra_parallel::hash32(i.wrapping_mul(2654435761)) % n as u32,
                )
            })
            .collect();
        let g = build_graph(n, &edges, BuildOptions::symmetric());
        let deg_sum: usize = (0..n as u32).map(|v| g.out_degree(v)).sum();
        assert_eq!(deg_sum, g.num_edges());
        for v in 0..n as u32 {
            let ns = g.out_neighbors(v);
            assert!(ns.windows(2).all(|w| w[0] < w[1]), "unsorted or dup at {v}");
            assert!(ns.iter().all(|&t| (t as usize) < n));
            assert!(!ns.contains(&v), "self loop survived at {v}");
        }
    }
}
