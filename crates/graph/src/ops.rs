//! Graph transformations: induced subgraphs, relabeling, and component
//! extraction — the preprocessing steps the paper's evaluation pipeline
//! applies to its inputs (e.g. extracting the giant component of a crawl,
//! relabeling by degree for locality).

use crate::builder::{build_graph, BuildOptions};
use crate::csr::{Graph, VertexId};
use ligra_parallel::checked_u32;
use rayon::prelude::*;

/// The subgraph induced by `keep[v]`, with vertices renumbered densely in
/// ascending original-ID order. Returns the graph and the mapping
/// `new_id -> old_id`.
///
/// # Panics
/// Panics if `keep.len() != g.num_vertices()`.
pub fn induced_subgraph(g: &Graph, keep: &[bool]) -> (Graph, Vec<VertexId>) {
    let n = g.num_vertices();
    assert_eq!(keep.len(), n, "one flag per vertex");
    let old_of_new = ligra_parallel::pack::pack_index(keep);
    let mut new_of_old = vec![u32::MAX; n];
    for (new, &old) in old_of_new.iter().enumerate() {
        new_of_old[old as usize] = checked_u32(new);
    }

    let edges: Vec<(VertexId, VertexId)> = old_of_new
        .par_iter()
        .flat_map_iter(|&old_u| {
            let new_of_old = &new_of_old;
            g.out_neighbors(old_u).iter().filter_map(move |&old_v| {
                let new_v = new_of_old[old_v as usize];
                (new_v != u32::MAX).then_some((new_of_old[old_u as usize], new_v))
            })
        })
        .collect();

    let opts = if g.is_symmetric() {
        // Both directions are present in `edges` already; normalize.
        BuildOptions::symmetric()
    } else {
        BuildOptions::directed()
    };
    (build_graph(old_of_new.len(), &edges, opts), old_of_new)
}

/// Relabels vertices by non-increasing out-degree (ties by original ID):
/// hub vertices get the lowest IDs, which improves cache locality of
/// frontier operations on power-law graphs. Returns the relabeled graph
/// and the mapping `new_id -> old_id`.
pub fn relabel_by_degree(g: &Graph) -> (Graph, Vec<VertexId>) {
    let n = g.num_vertices();
    let mut order: Vec<VertexId> = (0..checked_u32(n)).collect();
    order.par_sort_unstable_by_key(|&v| (std::cmp::Reverse(g.out_degree(v)), v));
    let mut new_of_old = vec![0u32; n];
    for (new, &old) in order.iter().enumerate() {
        new_of_old[old as usize] = checked_u32(new);
    }

    let edges: Vec<(VertexId, VertexId)> = (0..checked_u32(n))
        .into_par_iter()
        .flat_map_iter(|old_u| {
            let new_of_old = &new_of_old;
            g.out_neighbors(old_u)
                .iter()
                .map(move |&old_v| (new_of_old[old_u as usize], new_of_old[old_v as usize]))
        })
        .collect();

    let opts = if g.is_symmetric() { BuildOptions::symmetric() } else { BuildOptions::directed() };
    (build_graph(n, &edges, opts), order)
}

/// Extracts the largest connected component of a symmetric graph (by a
/// sequential union-find pass — a preprocessing utility, not one of the
/// parallel applications). Returns the component as a renumbered graph
/// plus the `new_id -> old_id` mapping.
///
/// # Panics
/// Panics if `g` is not symmetric or has no vertices.
pub fn largest_component(g: &Graph) -> (Graph, Vec<VertexId>) {
    assert!(g.is_symmetric(), "component extraction requires a symmetric graph");
    let n = g.num_vertices();
    assert!(n > 0);

    let mut uf: Vec<u32> = (0..checked_u32(n)).collect();
    fn find(uf: &mut [u32], mut x: u32) -> u32 {
        while uf[x as usize] != x {
            let gp = uf[uf[x as usize] as usize];
            uf[x as usize] = gp;
            x = gp;
        }
        x
    }
    for u in 0..checked_u32(n) {
        for &v in g.out_neighbors(u) {
            let (ru, rv) = (find(&mut uf, u), find(&mut uf, v));
            if ru != rv {
                if ru < rv {
                    uf[rv as usize] = ru;
                } else {
                    uf[ru as usize] = rv;
                }
            }
        }
    }
    let mut sizes = std::collections::HashMap::new();
    for v in 0..checked_u32(n) {
        *sizes.entry(find(&mut uf, v)).or_insert(0usize) += 1;
    }
    let (&best, _) = sizes
        .iter()
        .max_by_key(|&(&root, &size)| (size, std::cmp::Reverse(root)))
        .expect("n > 0: every vertex has a component");
    let keep: Vec<bool> = (0..checked_u32(n)).map(|v| find(&mut uf, v) == best).collect();
    induced_subgraph(g, &keep)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{erdos_renyi, path, star};

    #[test]
    fn induced_subgraph_of_path_middle() {
        let g = path(5); // 0-1-2-3-4
        let keep = vec![false, true, true, true, false];
        let (sub, mapping) = induced_subgraph(&g, &keep);
        assert_eq!(mapping, vec![1, 2, 3]);
        assert_eq!(sub.num_vertices(), 3);
        assert_eq!(sub.num_edges(), 4); // 1-2, 2-3 symmetric
        assert_eq!(sub.out_neighbors(1), &[0, 2]);
    }

    #[test]
    fn induced_subgraph_keeps_nothing_or_everything() {
        let g = star(6);
        let (empty, m) = induced_subgraph(&g, &[false; 6]);
        assert_eq!(empty.num_vertices(), 0);
        assert!(m.is_empty());
        let (full, m) = induced_subgraph(&g, &[true; 6]);
        assert_eq!(full.num_edges(), g.num_edges());
        assert_eq!(m, (0..6u32).collect::<Vec<_>>());
    }

    #[test]
    fn relabel_by_degree_puts_hub_first() {
        let g = star(10);
        let (relabeled, order) = relabel_by_degree(&g);
        assert_eq!(order[0], 0, "hub must become vertex 0");
        assert_eq!(relabeled.out_degree(0), 9);
        assert!((1..10u32).all(|v| relabeled.out_degree(v) == 1));
        assert_eq!(relabeled.num_edges(), g.num_edges());
    }

    #[test]
    fn relabel_preserves_structure() {
        let g = erdos_renyi(200, 1500, 1, true);
        let (r, order) = relabel_by_degree(&g);
        assert_eq!(r.num_edges(), g.num_edges());
        // Degrees are a permutation; new IDs are sorted by degree.
        for w in 0..(r.num_vertices() - 1) as u32 {
            assert!(r.out_degree(w) >= r.out_degree(w + 1));
        }
        // Edge (a, b) in new IDs corresponds to (order[a], order[b]) in old.
        for a in 0..r.num_vertices() as u32 {
            for &b in r.out_neighbors(a) {
                assert!(g
                    .out_neighbors(order[a as usize])
                    .binary_search(&order[b as usize])
                    .is_ok());
            }
        }
    }

    #[test]
    fn largest_component_of_two_paths() {
        // Components {0,1,2} and {3,4}.
        let g = crate::build_graph(5, &[(0, 1), (1, 2), (3, 4)], BuildOptions::symmetric());
        let (big, mapping) = largest_component(&g);
        assert_eq!(big.num_vertices(), 3);
        assert_eq!(mapping, vec![0, 1, 2]);
        assert_eq!(big.num_edges(), 4);
    }

    #[test]
    fn largest_component_of_connected_graph_is_identity() {
        let g = path(10);
        let (big, mapping) = largest_component(&g);
        assert_eq!(big.num_vertices(), 10);
        assert_eq!(mapping, (0..10u32).collect::<Vec<_>>());
    }
}
