//! Structural checks and summary statistics.

use crate::csr::{Graph, VertexId};
use ligra_parallel::checked_u32;
use rayon::prelude::*;

/// Summary statistics for a graph — the columns of the paper's Table 1
/// plus degree information used to pick traversal sources.
#[derive(Debug, Clone)]
pub struct GraphStats {
    /// Vertex count `n`.
    pub num_vertices: usize,
    /// Directed edge (arc) count `m`.
    pub num_edges: usize,
    /// Whether a single CSR serves both directions.
    pub symmetric: bool,
    /// Maximum out-degree and a vertex attaining it.
    pub max_degree: (VertexId, usize),
    /// Average out-degree `m / n`.
    pub avg_degree: f64,
    /// Number of isolated (degree-0 in both directions) vertices.
    pub isolated: usize,
}

impl GraphStats {
    /// Computes statistics for `g`.
    pub fn of<W: Copy + Send + Sync>(g: &Graph<W>) -> Self {
        let n = g.num_vertices();
        let isolated = (0..n)
            .into_par_iter()
            .filter(|&v| {
                let v = checked_u32(v);
                g.out_degree(v) == 0 && g.in_degree(v) == 0
            })
            .count();
        GraphStats {
            num_vertices: n,
            num_edges: g.num_edges(),
            symmetric: g.is_symmetric(),
            max_degree: g.max_out_degree(),
            avg_degree: if n == 0 { 0.0 } else { g.num_edges() as f64 / n as f64 },
            isolated,
        }
    }
}

/// Checks CSR invariants, panicking with a description on violation:
/// targets in range, adjacency lists sorted, and (directed graphs) the
/// in-CSR being the exact transpose of the out-CSR.
pub fn assert_valid<W: Copy + Send + Sync>(g: &Graph<W>) {
    let n = g.num_vertices();
    (0..n).into_par_iter().for_each(|v| {
        let v = checked_u32(v);
        let ns = g.out_neighbors(v);
        assert!(ns.iter().all(|&t| (t as usize) < n), "out-neighbor of {v} out of range");
        assert!(ns.windows(2).all(|w| w[0] <= w[1]), "out-neighbors of {v} not sorted");
        let ins = g.in_neighbors(v);
        assert!(ins.iter().all(|&t| (t as usize) < n), "in-neighbor of {v} out of range");
    });
    if !g.is_symmetric() {
        // Arc counts per direction must agree.
        let out_m: usize = (0..n).into_par_iter().map(|v| g.out_degree(checked_u32(v))).sum();
        let in_m: usize = (0..n).into_par_iter().map(|v| g.in_degree(checked_u32(v))).sum();
        assert_eq!(out_m, in_m, "transpose arc count mismatch");
        // Every out-arc appears in the target's in-list.
        (0..n).into_par_iter().for_each(|u| {
            let u = checked_u32(u);
            for &v in g.out_neighbors(u) {
                assert!(
                    g.in_neighbors(v).binary_search(&u).is_ok(),
                    "arc {u}->{v} missing from transpose"
                );
            }
        });
    }
}

/// True iff for every arc `u -> v` the reverse arc `v -> u` exists in the
/// out-CSR. (Structurally-directed graphs can still be symmetric.)
pub fn is_symmetric<W: Copy + Send + Sync>(g: &Graph<W>) -> bool {
    let n = g.num_vertices();
    (0..n).into_par_iter().all(|u| {
        let u = checked_u32(u);
        g.out_neighbors(u).iter().all(|&v| g.out_neighbors(v).binary_search(&u).is_ok())
    })
}

/// True iff the graph contains an arc `v -> v`.
pub fn has_self_loops<W: Copy + Send + Sync>(g: &Graph<W>) -> bool {
    let n = g.num_vertices();
    (0..n).into_par_iter().any(|v| {
        let v = checked_u32(v);
        g.out_neighbors(v).binary_search(&v).is_ok()
    })
}

/// Out-degree histogram capped at `max_bucket`: `out[d]` is the number of
/// vertices with out-degree `d` (the last bucket absorbs larger degrees).
/// Used to report the degree-distribution shape for the rMat inputs.
pub fn degree_histogram<W: Copy + Send + Sync>(g: &Graph<W>, max_bucket: usize) -> Vec<usize> {
    let mut hist = vec![0usize; max_bucket + 1];
    for v in 0..g.num_vertices() {
        let d = g.out_degree(checked_u32(v)).min(max_bucket);
        hist[d] += 1;
    }
    hist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{build_graph, BuildOptions};
    use crate::generators::{erdos_renyi, star};

    #[test]
    fn stats_of_star() {
        let g = star(10);
        let s = GraphStats::of(&g);
        assert_eq!(s.num_vertices, 10);
        assert_eq!(s.num_edges, 18);
        assert_eq!(s.max_degree, (0, 9));
        assert!(s.symmetric);
        assert_eq!(s.isolated, 0);
    }

    #[test]
    fn isolated_vertices_counted() {
        let g = build_graph(5, &[(0, 1)], BuildOptions::directed());
        let s = GraphStats::of(&g);
        assert_eq!(s.isolated, 3);
    }

    #[test]
    fn symmetry_detection() {
        let sym = erdos_renyi(100, 500, 1, true);
        assert!(is_symmetric(&sym));
        let dir = build_graph(3, &[(0, 1), (1, 2)], BuildOptions::directed());
        assert!(!is_symmetric(&dir));
    }

    #[test]
    fn self_loop_detection() {
        let with = build_graph(3, &[(1, 1), (0, 2)], BuildOptions::raw_directed());
        assert!(has_self_loops(&with));
        let without = build_graph(3, &[(0, 1)], BuildOptions::directed());
        assert!(!has_self_loops(&without));
    }

    #[test]
    fn degree_histogram_sums_to_n() {
        let g = erdos_renyi(1000, 5000, 2, true);
        let h = degree_histogram(&g, 32);
        assert_eq!(h.iter().sum::<usize>(), 1000);
    }

    #[test]
    #[should_panic(expected = "missing from transpose")]
    fn invalid_transpose_is_caught() {
        use crate::csr::{Adjacency, Graph};
        // in-CSR deliberately wrong: claims 1 -> 0 instead of 0 -> 1's
        // transpose arc living at vertex 1.
        let out = Adjacency::new(vec![0, 1, 1], vec![1], vec![()]);
        let bad_in = Adjacency::new(vec![0, 1, 1], vec![1], vec![()]);
        let g = Graph::directed(out, bad_in);
        assert_valid(&g);
    }
}
