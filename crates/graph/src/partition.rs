//! Cache-fitting vertex partitions for the partitioned (scatter/gather)
//! traversal.
//!
//! Vertex IDs are split into contiguous segments of `1 << bits` vertices.
//! A segment is sized so its hot per-vertex state (the destination-indexed
//! algorithm array plus the output frontier bits, ~[`STATE_BYTES_PER_VERTEX`]
//! bytes each) fits in about half the last-level cache a core can count on
//! ([`SEGMENT_TARGET_BYTES`]): the gather phase then touches one segment's
//! state at a time and every access after the first is a cache hit. Because
//! partitions are contiguous ID ranges, the per-partition CSC slice is just
//! a sub-range of the in-CSR — rows `range(p)` of the transpose — so the
//! partitioning stores only per-partition aggregate counts, not copies.
//!
//! `bits` is clamped to at least [`MIN_BITS`] so every partition boundary is
//! a multiple of 64: a partition then owns whole words of the packed dense
//! frontier, which is what lets the gather phase write its output bitset
//! with plain (non-atomic) stores.

use crate::csr::{Adjacency, VertexId};

/// Smallest permitted partition width (log2). 64-vertex alignment keeps
/// every partition boundary on a packed-bitset word boundary, so the
/// gather phase's plain-write output stays exclusive per partition.
pub const MIN_BITS: u32 = 6;

/// Largest permitted partition width (log2); beyond the u32 ID space
/// nothing is gained.
pub const MAX_BITS: u32 = 31;

/// Per-segment budget for hot gather-phase state: ~half of a
/// conservative per-core last-level cache share.
pub const SEGMENT_TARGET_BYTES: usize = 1 << 19;

/// Bytes of destination-indexed state the gather phase touches per
/// vertex (a 4-byte algorithm value plus frontier/visited bits, rounded
/// up): sizing denominator for the default partition width.
pub const STATE_BYTES_PER_VERTEX: usize = 8;

/// Smallest vertex count for which the `Auto` heuristic will consider
/// upgrading a dense round to the partitioned traversal. Below this the
/// whole destination state fits in cache anyway and the scatter pass is
/// pure overhead. Overridable via `LIGRA_PARTITION_MIN_N`.
pub const MIN_N: usize = 1 << 18;

/// The effective auto-upgrade floor: [`MIN_N`] unless the
/// `LIGRA_PARTITION_MIN_N` environment variable parses as a `usize`.
pub fn partition_min_n() -> usize {
    match std::env::var("LIGRA_PARTITION_MIN_N") {
        Ok(s) => s.trim().parse().unwrap_or(MIN_N),
        Err(_) => MIN_N,
    }
}

/// The default partition width (log2 vertices) for a graph of `n`
/// vertices: the `LIGRA_PARTITION_BITS` environment variable when it
/// parses, else sized so a segment's state fits [`SEGMENT_TARGET_BYTES`].
/// Always clamped to `[MIN_BITS, MAX_BITS]`.
pub fn default_bits(n: usize) -> u32 {
    let from_env =
        std::env::var("LIGRA_PARTITION_BITS").ok().and_then(|s| s.trim().parse::<u32>().ok());
    let bits = from_env.unwrap_or_else(|| {
        let per_segment = (SEGMENT_TARGET_BYTES / STATE_BYTES_PER_VERTEX).max(64);
        let _ = n; // the width is cache-sized, not n-sized; n only matters downstream
        per_segment.ilog2()
    });
    bits.clamp(MIN_BITS, MAX_BITS)
}

/// Contiguous cache-fitting vertex segments plus per-segment in-edge
/// counts (the CSC slice sizes the gather phase will stream).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partitioning {
    bits: u32,
    n: usize,
    in_edges: Box<[u64]>,
}

impl Partitioning {
    /// Partitions the `n` vertices of `adj` (read as the in-direction
    /// CSR) into segments of `1 << bits` vertices, counting each
    /// segment's in-edges from the offset array. `bits` is clamped to
    /// `[MIN_BITS, MAX_BITS]`.
    pub fn of<W: Copy + Send + Sync>(adj: &Adjacency<W>, bits: u32) -> Self {
        let bits = bits.clamp(MIN_BITS, MAX_BITS);
        let n = adj.num_vertices();
        // An overlaid direction has no contiguous offset array for its
        // view; fall back to the per-vertex degree path.
        if adj.has_overlay() {
            return Self::from_degrees(n, bits, |v| adj.degree(v) as u64);
        }
        let num = n.div_ceil(1usize << bits).max(1);
        let offsets = adj.offsets();
        let in_edges: Box<[u64]> = (0..num)
            .map(|p| {
                let lo = p << bits;
                let hi = ((p + 1) << bits).min(n);
                offsets[hi] - offsets[lo]
            })
            .collect();
        Partitioning { bits, n, in_edges }
    }

    /// Partitions `n` vertices with per-vertex in-degrees supplied by a
    /// callback — for representations without a materialized offset array
    /// (the compressed graph only exposes decoded degrees). `bits` is
    /// clamped to `[MIN_BITS, MAX_BITS]`.
    pub fn from_degrees(n: usize, bits: u32, in_degree: impl Fn(VertexId) -> u64) -> Self {
        let bits = bits.clamp(MIN_BITS, MAX_BITS);
        let num = n.div_ceil(1usize << bits).max(1);
        let in_edges: Box<[u64]> = (0..num)
            .map(|p| {
                let lo = p << bits;
                let hi = ((p + 1) << bits).min(n);
                (lo..hi).map(|v| in_degree(ligra_parallel::checked_u32(v))).sum()
            })
            .collect();
        Partitioning { bits, n, in_edges }
    }

    /// log2 of the partition width in vertices.
    #[inline]
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Number of partitions (≥ 1).
    #[inline]
    pub fn num_partitions(&self) -> usize {
        self.in_edges.len()
    }

    /// Number of vertices partitioned.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// The partition vertex `v` belongs to.
    #[inline]
    pub fn partition_of(&self, v: VertexId) -> usize {
        (v >> self.bits) as usize
    }

    /// The contiguous vertex-ID range partition `p` owns (the last
    /// partition's range is clamped to `n`).
    #[inline]
    pub fn range(&self, p: usize) -> std::ops::Range<usize> {
        let lo = p << self.bits;
        let hi = ((p + 1) << self.bits).min(self.n);
        lo..hi
    }

    /// In-edges whose target lies in partition `p` — the size of the
    /// partition's CSC slice.
    #[inline]
    pub fn in_edges(&self, p: usize) -> u64 {
        self.in_edges[p]
    }

    /// Σ over partitions of [`Self::in_edges`].
    pub fn total_in_edges(&self) -> u64 {
        self.in_edges.iter().sum()
    }

    /// Packed-bitset words per full partition. Guaranteed whole because
    /// `bits >= MIN_BITS`.
    #[inline]
    pub fn words_per_partition(&self) -> usize {
        (1usize << self.bits) / 64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain(n: usize) -> Adjacency {
        // v -> v+1 for all v < n-1; in-degree 1 everywhere except vertex 0.
        let mut offsets = Vec::with_capacity(n + 1);
        let mut targets = Vec::new();
        offsets.push(0);
        for v in 0..n {
            if v + 1 < n {
                targets.push((v + 1) as VertexId);
            }
            offsets.push(targets.len() as u64);
        }
        Adjacency::new(offsets, targets.clone(), vec![(); targets.len()])
    }

    #[test]
    fn ranges_tile_the_id_space() {
        let adj = chain(300);
        let p = Partitioning::of(&adj, 6);
        assert_eq!(p.bits(), 6);
        assert_eq!(p.num_partitions(), 300usize.div_ceil(64));
        let mut covered = 0;
        for i in 0..p.num_partitions() {
            let r = p.range(i);
            assert_eq!(r.start, covered);
            covered = r.end;
            for v in r.clone() {
                assert_eq!(p.partition_of(v as VertexId), i);
            }
        }
        assert_eq!(covered, 300);
    }

    #[test]
    fn in_edge_counts_come_from_offsets() {
        // transpose of the chain: in-edges of partition 0 (vertices 0..64)
        // are the 63 arcs into 1..=63 when read as an in-CSR.
        let adj = chain(130);
        let p = Partitioning::of(&adj, 6);
        assert_eq!(p.num_partitions(), 3);
        assert_eq!(p.total_in_edges(), adj.num_edges() as u64);
        let by_hand: u64 = (0..3)
            .map(|i| {
                let r = p.range(i);
                r.map(|v| adj.degree(v as VertexId) as u64).sum::<u64>()
            })
            .sum();
        assert_eq!(by_hand, p.total_in_edges());
    }

    #[test]
    fn bits_are_clamped_to_word_alignment() {
        let adj = chain(64);
        let p = Partitioning::of(&adj, 0);
        assert_eq!(p.bits(), MIN_BITS);
        assert_eq!(p.words_per_partition(), 1);
        assert_eq!(p.num_partitions(), 1);
    }

    #[test]
    fn empty_graph_gets_one_partition() {
        let adj: Adjacency = Adjacency::new(vec![0], vec![], vec![]);
        let p = Partitioning::of(&adj, 10);
        assert_eq!(p.num_partitions(), 1);
        assert_eq!(p.range(0), 0..0);
        assert_eq!(p.total_in_edges(), 0);
    }

    #[test]
    fn from_degrees_matches_offset_construction() {
        let adj = chain(130);
        let a = Partitioning::of(&adj, 6);
        let b = Partitioning::from_degrees(130, 6, |v| adj.degree(v) as u64);
        assert_eq!(a, b);
    }

    #[test]
    fn default_bits_is_cache_sized_and_clamped() {
        let b = default_bits(1 << 22);
        assert!((MIN_BITS..=MAX_BITS).contains(&b));
        // 2^bits vertices x STATE_BYTES_PER_VERTEX must not blow the target
        // (unless the env override says otherwise, which tests don't set).
        if std::env::var("LIGRA_PARTITION_BITS").is_err() {
            assert!((1usize << b) * STATE_BYTES_PER_VERTEX <= SEGMENT_TARGET_BYTES);
        }
    }
}
