//! PBBS `AdjacencyGraph` text format — the input format of the original
//! Ligra implementation.
//!
//! ```text
//! AdjacencyGraph        (or WeightedAdjacencyGraph)
//! <n>
//! <m>
//! <offset 0>            n offset lines
//! ...
//! <target 0>            m target lines
//! ...
//! <weight 0>            m weight lines (weighted format only)
//! ```
//!
//! Parsing accepts any ASCII whitespace between tokens, so files written
//! one-token-per-line or space-separated both load.

use crate::csr::{Adjacency, Graph, WeightedGraph};
use ligra_parallel::checked_u32;
use std::fmt::Write as _;
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

const UNWEIGHTED_HEADER: &str = "AdjacencyGraph";
const WEIGHTED_HEADER: &str = "WeightedAdjacencyGraph";

/// Errors from reading an adjacency-graph file.
#[derive(Debug)]
pub enum IoError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Structural problem with the file contents.
    Parse(String),
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "i/o error: {e}"),
            IoError::Parse(m) => write!(f, "parse error: {m}"),
        }
    }
}

impl std::error::Error for IoError {}

impl From<io::Error> for IoError {
    fn from(e: io::Error) -> Self {
        IoError::Io(e)
    }
}

fn parse_err(msg: impl Into<String>) -> IoError {
    IoError::Parse(msg.into())
}

/// Streaming whitespace-separated token reader.
struct Tokens<R: BufRead> {
    reader: R,
    buf: String,
}

impl<R: BufRead> Tokens<R> {
    fn new(reader: R) -> Self {
        Tokens { reader, buf: String::new() }
    }

    /// Next whitespace-delimited token, or `None` at EOF. Blank lines are
    /// plain whitespace, and a `#` outside a token comments out the rest
    /// of its line (annotated files from preprocessing scripts load
    /// as-is).
    fn next(&mut self) -> Result<Option<&str>, IoError> {
        self.buf.clear();
        // Skip leading whitespace and `#`-to-end-of-line comments.
        let mut in_comment = false;
        loop {
            let (skip, chunk_len) = {
                let b = self.reader.fill_buf()?;
                if b.is_empty() {
                    return Ok(None);
                }
                let mut skip = 0;
                for &c in b {
                    if in_comment {
                        in_comment = c != b'\n';
                    } else if c == b'#' {
                        in_comment = true;
                    } else if !c.is_ascii_whitespace() {
                        break;
                    }
                    skip += 1;
                }
                (skip, b.len())
            };
            self.reader.consume(skip);
            if skip < chunk_len {
                break; // next byte is part of a token
            }
        }
        // Accumulate token bytes (may span buffer refills).
        loop {
            let (take, chunk_len) = {
                let b = self.reader.fill_buf()?;
                if b.is_empty() {
                    break;
                }
                let take = b.iter().take_while(|c| !c.is_ascii_whitespace()).count();
                self.buf.push_str(
                    std::str::from_utf8(&b[..take]).map_err(|_| parse_err("non-UTF8 token"))?,
                );
                (take, b.len())
            };
            self.reader.consume(take);
            if take < chunk_len {
                break; // hit whitespace inside the chunk
            }
        }
        if self.buf.is_empty() {
            Ok(None)
        } else {
            Ok(Some(&self.buf))
        }
    }

    fn expect_u64(&mut self, what: &str) -> Result<u64, IoError> {
        match self.next()? {
            Some(t) => t.parse().map_err(|_| parse_err(format!("bad {what}: {t:?}"))),
            None => Err(parse_err(format!("unexpected EOF reading {what}"))),
        }
    }

    fn expect_i64(&mut self, what: &str) -> Result<i64, IoError> {
        match self.next()? {
            Some(t) => t.parse().map_err(|_| parse_err(format!("bad {what}: {t:?}"))),
            None => Err(parse_err(format!("unexpected EOF reading {what}"))),
        }
    }
}

/// Cap on speculative preallocation from file-supplied counts. A
/// corrupted header can claim absurd `n`/`m`; reserving at most this many
/// entries up front (and letting `push` grow to the real, token-backed
/// size) turns a bit-flipped count into a parse error instead of an
/// allocation abort.
const MAX_PREALLOC: usize = 1 << 22;

fn read_csr_body<R: BufRead, W, F>(
    toks: &mut Tokens<R>,
    mut read_weights: F,
) -> Result<Adjacency<W>, IoError>
where
    W: Copy + Send + Sync,
    F: FnMut(&mut Tokens<R>, usize) -> Result<Vec<W>, IoError>,
{
    let n64 = toks.expect_u64("vertex count")?;
    // Vertex ids are u32 throughout the CSR; a larger claimed n could
    // also push `checked_u32` on targets into a panic.
    if n64 > u32::MAX as u64 + 1 {
        return Err(parse_err(format!("vertex count {n64} exceeds the u32 id space")));
    }
    let n = n64 as usize;
    let m = toks.expect_u64("edge count")? as usize;
    let mut offsets = Vec::with_capacity((n + 1).min(MAX_PREALLOC));
    for i in 0..n {
        let o = toks.expect_u64("offset")?;
        if o > m as u64 {
            return Err(parse_err(format!("offset {o} of vertex {i} exceeds m = {m}")));
        }
        offsets.push(o);
    }
    offsets.push(m as u64);
    if offsets[0] != 0 {
        return Err(parse_err(format!("first offset must be 0, got {}", offsets[0])));
    }
    if !offsets.windows(2).all(|w| w[0] <= w[1]) {
        return Err(parse_err("offsets are not monotone"));
    }
    let mut targets = Vec::with_capacity(m.min(MAX_PREALLOC));
    for _ in 0..m {
        let t = toks.expect_u64("edge target")?;
        if t >= n as u64 {
            return Err(parse_err(format!("edge target {t} out of range (n = {n})")));
        }
        targets.push(checked_u32(t));
    }
    let weights = read_weights(toks, m)?;
    Ok(Adjacency::new(offsets, targets, weights))
}

/// Reads an unweighted `AdjacencyGraph`.
///
/// `symmetric` declares how to interpret the CSR: `true` wraps it as a
/// symmetric graph (caller promises each edge appears in both lists, as
/// Ligra's `-s` flag does); `false` builds the transpose for the in-CSR.
pub fn read_adjacency_graph<R: Read>(reader: R, symmetric: bool) -> Result<Graph, IoError> {
    let mut toks = Tokens::new(BufReader::new(reader));
    match toks.next()? {
        Some(h) if h == UNWEIGHTED_HEADER => {}
        Some(h) => return Err(parse_err(format!("expected {UNWEIGHTED_HEADER}, got {h:?}"))),
        None => return Err(parse_err("empty file")),
    }
    let adj = read_csr_body(&mut toks, |_, _| Ok(vec![(); 0]))?;
    // The unit-weight vector length is unchecked for W = (); normalize.
    finish_graph(adj, symmetric)
}

/// Reads a `WeightedAdjacencyGraph`.
pub fn read_weighted_adjacency_graph<R: Read>(
    reader: R,
    symmetric: bool,
) -> Result<WeightedGraph, IoError> {
    let mut toks = Tokens::new(BufReader::new(reader));
    match toks.next()? {
        Some(h) if h == WEIGHTED_HEADER => {}
        Some(h) => return Err(parse_err(format!("expected {WEIGHTED_HEADER}, got {h:?}"))),
        None => return Err(parse_err("empty file")),
    }
    let adj = read_csr_body(&mut toks, |toks, m| {
        let mut ws = Vec::with_capacity(m.min(MAX_PREALLOC));
        for _ in 0..m {
            ws.push(toks.expect_i64("edge weight")? as i32);
        }
        Ok(ws)
    })?;
    finish_graph(adj, symmetric)
}

fn finish_graph<W: Copy + Send + Sync>(
    adj: Adjacency<W>,
    symmetric: bool,
) -> Result<Graph<W>, IoError> {
    if symmetric {
        Ok(Graph::symmetric(adj))
    } else {
        Ok(Graph::directed_from_out(adj))
    }
}

/// Writes `g`'s out-CSR in `AdjacencyGraph` format.
pub fn write_adjacency_graph<W: Write>(g: &Graph, writer: W) -> io::Result<()> {
    let mut w = BufWriter::new(writer);
    writeln!(w, "{UNWEIGHTED_HEADER}")?;
    write_csr_body(g, &mut w, |_, _| Ok(()))?;
    w.flush()
}

/// Writes `g`'s out-CSR in `WeightedAdjacencyGraph` format.
pub fn write_weighted_adjacency_graph<W: Write>(g: &WeightedGraph, writer: W) -> io::Result<()> {
    let mut w = BufWriter::new(writer);
    writeln!(w, "{WEIGHTED_HEADER}")?;
    write_csr_body(g, &mut w, |g, w| {
        let mut buf = String::new();
        for &wt in g.out_adj().weight_slice() {
            buf.clear();
            let _ = writeln!(buf, "{wt}");
            w.write_all(buf.as_bytes())?;
        }
        Ok(())
    })?;
    w.flush()
}

fn write_csr_body<Wt, W, F>(g: &Graph<Wt>, w: &mut BufWriter<W>, weights: F) -> io::Result<()>
where
    Wt: Copy + Send + Sync,
    W: Write,
    F: Fn(&Graph<Wt>, &mut BufWriter<W>) -> io::Result<()>,
{
    // The raw-array walk below needs a contiguous CSR; flatten any live
    // delta overlay first (cheap clone otherwise).
    let compacted;
    let g = if g.has_overlay() {
        compacted = g.compacted();
        &compacted
    } else {
        g
    };
    let n = g.num_vertices();
    let m = g.num_edges();
    writeln!(w, "{n}")?;
    writeln!(w, "{m}")?;
    let mut buf = String::new();
    for &o in &g.out_adj().offsets()[..n] {
        buf.clear();
        let _ = writeln!(buf, "{o}");
        w.write_all(buf.as_bytes())?;
    }
    for &t in g.out_adj().targets() {
        buf.clear();
        let _ = writeln!(buf, "{t}");
        w.write_all(buf.as_bytes())?;
    }
    weights(g, w)
}

/// Convenience: read an unweighted graph from a file path.
pub fn load_graph(path: impl AsRef<Path>, symmetric: bool) -> Result<Graph, IoError> {
    read_adjacency_graph(std::fs::File::open(path)?, symmetric)
}

/// Convenience: write an unweighted graph to a file path.
pub fn save_graph(g: &Graph, path: impl AsRef<Path>) -> io::Result<()> {
    write_adjacency_graph(g, std::fs::File::create(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{build_graph, build_weighted_graph, BuildOptions};
    use crate::generators::erdos_renyi;

    #[test]
    fn roundtrip_unweighted_symmetric() {
        let g = erdos_renyi(100, 800, 1, true);
        let mut buf = Vec::new();
        write_adjacency_graph(&g, &mut buf).unwrap();
        let g2 = read_adjacency_graph(&buf[..], true).unwrap();
        assert_eq!(g.num_vertices(), g2.num_vertices());
        assert_eq!(g.num_edges(), g2.num_edges());
        for v in 0..g.num_vertices() as u32 {
            assert_eq!(g.out_neighbors(v), g2.out_neighbors(v));
        }
    }

    #[test]
    fn roundtrip_directed_rebuilds_transpose() {
        let g = build_graph(4, &[(0, 1), (0, 2), (3, 1)], BuildOptions::directed());
        let mut buf = Vec::new();
        write_adjacency_graph(&g, &mut buf).unwrap();
        let g2 = read_adjacency_graph(&buf[..], false).unwrap();
        assert!(!g2.is_symmetric());
        assert_eq!(g2.in_neighbors(1), &[0, 3]);
        crate::properties::assert_valid(&g2);
    }

    #[test]
    fn roundtrip_weighted() {
        let g = build_weighted_graph(
            3,
            &[(0, 1), (1, 2), (2, 0)],
            &[5, -2, 7],
            BuildOptions::directed(),
        );
        let mut buf = Vec::new();
        write_weighted_adjacency_graph(&g, &mut buf).unwrap();
        let g2 = read_weighted_adjacency_graph(&buf[..], false).unwrap();
        assert_eq!(g2.out_weights(0), &[5]);
        assert_eq!(g2.out_weights(1), &[-2]);
        assert_eq!(g2.out_weights(2), &[7]);
    }

    #[test]
    fn parses_space_separated_tokens() {
        let text = "AdjacencyGraph 3 2 0 1 2 1 2";
        let g = read_adjacency_graph(text.as_bytes(), true).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.out_neighbors(0), &[1]);
        assert_eq!(g.out_neighbors(1), &[2]);
    }

    #[test]
    fn comments_and_blank_lines_are_skipped() {
        let text = "# graph exported by prep.py\n\nAdjacencyGraph  # header\n\n3 # n\n2 # m\n\
                    \n0\n1 2  # offsets end, targets follow\n1\n2\n# trailing note\n";
        let g = read_adjacency_graph(text.as_bytes(), true).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.out_neighbors(0), &[1]);
        assert_eq!(g.out_neighbors(1), &[2]);
    }

    #[test]
    fn annotated_file_round_trips_through_writer() {
        let g = erdos_renyi(40, 200, 2, true);
        let mut canonical = Vec::new();
        write_adjacency_graph(&g, &mut canonical).unwrap();
        // Splice comments and blank lines into the canonical text, then
        // re-read and compare structure exactly.
        let body = String::from_utf8(canonical.clone()).unwrap();
        let mut noisy = String::from("# banner\n\n");
        for (i, line) in body.lines().enumerate() {
            noisy.push_str(line);
            if i % 7 == 0 {
                noisy.push_str("  # note");
            }
            noisy.push('\n');
            if i % 11 == 0 {
                noisy.push('\n');
            }
        }
        let g2 = read_adjacency_graph(noisy.as_bytes(), true).unwrap();
        assert_eq!(g.num_vertices(), g2.num_vertices());
        assert_eq!(g.num_edges(), g2.num_edges());
        for v in 0..g.num_vertices() as u32 {
            assert_eq!(g.out_neighbors(v), g2.out_neighbors(v));
        }
        // And the comment-free writer output of the re-read graph matches
        // the original canonical bytes.
        let mut rewritten = Vec::new();
        write_adjacency_graph(&g2, &mut rewritten).unwrap();
        assert_eq!(canonical, rewritten);
    }

    #[test]
    fn comment_only_file_is_empty_not_a_panic() {
        let text = "# nothing here\n# really\n";
        assert!(matches!(read_adjacency_graph(text.as_bytes(), true), Err(IoError::Parse(_))));
    }

    #[test]
    fn rejects_wrong_header() {
        let text = "NotAGraph\n1\n0\n0\n";
        assert!(matches!(read_adjacency_graph(text.as_bytes(), true), Err(IoError::Parse(_))));
    }

    #[test]
    fn rejects_truncated_file() {
        let text = "AdjacencyGraph\n3\n2\n0\n1\n";
        assert!(read_adjacency_graph(text.as_bytes(), true).is_err());
    }

    #[test]
    fn rejects_out_of_range_target() {
        let text = "AdjacencyGraph\n2\n1\n0\n1\n5\n";
        let e = read_adjacency_graph(text.as_bytes(), true).unwrap_err();
        assert!(e.to_string().contains("out of range"), "{e}");
    }

    #[test]
    fn rejects_non_monotone_offsets() {
        let text = "AdjacencyGraph\n3\n2\n0\n2\n1\n0\n1\n";
        let e = read_adjacency_graph(text.as_bytes(), true).unwrap_err();
        assert!(e.to_string().contains("monotone"), "{e}");
    }

    #[test]
    fn file_path_roundtrip() {
        let g = erdos_renyi(30, 100, 4, true);
        let dir = std::env::temp_dir().join("ligra_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.adj");
        save_graph(&g, &path).unwrap();
        let g2 = load_graph(&path, true).unwrap();
        assert_eq!(g.num_edges(), g2.num_edges());
        std::fs::remove_file(&path).unwrap();
    }
}
