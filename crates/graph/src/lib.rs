//! # ligra-graph
//!
//! Graph substrate for the Ligra reproduction: compressed sparse row (CSR)
//! representations for unweighted and weighted, directed and symmetric
//! graphs; a parallel builder from edge lists; the graph generators used in
//! the paper's evaluation (rMAT, random-local, 3d-grid); and the PBBS
//! `AdjacencyGraph` text format Ligra reads.
//!
//! Vertices are dense `u32` identifiers `0..n`. Directed graphs carry both
//! the out-CSR and the in-CSR (transpose) because Ligra's dense (pull)
//! traversal iterates in-edges; symmetric graphs share one CSR for both
//! directions, exactly as the original system does.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod builder;
pub mod csr;
pub mod delta;
pub mod generators;
pub mod io;
pub mod ops;
pub mod partition;
pub mod properties;

pub use builder::{build_graph, build_weighted_graph, BuildOptions};
pub use csr::{Adjacency, Graph, VertexId, WeightedGraph};
pub use delta::{apply_batch, apply_normalized, ApplyStats, DeltaBatch, DeltaError};
pub use ops::{induced_subgraph, largest_component, relabel_by_degree};
pub use partition::Partitioning;
pub use properties::GraphStats;
