//! Shared harness for regenerating the paper's tables and figures.
//!
//! Every binary in this crate prints one artifact of the Ligra paper's
//! evaluation section (see DESIGN.md §4 for the experiment index). The
//! graph suite mirrors Table 1's input families at laptop scale; set
//! `LIGRA_SCALE=large` for bigger inputs (paper-shaped, minutes of
//! runtime) or `LIGRA_SCALE=tiny` for smoke tests.

use ligra::Traversal;
use ligra_graph::generators::rmat::RmatOptions;
use ligra_graph::generators::{grid3d, random_local, rmat};
use ligra_graph::{Graph, GraphStats};
use std::time::Instant;

/// One benchmark input: a named graph plus the traversal source the
/// harness uses (the paper picks vertex 0 for synthetic inputs and a
/// high-degree vertex for Twitter; we do the same for the rMat stand-in).
pub struct Input {
    /// Display name (Table 1's first column).
    pub name: &'static str,
    /// The graph.
    pub graph: Graph,
    /// Source vertex for BFS / BC / Bellman–Ford.
    pub source: u32,
}

/// Scale selector read from `LIGRA_SCALE` (tiny | default | large).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Smoke-test sizes (seconds for the full suite).
    Tiny,
    /// Default laptop-scale sizes.
    Default,
    /// Larger runs for more stable shape measurements.
    Large,
}

impl Scale {
    /// Reads the scale from the environment.
    pub fn from_env() -> Scale {
        match std::env::var("LIGRA_SCALE").as_deref() {
            Ok("tiny") => Scale::Tiny,
            Ok("large") => Scale::Large,
            _ => Scale::Default,
        }
    }
}

/// Builds the Table 1 input suite at the given scale.
///
/// | name | family | paper counterpart |
/// |---|---|---|
/// | 3d-grid | 6-regular torus | 3d-grid (10⁷ vertices) |
/// | random-local | geometric-distance random | randLocal (10⁷) |
/// | rMat | power law a=.5 b=c=.1 | rMat24/rMat27 |
/// | rMat-sk | Graph500 skew, directed | Twitter (real graph substitute) |
pub fn inputs(scale: Scale) -> Vec<Input> {
    let (side, rl_n, log_n, log_n_sk) = match scale {
        Scale::Tiny => (12, 4_000, 12, 11),
        Scale::Default => (32, 100_000, 17, 15),
        Scale::Large => (64, 500_000, 19, 17),
    };
    let mut out = Vec::new();

    out.push(Input { name: "3d-grid", graph: grid3d(side), source: 0 });
    out.push(Input { name: "random-local", graph: random_local(rl_n, 10, 42), source: 0 });
    out.push(Input { name: "rMat", graph: rmat(&RmatOptions::paper(log_n)), source: 0 });

    let sk = rmat(&RmatOptions::twitter_like(log_n_sk));
    let (hub, _) = sk.max_out_degree();
    out.push(Input { name: "rMat-sk", graph: sk, source: hub });

    out
}

/// Traversal-policy override read from `LIGRA_TRAVERSAL` (canonical
/// names or the historical bench aliases — anything
/// `Traversal::from_str` accepts). Unset or empty means the paper's
/// hybrid (`Auto`); an unparseable value aborts with the parser's
/// message rather than silently timing the wrong policy.
pub fn traversal_from_env() -> Traversal {
    match std::env::var("LIGRA_TRAVERSAL") {
        Err(_) => Traversal::Auto,
        Ok(s) if s.trim().is_empty() => Traversal::Auto,
        Ok(s) => s.parse().unwrap_or_else(|e| panic!("LIGRA_TRAVERSAL: {e}")),
    }
}

/// Wall-clock seconds for one invocation of `f`.
pub fn time<R>(f: impl FnOnce() -> R) -> (R, f64) {
    let start = Instant::now();
    let r = f();
    (r, start.elapsed().as_secs_f64())
}

/// Minimum wall-clock seconds over `reps` invocations (the paper reports
/// per-run medians; min is the conventional low-noise choice for
/// single-machine microbenchmarks).
pub fn time_best<R>(reps: usize, mut f: impl FnMut() -> R) -> f64 {
    assert!(reps >= 1);
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let (_, t) = time(&mut f);
        best = best.min(t);
    }
    best
}

/// Prints a Table-1-style row for a graph.
pub fn print_graph_row(name: &str, g: &Graph) {
    let s = GraphStats::of(g);
    println!(
        "{:<14} {:>10} {:>12} {:>10} {:>8.2} {:>9} {}",
        name,
        s.num_vertices,
        s.num_edges,
        s.max_degree.1,
        s.avg_degree,
        s.isolated,
        if s.symmetric { "symmetric" } else { "directed" },
    );
}

/// Formats seconds the way the paper's tables do (2-3 significant digits).
pub fn fmt_secs(t: f64) -> String {
    if t < 0.01 {
        format!("{:.2}ms", t * 1e3)
    } else if t < 1.0 {
        format!("{:.1}ms", t * 1e3)
    } else {
        format!("{t:.2}s")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_suite_builds_and_validates() {
        let suite = inputs(Scale::Tiny);
        assert_eq!(suite.len(), 4);
        for input in &suite {
            ligra_graph::properties::assert_valid(&input.graph);
            assert!((input.source as usize) < input.graph.num_vertices());
            assert!(input.graph.num_edges() > 0);
        }
        // Shapes: synthetic symmetric families vs the directed substitute.
        assert!(suite[0].graph.is_symmetric());
        assert!(!suite[3].graph.is_symmetric());
    }

    #[test]
    fn timer_measures_something() {
        let (x, t) = time(|| (0..100_000u64).sum::<u64>());
        assert_eq!(x, 4999950000);
        assert!(t >= 0.0);
        let best = time_best(3, || std::hint::black_box(1 + 1));
        assert!(best >= 0.0);
    }

    #[test]
    fn seconds_formatting() {
        assert_eq!(fmt_secs(2.0), "2.00s");
        assert_eq!(fmt_secs(0.5), "500.0ms");
        assert_eq!(fmt_secs(0.005), "5.00ms");
    }
}
