//! **Eccentricity-estimator comparison** (extension reproduction of
//! Shun, KDD 2015) — accuracy and time of the three estimators against
//! exact eccentricities.
//!
//! Shape to check (the study's conclusion): the two-pass 64-way multi-BFS
//! dominates — near-zero mean relative error at a fraction of the exact
//! computation's cost — while the 2-approximation is cheapest and
//! coarsest; one-pass kBFS sits in between.

use ligra_apps::eccentricity::{exact, k_bfs_two_pass, mean_relative_error, two_approx};
use ligra_apps::radii;
use ligra_bench::{fmt_secs, inputs, time_best, Scale};

fn main() {
    let scale = Scale::from_env();
    println!("Eccentricity estimators vs exact (scale = {scale:?})");
    println!(
        "{:<14} {:>12} | {:>9} {:>9} | {:>9} {:>9} | {:>9} {:>9}",
        "input", "exact time", "2approx", "err", "kBFS", "err", "kBFS-2p", "err"
    );
    for input in inputs(scale) {
        let g = &input.graph;
        if !g.is_symmetric() {
            continue;
        }
        // Exact ground truth is O(n·m): restrict to inputs where that is
        // a few seconds (e.g. the full suite at LIGRA_SCALE=tiny).
        if g.num_vertices() as u64 * g.num_edges() as u64 > 2_000_000_000 {
            println!(
                "{:<14} {:>12}   (skipped: exact ground truth is O(n*m); use LIGRA_SCALE=tiny)",
                input.name, "-"
            );
            continue;
        }
        let (truth, t_exact) = ligra_bench::time(|| exact(g));

        let t_2a = time_best(1, || two_approx(g));
        let e_2a = mean_relative_error(&two_approx(g), &truth);

        let t_k1 = time_best(1, || radii(g, 7));
        let e_k1 = mean_relative_error(&radii(g, 7).radii, &truth);

        let t_k2 = time_best(1, || k_bfs_two_pass(g, 7));
        let e_k2 = mean_relative_error(&k_bfs_two_pass(g, 7).radii, &truth);

        println!(
            "{:<14} {:>12} | {:>9} {:>8.1}% | {:>9} {:>8.1}% | {:>9} {:>8.1}%",
            input.name,
            fmt_secs(t_exact),
            fmt_secs(t_2a),
            e_2a * 100.0,
            fmt_secs(t_k1),
            e_k1 * 100.0,
            fmt_secs(t_k2),
            e_k2 * 100.0,
        );
    }
    println!("\nexpected shape: err(kBFS-2pass) <= err(kBFS) << err(2approx),");
    println!("all at a small fraction of the exact computation's time.");
}
