//! **Extension table** — the applications of the official Ligra release
//! beyond the paper's six (k-core, MIS, triangle counting) plus the
//! SPAA'14 linear-work connectivity, with sequential baselines.
//!
//! Shape to check: `cc_ldd` is competitive with label propagation on
//! low-diameter graphs and beats it on high-diameter ones (where label
//! propagation pays a round per hop of label distance); triangle counting
//! dominates everything (it is O(m^{3/2})-ish, not O(m)).

use ligra_apps as apps;
use ligra_bench::{fmt_secs, inputs, time_best, Scale};

fn main() {
    let scale = Scale::from_env();
    println!("Extension applications (scale = {scale:?})");
    println!(
        "{:<14} {:<16} {:>12} {:>12} {:>9}  result",
        "input", "application", "sequential", "parallel", "speedup"
    );
    for input in inputs(scale) {
        let g = &input.graph;
        if !g.is_symmetric() {
            continue; // all four extensions are undirected-graph algorithms
        }

        let seq = time_best(2, || apps::kcore::seq_kcore(g));
        let par = time_best(2, || apps::kcore(g));
        let r = apps::kcore(g);
        println!(
            "{:<14} {:<16} {:>12} {:>12} {:>8.2}x  degeneracy = {}",
            input.name,
            "k-core",
            fmt_secs(seq),
            fmt_secs(par),
            seq / par,
            r.max_core
        );

        let seq = time_best(2, || apps::mis::seq_mis(g));
        let par = time_best(2, || apps::mis(g, 7));
        let r = apps::mis(g, 7);
        println!(
            "{:<14} {:<16} {:>12} {:>12} {:>8.2}x  |MIS| = {} in {} rounds",
            input.name,
            "MIS",
            fmt_secs(seq),
            fmt_secs(par),
            seq / par,
            r.size(),
            r.rounds
        );

        let seq = time_best(1, || apps::triangle::seq_triangle_count(g));
        let par = time_best(2, || apps::triangle_count(g));
        let r = apps::triangle_count(g);
        println!(
            "{:<14} {:<16} {:>12} {:>12} {:>8.2}x  triangles = {}",
            input.name,
            "triangles",
            fmt_secs(seq),
            fmt_secs(par),
            seq / par,
            r.triangles
        );

        let label_prop = time_best(2, || apps::cc(g));
        let ldd_cc = time_best(2, || apps::cc_ldd(g, 7));
        println!(
            "{:<14} {:<16} {:>12} {:>12} {:>8.2}x  (sequential col = label-prop CC)",
            input.name,
            "CC (LDD)",
            fmt_secs(label_prop),
            fmt_secs(ldd_cc),
            label_prop / ldd_cc,
        );
    }
}
