//! **Table 2** — per-application running times.
//!
//! Paper columns per (graph, application): single-thread time of a plain
//! sequential implementation, parallel time on all cores
//! (hyper-threaded 40-core in the paper; whatever this host has here),
//! and the self-relative speedup. The *shape* to check: the parallel
//! framework is within a small factor of sequential on one thread and
//! scales with cores; on a 1-core host expect speedup ≈ 1 or slightly
//! below (framework overhead), as recorded in EXPERIMENTS.md.

use ligra_apps as apps;
use ligra_bench::{fmt_secs, inputs, time_best, Input, Scale};
use ligra_graph::generators::random_weights;

const PAGERANK_ITERS: usize = 1; // the paper times one PageRank iteration

fn bench_app(input: &Input, app: &str) -> (f64, f64) {
    let g = &input.graph;
    let src = input.source;
    let reps = 3;
    match app {
        "BFS" => {
            let seq = time_best(reps, || apps::seq::seq_bfs(g, src));
            let par = time_best(reps, || apps::bfs(g, src));
            (seq, par)
        }
        "BC" => {
            let seq = time_best(reps, || apps::seq::seq_brandes(g, src));
            let par = time_best(reps, || apps::bc(g, src));
            (seq, par)
        }
        "Radii" => {
            // Sequential reference: the same 64 BFS runs, one at a time.
            let sample = apps::radii::pick_sample(g, 1);
            let seq = time_best(1, || {
                for &s in &sample {
                    std::hint::black_box(apps::seq::seq_bfs(g, s));
                }
            });
            let par = time_best(reps, || apps::radii(g, 1));
            (seq, par)
        }
        "Components" => {
            if !g.is_symmetric() {
                return (f64::NAN, f64::NAN); // CC needs symmetric input
            }
            let seq = time_best(reps, || apps::seq::seq_cc(g));
            let par = time_best(reps, || apps::cc(g));
            (seq, par)
        }
        "PageRank" => {
            let seq = time_best(reps, || apps::seq::seq_pagerank(g, 0.85, 0.0, PAGERANK_ITERS));
            let par = time_best(reps, || apps::pagerank(g, 0.85, 0.0, PAGERANK_ITERS));
            (seq, par)
        }
        "Bellman-Ford" => {
            let wg = random_weights(g, 100, 7);
            let seq = time_best(1, || apps::seq::seq_bellman_ford(&wg, src));
            let par = time_best(reps, || apps::bellman_ford(&wg, src));
            (seq, par)
        }
        _ => unreachable!(),
    }
}

fn main() {
    let scale = Scale::from_env();
    let nthreads = rayon::current_num_threads();
    println!("Table 2: running times (scale = {scale:?}, {nthreads} thread(s))");
    println!(
        "{:<14} {:<13} {:>12} {:>12} {:>9}",
        "input", "application", "sequential", "parallel", "speedup"
    );
    let suite = inputs(scale);
    for input in &suite {
        for app in ["BFS", "BC", "Radii", "Components", "PageRank", "Bellman-Ford"] {
            let (seq, par) = bench_app(input, app);
            if seq.is_nan() {
                println!("{:<14} {:<13} {:>12} {:>12} {:>9}", input.name, app, "-", "-", "n/a");
                continue;
            }
            println!(
                "{:<14} {:<13} {:>12} {:>12} {:>8.2}x",
                input.name,
                app,
                fmt_secs(seq),
                fmt_secs(par),
                seq / par
            );
        }
    }
}
