//! **Figure F3** — sensitivity to the direction-switch threshold.
//!
//! BFS running time as the sparse/dense switching threshold sweeps from
//! `m/2` down to `m/2¹⁰`, plus the pure-sparse and pure-dense endpoints.
//! The paper's shape: a wide flat plateau around the default `m/20`
//! (the heuristic is robust), rising at both extremes where the traversal
//! degenerates into sparse-only or dense-only.

use ligra::{EdgeMapOptions, Traversal};
use ligra_apps as apps;
use ligra_bench::{fmt_secs, inputs, time_best, Scale};

fn main() {
    let scale = Scale::from_env();
    println!("Figure F3: BFS time vs direction-switch threshold (scale = {scale:?})");
    for input in inputs(scale) {
        let g = &input.graph;
        let m = g.num_edges() as u64;
        println!("\n{} (m = {m}):", input.name);
        println!("{:>14} {:>12}", "threshold", "BFS time");

        let sparse = time_best(3, || {
            apps::bfs_with(g, input.source, EdgeMapOptions::new().traversal(Traversal::Sparse))
        });
        println!("{:>14} {:>12}", "sparse-only", fmt_secs(sparse));

        for k in 1..=10u32 {
            let threshold = m >> k;
            let opts = EdgeMapOptions::new().threshold(threshold);
            let secs = time_best(3, || apps::bfs_with(g, input.source, opts));
            let marker = if k == 4 || k == 5 { "  <- around default m/20" } else { "" };
            println!("{:>11}m/2^{k:<2} {:>12}{marker}", "", fmt_secs(secs));
        }

        let dense = time_best(3, || {
            apps::bfs_with(g, input.source, EdgeMapOptions::new().traversal(Traversal::Dense))
        });
        println!("{:>14} {:>12}", "dense-only", fmt_secs(dense));
    }
    println!("\nexpected shape: flat plateau in the middle, degrading toward both endpoints.");
}
