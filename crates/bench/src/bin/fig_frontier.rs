//! **Figure F1** — frontier dynamics.
//!
//! Per `edgeMap` round: frontier size in vertices, frontier size in
//! out-edges, the traversal direction the heuristic chose, and the output
//! size. The paper's figure shows rMat frontiers exploding within a few
//! rounds (where the framework flips to the dense/pull direction) and
//! collapsing at the end; the 3d-grid stays small and sparse throughout.

use ligra::{EdgeMapOptions, TraversalStats};
use ligra_apps as apps;
use ligra_bench::{Scale, inputs};

fn print_trace(label: &str, m: usize, stats: &TraversalStats) {
    println!("\n{label} (m = {m}, dense threshold = m/20 = {})", m / 20);
    println!(
        "{:>6} {:>12} {:>14} {:>11} {:>10}",
        "round", "vertices", "out-edges", "mode", "output"
    );
    for (i, r) in stats.rounds.iter().enumerate() {
        println!(
            "{:>6} {:>12} {:>14} {:>11} {:>10}",
            i + 1,
            r.frontier_vertices,
            r.frontier_out_edges,
            r.mode.to_string(),
            r.output_vertices
        );
    }
    let (s, d, f) = stats.mode_counts();
    println!("mode counts: sparse={s} dense={d} dense-fwd={f}");
}

fn main() {
    let scale = Scale::from_env();
    println!("Figure F1: per-round frontier sizes and traversal modes (scale = {scale:?})");
    for input in inputs(scale) {
        let g = &input.graph;
        let mut stats = TraversalStats::new();
        let _ = apps::bfs_traced(g, input.source, EdgeMapOptions::default(), &mut stats);
        print_trace(&format!("BFS on {}", input.name), g.num_edges(), &stats);

        if g.is_symmetric() {
            let mut stats = TraversalStats::new();
            let _ = apps::cc_traced(g, EdgeMapOptions::default(), &mut stats);
            print_trace(
                &format!("Components on {}", input.name),
                g.num_edges(),
                &stats,
            );
        }

        let mut stats = TraversalStats::new();
        let _ = apps::bc_traced(g, input.source, EdgeMapOptions::default(), &mut stats);
        print_trace(
            &format!("BC (fwd+back) on {}", input.name),
            g.num_edges(),
            &stats,
        );
    }
}
