//! **Figure F1** — frontier dynamics.
//!
//! Per `edgeMap` round: frontier size in vertices, frontier size in
//! out-edges, the heuristic's `work` input against its threshold, the
//! traversal direction chosen, representation conversions, wall-clock, and
//! the contention counters. The paper's figure shows rMat frontiers
//! exploding within a few rounds (where the framework flips to the
//! dense/pull direction) and collapsing at the end; the 3d-grid stays
//! small and sparse throughout.
//!
//! The figure is rendered from the *exported* trace: each run is
//! serialized to JSON lines and parsed back before printing, so the table
//! exercises exactly the artifact a user would save. Set `LIGRA_TRACE_DIR`
//! to also write each trace as a `.jsonl` file in that directory.

use ligra::stats::Op;
use ligra::{from_json_lines, save_jsonl, summary, to_json_lines, EdgeMapOptions, TraversalStats};
use ligra_apps as apps;
use ligra_bench::{inputs, Scale};

/// Exports `stats`, re-imports it, and renders the per-round table from
/// the re-imported copy (optionally saving the export under `trace_dir`).
fn print_trace(label: &str, slug: &str, stats: &TraversalStats, trace_dir: Option<&str>) {
    let exported = to_json_lines(stats);
    if let Some(dir) = trace_dir {
        match save_jsonl(std::path::Path::new(dir), slug, stats) {
            Ok(path) => println!("[trace written to {}]", path.display()),
            Err(e) => eprintln!("[trace {e}]"),
        }
    }
    let stats = from_json_lines(&exported).expect("exported trace must re-import");

    println!("\n{label}");
    println!(
        "{:>6} {:>10} {:>12} {:>12} {:>12} {:>10} {:>5} {:>10} {:>11} {:>11} {:>11}",
        "round",
        "vertices",
        "out-edges",
        "work",
        "threshold",
        "mode",
        "conv",
        "time_us",
        "cas_win",
        "scanned",
        "skipped"
    );
    for (i, r) in stats.rounds.iter().enumerate() {
        if r.op != Op::EdgeMap {
            continue;
        }
        println!(
            "{:>6} {:>10} {:>12} {:>12} {:>12} {:>10} {:>5} {:>10} {:>11} {:>11} {:>11}",
            i + 1,
            r.frontier_vertices,
            r.frontier_out_edges,
            r.work,
            r.threshold,
            r.mode.to_string(),
            if r.converted { "*" } else { "" },
            r.time_ns / 1_000,
            format!("{}/{}", r.cas_wins, r.cas_attempts),
            r.edges_scanned,
            r.edges_skipped,
        );
    }
    println!("{}", summary(&stats));
}

fn main() {
    let scale = Scale::from_env();
    let trace_dir = std::env::var("LIGRA_TRACE_DIR").ok();
    let trace_dir = trace_dir.as_deref();
    println!("Figure F1: per-round frontier sizes and traversal modes (scale = {scale:?})");
    for input in inputs(scale) {
        let g = &input.graph;
        let m = g.num_edges();
        let mut stats = TraversalStats::new();
        let _ = apps::bfs_traced(g, input.source, EdgeMapOptions::default(), &mut stats);
        print_trace(
            &format!("BFS on {} (m = {m}, dense threshold = m/20 = {})", input.name, m / 20),
            &format!("bfs-{}", input.name),
            &stats,
            trace_dir,
        );

        if g.is_symmetric() {
            let mut stats = TraversalStats::new();
            let _ = apps::cc_traced(g, EdgeMapOptions::default(), &mut stats);
            print_trace(
                &format!("Components on {}", input.name),
                &format!("cc-{}", input.name),
                &stats,
                trace_dir,
            );
        }

        let mut stats = TraversalStats::new();
        let _ = apps::bc_traced(g, input.source, EdgeMapOptions::default(), &mut stats);
        print_trace(
            &format!("BC (fwd+back) on {}", input.name),
            &format!("bc-{}", input.name),
            &stats,
            trace_dir,
        );
    }
}
