//! **Figure F4** — thread scalability.
//!
//! Running time of every application as a function of the worker-thread
//! count (1, 2, 4, … up to the host's logical cores). The paper's figure
//! shows near-linear self-relative speedup to 40 cores with an extra
//! bump from hyper-threading. On a single-core host this collapses to one
//! column. If the parallel runtime turns out to be sequential (the
//! vendored offline rayon stub, see `.cargo/config.toml`), every pool
//! size would measure the same single-threaded run, so the sweep is
//! collapsed to one honest T=1 column behind a loud warning instead of
//! emitting fabricated speedups.

use ligra_apps as apps;
use ligra_bench::{fmt_secs, inputs, time_best, Scale};
use ligra_graph::generators::random_weights;
use ligra_parallel::utils::{pool_is_parallel, with_threads};

fn thread_counts() -> Vec<usize> {
    let max = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let mut counts = vec![1usize];
    while *counts.last().unwrap() * 2 <= max {
        counts.push(counts.last().unwrap() * 2);
    }
    if *counts.last().unwrap() != max {
        counts.push(max);
    }
    counts
}

fn main() {
    let scale = Scale::from_env();
    let mut counts = thread_counts();
    let max_threads = *counts.last().unwrap();
    let sequential_runtime = max_threads > 1 && !pool_is_parallel(max_threads);
    if sequential_runtime {
        eprintln!(
            "WARNING: the rayon runtime is a sequential stub — every pool size runs \
             single-threaded, so thread-scaling numbers would be meaningless. \
             Reporting a single T=1 column instead. Build with the real rayon \
             (`rm .cargo/config.toml Cargo.lock`, needs registry access) for Figure F4."
        );
        counts = vec![1];
    }
    // The paper uses its rMat graph for the scalability plot.
    let suite = inputs(scale);
    let input = suite.into_iter().find(|i| i.name == "rMat").expect("rMat input");
    let g = &input.graph;
    let src = input.source;
    let wg = random_weights(g, 100, 7);

    println!(
        "Figure F4: time vs threads on rMat (n = {}, m = {}, scale = {scale:?})",
        g.num_vertices(),
        g.num_edges()
    );
    print!("{:<14}", "application");
    for &t in &counts {
        print!(" {:>9}", format!("T={t}"));
    }
    println!(" {:>9}", "speedup");

    type AppFn<'a> = Box<dyn Fn() + Sync + 'a>;
    let apps_list: Vec<(&str, AppFn)> = vec![
        (
            "BFS",
            Box::new(|| {
                std::hint::black_box(apps::bfs(g, src));
            }),
        ),
        (
            "BC",
            Box::new(|| {
                std::hint::black_box(apps::bc(g, src));
            }),
        ),
        (
            "Radii",
            Box::new(|| {
                std::hint::black_box(apps::radii(g, 1));
            }),
        ),
        (
            "Components",
            Box::new(|| {
                std::hint::black_box(apps::cc(g));
            }),
        ),
        (
            "PageRank(1)",
            Box::new(|| {
                std::hint::black_box(apps::pagerank(g, 0.85, 0.0, 1));
            }),
        ),
        (
            "Bellman-Ford",
            Box::new(|| {
                std::hint::black_box(apps::bellman_ford(&wg, src));
            }),
        ),
    ];

    for (name, f) in &apps_list {
        print!("{name:<14}");
        let mut first = f64::NAN;
        let mut last = f64::NAN;
        for &t in &counts {
            let secs = with_threads(t, || time_best(3, f));
            if t == 1 {
                first = secs;
            }
            last = secs;
            print!(" {:>9}", fmt_secs(secs));
        }
        if sequential_runtime {
            println!(" {:>9}", "n/a");
        } else {
            println!(" {:>8.2}x", first / last);
        }
    }
}
