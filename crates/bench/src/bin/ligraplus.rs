//! **Ligra+ table** (extension reproduction, DCC 2015) — space and time
//! of the compressed representation vs the uncompressed CSR.
//!
//! Ligra+'s headline result: difference-encoded graphs use about half the
//! space of the plain CSR and run the same applications at comparable
//! speed (slightly faster on big machines thanks to reduced memory
//! traffic; expect a modest decode overhead on a laptop). Shape to check:
//! ratio well below 1 everywhere, smallest on high-locality inputs
//! (3d-grid), and BFS/PageRank times within a small factor of
//! uncompressed.

use ligra_apps as apps;
use ligra_bench::{fmt_secs, inputs, time_best, Scale};
use ligra_compress::apps as capps;
use ligra_compress::{ByteCode, ByteRleCode, Codec, CompressedGraph, NibbleCode};

/// One codec's space ratio and BFS time on a graph.
fn codec_row<C: Codec>(g: &ligra_graph::Graph, source: u32) -> (f64, f64) {
    let cg: CompressedGraph<C> = CompressedGraph::from_graph(g);
    let (_, _, ratio) = cg.space_vs_csr();
    let bfs = time_best(3, || capps::bfs(&cg, source));
    (ratio, bfs)
}

fn main() {
    let scale = Scale::from_env();
    println!("Ligra+ reproduction: compressed vs uncompressed (scale = {scale:?})");
    println!(
        "{:<14} {:>12} {:>12} {:>7} | {:>10} {:>10} | {:>10} {:>10}",
        "input", "CSR bytes", "compressed", "ratio", "BFS", "BFS(C)", "PR(1)", "PR(1,C)"
    );
    for input in inputs(scale) {
        let g = &input.graph;
        let cg: CompressedGraph = CompressedGraph::from_graph(g);
        let (compressed, csr, ratio) = cg.space_vs_csr();

        let bfs_u = time_best(3, || apps::bfs(g, input.source));
        let bfs_c = time_best(3, || capps::bfs(&cg, input.source));
        let pr_u = time_best(3, || apps::pagerank(g, 0.85, 0.0, 1));
        let pr_c = time_best(3, || capps::pagerank(&cg, 0.85, 0.0, 1));

        println!(
            "{:<14} {:>12} {:>12} {:>7.3} | {:>10} {:>10} | {:>10} {:>10}",
            input.name,
            csr,
            compressed,
            ratio,
            fmt_secs(bfs_u),
            fmt_secs(bfs_c),
            fmt_secs(pr_u),
            fmt_secs(pr_c),
        );
    }
    println!("\nexpected shape: ratio < 1 everywhere (paper: ~0.5 on average);");
    println!("compressed traversal within a small factor of uncompressed.");

    // Codec comparison (the DCC'15 paper's byte vs nibble vs byte-RLE
    // table): nibble smallest / slowest, byte the sweet spot, RLE fastest
    // decode at slightly more space than nibble.
    println!("\nCodec comparison (space ratio vs CSR | BFS time):");
    println!(
        "{:<14} {:>8} {:>10} | {:>8} {:>10} | {:>8} {:>10}",
        "input", "byte", "BFS", "nibble", "BFS", "byte-rle", "BFS"
    );
    for input in inputs(scale) {
        let g = &input.graph;
        let (rb, tb) = codec_row::<ByteCode>(g, input.source);
        let (rn, tn) = codec_row::<NibbleCode>(g, input.source);
        let (rr, tr) = codec_row::<ByteRleCode>(g, input.source);
        println!(
            "{:<14} {:>8.3} {:>10} | {:>8.3} {:>10} | {:>8.3} {:>10}",
            input.name,
            rb,
            fmt_secs(tb),
            rn,
            fmt_secs(tn),
            rr,
            fmt_secs(tr),
        );
    }
}
