//! **Memory-traffic microbench** — per-round `edgeMap` cost under each
//! traversal policy, with the bytes of frontier representation each round
//! streamed (the `frontier_bytes` telemetry column).
//!
//! A BFS round sweep over the paper's rMat input, once per policy
//! (auto, sparse, dense, dense-forward, partitioned — `--policy NAME`
//! or `LIGRA_TRAVERSAL` restricts the sweep to one of them). For every
//! recorded round the binary re-checks the representation contract:
//! sparse push rounds report exactly `4 * (|U| + |output|)` bytes (the
//! output vector is exact-size — no sentinel slots), dense and
//! partitioned rounds report the packed `n/8`-byte bitset once in and
//! once out (partitioned rounds additionally report the bin traffic in
//! the `scatter_bytes` column). Per-mode medians and totals go to stdout
//! and to a machine-readable JSON file (`BENCH_edgemap.json` by default)
//! for CI artifact upload.
//!
//! The `threads` field of the JSON comes from the runtime pool probe
//! (`pool_is_parallel`), not from configured pool size: a file produced
//! under the sequential offline rayon stub says `"parallel_pool": false`
//! and its timings must not be read as parallel numbers.
//!
//! Usage: `bench_edgemap [--quick] [--policy NAME] [--out PATH]`
//!
//! With `LIGRA_RACE_CHECK=1` (and a binary built with
//! `--features race-check`) every recorded sweep also runs under the
//! shadow-state race oracle with the BFS `Claim` contract, and each
//! policy row is followed by its certification evidence.

use ligra::stats::{Mode, Op};
use ligra::{EdgeMapOptions, RaceOracle, Traversal, TraversalStats, WinContract};
use ligra_apps as apps;
use ligra_graph::generators::rmat;
use ligra_graph::generators::rmat::RmatOptions;

/// The policies to sweep: all of them, unless `--policy` (strongest) or
/// `LIGRA_TRAVERSAL` pins one.
fn policies(cli_policy: Option<&str>) -> Vec<Traversal> {
    if let Some(name) = cli_policy {
        vec![name.parse().unwrap_or_else(|e| panic!("--policy: {e}"))]
    } else if std::env::var_os("LIGRA_TRAVERSAL").is_some() {
        vec![ligra_bench::traversal_from_env()]
    } else {
        Traversal::ALL.to_vec()
    }
}

struct ModeRow {
    policy: &'static str,
    rounds: usize,
    median_round_ns: u64,
    total_edge_map_ns: u64,
    frontier_bytes: u64,
    edges_scanned: u64,
    scatter_bytes: u64,
}

fn median(mut xs: Vec<u64>) -> u64 {
    if xs.is_empty() {
        return 0;
    }
    xs.sort_unstable();
    xs[xs.len() / 2]
}

/// One traced BFS sweep under `t`; verifies the frontier-bytes contract
/// of every recorded round and reduces the trace to a summary row. With
/// an oracle attached, every round's updates also flow through the race
/// shadow protocol.
fn sweep(
    g: &ligra_graph::Graph,
    source: u32,
    policy: &'static str,
    t: Traversal,
    oracle: Option<&RaceOracle>,
) -> ModeRow {
    let packed = (g.num_vertices() as u64).div_ceil(64) * 8;
    let mut stats = TraversalStats::new();
    let mut opts = EdgeMapOptions::new().traversal(t);
    if let Some(o) = oracle {
        opts = opts.race_oracle(o);
    }
    let _ = apps::bfs_traced(g, source, opts, &mut stats);

    let rounds: Vec<_> = stats.rounds.iter().filter(|r| r.op == Op::EdgeMap).collect();
    for r in &rounds {
        if r.frontier_vertices == 0 {
            assert_eq!(r.frontier_bytes, 0);
            continue;
        }
        match r.mode {
            // Exact-size push output: 4 bytes per input and output vertex,
            // nothing for dropped or duplicate edges.
            Mode::Sparse => {
                assert_eq!(r.frontier_bytes, 4 * (r.frontier_vertices + r.output_vertices))
            }
            // Packed bitset streamed in and (BFS keeps output on) out.
            // Partitioned rounds report bin traffic separately in
            // `scatter_bytes`, checked below.
            Mode::Dense | Mode::DenseForward | Mode::Partitioned => {
                assert_eq!(r.frontier_bytes, 2 * packed)
            }
        }
        if r.mode == Mode::Partitioned {
            assert!(r.partitions > 0, "partitioned round must report its partition count");
            // 8 bytes per (src, dst) bin entry on an unweighted graph.
            assert_eq!(r.scatter_bytes, 8 * r.edges_scanned);
        } else {
            assert_eq!(r.scatter_bytes, 0, "classic rounds scatter nothing");
        }
    }

    ModeRow {
        policy,
        rounds: rounds.len(),
        median_round_ns: median(rounds.iter().map(|r| r.time_ns).collect()),
        total_edge_map_ns: rounds.iter().map(|r| r.time_ns).sum(),
        frontier_bytes: rounds.iter().map(|r| r.frontier_bytes).sum(),
        edges_scanned: rounds.iter().map(|r| r.edges_scanned).sum(),
        scatter_bytes: rounds.iter().map(|r| r.scatter_bytes).sum(),
    }
}

fn to_json(
    log_n: u32,
    g: &ligra_graph::Graph,
    quick: bool,
    parallel_pool: bool,
    rows: &[ModeRow],
) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str(&format!(
        "  \"graph\": {{\"family\": \"rmat-paper\", \"log_n\": {}, \"vertices\": {}, \"edges\": {}}},\n",
        log_n,
        g.num_vertices(),
        g.num_edges()
    ));
    s.push_str(&format!("  \"quick\": {quick},\n"));
    // `threads` is what the probe saw actually running, not the
    // configured pool size: under the sequential offline stub the
    // configured size is a lie and the honest thread count is 1.
    let threads = if parallel_pool { ligra_parallel::utils::num_threads() } else { 1 };
    s.push_str(&format!("  \"threads\": {threads},\n"));
    s.push_str(&format!("  \"parallel_pool\": {parallel_pool},\n"));
    s.push_str("  \"modes\": [\n");
    for (i, r) in rows.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"policy\": \"{}\", \"rounds\": {}, \"median_round_ns\": {}, \
             \"total_edge_map_ns\": {}, \"frontier_bytes\": {}, \"edges_scanned\": {}, \
             \"scatter_bytes\": {}}}{}\n",
            r.policy,
            r.rounds,
            r.median_round_ns,
            r.total_edge_map_ns,
            r.frontier_bytes,
            r.edges_scanned,
            r.scatter_bytes,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_edgemap.json".to_string());
    let cli_policy = args.iter().position(|a| a == "--policy").and_then(|i| args.get(i + 1));

    // Quick mode: ~2^20 edges (CI smoke). Full mode: the paper-shaped
    // rMat at 2^20 vertices.
    let log_n = if quick { 16 } else { 20 };
    let g = rmat(&RmatOptions::paper(log_n));
    println!(
        "bench_edgemap: rMat log_n={} ({} vertices, {} edges), quick={}",
        log_n,
        g.num_vertices(),
        g.num_edges(),
        quick
    );

    // Probe once whether the pool actually fans work out. The offline
    // sandbox patches in a sequential rayon stand-in whose configured
    // size is meaningless; numbers produced under it are not parallel
    // measurements and the JSON says so.
    let parallel_pool =
        ligra_parallel::utils::pool_is_parallel(ligra_parallel::utils::num_threads());
    if !parallel_pool {
        eprintln!(
            "bench_edgemap: WARNING — thread pool is sequential (offline rayon stub or a \
             single-core box); timings below are single-thread numbers and the JSON is \
             marked \"parallel_pool\": false."
        );
    }

    println!(
        "{:<12} {:>7} {:>16} {:>16} {:>16} {:>14} {:>14}",
        "policy",
        "rounds",
        "median round ns",
        "edgeMap total ns",
        "frontier bytes",
        "edges scanned",
        "scatter bytes"
    );

    // LIGRA_RACE_CHECK=1: certify each sweep under the BFS Claim
    // contract. The oracle hooks exist only in race-check builds; warn
    // instead of silently reporting an empty certificate otherwise.
    let race_check = std::env::var("LIGRA_RACE_CHECK").is_ok_and(|v| v == "1");
    if race_check && !cfg!(feature = "race-check") {
        eprintln!(
            "bench_edgemap: LIGRA_RACE_CHECK=1 but this binary was built without the \
             race-check feature; the oracle hooks are inert. Rebuild with \
             `cargo run -p ligra-bench --features race-check --bin bench_edgemap`."
        );
    }

    let mut rows = Vec::new();
    for t in policies(cli_policy.map(String::as_str)) {
        // Warm the traversal (page-in, pool spin-up) before the recorded run.
        let _ = apps::bfs_with(&g, 0, EdgeMapOptions::new().traversal(t));
        let oracle = race_check.then(|| RaceOracle::new(g.num_vertices(), WinContract::Claim));
        let row = sweep(&g, 0, t.name(), t, oracle.as_ref());
        println!(
            "{:<12} {:>7} {:>16} {:>16} {:>16} {:>14} {:>14}",
            row.policy,
            row.rounds,
            row.median_round_ns,
            row.total_edge_map_ns,
            row.frontier_bytes,
            row.edges_scanned,
            row.scatter_bytes
        );
        if let Some(o) = &oracle {
            let report = o
                .certify()
                .unwrap_or_else(|e| panic!("race certification failed under {}: {e}", t.name()));
            println!(
                "  race-check[{}]: certified Claim — {} attempts, {} wins, {} overlaps, {} rounds",
                t.name(),
                report.attempts,
                report.wins,
                report.overlaps,
                report.rounds
            );
        }
        rows.push(row);
    }

    let json = to_json(log_n, &g, quick, parallel_pool, &rows);
    std::fs::write(&out_path, &json).expect("write benchmark JSON");
    println!("\nwrote {out_path}");
    println!(
        "contract checked: sparse rounds = 4*(|U|+|out|) bytes, dense/partitioned rounds = \
         2*(n/8) bytes, partitioned scatter = 8 bytes/edge"
    );
}
