//! **Figure F2 / ablation A1** — direction optimization.
//!
//! Total running time of BFS and Components under the five traversal
//! policies: the paper's hybrid (auto) heuristic, sparse-only (what
//! push-based frameworks like Pregel/GraphLab do), dense-only,
//! dense-forward-only, and the cache-aware partitioned scatter/gather. The paper's shape: hybrid ≈ best-of-both; on
//! low-diameter inputs (rMat) hybrid beats sparse-only by a large factor,
//! on high-diameter inputs dense-only loses badly because every one of
//! the many rounds pays O(n + m).
//!
//! The timed runs are untraced (tracing off is the zero-overhead path the
//! numbers must reflect). A separate traced BFS run per policy is then
//! exported to JSON lines, re-imported, and used to attribute wall-clock
//! to each traversal mode — the per-mode breakdown that explains *why*
//! hybrid wins.

use ligra::stats::{Mode, Op};
use ligra::{from_json_lines, to_json_lines, EdgeMapOptions, Traversal, TraversalStats};
use ligra_apps as apps;
use ligra_bench::{fmt_secs, inputs, time_best, Scale};

/// All five policies, canonical order and names (`Traversal::ALL`; the
/// paper's hybrid heuristic is `auto`).
const POLICIES: [Traversal; 5] = Traversal::ALL;

/// Per-mode round counts and telemetry-timed totals, computed from the
/// exported-and-reimported trace of one traced BFS run.
fn mode_breakdown(g: &ligra_graph::Graph, source: u32, t: Traversal) -> String {
    let mut stats = TraversalStats::new();
    let _ = apps::bfs_traced(g, source, EdgeMapOptions::new().traversal(t), &mut stats);
    let trace = from_json_lines(&to_json_lines(&stats)).expect("trace must round-trip");
    let mut cells = Vec::new();
    let kinds = [
        ("s", Mode::Sparse),
        ("d", Mode::Dense),
        ("f", Mode::DenseForward),
        ("p", Mode::Partitioned),
    ];
    for (name, mode) in kinds {
        let rounds: Vec<_> =
            trace.rounds.iter().filter(|r| r.op == Op::EdgeMap && r.mode == mode).collect();
        if !rounds.is_empty() {
            let ns: u64 = rounds.iter().map(|r| r.time_ns).sum();
            cells.push(format!("{}:{}r/{:.1}ms", name, rounds.len(), ns as f64 / 1e6));
        }
    }
    cells.join(" ")
}

fn main() {
    let scale = Scale::from_env();
    println!("Figure F2: traversal-policy ablation (scale = {scale:?})");
    println!(
        "{:<14} {:<12} {:>12} {:>13} {:>12} {:>13} {:>13} {:>22}",
        "input",
        "app",
        POLICIES[0].name(),
        POLICIES[1].name(),
        POLICIES[2].name(),
        POLICIES[3].name(),
        POLICIES[4].name(),
        "auto vs sparse"
    );
    for input in inputs(scale) {
        let g = &input.graph;
        let mut row = Vec::new();
        for t in POLICIES {
            let opts = EdgeMapOptions::new().traversal(t);
            let secs = time_best(3, || apps::bfs_with(g, input.source, opts));
            row.push(secs);
        }
        println!(
            "{:<14} {:<12} {:>12} {:>13} {:>12} {:>13} {:>13} {:>21.2}x",
            input.name,
            "BFS",
            fmt_secs(row[0]),
            fmt_secs(row[1]),
            fmt_secs(row[2]),
            fmt_secs(row[3]),
            fmt_secs(row[4]),
            row[1] / row[0]
        );

        if g.is_symmetric() {
            let mut row = Vec::new();
            for t in POLICIES {
                let opts = EdgeMapOptions::new().traversal(t);
                let secs = time_best(2, || apps::cc_traced(g, opts, &mut ligra::NoopRecorder));
                row.push(secs);
            }
            println!(
                "{:<14} {:<12} {:>12} {:>13} {:>12} {:>13} {:>13} {:>21.2}x",
                input.name,
                "Components",
                fmt_secs(row[0]),
                fmt_secs(row[1]),
                fmt_secs(row[2]),
                fmt_secs(row[3]),
                fmt_secs(row[4]),
                row[1] / row[0]
            );
        }
    }

    println!("\nPer-mode time attribution for BFS (from exported traces; r=rounds):");
    for input in inputs(scale) {
        let g = &input.graph;
        for t in POLICIES {
            println!("{:<14} {:<12} {}", input.name, t.name(), mode_breakdown(g, input.source, t));
        }
    }

    println!("\nexpected shape: auto (hybrid) <= min(sparse, dense) within noise;");
    println!("auto wins big over sparse on rMat, ties it on high-diameter inputs.");
}
