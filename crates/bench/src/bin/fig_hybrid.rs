//! **Figure F2 / ablation A1** — direction optimization.
//!
//! Total running time of BFS and Components under the four traversal
//! policies: the paper's hybrid (auto) heuristic, sparse-only (what
//! push-based frameworks like Pregel/GraphLab do), dense-only, and
//! dense-forward-only. The paper's shape: hybrid ≈ best-of-both; on
//! low-diameter inputs (rMat) hybrid beats sparse-only by a large factor,
//! on high-diameter inputs dense-only loses badly because every one of
//! the many rounds pays O(n + m).

use ligra::{EdgeMapOptions, Traversal, TraversalStats};
use ligra_apps as apps;
use ligra_bench::{Scale, fmt_secs, inputs, time_best};

const POLICIES: [(&str, Traversal); 4] = [
    ("hybrid", Traversal::Auto),
    ("sparse-only", Traversal::Sparse),
    ("dense-only", Traversal::Dense),
    ("dense-fwd", Traversal::DenseForward),
];

fn main() {
    let scale = Scale::from_env();
    println!("Figure F2: traversal-policy ablation (scale = {scale:?})");
    println!(
        "{:<14} {:<12} {:>12} {:>13} {:>12} {:>12} {:>22}",
        "input", "app", "hybrid", "sparse-only", "dense-only", "dense-fwd", "hybrid vs sparse-only"
    );
    for input in inputs(scale) {
        let g = &input.graph;
        let mut row = Vec::new();
        for (_, t) in POLICIES {
            let opts = EdgeMapOptions::new().traversal(t);
            let secs = time_best(3, || apps::bfs_with(g, input.source, opts));
            row.push(secs);
        }
        println!(
            "{:<14} {:<12} {:>12} {:>13} {:>12} {:>12} {:>21.2}x",
            input.name,
            "BFS",
            fmt_secs(row[0]),
            fmt_secs(row[1]),
            fmt_secs(row[2]),
            fmt_secs(row[3]),
            row[1] / row[0]
        );

        if g.is_symmetric() {
            let mut row = Vec::new();
            for (_, t) in POLICIES {
                let opts = EdgeMapOptions::new().traversal(t);
                let secs = time_best(2, || {
                    let mut stats = TraversalStats::new();
                    apps::cc_traced(g, opts, &mut stats)
                });
                row.push(secs);
            }
            println!(
                "{:<14} {:<12} {:>12} {:>13} {:>12} {:>12} {:>21.2}x",
                input.name,
                "Components",
                fmt_secs(row[0]),
                fmt_secs(row[1]),
                fmt_secs(row[2]),
                fmt_secs(row[3]),
                row[1] / row[0]
            );
        }
    }
    println!("\nexpected shape: hybrid <= min(sparse-only, dense-only) within noise;");
    println!("hybrid wins big over sparse-only on rMat, ties it on high-diameter inputs.");
}
