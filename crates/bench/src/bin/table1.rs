//! **Table 1** — input graph statistics.
//!
//! Paper columns: input name, number of vertices, number of directed
//! edges. We add degree statistics and the paper counterpart each family
//! substitutes for. Run with `LIGRA_SCALE={tiny,default,large}`.

use ligra_bench::{inputs, print_graph_row, Scale};

fn main() {
    let scale = Scale::from_env();
    println!("Table 1: input graphs (scale = {scale:?})");
    println!(
        "{:<14} {:>10} {:>12} {:>10} {:>8} {:>9} kind",
        "input", "vertices", "edges", "max-deg", "avg-deg", "isolated"
    );
    for input in inputs(scale) {
        print_graph_row(input.name, &input.graph);
    }
    println!();
    println!("paper counterparts: 3d-grid -> 3d-grid(1e7), random-local -> randLocal(1e7),");
    println!("rMat -> rMat24/27, rMat-sk -> Twitter/Yahoo (real graphs; see DESIGN.md section 2)");
}
