//! Criterion microbenches for `edgeMap` — the sparse/dense/dense-forward
//! traversals on frontiers of varying density, plus the A2 dedup ablation.

use criterion::{criterion_group, criterion_main, Criterion};
use ligra::{edge_fn, edge_map_with, EdgeMapOptions, Traversal, VertexSubset};
use ligra_graph::generators::rmat::{rmat, RmatOptions};
use ligra_graph::Graph;
use std::hint::black_box;

fn frontier_of_density(g: &Graph, one_in: u32) -> Vec<u32> {
    (0..g.num_vertices() as u32).filter(|v| v % one_in == 0).collect()
}

fn bench_traversals(c: &mut Criterion) {
    let g = rmat(&RmatOptions::paper(14));
    let mut group = c.benchmark_group("edgemap");
    group.sample_size(10);

    for (label, one_in) in [("dense_frontier", 2u32), ("mid_frontier", 64), ("tiny_frontier", 4096)]
    {
        let members = frontier_of_density(&g, one_in);
        for t in [Traversal::Sparse, Traversal::Dense, Traversal::DenseForward, Traversal::Auto] {
            group.bench_function(format!("{label}/{t:?}"), |b| {
                b.iter(|| {
                    let f = edge_fn(|_s, _d, _w: ()| true, |_| true);
                    let mut fr = VertexSubset::from_sparse(g.num_vertices(), members.clone());
                    let out = edge_map_with(&g, &mut fr, &f, EdgeMapOptions::new().traversal(t));
                    black_box(out.len())
                })
            });
        }
    }
    group.finish();
}

fn bench_dedup(c: &mut Criterion) {
    // A2: cost of duplicate removal on a sparse traversal whose edge
    // function claims every target (worst-case duplicate volume).
    let g = rmat(&RmatOptions::paper(14));
    let members = frontier_of_density(&g, 64);
    let mut group = c.benchmark_group("edgemap_dedup");
    group.sample_size(10);
    for (label, dedup) in [("without", false), ("with", true)] {
        group.bench_function(label, |b| {
            b.iter(|| {
                let f = edge_fn(|_s, _d, _w: ()| true, |_| true);
                let mut fr = VertexSubset::from_sparse(g.num_vertices(), members.clone());
                let opts = EdgeMapOptions::new().traversal(Traversal::Sparse).deduplicate(dedup);
                black_box(edge_map_with(&g, &mut fr, &f, opts).len())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_traversals, bench_dedup);
criterion_main!(benches);
