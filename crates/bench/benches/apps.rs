//! Criterion benches for the six paper applications (Table 2's parallel
//! column, one fixed input per family for statistical stability).

use criterion::{criterion_group, criterion_main, Criterion};
use ligra_apps as apps;
use ligra_graph::generators::grid3d;
use ligra_graph::generators::random_weights;
use ligra_graph::generators::rmat::{rmat, RmatOptions};
use std::hint::black_box;

fn bench_apps(c: &mut Criterion) {
    let rm = rmat(&RmatOptions::paper(14));
    let grid = grid3d(20);
    let wrm = random_weights(&rm, 100, 7);

    let mut group = c.benchmark_group("apps");
    group.sample_size(10);

    group.bench_function("bfs/rmat14", |b| b.iter(|| black_box(apps::bfs(&rm, 0))));
    group.bench_function("bfs/grid20", |b| b.iter(|| black_box(apps::bfs(&grid, 0))));
    group.bench_function("bc/rmat14", |b| b.iter(|| black_box(apps::bc(&rm, 0))));
    group.bench_function("radii/rmat14", |b| b.iter(|| black_box(apps::radii(&rm, 1))));
    group.bench_function("cc/rmat14", |b| b.iter(|| black_box(apps::cc(&rm))));
    group.bench_function("cc/grid20", |b| b.iter(|| black_box(apps::cc(&grid))));
    group.bench_function("pagerank1/rmat14", |b| {
        b.iter(|| black_box(apps::pagerank(&rm, 0.85, 0.0, 1)))
    });
    group.bench_function("pagerank_delta/rmat14", |b| {
        b.iter(|| black_box(apps::pagerank_delta(&rm, 0.85, 1e-2, 100)))
    });
    group.bench_function("bellman_ford/rmat14", |b| {
        b.iter(|| black_box(apps::bellman_ford(&wrm, 0)))
    });
    group.finish();
}

fn bench_extension_apps(c: &mut Criterion) {
    // The extra applications of the official Ligra release.
    let rm = rmat(&RmatOptions::paper(13));
    let mut group = c.benchmark_group("apps_ext");
    group.sample_size(10);
    group.bench_function("kcore/rmat13", |b| b.iter(|| black_box(apps::kcore(&rm))));
    group.bench_function("mis/rmat13", |b| b.iter(|| black_box(apps::mis(&rm, 7))));
    group.bench_function("triangle/rmat13", |b| b.iter(|| black_box(apps::triangle_count(&rm))));
    group.bench_function("cc_ldd/rmat13", |b| b.iter(|| black_box(apps::cc_ldd(&rm, 7))));
    group.finish();
}

fn bench_compressed_apps(c: &mut Criterion) {
    // Ligra+ (DCC'15): same application, compressed representation.
    use ligra_compress::{apps as capps, CompressedGraph};
    let rm = rmat(&RmatOptions::paper(14));
    let cg: CompressedGraph = CompressedGraph::from_graph(&rm);
    let mut group = c.benchmark_group("apps_compressed");
    group.sample_size(10);
    group.bench_function("bfs/rmat14", |b| b.iter(|| black_box(capps::bfs(&cg, 0))));
    group.bench_function("cc/rmat14", |b| b.iter(|| black_box(capps::cc(&cg))));
    group.bench_function("pagerank1/rmat14", |b| {
        b.iter(|| black_box(capps::pagerank(&cg, 0.85, 0.0, 1)))
    });
    group.bench_function("compress/rmat14", |b| {
        b.iter(|| black_box(CompressedGraph::<ligra_compress::ByteCode>::from_graph(&rm)))
    });
    group.finish();
}

criterion_group!(benches, bench_apps, bench_extension_apps, bench_compressed_apps);
criterion_main!(benches);
