//! Criterion benches for the parallel-primitives substrate (the pieces
//! the sparse `edgeMap` hot path is built from: scan, pack, histogram,
//! reduce, priority update).

use criterion::{criterion_group, criterion_main, Criterion};
use ligra_parallel::atomics::{as_atomic_u32, priority_min, write_min_u32};
use ligra_parallel::hash::hash32;
use ligra_parallel::histogram::histogram_u32;
use ligra_parallel::pack::{filter, pack_index};
use ligra_parallel::reduce::sum_u64;
use ligra_parallel::scan::{prefix_sums, scan_inplace_exclusive};
use rayon::prelude::*;
use std::hint::black_box;

const N: usize = 1 << 20;

fn bench_scan(c: &mut Criterion) {
    let xs: Vec<u64> = (0..N as u32).map(|i| (hash32(i) % 16) as u64).collect();
    let mut group = c.benchmark_group("scan");
    group.sample_size(20);
    group.bench_function("prefix_sums_1M", |b| b.iter(|| black_box(prefix_sums(&xs))));
    group.bench_function("scan_inplace_1M", |b| {
        b.iter(|| {
            let mut ys = xs.clone();
            black_box(scan_inplace_exclusive(&mut ys, 0u64, |a, b| a + b))
        })
    });
    group.finish();
}

fn bench_pack(c: &mut Criterion) {
    let xs: Vec<u32> = (0..N as u32).map(hash32).collect();
    let flags: Vec<bool> = xs.iter().map(|&x| x.is_multiple_of(3)).collect();
    let mut group = c.benchmark_group("pack");
    group.sample_size(20);
    group.bench_function("filter_1M", |b| {
        b.iter(|| black_box(filter(&xs, |&x| x.is_multiple_of(3)).len()))
    });
    group.bench_function("pack_index_1M", |b| b.iter(|| black_box(pack_index(&flags).len())));
    group.finish();
}

fn bench_histogram_reduce(c: &mut Criterion) {
    let keys: Vec<u32> = (0..N as u32).map(|i| hash32(i) % 4096).collect();
    let xs: Vec<u64> = (0..N as u32).map(|i| hash32(i) as u64).collect();
    let mut group = c.benchmark_group("histogram_reduce");
    group.sample_size(20);
    group.bench_function("histogram_1M_4k_keys", |b| {
        b.iter(|| black_box(histogram_u32(&keys, 4096)))
    });
    group.bench_function("sum_1M", |b| b.iter(|| black_box(sum_u64(&xs))));
    group.finish();
}

fn bench_priority_update(c: &mut Criterion) {
    // A4: fetch_min-based writeMin vs the CAS-loop priority update, all
    // threads hammering one location (the SPAA'13 contention scenario).
    let vals: Vec<u32> = (0..(1 << 16) as u32).map(hash32).collect();
    let mut group = c.benchmark_group("priority_update");
    group.sample_size(20);
    group.bench_function("fetch_min_contended", |b| {
        b.iter(|| {
            let mut cell = vec![u32::MAX];
            let a = &as_atomic_u32(&mut cell)[0];
            vals.par_iter().for_each(|&v| {
                write_min_u32(a, v);
            });
            black_box(cell[0])
        })
    });
    group.bench_function("cas_loop_contended", |b| {
        b.iter(|| {
            let mut cell = vec![u32::MAX];
            let a = &as_atomic_u32(&mut cell)[0];
            vals.par_iter().for_each(|&v| {
                priority_min(a, v);
            });
            black_box(cell[0])
        })
    });
    group.finish();
}

criterion_group!(benches, bench_scan, bench_pack, bench_histogram_reduce, bench_priority_update);
criterion_main!(benches);
